// Package dimmunix is a Go implementation of deadlock immunity as
// described in "Deadlock Immunity: Enabling Systems To Defend Against
// Deadlocks" (Jula, Tralamazza, Zamfir, Candea — OSDI 2008).
//
// Programs that synchronize with dimmunix.Mutex develop resistance against
// deadlocks: the first time a deadlock pattern manifests, its signature
// (a multiset of the involved threads' call stacks) is archived in a
// persistent history; subsequent executions are steered away from
// re-instantiating the pattern by briefly yielding threads whose next lock
// acquisition would complete a known signature.
//
// # Quick start
//
// Mutex and RWMutex are drop-in replacements for their sync counterparts:
// the zero value is ready to use and binds itself to a process-wide
// default Runtime on first Lock.
//
//	var mu dimmunix.Mutex // instead of sync.Mutex
//
//	mu.Lock()
//	defer mu.Unlock()
//
// The default Runtime starts lazily with configuration taken from
// DIMMUNIX_* environment variables (DIMMUNIX_HISTORY, DIMMUNIX_TAU, ...),
// or explicitly via Init with functional options:
//
//	dimmunix.Init(
//		dimmunix.WithHistory("dimmunix-history.json"),
//		dimmunix.WithAbortRecovery(),
//	)
//	defer dimmunix.Shutdown()
//
// Deadlock recovery is orthogonal to immunity (§3 of the paper): with
// WithAbortRecovery, detected deadlock victims are unwound (the
// in-process analog of a restart) and blocked LockCtx calls return
// ErrDeadlockRecovered; either way, the next run is immune. Use LockCtx
// on paths that want to observe cancellation, deadline, or recovery as an
// error instead of a panic.
//
// # Explicit runtimes
//
// The original explicit surface remains for tests, tools, and programs
// that need several isolated instances: construct a Runtime with
// NewRuntime (options) or New (a Config), create locks with
// Runtime.NewMutex / NewRWMutex (returning *CoreMutex / *CoreRWMutex),
// and optionally pin per-goroutine identity with Runtime.RegisterThread
// for the fastest path:
//
//	rt := dimmunix.MustNew(dimmunix.Config{HistoryPath: "hist.json"})
//	defer rt.Stop()
//	m := rt.NewMutex()
//	th := rt.RegisterThread("worker")
//	if err := m.LockT(th); err != nil { ... }
//	defer m.UnlockT(th)
//
// The implementation and every experiment from the paper's evaluation
// live under internal/; see README.md for the repository map, the option
// table, and migration notes from the explicit API.
package dimmunix

import (
	"dimmunix/internal/core"
	"dimmunix/internal/histstore"
	"dimmunix/internal/monitor"
	"dimmunix/internal/signature"
)

// Re-exported core types. Aliases keep the facade zero-cost: no wrapper
// frames appear in captured call stacks.
type (
	// Runtime is one Dimmunix instance; see core.Runtime.
	Runtime = core.Runtime
	// Config configures a Runtime.
	Config = core.Config
	// CoreMutex is the explicit-runtime instrumented mutex returned by
	// Runtime.NewMutex — the original fast-path surface underneath the
	// drop-in Mutex.
	CoreMutex = core.Mutex
	// CoreRWMutex is the explicit-runtime reader/writer mutex returned
	// by Runtime.NewRWMutex, underneath the drop-in RWMutex.
	CoreRWMutex = core.RWMutex
	// Thread is an explicit per-goroutine handle (fast path).
	Thread = core.Thread
	// MutexKind selects normal/recursive/error-checking semantics.
	MutexKind = core.MutexKind
	// Mode selects the instrumentation level.
	Mode = core.Mode
	// ImmunityLevel selects weak or strong immunity.
	ImmunityLevel = core.ImmunityLevel
	// GuardKind selects the avoidance guard.
	GuardKind = core.GuardKind
	// DeadlockInfo is passed to the recovery hook.
	DeadlockInfo = monitor.DeadlockInfo
	// StarvationInfo is passed to the starvation/restart hook.
	StarvationInfo = monitor.StarvationInfo
	// History is the persistent signature store.
	History = signature.History
	// Signature is one archived deadlock/starvation pattern.
	Signature = signature.Signature
	// Tombstone marks a removed signature in format v2 histories.
	Tombstone = signature.Tombstone
	// HistoryStore is a pluggable shared immunity backend: one file
	// (advisory-locked), a directory of per-process journals, or a
	// dimmunix-hist serve daemon. All store I/O is context-aware — an
	// unreachable backend degrades to counted, retried errors bounded
	// by the caller's deadline, never a hang. See OpenHistoryStore.
	HistoryStore = histstore.Store
	// Stats is a point-in-time snapshot of every runtime counter:
	// lock-path activity split by tier (fast vs guarded), yields total
	// and per signature, monitor detection counts, recoveries, store
	// sync rounds/failures/backoffs, thread prunes, the history epoch,
	// and dropped observability events. See Runtime.Stats, DebugHandler,
	// and ExpvarPublish.
	Stats = core.StatsSnapshot
	// CoreCond is the explicit-runtime condition variable bound to a
	// CoreMutex (Runtime.NewCond), underneath the drop-in Cond.
	CoreCond = core.Cond
)

// Mutex kinds.
const (
	Normal     = core.Normal
	Recursive  = core.Recursive
	ErrorCheck = core.ErrorCheck
)

// Modes.
const (
	ModeOff         = core.ModeOff
	ModeInstrument  = core.ModeInstrument
	ModeDataStructs = core.ModeDataStructs
	ModeFull        = core.ModeFull
)

// Immunity levels.
const (
	WeakImmunity   = core.WeakImmunity
	StrongImmunity = core.StrongImmunity
)

// Guards.
const (
	GuardMutex  = core.GuardMutex
	GuardSpin   = core.GuardSpin
	GuardFilter = core.GuardFilter
)

// Errors.
var (
	ErrSelfDeadlock      = core.ErrSelfDeadlock
	ErrTimeout           = core.ErrTimeout
	ErrDeadlockRecovered = core.ErrDeadlockRecovered
	ErrNotOwner          = core.ErrNotOwner
	// ErrMutexRetired is returned by explicit-runtime mutexes that were
	// retired via Retire; the drop-in surface handles it internally by
	// rebinding and retrying.
	ErrMutexRetired = core.ErrMutexRetired
	// ErrThreadPruned reports a lock operation on a Thread handle the
	// idle pruner already retired (best-effort detection).
	ErrThreadPruned = core.ErrThreadPruned
)

// New creates and starts a Runtime from an explicit Config.
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// MustNew is New that panics on error.
func MustNew(cfg Config) *Runtime { return core.MustNew(cfg) }

// LoadHistory reads a signature history file (missing file = empty
// history), for tooling that inspects or merges histories.
func LoadHistory(path string) (*History, error) { return signature.Load(path) }

// OpenHistoryStore resolves a store specification to a shared immunity
// backend: "http(s)://…" selects a dimmunix-hist serve daemon, an
// existing directory (or "dir:PATH", or a trailing "/") selects
// per-process journals, anything else a single advisory-locked file.
// Pass the result to WithHistoryStore (or Config.HistoryStore).
func OpenHistoryStore(spec string) (HistoryStore, error) { return histstore.Open(spec) }
