// Package dimmunix is a Go implementation of deadlock immunity as
// described in "Deadlock Immunity: Enabling Systems To Defend Against
// Deadlocks" (Jula, Tralamazza, Zamfir, Candea — OSDI 2008).
//
// Programs that synchronize with dimmunix.Mutex develop resistance against
// deadlocks: the first time a deadlock pattern manifests, its signature
// (a multiset of the involved threads' call stacks) is archived in a
// persistent history; subsequent executions are steered away from
// re-instantiating the pattern by briefly yielding threads whose next lock
// acquisition would complete a known signature.
//
// # Quick start
//
//	rt := dimmunix.MustNew(dimmunix.Config{HistoryPath: "dimmunix-history.json"})
//	defer rt.Stop()
//
//	a, b := rt.NewMutex(), rt.NewMutex()
//	th := rt.RegisterThread("worker") // or use the implicit API: a.Lock()
//	if err := a.LockT(th); err != nil { ... }
//	defer a.UnlockT(th)
//
// Deadlock recovery is orthogonal to immunity (§3 of the paper): install
// Config.OnDeadlock and call Runtime.AbortThreads to unwind the victims
// (the in-process analog of a restart), or restart the process; either
// way, the next run is immune.
//
// The implementation and every experiment from the paper's evaluation live
// under internal/; see DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results.
package dimmunix

import (
	"dimmunix/internal/avoidance"
	"dimmunix/internal/core"
	"dimmunix/internal/monitor"
	"dimmunix/internal/signature"
)

// Re-exported core types. Aliases keep the facade zero-cost: no wrapper
// frames appear in captured call stacks.
type (
	// Runtime is one Dimmunix instance; see core.Runtime.
	Runtime = core.Runtime
	// Config configures a Runtime.
	Config = core.Config
	// Mutex is the instrumented mutex.
	Mutex = core.Mutex
	// Thread is an explicit per-goroutine handle (fast path).
	Thread = core.Thread
	// MutexKind selects normal/recursive/error-checking semantics.
	MutexKind = core.MutexKind
	// Mode selects the instrumentation level.
	Mode = core.Mode
	// ImmunityLevel selects weak or strong immunity.
	ImmunityLevel = core.ImmunityLevel
	// GuardKind selects the avoidance guard.
	GuardKind = core.GuardKind
	// DeadlockInfo is passed to the recovery hook.
	DeadlockInfo = monitor.DeadlockInfo
	// StarvationInfo is passed to the starvation/restart hook.
	StarvationInfo = monitor.StarvationInfo
	// History is the persistent signature store.
	History = signature.History
	// Signature is one archived deadlock/starvation pattern.
	Signature = signature.Signature
	// Stats is a snapshot of the avoidance counters.
	Stats = avoidance.Snapshot
	// Cond is a condition variable bound to a Mutex.
	Cond = core.Cond
)

// Mutex kinds.
const (
	Normal     = core.Normal
	Recursive  = core.Recursive
	ErrorCheck = core.ErrorCheck
)

// Modes.
const (
	ModeOff         = core.ModeOff
	ModeInstrument  = core.ModeInstrument
	ModeDataStructs = core.ModeDataStructs
	ModeFull        = core.ModeFull
)

// Immunity levels.
const (
	WeakImmunity   = core.WeakImmunity
	StrongImmunity = core.StrongImmunity
)

// Guards.
const (
	GuardMutex  = core.GuardMutex
	GuardSpin   = core.GuardSpin
	GuardFilter = core.GuardFilter
)

// Errors.
var (
	ErrSelfDeadlock      = core.ErrSelfDeadlock
	ErrTimeout           = core.ErrTimeout
	ErrDeadlockRecovered = core.ErrDeadlockRecovered
	ErrNotOwner          = core.ErrNotOwner
)

// New creates and starts a Runtime.
func New(cfg Config) (*Runtime, error) { return core.New(cfg) }

// MustNew is New that panics on error.
func MustNew(cfg Config) *Runtime { return core.MustNew(cfg) }

// LoadHistory reads a signature history file (missing file = empty
// history), for tooling that inspects or merges histories.
func LoadHistory(path string) (*History, error) { return signature.Load(path) }
