package dimmunix

import (
	"time"
)

// Option configures a Runtime. Options are the primary construction API
// (NewRuntime, Init); core.Config remains underneath as the explicit
// form and can be injected wholesale with WithConfig.
type Option func(*Config)

// NewRuntime creates and starts a Runtime from functional options.
func NewRuntime(opts ...Option) (*Runtime, error) {
	var cfg Config
	for _, o := range opts {
		o(&cfg)
	}
	return New(cfg)
}

// MustNewRuntime is NewRuntime that panics on error.
func MustNewRuntime(opts ...Option) *Runtime {
	rt, err := NewRuntime(opts...)
	if err != nil {
		panic(err)
	}
	return rt
}

// WithConfig replaces the whole configuration with cfg; options applied
// after it refine cfg.
func WithConfig(cfg Config) Option {
	return func(c *Config) { *c = cfg }
}

// WithHistory sets the persistent history file ("" = in-memory only).
// The file is served by a FileStore underneath; unlike WithHistoryStore
// it does not enable the periodic sync loop by default.
func WithHistory(path string) Option {
	return func(c *Config) { c.HistoryPath = path }
}

// WithHistoryStore plugs in a shared immunity store (§8 distribution):
// the runtime loads its history from the store, pushes newly archived
// signatures through it, and runs a periodic pull→merge→push sync loop
// so signatures, removals, and disabled-flips learned anywhere in the
// fleet take effect here within one sync interval. Obtain a store with
// OpenHistoryStore or construct one from a histstore backend.
func WithHistoryStore(s HistoryStore) Option {
	return func(c *Config) { c.HistoryStore = s }
}

// WithHistorySync configures the shared store from a specification
// string (a file path, a directory of per-process journals, or the
// http:// URL of a dimmunix-hist serve daemon) — the option form of
// DIMMUNIX_HISTORY_SYNC.
func WithHistorySync(spec string) Option {
	return func(c *Config) { c.HistorySync = spec }
}

// WithSyncInterval sets the store sync cadence (default 2 s when a
// shared store is configured; negative disables the loop, leaving
// archive-time pushes and manual Runtime.SyncNow pulls). After
// consecutive failed rounds the loop backs off exponentially (with
// jitter, capped at one minute) instead of hammering a dead daemon
// every interval.
func WithSyncInterval(d time.Duration) Option {
	return func(c *Config) { c.SyncInterval = d }
}

// WithShutdownTimeout bounds the final history publish Shutdown /
// Runtime.Stop performs through the shared store: if the store is
// unreachable, Stop abandons the publish after d instead of stalling
// process exit (earlier pushes and the store's local state keep the
// immunity). Default one second; negative removes the bound. The env
// form is DIMMUNIX_SHUTDOWN_TIMEOUT.
func WithShutdownTimeout(d time.Duration) Option {
	return func(c *Config) { c.ShutdownTimeout = d }
}

// WithSyncRoundTimeout bounds one sync round's store I/O (probe + pull
// + push); an overrunning round against a hung store is abandoned and
// retried with backoff. Default 10 s; negative removes the bound.
func WithSyncRoundTimeout(d time.Duration) Option {
	return func(c *Config) { c.SyncRoundTimeout = d }
}

// WithTau sets the monitor wakeup period (§3; default 100 ms).
func WithTau(d time.Duration) Option {
	return func(c *Config) { c.Tau = d }
}

// WithMode sets the instrumentation level.
func WithMode(m Mode) Option {
	return func(c *Config) { c.Mode = m }
}

// WithImmunity selects weak or strong immunity (§5.4).
func WithImmunity(l ImmunityLevel) Option {
	return func(c *Config) { c.Immunity = l }
}

// WithGuard selects the §5.6 avoidance guard implementation.
func WithGuard(g GuardKind) Option {
	return func(c *Config) { c.Guard = g }
}

// WithMatchDepth sets the matching depth recorded in new signatures
// (§5.5; default 4).
func WithMatchDepth(d int) Option {
	return func(c *Config) { c.MatchDepth = d }
}

// WithCalibration arms dynamic matching-depth calibration (§5.5) with
// the given ladder parameters; zero values keep the defaults.
func WithCalibration(maxDepth, na int, nt uint64) Option {
	return func(c *Config) {
		c.Calibrate = true
		c.CalibMaxDepth = maxDepth
		c.CalibNA = na
		c.CalibNT = nt
	}
}

// WithMaxYield bounds one yield episode (§5.7); negative disables the
// bound.
func WithMaxYield(d time.Duration) Option {
	return func(c *Config) { c.MaxYield = d }
}

// WithGuardShards splits the avoidance guard into n independently
// lockable shards (n <= 1 keeps the single global guard). Decision
// operations still acquire every shard; bookkeeping (acquired/release)
// takes only the lock's shard plus the thread's home shard. Most
// workloads should not need this — the lock-free fast path already keeps
// safe traffic off the guard entirely; sharding targets residual guarded
// bookkeeping contention (e.g. dense dangerous-stack traffic over many
// independent locks, or the data-structs ablation).
func WithGuardShards(n int) Option {
	return func(c *Config) { c.GuardShards = n }
}

// WithThreadTTL bounds how long an idle implicitly-registered goroutine
// keeps its thread slot before the runtime prunes and recycles it
// (default one minute; negative disables pruning). Explicit
// RegisterThread handles are never pruned.
func WithThreadTTL(d time.Duration) Option {
	return func(c *Config) { c.ThreadTTL = d }
}

// WithoutFastPath forces every lock request through the guarded §5.4
// protocol, disabling the epoch-validated safe-stack bypass — for
// benchmark baselines and differential testing.
func WithoutFastPath() Option {
	return func(c *Config) { c.DisableFastPath = true }
}

// WithMaxThreads sizes the thread slot table (default 1024).
func WithMaxThreads(n int) Option {
	return func(c *Config) { c.MaxThreads = n }
}

// WithStackDepth sets the number of frames captured per lock operation.
func WithStackDepth(n int) Option {
	return func(c *Config) { c.StackDepth = n }
}

// WithRecovery installs the §3 deadlock recovery hook, called on the
// monitor goroutine after the signature is archived.
func WithRecovery(fn func(DeadlockInfo)) Option {
	return func(c *Config) { c.OnDeadlock = fn }
}

// WithAbortRecovery arms the built-in recovery policy: deadlock victims'
// lock waits are aborted so their waits end with ErrDeadlockRecovered
// (LockCtx returns it; the panic-free sync-shaped Lock panics with it) —
// the in-process analog of the paper's restart. Composes with
// WithRecovery: the hook still runs after the aborts.
func WithAbortRecovery() Option {
	return func(c *Config) { c.RecoverAborts = true }
}

// WithStarvationHook installs the starvation/restart hook; with strong
// immunity this is the restart hook (§5.4).
func WithStarvationHook(fn func(StarvationInfo)) Option {
	return func(c *Config) { c.OnStarvation = fn }
}

// WithObserver registers an observability callback: fn receives every
// typed Event the runtime publishes (deadlocks, archives, disables,
// yields, recoveries, sync rounds, history changes), on a dedicated
// dispatcher goroutine. Delivery is bounded and non-blocking — a
// stalled fn makes events drop oldest-first (Stats().EventsDropped),
// and can never stall a locker, the monitor, or Stop. May be repeated;
// observers run in registration order. For dynamic consumers prefer
// Runtime.Subscribe.
func WithObserver(fn func(Event)) Option {
	return func(c *Config) { c.Observers = append(c.Observers, fn) }
}

// WithEventBuffer sizes the observability event ring and each
// subscriber channel (default DefaultEventBuffer = 256). Larger buffers
// absorb bigger bursts before dropping; the memory cost is one slot per
// entry per subscriber. The env form is DIMMUNIX_EVENT_BUFFER.
func WithEventBuffer(n int) Option {
	return func(c *Config) { c.EventBuffer = n }
}

// WithEventBatch sets the per-thread monitor-publication batch size
// (default core.DefaultEventBatch = 64; n <= 1 publishes every event
// immediately). Bookkeeping events — fast-tier and guarded acquisitions
// and releases — accumulate in a per-thread buffer that reaches the
// monitor queue as one carrier event when full, when the thread is about
// to block or exit, and at the start of every monitor pass, so detection
// latency stays bounded by τ and the §5.2 release-before-acquired order
// is preserved. Larger batches cut queue traffic and allocation on the
// uncontended fast path; the cost is up to n events of monitor-side
// staleness for threads that are neither blocking nor being swept. The
// env form is DIMMUNIX_EVENT_BATCH.
func WithEventBatch(n int) Option {
	return func(c *Config) { c.EventBatch = n }
}

// WithTraceRecorder arms trace mode: every acquisition event the
// monitor drains — fast-tier operations included — is appended to the
// binary journal at path, for offline deadlock prediction with
// dimmunix-predict. Recording rides the monitor goroutine, so the lock
// path pays nothing for it. The journal rotates to path+".1" at the
// size bound (WithTraceMaxBytes). The env form is DIMMUNIX_TRACE.
func WithTraceRecorder(path string) Option {
	return func(c *Config) { c.TracePath = path }
}

// WithTraceMaxBytes bounds the trace journal before rotation (default
// 64 MiB; negative removes the bound). The env form is
// DIMMUNIX_TRACE_MAX_BYTES.
func WithTraceMaxBytes(n int64) Option {
	return func(c *Config) { c.TraceMaxBytes = n }
}

// WithIgnoreDecisions computes avoidance decisions but never yields
// (the Table 1 control configuration).
func WithIgnoreDecisions() Option {
	return func(c *Config) { c.IgnoreDecisions = true }
}

// WithDiscardObsolete removes signatures whose completed calibration
// shows a 100% false-positive rate at the chosen depth (§8).
func WithDiscardObsolete() Option {
	return func(c *Config) { c.DiscardObsolete = true }
}
