// Tests for the Shutdown→Init rebinding of drop-in mutexes: a zero-value
// Mutex/RWMutex bound to a default runtime that is later shut down must
// detach and rebind to the next default runtime instead of staying
// attached (unmonitored) to the stopped one.
package dimmunix_test

import (
	"sync"
	"testing"
	"time"

	"dimmunix"
)

func TestMutexRebindsAfterShutdownInit(t *testing.T) {
	initDefault(t)
	rt1 := dimmunix.Default()

	var mu dimmunix.Mutex
	mu.Lock()
	mu.Unlock()
	c1 := mu.Core()
	if got := rt1.Stats().Acquired; got == 0 {
		t.Fatal("first runtime never saw the acquisition")
	}

	if err := dimmunix.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := dimmunix.Init(dimmunix.WithTau(2 * time.Millisecond)); err != nil {
		t.Fatalf("Init: %v", err)
	}
	rt2 := dimmunix.Default()
	if rt1 == rt2 {
		t.Fatal("Init did not create a fresh runtime")
	}

	mu.Lock()
	mu.Unlock()
	if c2 := mu.Core(); c2 == c1 {
		t.Fatal("mutex still bound to the stopped runtime after Shutdown→Init")
	}
	if got := rt2.Stats().Acquired; got != 1 {
		t.Fatalf("new runtime Acquired = %d, want 1: rebound mutex not monitored", got)
	}
}

func TestMutexLockedAcrossShutdownUnbindsLazily(t *testing.T) {
	initDefault(t)

	var mu dimmunix.Mutex
	mu.Lock()
	c1 := mu.Core()

	if err := dimmunix.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := dimmunix.Init(dimmunix.WithTau(2 * time.Millisecond)); err != nil {
		t.Fatalf("Init: %v", err)
	}

	// Held across the transition: operations keep going through the old
	// binding (the holder must unlock what it locked)...
	if mu.TryLock() {
		t.Fatal("TryLock succeeded on a held mutex")
	}
	if mu.Core() != c1 {
		t.Fatal("held mutex rebound out from under its holder")
	}
	mu.Unlock()

	// ...and once free, the next operation rebinds.
	mu.Lock()
	defer mu.Unlock()
	if mu.Core() == c1 {
		t.Fatal("freed mutex did not rebind to the new runtime")
	}
	if got := dimmunix.Default().Stats().Acquired; got != 1 {
		t.Fatalf("new runtime Acquired = %d, want 1", got)
	}
}

func TestRWMutexRebindsAfterShutdownInit(t *testing.T) {
	initDefault(t)

	var rw dimmunix.RWMutex
	rw.RLock()
	rw.RUnlock()
	c1 := rw.Core()

	if err := dimmunix.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	if err := dimmunix.Init(dimmunix.WithTau(2 * time.Millisecond)); err != nil {
		t.Fatalf("Init: %v", err)
	}

	rw.Lock()
	rw.Unlock()
	rw.RLock()
	rw.RUnlock()
	if rw.Core() == c1 {
		t.Fatal("RWMutex still bound to the stopped runtime")
	}
	if got := dimmunix.Default().Stats().Acquired; got != 2 {
		t.Fatalf("new runtime Acquired = %d, want 2", got)
	}
}

// TestRebindUnderConcurrentLockTraffic hammers one drop-in mutex from
// several goroutines across repeated Shutdown→Init transitions. The
// retire protocol must preserve mutual exclusion throughout: x++ under
// the lock is unsynchronized otherwise, so -race proves exclusion, and
// stragglers bounced off a retired binding must retry, not panic.
func TestRebindUnderConcurrentLockTraffic(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	var x int
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				mu.Lock()
				x++
				mu.Unlock()
			}
		}()
	}
	for i := 0; i < 25; i++ {
		time.Sleep(2 * time.Millisecond)
		if err := dimmunix.Shutdown(); err != nil {
			t.Errorf("Shutdown: %v", err)
			break
		}
		// A lazy Default may win the re-creation race; ErrInitialized is
		// then expected.
		_ = dimmunix.Init(dimmunix.WithTau(2 * time.Millisecond))
	}
	close(stop)
	wg.Wait()
	if x == 0 {
		t.Fatal("no lock traffic happened")
	}
}

func TestShutdownWithoutInitRebindsOnLazyDefault(t *testing.T) {
	initDefault(t)

	var mu dimmunix.Mutex
	mu.Lock()
	mu.Unlock()
	c1 := mu.Core()

	if err := dimmunix.Shutdown(); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	// No Init: the next Lock lazily creates a fresh default runtime and
	// the mutex rebinds to it.
	mu.Lock()
	mu.Unlock()
	t.Cleanup(func() { dimmunix.Shutdown() })
	if mu.Core() == c1 {
		t.Fatal("mutex did not rebind through the lazy Default path")
	}
}
