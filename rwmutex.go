package dimmunix

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// RWMutex is a drop-in, deadlock-immune replacement for sync.RWMutex.
// The zero value is ready to use and binds to the process-wide default
// Runtime on first use, like Mutex.
//
// The writer path runs the full §5.4 avoidance protocol; the reader path
// runs the same request protocol and its holds join the avoidance
// structures as shared ("reader-held") edges, so reader call sites
// participate in deadlock signatures — a scenario class beyond the
// original paper. Writers are preferred over new readers, but a thread
// that already holds a read lock is granted recursive read acquisition
// even while a writer waits (removing sync.RWMutex's recursive-RLock
// deadlock).
//
// A RWMutex must not be copied after first use.
type RWMutex struct {
	c atomic.Pointer[core.RWMutex]
}

// core returns the bound instrumented mutex, binding to the default
// Runtime on first use.
func (rw *RWMutex) core() *core.RWMutex {
	if c := rw.c.Load(); c != nil {
		return c
	}
	c := Default().NewRWMutex()
	if rw.c.CompareAndSwap(nil, c) {
		return c
	}
	return rw.c.Load()
}

// Core exposes the underlying explicit-runtime RWMutex (binding it
// first if needed), for interop with the Thread fast path.
func (rw *RWMutex) Core() *CoreRWMutex { return rw.core() }

// Lock write-locks, running the full avoidance protocol. It panics only
// if a deadlock-recovery abort unwinds this thread's wait; the panic
// value is the error itself, so a supervisor can recover() and test
// errors.Is(v.(error), ErrDeadlockRecovered).
func (rw *RWMutex) Lock() {
	if err := rw.core().Lock(); err != nil {
		panic(err)
	}
}

// Unlock write-unlocks. It panics if the lock is not write-locked,
// matching sync.RWMutex. Like sync, a write-locked RWMutex may be handed
// off and unlocked by a different goroutine.
func (rw *RWMutex) Unlock() {
	c := rw.c.Load()
	if c == nil {
		panic("dimmunix: Unlock of unlocked RWMutex")
	}
	if err := c.UnlockHandoff(); err != nil {
		if errors.Is(err, ErrNotOwner) {
			panic("dimmunix: Unlock of unlocked RWMutex")
		}
		panic("dimmunix: RWMutex.Unlock: " + err.Error())
	}
}

// RLock read-locks. The acquisition participates in the avoidance
// protocol; the hold is shared with other readers.
func (rw *RWMutex) RLock() {
	if err := rw.core().RLock(); err != nil {
		panic(err)
	}
}

// RUnlock releases one read lock held by the calling goroutine. It
// panics if the calling goroutine holds no read lock.
func (rw *RWMutex) RUnlock() {
	c := rw.c.Load()
	if c == nil {
		panic("dimmunix: RUnlock of unlocked RWMutex")
	}
	if err := c.RUnlock(); err != nil {
		panic("dimmunix: RUnlock: " + err.Error())
	}
}

// TryLock attempts the write lock without blocking; a YIELD avoidance
// decision counts as failure.
func (rw *RWMutex) TryLock() bool {
	ok, err := rw.core().TryLock()
	if err != nil {
		panic(err)
	}
	return ok
}

// TryRLock attempts a read lock without blocking.
func (rw *RWMutex) TryRLock() bool {
	ok, err := rw.core().TryRLock()
	if err != nil {
		panic(err)
	}
	return ok
}

// LockCtx write-locks, giving up when ctx fires (returning ctx.Err())
// or when a deadlock-recovery abort unwinds the wait (returning
// ErrDeadlockRecovered).
func (rw *RWMutex) LockCtx(ctx context.Context) error {
	return rw.core().LockCtx(ctx)
}

// RLockCtx read-locks with the same cancellation behavior as LockCtx.
func (rw *RWMutex) RLockCtx(ctx context.Context) error {
	return rw.core().RLockCtx(ctx)
}

// LockTimeout write-locks, failing with ErrTimeout after d.
func (rw *RWMutex) LockTimeout(d time.Duration) error {
	return rw.core().LockTimeout(d)
}

// RLockTimeout read-locks, failing with ErrTimeout after d.
func (rw *RWMutex) RLockTimeout(d time.Duration) error {
	return rw.core().RLockTimeout(d)
}

// RLocker returns a sync.Locker whose Lock and Unlock call RLock and
// RUnlock, like sync.RWMutex.RLocker.
func (rw *RWMutex) RLocker() sync.Locker { return (*rlocker)(rw) }

type rlocker RWMutex

func (r *rlocker) Lock()   { (*RWMutex)(r).RLock() }
func (r *rlocker) Unlock() { (*RWMutex)(r).RUnlock() }
