package dimmunix

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// RWMutex is a drop-in, deadlock-immune replacement for sync.RWMutex.
// The zero value is ready to use and binds to the process-wide default
// Runtime on first use, like Mutex.
//
// The writer path runs the full §5.4 avoidance protocol; the reader path
// runs the same request protocol and its holds join the avoidance
// structures as shared ("reader-held") edges, so reader call sites
// participate in deadlock signatures — a scenario class beyond the
// original paper. Writers are preferred over new readers, but a thread
// that already holds a read lock is granted recursive read acquisition
// even while a writer waits (removing sync.RWMutex's recursive-RLock
// deadlock).
//
// A RWMutex must not be copied after first use.
type RWMutex struct {
	b atomic.Pointer[rwBinding]
}

// rwBinding pairs the instrumented mutex with the default-runtime
// generation it bound under; a stale generation triggers a rebind.
type rwBinding struct {
	c   *core.RWMutex
	gen uint64
}

// core returns the bound instrumented mutex, binding to the default
// Runtime on first use and rebinding after a Shutdown→Init transition
// (when the old binding's runtime was replaced and the lock is free).
func (rw *RWMutex) core() *core.RWMutex {
	b := rw.b.Load()
	if b != nil && b.gen == generation() {
		return b.c
	}
	return rw.rebind(b)
}

func (rw *RWMutex) rebind(old *rwBinding) *core.RWMutex {
	for {
		if old != nil {
			if old.gen == generation() {
				// A racing rebind (or Init) already refreshed it.
				return old.c
			}
			if !old.c.Retire() {
				// Still held, or a writer is queued, through the
				// previous runtime; see Mutex.rebind.
				return old.c
			}
		}
		// See Mutex.rebind for the generation-around-Default protocol.
		gen := generation()
		rt := Default()
		if generation() != gen {
			old = rw.b.Load()
			continue
		}
		nb := &rwBinding{c: rt.NewRWMutex(), gen: gen}
		if rw.b.CompareAndSwap(old, nb) {
			return nb.c
		}
		old = rw.b.Load()
	}
}

// Core exposes the underlying explicit-runtime RWMutex (binding it
// first if needed), for interop with the Thread fast path.
func (rw *RWMutex) Core() *CoreRWMutex { return rw.core() }

// Lock write-locks, running the full avoidance protocol. It panics only
// if a deadlock-recovery abort unwinds this thread's wait; the panic
// value is the error itself, so a supervisor can recover() and test
// errors.Is(v.(error), ErrDeadlockRecovered).
func (rw *RWMutex) Lock() {
	if err := retryRetired(func() error { return rw.core().Lock() }); err != nil {
		panic(err)
	}
}

// Unlock write-unlocks. It panics if the lock is not write-locked,
// matching sync.RWMutex. Like sync, a write-locked RWMutex may be handed
// off and unlocked by a different goroutine.
func (rw *RWMutex) Unlock() {
	b := rw.b.Load()
	if b == nil {
		panic("dimmunix: Unlock of unlocked RWMutex")
	}
	if err := b.c.UnlockHandoff(); err != nil {
		if errors.Is(err, ErrNotOwner) {
			panic("dimmunix: Unlock of unlocked RWMutex")
		}
		panic("dimmunix: RWMutex.Unlock: " + err.Error())
	}
}

// RLock read-locks. The acquisition participates in the avoidance
// protocol; the hold is shared with other readers.
func (rw *RWMutex) RLock() {
	if err := retryRetired(func() error { return rw.core().RLock() }); err != nil {
		panic(err)
	}
}

// RUnlock releases one read lock held by the calling goroutine. It
// panics if the calling goroutine holds no read lock.
func (rw *RWMutex) RUnlock() {
	b := rw.b.Load()
	if b == nil {
		panic("dimmunix: RUnlock of unlocked RWMutex")
	}
	if err := b.c.RUnlock(); err != nil {
		panic("dimmunix: RUnlock: " + err.Error())
	}
}

// TryLock attempts the write lock without blocking; a YIELD avoidance
// decision counts as failure.
func (rw *RWMutex) TryLock() bool {
	ok, err := retryRetiredOK(func() (bool, error) { return rw.core().TryLock() })
	if err != nil {
		panic(err)
	}
	return ok
}

// TryRLock attempts a read lock without blocking.
func (rw *RWMutex) TryRLock() bool {
	ok, err := retryRetiredOK(func() (bool, error) { return rw.core().TryRLock() })
	if err != nil {
		panic(err)
	}
	return ok
}

// LockCtx write-locks, giving up when ctx fires (returning ctx.Err())
// or when a deadlock-recovery abort unwinds the wait (returning
// ErrDeadlockRecovered).
func (rw *RWMutex) LockCtx(ctx context.Context) error {
	return retryRetired(func() error { return rw.core().LockCtx(ctx) })
}

// RLockCtx read-locks with the same cancellation behavior as LockCtx.
func (rw *RWMutex) RLockCtx(ctx context.Context) error {
	return retryRetired(func() error { return rw.core().RLockCtx(ctx) })
}

// LockTimeout write-locks, failing with ErrTimeout after d.
func (rw *RWMutex) LockTimeout(d time.Duration) error {
	return retryRetired(func() error { return rw.core().LockTimeout(d) })
}

// RLockTimeout read-locks, failing with ErrTimeout after d.
func (rw *RWMutex) RLockTimeout(d time.Duration) error {
	return retryRetired(func() error { return rw.core().RLockTimeout(d) })
}

// RLocker returns a sync.Locker whose Lock and Unlock call RLock and
// RUnlock, like sync.RWMutex.RLocker.
func (rw *RWMutex) RLocker() sync.Locker { return (*rlocker)(rw) }

type rlocker RWMutex

func (r *rlocker) Lock()   { (*RWMutex)(r).RLock() }
func (r *rlocker) Unlock() { (*RWMutex)(r).RUnlock() }
