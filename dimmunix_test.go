// Public API tests: everything here goes through the facade only, the way
// a downstream user would.
package dimmunix_test

import (
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dimmunix"
)

func apiConfig() dimmunix.Config {
	return dimmunix.Config{
		Tau:        2 * time.Millisecond,
		MatchDepth: 2,
		MaxYield:   5 * time.Second,
	}
}

//go:noinline
func apiLockFirst(t *dimmunix.Thread, m *dimmunix.CoreMutex) error { return m.LockT(t) }

//go:noinline
func apiLockSecond(t *dimmunix.Thread, m *dimmunix.CoreMutex) error { return m.LockT(t) }

func apiDeadlock(rt *dimmunix.Runtime, a, b *dimmunix.CoreMutex) (error, error) {
	t1 := rt.RegisterThread("T1")
	t2 := rt.RegisterThread("T2")
	defer t1.Close()
	defer t2.Close()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e1 = apiLockFirst(t1, a); e1 != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
		if e1 = b.LockT(t1); e1 != nil {
			_ = a.UnlockT(t1)
			return
		}
		_ = b.UnlockT(t1)
		_ = a.UnlockT(t1)
	}()
	go func() {
		defer wg.Done()
		if e2 = apiLockSecond(t2, b); e2 != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
		if e2 = a.LockT(t2); e2 != nil {
			_ = b.UnlockT(t2)
			return
		}
		_ = a.UnlockT(t2)
		_ = b.UnlockT(t2)
	}()
	wg.Wait()
	return e1, e2
}

func TestPublicAPIImmunityLifecycle(t *testing.T) {
	dir := t.TempDir()
	cfg := apiConfig()
	cfg.HistoryPath = filepath.Join(dir, "hist.json")
	var rt *dimmunix.Runtime
	cfg.OnDeadlock = func(info dimmunix.DeadlockInfo) {
		rt.AbortThreads(info.ThreadIDs...)
	}
	rt = dimmunix.MustNew(cfg)
	a, b := rt.NewMutex(), rt.NewMutex()

	e1, e2 := apiDeadlock(rt, a, b)
	if !errors.Is(e1, dimmunix.ErrDeadlockRecovered) && !errors.Is(e2, dimmunix.ErrDeadlockRecovered) {
		t.Fatalf("expected recovery, got %v / %v", e1, e2)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("history = %d", rt.History().Len())
	}
	e1, e2 = apiDeadlock(rt, a, b)
	if e1 != nil || e2 != nil {
		t.Fatalf("immunized run failed: %v / %v", e1, e2)
	}
	if rt.Stats().Yields == 0 {
		t.Error("no yields recorded")
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}

	// Immunity persists: LoadHistory sees the archive.
	h, err := dimmunix.LoadHistory(cfg.HistoryPath)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Fatalf("persisted history = %d", h.Len())
	}
}

func TestLastAvoidedAndDisable(t *testing.T) {
	var rt *dimmunix.Runtime
	cfg := apiConfig()
	cfg.OnDeadlock = func(info dimmunix.DeadlockInfo) {
		rt.AbortThreads(info.ThreadIDs...)
	}
	rt = dimmunix.MustNew(cfg)
	defer rt.Stop()
	a, b := rt.NewMutex(), rt.NewMutex()
	if rt.LastAvoided() != nil {
		t.Fatal("LastAvoided must start nil")
	}
	if rt.DisableLastAvoided() {
		t.Fatal("DisableLastAvoided without an avoidance must be false")
	}
	apiDeadlock(rt, a, b) // contract
	apiDeadlock(rt, a, b) // avoided
	sig := rt.LastAvoided()
	if sig == nil {
		t.Fatal("LastAvoided is nil after an avoidance")
	}
	if !rt.DisableLastAvoided() {
		t.Fatal("DisableLastAvoided failed")
	}
	if !rt.History().Get(sig.ID).Disabled {
		t.Error("signature not disabled in history")
	}
	// With the signature disabled, the pattern is no longer avoided:
	// the deadlock may well reoccur — tolerate either outcome, but the
	// run must terminate (recovery hook is installed).
	apiDeadlock(rt, a, b)
}

func TestMutexKindsViaFacade(t *testing.T) {
	rt := dimmunix.MustNew(apiConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()

	rec := rt.NewMutexKind(dimmunix.Recursive)
	if err := rec.LockT(th); err != nil {
		t.Fatal(err)
	}
	if err := rec.LockT(th); err != nil {
		t.Fatal(err)
	}
	_ = rec.UnlockT(th)
	_ = rec.UnlockT(th)

	ec := rt.NewMutexKind(dimmunix.ErrorCheck)
	_ = ec.LockT(th)
	if err := ec.LockT(th); !errors.Is(err, dimmunix.ErrSelfDeadlock) {
		t.Fatalf("errorcheck relock: %v", err)
	}
	_ = ec.UnlockT(th)

	n := rt.NewMutex()
	if n.Kind() != dimmunix.Normal {
		t.Error("NewMutex must be Normal")
	}
	ok, err := n.TryLockT(th)
	if !ok || err != nil {
		t.Fatal("trylock")
	}
	if err := n.LockTimeoutT(th, time.Millisecond); !errors.Is(err, dimmunix.ErrTimeout) {
		// Normal mutex relock via timeout must time out, not self-deadlock forever.
		t.Fatalf("timed relock: %v", err)
	}
	_ = n.UnlockT(th)
}

func TestImplicitAPIFacade(t *testing.T) {
	rt := dimmunix.MustNew(apiConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if err := m.Lock(); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				if err := m.Unlock(); err != nil {
					t.Errorf("unlock: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := rt.Stats().Acquired; got != 400 {
		t.Errorf("acquired = %d, want 400", got)
	}
}

func TestMustLockPanicsAfterAbort(t *testing.T) {
	rt := dimmunix.MustNew(apiConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	m.MustLock()
	m.MustUnlock()
	defer func() {
		if recover() == nil {
			t.Error("MustUnlock on free mutex must panic (ErrNotOwner)")
		}
	}()
	m.MustUnlock()
}
