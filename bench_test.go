// bench_test.go provides testing.B counterparts for every table and
// figure of the paper's evaluation. The wall-clock sweeps that regenerate
// the actual rows/series live in cmd/dimmunix-bench (internal/bench);
// these benchmarks measure the per-operation costs underlying them.
package dimmunix_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix"
	"dimmunix/internal/gatelock"
	"dimmunix/internal/simapp"
	"dimmunix/internal/workload"
)

func newRT(b *testing.B, cfg dimmunix.Config) *dimmunix.Runtime {
	b.Helper()
	if cfg.Tau == 0 {
		cfg.Tau = 50 * time.Millisecond
	}
	var rt *dimmunix.Runtime
	if cfg.OnDeadlock == nil {
		cfg.OnDeadlock = func(info dimmunix.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		}
	}
	rt = dimmunix.MustNew(cfg)
	b.Cleanup(func() { rt.Stop() })
	return rt
}

// withHistory populates rt with h synthesized two-stack signatures drawn
// from a short workload warmup.
func withHistory(b *testing.B, rt *dimmunix.Runtime, r *workload.Runner, h, depth int) {
	b.Helper()
	r.Warmup(100 * time.Millisecond)
	hist, err := workload.SynthesizeHistory(rt.CapturedStacks(), h, 2, depth, 7)
	if err != nil {
		b.Fatal(err)
	}
	rt.History().Merge(hist)
}

// lockOpBench measures single-threaded lock+unlock through a runtime in
// the given configuration with h signatures in history.
func lockOpBench(b *testing.B, cfg dimmunix.Config, h int) {
	rt := newRT(b, cfg)
	r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
	if h > 0 && cfg.Mode != dimmunix.ModeOff {
		withHistory(b, rt, r, h, 4)
	}
	th := rt.RegisterThread("bench")
	defer th.Close()
	m := rt.NewMutex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.LockT(th); err != nil {
			b.Fatal(err)
		}
		_ = m.UnlockT(th)
	}
}

// --- Table 1: immunized trial cost per bug -------------------------------

func BenchmarkTable1_MySQLImmunizedTrial(b *testing.B) {
	rt := newRT(b, dimmunix.Config{Tau: 2 * time.Millisecond})
	bug := simapp.Bugs()[0] // MySQL 37080
	app := bug.New(rt)      // dimmunix.Runtime is an alias of core.Runtime
	// Contract the pattern once.
	for i := 0; i < 6; i++ {
		errs := app.Exploit(30 * time.Millisecond)
		if rt.History().Len() >= 1 && simapp.Clean(errs) {
			break
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if errs := app.Exploit(time.Millisecond); !simapp.Clean(errs) {
			b.Fatal("immunized trial deadlocked")
		}
	}
}

// --- Table 2: immunized invitation cost ----------------------------------

func BenchmarkTable2_VectorImmunizedRun(b *testing.B) {
	rt := newRT(b, dimmunix.Config{Tau: 2 * time.Millisecond, MatchDepth: 2})
	inv := collectionsVectorRunner(rt)
	inv(30 * time.Millisecond) // first exposure: deadlock + archive
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inv(0)
	}
}

// collectionsVectorRunner avoids importing the collections package's
// internals here: a local two-vector addAll exploit in the same shape.
func collectionsVectorRunner(rt *dimmunix.Runtime) func(hold time.Duration) {
	a, bm := rt.NewMutexKind(dimmunix.Recursive), rt.NewMutexKind(dimmunix.Recursive)
	addAll := func(t *dimmunix.Thread, first, second *dimmunix.CoreMutex, hold time.Duration) {
		if first.LockT(t) != nil {
			return
		}
		time.Sleep(hold)
		if second.LockT(t) == nil {
			_ = second.UnlockT(t)
		}
		_ = first.UnlockT(t)
	}
	return func(hold time.Duration) {
		done := make(chan struct{}, 2)
		go func() {
			t := rt.RegisterThread("v1")
			defer t.Close()
			addAll(t, a, bm, hold)
			done <- struct{}{}
		}()
		go func() {
			t := rt.RegisterThread("v2")
			defer t.Close()
			addAll(t, bm, a, hold)
			done <- struct{}{}
		}()
		<-done
		<-done
	}
}

// --- Fig 4: end-to-end request cost (server simulator) -------------------

func BenchmarkFig4_RequestBaseline(b *testing.B) { fig4Request(b, dimmunix.ModeOff, 0) }
func BenchmarkFig4_RequestDimmunix32(b *testing.B) {
	fig4Request(b, dimmunix.ModeFull, 32)
}
func BenchmarkFig4_RequestDimmunix128(b *testing.B) {
	fig4Request(b, dimmunix.ModeFull, 128)
}

func fig4Request(b *testing.B, mode dimmunix.Mode, h int) {
	rt := newRT(b, dimmunix.Config{Mode: mode})
	// A single-worker slice of the server loop: 6 ops per request over
	// striped locks.
	locks := make([]*dimmunix.CoreMutex, 16)
	for i := range locks {
		locks[i] = rt.NewMutex()
	}
	th := rt.RegisterThread("srv")
	defer th.Close()
	if h > 0 && mode != dimmunix.ModeOff {
		r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
		withHistory(b, rt, r, h, 4)
	}
	var x atomic.Int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for op := 0; op < 6; op++ {
			m := locks[(i*7+op*3)%len(locks)]
			if m.LockT(th) == nil {
				x.Add(1)
				_ = m.UnlockT(th)
			}
		}
	}
}

// --- Fig 5: lock op cost, baseline vs Dimmunix ---------------------------

func BenchmarkFig5_LockOpBaseline(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Mode: dimmunix.ModeOff}, 0)
}

func BenchmarkFig5_LockOpDimmunix64Sigs(b *testing.B) {
	lockOpBench(b, dimmunix.Config{}, 64)
}

// --- Fig 6: lock op cost with in-critical-section work -------------------

func BenchmarkFig6_DinSweep(b *testing.B) {
	for _, din := range []time.Duration{0, time.Microsecond, 10 * time.Microsecond} {
		b.Run(fmt.Sprintf("din=%s", din), func(b *testing.B) {
			rt := newRT(b, dimmunix.Config{})
			r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
			withHistory(b, rt, r, 64, 4)
			th := rt.RegisterThread("bench")
			defer th.Close()
			m := rt.NewMutex()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.LockT(th)
				spinFor(din)
				_ = m.UnlockT(th)
			}
		})
	}
}

func spinFor(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// --- Fig 7: lock op cost vs history size ---------------------------------

func BenchmarkFig7_HistorySize(b *testing.B) {
	for _, h := range []int{2, 64, 256} {
		b.Run(fmt.Sprintf("sigs=%d", h), func(b *testing.B) {
			lockOpBench(b, dimmunix.Config{}, h)
		})
	}
}

func BenchmarkFig7_MatchDepth(b *testing.B) {
	for _, d := range []int{4, 8} {
		b.Run(fmt.Sprintf("depth=%d", d), func(b *testing.B) {
			rt := newRT(b, dimmunix.Config{MatchDepth: d, StackDepth: 12})
			r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
			withHistory(b, rt, r, 64, d)
			th := rt.RegisterThread("bench")
			defer th.Close()
			m := rt.NewMutex()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				_ = m.LockT(th)
				_ = m.UnlockT(th)
			}
		})
	}
}

// --- Fig 8: overhead breakdown -------------------------------------------

func BenchmarkFig8_Instrumentation(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Mode: dimmunix.ModeInstrument}, 0)
}

func BenchmarkFig8_DataStructures(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Mode: dimmunix.ModeDataStructs}, 0)
}

func BenchmarkFig8_FullAvoidance(b *testing.B) {
	lockOpBench(b, dimmunix.Config{}, 64)
}

// --- Fig 9: matching depth + gate locks ----------------------------------

func BenchmarkFig9_MatchDepth1(b *testing.B)  { fig9Depth(b, 1) }
func BenchmarkFig9_MatchDepth10(b *testing.B) { fig9Depth(b, 10) }

func fig9Depth(b *testing.B, depth int) {
	rt := newRT(b, dimmunix.Config{MatchDepth: depth, StackDepth: 12, ProbeDepth: 10, MaxYield: time.Millisecond})
	r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
	withHistory(b, rt, r, 64, depth)
	th := rt.RegisterThread("bench")
	defer th.Close()
	m := rt.NewMutex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LockT(th)
		_ = m.UnlockT(th)
	}
}

func BenchmarkFig9_GateLockEnterExit(b *testing.B) {
	mgr := gatelock.NewManager()
	site := gatelock.Site{Func: "w.lockOp", File: "w.go", Line: 1}
	mgr.AddDeadlock([]gatelock.Site{site, {Func: "w.lockOp", File: "w.go", Line: 2}})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tok := mgr.Enter(site)
		mgr.Exit(tok)
	}
}

// --- Ablations (DESIGN.md section 5) --------------------------------------

func BenchmarkAblationGuardMutex(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Guard: dimmunix.GuardMutex}, 64)
}

func BenchmarkAblationGuardSpin(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Guard: dimmunix.GuardSpin}, 64)
}

func BenchmarkAblationGuardFilter(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Guard: dimmunix.GuardFilter, MaxThreads: 16}, 64)
}

func BenchmarkAblationThreadIDExplicit(b *testing.B) {
	rt := newRT(b, dimmunix.Config{})
	th := rt.RegisterThread("bench")
	defer th.Close()
	m := rt.NewMutex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.LockT(th)
		_ = m.UnlockT(th)
	}
}

func BenchmarkAblationThreadIDImplicit(b *testing.B) {
	rt := newRT(b, dimmunix.Config{})
	m := rt.NewMutex()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = m.Lock()
		_ = m.Unlock()
	}
}

func BenchmarkAblationCalibrationOn(b *testing.B) {
	lockOpBench(b, dimmunix.Config{Calibrate: true}, 64)
}

// --- Drop-in surface ------------------------------------------------------
// The zero-value path = implicit thread identity + one facade indirection
// over the explicit LockT fast path measured above.

func initDefaultBench(b *testing.B) {
	b.Helper()
	_ = dimmunix.Shutdown()
	if err := dimmunix.Init(dimmunix.WithTau(50 * time.Millisecond)); err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { dimmunix.Shutdown() })
}

func BenchmarkDropInMutex(b *testing.B) {
	initDefaultBench(b)
	var mu dimmunix.Mutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mu.Lock()
		mu.Unlock()
	}
}

func BenchmarkDropInRWMutexWrite(b *testing.B) {
	initDefaultBench(b)
	var rw dimmunix.RWMutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw.Lock()
		rw.Unlock()
	}
}

func BenchmarkDropInRWMutexRead(b *testing.B) {
	initDefaultBench(b)
	var rw dimmunix.RWMutex
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw.RLock()
		rw.RUnlock()
	}
}

// --- Fast-path parallel contention suite ---------------------------------
//
// The two-tier refactor's target workload: many goroutines, each on its
// own (uncontended) mutex, so the only contention is the instrumentation
// path itself. The *Guarded variants disable the lock-free safe-stack
// bypass, measuring the pre-refactor global-guard protocol on identical
// hardware — the ns/op ratio at 8+ goroutines is the acceptance metric.
// "Populated" variants carry 32 non-matching signatures, proving the fast
// tier's classification holds up with a live danger index.

var parallelLadder = []int{1, 2, 8, 32, 128}

func benchLockParallel(b *testing.B, cfg dimmunix.Config, hsigs, g int) {
	rt := newRT(b, cfg)
	if hsigs > 0 && cfg.Mode != dimmunix.ModeOff {
		r := workload.NewRunner(rt, workload.Config{Threads: 2, Locks: 8})
		withHistory(b, rt, r, hsigs, 4)
	}
	ths := make([]*dimmunix.Thread, g)
	ms := make([]*dimmunix.CoreMutex, g)
	for i := range ths {
		ths[i] = rt.RegisterThread("bench")
		ms[i] = rt.NewMutex()
	}
	b.Cleanup(func() {
		for _, th := range ths {
			th.Close()
		}
	})
	per := b.N / g
	if per == 0 {
		per = 1
	}
	var wg sync.WaitGroup
	b.ResetTimer()
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func(th *dimmunix.Thread, m *dimmunix.CoreMutex) {
			defer wg.Done()
			for j := 0; j < per; j++ {
				if err := m.LockT(th); err != nil {
					b.Error(err)
					return
				}
				if err := m.UnlockT(th); err != nil {
					b.Error(err)
					return
				}
			}
		}(ths[i], ms[i])
	}
	wg.Wait()
	b.StopTimer()
	if !cfg.DisableFastPath && cfg.Mode == dimmunix.ModeFull && rt.Stats().FastGos == 0 {
		b.Fatal("fast-path benchmark never took the fast tier")
	}
	if cfg.DisableFastPath && rt.Stats().FastGos != 0 {
		b.Fatal("guarded baseline leaked onto the fast tier")
	}
}

func runParallelLadder(b *testing.B, cfg dimmunix.Config, hsigs int) {
	for _, g := range parallelLadder {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			benchLockParallel(b, cfg, hsigs, g)
		})
	}
}

// BenchmarkLockUncontendedParallel is the tentpole metric: empty history,
// lock-free fast tier on.
func BenchmarkLockUncontendedParallel(b *testing.B) {
	runParallelLadder(b, dimmunix.Config{Mode: dimmunix.ModeFull}, 0)
}

// BenchmarkLockUncontendedParallelGuarded is the pre-refactor path: every
// request runs the guarded §5.4 protocol.
func BenchmarkLockUncontendedParallelGuarded(b *testing.B) {
	runParallelLadder(b, dimmunix.Config{Mode: dimmunix.ModeFull, DisableFastPath: true}, 0)
}

// BenchmarkLockUncontendedParallelPopulated keeps 32 signatures in the
// history; the bench call sites match none of them, so the fast tier
// still applies (one marker check against the live danger index).
func BenchmarkLockUncontendedParallelPopulated(b *testing.B) {
	runParallelLadder(b, dimmunix.Config{Mode: dimmunix.ModeFull}, 32)
}

// BenchmarkLockUncontendedParallelGuardedPopulated: pre-refactor path
// with 32 signatures (index refresh + reverse-index lookups under the
// global guard).
func BenchmarkLockUncontendedParallelGuardedPopulated(b *testing.B) {
	runParallelLadder(b, dimmunix.Config{Mode: dimmunix.ModeFull, DisableFastPath: true}, 32)
}

// BenchmarkLockUncontendedParallelTraced: fast tier on with trace mode
// journaling every acquisition for the offline predictor. The recorder
// hangs off the monitor's drain loop, so the caller-visible cost must
// stay at fast-tier level; the acceptance cap is the guarded baseline —
// if tracing ever costs more than the pre-refactor protocol, it is not
// an always-on-capable canary mode.
func BenchmarkLockUncontendedParallelTraced(b *testing.B) {
	for _, g := range parallelLadder {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			benchLockParallel(b, dimmunix.Config{
				Mode:      dimmunix.ModeFull,
				TracePath: filepath.Join(b.TempDir(), "bench.trace"),
			}, 0, g)
		})
	}
}

// BenchmarkLockBareMutexParallel is the uninstrumented floor: the same
// goroutine/mutex ladder as BenchmarkLockUncontendedParallel over bare
// sync.Mutex. The gap between this and the fast tier is the total cost
// of immunity on the uncontended path (stack walk, classification,
// buffered bookkeeping).
func BenchmarkLockBareMutexParallel(b *testing.B) {
	for _, g := range parallelLadder {
		b.Run(fmt.Sprintf("g%d", g), func(b *testing.B) {
			ms := make([]*sync.Mutex, g)
			for i := range ms {
				ms[i] = new(sync.Mutex)
			}
			per := b.N / g
			if per == 0 {
				per = 1
			}
			var wg sync.WaitGroup
			b.ResetTimer()
			for i := 0; i < g; i++ {
				wg.Add(1)
				go func(m *sync.Mutex) {
					defer wg.Done()
					for j := 0; j < per; j++ {
						m.Lock()
						m.Unlock() //nolint:staticcheck // empty critical section is the point
					}
				}(ms[i])
			}
			wg.Wait()
		})
	}
}

// BenchmarkLockDataStructsShards measures the sharded guard where it is
// designed to help: the data-structs ablation, whose bookkeeping takes
// only the lock-shard/thread-shard pair instead of one global section.
func BenchmarkLockDataStructsShards(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			benchLockParallel(b, dimmunix.Config{
				Mode:        dimmunix.ModeDataStructs,
				GuardShards: shards,
			}, 0, 8)
		})
	}
}
