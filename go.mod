module dimmunix

go 1.24
