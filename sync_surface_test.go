package dimmunix_test

import (
	"path/filepath"
	"testing"
	"time"

	"dimmunix"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

func makeTestSignature() *dimmunix.Signature {
	return signature.New(signature.Deadlock,
		[]stack.Stack{stack.Synthetic(42, 4), stack.Synthetic(43, 4)}, 4)
}

// TestHistorySyncEnvPlumbing: DIMMUNIX_HISTORY_SYNC and
// DIMMUNIX_SYNC_INTERVAL configure the default runtime's shared store,
// and WithHistoryStore / WithSyncInterval override them.
func TestHistorySyncEnvPlumbing(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("DIMMUNIX_HISTORY_SYNC", filepath.Join(dir, "env.json"))
	t.Setenv("DIMMUNIX_SYNC_INTERVAL", "750ms")

	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })
	if err := dimmunix.Init(); err != nil {
		t.Fatal(err)
	}
	cfg := dimmunix.Default().Config()
	if cfg.HistorySync != filepath.Join(dir, "env.json") {
		t.Fatalf("HistorySync = %q", cfg.HistorySync)
	}
	if cfg.SyncInterval != 750*time.Millisecond {
		t.Fatalf("SyncInterval = %v", cfg.SyncInterval)
	}
	if dimmunix.Default().HistoryStore() == nil {
		t.Fatal("env spec did not resolve to a store")
	}

	// Options win over the environment.
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	store, err := dimmunix.OpenHistoryStore(filepath.Join(dir, "opt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := dimmunix.Init(
		dimmunix.WithHistoryStore(store),
		dimmunix.WithSyncInterval(-1),
	); err != nil {
		t.Fatal(err)
	}
	if got := dimmunix.Default().HistoryStore(); got != store {
		t.Fatalf("WithHistoryStore did not override env: %T", got)
	}
	if dimmunix.Default().Config().SyncInterval != -1 {
		t.Fatal("WithSyncInterval did not override env")
	}
}

// TestSharedStoreAcrossDefaultRuntimes: the drop-in surface acquires
// immunity from a store populated by an earlier runtime generation —
// Shutdown publishes, the next Init inherits.
func TestSharedStoreAcrossDefaultRuntimes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "gen.json")
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })

	if err := dimmunix.Init(dimmunix.WithHistorySync(path), dimmunix.WithTau(2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	// Plant a signature through the first generation's history and let
	// Shutdown publish it.
	sig := makeTestSignature()
	dimmunix.Default().History().Add(sig)
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}

	if err := dimmunix.Init(dimmunix.WithHistorySync(path), dimmunix.WithTau(2*time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	if dimmunix.Default().History().Get(sig.ID) == nil {
		t.Fatal("next generation did not inherit the published signature")
	}
}
