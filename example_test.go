package dimmunix_test

import (
	"context"
	"fmt"
	"log"
	"net/http"
	"time"

	"dimmunix"
)

// ExampleRuntime_Subscribe consumes the typed event stream: a type
// switch over the payloads covers exactly the runtime's decision
// points. Delivery is bounded and non-blocking — a slow consumer drops
// events (counted in Stats().EventsDropped) instead of slowing locks.
func ExampleRuntime_Subscribe() {
	_ = dimmunix.Init()
	defer dimmunix.Shutdown()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	events := dimmunix.Default().Subscribe(ctx)
	go func() {
		for ev := range events {
			switch e := ev.(type) {
			case dimmunix.DeadlockDetected:
				fmt.Printf("deadlock %s (new=%v), threads %v\n", e.SigID, e.New, e.ThreadIDs)
			case dimmunix.AvoidanceYield:
				fmt.Printf("yield: thread %d avoided %s\n", e.TID, e.SigID)
			case dimmunix.SyncRoundDone:
				fmt.Printf("sync round: pulled=%d pushed=%v err=%q\n", e.Pulled, e.Pushed, e.Err)
			}
		}
	}()

	var mu dimmunix.Mutex
	mu.Lock()
	mu.Unlock()
	// Output:
}

// ExampleDebugHandler mounts the runtime status endpoint the way a
// production service would, next to expvar on an operations port. GET
// /statusz returns the counter snapshot and a history summary as JSON;
// `curl localhost:6060/statusz` answers "how often did avoidance
// yield, which signatures fire, is the sync loop healthy?".
func ExampleDebugHandler() {
	_ = dimmunix.Init()
	defer dimmunix.Shutdown()

	dimmunix.ExpvarPublish() // adds "dimmunix" to /debug/vars too
	mux := http.NewServeMux()
	mux.Handle("/statusz", dimmunix.DebugHandler(nil))
	srv := &http.Server{Addr: "127.0.0.1:0", Handler: mux}
	go func() {
		if err := srv.ListenAndServe(); err != http.ErrServerClosed {
			log.Print(err)
		}
	}()
	defer srv.Close()
	// Output:
}
