package dimmunix

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// Mutex is a drop-in, deadlock-immune replacement for sync.Mutex. The
// zero value is ready to use:
//
//	var mu dimmunix.Mutex
//	mu.Lock()
//	defer mu.Unlock()
//
// On first Lock the mutex binds itself to the process-wide default
// Runtime (see Init / Default), registering its lock state lazily; from
// then on every acquisition runs the paper's §5.4 avoidance protocol.
// The sync-shaped methods have no error returns and panic on misuse,
// exactly like sync.Mutex; Mutex satisfies sync.Locker.
//
// Like sync.Mutex (and unlike it only in mechanism), a locked Mutex may
// be handed off and unlocked by a different goroutine. If a recovery
// hook (WithAbortRecovery) unwinds a deadlock victim blocked in plain
// Lock, that Lock panics with ErrDeadlockRecovered — the in-process
// restart. Paths that want recovery, timeout, or cancellation as an
// error use LockCtx / LockTimeout instead.
//
// A Mutex must not be copied after first use.
type Mutex struct {
	c atomic.Pointer[core.Mutex]
}

// core returns the bound instrumented mutex, binding to the default
// Runtime on first use.
func (m *Mutex) core() *core.Mutex {
	if c := m.c.Load(); c != nil {
		return c
	}
	c := Default().NewMutex()
	if m.c.CompareAndSwap(nil, c) {
		return c
	}
	return m.c.Load()
}

// Core exposes the underlying explicit-runtime mutex (binding it first
// if needed), for interop with the Thread fast path and Cond.
func (m *Mutex) Core() *CoreMutex { return m.core() }

// Lock acquires the mutex, running the full avoidance protocol. It
// blocks like sync.Mutex.Lock and panics only if a deadlock-recovery
// abort unwinds this thread's wait; the panic value is the error itself,
// so a supervisor can recover() and test errors.Is(v.(error),
// ErrDeadlockRecovered) to treat it as the in-process restart.
func (m *Mutex) Lock() {
	if err := m.core().Lock(); err != nil {
		panic(err)
	}
}

// Unlock releases the mutex. It panics if the mutex is not locked,
// matching sync.Mutex.
func (m *Mutex) Unlock() {
	c := m.c.Load()
	if c == nil {
		panic("dimmunix: Unlock of unlocked Mutex")
	}
	if err := c.UnlockHandoff(); err != nil {
		if errors.Is(err, ErrNotOwner) {
			panic("dimmunix: Unlock of unlocked Mutex")
		}
		panic("dimmunix: Unlock: " + err.Error())
	}
}

// TryLock attempts the lock without blocking, like sync.Mutex.TryLock.
// A YIELD avoidance decision counts as failure: the thread may not enter
// a known-dangerous pattern.
func (m *Mutex) TryLock() bool {
	ok, err := m.core().TryLock()
	if err != nil {
		panic(err)
	}
	return ok
}

// LockCtx acquires the mutex, giving up when ctx is canceled or its
// deadline passes (returning ctx.Err()) or when a deadlock-recovery
// abort unwinds the wait (returning ErrDeadlockRecovered).
func (m *Mutex) LockCtx(ctx context.Context) error {
	return m.core().LockCtx(ctx)
}

// LockTimeout acquires the mutex, failing with ErrTimeout after d.
func (m *Mutex) LockTimeout(d time.Duration) error {
	return m.core().LockTimeout(d)
}
