package dimmunix

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// Mutex is a drop-in, deadlock-immune replacement for sync.Mutex. The
// zero value is ready to use:
//
//	var mu dimmunix.Mutex
//	mu.Lock()
//	defer mu.Unlock()
//
// On first Lock the mutex binds itself to the process-wide default
// Runtime (see Init / Default), registering its lock state lazily; from
// then on every acquisition runs the paper's §5.4 avoidance protocol.
// The sync-shaped methods have no error returns and panic on misuse,
// exactly like sync.Mutex; Mutex satisfies sync.Locker.
//
// Like sync.Mutex (and unlike it only in mechanism), a locked Mutex may
// be handed off and unlocked by a different goroutine. If a recovery
// hook (WithAbortRecovery) unwinds a deadlock victim blocked in plain
// Lock, that Lock panics with ErrDeadlockRecovered — the in-process
// restart. Paths that want recovery, timeout, or cancellation as an
// error use LockCtx / LockTimeout instead.
//
// A Mutex must not be copied after first use.
type Mutex struct {
	b atomic.Pointer[mutexBinding]
}

// mutexBinding pairs the instrumented mutex with the default-runtime
// generation it bound under; a stale generation triggers a rebind.
type mutexBinding struct {
	c   *core.Mutex
	gen uint64
}

// core returns the bound instrumented mutex, binding to the default
// Runtime on first use and rebinding after a Shutdown→Init transition
// (when the old binding's runtime was replaced and the mutex is free).
func (m *Mutex) core() *core.Mutex {
	b := m.b.Load()
	if b != nil && b.gen == generation() {
		return b.c
	}
	return m.rebind(b)
}

func (m *Mutex) rebind(old *mutexBinding) *core.Mutex {
	for {
		if old != nil {
			if old.gen == generation() {
				// A racing rebind (or Init) already refreshed it.
				return old.c
			}
			if !old.c.Retire() {
				// Still held, or an acquisition is in flight, through
				// the previous runtime: the holder must unlock what it
				// locked. Keep the old binding; a later operation
				// rebinds once the mutex is observed free. (Retirement
				// is atomic with token ownership, so a straggler that
				// wins the token after we retire bounces with
				// ErrMutexRetired and re-resolves.)
				return old.c
			}
		}
		// Read the generation around Default() so a lazily created
		// runtime (which bumps the generation) never yields a binding
		// stamped stale at birth.
		gen := generation()
		rt := Default()
		if generation() != gen {
			old = m.b.Load()
			continue
		}
		nb := &mutexBinding{c: rt.NewMutex(), gen: gen}
		if m.b.CompareAndSwap(old, nb) {
			return nb.c
		}
		old = m.b.Load()
	}
}

// Core exposes the underlying explicit-runtime mutex (binding it first
// if needed), for interop with the Thread fast path and Cond.
func (m *Mutex) Core() *CoreMutex { return m.core() }

// retryRetired runs op until it stops failing with ErrMutexRetired: the
// binding was superseded mid-operation by a Shutdown→Init rebind, and
// the next attempt re-resolves the fresh instance via core(). Shared by
// every facade acquisition method.
func retryRetired(op func() error) error {
	for {
		err := op()
		if !errors.Is(err, core.ErrMutexRetired) {
			return err
		}
	}
}

// retryRetiredOK is retryRetired for the (bool, error)-shaped try
// methods.
func retryRetiredOK(op func() (bool, error)) (bool, error) {
	for {
		ok, err := op()
		if !errors.Is(err, core.ErrMutexRetired) {
			return ok, err
		}
	}
}

// Lock acquires the mutex, running the full avoidance protocol. It
// blocks like sync.Mutex.Lock and panics only if a deadlock-recovery
// abort unwinds this thread's wait; the panic value is the error itself,
// so a supervisor can recover() and test errors.Is(v.(error),
// ErrDeadlockRecovered) to treat it as the in-process restart.
func (m *Mutex) Lock() {
	if err := retryRetired(func() error { return m.core().Lock() }); err != nil {
		panic(err)
	}
}

// Unlock releases the mutex. It panics if the mutex is not locked,
// matching sync.Mutex. Unlock always goes through the binding that
// granted the lock, even when a Shutdown has made it stale.
func (m *Mutex) Unlock() {
	b := m.b.Load()
	if b == nil {
		panic("dimmunix: Unlock of unlocked Mutex")
	}
	if err := b.c.UnlockHandoff(); err != nil {
		if errors.Is(err, ErrNotOwner) {
			panic("dimmunix: Unlock of unlocked Mutex")
		}
		panic("dimmunix: Unlock: " + err.Error())
	}
}

// TryLock attempts the lock without blocking, like sync.Mutex.TryLock.
// A YIELD avoidance decision counts as failure: the thread may not enter
// a known-dangerous pattern.
func (m *Mutex) TryLock() bool {
	ok, err := retryRetiredOK(func() (bool, error) { return m.core().TryLock() })
	if err != nil {
		panic(err)
	}
	return ok
}

// LockCtx acquires the mutex, giving up when ctx is canceled or its
// deadline passes (returning ctx.Err()) or when a deadlock-recovery
// abort unwinds the wait (returning ErrDeadlockRecovered).
func (m *Mutex) LockCtx(ctx context.Context) error {
	return retryRetired(func() error { return m.core().LockCtx(ctx) })
}

// LockTimeout acquires the mutex, failing with ErrTimeout after d.
func (m *Mutex) LockTimeout(d time.Duration) error {
	return retryRetired(func() error { return m.core().LockTimeout(d) })
}
