package dimmunix

import (
	"encoding/json"
	"expvar"
	"fmt"
	"io"
	"net/http"
	"sync"

	"dimmunix/internal/core"
	"dimmunix/internal/obs"
)

// HistorySummary is the operator view of a runtime's live signature
// history, served by DebugHandler; SignatureSummary is one entry.
type (
	HistorySummary   = core.HistorySummary
	SignatureSummary = core.SignatureSummary
)

// DebugStatus is the JSON document DebugHandler serves: the full
// counter snapshot plus the history summary.
type DebugStatus struct {
	Stats   Stats          `json:"stats"`
	History HistorySummary `json:"history"`
}

// DebugHandler returns an http.Handler serving rt's status — counters
// and history summary — as JSON, for a /statusz (or /debug/dimmunix)
// route on an operations port:
//
//	mux.Handle("/statusz", dimmunix.DebugHandler(nil))
//
// A nil rt serves the process-wide default Runtime, resolved per
// request (503 until one exists — the handler never forces lazy
// initialization). The handler takes no locks on the hot path; the
// history summary runs one guarded read per request, so keep it off
// high-frequency scrape loops (seconds are fine, per-request is not).
func DebugHandler(rt *Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		target := rt
		if target == nil {
			target = defaultRT.Load()
			if target == nil {
				http.Error(w, "dimmunix: no default runtime yet", http.StatusServiceUnavailable)
				return
			}
		}
		status := DebugStatus{Stats: target.Stats(), History: target.HistorySummary()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status)
	})
}

// MetricsHandler returns an http.Handler serving rt's counters and
// latency percentiles in the Prometheus text exposition format, for a
// /metrics route on an operations port:
//
//	mux.Handle("/metrics", dimmunix.MetricsHandler(nil))
//
// Unlike DebugHandler this endpoint is scrape-friendly: it reads only
// lock-free counters and histogram buckets (no guarded history summary),
// so any scrape interval is safe. A nil rt serves the process-wide
// default Runtime, resolved per request (503 until one exists).
func MetricsHandler(rt *Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		target := rt
		if target == nil {
			target = defaultRT.Load()
			if target == nil {
				http.Error(w, "dimmunix: no default runtime yet", http.StatusServiceUnavailable)
				return
			}
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		writeMetrics(w, target.Stats())
	})
}

// WriteMetrics renders a stats snapshot in the Prometheus text
// exposition format — the same document MetricsHandler serves — for
// callers that want a one-shot dump (CI artifacts, crash reports)
// rather than an HTTP endpoint.
func WriteMetrics(w io.Writer, s Stats) {
	writeMetrics(w, s)
}

// writeMetrics renders the snapshot in Prometheus text format.
func writeMetrics(w io.Writer, s Stats) {
	counter := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP dimmunix_%s %s\n# TYPE dimmunix_%s counter\ndimmunix_%s %d\n", name, help, name, name, v)
	}
	gauge := func(name, help string, v uint64) {
		fmt.Fprintf(w, "# HELP dimmunix_%s %s\n# TYPE dimmunix_%s gauge\ndimmunix_%s %d\n", name, help, name, name, v)
	}
	counter("requests_total", "Guarded-tier lock requests (section 5.4 protocol entries).", s.Requests)
	counter("yields_total", "YIELD decisions (avoidance firings).", s.Yields)
	counter("acquired_total", "Lock acquisitions across both tiers.", s.Acquired)
	counter("releases_total", "Lock releases across both tiers.", s.Releases)
	counter("fast_acquired_total", "Acquisitions served by the lock-free fast tier.", s.FastAcquired)
	counter("guarded_acquired_total", "Acquisitions served by the guarded tier.", s.GuardedAcquired)
	counter("aborts_total", "Max-yield aborts (section 5.7).", s.Aborts)
	counter("deadlocks_detected_total", "Deadlocks the monitor detected.", s.DeadlocksDetected)
	counter("starvations_broken_total", "Starvation episodes broken.", s.StarvationsBroken)
	counter("signatures_saved_total", "Signatures archived by this runtime.", s.SignaturesSaved)
	counter("false_positives_total", "Yield episodes concluded as false positives.", s.FalsePositives)
	counter("recoveries_total", "Deadlocks unwound by abort recovery.", s.Recoveries)
	counter("events_dropped_total", "Observability events dropped by the bounded dispatcher.", s.EventsDropped)
	gauge("live_threads", "Registered threads.", uint64(s.LiveThreads))
	gauge("history_epoch", "Danger-index epoch (history version).", s.HistoryEpoch)
	gauge("history_signatures", "Live signatures in the history.", uint64(s.HistorySignatures))
	lat := func(tier string, h obs.HistSnapshot) {
		fmt.Fprintf(w, "dimmunix_latency_ns{tier=%q,quantile=\"0.5\"} %d\n", tier, h.P50)
		fmt.Fprintf(w, "dimmunix_latency_ns{tier=%q,quantile=\"0.95\"} %d\n", tier, h.P95)
		fmt.Fprintf(w, "dimmunix_latency_ns{tier=%q,quantile=\"0.99\"} %d\n", tier, h.P99)
		fmt.Fprintf(w, "dimmunix_latency_observations_total{tier=%q} %d\n", tier, h.Count)
	}
	fmt.Fprintf(w, "# HELP dimmunix_latency_ns Acquisition/yield latency percentiles in nanoseconds (log-scale buckets, at most 2x resolution error).\n# TYPE dimmunix_latency_ns gauge\n")
	fmt.Fprintf(w, "# HELP dimmunix_latency_observations_total Observations behind each latency summary (fast tier is a 1-in-64 sample).\n# TYPE dimmunix_latency_observations_total counter\n")
	lat("fast", s.Latency.Fast)
	lat("guarded", s.Latency.Guarded)
	lat("yield", s.Latency.Yield)
}

var expvarOnce sync.Once

// ExpvarPublish publishes the default runtime's counter snapshot under
// the expvar key "dimmunix", so the standard /debug/vars endpoint
// includes it. Idempotent; safe to call before Init (the variable
// reports nil until a default runtime exists, without forcing one).
func ExpvarPublish() {
	expvarOnce.Do(func() {
		expvar.Publish("dimmunix", expvar.Func(func() any {
			rt := defaultRT.Load()
			if rt == nil {
				return nil
			}
			return rt.Stats()
		}))
	})
}
