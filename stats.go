package dimmunix

import (
	"encoding/json"
	"expvar"
	"net/http"
	"sync"

	"dimmunix/internal/core"
)

// HistorySummary is the operator view of a runtime's live signature
// history, served by DebugHandler; SignatureSummary is one entry.
type (
	HistorySummary   = core.HistorySummary
	SignatureSummary = core.SignatureSummary
)

// DebugStatus is the JSON document DebugHandler serves: the full
// counter snapshot plus the history summary.
type DebugStatus struct {
	Stats   Stats          `json:"stats"`
	History HistorySummary `json:"history"`
}

// DebugHandler returns an http.Handler serving rt's status — counters
// and history summary — as JSON, for a /statusz (or /debug/dimmunix)
// route on an operations port:
//
//	mux.Handle("/statusz", dimmunix.DebugHandler(nil))
//
// A nil rt serves the process-wide default Runtime, resolved per
// request (503 until one exists — the handler never forces lazy
// initialization). The handler takes no locks on the hot path; the
// history summary runs one guarded read per request, so keep it off
// high-frequency scrape loops (seconds are fine, per-request is not).
func DebugHandler(rt *Runtime) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		target := rt
		if target == nil {
			target = defaultRT.Load()
			if target == nil {
				http.Error(w, "dimmunix: no default runtime yet", http.StatusServiceUnavailable)
				return
			}
		}
		status := DebugStatus{Stats: target.Stats(), History: target.HistorySummary()}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(status)
	})
}

var expvarOnce sync.Once

// ExpvarPublish publishes the default runtime's counter snapshot under
// the expvar key "dimmunix", so the standard /debug/vars endpoint
// includes it. Idempotent; safe to call before Init (the variable
// reports nil until a default runtime exists, without forcing one).
func ExpvarPublish() {
	expvarOnce.Do(func() {
		expvar.Publish("dimmunix", expvar.Func(func() any {
			rt := defaultRT.Load()
			if rt == nil {
				return nil
			}
			return rt.Stats()
		}))
	})
}
