package dimmunix_test

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix"
)

func TestCondDropInBasics(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	cond := dimmunix.NewCond(&mu)

	var queue []int
	const items = 100
	var consumed atomic.Int32
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // consumer, sync.Cond idiom verbatim
		defer wg.Done()
		for int(consumed.Load()) < items {
			mu.Lock()
			for len(queue) == 0 {
				cond.Wait()
			}
			queue = queue[1:]
			consumed.Add(1)
			mu.Unlock()
		}
	}()
	go func() { // producer
		defer wg.Done()
		for i := 0; i < items; i++ {
			mu.Lock()
			queue = append(queue, i)
			mu.Unlock()
			cond.Signal()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("cond producer/consumer hung")
	}
	if consumed.Load() != items {
		t.Fatalf("consumed %d, want %d", consumed.Load(), items)
	}
}

func TestCondBroadcastWakesAll(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	cond := dimmunix.NewCond(&mu)
	var ready, woken atomic.Int32
	var wg sync.WaitGroup
	released := false
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			mu.Lock()
			ready.Add(1)
			for !released {
				cond.Wait()
			}
			woken.Add(1)
			mu.Unlock()
		}()
	}
	waitUntil(t, "waiters parked", func() bool { return ready.Load() == 4 })
	time.Sleep(10 * time.Millisecond) // let the last waiter release the mutex
	mu.Lock()
	released = true
	mu.Unlock()
	cond.Broadcast()
	wg.Wait()
	if woken.Load() != 4 {
		t.Fatalf("woken = %d", woken.Load())
	}
}

func TestCondWaitCtxCancellation(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	cond := dimmunix.NewCond(&mu)
	mu.Lock()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	err := cond.WaitCtx(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitCtx = %v, want deadline exceeded", err)
	}
	// Like the timeout path of pthread_cond_timedwait, the mutex is
	// re-acquired when cancellation fires: Unlock must succeed.
	mu.Unlock()
}

// Stable call sites for the lifecycle test: signatures record the hold
// stacks of the deadlock cycle, so the outer acquisitions must come
// from the same (non-inlined) sites in both runs.
//
//go:noinline
func condConsumerOuter(m *dimmunix.Mutex) { m.Lock() }

//go:noinline
func condProducerOuter(m *dimmunix.Mutex) { m.Lock() }

// TestCondImmunityLifecycle is the Cond acceptance scenario: a deadlock
// formed through a cond-wait mutex re-acquisition (consumer holds lock
// A and re-acquires the cond mutex inside Wait; producer holds the cond
// mutex and takes lock A) is detected and recovered on the first run,
// and on the rerun the runtime yields the late acquisition instead —
// immunity through the §6 condvar path.
func TestCondImmunityLifecycle(t *testing.T) {
	var deadlocks atomic.Int32
	initDefault(t,
		dimmunix.WithAbortRecovery(),
		dimmunix.WithRecovery(func(dimmunix.DeadlockInfo) { deadlocks.Add(1) }),
	)

	var a, mu dimmunix.Mutex
	cond := dimmunix.NewCond(&mu)
	queue := 0

	// consumer: lock a (outer), then consume under the cond mutex —
	// parked in Wait while still holding a.
	consumer := func() error {
		condConsumerOuter(&a)
		defer a.Unlock()
		if err := mu.LockCtx(context.Background()); err != nil {
			return err
		}
		for queue == 0 {
			if err := cond.WaitCtx(context.Background()); err != nil {
				// Recovery unwound the re-acquisition: the cond mutex is
				// not held; bail out of the critical section.
				return err
			}
		}
		queue--
		mu.Unlock()
		return nil
	}
	// producer: publish + signal under the cond mutex, then (still
	// holding it) take lock a — the inversion against the consumer's
	// wait re-acquisition.
	producer := func(window time.Duration) error {
		condProducerOuter(&mu)
		queue++
		cond.Signal()
		time.Sleep(window)
		if err := a.LockCtx(context.Background()); err != nil {
			mu.Unlock()
			return err
		}
		a.Unlock()
		mu.Unlock()
		return nil
	}

	run := func(consumerFirst bool) (cerr, perr error) {
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			if !consumerFirst {
				time.Sleep(60 * time.Millisecond)
			}
			cerr = consumer()
		}()
		go func() {
			defer wg.Done()
			if consumerFirst {
				time.Sleep(60 * time.Millisecond)
			}
			perr = producer(120 * time.Millisecond)
		}()
		wg.Wait()
		return
	}

	// Run 1: consumer parks first; the producer's signal wakes it into
	// a re-acquisition that deadlocks against the producer's a-lock.
	cerr, perr := run(true)
	if !errors.Is(cerr, dimmunix.ErrDeadlockRecovered) && !errors.Is(perr, dimmunix.ErrDeadlockRecovered) {
		t.Fatalf("expected a recovered deadlock, got consumer=%v producer=%v", cerr, perr)
	}
	waitUntil(t, "signature archived", func() bool {
		return dimmunix.Default().History().Len() >= 1 && deadlocks.Load() >= 1
	})
	// Reset shared state for the rerun (the queue item may or may not
	// have been consumed depending on which side was unwound).
	queue = 0

	// Rerun: producer first. The consumer's outer a-acquisition now
	// matches the archived signature while the producer holds the cond
	// mutex, so it yields until the producer's critical section
	// completes — the deadlock never re-forms.
	yieldsBefore := dimmunix.Default().Stats().Yields
	cerr, perr = run(false)
	if cerr != nil || perr != nil {
		t.Fatalf("immunized rerun failed: consumer=%v producer=%v", cerr, perr)
	}
	if deadlocks.Load() != 1 {
		t.Fatalf("deadlock reoccurred despite immunity: %d", deadlocks.Load())
	}
	if dimmunix.Default().Stats().Yields == yieldsBefore {
		t.Error("rerun avoided the pattern without yielding — signature did not match")
	}
}

func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
