// Tests for the drop-in surface: zero-value Mutex/RWMutex bound to the
// process-wide default Runtime, Init/Shutdown, functional options, env
// configuration, and context-aware acquisition. Everything goes through
// the facade the way a downstream user would.
package dimmunix_test

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dimmunix"
)

// The drop-in types must satisfy sync.Locker (and RLocker must exist).
var (
	_ sync.Locker = (*dimmunix.Mutex)(nil)
	_ sync.Locker = (*dimmunix.RWMutex)(nil)
	_ sync.Locker = (*dimmunix.RWMutex)(nil).RLocker()
)

// initDefault resets the default runtime to a fresh one with test-friendly
// settings plus the given options, and tears it down at test end.
func initDefault(t *testing.T, opts ...dimmunix.Option) {
	t.Helper()
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatalf("pre-test Shutdown: %v", err)
	}
	base := []dimmunix.Option{
		dimmunix.WithTau(2 * time.Millisecond),
		dimmunix.WithMatchDepth(2),
		dimmunix.WithMaxYield(5 * time.Second),
	}
	if err := dimmunix.Init(append(base, opts...)...); err != nil {
		t.Fatalf("Init: %v", err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })
}

func TestZeroValueMutexBindsOnFirstLock(t *testing.T) {
	initDefault(t)
	rt := dimmunix.Default()
	before := rt.Stats().Acquired

	var mu dimmunix.Mutex // zero value, never constructed
	mu.Lock()
	mu.Unlock()

	if got := rt.Stats().Acquired; got != before+1 {
		t.Fatalf("acquired = %d, want %d: zero-value Lock did not register with the default runtime", got, before+1)
	}
	if mu.Core().ID() == 0 {
		t.Fatal("bound mutex has no lock ID")
	}
	// The binding is stable: Core() returns the same underlying mutex.
	if mu.Core() != mu.Core() {
		t.Fatal("Core() rebinds")
	}
}

func TestZeroValueRWMutexBindsOnFirstUse(t *testing.T) {
	initDefault(t)
	rt := dimmunix.Default()
	before := rt.Stats().SharedAcquired

	var rw dimmunix.RWMutex
	rw.RLock()
	if rt.Stats().SharedAcquired != before+1 {
		t.Fatal("RLock did not record a shared acquisition")
	}
	if n := rw.Core().ReaderCount(); n != 1 {
		t.Fatalf("ReaderCount = %d, want 1", n)
	}
	rw.RUnlock()
	rw.Lock()
	rw.Unlock()
}

func TestInitIdempotencyAndRace(t *testing.T) {
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })

	const n = 16
	errs := make([]error, n)
	var wg sync.WaitGroup
	var locked sync.WaitGroup
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer wg.Done()
			errs[i] = dimmunix.Init(dimmunix.WithTau(3 * time.Millisecond))
		}(i)
	}
	// Zero-value first use racing with Init must also be safe.
	locked.Add(1)
	go func() {
		defer locked.Done()
		var mu dimmunix.Mutex
		mu.Lock()
		mu.Unlock()
	}()
	wg.Wait()
	locked.Wait()

	winners := 0
	for _, err := range errs {
		switch {
		case err == nil:
			winners++
		case errors.Is(err, dimmunix.ErrInitialized):
		default:
			t.Fatalf("unexpected Init error: %v", err)
		}
	}
	// The lazy first-use goroutine may have created the runtime before
	// any Init ran, so "no winner" is legal; two winners are not.
	if winners > 1 {
		t.Fatalf("Init succeeded %d times, want at most once", winners)
	}
	if dimmunix.Default() == nil {
		t.Fatal("no default runtime after Init race")
	}
	// Re-Init after the dust settles is rejected until Shutdown.
	if err := dimmunix.Init(); !errors.Is(err, dimmunix.ErrInitialized) {
		t.Fatalf("re-Init = %v, want ErrInitialized", err)
	}
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := dimmunix.Init(dimmunix.WithTau(time.Millisecond)); err != nil {
		t.Fatalf("Init after Shutdown: %v", err)
	}
}

func TestLockCtxCancellation(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	mu.Lock()

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- mu.LockCtx(ctx) }()
	time.Sleep(20 * time.Millisecond) // let the goroutine block
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("LockCtx = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("LockCtx did not observe cancellation")
	}
	mu.Unlock()

	// A pre-expired deadline fails without touching the lock.
	expired, cancel2 := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel2()
	if err := mu.LockCtx(expired); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired LockCtx = %v, want DeadlineExceeded", err)
	}

	// RWMutex: reader blocks writer-ctx, then cancellation fires.
	var rw dimmunix.RWMutex
	rw.RLock()
	wctx, wcancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer wcancel()
	if err := rw.LockCtx(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RWMutex.LockCtx = %v, want DeadlineExceeded", err)
	}
	rw.RUnlock()
}

func TestOptionEnvPrecedence(t *testing.T) {
	t.Setenv("DIMMUNIX_TAU", "250ms")
	t.Setenv("DIMMUNIX_MATCH_DEPTH", "7")

	// Env alone configures the runtime...
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })
	if err := dimmunix.Init(); err != nil {
		t.Fatal(err)
	}
	cfg := dimmunix.Default().Config()
	if cfg.Tau != 250*time.Millisecond || cfg.MatchDepth != 7 {
		t.Fatalf("env config not applied: Tau=%v MatchDepth=%d", cfg.Tau, cfg.MatchDepth)
	}

	// ...and options passed to Init override the environment.
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	if err := dimmunix.Init(dimmunix.WithTau(9 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	cfg = dimmunix.Default().Config()
	if cfg.Tau != 9*time.Millisecond {
		t.Fatalf("option did not override env: Tau=%v", cfg.Tau)
	}
	if cfg.MatchDepth != 7 {
		t.Fatalf("untouched env setting lost: MatchDepth=%d", cfg.MatchDepth)
	}
}

func TestInitRejectsMalformedEnv(t *testing.T) {
	t.Setenv("DIMMUNIX_MODE", "sideways")
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { dimmunix.Shutdown() })
	if err := dimmunix.Init(); err == nil {
		t.Fatal("Init accepted DIMMUNIX_MODE=sideways")
	}
}

func TestMutexHandoffUnlock(t *testing.T) {
	initDefault(t)
	var mu dimmunix.Mutex
	mu.Lock()
	done := make(chan struct{})
	go func() { // sync.Mutex semantics: another goroutine may unlock.
		mu.Unlock()
		close(done)
	}()
	<-done
	if !mu.TryLock() {
		t.Fatal("mutex still locked after handoff unlock")
	}
	mu.Unlock()

	// sync.RWMutex semantics: RLock in one goroutine, RUnlock in another.
	var rw dimmunix.RWMutex
	rlocked := make(chan struct{})
	go func() {
		rw.RLock()
		close(rlocked)
	}()
	<-rlocked
	rw.RUnlock() // this goroutine holds no read lock itself
	if !rw.TryLock() {
		t.Fatal("RWMutex still read-locked after handoff RUnlock")
	}
	rw.Unlock()
}

func TestUnlockMisusePanics(t *testing.T) {
	initDefault(t)
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		f()
	}
	var mu dimmunix.Mutex
	mustPanic("Unlock of never-locked Mutex", func() { mu.Unlock() })
	mu.Lock()
	mu.Unlock()
	mustPanic("double Unlock", func() { mu.Unlock() })

	var rw dimmunix.RWMutex
	mustPanic("RUnlock of never-locked RWMutex", func() { rw.RUnlock() })
	rw.RLock()
	rw.RUnlock()
	mustPanic("RUnlock without read lock", func() { rw.RUnlock() })
	mustPanic("RWMutex.Unlock without write lock", func() { rw.Unlock() })
}

func TestRWMutexReadersShareWritersExclude(t *testing.T) {
	initDefault(t)
	var rw dimmunix.RWMutex

	// Two goroutines hold read locks simultaneously.
	var inside sync.WaitGroup
	release := make(chan struct{})
	inside.Add(2)
	for i := 0; i < 2; i++ {
		go func() {
			rw.RLock()
			inside.Done()
			<-release
			rw.RUnlock()
		}()
	}
	inside.Wait() // both readers inside at once: sharing works

	if rw.TryLock() {
		t.Fatal("TryLock succeeded while readers hold the lock")
	}
	close(release)

	rw.Lock() // writers get in once readers drain
	if rw.TryRLock() {
		t.Fatal("TryRLock succeeded while write-locked")
	}
	rw.Unlock()
}

// lockFirstZV / lockSecondZV give the two deadlock sides distinct call
// sites (signatures are stack multisets).
//
//go:noinline
func lockFirstZV(l interface{ LockCtx(context.Context) error }) error {
	return l.LockCtx(context.Background())
}

//go:noinline
func lockSecondZV(l interface{ LockCtx(context.Context) error }) error {
	return l.LockCtx(context.Background())
}

// crossOrder runs the §4 two-lock cross-order pattern through any pair of
// ctx-lockable/unlockable locks and reports the two sides' errors.
func crossOrder(t *testing.T, a, b interface {
	LockCtx(context.Context) error
}, ua, ub func()) (error, error) {
	t.Helper()
	var wg sync.WaitGroup
	var e1, e2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e1 = lockFirstZV(a); e1 != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
		if e1 = b.LockCtx(context.Background()); e1 != nil {
			ua()
			return
		}
		ub()
		ua()
	}()
	go func() {
		defer wg.Done()
		if e2 = lockSecondZV(b); e2 != nil {
			return
		}
		time.Sleep(50 * time.Millisecond)
		if e2 = a.LockCtx(context.Background()); e2 != nil {
			ub()
			return
		}
		ua()
		ub()
	}()
	wg.Wait()
	return e1, e2
}

// TestZeroValueMutexImmunityLifecycle is the acceptance scenario: a
// two-lock cross-order deadlock through zero-value mutexes is archived on
// run 1 and avoided on run 2.
func TestZeroValueMutexImmunityLifecycle(t *testing.T) {
	hist := filepath.Join(t.TempDir(), "hist.json")
	initDefault(t, dimmunix.WithHistory(hist), dimmunix.WithAbortRecovery())
	rt := dimmunix.Default()

	var a, b dimmunix.Mutex
	e1, e2 := crossOrder(t, &a, &b, a.Unlock, b.Unlock)
	if !errors.Is(e1, dimmunix.ErrDeadlockRecovered) && !errors.Is(e2, dimmunix.ErrDeadlockRecovered) {
		t.Fatalf("run 1: expected recovery, got %v / %v", e1, e2)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("run 1: history = %d, want 1", rt.History().Len())
	}

	e1, e2 = crossOrder(t, &a, &b, a.Unlock, b.Unlock)
	if e1 != nil || e2 != nil {
		t.Fatalf("run 2: immunized run failed: %v / %v", e1, e2)
	}
	if rt.Stats().Yields == 0 {
		t.Error("run 2: no yields recorded — pattern was not avoided, just lucky")
	}

	// The signature survives the runtime: a later process sees it.
	if err := dimmunix.Shutdown(); err != nil {
		t.Fatal(err)
	}
	h, err := dimmunix.LoadHistory(hist)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 1 {
		t.Fatalf("persisted history = %d, want 1", h.Len())
	}
}

// TestZeroValueRWMutexWriterImmunityLifecycle is the same acceptance
// scenario through the RWMutex writer path.
func TestZeroValueRWMutexWriterImmunityLifecycle(t *testing.T) {
	initDefault(t, dimmunix.WithAbortRecovery())
	rt := dimmunix.Default()

	var a, b dimmunix.RWMutex
	e1, e2 := crossOrder(t, &a, &b, a.Unlock, b.Unlock)
	if !errors.Is(e1, dimmunix.ErrDeadlockRecovered) && !errors.Is(e2, dimmunix.ErrDeadlockRecovered) {
		t.Fatalf("run 1: expected recovery, got %v / %v", e1, e2)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("run 1: history = %d, want 1", rt.History().Len())
	}

	e1, e2 = crossOrder(t, &a, &b, a.Unlock, b.Unlock)
	if e1 != nil || e2 != nil {
		t.Fatalf("run 2: immunized run failed: %v / %v", e1, e2)
	}
	if rt.Stats().Yields == 0 {
		t.Error("run 2: no yields recorded")
	}
}

// rwReadSide adapts RLockCtx to the crossOrder helper so the deadlock
// runs through a reader-held edge: each side write-locks its own lock and
// read-locks the other's.
type rwReadSide struct{ rw *dimmunix.RWMutex }

func (r rwReadSide) LockCtx(ctx context.Context) error { return r.rw.RLockCtx(ctx) }

// TestRWMutexReaderHeldDeadlock drives writer-holds + reader-waits cross
// order: T1 write-locks A then read-locks B while T2 write-locks B then
// read-locks A. Detection and avoidance must handle the reader edges.
func TestRWMutexReaderHeldDeadlock(t *testing.T) {
	initDefault(t, dimmunix.WithAbortRecovery())
	rt := dimmunix.Default()

	var a, b dimmunix.RWMutex
	run := func() (error, error) {
		var wg sync.WaitGroup
		var e1, e2 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			if e1 = lockFirstZV(&a); e1 != nil { // write A
				return
			}
			time.Sleep(50 * time.Millisecond)
			if e1 = (rwReadSide{&b}).LockCtx(context.Background()); e1 != nil { // read B
				a.Unlock()
				return
			}
			b.RUnlock()
			a.Unlock()
		}()
		go func() {
			defer wg.Done()
			if e2 = lockSecondZV(&b); e2 != nil { // write B
				return
			}
			time.Sleep(50 * time.Millisecond)
			if e2 = (rwReadSide{&a}).LockCtx(context.Background()); e2 != nil { // read A
				b.Unlock()
				return
			}
			a.RUnlock()
			b.Unlock()
		}()
		wg.Wait()
		return e1, e2
	}

	e1, e2 := run()
	if !errors.Is(e1, dimmunix.ErrDeadlockRecovered) && !errors.Is(e2, dimmunix.ErrDeadlockRecovered) {
		t.Fatalf("run 1: expected recovery through reader-held edge, got %v / %v", e1, e2)
	}
	if rt.History().Len() == 0 {
		t.Fatal("run 1: no signature archived")
	}
	e1, e2 = run()
	if e1 != nil || e2 != nil {
		t.Fatalf("run 2: immunized run failed: %v / %v", e1, e2)
	}
}
