// Package rag implements the resource allocation graph that represents a
// program's synchronization state (§5.1).
//
// The RAG is a directed multigraph with thread and lock vertices and four
// edge types: request (T wants L), allow (T is allowed to block waiting for
// L), hold (L is held by T, labeled with the acquisition call stack), and
// yield (T yields because of T', labeled with the cause's stack). Hold
// edges form a multiset to support reentrant locks.
//
// The monitor (internal/monitor) owns a RAG instance, updates it from the
// event stream, and periodically calls Detect, which reports:
//
//   - deadlock cycles — cycles made up exclusively of hold, allow, and
//     request edges (§5.2), found by colored DFS over the wait-for
//     projection; and
//   - yield cycles (induced starvation) — components of threads none of
//     which can make progress, where at least one yield edge is involved.
//     A yielding thread is stuck iff *all* its yield causes are stuck
//     (breaking any one binding re-enables the thread), while a waiting
//     thread is stuck iff its lock's holder is stuck; Detect computes the
//     greatest fixpoint of this stuckness relation and then extracts
//     strongly connected components, matching §5.2's definition ("all
//     nodes reachable from a node T through T's yield edges can in turn
//     reach T").
package rag

import (
	"fmt"
	"sort"

	"dimmunix/internal/event"
	"dimmunix/internal/stack"
)

// Thread is a thread vertex.
type Thread struct {
	ID int32

	// Wait is the lock this thread currently requests or is allowed to
	// wait for (at most one outstanding lock operation per thread).
	Wait      *Lock
	WaitKind  event.Kind // event.Request or event.Go (allow)
	WaitStack *stack.Interned

	// Yielding is true while the thread is paused by the avoidance code.
	// A yielding thread keeps its (flipped) request edge but is not
	// committed to block, so that edge does not participate in deadlock
	// cycles; permanent yield conditions are yield cycles instead.
	Yielding bool

	// Holds maps lock ID -> hold edge (multiset via HoldEdge.Stacks).
	Holds map[uint64]*HoldEdge

	// Yields maps cause thread ID -> yield edge.
	Yields map[int32]*YieldEdge

	// spare recycles the last fully released hold edge: lock/unlock churn
	// on an uncontended mutex would otherwise allocate a HoldEdge (plus
	// its Stacks backing array) per acquisition, and the monitor's Apply
	// loop shares cores with the instrumented application.
	spare *HoldEdge
}

// HoldEdge is a lock->thread hold edge; Stacks has one entry per
// outstanding (reentrant) acquisition, in acquisition order.
type HoldEdge struct {
	Lock   *Lock
	Thread *Thread
	Stacks []*stack.Interned
}

// Label returns the stack label of the hold edge: the call stack of the
// first (ownership-taking) acquisition.
func (h *HoldEdge) Label() *stack.Interned {
	if len(h.Stacks) == 0 {
		return nil
	}
	return h.Stacks[0]
}

// YieldEdge is a thread->thread yield edge labeled with the cause's stack.
type YieldEdge struct {
	From, To *Thread
	LID      uint64
	Label    *stack.Interned
}

// Lock is a lock vertex. Holders carries every thread with an outstanding
// hold edge — a single entry for an exclusively held mutex, several for a
// reader-held RWMutex. Holder is kept as the most recent exclusive-style
// acquirer for diagnostics and legacy consumers; detection runs on
// Holders.
type Lock struct {
	ID      uint64
	Holder  *Thread
	Holders map[int32]*Thread
	Waiters map[int32]*Thread
}

// RAG is the resource allocation graph. It is not safe for concurrent use;
// the monitor goroutine is its sole owner.
type RAG struct {
	threads map[int32]*Thread
	locks   map[uint64]*Lock
	// dirty holds threads whose edges changed since the last Detect;
	// there cannot be new cycles that involve exclusively old edges
	// (§5.2), so detection is seeded here.
	dirty map[int32]*Thread
}

// New returns an empty RAG.
func New() *RAG {
	return &RAG{
		threads: make(map[int32]*Thread),
		locks:   make(map[uint64]*Lock),
		dirty:   make(map[int32]*Thread),
	}
}

func (g *RAG) thread(id int32) *Thread {
	t := g.threads[id]
	if t == nil {
		t = &Thread{
			ID:     id,
			Holds:  make(map[uint64]*HoldEdge),
			Yields: make(map[int32]*YieldEdge),
		}
		g.threads[id] = t
	}
	return t
}

func (g *RAG) lock(id uint64) *Lock {
	l := g.locks[id]
	if l == nil {
		l = &Lock{
			ID:      id,
			Holders: make(map[int32]*Thread),
			Waiters: make(map[int32]*Thread),
		}
		g.locks[id] = l
	}
	return l
}

// NumThreads returns the number of thread vertices.
func (g *RAG) NumThreads() int { return len(g.threads) }

// NumLocks returns the number of lock vertices.
func (g *RAG) NumLocks() int { return len(g.locks) }

// Thread returns the thread vertex with the given ID, or nil.
func (g *RAG) Thread(id int32) *Thread { return g.threads[id] }

// LockNode returns the lock vertex with the given ID, or nil.
func (g *RAG) LockNode(id uint64) *Lock { return g.locks[id] }

func (t *Thread) clearYields() {
	for id, y := range t.Yields {
		_ = y
		delete(t.Yields, id)
	}
}

func (t *Thread) clearWait() {
	if t.Wait != nil {
		delete(t.Wait.Waiters, t.ID)
		t.Wait = nil
		t.WaitStack = nil
	}
}

// Apply updates the graph according to one instrumentation event.
func (g *RAG) Apply(ev event.Event) {
	switch ev.Kind {
	case event.Request:
		t := g.thread(ev.TID)
		l := g.lock(ev.LID)
		t.clearWait()
		t.Wait = l
		t.WaitKind = event.Request
		t.WaitStack = ev.Stack
		l.Waiters[t.ID] = t
		g.dirty[t.ID] = t

	case event.Go:
		t := g.thread(ev.TID)
		l := g.lock(ev.LID)
		if t.Wait != l {
			t.clearWait()
			t.Wait = l
			l.Waiters[t.ID] = t
		}
		t.WaitKind = event.Go
		t.WaitStack = ev.Stack
		t.Yielding = false
		// §5.4: on a GO decision any yield edges emerging from the
		// thread are removed.
		t.clearYields()
		g.dirty[t.ID] = t

	case event.Yield:
		t := g.thread(ev.TID)
		l := g.lock(ev.LID)
		// The tentative allow edge is flipped around into a request
		// edge (§5.4).
		if t.Wait != l {
			t.clearWait()
			t.Wait = l
			l.Waiters[t.ID] = t
		}
		t.WaitKind = event.Request
		t.WaitStack = ev.Stack
		t.Yielding = true
		t.clearYields()
		for _, c := range ev.Causes {
			if c.TID == t.ID {
				continue
			}
			to := g.thread(c.TID)
			t.Yields[c.TID] = &YieldEdge{From: t, To: to, LID: c.LID, Label: c.Stack}
		}
		g.dirty[t.ID] = t

	case event.Acquired:
		t := g.thread(ev.TID)
		l := g.lock(ev.LID)
		t.clearWait()
		t.clearYields()
		t.Yielding = false
		h := t.Holds[l.ID]
		if h == nil {
			if t.spare != nil {
				h = t.spare
				t.spare = nil
				h.Lock, h.Thread = l, t
			} else {
				h = &HoldEdge{Lock: l, Thread: t}
			}
			t.Holds[l.ID] = h
		}
		h.Stacks = append(h.Stacks, ev.Stack)
		l.Holder = t
		l.Holders[t.ID] = t
		g.dirty[t.ID] = t

	case event.Release:
		t := g.thread(ev.TID)
		l := g.lock(ev.LID)
		h := t.Holds[l.ID]
		if h != nil {
			if n := len(h.Stacks); n > 0 {
				h.Stacks[n-1] = nil
				h.Stacks = h.Stacks[:n-1]
			}
			if len(h.Stacks) == 0 {
				delete(t.Holds, l.ID)
				delete(l.Holders, t.ID)
				if l.Holder == t {
					l.Holder = nil
				}
				h.Lock, h.Thread = nil, nil
				t.spare = h
			}
		}
		g.dirty[t.ID] = t

	case event.Cancel:
		t := g.thread(ev.TID)
		t.clearWait()
		t.clearYields()
		t.Yielding = false
		g.dirty[t.ID] = t

	case event.ThreadExit:
		t := g.threads[ev.TID]
		if t == nil {
			return
		}
		t.clearWait()
		t.clearYields()
		for _, h := range t.Holds {
			delete(h.Lock.Holders, t.ID)
			if h.Lock.Holder == t {
				h.Lock.Holder = nil
			}
		}
		delete(g.threads, ev.TID)
		delete(g.dirty, ev.TID)
	}
}

// Cycle describes one detected deadlock or starvation condition.
type Cycle struct {
	// Starvation is true for yield cycles, false for deadlock cycles.
	Starvation bool
	// Threads are the IDs of the threads in the cycle, ascending.
	Threads []int32
	// Locks are the IDs of the locks in the cycle, ascending.
	Locks []uint64
	// Stacks is the signature label multiset: hold-edge labels for
	// deadlock cycles; hold- plus yield-edge labels for yield cycles.
	Stacks []*stack.Interned
}

// String renders a compact description for logs.
func (c *Cycle) String() string {
	kind := "deadlock"
	if c.Starvation {
		kind = "starvation"
	}
	return fmt.Sprintf("%s cycle: threads=%v locks=%v (%d stacks)", kind, c.Threads, c.Locks, len(c.Stacks))
}

// Detect searches for deadlock cycles and yield cycles. Only threads whose
// edges changed since the previous Detect seed the deadlock DFS; the
// starvation fixpoint always runs over the full waiting set (it is linear
// and must observe threads whose stuckness changed transitively).
func (g *RAG) Detect() []*Cycle {
	var out []*Cycle
	out = append(out, g.detectDeadlocks()...)
	out = append(out, g.detectStarvation()...)
	g.dirty = make(map[int32]*Thread)
	return out
}

// waitHolder returns the thread that t transitively waits on through its
// request/allow edge, or nil — the exclusive-lock special case, retained
// for single-holder consumers (tests' brute-force oracle). Yielding
// threads are not committed to block, so they contribute no wait-for edge
// to deadlock cycles.
func waitHolder(t *Thread) *Thread {
	if t.Wait == nil || t.Yielding {
		return nil
	}
	h := t.Wait.Holder
	if h == t {
		// Reentrant re-acquisition in flight; not a wait-for edge.
		return nil
	}
	return h
}

// waitHolders returns every thread t transitively waits on through its
// request/allow edge — all current holders of the awaited lock, which is
// several threads when the lock is reader-held. A thread never waits on
// itself (reentrant or recursive-read re-acquisition in flight).
func waitHolders(t *Thread) []*Thread {
	if t.Wait == nil || t.Yielding || len(t.Wait.Holders) == 0 {
		return nil
	}
	out := make([]*Thread, 0, len(t.Wait.Holders))
	for _, h := range t.Wait.Holders {
		if h != t {
			out = append(out, h)
		}
	}
	return out
}

const (
	white = 0
	grey  = 1
	black = 2
)

// detectDeadlocks runs colored DFS over the wait-for projection
// (T -> holders(T.Wait)), seeded at dirty threads. A thread has several
// out-edges when the lock it awaits is reader-held, so this is a full
// DFS, not a single-out-edge chain walk.
func (g *RAG) detectDeadlocks() []*Cycle {
	var out []*Cycle
	color := make(map[int32]int, len(g.threads))
	type frame struct {
		t    *Thread
		succ []*Thread
		i    int
	}
	for id := range g.dirty {
		if g.threads[id] == nil || color[id] != white {
			continue
		}
		var path []*frame
		push := func(t *Thread) {
			color[t.ID] = grey
			path = append(path, &frame{t: t, succ: waitHolders(t)})
		}
		push(g.threads[id])
		for len(path) > 0 {
			f := path[len(path)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				switch color[w.ID] {
				case white:
					push(w)
				case grey:
					// Found a cycle: the suffix of path starting at w.
					start := 0
					for i, p := range path {
						if p.t == w {
							start = i
							break
						}
					}
					cyc := make([]*Thread, 0, len(path)-start)
					for _, p := range path[start:] {
						cyc = append(cyc, p.t)
					}
					out = append(out, buildDeadlockCycle(cyc))
				}
				continue
			}
			color[f.t.ID] = black
			path = path[:len(path)-1]
		}
	}
	return out
}

// buildDeadlockCycle assembles the Cycle record for path, where each
// cycle[i+1] holds the lock cycle[i] waits for (wrapping around at the
// end).
func buildDeadlockCycle(cycle []*Thread) *Cycle {
	c := &Cycle{}
	for i, t := range cycle {
		c.Threads = append(c.Threads, t.ID)
		if t.Wait == nil {
			continue
		}
		c.Locks = append(c.Locks, t.Wait.ID)
		next := cycle[(i+1)%len(cycle)]
		if he := next.Holds[t.Wait.ID]; he != nil && he.Label() != nil {
			c.Stacks = append(c.Stacks, he.Label())
		}
	}
	c.normalize()
	return c
}

// detectStarvation computes the stuck fixpoint and extracts SCCs that
// involve yield edges.
func (g *RAG) detectStarvation() []*Cycle {
	// Start from the candidate set: all threads that are waiting or
	// yielding.
	stuck := make(map[int32]*Thread)
	for id, t := range g.threads {
		if t.Wait != nil || len(t.Yields) > 0 {
			stuck[id] = t
		}
	}
	// Greatest fixpoint: repeatedly un-stick threads that can progress.
	for changed := true; changed; {
		changed = false
		for id, t := range stuck {
			if !isStuckGiven(t, stuck) {
				delete(stuck, id)
				changed = true
			}
		}
	}
	if len(stuck) == 0 {
		return nil
	}
	// Extract SCCs over stuck-set thread edges: yield edges plus
	// wait-for edges.
	sccs := tarjanSCC(stuck)
	var out []*Cycle
	for _, comp := range sccs {
		if len(comp) < 2 && !hasSelfLoop(comp) {
			continue
		}
		inComp := make(map[int32]bool, len(comp))
		for _, t := range comp {
			inComp[t.ID] = true
		}
		hasYield := false
		c := &Cycle{Starvation: true}
		lockSeen := make(map[uint64]bool)
		type holdKey struct {
			l uint64
			t int32
		}
		holdSeen := make(map[holdKey]bool)
		for _, t := range comp {
			c.Threads = append(c.Threads, t.ID)
			for _, y := range t.Yields {
				if inComp[y.To.ID] {
					hasYield = true
					if y.Label != nil {
						c.Stacks = append(c.Stacks, y.Label)
					}
				}
			}
			if t.Wait != nil {
				for _, h := range t.Wait.Holders {
					if h == t || !inComp[h.ID] {
						continue
					}
					if !lockSeen[t.Wait.ID] {
						lockSeen[t.Wait.ID] = true
						c.Locks = append(c.Locks, t.Wait.ID)
					}
					// One label per (lock, holder): a reader-held lock
					// contributes each in-component reader's stack once.
					k := holdKey{l: t.Wait.ID, t: h.ID}
					if holdSeen[k] {
						continue
					}
					holdSeen[k] = true
					if he := h.Holds[t.Wait.ID]; he != nil && he.Label() != nil {
						c.Stacks = append(c.Stacks, he.Label())
					}
				}
			}
		}
		if !hasYield {
			// Pure deadlock SCC; already reported by detectDeadlocks.
			continue
		}
		c.normalize()
		out = append(out, c)
	}
	return out
}

// isStuckGiven reports whether t remains stuck assuming the threads in
// stuck are stuck.
func isStuckGiven(t *Thread, stuck map[int32]*Thread) bool {
	if len(t.Yields) > 0 {
		// A yielding thread is stuck iff every cause is stuck with its
		// binding intact: the cause still holds or awaits the bound
		// lock. Any broken binding or un-stuck cause frees t.
		for _, y := range t.Yields {
			cause, ok := stuck[y.To.ID]
			if !ok {
				return false
			}
			if !bindingIntact(cause, y.LID) {
				return false
			}
		}
		return true
	}
	if t.Wait != nil {
		// The lock may be held by several readers; t cannot progress as
		// long as any one of them is stuck. No (other) holder stuck —
		// free, reentrant, or all holders progressing — means t can
		// progress.
		for _, h := range t.Wait.Holders {
			if h == t {
				continue
			}
			if _, ok := stuck[h.ID]; ok {
				return true
			}
		}
		return false
	}
	return false
}

// bindingIntact reports whether a yield-cause binding (cause, lid) still
// holds: the cause thread holds the lock, or is committed to wait for it
// through an allow edge. A *yielding* cause's flipped request edge is not
// a commitment (§5.4) — such a binding has been broken and re-formed, and
// the yielder will have been woken to re-evaluate.
func bindingIntact(cause *Thread, lid uint64) bool {
	if _, held := cause.Holds[lid]; held {
		return true
	}
	return cause.Wait != nil && cause.Wait.ID == lid &&
		!cause.Yielding && cause.WaitKind == event.Go
}

func hasSelfLoop(comp []*Thread) bool {
	for _, t := range comp {
		if _, ok := t.Yields[t.ID]; ok {
			return true
		}
		if t.Wait != nil {
			if _, ok := t.Wait.Holders[t.ID]; ok {
				return true
			}
		}
	}
	return false
}

// successors enumerates thread->thread edges within the stuck set.
func successors(t *Thread, stuck map[int32]*Thread) []*Thread {
	var out []*Thread
	for _, y := range t.Yields {
		if s, ok := stuck[y.To.ID]; ok {
			out = append(out, s)
		}
	}
	if t.Wait != nil {
		for _, h := range t.Wait.Holders {
			if h == t {
				continue
			}
			if s, ok := stuck[h.ID]; ok {
				out = append(out, s)
			}
		}
	}
	return out
}

// tarjanSCC computes strongly connected components of the stuck subgraph.
func tarjanSCC(stuck map[int32]*Thread) [][]*Thread {
	type frame struct {
		t    *Thread
		succ []*Thread
		i    int
	}
	index := make(map[int32]int, len(stuck))
	low := make(map[int32]int, len(stuck))
	onStack := make(map[int32]bool, len(stuck))
	var stackArr []*Thread
	var sccs [][]*Thread
	next := 0

	// Deterministic iteration order for reproducible output.
	ids := make([]int32, 0, len(stuck))
	for id := range stuck {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })

	for _, rootID := range ids {
		if _, seen := index[rootID]; seen {
			continue
		}
		var callStack []*frame
		push := func(t *Thread) {
			index[t.ID] = next
			low[t.ID] = next
			next++
			stackArr = append(stackArr, t)
			onStack[t.ID] = true
			callStack = append(callStack, &frame{t: t, succ: successors(t, stuck)})
		}
		push(stuck[rootID])
		for len(callStack) > 0 {
			f := callStack[len(callStack)-1]
			if f.i < len(f.succ) {
				w := f.succ[f.i]
				f.i++
				if _, seen := index[w.ID]; !seen {
					push(w)
				} else if onStack[w.ID] {
					if index[w.ID] < low[f.t.ID] {
						low[f.t.ID] = index[w.ID]
					}
				}
				continue
			}
			callStack = callStack[:len(callStack)-1]
			if len(callStack) > 0 {
				parent := callStack[len(callStack)-1]
				if low[f.t.ID] < low[parent.t.ID] {
					low[parent.t.ID] = low[f.t.ID]
				}
			}
			if low[f.t.ID] == index[f.t.ID] {
				var comp []*Thread
				for {
					w := stackArr[len(stackArr)-1]
					stackArr = stackArr[:len(stackArr)-1]
					onStack[w.ID] = false
					comp = append(comp, w)
					if w == f.t {
						break
					}
				}
				sccs = append(sccs, comp)
			}
		}
	}
	return sccs
}

func (c *Cycle) normalize() {
	sort.Slice(c.Threads, func(i, j int) bool { return c.Threads[i] < c.Threads[j] })
	sort.Slice(c.Locks, func(i, j int) bool { return c.Locks[i] < c.Locks[j] })
	sort.Slice(c.Stacks, func(i, j int) bool { return c.Stacks[i].H < c.Stacks[j].H })
}

// HoldCountOf returns the number of locks thread id currently holds
// (counting each lock once regardless of reentrancy), used by the monitor
// to pick the starvation-break victim "holding most locks" (§3).
func (g *RAG) HoldCountOf(id int32) int {
	t := g.threads[id]
	if t == nil {
		return 0
	}
	return len(t.Holds)
}
