package rag

import (
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/stack"
)

// shared-lock RAG scenarios: one lock held by several threads at once
// (the RWMutex reader path emits one Acquired per reader).

func mhStack(seed uint64) *stack.Interned {
	in := stack.NewInterner()
	return in.Intern(stack.Synthetic(seed, 3))
}

func mhApply(g *RAG, evs ...event.Event) {
	for _, ev := range evs {
		g.Apply(ev)
	}
}

// TestMultiHolderBookkeeping: two readers hold lock 1; releases peel the
// Holders set one thread at a time.
func TestMultiHolderBookkeeping(t *testing.T) {
	g := New()
	s := mhStack(1)
	mhApply(g,
		event.Event{Kind: event.Request, TID: 1, LID: 1, Stack: s},
		event.Event{Kind: event.Go, TID: 1, LID: 1, Stack: s},
		event.Event{Kind: event.Acquired, TID: 1, LID: 1, Stack: s},
		event.Event{Kind: event.Request, TID: 2, LID: 1, Stack: s},
		event.Event{Kind: event.Go, TID: 2, LID: 1, Stack: s},
		event.Event{Kind: event.Acquired, TID: 2, LID: 1, Stack: s},
	)
	l := g.LockNode(1)
	if len(l.Holders) != 2 {
		t.Fatalf("Holders = %d, want 2", len(l.Holders))
	}
	mhApply(g, event.Event{Kind: event.Release, TID: 1, LID: 1})
	if len(l.Holders) != 1 || l.Holders[2] == nil {
		t.Fatalf("after release: Holders = %v, want just thread 2", l.Holders)
	}
	mhApply(g, event.Event{Kind: event.Release, TID: 2, LID: 1})
	if len(l.Holders) != 0 {
		t.Fatalf("after both releases: Holders = %v, want empty", l.Holders)
	}
}

// TestDeadlockThroughReaderHeldLock: writer T1 holds lock 1 (exclusive)
// and waits for lock 2, which is read-held by T2 and T3; T3 waits for
// lock 1. The cycle T1 -> T3 -> T1 runs through one of lock 2's several
// holders, which the single-out-edge walk of the exclusive-only RAG
// could not represent.
func TestDeadlockThroughReaderHeldLock(t *testing.T) {
	g := New()
	s1, s2, s3 := mhStack(1), mhStack(2), mhStack(3)
	mhApply(g,
		// T1 acquires lock 1 exclusively.
		event.Event{Kind: event.Request, TID: 1, LID: 1, Stack: s1},
		event.Event{Kind: event.Go, TID: 1, LID: 1, Stack: s1},
		event.Event{Kind: event.Acquired, TID: 1, LID: 1, Stack: s1},
		// T2 and T3 read-acquire lock 2.
		event.Event{Kind: event.Request, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Go, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Acquired, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Request, TID: 3, LID: 2, Stack: s3},
		event.Event{Kind: event.Go, TID: 3, LID: 2, Stack: s3},
		event.Event{Kind: event.Acquired, TID: 3, LID: 2, Stack: s3},
		// T1 wants lock 2 (blocked by the readers); T3 wants lock 1.
		event.Event{Kind: event.Request, TID: 1, LID: 2, Stack: s1},
		event.Event{Kind: event.Go, TID: 1, LID: 2, Stack: s1},
		event.Event{Kind: event.Request, TID: 3, LID: 1, Stack: s3},
		event.Event{Kind: event.Go, TID: 3, LID: 1, Stack: s3},
		// T2, the uninvolved reader, releases before detection: the cycle
		// must survive on T3's remaining shared hold alone.
		event.Event{Kind: event.Release, TID: 2, LID: 2},
	)
	cycles := g.Detect()
	var dl *Cycle
	for _, c := range cycles {
		if !c.Starvation {
			dl = c
			break
		}
	}
	if dl == nil {
		t.Fatalf("no deadlock cycle found in %v", cycles)
	}
	if len(dl.Threads) != 2 || dl.Threads[0] != 1 || dl.Threads[1] != 3 {
		t.Fatalf("cycle threads = %v, want [1 3]", dl.Threads)
	}
	if len(dl.Stacks) != 2 {
		t.Fatalf("cycle stacks = %d, want 2 (writer hold + reader hold)", len(dl.Stacks))
	}
}

// TestNoFalseDeadlockWhenReaderProgresses: T1 waits for a lock read-held
// by T2 only, and T2 is runnable (holds, waits for nothing) — no cycle.
func TestNoFalseDeadlockWhenReaderProgresses(t *testing.T) {
	g := New()
	s1, s2 := mhStack(1), mhStack(2)
	mhApply(g,
		event.Event{Kind: event.Request, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Go, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Acquired, TID: 2, LID: 2, Stack: s2},
		event.Event{Kind: event.Request, TID: 1, LID: 2, Stack: s1},
		event.Event{Kind: event.Go, TID: 1, LID: 2, Stack: s1},
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("unexpected cycles: %v", cycles)
	}
}
