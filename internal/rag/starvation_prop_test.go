package rag

import (
	"math/rand"
	"testing"

	"dimmunix/internal/event"
)

// TestStarvationAgainstFixpointOracle builds random RAGs with yield edges
// and cross-checks Detect's starvation verdict against an independent
// brute-force implementation of the §5.2 stuckness semantics:
//
//   - a thread waiting on a lock is stuck iff the lock is held by a stuck
//     thread;
//   - a yielding thread is stuck iff ALL of its yield causes are stuck
//     with their (cause, lock) bindings intact;
//   - the greatest fixpoint of these rules is the starved set.
func TestStarvationAgainstFixpointOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 500; iter++ {
		g := New()
		const T, L = 6, 6

		type model struct {
			holder  [L + 1]int32            // lock -> holding thread (0 free)
			waiting [T + 1]uint64           // thread -> waited lock (0 none)
			yields  [T + 1]map[int32]uint64 // thread -> cause thread -> bound lock
		}
		var m model
		for i := range m.yields {
			m.yields[i] = make(map[int32]uint64)
		}

		// Random holds.
		for l := uint64(1); l <= L; l++ {
			if rng.Intn(2) == 0 {
				tid := int32(rng.Intn(T) + 1)
				m.holder[l] = tid
				g.Apply(event.Event{Kind: event.Acquired, TID: tid, LID: l, Stack: st(l)})
			}
		}
		// Random waits (threads not holding the same lock).
		for tid := int32(1); tid <= T; tid++ {
			if rng.Intn(3) == 0 {
				l := uint64(rng.Intn(L) + 1)
				if m.holder[l] == tid {
					continue
				}
				m.waiting[tid] = l
				g.Apply(event.Event{Kind: event.Request, TID: tid, LID: l, Stack: st(uint64(tid))})
				g.Apply(event.Event{Kind: event.Go, TID: tid, LID: l, Stack: st(uint64(tid))})
			}
		}
		// Random yields for threads not already waiting.
		for tid := int32(1); tid <= T; tid++ {
			if m.waiting[tid] != 0 || rng.Intn(3) != 0 {
				continue
			}
			nCauses := 1 + rng.Intn(2)
			var causes []event.Cause
			for c := 0; c < nCauses; c++ {
				cause := int32(rng.Intn(T) + 1)
				if cause == tid {
					continue
				}
				// Bind to a lock the cause actually holds (intact) or a
				// random one (possibly broken binding).
				var lid uint64
				if rng.Intn(2) == 0 {
					for l := uint64(1); l <= L; l++ {
						if m.holder[l] == cause {
							lid = l
							break
						}
					}
				}
				if lid == 0 {
					lid = uint64(rng.Intn(L) + 1)
				}
				m.yields[tid][cause] = lid
				causes = append(causes, event.Cause{TID: cause, LID: lid, Stack: st(lid)})
			}
			if len(causes) == 0 {
				delete(m.yields[tid], tid)
				continue
			}
			g.Apply(event.Event{Kind: event.Yield, TID: tid, LID: uint64(rng.Intn(L) + 1), Stack: st(uint64(tid)), Causes: causes})
			// The Yield event resets wait state; mirror the model: the
			// yielding thread requests its lock but is not blocked.
		}

		// Oracle: greatest fixpoint.
		stuck := make(map[int32]bool)
		for tid := int32(1); tid <= T; tid++ {
			if m.waiting[tid] != 0 || len(m.yields[tid]) > 0 {
				stuck[tid] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for tid := range stuck {
				if len(m.yields[tid]) > 0 {
					all := true
					for cause, lid := range m.yields[tid] {
						bindingIntact := m.holder[lid] == cause ||
							(m.waiting[cause] == lid && lid != 0)
						if !stuck[cause] || !bindingIntact {
							all = false
							break
						}
					}
					if !all {
						delete(stuck, tid)
						changed = true
					}
					continue
				}
				l := m.waiting[tid]
				h := m.holder[l]
				if h == 0 || h == tid || !stuck[h] {
					delete(stuck, tid)
					changed = true
				}
			}
		}
		// Oracle starvation per §5.2's definition: a yield CYCLE — a
		// yield edge inside a mutually-reachable (strongly connected)
		// stuck component. A thread yielding on a deadlocked-but-
		// unreachable-back cause is the deadlock's problem, not a yield
		// cycle: recovery of the deadlock frees it.
		adj := make(map[int32]map[int32]bool)
		addEdge := func(u, v int32) {
			if !stuck[u] || !stuck[v] {
				return
			}
			if adj[u] == nil {
				adj[u] = make(map[int32]bool)
			}
			adj[u][v] = true
		}
		for tid := range stuck {
			for cause := range m.yields[tid] {
				addEdge(tid, cause)
			}
			if l := m.waiting[tid]; l != 0 {
				if h := m.holder[l]; h != 0 && h != tid {
					addEdge(tid, h)
				}
			}
		}
		reach := func(from, to int32) bool {
			seen := map[int32]bool{from: true}
			queue := []int32{from}
			for len(queue) > 0 {
				u := queue[0]
				queue = queue[1:]
				if u == to {
					return true
				}
				for v := range adj[u] {
					if !seen[v] {
						seen[v] = true
						queue = append(queue, v)
					}
				}
			}
			return false
		}
		oracleStarved := false
		for tid := range stuck {
			for cause := range m.yields[tid] {
				if stuck[cause] && reach(cause, tid) {
					oracleStarved = true
				}
			}
		}

		var gotStarved bool
		for _, c := range g.Detect() {
			if c.Starvation {
				gotStarved = true
			}
		}

		if gotStarved != oracleStarved {
			t.Fatalf("iter %d: Detect starvation=%v oracle=%v\nmodel: holder=%v waiting=%v yields=%v",
				iter, gotStarved, oracleStarved, m.holder, m.waiting, m.yields)
		}
	}
}
