package rag

import (
	"math/rand"
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/stack"
)

var interner = stack.NewInterner()

func st(seed uint64) *stack.Interned {
	return interner.Intern(stack.Synthetic(seed, 4))
}

func apply(g *RAG, evs ...event.Event) {
	for _, ev := range evs {
		g.Apply(ev)
	}
}

func req(t int32, l uint64, s uint64) event.Event {
	return event.Event{Kind: event.Request, TID: t, LID: l, Stack: st(s)}
}
func allow(t int32, l uint64, s uint64) event.Event {
	return event.Event{Kind: event.Go, TID: t, LID: l, Stack: st(s)}
}
func acq(t int32, l uint64, s uint64) event.Event {
	return event.Event{Kind: event.Acquired, TID: t, LID: l, Stack: st(s)}
}
func rel(t int32, l uint64) event.Event {
	return event.Event{Kind: event.Release, TID: t, LID: l}
}

func TestNoDeadlockSimpleSequence(t *testing.T) {
	g := New()
	apply(g,
		req(1, 10, 1), allow(1, 10, 1), acq(1, 10, 1),
		req(2, 10, 2), allow(2, 10, 2),
		rel(1, 10),
		acq(2, 10, 2), rel(2, 10),
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("unexpected cycles: %v", cycles)
	}
	if g.NumThreads() != 2 || g.NumLocks() != 1 {
		t.Errorf("graph shape: threads=%d locks=%d", g.NumThreads(), g.NumLocks())
	}
}

func TestClassicTwoThreadDeadlock(t *testing.T) {
	g := New()
	// T1 holds A, wants B; T2 holds B, wants A.
	apply(g,
		req(1, 1, 11), allow(1, 1, 11), acq(1, 1, 11),
		req(2, 2, 22), allow(2, 2, 22), acq(2, 2, 22),
		req(1, 2, 12), allow(1, 2, 12),
		req(2, 1, 21), allow(2, 1, 21),
	)
	cycles := g.Detect()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles, want 1: %v", len(cycles), cycles)
	}
	c := cycles[0]
	if c.Starvation {
		t.Error("expected deadlock, got starvation")
	}
	if len(c.Threads) != 2 || c.Threads[0] != 1 || c.Threads[1] != 2 {
		t.Errorf("threads = %v", c.Threads)
	}
	if len(c.Locks) != 2 {
		t.Errorf("locks = %v", c.Locks)
	}
	// Signature = the two hold-edge labels.
	if len(c.Stacks) != 2 {
		t.Fatalf("stacks = %d, want 2", len(c.Stacks))
	}
	want := map[*stack.Interned]bool{st(11): true, st(22): true}
	for _, s := range c.Stacks {
		if !want[s] {
			t.Errorf("unexpected signature stack %v", s.S)
		}
	}
}

func TestThreeThreadDeadlock(t *testing.T) {
	g := New()
	// T1 holds A wants B; T2 holds B wants C; T3 holds C wants A.
	apply(g,
		acq(1, 1, 1), acq(2, 2, 2), acq(3, 3, 3),
		req(1, 2, 4), allow(1, 2, 4),
		req(2, 3, 5), allow(2, 3, 5),
		req(3, 1, 6), allow(3, 1, 6),
	)
	cycles := g.Detect()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles: %v", len(cycles), cycles)
	}
	if len(cycles[0].Threads) != 3 || len(cycles[0].Stacks) != 3 {
		t.Errorf("cycle = %v", cycles[0])
	}
}

func TestRequestEdgeAloneFormsDeadlock(t *testing.T) {
	// §5.2: deadlock cycles are made of hold, allow, AND request edges.
	g := New()
	apply(g,
		acq(1, 1, 1), acq(2, 2, 2),
		req(1, 2, 3), // request only, no allow yet
		req(2, 1, 4), allow(2, 1, 4),
	)
	cycles := g.Detect()
	if len(cycles) != 1 || cycles[0].Starvation {
		t.Fatalf("cycles = %v", cycles)
	}
}

func TestReentrantHoldIsNotDeadlock(t *testing.T) {
	g := New()
	apply(g,
		acq(1, 1, 1),
		req(1, 1, 2), // same thread re-requests its own lock (reentrant)
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("reentrant acquisition flagged: %v", cycles)
	}
}

func TestReentrantReleaseCountsDown(t *testing.T) {
	g := New()
	apply(g, acq(1, 1, 1), acq(1, 1, 2))
	th := g.Thread(1)
	if n := len(th.Holds[1].Stacks); n != 2 {
		t.Fatalf("hold multiset size = %d, want 2", n)
	}
	apply(g, rel(1, 1))
	if n := len(th.Holds[1].Stacks); n != 1 {
		t.Fatalf("after one release: %d, want 1", n)
	}
	if g.LockNode(1).Holder != th {
		t.Error("lock must still be held after partial release")
	}
	apply(g, rel(1, 1))
	if g.LockNode(1).Holder != nil {
		t.Error("lock must be free after final release")
	}
	if _, ok := th.Holds[1]; ok {
		t.Error("hold edge must be removed")
	}
}

func TestHoldLabelIsFirstAcquisition(t *testing.T) {
	g := New()
	apply(g, acq(1, 1, 100), acq(1, 1, 200))
	if lbl := g.Thread(1).Holds[1].Label(); lbl != st(100) {
		t.Errorf("label = %v, want first acquisition stack", lbl)
	}
}

func TestDeadlockDetectedOnlyOnce(t *testing.T) {
	g := New()
	apply(g,
		acq(1, 1, 1), acq(2, 2, 2),
		req(1, 2, 3), allow(1, 2, 3),
		req(2, 1, 4), allow(2, 1, 4),
	)
	if n := len(g.Detect()); n != 1 {
		t.Fatalf("first detect: %d", n)
	}
	// No new events: nothing is dirty, so no re-report.
	if n := len(g.Detect()); n != 0 {
		t.Fatalf("second detect without new events: %d cycles", n)
	}
}

func TestCancelClearsWait(t *testing.T) {
	g := New()
	apply(g,
		acq(1, 1, 1), acq(2, 2, 2),
		req(1, 2, 3), allow(1, 2, 3),
		req(2, 1, 4), allow(2, 1, 4),
		event.Event{Kind: event.Cancel, TID: 2, LID: 1}, // trylock timeout rolls back
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("cancel should break the cycle: %v", cycles)
	}
}

func TestThreadExitPrunes(t *testing.T) {
	g := New()
	apply(g, acq(1, 1, 1), req(2, 1, 2), allow(2, 1, 2))
	apply(g, event.Event{Kind: event.ThreadExit, TID: 1})
	if g.NumThreads() != 1 {
		t.Errorf("threads = %d, want 1", g.NumThreads())
	}
	if g.LockNode(1).Holder != nil {
		t.Error("exited thread must release holder slot")
	}
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Errorf("cycles after exit: %v", cycles)
	}
}

func yieldEv(t int32, l uint64, s uint64, causes ...event.Cause) event.Event {
	return event.Event{Kind: event.Yield, TID: t, LID: l, Stack: st(s), Causes: causes}
}

func TestSimpleYieldCycle(t *testing.T) {
	// Figure 2's shape: T13 requests L3 but yields because T22 holds L5
	// with stack Sx; T22 is allowed to wait for L7 held by T13 (stack Sy)
	// => starvation, signature {Sx, Sy}.
	g := New()
	apply(g,
		acq(13, 7, 70),                   // T13 holds L7 (stack Sy=70)
		acq(22, 5, 50),                   // T22 holds L5 (stack Sx=50)
		req(22, 7, 51), allow(22, 7, 51), // T22 allowed to wait for L7
		yieldEv(13, 3, 71, event.Cause{TID: 22, LID: 5, Stack: st(50)}),
	)
	cycles := g.Detect()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles: %+v", len(cycles), cycles)
	}
	c := cycles[0]
	if !c.Starvation {
		t.Fatal("expected starvation cycle")
	}
	// Signature must be {Sx, Sy} = {yield label 50, hold label 70}.
	if len(c.Stacks) != 2 {
		t.Fatalf("stacks = %d, want 2", len(c.Stacks))
	}
	want := map[*stack.Interned]bool{st(50): true, st(70): true}
	for _, s := range c.Stacks {
		if !want[s] {
			t.Errorf("unexpected stack in signature")
		}
	}
}

func TestYieldCircularWaitIsStarvationNotDeadlock(t *testing.T) {
	// T13 yields on the very lock its cause holds: the resulting
	// permanent condition must be classified as starvation (yield
	// cycle), not as a deadlock — a yielding thread is not committed to
	// block, it re-evaluates.
	g := New()
	apply(g,
		acq(13, 7, 70),
		acq(22, 5, 50),
		req(22, 7, 51), allow(22, 7, 51),
		yieldEv(13, 5, 71, event.Cause{TID: 22, LID: 5, Stack: st(50)}),
	)
	cycles := g.Detect()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles: %v", len(cycles), cycles)
	}
	if !cycles[0].Starvation {
		t.Fatal("yield-induced circular wait must be starvation")
	}
}

func TestYieldNotStarvedWhenCauseCanProgress(t *testing.T) {
	// T1 yields because of T2, but T2 is running free (no wait): T2 can
	// release eventually, so no starvation.
	g := New()
	apply(g,
		acq(2, 5, 50),
		yieldEv(1, 9, 10, event.Cause{TID: 2, LID: 5, Stack: st(50)}),
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("unexpected starvation: %v", cycles)
	}
}

func TestYieldBindingBrokenNotStarved(t *testing.T) {
	// T1 yields on (T2, L5) but T2 released L5; even if T2 blocks on
	// something held by T1, the binding is broken so T1 will re-check and
	// proceed.
	g := New()
	apply(g,
		acq(1, 1, 1),
		acq(2, 5, 50),
		yieldEv(1, 9, 10, event.Cause{TID: 2, LID: 5, Stack: st(50)}),
		rel(2, 5),
		req(2, 1, 20), allow(2, 1, 20),
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("unexpected cycle: %v", cycles)
	}
}

func TestFigure3Starvation(t *testing.T) {
	// Reproduce the paper's Figure 3: T1 yields on {T2, T3}; T4 yields on
	// {T5, T6}; T3 is allowed on L held by T4; cycles close back to T1
	// through both T5 and T6 and through T2.
	g := New()
	apply(g,
		acq(4, 100, 400), // T4 holds L
		// T3 allowed to wait for L:
		req(3, 100, 300), allow(3, 100, 300),
		// T2, T5, T6 wait on locks held by T1 so the cycles close:
		acq(1, 201, 210), acq(1, 202, 211), acq(1, 203, 212),
		req(2, 201, 220), allow(2, 201, 220),
		req(5, 202, 520), allow(5, 202, 520),
		req(6, 203, 620), allow(6, 203, 620),
		// T1 yields because of T2 and T3:
		yieldEv(1, 900, 19,
			event.Cause{TID: 2, LID: 201, Stack: st(220)},
			event.Cause{TID: 3, LID: 100, Stack: st(300)}),
		// T4 yields because of T5 and T6:
		yieldEv(4, 901, 49,
			event.Cause{TID: 5, LID: 202, Stack: st(520)},
			event.Cause{TID: 6, LID: 203, Stack: st(620)}),
	)
	cycles := g.Detect()
	if len(cycles) != 1 {
		t.Fatalf("got %d cycles: %+v", len(cycles), cycles)
	}
	c := cycles[0]
	if !c.Starvation {
		t.Fatal("want starvation")
	}
	if len(c.Threads) != 6 {
		t.Errorf("threads = %v, want all six", c.Threads)
	}
}

func TestFigure3NoStarvationWithoutThirdCycle(t *testing.T) {
	// Figure 3 discussion: without the (T1,T3,L,T4,T5,...) closure, T4
	// could evade through T5, letting T1 evade through T3.
	g := New()
	apply(g,
		acq(4, 100, 400),
		req(3, 100, 300), allow(3, 100, 300),
		acq(1, 201, 210), acq(1, 203, 212),
		req(2, 201, 220), allow(2, 201, 220),
		req(6, 203, 620), allow(6, 203, 620),
		// T5 waits on a lock held by a FREE thread T7 (not stuck).
		acq(7, 300, 700),
		req(5, 300, 530), allow(5, 300, 530),
		yieldEv(1, 900, 19,
			event.Cause{TID: 2, LID: 201, Stack: st(220)},
			event.Cause{TID: 3, LID: 100, Stack: st(300)}),
		yieldEv(4, 901, 49,
			event.Cause{TID: 5, LID: 300, Stack: st(530)},
			event.Cause{TID: 6, LID: 203, Stack: st(620)}),
	)
	if cycles := g.Detect(); len(cycles) != 0 {
		t.Fatalf("starvation misreported: %+v", cycles)
	}
}

func TestHoldCountOf(t *testing.T) {
	g := New()
	apply(g, acq(1, 1, 1), acq(1, 2, 2), acq(1, 1, 3))
	if n := g.HoldCountOf(1); n != 2 {
		t.Errorf("HoldCountOf = %d, want 2 (reentrancy counted once)", n)
	}
	if n := g.HoldCountOf(99); n != 0 {
		t.Errorf("unknown thread HoldCountOf = %d", n)
	}
}

func TestCycleString(t *testing.T) {
	c := &Cycle{Starvation: false, Threads: []int32{1, 2}, Locks: []uint64{7, 8}}
	if got := c.String(); got == "" {
		t.Error("empty String")
	}
	c.Starvation = true
	if got := c.String(); got == "" {
		t.Error("empty String for starvation")
	}
}

// bruteForceDeadlock recomputes deadlock existence from scratch: a cycle in
// the wait-for graph T -> holder(T.Wait).
func bruteForceDeadlock(g *RAG) bool {
	for id := range g.threads {
		seen := map[int32]bool{}
		cur := g.threads[id]
		for cur != nil {
			if seen[cur.ID] {
				return true
			}
			seen[cur.ID] = true
			cur = waitHolder(cur)
		}
	}
	return false
}

// TestRandomSequencesAgainstBruteForce drives random (but semantically
// valid) event sequences and cross-checks Detect against the brute-force
// wait-for-cycle oracle.
func TestRandomSequencesAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 400; iter++ {
		g := New()
		const T, L = 5, 5
		holder := [L + 1]int32{}   // lock -> thread (0 = free)
		waiting := [T + 1]uint64{} // thread -> lock (0 = none)
		held := [T + 1][]uint64{}
		for step := 0; step < 40; step++ {
			tid := int32(rng.Intn(T) + 1)
			if waiting[tid] != 0 {
				// Thread is blocked: maybe its lock got freed.
				l := waiting[tid]
				if holder[l] == 0 {
					holder[l] = tid
					waiting[tid] = 0
					held[tid] = append(held[tid], l)
					apply(g, acq(tid, l, rng.Uint64()%50))
				}
				continue
			}
			if len(held[tid]) > 0 && rng.Intn(3) == 0 {
				l := held[tid][len(held[tid])-1]
				held[tid] = held[tid][:len(held[tid])-1]
				holder[l] = 0
				apply(g, rel(tid, l))
				continue
			}
			l := uint64(rng.Intn(L) + 1)
			if holder[l] == int32(tid) {
				continue // skip reentrancy in the oracle model
			}
			apply(g, req(tid, l, rng.Uint64()%50), allow(tid, l, rng.Uint64()%50))
			if holder[l] == 0 {
				holder[l] = tid
				held[tid] = append(held[tid], l)
				apply(g, acq(tid, l, rng.Uint64()%50))
			} else {
				waiting[tid] = l
			}
			cycles := g.Detect()
			want := bruteForceDeadlock(g)
			got := len(cycles) > 0
			if got != want && want {
				// Detect is seeded at dirty threads; after a detect pass
				// consumed dirtiness a pre-existing cycle is not
				// re-reported, so only check the direction that matters:
				// a new cycle right after the event must be found.
				t.Fatalf("iter %d step %d: brute force says deadlock, Detect missed it", iter, step)
			}
			if got && !want {
				t.Fatalf("iter %d step %d: Detect reported spurious deadlock %v", iter, step, cycles)
			}
			if want {
				break // deadlocked; this run is done
			}
		}
	}
}

func BenchmarkApplyDetect(b *testing.B) {
	g := New()
	evs := []event.Event{
		req(1, 1, 1), allow(1, 1, 1), acq(1, 1, 1),
		req(1, 2, 2), allow(1, 2, 2), acq(1, 2, 2),
		rel(1, 2), rel(1, 1),
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, ev := range evs {
			g.Apply(ev)
		}
		g.Detect()
	}
}
