package histstore

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/signature"
)

// versionHeader carries the store version on history responses.
const versionHeader = "X-Dimmunix-History-Version"

// tokenHeader carries the shared-secret push token (`dimmunix-hist serve
// --token` / DIMMUNIX_SYNC_TOKEN) on client requests.
const tokenHeader = "X-Dimmunix-Sync-Token"

// maxSnapshotBytes bounds one pushed snapshot (a format-v2 history is a
// few hundred bytes per signature; 64 MiB is far beyond any real
// history, §5.3 bounds its growth).
const maxSnapshotBytes = 64 << 20

// DefaultHTTPTimeout bounds one daemon request when the caller's context
// carries no deadline of its own. Sync rounds pass per-round deadlines;
// this is the safety net for bare-context callers (tools, tests), so no
// request can hang forever on a dead daemon.
const DefaultHTTPTimeout = 10 * time.Second

// Server is the `dimmunix-hist serve` daemon state: the authoritative
// merged history for a fleet of machines that do not share a filesystem.
// Every push joins into the in-memory history (and, when a backing store
// is configured, is persisted through it); every pull serves the current
// merged snapshot. The version is a monotonic sequence bumped only when
// a push actually changed something, so idle clients probing
// GET /v1/version never trigger re-pulls.
type Server struct {
	mu      sync.Mutex
	hist    *signature.History
	epoch   int64 // startup stamp: distinguishes daemon incarnations
	seq     uint64
	backing Store
	token   string // shared secret required on pushes ("" = open)
	// backingDirty marks in-memory state the backing store has not
	// accepted yet (a failed persist); the next push retries even when
	// it merges nothing new, so durability is eventually restored.
	backingDirty bool

	started time.Time
	stats   ServerStats
}

// ServerStats are the daemon's served-request counters, exposed on
// /statusz so fleet operators can see sync traffic advancing without
// reading logs. All fields are atomics; read them via StatsSnapshot.
type ServerStats struct {
	ProbesServed   atomic.Uint64 // GET /v1/version
	PullsServed    atomic.Uint64 // GET /v1/history
	PushesServed   atomic.Uint64 // POST /v1/history accepted (incl. no-ops)
	PushesChanged  atomic.Uint64 // pushes that changed the fleet history
	PushesRejected atomic.Uint64 // 401s (token missing/wrong)
	EntriesMerged  atomic.Uint64 // total entries changed by pushes
}

// ServerStatsSnapshot is the plain-value JSON form of ServerStats.
type ServerStatsSnapshot struct {
	ProbesServed   uint64 `json:"probes_served"`
	PullsServed    uint64 `json:"pulls_served"`
	PushesServed   uint64 `json:"pushes_served"`
	PushesChanged  uint64 `json:"pushes_changed"`
	PushesRejected uint64 `json:"pushes_rejected"`
	EntriesMerged  uint64 `json:"entries_merged"`
}

// StatsSnapshot returns the daemon's request counters.
func (s *Server) StatsSnapshot() ServerStatsSnapshot {
	return ServerStatsSnapshot{
		ProbesServed:   s.stats.ProbesServed.Load(),
		PullsServed:    s.stats.PullsServed.Load(),
		PushesServed:   s.stats.PushesServed.Load(),
		PushesChanged:  s.stats.PushesChanged.Load(),
		PushesRejected: s.stats.PushesRejected.Load(),
		EntriesMerged:  s.stats.EntriesMerged.Load(),
	}
}

// serverStatus is the /statusz document.
type serverStatus struct {
	Version       string              `json:"version"`
	UptimeSeconds int64               `json:"uptime_seconds"`
	Fingerprint   string              `json:"fingerprint,omitempty"`
	Signatures    []serverSigSummary  `json:"signatures"`
	Tombstones    int                 `json:"tombstones"`
	Counters      ServerStatsSnapshot `json:"counters"`
}

type serverSigSummary struct {
	ID         string `json:"id"`
	Kind       string `json:"kind"`
	Depth      int    `json:"depth"`
	Stacks     int    `json:"stacks"`
	Rev        uint64 `json:"rev"`
	Disabled   bool   `json:"disabled,omitempty"`
	Source     string `json:"source,omitempty"`
	AvoidCount uint64 `json:"avoid_count"`
	AbortCount uint64 `json:"abort_count"`
}

// NewServer builds a server, seeding from backing when non-nil (so a
// restarted daemon re-serves everything it had persisted).
func NewServer(backing Store) (*Server, error) {
	hist := signature.NewHistory()
	if backing != nil {
		loaded, _, err := backing.Load(context.Background())
		if err != nil {
			return nil, err
		}
		hist = loaded
	}
	return &Server{hist: hist, epoch: time.Now().UnixNano(), seq: 1, backing: backing, started: time.Now()}, nil
}

// History exposes the server's merged history (diagnostics, tests).
func (s *Server) History() *signature.History { return s.hist }

// SetToken requires the shared secret on every push: requests whose
// token header does not match (constant-time compare) are rejected with
// 401 instead of being joined into the fleet history. Reads stay open —
// the daemon trusts its network for pulls but no longer accepts state
// from anyone who can reach the port. "" removes the requirement.
func (s *Server) SetToken(token string) {
	s.mu.Lock()
	s.token = token
	s.mu.Unlock()
}

// authorized reports whether r may push. Constant-time compare keeps the
// shared secret safe from timing probes.
func (s *Server) authorized(r *http.Request) bool {
	s.mu.Lock()
	token := s.token
	s.mu.Unlock()
	if token == "" {
		return true
	}
	got := r.Header.Get(tokenHeader)
	return subtle.ConstantTimeCompare([]byte(got), []byte(token)) == 1
}

// Handler returns the HTTP API:
//
//	GET  /v1/version  → {"version":"<seq>"} — the cheap probe
//	GET  /v1/history  → format-v2 snapshot, version in X-Dimmunix-History-Version
//	POST /v1/history  → join the posted snapshot; returns {"version","changed"}
//	                    (401 when a push token is configured and absent/wrong)
//	GET  /statusz     → daemon status JSON: version, per-signature summary,
//	                    served-request counters (the fleet observability
//	                    endpoint; `dimmunix-hist stats <url>` pretty-prints it)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/version", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.stats.ProbesServed.Add(1)
		s.mu.Lock()
		v := s.versionLocked()
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(map[string]string{"version": string(v)})
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet && r.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		s.mu.Lock()
		st := serverStatus{
			Version:       string(s.versionLocked()),
			UptimeSeconds: int64(time.Since(s.started).Seconds()),
			Fingerprint:   s.hist.Fingerprint(),
			Signatures:    []serverSigSummary{},
			Tombstones:    len(s.hist.Tombstones()),
			Counters:      s.StatsSnapshot(),
		}
		for _, sig := range s.hist.Snapshot() {
			st.Signatures = append(st.Signatures, serverSigSummary{
				ID: sig.ID, Kind: sig.Kind.String(), Depth: sig.Depth,
				Stacks: sig.Size(), Rev: sig.Rev, Disabled: sig.Disabled,
				Source:     sig.Source,
				AvoidCount: sig.AvoidCount, AbortCount: sig.AbortCount,
			})
		}
		s.mu.Unlock()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
	mux.HandleFunc("/v1/history", func(w http.ResponseWriter, r *http.Request) {
		switch r.Method {
		case http.MethodGet:
			s.stats.PullsServed.Add(1)
			s.mu.Lock()
			data, err := s.hist.MarshalJSONCompact()
			v := s.versionLocked()
			s.mu.Unlock()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			w.Header().Set(versionHeader, string(v))
			w.Write(data)
		case http.MethodPost:
			if !s.authorized(r) {
				s.stats.PushesRejected.Add(1)
				http.Error(w, "push token missing or wrong", http.StatusUnauthorized)
				return
			}
			s.stats.PushesServed.Add(1)
			body, err := io.ReadAll(io.LimitReader(r.Body, maxSnapshotBytes))
			if err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			in := signature.NewHistory()
			if err := in.UnmarshalJSON(body); err != nil {
				http.Error(w, err.Error(), http.StatusBadRequest)
				return
			}
			s.mu.Lock()
			changed := s.hist.Merge(in)
			if changed > 0 {
				s.stats.PushesChanged.Add(1)
				s.stats.EntriesMerged.Add(uint64(changed))
				s.seq++
				if fp := in.Fingerprint(); fp != "" && s.hist.Fingerprint() == "" {
					s.hist.SetFingerprint(fp)
				}
			}
			if s.backing != nil && (changed > 0 || s.backingDirty) {
				// The persist runs while s.mu is held, so it must be
				// bounded server-side: a deadline-less client (curl) plus
				// a wedged backing lock would otherwise block every
				// endpoint for the whole fleet.
				pctx, cancel := context.WithTimeout(r.Context(), DefaultHTTPTimeout)
				_, err := s.backing.Push(pctx, s.hist)
				cancel()
				if err != nil {
					// The merge already applied in memory; remember that
					// the backing store is behind so a later push (even a
					// no-change one) retries the persist.
					s.backingDirty = true
					s.mu.Unlock()
					http.Error(w, err.Error(), http.StatusInternalServerError)
					return
				}
				s.backingDirty = false
			}
			v := s.versionLocked()
			s.mu.Unlock()
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(map[string]any{"version": string(v), "changed": changed})
		default:
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		}
	})
	return mux
}

// versionLocked prefixes the push sequence with the daemon's startup
// epoch: a restarted daemon (whose sequence restarts at 1) can never
// collide with a token a client remembered from the previous
// incarnation — clients just re-pull once and reconverge.
func (s *Server) versionLocked() Version {
	return Version(fmt.Sprintf("%d-%d", s.epoch, s.seq))
}

// HTTPStore is the client backend speaking to a Server. Every request
// runs under the caller's context (with DefaultHTTPTimeout as the
// fallback deadline), so sync rounds and shutdown publishes are bounded
// by their callers, not by a transport-level constant.
type HTTPStore struct {
	base string
	c    *http.Client
	// token is atomic so SetToken on a live store (e.g. rotating the
	// secret while the sync loop runs) never races in-flight requests.
	token atomic.Value // string
}

// NewHTTPStore returns a store talking to the daemon at base
// (e.g. "http://hist.internal:7676").
func NewHTTPStore(base string) *HTTPStore {
	return &HTTPStore{
		base: strings.TrimSuffix(base, "/"),
		c:    &http.Client{},
	}
}

// Base returns the daemon base URL.
func (s *HTTPStore) Base() string { return s.base }

// SetToken attaches the daemon's shared-secret push token to every
// request (see Server.SetToken). Open reads it from DIMMUNIX_SYNC_TOKEN.
// Safe to call concurrently with in-flight requests.
func (s *HTTPStore) SetToken(token string) { s.token.Store(token) }

// do runs one request under ctx, adding the fallback deadline when the
// caller supplied none.
func (s *HTTPStore) do(ctx context.Context, method, url string, body io.Reader) (*http.Response, error) {
	if _, ok := ctx.Deadline(); !ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, DefaultHTTPTimeout)
		// The response body must stay readable after do returns; tie the
		// timeout's release to the body via the response closer below.
		resp, err := s.doReq(ctx, method, url, body)
		if err != nil {
			cancel()
			return nil, err
		}
		resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
		return resp, nil
	}
	return s.doReq(ctx, method, url, body)
}

func (s *HTTPStore) doReq(ctx context.Context, method, url string, body io.Reader) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, method, url, body)
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if tok, _ := s.token.Load().(string); tok != "" {
		req.Header.Set(tokenHeader, tok)
	}
	resp, err := s.c.Do(req)
	if err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	return resp, nil
}

// cancelBody releases the fallback timeout when the response body is
// closed, keeping the context alive for exactly as long as the caller
// reads.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// Load pulls the daemon's merged snapshot.
func (s *HTTPStore) Load(ctx context.Context) (*signature.History, Version, error) {
	resp, err := s.do(ctx, http.MethodGet, s.base+"/v1/history", nil)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, "", httpError("pull", resp)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxSnapshotBytes))
	if err != nil {
		return nil, "", fmt.Errorf("histstore: %w", err)
	}
	h := signature.NewHistory()
	if err := h.UnmarshalJSON(body); err != nil {
		return nil, "", err
	}
	return h, Version(resp.Header.Get(versionHeader)), nil
}

// Push posts h to the daemon, which joins it into the fleet history.
func (s *HTTPStore) Push(ctx context.Context, h *signature.History) (Version, error) {
	data, err := h.MarshalJSONCompact()
	if err != nil {
		return "", err
	}
	resp, err := s.do(ctx, http.MethodPost, s.base+"/v1/history", bytes.NewReader(data))
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpError("push", resp)
	}
	var out struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("histstore: %w", err)
	}
	return Version(out.Version), nil
}

// Probe asks the daemon for its version sequence.
func (s *HTTPStore) Probe(ctx context.Context) (Version, error) {
	resp, err := s.do(ctx, http.MethodGet, s.base+"/v1/version", nil)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", httpError("probe", resp)
	}
	var out struct {
		Version string `json:"version"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		return "", fmt.Errorf("histstore: %w", err)
	}
	return Version(out.Version), nil
}

// Close is a no-op (the daemon owns the state).
func (s *HTTPStore) Close() error {
	s.c.CloseIdleConnections()
	return nil
}

func httpError(op string, resp *http.Response) error {
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 1024))
	return fmt.Errorf("histstore: %s: %s: %s", op, resp.Status, strings.TrimSpace(string(msg)))
}
