//go:build !unix

package histstore

import "context"

// lockFile on platforms without flock degrades to no locking: pushes
// remain individually atomic (rename-based), but two simultaneous
// read-merge-write cycles may each miss the other's entries until the
// next sync round re-joins them — the revision join makes that safe,
// just slower to converge.
func lockFile(ctx context.Context, path string) (func(), error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return func() {}, nil
}

// tryLockFile degrades the same way: maintenance proceeds unlocked;
// concurrent compactions are idempotent joins, so the worst case is
// redundant work, not loss.
func tryLockFile(path string) (func(), error) {
	return func() {}, nil
}
