//go:build !unix

package histstore

// lockFile on platforms without flock degrades to no locking: pushes
// remain individually atomic (rename-based), but two simultaneous
// read-merge-write cycles may each miss the other's entries until the
// next sync round re-joins them — the revision join makes that safe,
// just slower to converge.
func lockFile(path string) (func(), error) {
	return func() {}, nil
}
