package histstore

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

func statuszDoc(t *testing.T, url string) (doc struct {
	Version    string `json:"version"`
	Signatures []struct {
		ID   string `json:"id"`
		Kind string `json:"kind"`
	} `json:"signatures"`
	Tombstones int                 `json:"tombstones"`
	Counters   ServerStatsSnapshot `json:"counters"`
}) {
	t.Helper()
	resp, err := http.Get(url + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("statusz status = %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decode statusz: %v", err)
	}
	return doc
}

// TestServerStatusz covers the daemon observability endpoint: counters
// advance with served traffic and the signature summary tracks pushes.
func TestServerStatusz(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	before := statuszDoc(t, ts.URL)
	if len(before.Signatures) != 0 || before.Counters.PushesServed != 0 {
		t.Fatalf("fresh daemon not empty: %+v", before)
	}

	// One client sync round: probe, pull, push.
	client := NewHTTPStore(ts.URL)
	defer client.Close()
	ctx := context.Background()
	if _, err := client.Probe(ctx); err != nil {
		t.Fatal(err)
	}
	if _, _, err := client.Load(ctx); err != nil {
		t.Fatal(err)
	}
	h := signature.NewHistory()
	h.Add(signature.New(signature.Deadlock, []stack.Stack{
		{{Func: "p", File: "a.go", Line: 1}},
		{{Func: "q", File: "b.go", Line: 2}},
	}, 2))
	if _, err := client.Push(ctx, h); err != nil {
		t.Fatal(err)
	}

	after := statuszDoc(t, ts.URL)
	c := after.Counters
	if c.ProbesServed == 0 || c.PullsServed == 0 || c.PushesServed != 1 {
		t.Errorf("counters did not advance: %+v", c)
	}
	if c.PushesChanged != 1 || c.EntriesMerged != 1 {
		t.Errorf("merge accounting wrong: %+v", c)
	}
	if len(after.Signatures) != 1 || after.Signatures[0].Kind != "deadlock" {
		t.Errorf("signature summary wrong: %+v", after.Signatures)
	}
	if after.Version == before.Version {
		t.Error("version did not advance after a changing push")
	}
}

// TestServerStatuszCountsRejects: 401s show up as PushesRejected.
func TestServerStatuszCountsRejects(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetToken("sekrit")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := NewHTTPStore(ts.URL) // no token
	defer client.Close()
	h := signature.NewHistory()
	if _, err := client.Push(context.Background(), h); err == nil {
		t.Fatal("tokenless push must fail")
	}
	doc := statuszDoc(t, ts.URL)
	if doc.Counters.PushesRejected != 1 || doc.Counters.PushesServed != 0 {
		t.Errorf("reject accounting wrong: %+v", doc.Counters)
	}
}
