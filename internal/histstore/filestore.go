package histstore

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"

	"dimmunix/internal/signature"
)

// FileStore shares one history file between any number of processes.
// Reads rely on the file being written by atomic rename (a reader never
// observes a torn snapshot); pushes take an advisory lock on a sidecar
// .lock file so concurrent read-merge-write cycles serialize instead of
// losing each other's entries. Version probes are a single stat.
type FileStore struct {
	path string
}

// NewFileStore returns a store backed by the history file at path. The
// file (and its directory) is created on first push; a missing file loads
// as an empty history, the common first-run case.
func NewFileStore(path string) *FileStore {
	return &FileStore{path: path}
}

// Path returns the backing file path.
func (s *FileStore) Path() string { return s.path }

// Load reads the current snapshot. The version token is taken before the
// read, so a concurrent writer at worst makes the next Probe report a
// change that was already observed — re-pulling is safe, missing an
// update is not.
func (s *FileStore) Load(ctx context.Context) (*signature.History, Version, error) {
	v, err := s.Probe(ctx)
	if err != nil {
		return nil, "", err
	}
	h, err := signature.Load(s.path)
	if err != nil {
		return nil, "", err
	}
	return h, v, nil
}

// Push merges h into the file under the advisory lock: read the current
// content, join h in, write back atomically. The file ends up stamped
// with h's build fingerprint. The lock wait is interruptible — a caller
// whose context expires while another process holds the lock abandons
// the push (retried by a later round) instead of blocking shutdown.
func (s *FileStore) Push(ctx context.Context, h *signature.History) (Version, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	if dir := filepath.Dir(s.path); dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return "", fmt.Errorf("histstore: %w", err)
		}
	}
	unlock, err := lockFile(ctx, s.path+".lock")
	if err != nil {
		return "", fmt.Errorf("histstore: lock %s: %w", s.path, err)
	}
	defer unlock()
	if err := ctxErr(ctx); err != nil {
		return "", err
	}

	cur, err := signature.Load(s.path)
	if err != nil {
		return "", err
	}
	cur.Merge(h)
	if fp := h.Fingerprint(); fp != "" {
		cur.SetFingerprint(fp)
	}
	if err := cur.SaveTo(s.path); err != nil {
		return "", err
	}
	return s.Probe(ctx)
}

// Probe stats the file: size plus mtime (nanosecond granularity on
// modern filesystems) changes on every atomic-rename publish.
func (s *FileStore) Probe(ctx context.Context) (Version, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	fi, err := os.Stat(s.path)
	if errors.Is(err, fs.ErrNotExist) {
		return "absent", nil
	}
	if err != nil {
		return "", fmt.Errorf("histstore: %w", err)
	}
	return Version(fmt.Sprintf("%d:%d", fi.Size(), fi.ModTime().UnixNano())), nil
}

// Close is a no-op: the file is the immunity and outlives the handle.
func (s *FileStore) Close() error { return nil }

func isDir(path string) bool {
	fi, err := os.Stat(path)
	return err == nil && fi.IsDir()
}
