// Package histstore makes the persistent signature history pluggable and
// shareable — the §8 vision that immunity outlives one process: histories
// persist across restarts, port across code revisions, and are
// proactively distributed so each deadlock pattern need only manifest
// once anywhere in a fleet.
//
// A Store holds the authoritative merged history for some sharing domain
// (one file, one directory of per-process journals, one sync daemon).
// All backends speak the tombstoned format v2, so concurrent pushes from
// many processes converge by the deterministic revision join
// (signature.History.Merge): removals and disabled-flips propagate
// instead of being resurrected by stale snapshots.
//
// Three backends ship:
//
//   - FileStore — one shared file; atomic-rename writes, advisory
//     locking around read-merge-write pushes, stat-based version probes.
//   - DirStore — a shared directory of per-process append journals;
//     pushes never contend (each process owns its journal), reads merge
//     and compact all journals.
//   - HTTPStore / Server — a sync daemon (`dimmunix-hist serve`) plus a
//     client backend, for machines that do not share a filesystem.
//
// Version tokens are opaque: equality means "nothing changed since";
// Probe is designed to be much cheaper than Load so runtimes can poll at
// a short sync interval without rereading snapshots.
package histstore

import (
	"context"
	"fmt"
	"os"
	"strings"

	"dimmunix/internal/signature"
)

// Version is an opaque store version token. Two equal tokens mean the
// store content has not changed between the observations; any change
// produces a different token. "" means unknown (always treated as
// changed).
type Version string

// Store is a pluggable immunity-history backend.
//
// Implementations must be safe for concurrent use by multiple goroutines
// and — for the file-system backends — by multiple processes sharing the
// same underlying path.
//
// Every I/O operation takes a context and honors its cancellation and
// deadline: the store must never block the caller past ctx — the defense
// mechanism may not itself become the blocking resource. A cancelled
// operation returns an error wrapping ctx.Err() and leaves the persisted
// state no worse than before (pushes are atomic; an abandoned push is
// simply retried by a later sync round).
type Store interface {
	// Load reads the store's current merged snapshot and the version
	// token it corresponds to. The returned history is private to the
	// caller.
	Load(ctx context.Context) (*signature.History, Version, error)

	// Push publishes h's entries and tombstones into the store by the
	// deterministic revision join; remote-only entries already in the
	// store are preserved. It returns the store version after the push.
	Push(ctx context.Context, h *signature.History) (Version, error)

	// Probe cheaply returns the current version token without reading a
	// full snapshot.
	Probe(ctx context.Context) (Version, error)

	// Close releases resources held by the store handle. The persisted
	// state survives (journals and files are the immunity — they must
	// outlive the process).
	Close() error
}

// ctxErr returns ctx's error when it is already done, nil otherwise —
// the cheap cancellation check the filesystem backends run between
// blocking-free I/O steps.
func ctxErr(ctx context.Context) error {
	select {
	case <-ctx.Done():
		return fmt.Errorf("histstore: %w", ctx.Err())
	default:
		return nil
	}
}

// Open resolves a store specification string to a backend:
//
//	http://host:port or https://…  → HTTPStore (a dimmunix-hist serve daemon)
//	dir:PATH, PATH/ or existing dir → DirStore (per-process journals)
//	anything else                   → FileStore (one shared file)
//
// This is the form DIMMUNIX_HISTORY_SYNC and the dimmunix-hist
// subcommands accept. HTTP stores pick up the daemon's shared-secret
// push token from DIMMUNIX_SYNC_TOKEN when set.
func Open(spec string) (Store, error) {
	switch {
	case spec == "":
		return nil, fmt.Errorf("histstore: empty store spec")
	case strings.HasPrefix(spec, "http://") || strings.HasPrefix(spec, "https://"):
		s := NewHTTPStore(spec)
		if tok := os.Getenv("DIMMUNIX_SYNC_TOKEN"); tok != "" {
			s.SetToken(tok)
		}
		return s, nil
	case strings.HasPrefix(spec, "dir:"):
		return NewDirStore(strings.TrimPrefix(spec, "dir:"))
	case strings.HasSuffix(spec, "/") || isDir(spec):
		return NewDirStore(strings.TrimSuffix(spec, "/"))
	default:
		return NewFileStore(spec), nil
	}
}
