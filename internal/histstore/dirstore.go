package histstore

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/signature"
)

// journalExt marks DirStore journal files. Each line of a journal is one
// compact v2 snapshot record; the newest parseable line of a journal
// subsumes the older ones (a process's local history only moves forward
// in join order), so compaction may rewrite a journal down to its latest
// record at any time.
const journalExt = ".histj"

// baselineName is the shared baseline journal that absorbs journals of
// departed processes: without it the directory grows one journal per
// process forever under fleet churn. The baseline is itself a journal
// (merged by Load and hashed by Probe like any other) — it just has no
// owning process.
const baselineName = "baseline" + journalExt

// DefaultJournalRecords bounds a journal's record count before Push
// compacts it back to one record.
const DefaultJournalRecords = 8

// DefaultJournalExpiry is how long a journal may go without an append
// before a reader may fold it into the baseline and delete it. An hour is
// far beyond any live handle's push cadence while keeping the directory
// bounded within the first hour of churn.
const DefaultJournalExpiry = time.Hour

var journalSeq atomic.Uint64

// DirStore shares a directory of per-process append journals. Every
// store handle owns exactly one journal file, so pushes from different
// processes (or different handles) never contend on a lock or overwrite
// each other; Load merges every journal's records through the revision
// join. This is the no-write-contention backend for many instances on
// one filesystem.
//
// Journals whose owner departed (no append for the journal expiry) are
// compacted into the shared baseline file during Load, so the directory
// stays bounded under fleet churn. A live handle whose journal was
// compacted away (it only looked departed — e.g. a long-idle process)
// recovers on its next push: every record is the join of everything the
// handle ever pushed, so rewriting the journal from scratch loses
// nothing.
type DirStore struct {
	dir     string
	journal string // own journal path

	mu         sync.Mutex
	acc        *signature.History // join of everything this handle pushed
	f          *os.File
	records    int
	maxRecords int
	expiry     time.Duration // journal expiry (negative disables compaction)
}

// NewDirStore returns a store backed by dir (created if missing). The
// handle's journal is named uniquely per process and handle; it is
// created on first Push.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	name := fmt.Sprintf("j-%d-%d-%d%s",
		os.Getpid(), time.Now().UnixNano(), journalSeq.Add(1), journalExt)
	return &DirStore{
		dir:        dir,
		journal:    filepath.Join(dir, name),
		maxRecords: DefaultJournalRecords,
		expiry:     DefaultJournalExpiry,
	}, nil
}

// Dir returns the shared directory.
func (s *DirStore) Dir() string { return s.dir }

// JournalPath returns this handle's own journal file path.
func (s *DirStore) JournalPath() string { return s.journal }

// SetJournalRecordLimit bounds the own journal's records before a push
// compacts it (<= 0 restores the default).
func (s *DirStore) SetJournalRecordLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = DefaultJournalRecords
	}
	s.maxRecords = n
}

// SetJournalExpiry sets how long a journal may go without an append
// before Load folds it into the baseline (0 restores the default,
// negative disables departed-journal compaction entirely).
func (s *DirStore) SetJournalExpiry(d time.Duration) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if d == 0 {
		d = DefaultJournalExpiry
	}
	s.expiry = d
}

// staleJournal is a departed-journal compaction candidate observed
// during Load.
type staleJournal struct {
	path  string
	mtime time.Time
}

// Load merges every journal in the directory into a fresh history. A
// torn or unparseable record (e.g. a crash mid-append) is skipped; the
// join makes partial reads safe — they only delay convergence. The
// merged snapshot carries a fingerprint only when every record agrees on
// one. Journals of departed processes are opportunistically folded into
// the baseline on the way (best-effort maintenance — failures and lock
// contention just leave them for the next reader).
func (s *DirStore) Load(ctx context.Context) (*signature.History, Version, error) {
	v, err := s.Probe(ctx)
	if err != nil {
		return nil, "", err
	}
	s.mu.Lock()
	expiry := s.expiry
	s.mu.Unlock()

	out := signature.NewHistory()
	departed := signature.NewHistory() // baseline + stale journals
	var stale []staleJournal
	fp, fpMixed := "", false
	paths, err := s.journalPaths()
	if err != nil {
		return nil, "", err
	}
	for _, path := range paths {
		if err := ctxErr(ctx); err != nil {
			return nil, "", err
		}
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue // compacted or removed between readdir and open
		}
		if err != nil {
			return nil, "", fmt.Errorf("histstore: %w", err)
		}
		isBaseline := filepath.Base(path) == baselineName
		var mtime time.Time
		if fi, err := f.Stat(); err == nil {
			mtime = fi.ModTime()
		}
		isStale := expiry > 0 && path != s.journal && !isBaseline &&
			!mtime.IsZero() && time.Since(mtime) > expiry
		err = scanRecords(f, func(rec *signature.History) {
			out.Merge(rec)
			if isBaseline || isStale {
				departed.Merge(rec)
			}
			switch rfp := rec.Fingerprint(); {
			case rfp == "":
			case fp == "":
				fp = rfp
			case fp != rfp:
				fpMixed = true
			}
		})
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("histstore: %w", err)
		}
		if isStale {
			stale = append(stale, staleJournal{path: path, mtime: mtime})
		}
	}
	if fp != "" && !fpMixed {
		out.SetFingerprint(fp)
		departed.SetFingerprint(fp)
	}
	if len(stale) > 0 && ctxErr(ctx) == nil {
		s.compactDeparted(departed, stale)
	}
	return out, v, nil
}

// compactDeparted folds the stale journals (whose records are already
// joined into departed, along with the baseline as read) into the
// baseline file and deletes them. Concurrent readers race benignly: the
// baseline rewrite runs under a non-blocking advisory lock (contenders
// skip their turn), the current baseline is re-read and re-joined under
// that lock (so a compaction that landed between our scan and our lock —
// whose source journals are already deleted — is never clobbered), the
// rename is atomic, and a journal whose mtime moved since the read is
// left alone — its owner came back, and its content is still subsumed
// by the baseline join.
func (s *DirStore) compactDeparted(departed *signature.History, stale []staleJournal) {
	unlock, err := tryLockFile(filepath.Join(s.dir, ".baseline.lock"))
	if err != nil || unlock == nil {
		return // busy or unlockable: another reader is compacting
	}
	defer unlock()

	baseline := filepath.Join(s.dir, baselineName)
	mergeJournalInto(baseline, departed)
	data, err := departed.MarshalJSONCompact()
	if err != nil {
		return
	}
	data = append(data, '\n')
	if err := atomicWriteFile(s.dir, ".histj-baseline-*", baseline, data); err != nil {
		return
	}
	for _, j := range stale {
		// Skip a journal that was appended to after we read it: the new
		// record is not in the baseline yet. (A live owner also re-creates
		// its journal on the next push, so even losing this race costs at
		// most one record's delta until then.)
		if fi, err := os.Stat(j.path); err == nil && fi.ModTime().Equal(j.mtime) {
			os.Remove(j.path)
		}
	}
}

// scanRecords invokes fn for every parseable record in a journal
// stream; blank lines and torn records (a crash mid-append) are
// skipped. Returns only scanner-level read errors.
func scanRecords(r io.Reader, fn func(*signature.History)) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		rec := signature.NewHistory()
		if err := rec.UnmarshalJSON([]byte(line)); err != nil {
			continue // torn trailing record
		}
		fn(rec)
	}
	return sc.Err()
}

// mergeJournalInto joins every parseable record of the journal at path
// into h (best-effort: a missing or torn file contributes nothing).
func mergeJournalInto(path string, h *signature.History) {
	f, err := os.Open(path)
	if err != nil {
		return
	}
	defer f.Close()
	_ = scanRecords(f, func(rec *signature.History) { h.Merge(rec) })
}

// atomicWriteFile publishes data at target via a temp file in dir plus
// rename, cleaning the temp up on any failure. The temp file is synced
// before the rename: compactDeparted deletes its source journals right
// after, so a power loss must not be able to surface the rename (and
// the unlinks) without the new content — for departed journals there is
// no owner left to re-push what a torn baseline would lose.
func atomicWriteFile(dir, tmpPattern, target string, data []byte) error {
	tmp, err := os.CreateTemp(dir, tmpPattern)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if err := os.Rename(tmpName, target); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	// Make the rename durable before the caller proceeds (compactDeparted
	// unlinks its source journals next — those unlinks must never reach
	// disk ahead of the baseline they were folded into). Best-effort:
	// directory fsync is unsupported on some platforms.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}

// Push joins h into the handle's accumulated state and appends that as
// one record to its own journal — no cross-process lock, no
// read-modify-write. Because each record is the join of everything the
// handle ever pushed, the newest record subsumes the older ones, which
// is what lets compaction rewrite the journal down to a single record.
func (s *DirStore) Push(ctx context.Context, h *signature.History) (Version, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	s.mu.Lock()
	if s.acc == nil {
		s.acc = signature.NewHistory()
	}
	s.acc.Merge(h)
	if fp := h.Fingerprint(); fp != "" {
		s.acc.SetFingerprint(fp)
	}
	data, err := s.acc.MarshalJSONCompact()
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	data = append(data, '\n')
	err = s.appendLocked(ctx, data)
	s.mu.Unlock()
	if err != nil {
		return "", err
	}
	return s.Probe(ctx)
}

// appendLocked appends one record, defending against the departed-journal
// compactor. A journal that is (or is approaching) a compaction
// candidate is rewritten under the same advisory lock the compactor
// holds across its stat-and-remove, so the append cannot land on a file
// mid-deletion; the half-expiry margin guarantees a journal taking the
// unguarded path is too fresh for any in-flight compactor scan to have
// selected it (its pre-remove mtime re-check would skip it regardless).
// Rewrites are lossless: every record is the handle's full accumulated
// join. This matters most for Stop's final publish, where a lost record
// would have no "next push" to heal it.
func (s *DirStore) appendLocked(ctx context.Context, record []byte) error {
	fi, statErr := os.Stat(s.journal)
	missing := errors.Is(statErr, fs.ErrNotExist)
	nearStale := statErr == nil && s.expiry > 0 && time.Since(fi.ModTime()) > s.expiry/2
	if (missing && s.f != nil) || nearStale {
		// Already folded into the baseline (the open descriptor points at
		// an unlinked inode), or idle long enough that a compactor could
		// soon target it.
		return s.recreateUnderLock(ctx, record)
	}
	if s.records+1 > s.maxRecords {
		return s.compactLocked(record)
	}
	if s.f == nil {
		f, err := os.OpenFile(s.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("histstore: %w", err)
		}
		s.f = f
	}
	if _, err := s.f.Write(record); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	// Belt for the boundary case: if a compactor deleted the journal
	// between the stat above and the write, the record sits on an
	// unlinked inode — republish it under the lock.
	if _, err := os.Stat(s.journal); errors.Is(err, fs.ErrNotExist) {
		return s.recreateUnderLock(ctx, record)
	}
	s.records++
	return nil
}

// recreateUnderLock rewrites the journal from scratch (one cumulative
// record) while holding the compactor's advisory lock, so no concurrent
// departed-journal compaction can be mid-removal of it.
func (s *DirStore) recreateUnderLock(ctx context.Context, record []byte) error {
	unlock, err := lockFile(ctx, filepath.Join(s.dir, ".baseline.lock"))
	if err != nil {
		return fmt.Errorf("histstore: lock %s: %w", s.journal, err)
	}
	defer unlock()
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	s.records = 0
	return s.compactLocked(record)
}

// compactLocked atomically replaces the journal with the single newest
// record.
func (s *DirStore) compactLocked(record []byte) error {
	if err := atomicWriteFile(s.dir, ".histj-compact-*", s.journal, record); err != nil {
		return err
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	// Reopen in append mode so subsequent records extend the compacted
	// file (the old descriptor points at the unlinked inode).
	f, err := os.OpenFile(s.journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	s.f = f
	s.records = 1
	return nil
}

// Probe hashes every journal's (name, size, mtime) triple — one readdir
// plus one stat per journal, no record parsing.
func (s *DirStore) Probe(ctx context.Context) (Version, error) {
	if err := ctxErr(ctx); err != nil {
		return "", err
	}
	paths, err := s.journalPaths()
	if err != nil {
		return "", err
	}
	hash := fnv.New64a()
	for _, path := range paths {
		fi, err := os.Stat(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return "", fmt.Errorf("histstore: %w", err)
		}
		fmt.Fprintf(hash, "%s:%d:%d;", filepath.Base(path), fi.Size(), fi.ModTime().UnixNano())
	}
	return Version(fmt.Sprintf("%d:%x", len(paths), hash.Sum64())), nil
}

func (s *DirStore) journalPaths() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // first run: nothing journaled yet
	}
	if err != nil {
		// An unreadable directory must surface, not masquerade as an
		// empty (healthy) fleet history.
		return nil, fmt.Errorf("histstore: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), journalExt) {
			paths = append(paths, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// Close releases the journal file handle; the journal itself stays — it
// is this process's contribution to the shared immunity.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}
