package histstore

import (
	"bufio"
	"errors"
	"fmt"
	"hash/fnv"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/signature"
)

// journalExt marks DirStore journal files. Each line of a journal is one
// compact v2 snapshot record; the newest parseable line of a journal
// subsumes the older ones (a process's local history only moves forward
// in join order), so compaction may rewrite a journal down to its latest
// record at any time.
const journalExt = ".histj"

// DefaultJournalRecords bounds a journal's record count before Push
// compacts it back to one record.
const DefaultJournalRecords = 8

var journalSeq atomic.Uint64

// DirStore shares a directory of per-process append journals. Every
// store handle owns exactly one journal file, so pushes from different
// processes (or different handles) never contend on a lock or overwrite
// each other; Load merges every journal's records through the revision
// join. This is the no-write-contention backend for many instances on
// one filesystem.
type DirStore struct {
	dir     string
	journal string // own journal path

	mu         sync.Mutex
	acc        *signature.History // join of everything this handle pushed
	f          *os.File
	records    int
	maxRecords int
}

// NewDirStore returns a store backed by dir (created if missing). The
// handle's journal is named uniquely per process and handle; it is
// created on first Push.
func NewDirStore(dir string) (*DirStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("histstore: %w", err)
	}
	name := fmt.Sprintf("j-%d-%d-%d%s",
		os.Getpid(), time.Now().UnixNano(), journalSeq.Add(1), journalExt)
	return &DirStore{
		dir:        dir,
		journal:    filepath.Join(dir, name),
		maxRecords: DefaultJournalRecords,
	}, nil
}

// Dir returns the shared directory.
func (s *DirStore) Dir() string { return s.dir }

// JournalPath returns this handle's own journal file path.
func (s *DirStore) JournalPath() string { return s.journal }

// SetJournalRecordLimit bounds the own journal's records before a push
// compacts it (<= 0 restores the default).
func (s *DirStore) SetJournalRecordLimit(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n <= 0 {
		n = DefaultJournalRecords
	}
	s.maxRecords = n
}

// Load merges every journal in the directory into a fresh history. A
// torn or unparseable record (e.g. a crash mid-append) is skipped; the
// join makes partial reads safe — they only delay convergence. The
// merged snapshot carries a fingerprint only when every record agrees on
// one.
func (s *DirStore) Load() (*signature.History, Version, error) {
	v, err := s.Probe()
	if err != nil {
		return nil, "", err
	}
	out := signature.NewHistory()
	fp, fpMixed := "", false
	paths, err := s.journalPaths()
	if err != nil {
		return nil, "", err
	}
	for _, path := range paths {
		f, err := os.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue // compacted or removed between readdir and open
		}
		if err != nil {
			return nil, "", fmt.Errorf("histstore: %w", err)
		}
		sc := bufio.NewScanner(f)
		sc.Buffer(make([]byte, 0, 64*1024), 64*1024*1024)
		for sc.Scan() {
			line := strings.TrimSpace(sc.Text())
			if line == "" {
				continue
			}
			rec := signature.NewHistory()
			if err := rec.UnmarshalJSON([]byte(line)); err != nil {
				continue // torn trailing record
			}
			out.Merge(rec)
			switch rfp := rec.Fingerprint(); {
			case rfp == "":
			case fp == "":
				fp = rfp
			case fp != rfp:
				fpMixed = true
			}
		}
		err = sc.Err()
		f.Close()
		if err != nil {
			return nil, "", fmt.Errorf("histstore: %w", err)
		}
	}
	if fp != "" && !fpMixed {
		out.SetFingerprint(fp)
	}
	return out, v, nil
}

// Push joins h into the handle's accumulated state and appends that as
// one record to its own journal — no cross-process lock, no
// read-modify-write. Because each record is the join of everything the
// handle ever pushed, the newest record subsumes the older ones, which
// is what lets compaction rewrite the journal down to a single record.
func (s *DirStore) Push(h *signature.History) (Version, error) {
	s.mu.Lock()
	if s.acc == nil {
		s.acc = signature.NewHistory()
	}
	s.acc.Merge(h)
	if fp := h.Fingerprint(); fp != "" {
		s.acc.SetFingerprint(fp)
	}
	data, err := s.acc.MarshalJSONCompact()
	if err != nil {
		s.mu.Unlock()
		return "", err
	}
	data = append(data, '\n')
	err = s.appendLocked(data)
	s.mu.Unlock()
	if err != nil {
		return "", err
	}
	return s.Probe()
}

func (s *DirStore) appendLocked(record []byte) error {
	if s.records+1 > s.maxRecords {
		return s.compactLocked(record)
	}
	if s.f == nil {
		f, err := os.OpenFile(s.journal, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return fmt.Errorf("histstore: %w", err)
		}
		s.f = f
	}
	if _, err := s.f.Write(record); err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	s.records++
	return nil
}

// compactLocked atomically replaces the journal with the single newest
// record.
func (s *DirStore) compactLocked(record []byte) error {
	tmp, err := os.CreateTemp(s.dir, ".histj-compact-*")
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(record); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if err := os.Rename(tmpName, s.journal); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("histstore: %w", err)
	}
	if s.f != nil {
		s.f.Close()
		s.f = nil
	}
	// Reopen in append mode so subsequent records extend the compacted
	// file (the old descriptor points at the unlinked inode).
	f, err := os.OpenFile(s.journal, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("histstore: %w", err)
	}
	s.f = f
	s.records = 1
	return nil
}

// Probe hashes every journal's (name, size, mtime) triple — one readdir
// plus one stat per journal, no record parsing.
func (s *DirStore) Probe() (Version, error) {
	paths, err := s.journalPaths()
	if err != nil {
		return "", err
	}
	hash := fnv.New64a()
	for _, path := range paths {
		fi, err := os.Stat(path)
		if errors.Is(err, fs.ErrNotExist) {
			continue
		}
		if err != nil {
			return "", fmt.Errorf("histstore: %w", err)
		}
		fmt.Fprintf(hash, "%s:%d:%d;", filepath.Base(path), fi.Size(), fi.ModTime().UnixNano())
	}
	return Version(fmt.Sprintf("%d:%x", len(paths), hash.Sum64())), nil
}

func (s *DirStore) journalPaths() ([]string, error) {
	entries, err := os.ReadDir(s.dir)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil // first run: nothing journaled yet
	}
	if err != nil {
		// An unreadable directory must surface, not masquerade as an
		// empty (healthy) fleet history.
		return nil, fmt.Errorf("histstore: %w", err)
	}
	var paths []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), journalExt) {
			paths = append(paths, filepath.Join(s.dir, e.Name()))
		}
	}
	sort.Strings(paths)
	return paths, nil
}

// Close releases the journal file handle; the journal itself stays — it
// is this process's contribution to the shared immunity.
func (s *DirStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.f != nil {
		err := s.f.Close()
		s.f = nil
		return err
	}
	return nil
}
