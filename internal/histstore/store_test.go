package histstore

import (
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

func sig(seed uint64) *signature.Signature {
	return signature.New(signature.Deadlock, []stack.Stack{
		stack.Synthetic(seed, 4), stack.Synthetic(seed+1000, 4),
	}, 4)
}

func histWith(sigs ...*signature.Signature) *signature.History {
	h := signature.NewHistory()
	for _, s := range sigs {
		h.Add(s)
	}
	return h
}

// storeFactories builds each backend twice over the same shared state,
// simulating two processes. The HTTP pair shares one daemon.
func storeFactories(t *testing.T) map[string]func(t *testing.T) (a, b Store) {
	return map[string]func(t *testing.T) (Store, Store){
		"file": func(t *testing.T) (Store, Store) {
			path := filepath.Join(t.TempDir(), "hist.json")
			return NewFileStore(path), NewFileStore(path)
		},
		"dir": func(t *testing.T) (Store, Store) {
			dir := t.TempDir()
			a, err := NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		},
		"http": func(t *testing.T) (Store, Store) {
			srv, err := NewServer(nil)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			return NewHTTPStore(ts.URL), NewHTTPStore(ts.URL)
		},
	}
}

// TestStoreConvergence is the backend contract: a signature pushed by
// one handle is loaded by the other; a removal pushed by one handle
// deletes it at the other and a stale re-push cannot resurrect it; a
// disabled-flip propagates. Probe changes exactly when content does.
func TestStoreConvergence(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()

			s := sig(1)
			ha := histWith(s)
			if _, err := a.Push(ha); err != nil {
				t.Fatal(err)
			}

			hb, v1, err := b.Load()
			if err != nil {
				t.Fatal(err)
			}
			if hb.Get(s.ID) == nil {
				t.Fatal("pushed signature did not arrive")
			}

			// Probe stability: no change → same token.
			pv, err := b.Probe()
			if err != nil {
				t.Fatal(err)
			}
			if pv != v1 {
				t.Fatalf("probe %q != load version %q with no writes between", pv, v1)
			}

			// Disable at b, push; a sees it.
			hb.SetDisabled(s.ID, true)
			if _, err := b.Push(hb); err != nil {
				t.Fatal(err)
			}
			pv2, err := a.Probe()
			if err != nil {
				t.Fatal(err)
			}
			if pv2 == pv {
				t.Fatal("probe did not change after a content push")
			}
			haSeen, _, err := a.Load()
			if err != nil {
				t.Fatal(err)
			}
			if got := haSeen.Get(s.ID); got == nil || !got.Disabled {
				t.Fatal("disabled-flip did not propagate")
			}

			// Remove at a, push; then a stale snapshot (still carrying the
			// signature enabled at rev 1) re-pushes from b — the tombstone
			// must win.
			haSeen.Remove(s.ID)
			if _, err := a.Push(haSeen); err != nil {
				t.Fatal(err)
			}
			stale := histWith(sig(1))
			if _, err := b.Push(stale); err != nil {
				t.Fatal(err)
			}
			final, _, err := b.Load()
			if err != nil {
				t.Fatal(err)
			}
			if final.Get(s.ID) != nil {
				t.Fatal("stale push resurrected a removed signature")
			}
			if len(final.Tombstones()) == 0 {
				t.Fatal("tombstone lost in the store round-trip")
			}
		})
	}
}

// TestStoreConcurrentPushes hammers one store from many goroutines over
// both handles; every distinct signature must survive into the final
// merged state (no lost updates).
func TestStoreConcurrentPushes(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			stores := []Store{a, b}

			const writers, perWriter = 4, 8
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					st := stores[w%2]
					for i := 0; i < perWriter; i++ {
						h := histWith(sig(uint64(w*1000 + i)))
						if _, err := st.Push(h); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			final, _, err := a.Load()
			if err != nil {
				t.Fatal(err)
			}
			if got := final.Len(); got != writers*perWriter {
				t.Fatalf("final history has %d signatures, want %d (lost updates)", got, writers*perWriter)
			}
		})
	}
}

// TestFileStoreV1Compat: a FileStore pointed at a legacy v1 file reads
// it and upgrades it to v2 on the first push.
func TestFileStoreV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	s := sig(7)
	v1 := `{"format":1,"signatures":[{"id":"` + s.ID + `","kind":"deadlock","stacks":["` +
		s.Stacks[0].String() + `","` + s.Stacks[1].String() + `"],"depth":4}]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	st := NewFileStore(path)
	h, _, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil {
		t.Fatal("v1 file unreadable through the store")
	}
	if _, err := st.Push(signature.NewHistory()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), `"format": 2`) {
		t.Fatal("push did not upgrade the file to v2")
	}
	h2, _, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if h2.Get(s.ID) == nil {
		t.Fatal("upgrade lost the v1 content")
	}
}

// TestDirStoreJournalCompaction: the per-process journal stays within
// its record bound, and compaction loses nothing.
func TestDirStoreJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetJournalRecordLimit(3)

	h := signature.NewHistory()
	for i := 0; i < 10; i++ {
		h.Add(sig(uint64(i)))
		if _, err := st.Push(h); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines > 3 {
		t.Fatalf("journal holds %d records, want <= 3", lines)
	}
	final, _, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != 10 {
		t.Fatalf("compaction lost signatures: %d/10", final.Len())
	}
}

// TestDirStoreSkipsTornRecord: a torn trailing record (crash mid-append)
// must not poison the merged read.
func TestDirStoreSkipsTornRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := sig(3)
	if _, err := st.Push(histWith(s)); err != nil {
		t.Fatal(err)
	}
	// Simulate another process dying mid-append.
	torn := filepath.Join(dir, "j-dead-1"+journalExt)
	if err := os.WriteFile(torn, []byte(`{"format":2,"signa`), 0o644); err != nil {
		t.Fatal(err)
	}
	h, _, err := st.Load()
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil || h.Len() != 1 {
		t.Fatalf("torn record corrupted the merge: len=%d", h.Len())
	}
}

// TestServerPersistsThroughBacking: a daemon backed by a FileStore
// persists pushes, and a restarted daemon re-serves them.
func TestServerPersistsThroughBacking(t *testing.T) {
	path := filepath.Join(t.TempDir(), "served.json")
	srv, err := NewServer(NewFileStore(path))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewHTTPStore(ts.URL)
	s := sig(11)
	if _, err := client.Push(histWith(s)); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, err := NewServer(NewFileStore(path))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	h, _, err := NewHTTPStore(ts2.URL).Load()
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil {
		t.Fatal("restarted daemon lost the pushed signature")
	}
}

// TestOpenResolution checks the spec grammar.
func TestOpenResolution(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		spec string
		want string
	}{
		{"http://x.example:1", "*histstore.HTTPStore"},
		{"https://x.example:1", "*histstore.HTTPStore"},
		{"dir:" + dir, "*histstore.DirStore"},
		{dir, "*histstore.DirStore"},
		{dir + "/", "*histstore.DirStore"},
		{filepath.Join(dir, "hist.json"), "*histstore.FileStore"},
	}
	for _, c := range cases {
		st, err := Open(c.spec)
		if err != nil {
			t.Fatalf("Open(%q): %v", c.spec, err)
		}
		if got := typeName(st); got != c.want {
			t.Errorf("Open(%q) = %s, want %s", c.spec, got, c.want)
		}
		st.Close()
	}
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") must fail")
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *HTTPStore:
		return "*histstore.HTTPStore"
	case *DirStore:
		return "*histstore.DirStore"
	case *FileStore:
		return "*histstore.FileStore"
	default:
		return "?"
	}
}
