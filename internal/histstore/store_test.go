package histstore

import (
	"context"
	"errors"
	"io/fs"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// bg is the bare context used where cancellation is not the behavior
// under test (the ctx contract cases live in TestStoreContextCancelled).
var bg = context.Background()

func sig(seed uint64) *signature.Signature {
	return signature.New(signature.Deadlock, []stack.Stack{
		stack.Synthetic(seed, 4), stack.Synthetic(seed+1000, 4),
	}, 4)
}

func histWith(sigs ...*signature.Signature) *signature.History {
	h := signature.NewHistory()
	for _, s := range sigs {
		h.Add(s)
	}
	return h
}

// storeFactories builds each backend twice over the same shared state,
// simulating two processes. The HTTP pair shares one daemon.
func storeFactories(t *testing.T) map[string]func(t *testing.T) (a, b Store) {
	return map[string]func(t *testing.T) (Store, Store){
		"file": func(t *testing.T) (Store, Store) {
			path := filepath.Join(t.TempDir(), "hist.json")
			return NewFileStore(path), NewFileStore(path)
		},
		"dir": func(t *testing.T) (Store, Store) {
			dir := t.TempDir()
			a, err := NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewDirStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			return a, b
		},
		"http": func(t *testing.T) (Store, Store) {
			srv, err := NewServer(nil)
			if err != nil {
				t.Fatal(err)
			}
			ts := httptest.NewServer(srv.Handler())
			t.Cleanup(ts.Close)
			return NewHTTPStore(ts.URL), NewHTTPStore(ts.URL)
		},
	}
}

// TestStoreConvergence is the backend contract: a signature pushed by
// one handle is loaded by the other; a removal pushed by one handle
// deletes it at the other and a stale re-push cannot resurrect it; a
// disabled-flip propagates. Probe changes exactly when content does.
func TestStoreConvergence(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()

			s := sig(1)
			ha := histWith(s)
			if _, err := a.Push(bg, ha); err != nil {
				t.Fatal(err)
			}

			hb, v1, err := b.Load(bg)
			if err != nil {
				t.Fatal(err)
			}
			if hb.Get(s.ID) == nil {
				t.Fatal("pushed signature did not arrive")
			}

			// Probe stability: no change → same token.
			pv, err := b.Probe(bg)
			if err != nil {
				t.Fatal(err)
			}
			if pv != v1 {
				t.Fatalf("probe %q != load version %q with no writes between", pv, v1)
			}

			// Disable at b, push; a sees it.
			hb.SetDisabled(s.ID, true)
			if _, err := b.Push(bg, hb); err != nil {
				t.Fatal(err)
			}
			pv2, err := a.Probe(bg)
			if err != nil {
				t.Fatal(err)
			}
			if pv2 == pv {
				t.Fatal("probe did not change after a content push")
			}
			haSeen, _, err := a.Load(bg)
			if err != nil {
				t.Fatal(err)
			}
			if got := haSeen.Get(s.ID); got == nil || !got.Disabled {
				t.Fatal("disabled-flip did not propagate")
			}

			// Remove at a, push; then a stale snapshot (still carrying the
			// signature enabled at rev 1) re-pushes from b — the tombstone
			// must win.
			haSeen.Remove(s.ID)
			if _, err := a.Push(bg, haSeen); err != nil {
				t.Fatal(err)
			}
			stale := histWith(sig(1))
			if _, err := b.Push(bg, stale); err != nil {
				t.Fatal(err)
			}
			final, _, err := b.Load(bg)
			if err != nil {
				t.Fatal(err)
			}
			if final.Get(s.ID) != nil {
				t.Fatal("stale push resurrected a removed signature")
			}
			if len(final.Tombstones()) == 0 {
				t.Fatal("tombstone lost in the store round-trip")
			}
		})
	}
}

// TestStoreConcurrentPushes hammers one store from many goroutines over
// both handles; every distinct signature must survive into the final
// merged state (no lost updates).
func TestStoreConcurrentPushes(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			stores := []Store{a, b}

			const writers, perWriter = 4, 8
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					st := stores[w%2]
					for i := 0; i < perWriter; i++ {
						h := histWith(sig(uint64(w*1000 + i)))
						if _, err := st.Push(bg, h); err != nil {
							t.Errorf("writer %d: %v", w, err)
							return
						}
					}
				}(w)
			}
			wg.Wait()

			final, _, err := a.Load(bg)
			if err != nil {
				t.Fatal(err)
			}
			if got := final.Len(); got != writers*perWriter {
				t.Fatalf("final history has %d signatures, want %d (lost updates)", got, writers*perWriter)
			}
		})
	}
}

// TestFileStoreV1Compat: a FileStore pointed at a legacy v1 file reads
// it and upgrades it to v2 on the first push.
func TestFileStoreV1Compat(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	s := sig(7)
	v1 := `{"format":1,"signatures":[{"id":"` + s.ID + `","kind":"deadlock","stacks":["` +
		s.Stacks[0].String() + `","` + s.Stacks[1].String() + `"],"depth":4}]}`
	if err := os.WriteFile(path, []byte(v1), 0o644); err != nil {
		t.Fatal(err)
	}
	st := NewFileStore(path)
	h, _, err := st.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil {
		t.Fatal("v1 file unreadable through the store")
	}
	if _, err := st.Push(bg, signature.NewHistory()); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	if !strings.Contains(string(raw), `"format": 2`) {
		t.Fatal("push did not upgrade the file to v2")
	}
	h2, _, err := st.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Get(s.ID) == nil {
		t.Fatal("upgrade lost the v1 content")
	}
}

// TestDirStoreJournalCompaction: the per-process journal stays within
// its record bound, and compaction loses nothing.
func TestDirStoreJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	st.SetJournalRecordLimit(3)

	h := signature.NewHistory()
	for i := 0; i < 10; i++ {
		h.Add(sig(uint64(i)))
		if _, err := st.Push(bg, h); err != nil {
			t.Fatal(err)
		}
	}
	data, err := os.ReadFile(st.JournalPath())
	if err != nil {
		t.Fatal(err)
	}
	if lines := strings.Count(string(data), "\n"); lines > 3 {
		t.Fatalf("journal holds %d records, want <= 3", lines)
	}
	final, _, err := st.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if final.Len() != 10 {
		t.Fatalf("compaction lost signatures: %d/10", final.Len())
	}
}

// TestDirStoreSkipsTornRecord: a torn trailing record (crash mid-append)
// must not poison the merged read.
func TestDirStoreSkipsTornRecord(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	s := sig(3)
	if _, err := st.Push(bg, histWith(s)); err != nil {
		t.Fatal(err)
	}
	// Simulate another process dying mid-append.
	torn := filepath.Join(dir, "j-dead-1"+journalExt)
	if err := os.WriteFile(torn, []byte(`{"format":2,"signa`), 0o644); err != nil {
		t.Fatal(err)
	}
	h, _, err := st.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil || h.Len() != 1 {
		t.Fatalf("torn record corrupted the merge: len=%d", h.Len())
	}
}

// TestServerPersistsThroughBacking: a daemon backed by a FileStore
// persists pushes, and a restarted daemon re-serves them.
func TestServerPersistsThroughBacking(t *testing.T) {
	path := filepath.Join(t.TempDir(), "served.json")
	srv, err := NewServer(NewFileStore(path))
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	client := NewHTTPStore(ts.URL)
	s := sig(11)
	if _, err := client.Push(bg, histWith(s)); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	srv2, err := NewServer(NewFileStore(path))
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	h, _, err := NewHTTPStore(ts2.URL).Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Get(s.ID) == nil {
		t.Fatal("restarted daemon lost the pushed signature")
	}
}

// TestOpenResolution checks the spec grammar.
func TestOpenResolution(t *testing.T) {
	dir := t.TempDir()
	cases := []struct {
		spec string
		want string
	}{
		{"http://x.example:1", "*histstore.HTTPStore"},
		{"https://x.example:1", "*histstore.HTTPStore"},
		{"dir:" + dir, "*histstore.DirStore"},
		{dir, "*histstore.DirStore"},
		{dir + "/", "*histstore.DirStore"},
		{filepath.Join(dir, "hist.json"), "*histstore.FileStore"},
	}
	for _, c := range cases {
		st, err := Open(c.spec)
		if err != nil {
			t.Fatalf("Open(%q): %v", c.spec, err)
		}
		if got := typeName(st); got != c.want {
			t.Errorf("Open(%q) = %s, want %s", c.spec, got, c.want)
		}
		st.Close()
	}
	if _, err := Open(""); err == nil {
		t.Error("Open(\"\") must fail")
	}
}

func typeName(v any) string {
	switch v.(type) {
	case *HTTPStore:
		return "*histstore.HTTPStore"
	case *DirStore:
		return "*histstore.DirStore"
	case *FileStore:
		return "*histstore.FileStore"
	default:
		return "?"
	}
}

// TestDirStoreDepartedJournalCompaction is the PR 4 regression for
// unbounded directory growth: journals of departed processes used to
// accumulate until someone hand-deleted the directory. A reader now
// folds journals idle past the expiry into the baseline file and
// removes them — losslessly.
func TestDirStoreDepartedJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	departed, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := departed.Push(bg, histWith(sig(1))); err != nil {
		t.Fatal(err)
	}
	departed.Close() // the process is gone; its journal lingers

	live, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer live.Close()
	if _, err := live.Push(bg, histWith(sig(2))); err != nil {
		t.Fatal(err)
	}

	// Age the departed journal past the expiry and read.
	old := time.Now().Add(-2 * DefaultJournalExpiry)
	if err := os.Chtimes(departed.JournalPath(), old, old); err != nil {
		t.Fatal(err)
	}
	h, _, err := live.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("compacting read lost signatures: %d/2", h.Len())
	}
	if _, err := os.Stat(departed.JournalPath()); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("departed journal still present (stat err %v)", err)
	}
	if _, err := os.Stat(filepath.Join(dir, baselineName)); err != nil {
		t.Fatalf("baseline not written: %v", err)
	}

	// The directory stays bounded: baseline + the live handle's journal.
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	journals := 0
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), journalExt) {
			journals++
		}
	}
	if journals != 2 {
		t.Fatalf("directory holds %d journals, want 2 (baseline + live)", journals)
	}

	// A fresh reader converges to the same state from the baseline.
	fresh, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	h2, _, err := fresh.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Len() != 2 || h2.Get(sig(1).ID) == nil {
		t.Fatalf("baseline read incomplete: len=%d", h2.Len())
	}
}

// TestDirStoreCompactedOwnerRecovers: a live handle whose journal was
// folded away (it only looked departed) rewrites it from its
// accumulated state on the next push — nothing is lost.
func TestDirStoreCompactedOwnerRecovers(t *testing.T) {
	dir := t.TempDir()
	st, err := NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.Push(bg, histWith(sig(1))); err != nil {
		t.Fatal(err)
	}
	// Simulate another reader's compaction deleting the journal out from
	// under the open descriptor.
	if err := os.Remove(st.JournalPath()); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Push(bg, histWith(sig(2))); err != nil {
		t.Fatal(err)
	}
	h, _, err := st.Load(bg)
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 2 {
		t.Fatalf("recovered journal lost state: %d/2 (the push wrote to an unlinked inode?)", h.Len())
	}
}

// TestServerPushToken: a daemon armed with a shared secret rejects
// unauthenticated (or wrongly authenticated) pushes with 401 while
// leaving reads open; a client carrying the token pushes normally.
func TestServerPushToken(t *testing.T) {
	srv, err := NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	srv.SetToken("fleet-secret")
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	anon := NewHTTPStore(ts.URL)
	if _, err := anon.Push(bg, histWith(sig(1))); err == nil {
		t.Fatal("unauthenticated push must be rejected")
	} else if !strings.Contains(err.Error(), "401") {
		t.Fatalf("want a 401 rejection, got %v", err)
	}
	if _, err := anon.Probe(bg); err != nil {
		t.Fatalf("probe must stay open: %v", err)
	}
	if _, _, err := anon.Load(bg); err != nil {
		t.Fatalf("pull must stay open: %v", err)
	}

	wrong := NewHTTPStore(ts.URL)
	wrong.SetToken("not-the-secret")
	if _, err := wrong.Push(bg, histWith(sig(1))); err == nil {
		t.Fatal("wrong-token push must be rejected")
	}

	auth := NewHTTPStore(ts.URL)
	auth.SetToken("fleet-secret")
	if _, err := auth.Push(bg, histWith(sig(1))); err != nil {
		t.Fatalf("authenticated push failed: %v", err)
	}
	if srv.History().Len() != 1 {
		t.Fatalf("daemon history = %d, want 1", srv.History().Len())
	}
}

// TestStoreContextCancelled is the ctx contract for every backend: an
// already-cancelled context aborts Load, Push, and Probe with an error
// wrapping context.Canceled, without touching the persisted state.
func TestStoreContextCancelled(t *testing.T) {
	for name, mk := range storeFactories(t) {
		t.Run(name, func(t *testing.T) {
			a, b := mk(t)
			defer a.Close()
			defer b.Close()
			if _, err := a.Push(bg, histWith(sig(1))); err != nil {
				t.Fatal(err)
			}

			ctx, cancel := context.WithCancel(context.Background())
			cancel()
			if _, _, err := a.Load(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("Load(cancelled) = %v, want context.Canceled", err)
			}
			if _, err := a.Push(ctx, histWith(sig(2))); !errors.Is(err, context.Canceled) {
				t.Errorf("Push(cancelled) = %v, want context.Canceled", err)
			}
			if _, err := a.Probe(ctx); !errors.Is(err, context.Canceled) {
				t.Errorf("Probe(cancelled) = %v, want context.Canceled", err)
			}

			// The abandoned push left no trace; the live state is intact.
			h, _, err := b.Load(bg)
			if err != nil {
				t.Fatal(err)
			}
			if h.Len() != 1 || h.Get(sig(1).ID) == nil {
				t.Fatalf("cancelled operations disturbed the store: len=%d", h.Len())
			}
		})
	}
}

// TestFileStorePushInterruptibleLock: a push queued behind another
// process's advisory lock gives up when its context expires instead of
// blocking indefinitely — the shutdown path's requirement.
func TestFileStorePushInterruptibleLock(t *testing.T) {
	path := filepath.Join(t.TempDir(), "hist.json")
	unlock, err := lockFile(context.Background(), path+".lock")
	if err != nil {
		t.Fatal(err)
	}
	defer unlock()

	st := NewFileStore(path)
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = st.Push(ctx, histWith(sig(1)))
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Push under a held lock = %v, want DeadlineExceeded", err)
	}
	if elapsed > 2*time.Second {
		t.Fatalf("Push took %v to honor a 100ms deadline", elapsed)
	}
}
