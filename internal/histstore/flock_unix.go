//go:build unix

package histstore

import (
	"os"
	"syscall"
)

// lockFile takes an exclusive advisory flock on path (creating it if
// needed) and returns the release function. Advisory locks serialize
// cooperating dimmunix processes' read-merge-write cycles; they do not
// protect against non-cooperating writers, which is the same contract
// the paper's persistent history file has.
func lockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX); err != nil {
		f.Close()
		return nil, err
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
