//go:build unix

package histstore

import (
	"context"
	"errors"
	"os"
	"syscall"
	"time"
)

// lockFile takes an exclusive advisory flock on path (creating it if
// needed) and returns the release function. Advisory locks serialize
// cooperating dimmunix processes' read-merge-write cycles; they do not
// protect against non-cooperating writers, which is the same contract
// the paper's persistent history file has.
//
// The wait is interruptible: flock(2) itself cannot be cancelled, so the
// lock is polled non-blocking (LOCK_NB) with a short growing backoff and
// the context checked between attempts — a holder that died with the
// lock (or a store outage behind it) can no longer pin the caller past
// its deadline.
func lockFile(ctx context.Context, path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	delay := time.Millisecond
	for {
		err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB)
		if err == nil {
			return func() {
				_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
				_ = f.Close()
			}, nil
		}
		if !errors.Is(err, syscall.EWOULDBLOCK) && !errors.Is(err, syscall.EINTR) {
			f.Close()
			return nil, err
		}
		select {
		case <-ctx.Done():
			f.Close()
			return nil, ctx.Err()
		case <-time.After(delay):
		}
		if delay < 20*time.Millisecond {
			delay *= 2
		}
	}
}

// tryLockFile is lockFile's non-blocking form: it returns (nil, nil)
// when the lock is currently held elsewhere, reserving the blocking wait
// for callers that need it (opportunistic maintenance like DirStore's
// departed-journal compaction just skips its turn).
func tryLockFile(path string) (func(), error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		if errors.Is(err, syscall.EWOULDBLOCK) || errors.Is(err, syscall.EINTR) {
			return nil, nil
		}
		return nil, err
	}
	return func() {
		_ = syscall.Flock(int(f.Fd()), syscall.LOCK_UN)
		_ = f.Close()
	}, nil
}
