package peterson

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// exerciseGuard hammers a guard from n participants and checks mutual
// exclusion via a plain counter that would race without it.
func exerciseGuard(t *testing.T, g Guard, n, iters int) {
	t.Helper()
	var counter int64 // deliberately non-atomic; protected by g
	var inside atomic.Int32
	var wg sync.WaitGroup
	for slot := 0; slot < n; slot++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				g.Lock(slot)
				if got := inside.Add(1); got != 1 {
					t.Errorf("mutual exclusion violated: %d inside", got)
				}
				counter++
				inside.Add(-1)
				g.Unlock(slot)
			}
		}(slot)
	}
	wg.Wait()
	if counter != int64(n*iters) {
		t.Errorf("counter = %d, want %d", counter, n*iters)
	}
}

func TestFilterMutualExclusion2(t *testing.T)  { exerciseGuard(t, NewFilter(2), 2, 3000) }
func TestFilterMutualExclusion4(t *testing.T)  { exerciseGuard(t, NewFilter(4), 4, 1500) }
func TestFilterMutualExclusion16(t *testing.T) { exerciseGuard(t, NewFilter(16), 16, 300) }

func TestSpinMutualExclusion(t *testing.T)  { exerciseGuard(t, NewSpin(), 8, 2000) }
func TestMutexMutualExclusion(t *testing.T) { exerciseGuard(t, NewMutex(), 8, 2000) }

func TestFilterSingleParticipant(t *testing.T) {
	f := NewFilter(1)
	f.Lock(0)
	f.Unlock(0)
	f.Lock(0)
	f.Unlock(0)
	if f.N() != 1 {
		t.Errorf("N = %d", f.N())
	}
}

func TestFilterClampsN(t *testing.T) {
	f := NewFilter(0)
	if f.N() != 1 {
		t.Errorf("N = %d, want 1", f.N())
	}
}

func TestFilterReentryAfterUnlock(t *testing.T) {
	f := NewFilter(3)
	for i := 0; i < 10; i++ {
		f.Lock(1)
		f.Unlock(1)
	}
}

// TestFilterProgress: a participant must eventually acquire even under
// contention (starvation freedom is a property of the filter lock).
func TestFilterProgress(t *testing.T) {
	f := NewFilter(4)
	stop := make(chan struct{})
	for slot := 1; slot < 4; slot++ {
		go func(slot int) {
			for {
				select {
				case <-stop:
					return
				default:
				}
				f.Lock(slot)
				f.Unlock(slot)
			}
		}(slot)
	}
	done := make(chan struct{})
	go func() {
		for i := 0; i < 100; i++ {
			f.Lock(0)
			f.Unlock(0)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("participant 0 starved")
	}
	close(stop)
}

func benchGuard(b *testing.B, mk func(n int) Guard, n int) {
	g := mk(n)
	var slot atomic.Int32
	b.RunParallel(func(pb *testing.PB) {
		s := int(slot.Add(1)-1) % n
		for pb.Next() {
			g.Lock(s)
			g.Unlock(s)
		}
	})
}

func BenchmarkGuardFilter4(b *testing.B) { benchGuard(b, func(n int) Guard { return NewFilter(n) }, 4) }
func BenchmarkGuardFilter16(b *testing.B) {
	benchGuard(b, func(n int) Guard { return NewFilter(n) }, 16)
}
func BenchmarkGuardSpin(b *testing.B)  { benchGuard(b, func(int) Guard { return NewSpin() }, 4) }
func BenchmarkGuardMutex(b *testing.B) { benchGuard(b, func(int) Guard { return NewMutex() }, 4) }
