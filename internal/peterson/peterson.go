// Package peterson implements the generalized n-thread Peterson mutual
// exclusion algorithm (the "filter lock") that §5.6 of the paper uses to
// guard the shared Allowed sets without OS locks, plus a test-and-set spin
// lock and a Guard abstraction so the avoidance code can swap guards
// (the DESIGN.md §5.1 ablation).
package peterson

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Guard is a mutual-exclusion primitive addressed by a dense slot index.
// Slot identifies the participating thread; implementations that do not
// need it (spin, mutex) ignore it.
type Guard interface {
	Lock(slot int)
	Unlock(slot int)
}

// Filter is the generalized Peterson filter lock for a fixed number of
// participants. Participant i must pass slot i in [0, N). It provides
// mutual exclusion and starvation-freedom at O(N) spin levels.
type Filter struct {
	n      int
	level  []atomic.Int32 // level[i]: highest level participant i reached
	victim []atomic.Int32 // victim[l]: last participant to enter level l
}

// NewFilter returns a filter lock for n participants (n >= 1).
func NewFilter(n int) *Filter {
	if n < 1 {
		n = 1
	}
	f := &Filter{
		n:      n,
		level:  make([]atomic.Int32, n),
		victim: make([]atomic.Int32, n),
	}
	for i := range f.level {
		f.level[i].Store(-1)
	}
	return f
}

// N returns the number of participants.
func (f *Filter) N() int { return f.n }

// Lock acquires the lock on behalf of participant slot.
func (f *Filter) Lock(slot int) {
	for l := 0; l < f.n-1; l++ {
		f.level[slot].Store(int32(l))
		f.victim[l].Store(int32(slot))
		// Wait while a conflicting participant exists at level >= l and
		// we are still the victim at this level.
		spins := 0
		for f.victim[l].Load() == int32(slot) && f.existsHigher(slot, int32(l)) {
			spins++
			if spins%64 == 0 {
				runtime.Gosched()
			}
		}
	}
	f.level[slot].Store(int32(f.n - 1))
}

func (f *Filter) existsHigher(slot int, l int32) bool {
	for k := 0; k < f.n; k++ {
		if k != slot && f.level[k].Load() >= l {
			return true
		}
	}
	return false
}

// Unlock releases the lock held by participant slot.
func (f *Filter) Unlock(slot int) {
	f.level[slot].Store(-1)
}

// Spin is a test-and-test-and-set spin lock with exponential-ish backoff.
type Spin struct {
	state atomic.Int32
}

// NewSpin returns an unlocked spin lock.
func NewSpin() *Spin { return &Spin{} }

// Lock acquires the spin lock; slot is ignored.
func (s *Spin) Lock(int) {
	backoff := 1
	for {
		if s.state.Load() == 0 && s.state.CompareAndSwap(0, 1) {
			return
		}
		for i := 0; i < backoff; i++ {
			runtime.Gosched()
		}
		if backoff < 64 {
			backoff <<= 1
		}
	}
}

// Unlock releases the spin lock; slot is ignored.
func (s *Spin) Unlock(int) {
	s.state.Store(0)
}

// Mutex adapts sync.Mutex to the Guard interface.
type Mutex struct {
	mu sync.Mutex
}

// NewMutex returns an unlocked mutex guard.
func NewMutex() *Mutex { return &Mutex{} }

// Lock acquires the mutex; slot is ignored.
func (m *Mutex) Lock(int) { m.mu.Lock() }

// Unlock releases the mutex; slot is ignored.
func (m *Mutex) Unlock(int) { m.mu.Unlock() }

var (
	_ Guard = (*Filter)(nil)
	_ Guard = (*Spin)(nil)
	_ Guard = (*Mutex)(nil)
)
