// Package serverapp simulates the end-to-end server benchmarks of §7.2.1
// (Figure 4): an "immunized JBoss running RUBiS" and an "immunized MySQL
// JDBC running JDBCBench". The real systems are not reproducible here, so
// the simulator reproduces the properties Fig 4 actually exercises: a
// large thread pool serving a mixed read/write workload over lock-striped
// shared tables, performing a few hundred lock operations per second in
// aggregate (the paper reports ~500 lock ops/s across 280 threads for
// JBoss/RUBiS), with per-request think time standing in for I/O.
package serverapp

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// Profile shapes the simulated server.
type Profile struct {
	Name string
	// Workers is the request-serving thread pool size.
	Workers int
	// Tables and Stripes define the lock-striped shared state.
	Tables  int
	Stripes int
	// OpsPerRequest is how many lock-protected operations one request
	// performs; WriteRatio of them are two-lock transactions.
	OpsPerRequest int
	WriteRatio    float64
	// Think is the per-request think time (models I/O and client
	// latency; implemented as sleep, not spin).
	Think time.Duration
}

// RUBiS approximates the JBoss/RUBiS configuration: many threads, mixed
// read/write workload, and a request rate dominated by think time — the
// paper's setup performed only ~500 lock operations per second across 280
// threads, i.e. the system was nowhere near lock-bound.
func RUBiS() Profile {
	return Profile{
		Name:          "JBoss-RUBiS",
		Workers:       280,
		Tables:        8,
		Stripes:       16,
		OpsPerRequest: 4,
		WriteRatio:    0.3,
		Think:         8 * time.Millisecond,
	}
}

// JDBCBench approximates the MySQL-JDBC/JDBCBench configuration: a
// smaller pool with shorter think times and a write-heavy mix (the paper
// measured its higher overhead, up to 7.17%, on this profile).
func JDBCBench() Profile {
	return Profile{
		Name:          "MySQL-JDBCBench",
		Workers:       32,
		Tables:        4,
		Stripes:       8,
		OpsPerRequest: 6,
		WriteRatio:    0.5,
		Think:         2 * time.Millisecond,
	}
}

// Server is one simulated instance.
type Server struct {
	rt      *core.Runtime
	profile Profile
	stripes [][]*core.Mutex
	cells   [][]int64
	reqs    atomic.Uint64
	latSum  atomic.Int64 // nanoseconds
	latMax  atomic.Int64
}

// New builds the server's tables on rt.
func New(rt *core.Runtime, p Profile) *Server {
	s := &Server{rt: rt, profile: p}
	s.stripes = make([][]*core.Mutex, p.Tables)
	s.cells = make([][]int64, p.Tables)
	for i := range s.stripes {
		s.stripes[i] = make([]*core.Mutex, p.Stripes)
		s.cells[i] = make([]int64, p.Stripes)
		for j := range s.stripes[i] {
			s.stripes[i][j] = rt.NewMutex()
		}
	}
	return s
}

// Result summarizes one run.
type Result struct {
	Requests   uint64
	Elapsed    time.Duration
	Throughput float64 // requests/s
	AvgLatency time.Duration
	MaxLatency time.Duration
	LockOpsPS  float64
	Yields     uint64
}

// Run serves requests from Workers goroutines for d and reports
// aggregate throughput and latency.
func (s *Server) Run(d time.Duration) Result {
	s.reqs.Store(0)
	s.latSum.Store(0)
	s.latMax.Store(0)
	before := s.rt.Stats()

	var stop atomic.Bool
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < s.profile.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := s.rt.RegisterThread("srv")
			defer th.Close()
			rng := rand.New(rand.NewSource(int64(w) + 42))
			for !stop.Load() {
				t0 := time.Now()
				s.serveRequest(th, rng)
				lat := time.Since(t0)
				s.reqs.Add(1)
				s.latSum.Add(int64(lat))
				for {
					cur := s.latMax.Load()
					if int64(lat) <= cur || s.latMax.CompareAndSwap(cur, int64(lat)) {
						break
					}
				}
			}
		}(w)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	after := s.rt.Stats()
	res := Result{
		Requests: s.reqs.Load(),
		Elapsed:  elapsed,
		Yields:   after.Yields - before.Yields,
	}
	res.Throughput = float64(res.Requests) / elapsed.Seconds()
	res.LockOpsPS = float64(after.Acquired-before.Acquired) / elapsed.Seconds()
	if res.Requests > 0 {
		res.AvgLatency = time.Duration(s.latSum.Load() / int64(res.Requests))
	}
	res.MaxLatency = time.Duration(s.latMax.Load())
	return res
}

// serveRequest performs one request's lock-protected operations plus
// think time. Operations are dispatched through eight distinct handler
// functions, modeling the many servlet/statement call paths a real server
// has — and giving the stack interner a population rich enough to
// synthesize large histories from (§7.2.1).
func (s *Server) serveRequest(th *core.Thread, rng *rand.Rand) {
	p := s.profile
	for op := 0; op < p.OpsPerRequest; op++ {
		switch rng.Intn(8) {
		case 0:
			s.handleBrowse(th, rng)
		case 1:
			s.handleSearch(th, rng)
		case 2:
			s.handleView(th, rng)
		case 3:
			s.handleBid(th, rng)
		case 4:
			s.handleBuy(th, rng)
		case 5:
			s.handleSell(th, rng)
		case 6:
			s.handleComment(th, rng)
		default:
			s.handleRegister(th, rng)
		}
	}
	if p.Think > 0 {
		// Jittered think time: real clients are not lock-stepped, and on
		// small machines synchronized sleeps would convoy the workers
		// through the scheduler, multiplying any per-op cost by the
		// convoy width.
		jitter := time.Duration(rng.Int63n(int64(p.Think)))
		time.Sleep(p.Think/2 + jitter)
	}
}

func (s *Server) oneOp(th *core.Thread, rng *rand.Rand) {
	p := s.profile
	tbl := rng.Intn(p.Tables)
	i := rng.Intn(p.Stripes)
	if rng.Float64() < p.WriteRatio {
		j := rng.Intn(p.Stripes)
		s.transfer(th, tbl, i, j)
	} else {
		s.read(th, tbl, i)
	}
}

//go:noinline
func (s *Server) handleBrowse(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleSearch(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleView(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleBid(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleBuy(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleSell(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleComment(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

//go:noinline
func (s *Server) handleRegister(th *core.Thread, rng *rand.Rand) { s.oneOp(th, rng) }

// read is a single-lock operation.
//
//go:noinline
func (s *Server) read(th *core.Thread, tbl, i int) {
	m := s.stripes[tbl][i]
	if err := m.LockT(th); err != nil {
		return
	}
	_ = s.cells[tbl][i]
	_ = m.UnlockT(th)
}

// transfer is a two-lock transaction; stripes are always taken in index
// order, so the server itself is deadlock-free (Fig 4 measures overhead,
// not avoidance).
//
//go:noinline
func (s *Server) transfer(th *core.Thread, tbl, i, j int) {
	if i == j {
		s.read(th, tbl, i)
		return
	}
	if j < i {
		i, j = j, i
	}
	a, b := s.stripes[tbl][i], s.stripes[tbl][j]
	if err := a.LockT(th); err != nil {
		return
	}
	if err := b.LockT(th); err != nil {
		_ = a.UnlockT(th)
		return
	}
	s.cells[tbl][i]--
	s.cells[tbl][j]++
	_ = b.UnlockT(th)
	_ = a.UnlockT(th)
}
