package serverapp

import (
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/workload"
)

func run(t *testing.T, cfg core.Config, p Profile, d time.Duration) Result {
	t.Helper()
	cfg.Tau = 10 * time.Millisecond
	rt := core.MustNew(cfg)
	defer rt.Stop()
	s := New(rt, p)
	return s.Run(d)
}

func smallProfile() Profile {
	return Profile{
		Name: "small", Workers: 8, Tables: 2, Stripes: 4,
		OpsPerRequest: 3, WriteRatio: 0.5, Think: 200 * time.Microsecond,
	}
}

func TestServerServesRequests(t *testing.T) {
	res := run(t, core.Config{}, smallProfile(), 150*time.Millisecond)
	if res.Requests == 0 {
		t.Fatal("no requests served")
	}
	if res.Throughput <= 0 || res.AvgLatency <= 0 {
		t.Errorf("metrics not computed: %+v", res)
	}
	if res.Yields != 0 {
		t.Errorf("deadlock-free server yielded %d times", res.Yields)
	}
}

func TestServerDeadlockFreeUnderAvoidanceWithHistory(t *testing.T) {
	// With a synthesized history present, the server must still complete
	// every request (transactions are lock-ordered, avoidance may only
	// delay them).
	rt := core.MustNew(core.Config{Tau: 10 * time.Millisecond})
	defer rt.Stop()
	s := New(rt, smallProfile())
	s.Run(100 * time.Millisecond) // warmup populates stack interner
	hist, err := workload.SynthesizeHistory(rt.CapturedStacks(), 16, 2, 4, 5)
	if err != nil {
		t.Fatal(err)
	}
	rt.History().Merge(hist)
	res := s.Run(150 * time.Millisecond)
	if res.Requests == 0 {
		t.Fatal("no requests with history present")
	}
}

func TestProfilesAreDistinct(t *testing.T) {
	r, j := RUBiS(), JDBCBench()
	if r.Workers <= j.Workers {
		t.Error("RUBiS models the bigger pool")
	}
	if r.Name == j.Name {
		t.Error("profiles must be named distinctly")
	}
}

func TestTransferConservesTotal(t *testing.T) {
	rt := core.MustNew(core.Config{Tau: 10 * time.Millisecond})
	defer rt.Stop()
	s := New(rt, smallProfile())
	s.Run(150 * time.Millisecond)
	var total int64
	for _, tbl := range s.cells {
		for _, v := range tbl {
			total += v
		}
	}
	if total != 0 {
		t.Errorf("transfers must conserve the total, got %d", total)
	}
}

func TestBaselineOffMode(t *testing.T) {
	res := run(t, core.Config{Mode: core.ModeOff}, smallProfile(), 100*time.Millisecond)
	if res.Requests == 0 {
		t.Fatal("baseline server made no progress")
	}
}
