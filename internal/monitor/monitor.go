// Package monitor implements Dimmunix's monitor thread (§3, §5.2): it
// wakes every τ milliseconds, drains the lock-free event queue, updates
// the resource allocation graph, searches for deadlock and yield cycles,
// archives new signatures to the persistent history, breaks induced
// starvation (weak immunity) or requests a restart (strong immunity), and
// drives the false-positive / calibration machinery.
package monitor

import (
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/calib"
	"dimmunix/internal/event"
	"dimmunix/internal/fpdetect"
	"dimmunix/internal/histstore"
	"dimmunix/internal/obs"
	"dimmunix/internal/queue"
	"dimmunix/internal/rag"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
	"dimmunix/internal/stack"
	"dimmunix/internal/trace"
)

// DefaultTau is the monitor wakeup period; §7 uses 100 ms.
const DefaultTau = 100 * time.Millisecond

// DeadlockInfo describes a detected deadlock, passed to the recovery hook
// right after the signature is saved (§3).
type DeadlockInfo struct {
	Sig       *signature.Signature
	New       bool // true if this signature was first seen now
	ThreadIDs []int32
	LockIDs   []uint64
}

// StarvationInfo describes a detected yield cycle.
type StarvationInfo struct {
	Sig       *signature.Signature
	New       bool
	ThreadIDs []int32
	VictimTID int32 // thread whose yield was broken (weak immunity)
}

// Config parametrizes the monitor.
type Config struct {
	// Tau is the wakeup period (default 100 ms).
	Tau time.Duration
	// Strong selects strong immunity: starvation triggers the restart
	// hook instead of breaking the yield cycle (§5.4).
	Strong bool
	// MatchDepth is the depth stored in newly captured signatures.
	MatchDepth int
	// Calibrate arms the §5.5 depth-calibration ladder on new
	// signatures.
	Calibrate     bool
	CalibMaxDepth int
	CalibNA       int
	CalibNT       uint64
	// EpisodeOpLimit bounds each FP episode's operation log.
	EpisodeOpLimit int
	// EpisodeMaxTicks force-concludes an episode after this many passes.
	EpisodeMaxTicks int
	// SuppressTicks suppresses re-handling of an identical persisting
	// cycle for this many passes.
	SuppressTicks int

	// Store, when non-nil, is the shared immunity store the monitor
	// persists to and syncs with (§8 distribution). Newly archived
	// signatures are pushed through it; with SyncInterval > 0 a sync
	// loop also pulls remote changes (new signatures, removals,
	// disabled-flips) into the live history.
	Store histstore.Store
	// SyncInterval is the pull→merge→push cadence (0 disables the loop;
	// Store pushes then happen synchronously on archive and on SyncNow).
	SyncInterval time.Duration
	// SyncRoundTimeout bounds one sync round's store I/O; a round that
	// cannot finish within it is abandoned and retried with backoff
	// (0 selects DefaultSyncRoundTimeout, negative disables the bound).
	SyncRoundTimeout time.Duration
	// PortRules, when set, are applied to pulled snapshots whose build
	// fingerprint differs from Fingerprint (§8 porting across
	// revisions).
	PortRules []sigport.Rule
	// Fingerprint identifies this build (signature.BuildFingerprint).
	Fingerprint string
	// SyncSlot is the avoidance-guard slot the sync domain uses when it
	// takes the decision scope (distinct from the monitor's slot 0, so
	// the filter guard stays sound when the sync loop and a monitor pass
	// overlap).
	SyncSlot int

	// OnDeadlock is the §3 recovery hook.
	OnDeadlock func(DeadlockInfo)
	// OnStarvation is informational in weak mode; in strong mode it is
	// the restart hook.
	OnStarvation func(StarvationInfo)

	// Trace, when non-nil, receives every drained acquisition event —
	// including fast-tier operations, which bypass avoidance but still
	// enqueue — so offline analysis (dimmunix-predict) sees the complete
	// lock-order behavior. Recording happens here, on the monitor
	// goroutine, precisely so the lock path pays nothing for it.
	Trace *trace.Recorder

	// Bus, when non-nil, receives the monitor's observability events
	// (DeadlockDetected, SignatureArchived, StarvationAverted,
	// SyncRoundDone). The hooks above stay synchronous direct calls —
	// recovery is control flow and must never be dropped by a bounded
	// ring — while the bus carries the same information as telemetry.
	Bus *obs.Bus
}

func (c *Config) fill() {
	if c.Tau <= 0 {
		c.Tau = DefaultTau
	}
	if c.MatchDepth <= 0 {
		c.MatchDepth = signature.DefaultDepth
	}
	if c.EpisodeOpLimit <= 0 {
		c.EpisodeOpLimit = fpdetect.DefaultOpLimit
	}
	if c.EpisodeMaxTicks <= 0 {
		c.EpisodeMaxTicks = 20
	}
	if c.SuppressTicks <= 0 {
		c.SuppressTicks = 50
	}
	if c.SyncRoundTimeout == 0 {
		c.SyncRoundTimeout = DefaultSyncRoundTimeout
	}
	if c.SyncRoundTimeout < 0 {
		c.SyncRoundTimeout = 0 // unbounded
	}
}

// Counters aggregates monitor-side statistics.
type Counters struct {
	Passes              atomic.Uint64
	EventsProcessed     atomic.Uint64
	DeadlocksDetected   atomic.Uint64
	StarvationsDetected atomic.Uint64
	SignaturesSaved     atomic.Uint64
	StarvationsBroken   atomic.Uint64
	EpisodesConcluded   atomic.Uint64
	FalsePositives      atomic.Uint64
	TruePositives       atomic.Uint64
	// Sync loop statistics (history store distribution).
	SyncRounds   atomic.Uint64 // completed rounds (loop, kicks, SyncNow)
	SyncPulls    atomic.Uint64 // rounds that merged remote changes in
	SyncPushes   atomic.Uint64 // rounds that published local changes
	SyncPorted   atomic.Uint64 // pulled snapshots run through sigport
	SyncErrors   atomic.Uint64 // store errors (retried next round)
	SyncBackoffs atomic.Uint64 // loop delays stretched by failure backoff
}

// episode pairs an fpdetect episode with the instance needed to replay the
// match at other depths.
type episode struct {
	ep           *fpdetect.Episode
	yielderStack *stack.Interned
	yielderIdx   int
	bindings     []avoidance.BindingRecord
	startTick    int
}

// Monitor is the asynchronous detector. Create with New, start with
// Start, stop with Stop. Pass may be called directly in tests (never
// concurrently with a running loop).
type Monitor struct {
	cfg     Config
	q       *queue.MPSC[event.Event]
	g       *rag.RAG
	hist    *signature.History
	cache   *avoidance.Cache
	resolve func(int32) *avoidance.ThreadState

	episodes   []*episode
	suppressed map[uint64]int
	tick       int

	Counters Counters

	// sync is the store distribution state (nil without a store); syncMu
	// guards only the syncer's lastSeen/lastPushed bookkeeping — it is
	// never held across store I/O, so an unresponsive store cannot block
	// anything queued on it (rounds overlap safely: they are joins).
	// syncRunning is read from the monitor goroutine and arbitrary
	// KickSync callers while Start/Stop flip it — atomic.
	sync        *syncer
	syncMu      sync.Mutex
	syncRunning atomic.Bool

	mu      sync.Mutex // serializes Pass between loop and Kick/Stop
	stopCh  chan struct{}
	kickCh  chan struct{}
	doneCh  chan struct{}
	started bool
}

// New builds a monitor. resolve maps thread IDs to live cache thread
// states (for starvation breaking) and may return nil for exited threads.
func New(cfg Config, q *queue.MPSC[event.Event], hist *signature.History, cache *avoidance.Cache, resolve func(int32) *avoidance.ThreadState) *Monitor {
	cfg.fill()
	m := &Monitor{
		cfg:        cfg,
		q:          q,
		g:          rag.New(),
		hist:       hist,
		cache:      cache,
		resolve:    resolve,
		suppressed: make(map[uint64]int),
		stopCh:     make(chan struct{}),
		kickCh:     make(chan struct{}, 1),
		doneCh:     make(chan struct{}),
	}
	if cfg.Store != nil {
		m.sync = newSyncer(cfg.Store, cfg.PortRules, cfg.Fingerprint)
	}
	return m
}

// Start launches the monitor goroutine (and the store sync loop when
// configured).
func (m *Monitor) Start() {
	if m.started {
		return
	}
	m.started = true
	if m.sync != nil && m.cfg.SyncInterval > 0 {
		// Before the monitor loop starts: its first pass may archive and
		// consult syncRunning in persistArchive.
		m.syncRunning.Store(true)
		go m.syncLoop(m.cfg.SyncInterval)
	}
	go m.loop()
}

// Stop terminates the loop after a final pass (so late events are still
// processed) and waits for it to exit, then stops the sync loop,
// cancelling any round still blocked in store I/O — Stop never waits out
// a store outage. Publishing what the final pass archived is the owner's
// job (Runtime.Stop calls PublishToStore under its bounded shutdown
// context).
func (m *Monitor) Stop() {
	if !m.started {
		return
	}
	close(m.stopCh)
	<-m.doneCh
	if m.syncRunning.Load() {
		m.sync.cancelRounds()
		close(m.sync.stopCh)
		<-m.sync.doneCh
		m.syncRunning.Store(false)
	}
	m.started = false
}

// Kick requests an immediate pass (tests and interactive tools; the
// production cadence is τ).
func (m *Monitor) Kick() {
	select {
	case m.kickCh <- struct{}{}:
	default:
	}
}

func (m *Monitor) loop() {
	defer close(m.doneCh)
	ticker := time.NewTicker(m.cfg.Tau)
	defer ticker.Stop()
	for {
		select {
		case <-m.stopCh:
			m.Pass()
			return
		case <-m.kickCh:
			m.Pass()
		case <-ticker.C:
			m.Pass()
		}
	}
}

// Pass performs one monitor iteration: drain, update RAG, detect, react.
func (m *Monitor) Pass() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.tick++
	m.Counters.Passes.Add(1)

	// Steal every thread's batched bookkeeping events before draining, so
	// batching never hides an operation from this pass's detection.
	if m.cache != nil {
		m.cache.FlushBuffers()
	}
	extra := 0
	n := m.q.Drain(func(ev event.Event) {
		if ev.Kind == event.Batch {
			// Unpack in order; each record inherits the carrier's thread.
			for _, r := range *ev.Recs {
				m.applyOne(event.Event{Kind: r.Kind, TID: ev.TID, LID: r.LID, Stack: r.Stack})
			}
			extra += len(*ev.Recs) - 1
			event.PutRecs(ev.Recs)
			return
		}
		m.applyOne(ev)
	})
	m.Counters.EventsProcessed.Add(uint64(n + extra))

	m.ageEpisodes()

	cycles := m.g.Detect()
	for _, c := range cycles {
		m.handleCycle(c)
	}
	m.pruneSuppressed()
}

// applyOne feeds one (possibly batch-unpacked) event through the RAG,
// episode tracking, and the trace recorder.
func (m *Monitor) applyOne(ev event.Event) {
	m.g.Apply(ev)
	m.feedEpisodes(ev)
	if ev.Kind == event.Yield {
		m.startEpisode(ev)
	}
	if m.cfg.Trace != nil {
		m.cfg.Trace.Record(ev)
	}
}

// startEpisode begins retrospective FP tracking for one avoidance.
func (m *Monitor) startEpisode(ev event.Event) {
	involved := make([]int32, 0, len(ev.Causes))
	bindings := make([]avoidance.BindingRecord, 0, len(ev.Causes))
	for _, c := range ev.Causes {
		involved = append(involved, c.TID)
		bindings = append(bindings, avoidance.BindingRecord{
			TID: c.TID, LID: c.LID, Stack: c.Stack, SigIdx: c.SigIdx,
		})
	}
	m.episodes = append(m.episodes, &episode{
		ep:           fpdetect.NewEpisode(ev.SigID, ev.Depth, ev.TID, involved, m.cfg.EpisodeOpLimit),
		yielderStack: ev.Stack,
		yielderIdx:   ev.YielderIdx,
		bindings:     bindings,
		startTick:    m.tick,
	})
}

func (m *Monitor) feedEpisodes(ev event.Event) {
	if ev.Kind != event.Acquired && ev.Kind != event.Release {
		return
	}
	op := fpdetect.Op{TID: ev.TID, LID: ev.LID, Acquire: ev.Kind == event.Acquired}
	keep := m.episodes[:0]
	for _, e := range m.episodes {
		if e.ep.Record(op) {
			m.concludeEpisode(e)
			continue
		}
		keep = append(keep, e)
	}
	m.episodes = keep
}

func (m *Monitor) ageEpisodes() {
	keep := m.episodes[:0]
	for _, e := range m.episodes {
		if m.tick-e.startTick >= m.cfg.EpisodeMaxTicks {
			m.concludeEpisode(e)
			continue
		}
		keep = append(keep, e)
	}
	m.episodes = keep
}

func (m *Monitor) concludeEpisode(e *episode) {
	fp := e.ep.Verdict()
	m.Counters.EpisodesConcluded.Add(1)
	if fp {
		m.Counters.FalsePositives.Add(1)
	} else {
		m.Counters.TruePositives.Add(1)
	}
	m.cache.RecordOutcome(e.ep.SigID, e.ep.Depth, fp, e.yielderStack, e.yielderIdx, e.bindings)
}

// cycleKey hashes the cycle's shape for suppression of re-reports.
func cycleKey(c *rag.Cycle) uint64 {
	h := uint64(1469598103934665603)
	mix := func(x uint64) {
		h ^= x
		h *= 1099511628211
	}
	if c.Starvation {
		mix(1)
	}
	for _, t := range c.Threads {
		mix(uint64(uint32(t)))
	}
	for _, l := range c.Locks {
		mix(l)
	}
	return h
}

func (m *Monitor) handleCycle(c *rag.Cycle) {
	key := cycleKey(c)
	if last, ok := m.suppressed[key]; ok && m.tick-last < m.cfg.SuppressTicks {
		return
	}
	m.suppressed[key] = m.tick

	stacks := make([]stack.Stack, 0, len(c.Stacks))
	for _, in := range c.Stacks {
		stacks = append(stacks, in.S)
	}
	kind := signature.Deadlock
	if c.Starvation {
		kind = signature.Starvation
	}
	sig := signature.New(kind, stacks, m.cfg.MatchDepth)
	if m.cfg.Calibrate {
		sig.Calib = calib.NewState(m.cfg.CalibMaxDepth, m.cfg.CalibNA, m.cfg.CalibNT)
	}
	isNew := m.hist.Add(sig)
	if isNew {
		m.Counters.SignaturesSaved.Add(1)
		if m.cfg.Bus.Active() {
			m.cfg.Bus.Publish(obs.SignatureArchived{
				SigID: sig.ID, Kind: sig.Kind.String(), Depth: sig.Depth, Stacks: sig.Size(),
			})
		}
		m.persistArchive()
	} else {
		sig = m.hist.Get(sig.ID)
	}

	if c.Starvation {
		m.Counters.StarvationsDetected.Add(1)
		victim := m.breakStarvation(c)
		if m.cfg.Bus.Active() {
			m.cfg.Bus.Publish(obs.StarvationAverted{
				SigID: sig.ID, New: isNew, ThreadIDs: c.Threads, VictimTID: victim,
			})
		}
		if m.cfg.OnStarvation != nil {
			m.cfg.OnStarvation(StarvationInfo{
				Sig: sig, New: isNew, ThreadIDs: c.Threads, VictimTID: victim,
			})
		}
		return
	}

	m.Counters.DeadlocksDetected.Add(1)
	if m.cfg.Bus.Active() {
		m.cfg.Bus.Publish(obs.DeadlockDetected{
			SigID: sig.ID, New: isNew, ThreadIDs: c.Threads, LockIDs: c.Locks,
		})
	}
	if m.cfg.OnDeadlock != nil {
		m.cfg.OnDeadlock(DeadlockInfo{
			Sig: sig, New: isNew, ThreadIDs: c.Threads, LockIDs: c.Locks,
		})
	}
}

// breakStarvation implements the §3 weak-immunity break: cancel the yield
// of the starved (yielding) thread holding the most locks, freeing it to
// pursue its most recently requested lock. Thread priority (the §8
// extension) takes precedence, so a high-priority thread is freed before
// a lower-priority one holding more locks. In strong mode the restart
// hook is responsible instead, so no break happens here.
func (m *Monitor) breakStarvation(c *rag.Cycle) int32 {
	if m.cfg.Strong {
		return 0
	}
	var victim int32
	bestHolds := -1
	bestPrio := int32(-1 << 30)
	for _, tid := range c.Threads {
		tn := m.g.Thread(tid)
		if tn == nil || !tn.Yielding {
			continue
		}
		prio := int32(0)
		if ts := m.resolve(tid); ts != nil {
			prio = ts.Priority.Load()
		}
		holds := m.g.HoldCountOf(tid)
		if prio > bestPrio || (prio == bestPrio && holds > bestHolds) {
			bestPrio = prio
			bestHolds = holds
			victim = tid
		}
	}
	if victim == 0 {
		return 0
	}
	if ts := m.resolve(victim); ts != nil {
		m.cache.ForceGo(ts)
		m.Counters.StarvationsBroken.Add(1)
	}
	return victim
}

func (m *Monitor) pruneSuppressed() {
	for k, last := range m.suppressed {
		if m.tick-last >= m.cfg.SuppressTicks {
			delete(m.suppressed, k)
		}
	}
}

// RAG exposes the monitor's graph for tests and diagnostics. Do not use
// concurrently with a running loop.
func (m *Monitor) RAG() *rag.RAG { return m.g }

// PendingEpisodes returns the number of unconcluded FP episodes.
func (m *Monitor) PendingEpisodes() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.episodes)
}
