package monitor

import (
	"testing"
	"time"
)

// TestSyncBackoffSchedule verifies the failure-backoff contract: no
// failures keeps the configured interval; each consecutive failure
// doubles the base delay up to the cap (never below the interval); and
// jitter stays within ±25% of the base so a fleet neither stampedes a
// recovering daemon nor drifts past the cap.
func TestSyncBackoffSchedule(t *testing.T) {
	const interval = 100 * time.Millisecond

	if got := SyncBackoff(interval, 0); got != interval {
		t.Fatalf("SyncBackoff(interval, 0) = %v, want %v", got, interval)
	}
	if got := SyncBackoff(interval, -1); got != interval {
		t.Fatalf("SyncBackoff(interval, -1) = %v, want %v", got, interval)
	}

	base := func(fails int) time.Duration {
		b := interval << uint(fails)
		if b > DefaultSyncMaxBackoff {
			b = DefaultSyncMaxBackoff
		}
		return b
	}
	for fails := 1; fails <= 12; fails++ {
		want := base(fails)
		lo := time.Duration(float64(want) * 0.75)
		hi := time.Duration(float64(want) * 1.25)
		if hi > DefaultSyncMaxBackoff {
			hi = DefaultSyncMaxBackoff // the cap is post-jitter: a hard bound
		}
		for i := 0; i < 64; i++ {
			got := SyncBackoff(interval, fails)
			if got < lo || got > hi {
				t.Fatalf("SyncBackoff(%v, %d) = %v, want within [%v, %v]",
					interval, fails, got, lo, hi)
			}
		}
	}

	// Deep failure counts must neither overflow nor exceed the cap.
	for _, fails := range []int{16, 17, 40, 1 << 20} {
		got := SyncBackoff(interval, fails)
		if got <= 0 || got > DefaultSyncMaxBackoff {
			t.Fatalf("SyncBackoff(%v, %d) = %v, outside (0, cap]", interval, fails, got)
		}
	}

	// An interval above the cap is respected: backoff never goes below
	// the configured cadence.
	big := 5 * time.Minute
	for i := 0; i < 16; i++ {
		if got := SyncBackoff(big, 3); got < time.Duration(float64(big)*0.75) {
			t.Fatalf("SyncBackoff(%v, 3) = %v dropped below the interval", big, got)
		}
	}
}
