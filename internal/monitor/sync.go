package monitor

import (
	"errors"
	"time"

	"dimmunix/internal/histstore"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
)

// ErrNoStore reports a sync request on a monitor with no history store.
var ErrNoStore = errors.New("dimmunix: no history store configured")

// syncer is the monitor's cross-process distribution loop (§8): it
// probes the store's version, and on a change pulls the remote snapshot,
// ports it when it came from a different build, and joins it into the
// live history — which republishes the danger index under a fresh epoch,
// so the PR 2 fast path's cached safe-markers self-invalidate and remote
// signatures take effect on the very next lock request. Local changes
// (newly archived signatures, removals, disabled-flips) are pushed back
// the same round: pull → merge → push.
type syncer struct {
	store       histstore.Store
	rules       []sigport.Rule
	fingerprint string

	lastSeen   histstore.Version
	lastPushed uint64 // local history version at the last successful push

	kickCh chan struct{}
	stopCh chan struct{}
	doneCh chan struct{}
}

func newSyncer(store histstore.Store, rules []sigport.Rule, fingerprint string) *syncer {
	return &syncer{
		store:       store,
		rules:       rules,
		fingerprint: fingerprint,
		kickCh:      make(chan struct{}, 1),
		stopCh:      make(chan struct{}),
		doneCh:      make(chan struct{}),
	}
}

// SyncNow performs one pull→merge→push round against the history store.
// Safe to call from any goroutine (the monitor's sync loop serializes
// through the same path via m.syncMu).
func (m *Monitor) SyncNow() error {
	if m.sync == nil {
		return ErrNoStore
	}
	return m.syncOnce()
}

// KickSync requests an asynchronous sync round from the sync loop (e.g.
// right after archiving a new signature, so the fleet learns about it
// without waiting a full interval). No-op when the loop is not running.
func (m *Monitor) KickSync() {
	if m.sync == nil || !m.syncRunning.Load() {
		return
	}
	select {
	case m.sync.kickCh <- struct{}{}:
	default:
	}
}

// syncOnce is one sync round. Errors are counted and returned but never
// fatal: the store may be briefly unreachable (daemon restart, NFS blip)
// and immunity must keep working from the local history.
func (m *Monitor) syncOnce() error {
	s := m.sync
	m.syncMu.Lock()
	defer m.syncMu.Unlock()

	var firstErr error
	fail := func(err error) {
		m.Counters.SyncErrors.Add(1)
		if firstErr == nil {
			firstErr = err
		}
	}

	v, err := s.store.Probe()
	if err != nil {
		fail(err)
	} else if v == "" || v != s.lastSeen {
		remote, rv, err := s.store.Load()
		if err != nil {
			fail(err)
		} else {
			if len(s.rules) > 0 && s.fingerprint != "" &&
				remote.Fingerprint() != "" && remote.Fingerprint() != s.fingerprint {
				// The snapshot comes from another code revision: apply the
				// §8 porting rules before joining, so its call-stack
				// locations line up with this build's.
				remote, _ = sigport.Port(remote, s.rules)
				m.Counters.SyncPorted.Add(1)
			}
			// The join may adopt disabled/revision state onto live
			// signatures the avoidance matchers read — guard scope.
			changed := 0
			m.cache.WithGuard(m.cfg.SyncSlot, func() {
				changed = m.hist.Merge(remote)
			})
			if changed > 0 {
				m.Counters.SyncPulls.Add(1)
			}
			s.lastSeen = rv
		}
	}

	if lv := m.hist.Version(); lv != s.lastPushed {
		if _, err := s.store.Push(m.snapshotForStore()); err != nil {
			fail(err)
		} else {
			// Deliberately NOT adopting the post-push version as lastSeen:
			// a peer's change can land between this round's pull and push,
			// and the push version would cover it — skipping it forever.
			// The next probe re-pulls (a no-op self-merge at worst).
			s.lastPushed = lv
			m.Counters.SyncPushes.Add(1)
		}
	}
	return firstErr
}

// snapshotForStore clones the live history under the avoidance guard
// (which owns the mutable per-signature fields), so the push can
// serialize and ship it without racing lock traffic — and without
// holding the guard across store I/O.
func (m *Monitor) snapshotForStore() *signature.History {
	var snap *signature.History
	m.cache.WithGuard(m.cfg.SyncSlot, func() {
		snap = m.hist.CloneForStore()
	})
	return snap
}

// PublishToStore pushes the current history through the store (the
// Runtime.Stop final publish). Safe whether or not the loops run; a
// no-op when nothing changed since the last push (the sync loop's final
// round usually already published).
func (m *Monitor) PublishToStore() error {
	if m.sync == nil {
		return ErrNoStore
	}
	m.syncMu.Lock()
	defer m.syncMu.Unlock()
	lv := m.hist.Version()
	if lv == m.sync.lastPushed {
		return nil
	}
	if _, err := m.sync.store.Push(m.snapshotForStore()); err != nil {
		m.Counters.SyncErrors.Add(1)
		return err
	}
	m.sync.lastPushed = lv
	m.Counters.SyncPushes.Add(1)
	return nil
}

// syncLoop runs sync rounds on the interval (and on kicks) until
// stopped; the way out runs a push-only round (PublishToStore) — it
// publishes whatever the last monitor pass archived without pulling
// state the stopping runtime would discard, and without paying a probe
// timeout when the store is unreachable at shutdown.
func (m *Monitor) syncLoop(interval time.Duration) {
	defer close(m.sync.doneCh)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-m.sync.stopCh:
			_ = m.PublishToStore()
			return
		case <-m.sync.kickCh:
			_ = m.syncOnce()
		case <-t.C:
			_ = m.syncOnce()
		}
	}
}

// persistArchive publishes the history right after a new signature is
// archived: through the sync loop when it runs (asynchronous, so the
// monitor pass is never blocked on the network), synchronously through
// the store otherwise, falling back to the legacy file save for
// storeless histories.
func (m *Monitor) persistArchive() {
	switch {
	case m.syncRunning.Load():
		m.KickSync()
	case m.sync != nil:
		_ = m.PublishToStore()
	default:
		// Best-effort persistence for store-less histories; the clone
		// keeps the (rare) archive-time file write race-free and off the
		// guard.
		snap := m.snapshotForStore()
		_ = snap.Save() // path may be unset
	}
}
