package monitor

import (
	"context"
	"errors"
	"math/rand"
	"sync/atomic"
	"time"

	"dimmunix/internal/histstore"
	"dimmunix/internal/obs"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
)

// ErrNoStore reports a sync request on a monitor with no history store.
var ErrNoStore = errors.New("dimmunix: no history store configured")

// DefaultSyncRoundTimeout bounds one sync round's store I/O (probe +
// pull + push). A round that cannot finish within it is abandoned and
// retried later with backoff; immunity keeps working from the local
// history either way.
const DefaultSyncRoundTimeout = 10 * time.Second

// DefaultSyncMaxBackoff caps the inter-round delay the failure backoff
// can grow to, so a recovered store is rediscovered within a minute even
// after a long outage.
const DefaultSyncMaxBackoff = time.Minute

// syncer is the monitor's cross-process distribution loop (§8): it
// probes the store's version, and on a change pulls the remote snapshot,
// ports it when it came from a different build, and joins it into the
// live history — which republishes the danger index under a fresh epoch,
// so the PR 2 fast path's cached safe-markers self-invalidate and remote
// signatures take effect on the very next lock request. Local changes
// (newly archived signatures, removals, disabled-flips) are pushed back
// the same round: pull → merge → push.
//
// Outage discipline: store I/O never runs under syncMu (the guard only
// covers the lastSeen/lastPushed bookkeeping), every round carries a
// deadline, and consecutive failed rounds back the loop off
// exponentially — a dead daemon costs a bounded, shrinking amount of
// attention instead of a blocking resource.
type syncer struct {
	store       histstore.Store
	rules       []sigport.Rule
	fingerprint string

	// lastSeen / lastPushed are guarded by Monitor.syncMu; rounds
	// snapshot them, run their I/O lock-free, and write back on success.
	lastSeen   histstore.Version
	lastPushed uint64 // local history version at the last successful push

	// consecFails counts sync rounds that failed since the last success;
	// the loop's backoff schedule derives from it.
	consecFails atomic.Int32

	// roundCtx parents the loop's round contexts; cancelRounds aborts
	// in-flight store I/O at Stop so shutdown never waits out a store
	// timeout it did not start.
	roundCtx     context.Context
	cancelRounds context.CancelFunc

	kickCh chan struct{}
	stopCh chan struct{}
	doneCh chan struct{}
}

func newSyncer(store histstore.Store, rules []sigport.Rule, fingerprint string) *syncer {
	ctx, cancel := context.WithCancel(context.Background())
	return &syncer{
		store:        store,
		rules:        rules,
		fingerprint:  fingerprint,
		roundCtx:     ctx,
		cancelRounds: cancel,
		kickCh:       make(chan struct{}, 1),
		stopCh:       make(chan struct{}),
		doneCh:       make(chan struct{}),
	}
}

// SyncNow performs one pull→merge→push round against the history store
// under the caller's context: cancel it (or let its deadline pass) and
// the round's store I/O aborts with the context's error. Safe to call
// from any goroutine, including concurrently with the sync loop — rounds
// are joins, so overlapping rounds converge instead of conflicting.
func (m *Monitor) SyncNow(ctx context.Context) error {
	if m.sync == nil {
		return ErrNoStore
	}
	return m.syncOnce(ctx)
}

// KickSync requests an asynchronous sync round from the sync loop (e.g.
// right after archiving a new signature, so the fleet learns about it
// without waiting a full interval). No-op when the loop is not running.
func (m *Monitor) KickSync() {
	if m.sync == nil || !m.syncRunning.Load() {
		return
	}
	select {
	case m.sync.kickCh <- struct{}{}:
	default:
	}
}

// SyncBackoff returns the delay before the next sync round after fails
// consecutive failed rounds: the interval doubled per failure, capped at
// DefaultSyncMaxBackoff (but never below the interval itself), with
// ±25% jitter so a fleet whose daemon died does not stampede it in
// lockstep when it returns. fails <= 0 returns the interval unchanged.
func SyncBackoff(interval time.Duration, fails int) time.Duration {
	if fails <= 0 || interval <= 0 {
		return interval
	}
	if fails > 16 {
		fails = 16 // 2^16 ≫ any cap; avoid shift overflow
	}
	backoff := interval << uint(fails)
	ceiling := DefaultSyncMaxBackoff
	if ceiling < interval {
		ceiling = interval
	}
	if backoff <= 0 || backoff > ceiling {
		backoff = ceiling
	}
	jitter := 0.75 + 0.5*rand.Float64()
	delay := time.Duration(float64(backoff) * jitter)
	if delay > ceiling {
		// The cap is a hard promise ("rediscovered within a minute"):
		// jitter spreads delays below it, never past it.
		delay = ceiling
	}
	return delay
}

// syncOnce is one sync round with a per-round deadline. Errors are
// counted and returned but never fatal: the store may be briefly
// unreachable (daemon restart, NFS blip) and immunity must keep working
// from the local history.
//
// The round never holds syncMu across store I/O: it snapshots the
// bookkeeping under the guard, runs probe/pull/push against the store
// lock-free, and re-merges results under the guard only on success —
// so a store outage can never transitively block anything waiting on
// syncMu (most importantly the shutdown path).
func (m *Monitor) syncOnce(ctx context.Context) error {
	s := m.sync
	start := time.Now()
	if t := m.cfg.SyncRoundTimeout; t > 0 {
		// The round deadline is a default, not a cap: a caller that set
		// its own deadline (SyncNow with a deliberate budget) is
		// respected verbatim.
		if _, ok := ctx.Deadline(); !ok {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
	}

	m.syncMu.Lock()
	lastSeen := s.lastSeen
	lastPushed := s.lastPushed
	m.syncMu.Unlock()

	var firstErr error
	fail := func(err error) {
		m.Counters.SyncErrors.Add(1)
		if firstErr == nil {
			firstErr = err
		}
	}
	pulled := 0
	pushed := false

	v, err := s.store.Probe(ctx)
	if err != nil {
		fail(err)
	} else if v == "" || v != lastSeen {
		remote, rv, err := s.store.Load(ctx)
		if err != nil {
			fail(err)
		} else {
			if len(s.rules) > 0 && s.fingerprint != "" &&
				remote.Fingerprint() != "" && remote.Fingerprint() != s.fingerprint {
				// The snapshot comes from another code revision: apply the
				// §8 porting rules before joining, so its call-stack
				// locations line up with this build's.
				remote, _ = sigport.Port(remote, s.rules)
				m.Counters.SyncPorted.Add(1)
			}
			// The join may adopt disabled/revision state onto live
			// signatures the avoidance matchers read — guard scope.
			m.cache.WithGuard(m.cfg.SyncSlot, func() {
				pulled = m.hist.Merge(remote)
			})
			if pulled > 0 {
				m.Counters.SyncPulls.Add(1)
			}
			m.syncMu.Lock()
			s.lastSeen = rv
			m.syncMu.Unlock()
		}
	}

	if lv := m.hist.Version(); lv != lastPushed {
		if _, err := s.store.Push(ctx, m.snapshotForStore()); err != nil {
			fail(err)
		} else {
			// Deliberately NOT adopting the post-push version as lastSeen:
			// a peer's change can land between this round's pull and push,
			// and the push version would cover it — skipping it forever.
			// The next probe re-pulls (a no-op self-merge at worst).
			m.syncMu.Lock()
			if lv > s.lastPushed {
				s.lastPushed = lv
			}
			m.syncMu.Unlock()
			m.Counters.SyncPushes.Add(1)
			pushed = true
		}
	}

	if firstErr == nil {
		// Any successful round — the loop's or a caller's SyncNow —
		// proves the store healthy and snaps the loop back to its
		// configured cadence. Failures are scored by the loop alone
		// (noteRoundError): a SyncNow that died on its caller's tight
		// deadline or cancellation says nothing about store health and
		// must not stretch the backoff.
		s.consecFails.Store(0)
	}
	m.Counters.SyncRounds.Add(1)
	if m.cfg.Bus.Active() {
		ev := obs.SyncRoundDone{
			Pulled:      pulled,
			Pushed:      pushed,
			Duration:    time.Since(start),
			ConsecFails: int(s.consecFails.Load()),
		}
		if firstErr != nil {
			ev.Err = firstErr.Error()
		}
		m.cfg.Bus.Publish(ev)
	}
	return firstErr
}

// noteRoundError scores one loop round's failure for the backoff
// schedule. Cancellation (Stop aborting the round) is not a store
// failure.
func (s *syncer) noteRoundError(err error) {
	if err == nil || errors.Is(err, context.Canceled) {
		return
	}
	s.consecFails.Add(1)
}

// snapshotForStore clones the live history under the avoidance guard
// (which owns the mutable per-signature fields), so the push can
// serialize and ship it without racing lock traffic — and without
// holding the guard across store I/O.
func (m *Monitor) snapshotForStore() *signature.History {
	var snap *signature.History
	m.cache.WithGuard(m.cfg.SyncSlot, func() {
		snap = m.hist.CloneForStore()
	})
	return snap
}

// PublishToStore pushes the current history through the store under the
// caller's context (the Runtime.Stop final publish passes its bounded
// shutdown context, so an unreachable store costs at most the shutdown
// budget). Safe whether or not the loops run; a no-op when nothing
// changed since the last push.
func (m *Monitor) PublishToStore(ctx context.Context) error {
	if m.sync == nil {
		return ErrNoStore
	}
	lv := m.hist.Version()
	m.syncMu.Lock()
	lastPushed := m.sync.lastPushed
	m.syncMu.Unlock()
	if lv == lastPushed {
		return nil
	}
	if _, err := m.sync.store.Push(ctx, m.snapshotForStore()); err != nil {
		m.Counters.SyncErrors.Add(1)
		return err
	}
	m.syncMu.Lock()
	if lv > m.sync.lastPushed {
		m.sync.lastPushed = lv
	}
	m.syncMu.Unlock()
	m.Counters.SyncPushes.Add(1)
	return nil
}

// syncLoop runs sync rounds on the interval (and on kicks) until
// stopped. Consecutive failed rounds stretch the delay by SyncBackoff
// instead of hammering a dead daemon every interval; the first
// successful round snaps back to the configured cadence. The final
// publish is the owner's job (Runtime.Stop), under its bounded shutdown
// context — the loop itself exits immediately on stop.
func (m *Monitor) syncLoop(interval time.Duration) {
	defer close(m.sync.doneCh)
	timer := time.NewTimer(interval)
	defer timer.Stop()
	for {
		select {
		case <-m.sync.stopCh:
			return
		case <-m.sync.kickCh:
			if !timer.Stop() {
				select {
				case <-timer.C:
				default:
				}
			}
		case <-timer.C:
		}
		m.sync.noteRoundError(m.syncOnce(m.sync.roundCtx))
		delay := interval
		if fails := int(m.sync.consecFails.Load()); fails > 0 {
			delay = SyncBackoff(interval, fails)
			m.Counters.SyncBackoffs.Add(1)
		}
		timer.Reset(delay)
	}
}

// persistArchive publishes the history right after a new signature is
// archived: through the sync loop when it runs (asynchronous, so the
// monitor pass is never blocked on the network), synchronously through
// the store otherwise — bounded by the round timeout so a dead store
// cannot stall the monitor pass — falling back to the legacy file save
// for storeless histories.
func (m *Monitor) persistArchive() {
	switch {
	case m.syncRunning.Load():
		m.KickSync()
	case m.sync != nil:
		ctx := context.Background()
		if t := m.cfg.SyncRoundTimeout; t > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, t)
			defer cancel()
		}
		_ = m.PublishToStore(ctx)
	default:
		// Best-effort persistence for store-less histories; the clone
		// keeps the (rare) archive-time file write race-free and off the
		// guard.
		snap := m.snapshotForStore()
		_ = snap.Save() // path may be unset
	}
}
