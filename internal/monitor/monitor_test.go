package monitor

import (
	"testing"
	"time"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/event"
	"dimmunix/internal/queue"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

type fixture struct {
	m        *Monitor
	q        *queue.MPSC[event.Event]
	hist     *signature.History
	cache    *avoidance.Cache
	interner *stack.Interner
	threads  map[int32]*avoidance.ThreadState
}

func newFixture(t *testing.T, cfg Config) *fixture {
	t.Helper()
	f := &fixture{
		q:        queue.New[event.Event](),
		hist:     signature.NewHistory(),
		interner: stack.NewInterner(),
		threads:  make(map[int32]*avoidance.ThreadState),
	}
	f.cache = avoidance.NewCache(avoidance.Config{}, f.interner, f.hist, &avoidance.Stats{}, func(event.Event) {})
	f.m = New(cfg, f.q, f.hist, f.cache, func(id int32) *avoidance.ThreadState {
		return f.threads[id]
	})
	return f
}

func (f *fixture) thread(id int32) *avoidance.ThreadState {
	ts := f.threads[id]
	if ts == nil {
		ts = f.cache.NewThread(id, int(id), "t")
		f.threads[id] = ts
	}
	return ts
}

func (f *fixture) st(seed uint64) *stack.Interned {
	return f.interner.Intern(stack.Synthetic(seed, 4))
}

func (f *fixture) push(evs ...event.Event) {
	for _, ev := range evs {
		f.q.Push(ev)
	}
}

func deadlockEvents(f *fixture) []event.Event {
	return []event.Event{
		{Kind: event.Acquired, TID: 1, LID: 1, Stack: f.st(1)},
		{Kind: event.Acquired, TID: 2, LID: 2, Stack: f.st(2)},
		{Kind: event.Request, TID: 1, LID: 2, Stack: f.st(3)},
		{Kind: event.Go, TID: 1, LID: 2, Stack: f.st(3)},
		{Kind: event.Request, TID: 2, LID: 1, Stack: f.st(4)},
		{Kind: event.Go, TID: 2, LID: 1, Stack: f.st(4)},
	}
}

func TestDeadlockDetectionArchivesSignature(t *testing.T) {
	var got []DeadlockInfo
	f := newFixture(t, Config{
		OnDeadlock: func(info DeadlockInfo) { got = append(got, info) },
	})
	f.thread(1)
	f.thread(2)
	f.push(deadlockEvents(f)...)
	f.m.Pass()

	if len(got) != 1 {
		t.Fatalf("deadlock hooks = %d, want 1", len(got))
	}
	if !got[0].New {
		t.Error("first occurrence must be flagged new")
	}
	if f.hist.Len() != 1 {
		t.Fatalf("history len = %d", f.hist.Len())
	}
	sig := f.hist.Snapshot()[0]
	if sig.Kind != signature.Deadlock || sig.Size() != 2 {
		t.Errorf("sig = %v", sig)
	}
	if f.m.Counters.DeadlocksDetected.Load() != 1 {
		t.Error("counter not bumped")
	}
}

func TestDuplicateCycleSuppressed(t *testing.T) {
	calls := 0
	f := newFixture(t, Config{
		SuppressTicks: 100,
		OnDeadlock:    func(DeadlockInfo) { calls++ },
	})
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	// Re-inject the same cycle (as if the same threads re-blocked).
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	if calls != 1 {
		t.Fatalf("hook calls = %d, want 1 (suppressed)", calls)
	}
}

func TestSuppressionExpires(t *testing.T) {
	calls := 0
	f := newFixture(t, Config{
		SuppressTicks: 2,
		OnDeadlock:    func(DeadlockInfo) { calls++ },
	})
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	f.m.Pass()
	f.m.Pass() // suppression expired
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	if calls != 2 {
		t.Fatalf("hook calls = %d, want 2", calls)
	}
}

func TestCalibrationArmedOnNewSignatures(t *testing.T) {
	f := newFixture(t, Config{Calibrate: true, CalibMaxDepth: 6})
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	sig := f.hist.Snapshot()[0]
	if !sig.Calib.Active() || sig.Calib.MaxDepth != 6 {
		t.Errorf("calibration not armed: %+v", sig.Calib)
	}
}

func starvationEvents(f *fixture) []event.Event {
	// T1 yields (cause: T2 holds L5); T2 allowed on L7 held by T1.
	return []event.Event{
		{Kind: event.Acquired, TID: 1, LID: 7, Stack: f.st(70)},
		{Kind: event.Acquired, TID: 2, LID: 5, Stack: f.st(50)},
		{Kind: event.Request, TID: 2, LID: 7, Stack: f.st(51)},
		{Kind: event.Go, TID: 2, LID: 7, Stack: f.st(51)},
		{Kind: event.Yield, TID: 1, LID: 3, Stack: f.st(71), SigID: "x",
			Causes: []event.Cause{{TID: 2, LID: 5, Stack: f.st(50)}}},
	}
}

func TestStarvationBrokenWeak(t *testing.T) {
	var infos []StarvationInfo
	f := newFixture(t, Config{
		OnStarvation: func(info StarvationInfo) { infos = append(infos, info) },
	})
	t1 := f.thread(1)
	f.thread(2)
	f.push(starvationEvents(f)...)
	f.m.Pass()

	if len(infos) != 1 {
		t.Fatalf("starvation hooks = %d", len(infos))
	}
	if infos[0].VictimTID != 1 {
		t.Errorf("victim = %d, want the yielding thread 1", infos[0].VictimTID)
	}
	if f.m.Counters.StarvationsBroken.Load() != 1 {
		t.Error("break not counted")
	}
	// The victim must have been woken.
	select {
	case <-t1.Wake:
	default:
		t.Error("victim not woken")
	}
	// A starvation signature must be archived.
	found := false
	for _, s := range f.hist.Snapshot() {
		if s.Kind == signature.Starvation {
			found = true
		}
	}
	if !found {
		t.Error("starvation signature missing")
	}
}

func TestStarvationStrongModeDoesNotBreak(t *testing.T) {
	restarts := 0
	f := newFixture(t, Config{
		Strong:       true,
		OnStarvation: func(StarvationInfo) { restarts++ },
	})
	f.thread(1)
	f.thread(2)
	f.push(starvationEvents(f)...)
	f.m.Pass()
	if restarts != 1 {
		t.Fatalf("restart hook calls = %d", restarts)
	}
	if f.m.Counters.StarvationsBroken.Load() != 0 {
		t.Error("strong mode must not break the cycle")
	}
}

// mutualStarvationEvents builds a cycle where BOTH T1 and T4 are yielding
// (T1 on cause T2, T4 on cause T3), T2 waits on a lock held by T4 and T3
// waits on a lock held by T1 — so either yielder is a valid break victim.
func mutualStarvationEvents(f *fixture) []event.Event {
	return []event.Event{
		{Kind: event.Acquired, TID: 1, LID: 11, Stack: f.st(11)}, // T1 holds L11
		{Kind: event.Acquired, TID: 4, LID: 44, Stack: f.st(44)}, // T4 holds L44
		{Kind: event.Acquired, TID: 2, LID: 22, Stack: f.st(22)}, // T2 holds L22 (T1's cause)
		{Kind: event.Acquired, TID: 3, LID: 33, Stack: f.st(33)}, // T3 holds L33 (T4's cause)
		// T2 blocks on T4's lock, T3 blocks on T1's lock.
		{Kind: event.Request, TID: 2, LID: 44, Stack: f.st(24)},
		{Kind: event.Go, TID: 2, LID: 44, Stack: f.st(24)},
		{Kind: event.Request, TID: 3, LID: 11, Stack: f.st(31)},
		{Kind: event.Go, TID: 3, LID: 11, Stack: f.st(31)},
		// T1 and T4 yield on their causes.
		{Kind: event.Yield, TID: 1, LID: 99, Stack: f.st(19), SigID: "s",
			Causes: []event.Cause{{TID: 2, LID: 22, Stack: f.st(22)}}},
		{Kind: event.Yield, TID: 4, LID: 98, Stack: f.st(49), SigID: "s",
			Causes: []event.Cause{{TID: 3, LID: 33, Stack: f.st(33)}}},
	}
}

func TestStarvationVictimPrefersHighPriority(t *testing.T) {
	var infos []StarvationInfo
	f := newFixture(t, Config{
		OnStarvation: func(info StarvationInfo) { infos = append(infos, info) },
	})
	f.thread(1)
	f.thread(2)
	f.thread(3)
	t4 := f.thread(4)
	t4.Priority.Store(5) // §8 extension: high-priority thread freed first
	f.push(mutualStarvationEvents(f)...)
	f.m.Pass()
	if len(infos) != 1 {
		t.Fatalf("starvations = %d", len(infos))
	}
	if infos[0].VictimTID != 4 {
		t.Fatalf("victim = %d, want high-priority thread 4", infos[0].VictimTID)
	}
}

func TestStarvationVictimTieBreaksOnHolds(t *testing.T) {
	var infos []StarvationInfo
	f := newFixture(t, Config{
		OnStarvation: func(info StarvationInfo) { infos = append(infos, info) },
	})
	for i := int32(1); i <= 4; i++ {
		f.thread(i)
	}
	evs := mutualStarvationEvents(f)
	// Give T1 an extra held lock: equal priorities, T1 holds more.
	evs = append([]event.Event{{Kind: event.Acquired, TID: 1, LID: 77, Stack: f.st(77)}}, evs...)
	f.push(evs...)
	f.m.Pass()
	if len(infos) != 1 {
		t.Fatalf("starvations = %d", len(infos))
	}
	if infos[0].VictimTID != 1 {
		t.Fatalf("victim = %d, want most-holding thread 1 (§3)", infos[0].VictimTID)
	}
}

func TestEpisodeLifecycleTruePositive(t *testing.T) {
	f := newFixture(t, Config{EpisodeOpLimit: 8})
	// Seed a signature so RecordOutcome has a target.
	sig := signature.New(signature.Deadlock, []stack.Stack{f.st(1).S, f.st(2).S}, 4)
	f.hist.Add(sig)

	f.push(event.Event{
		Kind: event.Yield, TID: 1, LID: 9, Stack: f.st(1), SigID: sig.ID, Depth: 4,
		Causes: []event.Cause{{TID: 2, LID: 5, Stack: f.st(2), SigIdx: 1}},
	})
	f.m.Pass()
	if f.m.PendingEpisodes() != 1 {
		t.Fatalf("episodes = %d", f.m.PendingEpisodes())
	}
	// Feed an inversion by the watched threads: 1 takes A then B; 2
	// takes B then A.
	f.push(
		event.Event{Kind: event.Acquired, TID: 1, LID: 100},
		event.Event{Kind: event.Acquired, TID: 1, LID: 200},
		event.Event{Kind: event.Release, TID: 1, LID: 200},
		event.Event{Kind: event.Release, TID: 1, LID: 100},
		event.Event{Kind: event.Acquired, TID: 2, LID: 200},
		event.Event{Kind: event.Acquired, TID: 2, LID: 100},
		event.Event{Kind: event.Release, TID: 2, LID: 100},
		event.Event{Kind: event.Release, TID: 2, LID: 200},
	)
	f.m.Pass()
	if f.m.PendingEpisodes() != 0 {
		t.Fatalf("episode not concluded")
	}
	if f.m.Counters.TruePositives.Load() != 1 {
		t.Errorf("TP = %d FP = %d", f.m.Counters.TruePositives.Load(), f.m.Counters.FalsePositives.Load())
	}
	if sig.TPCount != 1 {
		t.Errorf("sig TPCount = %d", sig.TPCount)
	}
}

func TestEpisodeAgesOutAsFalsePositive(t *testing.T) {
	f := newFixture(t, Config{EpisodeMaxTicks: 2})
	sig := signature.New(signature.Deadlock, []stack.Stack{f.st(1).S, f.st(2).S}, 4)
	f.hist.Add(sig)
	f.push(event.Event{
		Kind: event.Yield, TID: 1, LID: 9, Stack: f.st(1), SigID: sig.ID, Depth: 4,
		Causes: []event.Cause{{TID: 2, LID: 5, Stack: f.st(2), SigIdx: 1}},
	})
	f.m.Pass()
	f.m.Pass()
	f.m.Pass()
	if f.m.PendingEpisodes() != 0 {
		t.Fatal("episode should have aged out")
	}
	if f.m.Counters.FalsePositives.Load() != 1 {
		t.Errorf("FP = %d (no inversion observed => false positive)", f.m.Counters.FalsePositives.Load())
	}
	if sig.FPCount != 1 {
		t.Errorf("sig FPCount = %d", sig.FPCount)
	}
}

func TestStartStopLifecycle(t *testing.T) {
	f := newFixture(t, Config{Tau: time.Millisecond})
	f.m.Start()
	f.m.Start() // idempotent
	f.push(deadlockEvents(f)...)
	f.m.Kick()
	deadline := time.Now().Add(5 * time.Second)
	for f.hist.Len() == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	f.m.Stop()
	f.m.Stop() // idempotent
	if f.hist.Len() != 1 {
		t.Fatalf("history len = %d", f.hist.Len())
	}
}

func TestFinalPassOnStop(t *testing.T) {
	f := newFixture(t, Config{Tau: time.Hour}) // loop would never tick
	f.m.Start()
	f.push(deadlockEvents(f)...)
	f.m.Stop() // must drain before exiting
	if f.hist.Len() != 1 {
		t.Fatalf("final pass did not run: history len = %d", f.hist.Len())
	}
}

func TestCountersAccumulate(t *testing.T) {
	f := newFixture(t, Config{})
	f.push(deadlockEvents(f)...)
	f.m.Pass()
	if f.m.Counters.Passes.Load() != 1 {
		t.Error("passes")
	}
	if f.m.Counters.EventsProcessed.Load() != 6 {
		t.Errorf("events = %d", f.m.Counters.EventsProcessed.Load())
	}
	if f.m.Counters.SignaturesSaved.Load() != 1 {
		t.Error("signatures saved")
	}
}
