package collections

import (
	"errors"
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/monitor"
)

func newRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	var rt *core.Runtime
	rt = core.MustNew(core.Config{
		Tau:        2 * time.Millisecond,
		MatchDepth: 2,
		MaxYield:   5 * time.Second,
		OnDeadlock: func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	return rt
}

const hold = 60 * time.Millisecond

// TestTable2AllInvitations is the Table 2 experiment in miniature: each
// invitation deadlocks once, is recovered, and is then avoided.
func TestTable2AllInvitations(t *testing.T) {
	for _, inv := range Invitations() {
		inv := inv
		t.Run(inv.Name, func(t *testing.T) {
			rt := newRuntime(t)
			defer rt.Stop()

			// First exposure: the deadlock manifests and is recovered.
			err1, err2 := inv.Run(rt, hold)
			recovered := 0
			for _, e := range []error{err1, err2} {
				if errors.Is(e, core.ErrDeadlockRecovered) {
					recovered++
				}
			}
			if recovered == 0 {
				t.Fatalf("%s: expected a recovered deadlock, got %v / %v", inv.Name, err1, err2)
			}
			if rt.History().Len() == 0 {
				t.Fatal("no signature archived")
			}

			// Immunized re-runs must complete.
			for i := 0; i < 3; i++ {
				err1, err2 = inv.Run(rt, 20*time.Millisecond)
				if err1 != nil || err2 != nil {
					t.Fatalf("%s: immunized run %d failed: %v / %v", inv.Name, i, err1, err2)
				}
			}
			if rt.Stats().Yields == 0 {
				t.Errorf("%s: no yields recorded during immunized runs", inv.Name)
			}
		})
	}
}

func TestVectorBasics(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	v := NewSyncVector(rt)
	for i := 0; i < 5; i++ {
		if err := v.Add(th, i); err != nil {
			t.Fatal(err)
		}
	}
	n, err := v.Len(th)
	if err != nil || n != 5 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	w := NewSyncVector(rt)
	if err := w.AddAll(th, v); err != nil {
		t.Fatal(err)
	}
	n, _ = w.Len(th)
	if n != 5 {
		t.Errorf("AddAll copied %d", n)
	}
}

func TestTableBasics(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	h1, h2 := NewSyncTable(rt), NewSyncTable(rt)
	_ = h1.Put(th, "a", 1)
	_ = h2.Put(th, "a", 1)
	eq, err := h1.Equals(th, h2)
	if err != nil || !eq {
		t.Fatalf("Equals = %v, %v", eq, err)
	}
	_ = h2.Put(th, "b", 2)
	eq, _ = h1.Equals(th, h2)
	if eq {
		t.Error("tables differ; Equals must be false")
	}
	v, ok, _ := h2.Get(th, "b")
	if !ok || v != 2 {
		t.Error("Get failed")
	}
}

func TestBufferBasics(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	s1, s2 := NewSyncBuffer(rt), NewSyncBuffer(rt)
	_ = s1.WriteString(th, "foo")
	_ = s2.WriteString(th, "bar")
	if err := s1.Append(th, s2); err != nil {
		t.Fatal(err)
	}
	got, _ := s1.String(th)
	if got != "foobar" {
		t.Errorf("String = %q", got)
	}
}

func TestWriterBasics(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	caw := NewCharArrayWriter(rt)
	w := NewPrintWriter(rt, caw)
	if err := w.Write(th, "x"); err != nil {
		t.Fatal(err)
	}
	buf, _ := caw.contents(th)
	if string(buf) != "x" {
		t.Errorf("contents = %q", buf)
	}
	// Writing the writer's own buffer to itself is reentrant, not a
	// deadlock (same thread).
	if err := caw.WriteTo(th, w); err != nil {
		t.Fatal(err)
	}
}

func TestBeanContextBasics(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	bc := NewBeanContext(rt)
	ch, err := bc.AddChild(rt, th)
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.PropertyChange(th, 1); err != nil {
		t.Fatal(err)
	}
	if err := bc.Remove(th, ch); err != nil {
		t.Fatal(err)
	}
	// Detached child: no context monitor involved.
	if err := ch.PropertyChange(th, 2); err != nil {
		t.Fatal(err)
	}
}
