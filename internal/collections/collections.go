// Package collections reimplements the Java JDK's synchronized-collection
// "invitations to deadlock" from Table 2 of the Dimmunix paper, on top of
// dimmunix mutexes: Vector.addAll, Hashtable.equals, StringBuffer.append,
// PrintWriter/CharArrayWriter.writeTo, and BeanContextSupport's
// propertyChange/remove. Each type is internally synchronized exactly like
// its JDK counterpart: a per-object reentrant monitor, with nested locking
// of argument objects — technically permissible use that can deadlock
// inside the "library" with no logic bug in the caller (§7.1.2).
//
// Every type carries a HoldWindow: an artificial delay between taking the
// receiver's monitor and the argument's monitor. It plays the role of the
// paper's timing loops, turning the low-probability interleaving into a
// deterministic exploit.
package collections

import (
	"time"

	"dimmunix/internal/core"
)

// HoldWindow is the exploit knob shared by all types.
type HoldWindow struct {
	D time.Duration
}

func (h HoldWindow) pause() {
	if h.D > 0 {
		time.Sleep(h.D)
	}
}

// SyncVector mirrors java.util.Vector: every method synchronizes on the
// receiver; AddAll additionally synchronizes on the argument.
type SyncVector struct {
	mu    *core.Mutex
	Hold  HoldWindow
	items []int
}

// NewSyncVector creates an empty synchronized vector.
func NewSyncVector(rt *core.Runtime) *SyncVector {
	return &SyncVector{mu: rt.NewMutexKind(core.Recursive)}
}

// Add appends x.
func (v *SyncVector) Add(t *core.Thread, x int) error {
	if err := v.mu.LockT(t); err != nil {
		return err
	}
	defer v.mu.UnlockT(t)
	v.items = append(v.items, x)
	return nil
}

// Len returns the element count.
func (v *SyncVector) Len(t *core.Thread) (int, error) {
	if err := v.mu.LockT(t); err != nil {
		return 0, err
	}
	defer v.mu.UnlockT(t)
	return len(v.items), nil
}

// snapshot returns a copy of other's items under other's monitor.
func (v *SyncVector) snapshot(t *core.Thread) ([]int, error) {
	if err := v.mu.LockT(t); err != nil {
		return nil, err
	}
	defer v.mu.UnlockT(t)
	out := make([]int, len(v.items))
	copy(out, v.items)
	return out, nil
}

// AddAll appends every element of other — the v1.addAll(v2) invitation:
// it locks the receiver, then the argument.
func (v *SyncVector) AddAll(t *core.Thread, other *SyncVector) error {
	if err := v.mu.LockT(t); err != nil {
		return err
	}
	defer v.mu.UnlockT(t)
	v.Hold.pause()
	items, err := other.snapshot(t)
	if err != nil {
		return err
	}
	v.items = append(v.items, items...)
	return nil
}

// SyncTable mirrors java.util.Hashtable.
type SyncTable struct {
	mu   *core.Mutex
	Hold HoldWindow
	m    map[string]int
}

// NewSyncTable creates an empty synchronized table.
func NewSyncTable(rt *core.Runtime) *SyncTable {
	return &SyncTable{mu: rt.NewMutexKind(core.Recursive), m: make(map[string]int)}
}

// Put stores k=val.
func (h *SyncTable) Put(t *core.Thread, k string, val int) error {
	if err := h.mu.LockT(t); err != nil {
		return err
	}
	defer h.mu.UnlockT(t)
	h.m[k] = val
	return nil
}

// Get fetches k.
func (h *SyncTable) Get(t *core.Thread, k string) (int, bool, error) {
	if err := h.mu.LockT(t); err != nil {
		return 0, false, err
	}
	defer h.mu.UnlockT(t)
	v, ok := h.m[k]
	return v, ok, nil
}

// Equals compares contents — the h1.equals(h2) invitation: receiver's
// monitor first, then the argument's (via Get).
func (h *SyncTable) Equals(t *core.Thread, other *SyncTable) (bool, error) {
	if err := h.mu.LockT(t); err != nil {
		return false, err
	}
	defer h.mu.UnlockT(t)
	h.Hold.pause()
	for k, v := range h.m {
		ov, ok, err := other.Get(t, k)
		if err != nil {
			return false, err
		}
		if !ok || ov != v {
			return false, nil
		}
	}
	olen, err := other.size(t)
	if err != nil {
		return false, err
	}
	return olen == len(h.m), nil
}

func (h *SyncTable) size(t *core.Thread) (int, error) {
	if err := h.mu.LockT(t); err != nil {
		return 0, err
	}
	defer h.mu.UnlockT(t)
	return len(h.m), nil
}

// SyncBuffer mirrors java.lang.StringBuffer.
type SyncBuffer struct {
	mu   *core.Mutex
	Hold HoldWindow
	b    []byte
}

// NewSyncBuffer creates an empty synchronized buffer.
func NewSyncBuffer(rt *core.Runtime) *SyncBuffer {
	return &SyncBuffer{mu: rt.NewMutexKind(core.Recursive)}
}

// WriteString appends s.
func (s *SyncBuffer) WriteString(t *core.Thread, str string) error {
	if err := s.mu.LockT(t); err != nil {
		return err
	}
	defer s.mu.UnlockT(t)
	s.b = append(s.b, str...)
	return nil
}

// String returns the contents.
func (s *SyncBuffer) String(t *core.Thread) (string, error) {
	if err := s.mu.LockT(t); err != nil {
		return "", err
	}
	defer s.mu.UnlockT(t)
	return string(s.b), nil
}

// Append appends other's contents — the s1.append(s2) invitation.
func (s *SyncBuffer) Append(t *core.Thread, other *SyncBuffer) error {
	if err := s.mu.LockT(t); err != nil {
		return err
	}
	defer s.mu.UnlockT(t)
	s.Hold.pause()
	str, err := other.String(t)
	if err != nil {
		return err
	}
	s.b = append(s.b, str...)
	return nil
}

// CharArrayWriter mirrors java.io.CharArrayWriter.
type CharArrayWriter struct {
	mu   *core.Mutex
	Hold HoldWindow
	buf  []byte
}

// NewCharArrayWriter creates an empty writer.
func NewCharArrayWriter(rt *core.Runtime) *CharArrayWriter {
	return &CharArrayWriter{mu: rt.NewMutexKind(core.Recursive)}
}

// Write appends p under the writer's monitor.
func (c *CharArrayWriter) Write(t *core.Thread, p []byte) error {
	if err := c.mu.LockT(t); err != nil {
		return err
	}
	defer c.mu.UnlockT(t)
	c.buf = append(c.buf, p...)
	return nil
}

// contents reads the buffer under the monitor.
func (c *CharArrayWriter) contents(t *core.Thread) ([]byte, error) {
	if err := c.mu.LockT(t); err != nil {
		return nil, err
	}
	defer c.mu.UnlockT(t)
	out := make([]byte, len(c.buf))
	copy(out, c.buf)
	return out, nil
}

// WriteTo copies the buffer into w — the invitation: it holds the
// writer's monitor while calling w.Write, which takes w's monitor.
func (c *CharArrayWriter) WriteTo(t *core.Thread, w *PrintWriter) error {
	if err := c.mu.LockT(t); err != nil {
		return err
	}
	defer c.mu.UnlockT(t)
	c.Hold.pause()
	return w.Write(t, string(c.buf))
}

// PrintWriter mirrors java.io.PrintWriter wrapping a CharArrayWriter.
type PrintWriter struct {
	mu   *core.Mutex
	Hold HoldWindow
	out  *CharArrayWriter
}

// NewPrintWriter wraps out.
func NewPrintWriter(rt *core.Runtime, out *CharArrayWriter) *PrintWriter {
	return &PrintWriter{mu: rt.NewMutexKind(core.Recursive), out: out}
}

// Write takes the PrintWriter's monitor, then the underlying writer's —
// the opposite nesting order from CharArrayWriter.WriteTo.
func (w *PrintWriter) Write(t *core.Thread, s string) error {
	//lint:ignore lockorder deliberate inversion: Java 6 bug 6244047 reproduction (writer.mu after w.mu)
	if err := w.mu.LockT(t); err != nil {
		return err
	}
	defer w.mu.UnlockT(t)
	w.Hold.pause()
	return w.out.Write(t, []byte(s))
}

// BeanContext mirrors java.beans.beancontext.BeanContextSupport.
type BeanContext struct {
	mu       *core.Mutex
	Hold     HoldWindow
	children map[*BeanChild]bool
}

// BeanChild is a child bean with its own monitor.
type BeanChild struct {
	mu   *core.Mutex
	Hold HoldWindow
	ctx  *BeanContext
	val  int
}

// NewBeanContext creates an empty context.
func NewBeanContext(rt *core.Runtime) *BeanContext {
	return &BeanContext{
		mu:       rt.NewMutexKind(core.Recursive),
		children: make(map[*BeanChild]bool),
	}
}

// AddChild registers a child bean.
func (bc *BeanContext) AddChild(rt *core.Runtime, t *core.Thread) (*BeanChild, error) {
	ch := &BeanChild{mu: rt.NewMutexKind(core.Recursive), ctx: bc}
	if err := bc.mu.LockT(t); err != nil {
		return nil, err
	}
	defer bc.mu.UnlockT(t)
	bc.children[ch] = true
	return ch, nil
}

// Remove detaches a child — context monitor first, then the child's.
func (bc *BeanContext) Remove(t *core.Thread, ch *BeanChild) error {
	if err := bc.mu.LockT(t); err != nil {
		return err
	}
	defer bc.mu.UnlockT(t)
	bc.Hold.pause()
	if err := ch.mu.LockT(t); err != nil {
		return err
	}
	defer ch.mu.UnlockT(t)
	delete(bc.children, ch)
	ch.ctx = nil
	return nil
}

// PropertyChange fires a change notification — child monitor first, then
// the context's (the reverse order).
func (ch *BeanChild) PropertyChange(t *core.Thread, v int) error {
	if err := ch.mu.LockT(t); err != nil {
		return err
	}
	defer ch.mu.UnlockT(t)
	ch.Hold.pause()
	ctx := ch.ctx // guarded by ch.mu; Remove also writes it under ch.mu
	if ctx == nil {
		ch.val = v
		return nil
	}
	//lint:ignore lockorder deliberate inversion: Java 6 bug 6244047 reproduction (ctx.mu after ch.mu)
	if err := ctx.mu.LockT(t); err != nil {
		return err
	}
	defer ctx.mu.UnlockT(t)
	ch.val = v
	return nil
}
