package lint

import (
	"fmt"
	"go/token"
	"sort"
	"strings"
)

// ChanCycle is the mixed channel/lock deadlock analyzer: a static
// wait-for graph whose nodes are lock identities and pending channel
// (or WaitGroup) operations, with three edge classes:
//
//   - L -> C: a goroutine holding lock L blocks on channel op C (send,
//     recv, or WaitGroup.Wait) — the lock is pinned while waiting;
//   - C -> L: the op that would unblock C (the opposite-direction
//     counterpart, or WaitGroup.Done) lies behind an acquisition of L
//     on some other goroutine's flow — the unblock waits on the lock;
//   - L -> L: the lock graph's own held-while-acquiring edges.
//
// A cycle through at least one channel node is a deadlock the pure lock
// graph cannot see: lock-held-while-sending on one side, recv (or
// Done) gated on the same lock on the other. Channel nodes carry the
// blocked direction, so a pending send only pairs with receivers and
// vice versa; select cases with a default clause never block and are
// excluded. Reports include both goroutine chains.
var ChanCycle = &Analyzer{
	Name: "chancycle",
	Doc:  "report mixed channel/lock wait cycles (lock held across a blocking channel op whose counterpart needs the lock)",
	RunProgram: func(pp *ProgramPass) error {
		res := AnalyzeChanCycle(&Program{Fset: pp.Fset, Packages: pp.Packages}, DefaultLockOrderOptions)
		for _, d := range res.Diags {
			pp.Report(d)
		}
		return nil
	},
}

// ChanCycleResult is the outcome: Diags carry the operator-facing
// two-chain reports; Cycles are the same findings lowered into the
// ConfirmedCycle shape so -emit turns them into format-v2 signatures
// (one stack per lock acquisition participating in the cycle).
type ChanCycleResult struct {
	Cycles         []ConfirmedCycle
	Diags          []Diagnostic
	Candidates     int
	SuppressedSeq  int
	SuppressedRoot int
}

// ccEdge is one wait-for edge with its witness context.
type ccEdge struct {
	from, to string
	// witnesses: for L->C edges the blocked op plus which held entry is
	// the lock; for C->L edges the counterpart op plus which before
	// entry is the lock; for L->L edges the lock-graph occurrence.
	occs []ccOcc
}

type ccOcc struct {
	op      *chanOp  // nil for L->L edges
	lockIdx int      // index into op.held (L->C) or op.before (C->L)
	lockOcc *occurrence
	root    string
}

const (
	ccPendingSend = "send"
	ccPendingRecv = "recv"
	ccPendingWait = "wait"
)

// chanNodeKey encodes the blocked direction so a pending send is only
// unblocked by receivers and vice versa.
func chanNodeKey(pending, chKey string) string {
	return "C:" + pending + ":" + chKey
}

func lockNodeKey(k string) string { return "L:" + k }

// AnalyzeChanCycle builds the combined wait-for graph over the shared
// whole-program instantiation and enumerates mixed cycles.
func AnalyzeChanCycle(prog *Program, opts LockOrderOptions) *ChanCycleResult {
	st := buildLoState(prog, opts)
	return st.chanCycles()
}

func (st *loState) chanCycles() *ChanCycleResult {
	res := &ChanCycleResult{}
	edges := map[[2]string]*ccEdge{}
	descs := map[string]string{}
	addOcc := func(from, to string, o ccOcc) {
		id := [2]string{from, to}
		e := edges[id]
		if e == nil {
			e = &ccEdge{from: from, to: to}
			edges[id] = e
		}
		if len(e.occs) < st.opts.MaxOccs {
			e.occs = append(e.occs, o)
		}
	}

	for i := range st.chanOps {
		op := &st.chanOps[i]
		if op.kind == loWgDone {
			// Done never blocks; it only contributes unblock (C->L) edges.
			continue
		}
		if op.nonBlock {
			continue
		}
		var pending string
		switch op.kind {
		case loSend:
			pending = ccPendingSend
		case loRecv:
			pending = ccPendingRecv
		case loWgWait:
			pending = ccPendingWait
		}
		cnode := chanNodeKey(pending, op.ch.key)
		descs[cnode] = op.ch.desc + " (" + pending + ")"
		for hi, h := range op.held {
			lnode := lockNodeKey(h.key.key)
			descs[lnode] = h.key.desc
			addOcc(lnode, cnode, ccOcc{op: op, lockIdx: hi, root: op.root})
		}
	}
	// Unblock edges: the counterpart op's acquisition log names the
	// locks that gate it.
	for i := range st.chanOps {
		op := &st.chanOps[i]
		var pending string
		switch op.kind {
		case loSend:
			pending = ccPendingRecv // a pending recv is unblocked by this send
		case loRecv:
			pending = ccPendingSend
		case loWgDone:
			pending = ccPendingWait
		default:
			continue
		}
		cnode := chanNodeKey(pending, op.ch.key)
		for bi, b := range op.before {
			lnode := lockNodeKey(b.key.key)
			descs[lnode] = b.key.desc
			addOcc(cnode, lnode, ccOcc{op: op, lockIdx: bi, root: op.root})
		}
	}
	// The lock graph's own edges close mixed cycles through more than
	// one lock.
	for id, e := range st.edges {
		for oi := range e.occs {
			o := &e.occs[oi]
			addOcc(lockNodeKey(id[0]), lockNodeKey(id[1]), ccOcc{lockOcc: o, root: o.root})
		}
		descs[lockNodeKey(id[0])] = e.from.desc
		descs[lockNodeKey(id[1])] = e.to.desc
	}

	// Enumerate elementary cycles (<= MaxCycleLen+1 nodes, so a 2-lock
	// inversion plus a channel hop still fits) containing at least one
	// channel node, smallest-node-first for dedup.
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for id := range edges {
		adj[id[0]] = append(adj[id[0]], id[1])
		nodes[id[0]], nodes[id[1]] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	ordered := make([]string, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)
	maxLen := st.opts.MaxCycleLen + 1

	seen := map[string]bool{}
	emit := func(cycle []string) {
		hasChan := false
		for _, n := range cycle {
			if strings.HasPrefix(n, "C:") {
				hasChan = true
				break
			}
		}
		if !hasChan {
			return // pure lock cycles are lockorder's
		}
		key := normCycleKey(cycle)
		if seen[key] {
			return
		}
		seen[key] = true
		res.Candidates++
		cycleEdges := make([]*ccEdge, len(cycle))
		for i := range cycle {
			cycleEdges[i] = edges[[2]string{cycle[i], cycle[(i+1)%len(cycle)]}]
		}
		st.confirmChanCycle(res, cycle, cycleEdges, descs)
	}
	for _, start := range ordered {
		var dfs func(cur string, path []string)
		dfs = func(cur string, path []string) {
			for _, next := range adj[cur] {
				if next == start && len(path) >= 2 {
					emit(append([]string{}, path...))
					continue
				}
				if next <= start || len(path) >= maxLen {
					continue
				}
				onPath := false
				for _, p := range path {
					if p == next {
						onPath = true
						break
					}
				}
				if !onPath {
					dfs(next, append(path, next))
				}
			}
		}
		dfs(start, []string{start})
	}
	return res
}

// confirmChanCycle searches the occurrence combinations for one that
// survives the guards: the two sides of every channel node must come
// from distinct roots (a goroutine cannot be its own counterpart), and
// not every participating context may sit on the provably-sequential
// main flow.
func (st *loState) confirmChanCycle(res *ChanCycleResult, cycle []string, cycleEdges []*ccEdge, descs map[string]string) {
	for _, e := range cycleEdges {
		if e == nil || len(e.occs) == 0 {
			return
		}
	}
	sawRoot, sawSeq := false, false
	pick := make([]int, len(cycleEdges))
	var try func(i int) bool
	try = func(i int) bool {
		if i == len(cycleEdges) {
			combo := make([]ccOcc, len(cycleEdges))
			for j, e := range cycleEdges {
				combo[j] = e.occs[pick[j]]
			}
			// Distinct-root requirement around every channel node: the
			// edge into C (the blocked op) and the edge out of C (the
			// counterpart) must belong to different flows — and not be the
			// same function reached from two entry roots (one sequential
			// flow cannot be its own counterpart).
			for j, n := range cycle {
				if !strings.HasPrefix(n, "C:") {
					continue
				}
				in := combo[(j-1+len(combo))%len(combo)]
				out := combo[j]
				if in.root == out.root {
					sawRoot = true
					return false
				}
				if in.op != nil && out.op != nil && in.op.site[0].fn == out.op.site[0].fn {
					sawRoot = true
					return false
				}
			}
			allSeq := true
			for _, o := range combo {
				k, isFn := strings.CutPrefix(o.root, "fn:")
				if !isFn || !st.seqOnly[k] {
					allSeq = false
					break
				}
			}
			if allSeq {
				sawSeq = true
				return false
			}
			st.buildChanCycle(res, cycle, combo, descs)
			return true
		}
		for p := range cycleEdges[i].occs {
			pick[i] = p
			if try(i + 1) {
				return true
			}
		}
		return false
	}
	if !try(0) {
		if sawSeq && !sawRoot {
			res.SuppressedSeq++
		} else {
			res.SuppressedRoot++
		}
	}
}

func (st *loState) buildChanCycle(res *ChanCycleResult, cycle []string, combo []ccOcc, descs map[string]string) {
	// Lowered ConfirmedCycle: one edge per lock-bearing occurrence, its
	// HoldStack the acquisition chain of the lock (the held entry for a
	// blocked op, the before entry for a counterpart, the hold site for
	// a lock-graph edge) — each a real acquisition stack the runtime
	// can match.
	lowered := ConfirmedCycle{witnessRoots: map[string]bool{}}
	var b strings.Builder
	names := make([]string, len(cycle))
	for i, n := range cycle {
		if d := descs[n]; d != "" {
			names[i] = d
		} else {
			names[i] = n
		}
	}
	fmt.Fprintf(&b, "channel/lock wait cycle: %s -> %s", strings.Join(names, " -> "), names[0])
	var anchor token.Pos
	var related []RelatedInfo
	for i, o := range combo {
		from, to := names[i], names[(i+1)%len(cycle)]
		lowered.witnessRoots[o.root] = true
		switch {
		case o.lockOcc != nil: // L -> L
			lowered.Locks = append(lowered.Locks, from)
			lowered.Edges = append(lowered.Edges, CycleEdge{
				From:      from,
				To:        to,
				HoldStack: o.lockOcc.holdSite.frames(st.fset),
				AcqStack:  o.lockOcc.acqSite.frames(st.fset),
				holdPos:   o.lockOcc.holdSite[0].pos,
				acqPos:    o.lockOcc.acqSite[0].pos,
			})
			fmt.Fprintf(&b, "; acquires %s at %s while holding %s",
				to, frameSiteString(o.lockOcc.acqSite.frames(st.fset)), from)
			if anchor == token.NoPos {
				anchor = o.lockOcc.acqSite[0].pos
			}
		case strings.HasPrefix(cycle[i], "L:"): // L -> C: blocked op holding the lock
			h := o.op.held[o.lockIdx]
			lowered.Locks = append(lowered.Locks, from)
			lowered.Edges = append(lowered.Edges, CycleEdge{
				From:      from,
				To:        to,
				HoldStack: h.site.frames(st.fset),
				AcqStack:  o.op.site.frames(st.fset),
				holdPos:   h.site[0].pos,
				acqPos:    o.op.site[0].pos,
			})
			fmt.Fprintf(&b, "; %s blocks at %s while holding %s (%s)",
				describeRoot(o.root), frameSiteString(o.op.site.frames(st.fset)), from, to)
			if anchor == token.NoPos {
				anchor = o.op.site[0].pos
			}
			related = append(related, RelatedInfo{
				Pos:     h.site[0].pos,
				Message: fmt.Sprintf("%s acquired here, pinned across the blocking %s", from, to),
			})
		default: // C -> L: counterpart gated behind the lock
			bl := o.op.before[o.lockIdx]
			lowered.Locks = append(lowered.Locks, to)
			lowered.Edges = append(lowered.Edges, CycleEdge{
				From:      from,
				To:        to,
				HoldStack: bl.site.frames(st.fset),
				AcqStack:  o.op.site.frames(st.fset),
				holdPos:   bl.site[0].pos,
				acqPos:    o.op.site[0].pos,
			})
			fmt.Fprintf(&b, "; its counterpart (%s at %s) first acquires %s",
				describeRoot(o.root), frameSiteString(o.op.site.frames(st.fset)), to)
			related = append(related, RelatedInfo{
				Pos:     bl.site[0].pos,
				Message: fmt.Sprintf("%s acquired on the counterpart's path here, gating %s", to, from),
			})
		}
	}
	if anchor == token.NoPos && len(combo) > 0 && combo[0].op != nil {
		anchor = combo[0].op.site[0].pos
	}
	res.Diags = append(res.Diags, Diagnostic{Pos: anchor, Message: b.String(), Related: related})
	if len(lowered.Edges) >= 2 {
		res.Cycles = append(res.Cycles, lowered)
	}
}
