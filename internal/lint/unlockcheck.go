package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// UnlockCheck reports unbalanced lock usage inside one function:
//
//   - a return path that still holds a lock other paths release
//     (the classic early-return-under-error leak),
//   - a second Unlock of a lock this path already released,
//   - a lock call whose error (or TryLock's bool) result is discarded
//     as a bare statement.
//
// The walk is branch-cloning but intraprocedural: helpers that
// deliberately return holding a lock (and never unlock it themselves)
// are not flagged — the leak signal is the *inconsistency* between
// paths within one function.
var UnlockCheck = &Analyzer{
	Name: "unlockcheck",
	Doc:  "report return paths holding locks other paths release, double unlocks, and ignored lock-call results",
	Run:  runUnlockCheck,
}

type ulState struct {
	held     map[string]int
	released map[string]bool // definitely released earlier on this path
	deferred map[string]int  // unlocks registered via defer
	failed   map[string]bool // this path saw the acquire FAIL (err != nil / try false)
}

func newUlState() *ulState {
	return &ulState{
		held: map[string]int{}, released: map[string]bool{},
		deferred: map[string]int{}, failed: map[string]bool{},
	}
}

func (s *ulState) clone() *ulState {
	c := newUlState()
	for k, v := range s.held {
		c.held[k] = v
	}
	for k, v := range s.released {
		c.released[k] = v
	}
	for k, v := range s.deferred {
		c.deferred[k] = v
	}
	for k, v := range s.failed {
		c.failed[k] = v
	}
	return c
}

// merge folds a branch outcome back into the fall-through state:
// held/deferred to the minimum (may not have executed), released to the
// conjunction (only definite facts survive).
func (s *ulState) merge(o *ulState) {
	for k, v := range s.held {
		if ov := o.held[k]; ov < v {
			s.held[k] = ov
		}
	}
	for k := range o.held {
		if _, ok := s.held[k]; !ok {
			s.held[k] = 0
		}
	}
	for k := range s.released {
		if !o.released[k] {
			delete(s.released, k)
		}
	}
	for k, v := range s.deferred {
		if ov := o.deferred[k]; ov < v {
			s.deferred[k] = ov
		}
	}
	for k := range o.failed {
		s.failed[k] = true
	}
}

type ulFunc struct {
	pass *Pass
	res  *lockResolver
	// lockPos is the first acquisition site per key; unlocks counts
	// releases anywhere in the function (the inconsistency signal).
	lockPos map[string]token.Pos
	unlocks map[string]int
	returns []ulReturn
	descs   map[string]string
	// errFrom maps an error/bool variable to the lock whose guarded
	// acquire produced it: `if err := mu.LockT(t); err != nil { return }`
	// does NOT hold mu on the return path.
	errFrom map[types.Object]string
	// fnLits maps a local variable to the func literal assigned to it,
	// so `release := func() { mu.Unlock() }; defer release()` counts as
	// a releasing path like a direct deferred closure.
	fnLits map[types.Object]*ast.FuncLit
}

type ulReturn struct {
	pos      token.Pos
	held     map[string]token.Pos // key -> acquisition site
	failed   map[string]bool      // keys whose acquire failed on this path
	released map[string]bool      // keys definitely released on this path
}

// waitFailKey marks a path where a Cond wait returned an error: the
// wait's mutex state is contract-dependent (recovery unwinds without
// the lock), so such returns are neither leaks nor leak evidence.
const waitFailKey = "*"

// relPrefix tags errFrom entries that observe a release's outcome
// rather than an acquire's.
const relPrefix = "rel|"

func runUnlockCheck(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				if x.Body != nil {
					checkUnlockFunc(pass, x.Body)
				}
				return false
			}
			return true
		})
	}
	return nil
}

// checkUnlockFunc analyzes one function body; nested literals are
// analyzed independently (their lock discipline is their own).
func checkUnlockFunc(pass *Pass, body *ast.BlockStmt) {
	uf := &ulFunc{
		pass:    pass,
		res:     newLockResolver(pass.Pkg, false),
		lockPos: map[string]token.Pos{},
		unlocks: map[string]int{},
		descs:   map[string]string{},
		errFrom: map[types.Object]string{},
		fnLits:  map[types.Object]*ast.FuncLit{},
	}
	st := newUlState()
	uf.stmt(body, st)
	if !terminates(body) {
		// Implicit return at the closing brace.
		uf.ret(body.Rbrace, st)
	}
	// A held return is a leak only against evidence of a path that does
	// release: some other return that definitely released the lock and
	// is not an acquire-failure branch. A function whose every
	// successful return holds the lock (Cond.Wait's re-acquire
	// contract, lock helpers) is consistent, not leaky; a return that
	// never touched the lock proves nothing.
	for _, r := range uf.returns {
		if r.failed[waitFailKey] {
			continue
		}
		for key, acq := range r.held {
			if uf.unlocks[key] == 0 {
				continue
			}
			releasing := false
			for _, o := range uf.returns {
				_, holds := o.held[key]
				if !holds && o.released[key] && !o.failed[key] && !o.failed[waitFailKey] {
					releasing = true
					break
				}
			}
			if releasing {
				uf.pass.Reportf(r.pos, "returns while still holding %s (acquired at line %d; other paths unlock it)",
					uf.descs[key], uf.pass.Pkg.Fset.Position(acq).Line)
			}
		}
	}
}

// lockID is the instance-sensitive identity used for balance tracking:
// unlike lockorder's graph nodes, x.mu and y.mu are different things.
func (uf *ulFunc) lockID(recv ast.Expr) (string, bool) {
	ref, ok := uf.res.resolve(recv)
	if !ok {
		// Fall back to the receiver's textual form: balance checking only
		// needs consistency within the function.
		s := exprString(recv)
		if s == "?" {
			return "", false
		}
		return "expr:" + s, true
	}
	if ref.key != nil {
		id := ref.key.key
		if ref.key.inst != "" {
			id += "|" + ref.key.inst
		}
		if idx, isIdx := ast.Unparen(recv).(*ast.IndexExpr); isIdx {
			// Distinct indices are distinct locks for balance tracking:
			// shard[a].Unlock / shard[b].Unlock is not a double unlock.
			id += "|" + exprString(idx.Index)
		}
		uf.descs[id] = ref.key.desc
		return id, true
	}
	if ref.obj != nil {
		id := "sym:" + ref.obj.Name()
		uf.descs[id] = ref.obj.Name()
		return id, true
	}
	// Channel-payload reference: balance-track by receiver text.
	if s := exprString(recv); s != "?" {
		return "expr:" + s, true
	}
	return "", false
}

func (uf *ulFunc) stmt(s ast.Stmt, st *ulState) {
	switch x := s.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range x.List {
			uf.stmt(s, st)
		}
	case *ast.ExprStmt:
		uf.expr(x.X, st, true)
	case *ast.AssignStmt:
		for _, r := range x.Rhs {
			uf.expr(r, st, false)
		}
		for i, lhs := range x.Lhs {
			if id, ok := lhs.(*ast.Ident); ok && len(x.Lhs) == len(x.Rhs) {
				obj := uf.pass.Pkg.Info.Defs[id]
				if obj == nil {
					obj = uf.pass.Pkg.Info.Uses[id]
				}
				if obj != nil {
					delete(uf.errFrom, obj)
					if lit, ok := ast.Unparen(x.Rhs[i]).(*ast.FuncLit); ok {
						uf.fnLits[obj] = lit
					} else {
						delete(uf.fnLits, obj)
						uf.res.note(obj, x.Rhs[i])
					}
				}
			}
		}
		uf.noteGuardedAcquire(x)
	case *ast.DeferStmt:
		uf.deferCall(x.Call, st)
	case *ast.GoStmt:
		// The spawned body runs elsewhere; only argument evaluation
		// happens here.
		for _, a := range x.Call.Args {
			uf.expr(a, st, false)
		}
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			uf.expr(r, st, false)
		}
		uf.ret(x.Pos(), st)
	case *ast.IfStmt:
		uf.stmt(x.Init, st)
		uf.expr(x.Cond, st, false)
		body := st.clone()
		els := st.clone()
		// A condition that observes an acquire's (or release's) outcome
		// splits the states: the failure branch does not hold (resp.
		// did not release) the lock.
		if key, failInBody, ok := uf.condFailure(x.Cond); ok {
			fail := els
			if failInBody {
				fail = body
			}
			if rel, isRel := strings.CutPrefix(key, relPrefix); isRel {
				delete(fail.released, rel)
			} else {
				if fail.held[key] > 0 {
					fail.held[key]--
				}
				fail.failed[key] = true
			}
		}
		uf.stmt(x.Body, body)
		uf.stmt(x.Else, els)
		if terminates(x.Body) {
			// Fall-through continues only via else.
			*st = *els
			return
		}
		if x.Else != nil && terminates(x.Else) {
			*st = *body
			return
		}
		body.merge(els)
		*st = *body
	case *ast.ForStmt:
		uf.stmt(x.Init, st)
		uf.expr(x.Cond, st, false)
		b := st.clone()
		uf.stmt(x.Body, b)
		uf.stmt(x.Post, b)
		st.merge(b)
	case *ast.RangeStmt:
		uf.expr(x.X, st, false)
		b := st.clone()
		uf.stmt(x.Body, b)
		st.merge(b)
	case *ast.SwitchStmt, *ast.TypeSwitchStmt, *ast.SelectStmt:
		uf.branches(s, st)
	case *ast.LabeledStmt:
		uf.stmt(x.Stmt, st)
	case *ast.SendStmt:
		uf.expr(x.Chan, st, false)
		uf.expr(x.Value, st, false)
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						uf.expr(v, st, false)
					}
					if len(vs.Names) == len(vs.Values) {
						for i, name := range vs.Names {
							if obj := uf.pass.Pkg.Info.Defs[name]; obj != nil {
								if lit, ok := ast.Unparen(vs.Values[i]).(*ast.FuncLit); ok {
									uf.fnLits[obj] = lit
								} else {
									uf.res.note(obj, vs.Values[i])
								}
							}
						}
					}
				}
			}
		}
	}
}

func (uf *ulFunc) branches(s ast.Stmt, st *ulState) {
	var bodies [][]ast.Stmt
	var init ast.Stmt
	hasDefault := false
	switch x := s.(type) {
	case *ast.SwitchStmt:
		init = x.Init
		uf.expr(x.Tag, st, false)
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.TypeSwitchStmt:
		init = x.Init
		for _, c := range x.Body.List {
			cc := c.(*ast.CaseClause)
			bodies = append(bodies, cc.Body)
			hasDefault = hasDefault || cc.List == nil
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			cc := c.(*ast.CommClause)
			bodies = append(bodies, append([]ast.Stmt{cc.Comm}, cc.Body...))
			hasDefault = hasDefault || cc.Comm == nil
		}
		hasDefault = true // select blocks; some case always runs
	}
	uf.stmt(init, st)
	var merged *ulState
	for _, b := range bodies {
		cs := st.clone()
		for _, s := range b {
			uf.stmt(s, cs)
		}
		if merged == nil {
			merged = cs
		} else {
			merged.merge(cs)
		}
	}
	if merged != nil {
		if !hasDefault {
			merged.merge(st)
		}
		*st = *merged
	}
}

// terminates reports whether a block definitely transfers control away
// (return or panic as its last statement) — used to keep the early
// return pattern `if err != nil { return }` from polluting the merge.
func terminates(s ast.Stmt) bool {
	switch x := s.(type) {
	case *ast.BlockStmt:
		if len(x.List) == 0 {
			return false
		}
		return terminates(x.List[len(x.List)-1])
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ForStmt:
		// `for { ... }` with no way to break never falls through; its
		// returns are the only exits.
		return x.Cond == nil && !hasLoopBreak(x.Body)
	case *ast.ExprStmt:
		if call, ok := x.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}

// hasLoopBreak reports whether body can break out of the loop enclosing
// it: an unlabeled break at loop level, or (conservatively) any labeled
// break or goto anywhere inside.
func hasLoopBreak(body ast.Stmt) bool {
	found := false
	var walk func(s ast.Stmt, inner bool)
	walk = func(s ast.Stmt, inner bool) {
		if found || s == nil {
			return
		}
		switch x := s.(type) {
		case *ast.BranchStmt:
			switch x.Tok {
			case token.BREAK:
				if !inner || x.Label != nil {
					found = true
				}
			case token.GOTO:
				found = true
			}
		case *ast.BlockStmt:
			for _, s := range x.List {
				walk(s, inner)
			}
		case *ast.IfStmt:
			walk(x.Init, inner)
			walk(x.Body, inner)
			walk(x.Else, inner)
		case *ast.LabeledStmt:
			walk(x.Stmt, inner)
		case *ast.ForStmt:
			walk(x.Body, true)
		case *ast.RangeStmt:
			walk(x.Body, true)
		case *ast.SwitchStmt:
			walk(x.Body, true)
		case *ast.TypeSwitchStmt:
			walk(x.Body, true)
		case *ast.SelectStmt:
			walk(x.Body, true)
		case *ast.CaseClause:
			for _, s := range x.Body {
				walk(s, inner)
			}
		case *ast.CommClause:
			for _, s := range x.Body {
				walk(s, inner)
			}
		}
	}
	walk(body, false)
	return found
}

func (uf *ulFunc) ret(pos token.Pos, st *ulState) {
	held := map[string]token.Pos{}
	for key, n := range st.held {
		if n-st.deferred[key] > 0 {
			held[key] = uf.lockPos[key]
		}
	}
	failed := map[string]bool{}
	for k := range st.failed {
		failed[k] = true
	}
	released := map[string]bool{}
	for k, v := range st.released {
		if v {
			released[k] = true
		}
	}
	uf.returns = append(uf.returns, ulReturn{pos: pos, held: held, failed: failed, released: released})
}

// noteGuardedAcquire records `err := mu.LockT(t)` / `ok := mu.TryLock()`
// bindings so a subsequent condition on the variable splits the states.
func (uf *ulFunc) noteGuardedAcquire(x *ast.AssignStmt) {
	if len(x.Lhs) == 0 || len(x.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(x.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	method, recv, ok := classifyLockCall(uf.pass.Pkg, call)
	if !ok {
		return
	}
	var key string
	switch {
	case acquireBlocking[method], acquireTry[method]:
		if key, ok = uf.lockID(recv); !ok {
			return
		}
	case releaseMethods[method]:
		// `err := mu.UnlockT(t)`: a failed release did not release.
		if key, ok = uf.lockID(recv); !ok {
			return
		}
		key = relPrefix + key
	case condWaitMethods[method]:
		// A failed wait leaves its mutex in a contract-dependent state.
		key = waitFailKey
	default:
		return
	}
	// The outcome (error or bool) is the last result.
	id, ok := x.Lhs[len(x.Lhs)-1].(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	obj := uf.pass.Pkg.Info.Defs[id]
	if obj == nil {
		obj = uf.pass.Pkg.Info.Uses[id]
	}
	if obj != nil {
		uf.errFrom[obj] = key
	}
}

// condFailure recognizes conditions that observe an acquire outcome,
// returning the lock key and which branch is the failure branch (true =
// the if-body). Shapes: `err != nil`, `err == nil`, `ok`, `!ok`,
// `mu.TryLock()`, `!mu.TryLock()`.
func (uf *ulFunc) condFailure(cond ast.Expr) (key string, failInBody, ok bool) {
	cond = ast.Unparen(cond)
	switch x := cond.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			if key, failInBody, ok = uf.condFailure(x.X); ok {
				return key, !failInBody, true
			}
		}
	case *ast.BinaryExpr:
		if x.Op != token.NEQ && x.Op != token.EQL {
			return "", false, false
		}
		v, nilSide := x.X, x.Y
		if isNilIdent(v) {
			v, nilSide = x.Y, x.X
		}
		if !isNilIdent(nilSide) {
			return "", false, false
		}
		if k, found := uf.errObj(v); found {
			// err != nil: body is the failure branch.
			return k, x.Op == token.NEQ, true
		}
	case *ast.Ident:
		if k, found := uf.errObj(x); found {
			// A bare bool from a try-acquire: true means acquired.
			return k, false, true
		}
	case *ast.CallExpr:
		if method, recv, isLock := classifyLockCall(uf.pass.Pkg, x); isLock && acquireTry[method] {
			if k, resolved := uf.lockID(recv); resolved {
				return k, false, true
			}
		}
	}
	return "", false, false
}

func (uf *ulFunc) errObj(e ast.Expr) (string, bool) {
	id, ok := ast.Unparen(e).(*ast.Ident)
	if !ok {
		return "", false
	}
	obj := uf.pass.Pkg.Info.Uses[id]
	if obj == nil {
		obj = uf.pass.Pkg.Info.Defs[id]
	}
	if obj == nil {
		return "", false
	}
	k, found := uf.errFrom[obj]
	return k, found
}

func isNilIdent(e ast.Expr) bool {
	id, ok := ast.Unparen(e).(*ast.Ident)
	return ok && id.Name == "nil"
}

// expr scans an expression for lock calls. Statement-level calls
// (bare=true) with discarded error/bool results are flagged.
func (uf *ulFunc) expr(e ast.Expr, st *ulState, bare bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			checkUnlockFunc(uf.pass, x.Body)
			return false
		case *ast.CallExpr:
			uf.lockCall(x, st, bare && n == e)
			// Children (nested calls in args) still need scanning.
			for _, a := range x.Args {
				uf.expr(a, st, false)
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				uf.expr(sel.X, st, false)
			}
			return false
		}
		return true
	})
}

func (uf *ulFunc) lockCall(call *ast.CallExpr, st *ulState, bare bool) {
	method, recv, ok := classifyLockCall(uf.pass.Pkg, call)
	if !ok {
		return
	}
	if bare {
		if sig, ok := uf.pass.Pkg.Info.Types[call.Fun].Type.(*types.Signature); ok && sig.Results().Len() > 0 {
			kind := "error"
			if acquireTry[method] {
				kind = "result"
			}
			pass := uf.pass
			pass.Reportf(call.Pos(), "%s of %s.%s ignored: the lock state is unknown on failure",
				kind, exprString(recv), method)
		}
	}
	key, ok := uf.lockID(recv)
	if !ok {
		return
	}
	switch {
	case acquireBlocking[method], acquireTry[method]:
		if _, seen := uf.lockPos[key]; !seen {
			uf.lockPos[key] = call.Pos()
		}
		st.held[key]++
		delete(st.released, key)
	case releaseMethods[method]:
		uf.unlocks[key]++
		if st.held[key] > 0 {
			st.held[key]--
		} else if st.released[key] {
			uf.pass.Reportf(call.Pos(), "%s released twice on this path (double unlock)", uf.descs[key])
		}
		st.released[key] = true
	}
}

// deferCall handles `defer mu.Unlock()`, `defer func(){ mu.Unlock() }()`,
// and `defer release()` where release is a local closure helper.
func (uf *ulFunc) deferCall(call *ast.CallExpr, st *ulState) {
	for _, a := range call.Args {
		uf.expr(a, st, false)
	}
	if method, recv, ok := classifyLockCall(uf.pass.Pkg, call); ok {
		if releaseMethods[method] {
			if key, ok := uf.lockID(recv); ok {
				uf.unlocks[key]++
				st.deferred[key]++
			}
		}
		return
	}
	var body *ast.BlockStmt
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	case *ast.Ident:
		// A deferred local release helper: resolve the variable back to
		// the literal assigned to it.
		obj := uf.pass.Pkg.Info.Uses[fun]
		if obj == nil {
			obj = uf.pass.Pkg.Info.Defs[fun]
		}
		if lit, ok := uf.fnLits[obj]; ok {
			body = lit.Body
		}
	}
	if body == nil {
		return
	}
	// Releases inside the deferred closure count as deferred; the
	// closure body is otherwise its own function.
	ast.Inspect(body, func(n ast.Node) bool {
		if inner, ok := n.(*ast.CallExpr); ok {
			if method, recv, ok := classifyLockCall(uf.pass.Pkg, inner); ok && releaseMethods[method] {
				if key, ok := uf.lockID(recv); ok {
					uf.unlocks[key]++
					st.deferred[key]++
				}
			}
		}
		return true
	})
}
