package lint

import (
	"go/ast"
	"go/types"
)

// CopyLock reports values of dimmunix (and core/sync) lock types copied
// by value: assignments, function parameters/results/receivers, call
// arguments, range variables, and returns. A copied Mutex is a second,
// unsynchronized lock that shares nothing with the original but its
// zero-value confusion — for dimmunix types it also splits the runtime
// binding, so the copy silently escapes deadlock immunity.
var CopyLock = &Analyzer{
	Name: "dimmunixcopylock",
	Doc:  "report dimmunix lock values copied by value (params, assigns, ranges, returns)",
	Run:  runCopyLock,
}

func runCopyLock(pass *Pass) error {
	pkg := pass.Pkg
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, x.Recv, x.Type)
			case *ast.FuncLit:
				checkFuncSig(pass, nil, x.Type)
			case *ast.AssignStmt:
				if len(x.Lhs) != len(x.Rhs) {
					return true
				}
				for i, rhs := range x.Rhs {
					if name := copiedLock(pkg, rhs); name != "" {
						pass.Reportf(x.Rhs[i].Pos(), "assignment copies a %s value", name)
					}
				}
			case *ast.RangeStmt:
				if x.Value != nil {
					if t := exprType(pkg, x.Value); t != nil {
						if name, embedded := containsLock(t); name != "" {
							pass.Reportf(x.Value.Pos(), "range value copies a %s%s per iteration", name, embedded)
						}
					}
				}
			case *ast.ReturnStmt:
				for _, r := range x.Results {
					if name := copiedLock(pkg, r); name != "" {
						pass.Reportf(r.Pos(), "return copies a %s value", name)
					}
				}
			case *ast.CallExpr:
				for _, arg := range x.Args {
					if name := copiedLock(pkg, arg); name != "" {
						pass.Reportf(arg.Pos(), "call passes a %s by value", name)
					}
				}
			}
			return true
		})
	}
	return nil
}

// checkFuncSig flags by-value lock receivers, parameters, and results.
func checkFuncSig(pass *Pass, recv *ast.FieldList, ftype *ast.FuncType) {
	report := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Pkg.Info.Types[field.Type]
			if !ok {
				continue
			}
			if name, embedded := containsLock(tv.Type); name != "" {
				pass.Reportf(field.Type.Pos(), "%s copies a %s%s; use a pointer", what, name, embedded)
			}
		}
	}
	report(recv, "receiver")
	if ftype.Params != nil {
		report(ftype.Params, "parameter")
	}
	if ftype.Results != nil {
		report(ftype.Results, "result")
	}
}

// exprType resolves an expression's type, falling back to Defs/Uses for
// identifiers `:=`-defined by the enclosing statement (range variables
// are recorded there, not in Types).
func exprType(pkg *Package, e ast.Expr) types.Type {
	if tv, ok := pkg.Info.Types[e]; ok && tv.Type != nil {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := pkg.Info.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := pkg.Info.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// copiedLock reports the lock type name if evaluating e yields a lock
// value copied out of existing storage. Freshly constructed values
// (composite literals, calls) are initializations, not copies.
func copiedLock(pkg *Package, e ast.Expr) string {
	e = ast.Unparen(e)
	switch e.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit:
		return ""
	case *ast.UnaryExpr:
		return "" // &x — address taken, no copy
	}
	tv, ok := pkg.Info.Types[e]
	if !ok || tv.Type == nil {
		return ""
	}
	if _, isPtr := tv.Type.Underlying().(*types.Pointer); isPtr {
		return ""
	}
	name, embedded := containsLock(tv.Type)
	if name == "" {
		return ""
	}
	return name + embedded
}

// containsLock reports whether t is, or (transitively) embeds by value,
// a tracked lock type. The second return annotates indirect containment.
func containsLock(t types.Type) (string, string) {
	return lockIn(t, map[types.Type]bool{}, true)
}

func lockIn(t types.Type, seen map[types.Type]bool, direct bool) (string, string) {
	if t == nil || seen[t] {
		return "", ""
	}
	seen[t] = true
	t = types.Unalias(t)
	if named, ok := t.(*types.Named); ok {
		if name, isLock := lockTypeName(named); isLock {
			return name, ""
		}
		return lockIn(named.Underlying(), seen, direct)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if name, _ := lockIn(u.Field(i).Type(), seen, false); name != "" {
				if direct {
					return name, " (inside the struct)"
				}
				return name, ""
			}
		}
	case *types.Array:
		return lockIn(u.Elem(), seen, false)
	}
	return "", ""
}
