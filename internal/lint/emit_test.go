package lint

import (
	"context"
	"path/filepath"
	"testing"

	"dimmunix/internal/histstore"
	"dimmunix/internal/signature"
)

// TestEmitRoundTrip proves the whole static-inoculation pipeline below
// the process boundary: confirmed cycles lower into format-v2
// signatures, survive a histstore push/load cycle byte-for-byte, and
// merging them into a runtime's history bumps the danger-index epoch so
// the avoidance cache re-arms.
func TestEmitRoundTrip(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_basic"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res := AnalyzeLockOrder(prog, LockOrderOptions{})
	if len(res.Cycles) == 0 {
		t.Fatalf("no cycles confirmed in lockorder_basic (candidates=%d seq=%d guard=%d)",
			res.Candidates, res.SuppressedSeq, res.SuppressedGuard)
	}

	emitted := EmitHistory(res, EmitOptions{Calibrate: true})
	if emitted.Len() == 0 {
		t.Fatalf("no signatures emitted from %d cycles", len(res.Cycles))
	}
	for _, sig := range emitted.Snapshot() {
		if sig.Source != signature.SourceStatic {
			t.Errorf("emitted signature %s has Source=%q, want %q", sig.ID, sig.Source, signature.SourceStatic)
		}
		if !sig.Calib.On {
			t.Errorf("emitted signature %s has calibration off; -emit arms the ladder", sig.ID)
		}
		if len(sig.Stacks) < 2 {
			t.Errorf("emitted signature %s has %d stacks, want one per cycle edge (>=2)", sig.ID, len(sig.Stacks))
		}
		for _, st := range sig.Stacks {
			if len(st) == 0 {
				t.Errorf("emitted signature %s carries an empty stack", sig.ID)
			}
		}
	}

	// Push/load through the same store the fleet uses.
	store := histstore.NewFileStore(filepath.Join(t.TempDir(), "hist.json"))
	if _, err := store.Push(context.Background(), emitted); err != nil {
		t.Fatalf("push: %v", err)
	}
	loaded, _, err := store.Load(context.Background())
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	if loaded.Len() != emitted.Len() {
		t.Fatalf("store round-trip lost entries: pushed %d, loaded %d", emitted.Len(), loaded.Len())
	}

	// Merge into a live runtime's (non-empty) history: the static entry
	// must land, keep its provenance and ladder, and bump the epoch.
	live := signature.NewHistory()
	liveSig := signature.New(signature.Deadlock, emitted.Snapshot()[0].Stacks, 1)
	liveSig.ID = "feedfeedfeedfeed" // distinct entry standing in for a live capture
	live.Add(liveSig)
	v0, e0 := live.Version(), live.Danger().Epoch()
	if n := live.Merge(loaded); n == 0 {
		t.Fatalf("merge applied no changes")
	}
	if live.Version() <= v0 {
		t.Errorf("merge did not bump version: %d -> %d", v0, live.Version())
	}
	if live.Danger().Epoch() <= e0 {
		t.Errorf("merge did not bump danger epoch: %d -> %d", e0, live.Danger().Epoch())
	}
	var statics int
	for _, sig := range live.Snapshot() {
		if sig.Source == signature.SourceStatic {
			statics++
			if !sig.Calib.On {
				t.Errorf("merged static signature %s lost its calibration ladder", sig.ID)
			}
		}
	}
	if statics != emitted.Len() {
		t.Errorf("merged history carries %d static entries, want %d", statics, emitted.Len())
	}
}
