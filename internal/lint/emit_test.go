package lint

import (
	"context"
	"path/filepath"
	"testing"

	"dimmunix/internal/histstore"
	"dimmunix/internal/signature"
)

// TestEmitRoundTrip proves the whole static-inoculation pipeline below
// the process boundary: confirmed cycles lower into format-v2
// signatures, survive a histstore push/load cycle byte-for-byte, and
// merging them into a runtime's history bumps the danger-index epoch so
// the avoidance cache re-arms.
func TestEmitRoundTrip(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_basic"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res := AnalyzeLockOrder(prog, LockOrderOptions{})
	if len(res.Cycles) == 0 {
		t.Fatalf("no cycles confirmed in lockorder_basic (candidates=%d seq=%d guard=%d)",
			res.Candidates, res.SuppressedSeq, res.SuppressedGuard)
	}

	emitted := EmitHistory(res, EmitOptions{Calibrate: true})
	if emitted.Len() == 0 {
		t.Fatalf("no signatures emitted from %d cycles", len(res.Cycles))
	}
	for _, sig := range emitted.Snapshot() {
		if sig.Source != signature.SourceStatic {
			t.Errorf("emitted signature %s has Source=%q, want %q", sig.ID, sig.Source, signature.SourceStatic)
		}
		if !sig.Calib.On {
			t.Errorf("emitted signature %s has calibration off; -emit arms the ladder", sig.ID)
		}
		if len(sig.Stacks) < 2 {
			t.Errorf("emitted signature %s has %d stacks, want one per cycle edge (>=2)", sig.ID, len(sig.Stacks))
		}
		for _, st := range sig.Stacks {
			if len(st) == 0 {
				t.Errorf("emitted signature %s carries an empty stack", sig.ID)
			}
		}
	}

	// Push/load through the same store the fleet uses.
	store := histstore.NewFileStore(filepath.Join(t.TempDir(), "hist.json"))
	if _, err := store.Push(context.Background(), emitted); err != nil {
		t.Fatalf("push: %v", err)
	}
	loaded, _, err := store.Load(context.Background())
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	if loaded.Len() != emitted.Len() {
		t.Fatalf("store round-trip lost entries: pushed %d, loaded %d", emitted.Len(), loaded.Len())
	}

	// Merge into a live runtime's (non-empty) history: the static entry
	// must land, keep its provenance and ladder, and bump the epoch.
	live := signature.NewHistory()
	liveSig := signature.New(signature.Deadlock, emitted.Snapshot()[0].Stacks, 1)
	liveSig.ID = "feedfeedfeedfeed" // distinct entry standing in for a live capture
	live.Add(liveSig)
	v0, e0 := live.Version(), live.Danger().Epoch()
	if n := live.Merge(loaded); n == 0 {
		t.Fatalf("merge applied no changes")
	}
	if live.Version() <= v0 {
		t.Errorf("merge did not bump version: %d -> %d", v0, live.Version())
	}
	if live.Danger().Epoch() <= e0 {
		t.Errorf("merge did not bump danger epoch: %d -> %d", e0, live.Danger().Epoch())
	}
	var statics int
	for _, sig := range live.Snapshot() {
		if sig.Source == signature.SourceStatic {
			statics++
			if !sig.Calib.On {
				t.Errorf("merged static signature %s lost its calibration ladder", sig.ID)
			}
		}
	}
	if statics != emitted.Len() {
		t.Errorf("merged history carries %d static entries, want %d", statics, emitted.Len())
	}
}

// TestEmitThreeEdgeCycle lowers the 3-lock chain fixture together with
// the mixed channel/lock fixture through the shared cycle-list path:
// a >=3-edge cycle must become one signature with three distinct
// stacks, and the combined batch must survive a store round-trip with
// provenance and calibration intact.
func TestEmitThreeEdgeCycle(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_chain3"))
	if err != nil {
		t.Fatalf("load fixture: %v", err)
	}
	res := AnalyzeLockOrder(prog, LockOrderOptions{})
	var chain *ConfirmedCycle
	for i := range res.Cycles {
		if len(res.Cycles[i].Edges) >= 3 {
			chain = &res.Cycles[i]
		}
	}
	if chain == nil {
		t.Fatalf("no >=3-edge cycle confirmed in lockorder_chain3: %+v", res.Cycles)
	}

	chprog, err := Load(Options{Dir: "."}, FixturePath("chancycle"))
	if err != nil {
		t.Fatalf("load chancycle fixture: %v", err)
	}
	chres := AnalyzeChanCycle(chprog, LockOrderOptions{})
	if len(chres.Cycles) == 0 {
		t.Fatalf("no mixed cycles lowered from the chancycle fixture")
	}

	cycles := append(append([]ConfirmedCycle{}, res.Cycles...), chres.Cycles...)
	emitted := EmitHistoryCycles(cycles, EmitOptions{Calibrate: true})
	if emitted.Len() < 2 {
		t.Fatalf("want signatures from both analyzers, got %d", emitted.Len())
	}

	var sawChain bool
	for _, sig := range emitted.Snapshot() {
		if len(sig.Stacks) >= 3 {
			sawChain = true
			distinct := map[string]bool{}
			for _, st := range sig.Stacks {
				if len(st) == 0 {
					t.Fatalf("signature %s carries an empty stack", sig.ID)
				}
				distinct[st.String()] = true
			}
			if len(distinct) != len(sig.Stacks) {
				t.Errorf("3-edge signature %s has duplicate stacks: %v", sig.ID, sig.Stacks)
			}
		}
	}
	if !sawChain {
		t.Fatalf("no emitted signature carries >=3 stacks for the 3-edge cycle")
	}

	store := histstore.NewFileStore(filepath.Join(t.TempDir(), "hist.json"))
	if _, err := store.Push(context.Background(), emitted); err != nil {
		t.Fatalf("push: %v", err)
	}
	loaded, _, err := store.Load(context.Background())
	if err != nil {
		t.Fatalf("load store: %v", err)
	}
	if loaded.Len() != emitted.Len() {
		t.Fatalf("store round-trip lost entries: pushed %d, loaded %d", emitted.Len(), loaded.Len())
	}
	for _, sig := range loaded.Snapshot() {
		if sig.Source != signature.SourceStatic {
			t.Errorf("round-tripped signature %s lost provenance: Source=%q", sig.ID, sig.Source)
		}
		if !sig.Calib.On {
			t.Errorf("round-tripped signature %s lost its calibration ladder", sig.ID)
		}
	}
}
