package lint

import (
	"dimmunix/internal/calib"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// EmitOptions shape the lowering of confirmed cycles into signatures.
type EmitOptions struct {
	// Depth is the signature's fixed matching depth; frames beyond it are
	// still emitted (up to the available chain) so calibration can
	// tighten. <= 0 selects signature.DefaultDepth, clamped to the
	// shortest emitted stack.
	Depth int
	// Calibrate arms the §5.5 depth ladder on each emitted entry
	// (default-on via cmd/dimmunix-vet): the frames are static pseudo
	// frames, so the runtime should start matching at depth 1 and tighten
	// against real stacks from the first encounter.
	Calibrate bool
}

// EmitSignatures lowers each confirmed cycle into a format-v2 signature:
// one stack per cycle edge — the chain at which the holder acquired the
// lock it carries into the cycle, exactly the stacks predict and the
// live monitor archive — with runtime-style pseudo-frames (Func as the
// runtime names it, base filename, source line) so live captures
// compare equal at the matched depth. Entries are stamped
// Source="static".
func EmitSignatures(res *LockOrderResult, opts EmitOptions) []*signature.Signature {
	return EmitCycles(res.Cycles, opts)
}

// EmitCycles is the cycle-list form of EmitSignatures: lockorder and
// chancycle findings lower through the same path (chancycle cycles
// arrive pre-shaped, one edge per participating lock acquisition).
func EmitCycles(cycles []ConfirmedCycle, opts EmitOptions) []*signature.Signature {
	var out []*signature.Signature
	seen := map[string]bool{}
	for _, c := range cycles {
		stacks := make([]stack.Stack, 0, len(c.Edges))
		minLen := stack.MaxCaptureDepth
		for _, e := range c.Edges {
			s := make(stack.Stack, 0, len(e.HoldStack))
			for _, f := range e.HoldStack {
				s = append(s, stack.Frame{Func: f.Func, File: f.File, Line: f.Line})
			}
			if len(s) == 0 {
				continue
			}
			if len(s) < minLen {
				minLen = len(s)
			}
			stacks = append(stacks, s)
		}
		if len(stacks) != len(c.Edges) {
			continue
		}
		depth := opts.Depth
		if depth <= 0 {
			depth = signature.DefaultDepth
		}
		if depth > minLen {
			// A depth the stacks cannot serve would force full-equality
			// matching against longer live captures and never match.
			depth = minLen
		}
		sig := signature.New(signature.Deadlock, stacks, depth)
		sig.Source = signature.SourceStatic
		if opts.Calibrate {
			// The ladder may not out-climb the emitted frames for the same
			// reason the fixed depth is clamped.
			sig.Calib = calib.NewState(depth, 0, 0)
		}
		if !seen[sig.ID] {
			seen[sig.ID] = true
			out = append(out, sig)
		}
	}
	return out
}

// EmitHistory wraps the emitted signatures in a mergeable history, the
// same shape dimmunix-predict pushes.
func EmitHistory(res *LockOrderResult, opts EmitOptions) *signature.History {
	return EmitHistoryCycles(res.Cycles, opts)
}

// EmitHistoryCycles wraps an explicit cycle list (e.g. lockorder plus
// chancycle, concatenated) in a mergeable history.
func EmitHistoryCycles(cycles []ConfirmedCycle, opts EmitOptions) *signature.History {
	h := signature.NewHistory()
	for _, sig := range EmitCycles(cycles, opts) {
		h.Add(sig)
	}
	return h
}
