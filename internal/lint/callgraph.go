package lint

import (
	"go/types"
	"sort"
)

// chaMaxTargets caps the fan-out of one interface call site. Interfaces
// with more implementors than this (huge mock universes) would blow the
// bounded closure's budget for little precision gain; the cap keeps the
// analysis deterministic by taking the lexicographically first keys.
const chaMaxTargets = 16

// chaIndex is a class-hierarchy call-graph index over the loaded source
// packages: for an interface method it answers "which concrete methods
// can this dispatch to", considering every named non-interface type
// declared in the program (value and pointer method sets).
type chaIndex struct {
	concrete []types.Type
	memo     map[*types.Func][]string
}

func newCHAIndex(prog *Program) *chaIndex {
	idx := &chaIndex{memo: map[*types.Func][]string{}}
	seen := map[string]bool{}
	for _, pkg := range prog.Packages {
		if pkg.Types == nil {
			continue
		}
		scope := pkg.Types.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			named, ok := tn.Type().(*types.Named)
			if !ok {
				continue
			}
			if _, isIface := named.Underlying().(*types.Interface); isIface {
				continue
			}
			key := pkg.PkgPath + "." + name
			if !seen[key] {
				seen[key] = true
				idx.concrete = append(idx.concrete, named)
			}
		}
	}
	sort.Slice(idx.concrete, func(i, j int) bool {
		return idx.concrete[i].String() < idx.concrete[j].String()
	})
	return idx
}

// targets resolves an interface method to the summary keys of every
// concrete method that can satisfy the dispatch, sorted, capped at
// chaMaxTargets.
func (idx *chaIndex) targets(m *types.Func) []string {
	if r, ok := idx.memo[m]; ok {
		return r
	}
	var out []string
	sig, _ := m.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		idx.memo[m] = nil
		return nil
	}
	iface, ok := types.Unalias(sig.Recv().Type()).Underlying().(*types.Interface)
	if !ok {
		idx.memo[m] = nil
		return nil
	}
	seen := map[string]bool{}
	for _, t := range idx.concrete {
		var impl types.Type
		switch {
		case types.Implements(t, iface):
			impl = t
		case types.Implements(types.NewPointer(t), iface):
			impl = types.NewPointer(t)
		default:
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if key := funcKeyOf(fn); key != "" && !seen[key] {
			seen[key] = true
			out = append(out, key)
		}
	}
	sort.Strings(out)
	if len(out) > chaMaxTargets {
		out = out[:chaMaxTargets]
	}
	idx.memo[m] = out
	return out
}
