package lint

import (
	"go/ast"
	"strings"
)

// CondLoop reports Cond.Wait calls that are not inside a loop. Wait
// releases the lock and can wake spuriously (or late: another waiter
// may have consumed the condition), so the condition must be rechecked
// — `for !cond { c.Wait() }` — or the caller proceeds on a state that
// no longer holds.
var CondLoop = &Analyzer{
	Name: "condloop",
	Doc:  "report Cond.Wait calls outside a condition loop",
	Run:  runCondLoop,
}

var condWaitMethods = map[string]bool{
	"Wait": true, "WaitT": true, "WaitCtx": true, "WaitCtxT": true,
}

// isWaitWrapper reports whether fd is itself a Wait-family method on a
// Cond type — a delegation layer (dimmunix.Cond.Wait forwarding to
// core.Cond.WaitT). The recheck loop is its caller's contract, not its
// own.
func isWaitWrapper(pass *Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || len(fd.Recv.List) != 1 {
		return false
	}
	if !strings.HasPrefix(fd.Name.Name, "Wait") {
		return false
	}
	tv, ok := pass.Pkg.Info.Types[fd.Recv.List[0].Type]
	return ok && isCondType(tv.Type)
}

func runCondLoop(pass *Pass) error {
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if isWaitWrapper(pass, fd) {
				continue
			}
			condWalk(pass, fd.Body, false)
		}
	}
	return nil
}

// condWalk tracks loop nesting; function-literal boundaries reset it (a
// closure's body does not inherit the enclosing loop — if the closure
// runs elsewhere, the loop does not re-run Wait).
func condWalk(pass *Pass, n ast.Node, inLoop bool) {
	ast.Inspect(n, func(node ast.Node) bool {
		switch x := node.(type) {
		case nil:
			return false
		case *ast.ForStmt:
			if x.Init != nil {
				condWalk(pass, x.Init, inLoop)
			}
			condWalk(pass, x.Body, true)
			return false
		case *ast.RangeStmt:
			condWalk(pass, x.Body, true)
			return false
		case *ast.FuncLit:
			condWalk(pass, x.Body, false)
			return false
		case *ast.CallExpr:
			if method, recv, ok := classifyLockCall(pass.Pkg, x); ok &&
				condWaitMethods[method] {
				if tv, found := pass.Pkg.Info.Types[recv]; found && isCondType(tv.Type) && !inLoop {
					pass.Reportf(x.Pos(), "%s.%s outside a loop: the condition must be rechecked after waking",
						exprString(recv), method)
				}
			}
		}
		return true
	})
}
