// Package lint is a self-contained static-analysis framework for the
// dimmunix tree, shaped after golang.org/x/tools/go/analysis but built
// entirely on the standard library (go/ast + go/types + `go list
// -export`) so the module keeps its zero-dependency invariant.
//
// Analyzers come in two flavors: per-package (Run, called once per
// loaded package) and whole-program (RunProgram, called once with every
// loaded package — the lockorder analyzer needs cross-package call
// chains). Diagnostics carry positions and optional related positions
// (the "other" call chain of a lock cycle).
//
// Findings can be suppressed at the source line with
//
//	//lint:ignore lockorder reason...
//
// on the line above (or trailing the end of) the flagged line, or for a
// whole file with
//
//	//lint:file-ignore lockorder reason...
//
// mirroring staticcheck's directive syntax. The analyzer list may be a
// comma-separated set or * for all.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
)

// An Analyzer describes one static check.
type Analyzer struct {
	// Name is the directive / command-line identifier (e.g. "lockorder").
	Name string
	// Doc is the one-line description shown by dimmunix-vet -help.
	Doc string

	// Run implements a per-package analyzer; called once per package.
	Run func(*Pass) error
	// RunProgram implements a whole-program analyzer; called once with
	// all loaded packages. Exactly one of Run/RunProgram must be set.
	RunProgram func(*ProgramPass) error
}

// A Pass carries one package through a per-package analyzer.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	report   func(Diagnostic)
}

// A ProgramPass carries the whole loaded program through a
// whole-program analyzer.
type ProgramPass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Packages []*Package
	report   func(Diagnostic)
}

// RelatedInfo is a secondary position attached to a diagnostic (e.g.
// the opposing call chain of a reported cycle).
type RelatedInfo struct {
	Pos     token.Pos
	Message string
}

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
	Related  []RelatedInfo
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Report records a fully-formed finding.
func (p *Pass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Report records a fully-formed finding.
func (p *ProgramPass) Report(d Diagnostic) {
	d.Analyzer = p.Analyzer.Name
	p.report(d)
}

// Reportf records a finding at pos.
func (p *ProgramPass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Analyzer: p.Analyzer.Name, Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// ignoreIndex holds the lint:ignore / lint:file-ignore directives of
// one loaded program, keyed by filename.
type ignoreIndex struct {
	// fileIgnores maps filename -> analyzer set (or "*").
	fileIgnores map[string]map[string]bool
	// lineIgnores maps filename -> line -> analyzer set. A directive on
	// line N suppresses findings on line N and N+1 (own-line form).
	lineIgnores map[string]map[int]map[string]bool
}

func buildIgnoreIndex(fset *token.FileSet, pkgs []*Package) *ignoreIndex {
	idx := &ignoreIndex{
		fileIgnores: map[string]map[string]bool{},
		lineIgnores: map[string]map[int]map[string]bool{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := strings.TrimPrefix(c.Text, "//")
					text = strings.TrimSpace(text)
					var fileWide bool
					switch {
					case strings.HasPrefix(text, "lint:file-ignore"):
						text, fileWide = strings.TrimPrefix(text, "lint:file-ignore"), true
					case strings.HasPrefix(text, "lint:ignore"):
						text = strings.TrimPrefix(text, "lint:ignore")
					default:
						continue
					}
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					names := map[string]bool{}
					for _, n := range strings.Split(fields[0], ",") {
						names[n] = true
					}
					pos := fset.Position(c.Pos())
					if fileWide {
						merge(idx.fileIgnores, pos.Filename, names)
						continue
					}
					lines := idx.lineIgnores[pos.Filename]
					if lines == nil {
						lines = map[int]map[string]bool{}
						idx.lineIgnores[pos.Filename] = lines
					}
					merge(lines, pos.Line, names)
					merge(lines, pos.Line+1, names)
				}
			}
		}
	}
	return idx
}

func merge[K comparable](m map[K]map[string]bool, k K, names map[string]bool) {
	if m[k] == nil {
		m[k] = map[string]bool{}
	}
	for n := range names {
		m[k][n] = true
	}
}

func (idx *ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	pos := fset.Position(d.Pos)
	if s := idx.fileIgnores[pos.Filename]; s != nil && (s["*"] || s[d.Analyzer]) {
		return true
	}
	if lines := idx.lineIgnores[pos.Filename]; lines != nil {
		if s := lines[pos.Line]; s != nil && (s["*"] || s[d.Analyzer]) {
			return true
		}
	}
	return false
}

// RunAnalyzers drives every analyzer over the loaded program and
// returns the surviving (non-suppressed) diagnostics sorted by
// position. Analyzer errors (not findings) are returned as errs.
func RunAnalyzers(prog *Program, analyzers []*Analyzer) (diags []Diagnostic, errs []error) {
	idx := buildIgnoreIndex(prog.Fset, prog.Packages)
	report := func(d Diagnostic) {
		if !d.Pos.IsValid() || idx.suppressed(prog.Fset, d) {
			return
		}
		diags = append(diags, d)
	}
	for _, a := range analyzers {
		switch {
		case a.RunProgram != nil:
			pp := &ProgramPass{Analyzer: a, Fset: prog.Fset, Packages: prog.Packages, report: report}
			if err := a.RunProgram(pp); err != nil {
				errs = append(errs, fmt.Errorf("%s: %w", a.Name, err))
			}
		case a.Run != nil:
			for _, pkg := range prog.Packages {
				pass := &Pass{Analyzer: a, Pkg: pkg, report: report}
				if err := a.Run(pass); err != nil {
					errs = append(errs, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err))
				}
			}
		}
	}
	sort.SliceStable(diags, func(i, j int) bool {
		pi, pj := prog.Fset.Position(diags[i].Pos), prog.Fset.Position(diags[j].Pos)
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return diags[i].Message < diags[j].Message
	})
	return diags, errs
}

// Format renders a diagnostic in the familiar file:line:col: analyzer:
// message form, with related positions indented beneath.
func Format(fset *token.FileSet, d Diagnostic) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: %s: %s", fset.Position(d.Pos), d.Analyzer, d.Message)
	for _, r := range d.Related {
		fmt.Fprintf(&b, "\n\t%s: %s", fset.Position(r.Pos), r.Message)
	}
	return b.String()
}

// pathEnclosingInterval is a tiny helper: the innermost ast.Node stack
// containing pos, outermost first. Used by analyzers that need the
// enclosing function of a call.
func pathEnclosing(f *ast.File, pos token.Pos) []ast.Node {
	var path []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n.Pos() <= pos && pos < n.End() {
			path = append(path, n)
			return true
		}
		return false
	})
	return path
}
