package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the headline analyzer: a whole-program static lock graph
// whose nodes are lock identities (allocation sites, fields, globals)
// and whose edges mean "acquires B while provably holding A", computed
// by an intraprocedural held-set dataflow plus a bounded call-graph
// closure. Interface method calls fan out through a class-hierarchy
// call graph, locks carried over channels resolve through a send-site
// payload table, and RWMutex read/write modes refine cycle feasibility
// (a reader waiting on a reader never blocks). Every cycle is a
// lock-order inversion candidate; candidates that fail the
// predict-style soundness guards (same-goroutine-only reachability,
// common dominating lock, reader-reader compatibility) are suppressed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order inversions (potential deadlocks) across the whole program",
	RunProgram: func(pp *ProgramPass) error {
		res := AnalyzeLockOrder(&Program{Fset: pp.Fset, Packages: pp.Packages}, DefaultLockOrderOptions)
		for _, c := range res.Cycles {
			pp.Report(c.Diagnostic())
		}
		return nil
	},
}

// DefaultLockOrderOptions are the options the registered LockOrder and
// ChanCycle analyzers run with (the multichecker's -call-depth / -ctx
// flags land here; the zero value means all defaults).
var DefaultLockOrderOptions LockOrderOptions

// LockOrderOptions bound the closure.
type LockOrderOptions struct {
	MaxCallDepth int // call-graph closure depth (default 3)
	MaxCycleLen  int // longest reported cycle (default 3)
	MaxOccs      int // occurrences kept per edge (default 8)
	// NoCtx disables the one-level allocation-site context on field
	// identities (the -ctx=0 escape hatch): all instances of a struct
	// type merge back into one abstract node.
	NoCtx bool
}

func (o *LockOrderOptions) defaults() {
	if o.MaxCallDepth <= 0 {
		o.MaxCallDepth = 3
	}
	if o.MaxCycleLen <= 0 {
		o.MaxCycleLen = 3
	}
	if o.MaxOccs <= 0 {
		o.MaxOccs = 8
	}
}

// EmitFrame is one runtime-style pseudo-frame of a statically derived
// acquisition stack: Func matches what runtime.CallersFrames would
// report for the same source location, File is the base filename, so
// the emitted signature is comparable to live captures.
type EmitFrame struct {
	Func string
	File string
	Line int
}

// CycleEdge is one confirmed edge of a reported cycle: the holder of
// From acquires To. HoldStack is the call chain (innermost first) at
// which From was acquired — the stack predict and the live monitor
// archive per cycle edge — and AcqStack the chain of the To
// acquisition, used for reporting.
type CycleEdge struct {
	From, To  string
	HoldStack []EmitFrame
	AcqStack  []EmitFrame
	holdPos   token.Pos
	acqPos    token.Pos
}

// ConfirmedCycle is one lock-order inversion that survived the guards.
type ConfirmedCycle struct {
	Locks []string
	Edges []CycleEdge
	// AltRoots lists alternate entry chains (other roots whose
	// occurrences also realize this cycle), deduplicated and capped;
	// the same inversion reached from several entries is one report.
	AltRoots []string
	// witnessRoots are the roots of the combination that confirmed the
	// cycle (used to keep AltRoots disjoint from the witness).
	witnessRoots map[string]bool
}

// LockOrderResult is the whole-program outcome.
type LockOrderResult struct {
	Cycles []ConfirmedCycle
	// Candidates counts raw cycles before guard suppression;
	// SuppressedGuard / SuppressedSeq / SuppressedRW count the
	// casualties per guard (RW = every combination had a reader waiting
	// only on readers somewhere along the cycle).
	Candidates      int
	SuppressedGuard int
	SuppressedSeq   int
	SuppressedRW    int
	// SuppressedCtx counts widened self-loops dropped because every real
	// call path bound allocation-site contexts and none of the refined
	// instances produced the self-edge (two-instance disjoint locks).
	SuppressedCtx int
}

// Diagnostic renders the cycle as a finding anchored at the first
// edge's acquisition site, with the opposing chains as related notes.
func (c *ConfirmedCycle) Diagnostic() Diagnostic {
	var b strings.Builder
	fmt.Fprintf(&b, "lock-order inversion: %s -> %s", strings.Join(c.Locks, " -> "), c.Locks[0])
	for _, e := range c.Edges {
		fmt.Fprintf(&b, "; acquires %s at %s while holding %s (since %s)",
			e.To, frameSiteString(e.AcqStack), e.From, frameSiteString(e.HoldStack))
	}
	if len(c.AltRoots) > 0 {
		fmt.Fprintf(&b, "; also reachable via %s", strings.Join(c.AltRoots, ", "))
	}
	d := Diagnostic{Pos: c.Edges[0].acqPos, Message: b.String()}
	for _, e := range c.Edges {
		d.Related = append(d.Related, RelatedInfo{
			Pos:     e.holdPos,
			Message: fmt.Sprintf("%s acquired here, held while taking %s", e.From, e.To),
		})
	}
	return d
}

func frameSiteString(frames []EmitFrame) string {
	if len(frames) == 0 {
		return "?"
	}
	s := fmt.Sprintf("%s:%d", frames[0].File, frames[0].Line)
	if len(frames) > 1 {
		var via []string
		for _, f := range frames[1:] {
			via = append(via, shortFunc(f.Func))
		}
		s += " via " + strings.Join(via, " <- ")
	}
	return s
}

func shortFunc(fn string) string {
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		return fn[i+1:]
	}
	return fn
}

// --- function summaries ---------------------------------------------

const (
	loAcq = iota
	loRel
	loCall
	loSend
	loRecv
	loWgWait
	loWgDone
)

type loBind struct {
	idx   int
	lock  symRef
	fnKey string
	fnSym types.Object
}

type loEvent struct {
	kind      int
	lock      symRef // acq/rel lock, or chan/waitgroup identity
	read      bool
	try       bool
	isDefer   bool
	nonBlock  bool // chan op inside select-with-default: cannot block
	pos       token.Pos
	calleeKey string // call (static resolution)
	calleeSym types.Object
	// ifaceMethod marks a dynamic dispatch: resolved through the
	// class-hierarchy index at instantiation time.
	ifaceMethod *types.Func
	binds       []loBind
	isGo        bool
}

type funcSummary struct {
	key         string // pkg-path-qualified identity
	runtimeName string // what runtime.CallersFrames reports
	pkg         *Package
	params      []types.Object
	events      []loEvent
}

// funcKeyOf derives the summary key for a called *types.Func so caller
// and callee packages agree on identity without sharing objects.
func funcKeyOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + funcSuffix(fn)
}

func funcSuffix(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok {
				return "(*" + n.Obj().Name() + ")." + fn.Name()
			}
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// summarizer builds per-function summaries for one package.
type summarizer struct {
	pkg       *Package
	summaries map[string]*funcSummary
	ctx       bool
	// payloads is the program-wide send-site table: which concrete lock
	// identities travel over which channel (optionally per struct
	// field). Receive-side acquisitions bind through it.
	payloads map[payloadRef][]lockKey
}

func summarizePackage(pkg *Package, out map[string]*funcSummary, ctx bool, payloads map[payloadRef][]lockKey) {
	s := &summarizer{pkg: pkg, summaries: out, ctx: ctx, payloads: payloads}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			key := funcKeyOf(obj)
			rtName := runtimeQual(pkg) + "." + funcSuffix(obj)
			litN := 0
			s.summarize(key, rtName, fd.Type, fd.Body, &litN)
		}
	}
}

func runtimeQual(pkg *Package) string {
	if pkg.Name == "main" {
		return "main"
	}
	return pkg.PkgPath
}

// summarize walks one function body, emitting an ordered event list.
// litCounter numbers the func literals of the enclosing top-level decl
// so closure names line up with the runtime's funcN convention.
func (s *summarizer) summarize(key, rtName string, ftype *ast.FuncType, body *ast.BlockStmt, litCounter *int) *funcSummary {
	sum := &funcSummary{key: key, runtimeName: rtName, pkg: s.pkg}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				sum.params = append(sum.params, s.pkg.Info.Defs[name])
			}
		}
	}
	s.summaries[key] = sum
	w := &loWalker{s: s, sum: sum, res: newLockResolver(s.pkg, s.ctx), lits: litCounter,
		fnAliases: map[types.Object]string{}, ifaceAliases: map[types.Object]*types.Func{},
		litKeys: map[*ast.FuncLit]string{}}
	w.stmt(body)
	return sum
}

type loWalker struct {
	s            *summarizer
	sum          *funcSummary
	res          *lockResolver
	lits         *int
	fnAliases    map[types.Object]string
	ifaceAliases map[types.Object]*types.Func
	litKeys      map[*ast.FuncLit]string // memo: a literal is summarized once
	selNB        int                     // >0 inside a select that has a default clause
}

func (w *loWalker) stmt(st ast.Stmt) {
	switch x := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range x.List {
			w.stmt(s)
		}
	case *ast.ExprStmt:
		w.expr(x.X, false, false)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.expr(rhs, false, false)
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.s.pkg.Info.Defs[id]
				if obj == nil {
					obj = w.s.pkg.Info.Uses[id]
				}
				w.noteAssign(obj, x.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, false, false)
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						w.noteAssign(w.s.pkg.Info.Defs[name], vs.Values[i])
					}
				}
			}
		}
	case *ast.GoStmt:
		// Arguments evaluate in the spawning goroutine, at the statement.
		for _, a := range x.Call.Args {
			w.expr(a, false, false)
		}
		w.call(x.Call, true, false)
	case *ast.DeferStmt:
		for _, a := range x.Call.Args {
			w.expr(a, false, false)
		}
		w.call(x.Call, false, true)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r, false, false)
		}
	case *ast.IfStmt:
		w.stmt(x.Init)
		w.expr(x.Cond, false, false)
		w.stmt(x.Body)
		w.stmt(x.Else)
	case *ast.ForStmt:
		w.stmt(x.Init)
		w.expr(x.Cond, false, false)
		w.stmt(x.Body)
		w.stmt(x.Post)
	case *ast.RangeStmt:
		w.expr(x.X, false, false)
		if tv, ok := w.s.pkg.Info.Types[x.X]; ok && tv.Type != nil && isChanType(tv.Type) {
			if ref, ok := w.res.resolve(x.X); ok {
				w.sum.events = append(w.sum.events, loEvent{
					kind: loRecv, lock: ref, pos: x.Pos(), nonBlock: w.selNB > 0})
				if ref.key != nil {
					if id, ok := x.Key.(*ast.Ident); ok {
						if obj := w.s.pkg.Info.Defs[id]; obj != nil {
							w.res.noteRecv(obj, ref.key.key)
						}
					}
				}
			}
		}
		w.stmt(x.Body)
	case *ast.SwitchStmt:
		w.stmt(x.Init)
		w.expr(x.Tag, false, false)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init)
		w.stmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		hasDefault := false
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		// The comm ops of a select with a default clause cannot block;
		// case bodies run after some case fired and block normally.
		if hasDefault {
			w.selNB++
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
			}
		}
		if hasDefault {
			w.selNB--
		}
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.SendStmt:
		w.expr(x.Chan, false, false)
		w.expr(x.Value, false, false)
		w.send(x)
	case *ast.IncDecStmt:
		w.expr(x.X, false, false)
	}
}

// send records the blocking send event and harvests the payload table:
// lock-typed values (directly or as composite-literal fields) sent on a
// resolvable channel become recv-side bindable identities.
func (w *loWalker) send(x *ast.SendStmt) {
	ref, ok := w.res.resolve(x.Chan)
	if !ok {
		return
	}
	if ref.key != nil {
		w.notePayload(ref.key.key, x.Value)
	}
	w.sum.events = append(w.sum.events, loEvent{
		kind: loSend, lock: ref, pos: x.Pos(), nonBlock: w.selNB > 0})
}

func (w *loWalker) notePayload(chKey string, val ast.Expr) {
	val = ast.Unparen(val)
	if un, ok := val.(*ast.UnaryExpr); ok && un.Op == token.AND {
		val = ast.Unparen(un.X)
	}
	if lit, ok := val.(*ast.CompositeLit); ok {
		for _, elt := range lit.Elts {
			kv, ok := elt.(*ast.KeyValueExpr)
			if !ok {
				continue
			}
			field, ok := kv.Key.(*ast.Ident)
			if !ok {
				continue
			}
			if _, isLock := isLockType(w.s.pkg.Info.Types[kv.Value].Type); !isLock {
				continue
			}
			if ref, ok := w.res.resolve(kv.Value); ok && ref.key != nil {
				w.addPayload(payloadRef{chanKey: chKey, field: field.Name}, *ref.key)
			}
		}
		return
	}
	if _, isLock := isLockType(w.s.pkg.Info.Types[val].Type); !isLock {
		return
	}
	if ref, ok := w.res.resolve(val); ok && ref.key != nil {
		w.addPayload(payloadRef{chanKey: chKey}, *ref.key)
	}
}

func (w *loWalker) addPayload(pr payloadRef, k lockKey) {
	for _, e := range w.s.payloads[pr] {
		if e.key == k.key {
			return
		}
	}
	w.s.payloads[pr] = append(w.s.payloads[pr], k)
}

func (w *loWalker) noteAssign(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	rhs = ast.Unparen(rhs)
	if lit, ok := rhs.(*ast.FuncLit); ok {
		w.fnAliases[obj] = w.litKey(lit)
		return
	}
	if id, ok := rhs.(*ast.Ident); ok {
		if fn, ok := w.s.pkg.Info.Uses[id].(*types.Func); ok {
			w.fnAliases[obj] = funcKeyOf(fn)
			return
		}
	}
	// Method values: `f := s.Flush` binds the concrete method,
	// `f := store.Get` through an interface defers to CHA dispatch.
	if sel, ok := rhs.(*ast.SelectorExpr); ok {
		if s, ok := w.s.pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal {
			m := s.Obj().(*types.Func)
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				w.ifaceAliases[obj] = m
			} else {
				w.fnAliases[obj] = funcKeyOf(m)
			}
			return
		}
	}
	w.res.note(obj, rhs)
}

// litKey summarizes a func literal (once) and returns its key.
func (w *loWalker) litKey(lit *ast.FuncLit) string {
	if key, ok := w.litKeys[lit]; ok {
		return key
	}
	*w.lits++
	key := fmt.Sprintf("%s.func%d", w.sum.key, *w.lits)
	rtName := fmt.Sprintf("%s.func%d", w.sum.runtimeName, *w.lits)
	w.litKeys[lit] = key
	w.s.summarize(key, rtName, lit.Type, lit.Body, w.lits)
	return key
}

// expr walks an expression, recording lock operations and calls in
// evaluation order. Func literals are summarized separately, never
// inlined into the current event stream.
func (w *loWalker) expr(e ast.Expr, isGo, isDefer bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.litKey(x)
			return false
		case *ast.UnaryExpr:
			if x.Op == token.ARROW {
				w.expr(x.X, false, false)
				if ref, ok := w.res.resolve(x.X); ok {
					w.sum.events = append(w.sum.events, loEvent{
						kind: loRecv, lock: ref, pos: x.Pos(), nonBlock: w.selNB > 0})
				}
				return false
			}
		case *ast.CallExpr:
			// Walk arguments first (evaluation order), then classify the
			// call itself; Inspect would also descend into Fun/Args, so cut
			// it off and recurse manually.
			for _, a := range x.Args {
				w.expr(a, false, false)
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				w.expr(sel.X, false, false)
			}
			w.call(x, isGo, isDefer)
			return false
		}
		return true
	})
}

// call classifies one call expression: lock operation, WaitGroup
// synchronization, or call event.
func (w *loWalker) call(call *ast.CallExpr, isGo, isDefer bool) {
	pkg := w.s.pkg
	if method, recv, ok := classifyLockCall(pkg, call); ok {
		if isCondType(pkg.Info.Types[recv].Type) {
			// Cond.Wait releases and reacquires L; neutral for ordering.
			return
		}
		ref, resolved := w.res.resolve(recv)
		if !resolved {
			return
		}
		switch {
		case acquireBlocking[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loAcq, lock: ref, read: readMethods[method], pos: call.Pos(), isDefer: isDefer})
		case acquireTry[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loAcq, lock: ref, read: readMethods[method], try: true, pos: call.Pos(), isDefer: isDefer})
		case releaseMethods[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loRel, lock: ref, read: readMethods[method], pos: call.Pos(), isDefer: isDefer})
		}
		return
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if s, ok := pkg.Info.Selections[sel]; ok && s.Kind() == types.MethodVal && isWaitGroupType(s.Recv()) {
			name := s.Obj().Name()
			if name == "Wait" || name == "Done" {
				if ref, resolved := w.res.resolve(sel.X); resolved {
					kind := loWgWait
					if name == "Done" {
						kind = loWgDone
					}
					w.sum.events = append(w.sum.events, loEvent{
						kind: kind, lock: ref, pos: call.Pos(), nonBlock: w.selNB > 0, isDefer: isDefer})
				}
			}
			return
		}
	}

	ev := loEvent{kind: loCall, pos: call.Pos(), isGo: isGo, isDefer: isDefer}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			ev.calleeKey = funcKeyOf(obj)
		case *types.Var:
			if key, ok := w.fnAliases[obj]; ok {
				ev.calleeKey = key
			} else if m, ok := w.ifaceAliases[obj]; ok {
				ev.ifaceMethod = m
			} else {
				ev.calleeSym = obj
			}
		default:
			return // builtin, conversion
		}
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			m := s.Obj().(*types.Func)
			if _, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
				// Dynamic dispatch: expanded through the class-hierarchy
				// index when the program is instantiated.
				ev.ifaceMethod = m
			} else {
				ev.calleeKey = funcKeyOf(m)
			}
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			ev.calleeKey = funcKeyOf(fn)
		} else {
			return
		}
	case *ast.FuncLit:
		ev.calleeKey = w.litKey(fun)
	default:
		return
	}
	for i, arg := range call.Args {
		arg = ast.Unparen(arg)
		if lit, ok := arg.(*ast.FuncLit); ok {
			ev.binds = append(ev.binds, loBind{idx: i, fnKey: w.litKey(lit)})
			continue
		}
		if id, ok := arg.(*ast.Ident); ok {
			switch obj := pkg.Info.Uses[id].(type) {
			case *types.Func:
				ev.binds = append(ev.binds, loBind{idx: i, fnKey: funcKeyOf(obj)})
				continue
			case *types.Var:
				if key, ok := w.fnAliases[obj]; ok {
					ev.binds = append(ev.binds, loBind{idx: i, fnKey: key})
					continue
				}
			}
		}
		if ref, ok := w.res.resolve(arg); ok {
			ev.binds = append(ev.binds, loBind{idx: i, lock: ref})
		}
	}
	w.sum.events = append(w.sum.events, ev)
}

// --- instantiation: bounded call-graph closure -----------------------

type frameSite struct {
	fn  *funcSummary
	pos token.Pos
}

type siteChain []frameSite // innermost first

func (c siteChain) frames(fset *token.FileSet) []EmitFrame {
	out := make([]EmitFrame, len(c))
	for i, f := range c {
		p := fset.Position(f.pos)
		out[i] = EmitFrame{Func: f.fn.runtimeName, File: shortFile(p.Filename), Line: p.Line}
	}
	return out
}

type heldLock struct {
	key  lockKey
	read bool
	site siteChain
}

type occurrence struct {
	holdSite siteChain
	acqSite  siteChain
	guards   []string
	root     string // "go:<pos>", or "fn:<key>"
	fromInst string
	toInst   string
	holdRead bool // the held lock is in read mode
	acqRead  bool // the acquisition is in read mode
	// widened: both endpoints are type-keyed fallbacks of refinable
	// field references whose base had no allocation context here.
	widened bool
}

type loEdge struct {
	from, to lockKey
	occs     []occurrence
}

type envVal struct {
	locks []lockKey
	fn    string
	// site is an allocation-site context for a struct parameter: field
	// identities resolved against this binding refine to per-instance
	// nodes instead of the type-keyed fallback.
	site string
}

// maxPayloadFanout caps how many distinct send-site identities one
// payload reference expands to; larger sets widen to the first few
// (deterministic: insertion order per send-site walk order).
const maxPayloadFanout = 4

// maxChanOps bounds the wait-for op log across all entries.
const maxChanOps = 4096

type loState struct {
	opts      LockOrderOptions
	fset      *token.FileSet
	summaries map[string]*funcSummary
	cha       *chaIndex
	payloads  map[payloadRef][]lockKey
	edges     map[[2]string]*loEdge
	// The reachability graph for the sequential-only guard; edges
	// discovered both statically and through env-resolved instantiation
	// land here.
	seqEdges  map[string][]string
	goTargets map[string]bool
	hasCaller map[string]bool
	seqOnly   map[string]bool
	// chanOps collects blocking channel / WaitGroup operations with
	// their held-set and acquisition-log contexts for chancycle.
	chanOps []chanOp
	opSeen  map[string]bool
}

// chanOp is one channel/WaitGroup operation observed during
// instantiation, with enough context to build the wait-for graph: held
// is the lock set at the op (what the blocked goroutine pins), before
// is the acquisition log of the whole flow (what must be acquired to
// reach — and therefore to unblock — the counterpart).
type chanOp struct {
	kind     int // loSend, loRecv, loWgWait, loWgDone
	ch       lockKey
	held     []heldLock
	before   []heldLock
	site     siteChain
	root     string
	nonBlock bool
}

// buildLoState summarizes and instantiates the whole program once;
// AnalyzeLockOrder and AnalyzeChanCycle share the result.
func buildLoState(prog *Program, opts LockOrderOptions) *loState {
	opts.defaults()
	st := &loState{
		opts:      opts,
		fset:      prog.Fset,
		summaries: map[string]*funcSummary{},
		cha:       newCHAIndex(prog),
		payloads:  map[payloadRef][]lockKey{},
		edges:     map[[2]string]*loEdge{},
		seqEdges:  map[string][]string{},
		goTargets: map[string]bool{},
		hasCaller: map[string]bool{},
		opSeen:    map[string]bool{},
	}
	for _, pkg := range prog.Packages {
		summarizePackage(pkg, st.summaries, !opts.NoCtx, st.payloads)
	}
	keys := make([]string, 0, len(st.summaries))
	for k := range st.summaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Instantiate every function as a potential entry: edges inside
	// callees are discovered through every caller's bindings (the
	// parameters of helpers like nest(outer, inner) only become concrete
	// locks at call sites).
	for _, k := range keys {
		sum := st.summaries[k]
		held := []heldLock{}
		before := []heldLock{}
		st.instantiate(sum, map[types.Object]envVal{}, &held, &before, nil, "fn:"+k, 0, map[string]bool{k: true})
	}
	st.seqOnly = st.sequentialOnly()
	return st
}

// AnalyzeLockOrder runs the whole-program analysis and returns the
// confirmed cycles with their call chains — the cmd/dimmunix-vet -emit
// path consumes the same result the analyzer reports from.
func AnalyzeLockOrder(prog *Program, opts LockOrderOptions) *LockOrderResult {
	st := buildLoState(prog, opts)
	return st.collectCycles(st.seqOnly)
}

func (st *loState) instantiate(sum *funcSummary, env map[types.Object]envVal, held, before *[]heldLock, stack siteChain, root string, depth int, path map[string]bool) {
	var deferred []func()
	for i := range sum.events {
		ev := &sum.events[i]
		run := func(ev *loEvent) { st.event(sum, ev, env, held, before, stack, root, depth, path) }
		if ev.isDefer {
			ev := ev
			deferred = append(deferred, func() { run(ev) })
			continue
		}
		run(ev)
	}
	// Deferred events run at function exit, in LIFO order: unlocks
	// release what the body still holds, deferred calls see that state.
	for i := len(deferred) - 1; i >= 0; i-- {
		deferred[i]()
	}
}

func (st *loState) event(sum *funcSummary, ev *loEvent, env map[types.Object]envVal, held, before *[]heldLock, stack siteChain, root string, depth int, path map[string]bool) {
	switch ev.kind {
	case loAcq:
		ks := st.resolveRefs(ev.lock, env)
		if len(ks) == 0 {
			return
		}
		site := append(siteChain{frameSite{fn: sum, pos: ev.pos}}, stack...)
		if !ev.try {
			for _, k := range ks {
				for _, h := range *held {
					st.addEdge(h, k, ev.read, site, *held, root)
				}
			}
		}
		for _, k := range ks {
			hl := heldLock{key: k, read: ev.read, site: site}
			*held = append(*held, hl)
			*before = append(*before, hl)
		}
	case loRel:
		for _, k := range st.resolveRefs(ev.lock, env) {
			for i := len(*held) - 1; i >= 0; i-- {
				if (*held)[i].key.key == k.key && (*held)[i].read == ev.read {
					*held = append((*held)[:i], (*held)[i+1:]...)
					break
				}
			}
		}
	case loSend, loRecv, loWgWait, loWgDone:
		ks := st.resolveRefs(ev.lock, env)
		if len(ks) == 0 {
			return
		}
		site := append(siteChain{frameSite{fn: sum, pos: ev.pos}}, stack...)
		for _, k := range ks {
			if len(st.chanOps) >= maxChanOps {
				return
			}
			// Dedup identical contexts: the same op is replayed once per
			// entry that reaches it; only distinct (root, held, before)
			// contexts add information.
			sig := fmt.Sprintf("%d|%s|%s|%d|%s|%s", ev.kind, k.key, root, ev.pos, heldKeys(*held), heldKeys(*before))
			if st.opSeen[sig] {
				continue
			}
			st.opSeen[sig] = true
			st.chanOps = append(st.chanOps, chanOp{
				kind:     ev.kind,
				ch:       k,
				held:     append([]heldLock(nil), *held...),
				before:   append([]heldLock(nil), *before...),
				site:     site,
				root:     root,
				nonBlock: ev.nonBlock,
			})
		}
	case loCall:
		var calleeKeys []string
		switch {
		case ev.ifaceMethod != nil:
			calleeKeys = st.cha.targets(ev.ifaceMethod)
		case ev.calleeKey != "":
			calleeKeys = []string{ev.calleeKey}
		case ev.calleeSym != nil:
			if fnk := env[ev.calleeSym].fn; fnk != "" {
				calleeKeys = []string{fnk}
			}
		}
		for _, calleeKey := range calleeKeys {
			// Feed the reachability graph even past the depth bound: the
			// sequential-only guard needs the full picture.
			if ev.isGo {
				st.goTargets[calleeKey] = true
			} else {
				st.seqEdges[sum.key] = append(st.seqEdges[sum.key], calleeKey)
			}
			st.hasCaller[calleeKey] = true
			callee := st.summaries[calleeKey]
			if callee == nil || depth >= st.opts.MaxCallDepth || path[calleeKey] {
				continue
			}
			env2 := make(map[types.Object]envVal, len(env)+len(ev.binds))
			for k, v := range env {
				env2[k] = v
			}
			for _, b := range ev.binds {
				if b.idx >= len(callee.params) || callee.params[b.idx] == nil {
					continue
				}
				switch {
				case b.fnKey != "":
					env2[callee.params[b.idx]] = envVal{fn: b.fnKey}
				case b.fnSym != nil:
					if v, ok := env[b.fnSym]; ok {
						env2[callee.params[b.idx]] = v
					}
				case b.lock.valid():
					if ks := st.resolveRefs(b.lock, env); len(ks) > 0 {
						env2[callee.params[b.idx]] = envVal{locks: ks}
					} else if b.lock.site != "" {
						// Allocation carrier: the callee's field identities
						// refine against this site.
						env2[callee.params[b.idx]] = envVal{site: b.lock.site}
					} else if b.lock.obj != nil && b.lock.key == nil {
						// Carrier passed through another call level.
						if v, ok := env[b.lock.obj]; ok && v.site != "" {
							env2[callee.params[b.idx]] = envVal{site: v.site}
						}
					}
				}
			}
			path[calleeKey] = true
			if ev.isGo {
				// A spawned goroutine starts with an empty stack and holds
				// nothing from its spawner; its acquisition log is its own.
				fresh := []heldLock{}
				freshBefore := []heldLock{}
				st.instantiate(callee, env2, &fresh, &freshBefore, nil, "go:"+st.fset.Position(ev.pos).String(), depth+1, path)
			} else {
				st.instantiate(callee, env2, held, before, append(siteChain{frameSite{fn: sum, pos: ev.pos}}, stack...), root, depth+1, path)
			}
			delete(path, calleeKey)
		}
	}
}

func heldKeys(hs []heldLock) string {
	var b strings.Builder
	for _, h := range hs {
		b.WriteString(h.key.key)
		b.WriteByte(',')
	}
	return b.String()
}

// resolveRefs maps a summary-level lock reference to its concrete
// identities: one for direct/env-bound locks, possibly several for a
// channel payload (every lock observed at any send site). Refinable
// field references (key+obj) pick up the base object's allocation-site
// context from the env; without one they widen to the type-keyed
// fallback and are marked as such.
func (st *loState) resolveRefs(r symRef, env map[types.Object]envVal) []lockKey {
	switch {
	case r.key != nil:
		k := *r.key
		if r.obj != nil {
			if v, ok := env[r.obj]; ok && v.site != "" {
				k.key += "@" + v.site
				k.desc += "@" + v.site
			} else {
				k.widened = true
			}
		}
		return []lockKey{k}
	case r.obj != nil:
		if v, ok := env[r.obj]; ok {
			return v.locks
		}
	case r.payload != nil:
		ks := st.payloads[*r.payload]
		if len(ks) > maxPayloadFanout {
			ks = ks[:maxPayloadFanout]
		}
		return ks
	}
	return nil
}

func (st *loState) addEdge(h heldLock, to lockKey, read bool, acqSite siteChain, held []heldLock, root string) {
	if h.key.key == to.key {
		// Self-edge: only meaningful when the instances provably differ
		// (transfer(src, dst) on two Accounts); same or unknown instance
		// is re-entry, not inversion.
		if h.key.inst == "" || to.inst == "" || h.key.inst == to.inst {
			return
		}
	}
	var guards []string
	for _, g := range held {
		if g.key.key != h.key.key {
			guards = append(guards, g.key.key)
		}
	}
	id := [2]string{h.key.key, to.key}
	e := st.edges[id]
	if e == nil {
		e = &loEdge{from: h.key, to: to}
		st.edges[id] = e
	}
	if len(e.occs) >= st.opts.MaxOccs {
		return
	}
	e.occs = append(e.occs, occurrence{
		holdSite: h.site, acqSite: acqSite, guards: guards, root: root,
		fromInst: h.key.inst, toInst: to.inst,
		holdRead: h.read, acqRead: read,
		widened: h.key.widened && to.widened,
	})
}

// sequentialOnly computes the set of functions that only ever execute
// on the main goroutine's sequential flow: reachable from main.main via
// plain calls and NOT reachable from any go statement target or
// external entry (a function nobody in the program calls — exported
// API is conservatively concurrent).
func (st *loState) sequentialOnly() map[string]bool {
	var mains, conc []string
	for k, sum := range st.summaries {
		isMain := sum.pkg.Name == "main" && sum.runtimeName == "main.main"
		isInit := strings.HasSuffix(sum.runtimeName, ".init")
		if isMain {
			mains = append(mains, k)
		} else if !st.hasCaller[k] && !isInit && !strings.Contains(k, ".func") {
			conc = append(conc, k)
		}
	}
	for k := range st.goTargets {
		conc = append(conc, k)
	}
	reach := func(seeds []string) map[string]bool {
		seen := map[string]bool{}
		var stack []string
		for _, s := range seeds {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range st.seqEdges[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return seen
	}
	fromMain, fromConc := reach(mains), reach(conc)
	out := map[string]bool{}
	for k := range fromMain {
		if !fromConc[k] {
			out[k] = true
		}
	}
	return out
}

// --- cycle enumeration and guards ------------------------------------

// normCycleKey is the rotation-independent identity of a cycle: its
// edge pairs, sorted. The same inversion discovered through different
// node orderings or entries deduplicates onto one report.
func normCycleKey(cycle []string) string {
	pairs := make([]string, len(cycle))
	for i := range cycle {
		pairs[i] = cycle[i] + "->" + cycle[(i+1)%len(cycle)]
	}
	sort.Strings(pairs)
	return strings.Join(pairs, ";")
}

func describeRoot(root string) string {
	if k, ok := strings.CutPrefix(root, "fn:"); ok {
		return "entry " + shortFunc(k)
	}
	if p, ok := strings.CutPrefix(root, "go:"); ok {
		return "goroutine at " + shortFile(p)
	}
	return root
}

const maxAltRoots = 3

func (st *loState) collectCycles(seqOnly map[string]bool) *LockOrderResult {
	res := &LockOrderResult{}
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for id := range st.edges {
		adj[id[0]] = append(adj[id[0]], id[1])
		nodes[id[0]], nodes[id[1]] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	ordered := make([]string, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	byKey := map[string]int{}
	emit := func(cycle []string) {
		res.Candidates++
		edges := make([]*loEdge, len(cycle))
		for i := range cycle {
			edges[i] = st.edges[[2]string{cycle[i], cycle[(i+1)%len(cycle)]}]
		}
		c, why := st.confirm(cycle, edges, seqOnly)
		if c == nil {
			switch why {
			case "seq":
				res.SuppressedSeq++
			case "rw":
				res.SuppressedRW++
			default:
				res.SuppressedGuard++
			}
			return
		}
		key := normCycleKey(cycle)
		if i, dup := byKey[key]; dup {
			// Same inversion, different enumeration: fold the alternate
			// entries into the existing report.
			prev := &res.Cycles[i]
			merged := append([]string{}, prev.AltRoots...)
			for _, r := range append(c.AltRoots, rootList(c.witnessRoots)...) {
				if len(merged) >= maxAltRoots {
					break
				}
				if !containsStr(merged, r) && !prev.witnessRoots[r] {
					merged = append(merged, r)
				}
			}
			sort.Strings(merged)
			prev.AltRoots = merged
			return
		}
		byKey[key] = len(res.Cycles)
		res.Cycles = append(res.Cycles, *c)
	}

	// Elementary cycles up to MaxCycleLen, started (and thus deduplicated)
	// at their smallest node. Self-loops are handled separately below.
	for _, start := range ordered {
		var dfs func(cur string, path []string)
		dfs = func(cur string, path []string) {
			for _, next := range adj[cur] {
				if next == start && len(path) >= 2 {
					emit(append([]string{}, path...))
					continue
				}
				if next <= start || len(path) >= st.opts.MaxCycleLen {
					continue
				}
				onPath := false
				for _, p := range path {
					if p == next {
						onPath = true
						break
					}
				}
				if !onPath {
					dfs(next, append(path, next))
				}
			}
		}
		// Self-loop (two instances of one abstract lock).
		if e, ok := st.edges[[2]string{start, start}]; ok {
			if st.widenedSelfLoop(start, e, nodes) {
				res.Candidates++
				res.SuppressedCtx++
			} else {
				emit([]string{start})
			}
		}
		dfs(start, []string{start})
	}
	return res
}

// widenedSelfLoop reports whether a self-edge is pure widening residue:
// every occurrence is a type-keyed fallback from the synthetic entry
// instantiation of a function real callers DO reach (so the refined,
// allocation-site-split instances were analyzed), and refined instances
// of the same field exist in the graph without reproducing the
// self-edge as a refined cycle. transfer(src, dst)-style self-loops in
// uncalled API survive: their entry instantiation is the only evidence
// there is.
func (st *loState) widenedSelfLoop(key string, e *loEdge, nodes map[string]bool) bool {
	refined := false
	for n := range nodes {
		if strings.HasPrefix(n, key+"@") {
			refined = true
			break
		}
	}
	if !refined {
		return false
	}
	for _, o := range e.occs {
		if !o.widened {
			return false
		}
		k, isFn := strings.CutPrefix(o.root, "fn:")
		if !isFn || !st.hasCaller[k] {
			return false
		}
	}
	return true
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func rootList(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// confirm searches the occurrence combinations of a candidate cycle for
// one that survives all guards; the first surviving combination (in
// deterministic order) becomes the reported witness. Guards, in
// reporting priority: sequential-only reachability ("seq"), RWMutex
// reader-reader compatibility ("rw"), common dominating lock ("guard").
func (st *loState) confirm(cycle []string, edges []*loEdge, seqOnly map[string]bool) (*ConfirmedCycle, string) {
	cycleLocks := map[string]bool{}
	for _, n := range cycle {
		cycleLocks[n] = true
	}
	sawSeq, sawRW := false, false
	pick := make([]int, len(edges))
	var try func(i int) *ConfirmedCycle
	try = func(i int) *ConfirmedCycle {
		if i == len(edges) {
			combo := make([]occurrence, len(edges))
			for j, e := range edges {
				combo[j] = e.occs[pick[j]]
			}
			if !rwFeasible(combo) {
				sawRW = true
				return nil
			}
			if !st.concurrent(combo, seqOnly) {
				sawSeq = true
				return nil
			}
			if commonGuard(combo, cycleLocks) {
				return nil
			}
			return st.build(cycle, edges, combo)
		}
		for p := range edges[i].occs {
			pick[i] = p
			if c := try(i + 1); c != nil {
				return c
			}
		}
		return nil
	}
	if c := try(0); c != nil {
		c.AltRoots = st.altRoots(edges, c.witnessRoots)
		return c, ""
	}
	if sawSeq {
		return nil, "seq"
	}
	if sawRW {
		return nil, "rw"
	}
	return nil, "guard"
}

// rwFeasible applies the RWMutex mode semantics around the cycle: edge
// i's acquisition of lock i+1 blocks on edge i+1's hold of that lock —
// unless both are read mode, in which case the runtime admits both
// readers and the cycle dissolves. One compatible adjacency anywhere
// breaks the whole cycle (self-loops check an occurrence against
// itself).
func rwFeasible(combo []occurrence) bool {
	for i := range combo {
		next := combo[(i+1)%len(combo)]
		if combo[i].acqRead && next.holdRead {
			return false
		}
	}
	return true
}

// altRoots collects entry roots (beyond the witness combination's) that
// also realize the cycle's edges, as related information on the report.
func (st *loState) altRoots(edges []*loEdge, witness map[string]bool) []string {
	seen := map[string]bool{}
	var out []string
	for _, e := range edges {
		for _, o := range e.occs {
			if witness[o.root] || seen[o.root] {
				continue
			}
			seen[o.root] = true
			out = append(out, describeRoot(o.root))
		}
	}
	sort.Strings(out)
	if len(out) > maxAltRoots {
		out = out[:maxAltRoots]
	}
	return out
}

// concurrent reports whether the combination's edges can execute on
// distinct goroutines: suppressed only when every occurrence sits on
// the provably-sequential main flow, or when a multi-edge cycle's
// occurrences all come from one identical sequential entry (one thread
// taking both orders itself, the SameThreadCanary shape).
func (st *loState) concurrent(combo []occurrence, seqOnly map[string]bool) bool {
	allSeq := true
	for _, o := range combo {
		k, isFn := strings.CutPrefix(o.root, "fn:")
		if !isFn || !seqOnly[k] {
			allSeq = false
			break
		}
	}
	if allSeq {
		return false
	}
	if len(combo) > 1 {
		// Distinct-thread guard for non-spawned roots: a cycle whose every
		// edge comes from the same non-goroutine entry is one thread's own
		// sequential re-ordering unless that entry is reachable from a
		// spawn site (then two instances may run concurrently).
		first := combo[0].root
		same := true
		for _, o := range combo[1:] {
			if o.root != first {
				same = false
				break
			}
		}
		if same {
			if k, isFn := strings.CutPrefix(first, "fn:"); isFn && seqOnly[k] {
				return false
			}
		}
	}
	return true
}

// commonGuard reports whether some lock outside the cycle is held at
// every edge of the combination — the common dominating lock that
// serializes the would-be deadlock.
func commonGuard(combo []occurrence, cycleLocks map[string]bool) bool {
	counts := map[string]int{}
	for _, o := range combo {
		seen := map[string]bool{}
		for _, g := range o.guards {
			if !cycleLocks[g] && !seen[g] {
				seen[g] = true
				counts[g]++
			}
		}
	}
	for _, n := range counts {
		if n == len(combo) {
			return true
		}
	}
	return false
}

func (st *loState) build(cycle []string, edges []*loEdge, combo []occurrence) *ConfirmedCycle {
	c := &ConfirmedCycle{witnessRoots: map[string]bool{}}
	for i, e := range edges {
		o := combo[i]
		c.Locks = append(c.Locks, e.from.desc)
		c.witnessRoots[o.root] = true
		c.Edges = append(c.Edges, CycleEdge{
			From:      e.from.desc,
			To:        e.to.desc,
			HoldStack: o.holdSite.frames(st.fset),
			AcqStack:  o.acqSite.frames(st.fset),
			holdPos:   o.holdSite[0].pos,
			acqPos:    o.acqSite[0].pos,
		})
	}
	return c
}
