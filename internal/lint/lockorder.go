package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockOrder is the headline analyzer: a whole-program static lock graph
// whose nodes are lock identities (allocation sites, fields, globals)
// and whose edges mean "acquires B while provably holding A", computed
// by an intraprocedural held-set dataflow plus a bounded call-graph
// closure. Every cycle is a lock-order inversion candidate; candidates
// that fail the predict-style soundness guards (same-goroutine-only
// reachability, common dominating lock) are suppressed.
var LockOrder = &Analyzer{
	Name: "lockorder",
	Doc:  "report lock-order inversions (potential deadlocks) across the whole program",
	RunProgram: func(pp *ProgramPass) error {
		res := AnalyzeLockOrder(&Program{Fset: pp.Fset, Packages: pp.Packages}, LockOrderOptions{})
		for _, c := range res.Cycles {
			pp.Report(c.Diagnostic())
		}
		return nil
	},
}

// LockOrderOptions bound the closure.
type LockOrderOptions struct {
	MaxCallDepth int // call-graph closure depth (default 3)
	MaxCycleLen  int // longest reported cycle (default 3)
	MaxOccs      int // occurrences kept per edge (default 8)
}

func (o *LockOrderOptions) defaults() {
	if o.MaxCallDepth <= 0 {
		o.MaxCallDepth = 3
	}
	if o.MaxCycleLen <= 0 {
		o.MaxCycleLen = 3
	}
	if o.MaxOccs <= 0 {
		o.MaxOccs = 8
	}
}

// EmitFrame is one runtime-style pseudo-frame of a statically derived
// acquisition stack: Func matches what runtime.CallersFrames would
// report for the same source location, File is the base filename, so
// the emitted signature is comparable to live captures.
type EmitFrame struct {
	Func string
	File string
	Line int
}

// CycleEdge is one confirmed edge of a reported cycle: the holder of
// From acquires To. HoldStack is the call chain (innermost first) at
// which From was acquired — the stack predict and the live monitor
// archive per cycle edge — and AcqStack the chain of the To
// acquisition, used for reporting.
type CycleEdge struct {
	From, To  string
	HoldStack []EmitFrame
	AcqStack  []EmitFrame
	holdPos   token.Pos
	acqPos    token.Pos
}

// ConfirmedCycle is one lock-order inversion that survived the guards.
type ConfirmedCycle struct {
	Locks []string
	Edges []CycleEdge
}

// LockOrderResult is the whole-program outcome.
type LockOrderResult struct {
	Cycles []ConfirmedCycle
	// Candidates counts raw cycles before guard suppression;
	// SuppressedGuard / SuppressedSeq count the casualties.
	Candidates      int
	SuppressedGuard int
	SuppressedSeq   int
}

// Diagnostic renders the cycle as a finding anchored at the first
// edge's acquisition site, with the opposing chains as related notes.
func (c *ConfirmedCycle) Diagnostic() Diagnostic {
	var b strings.Builder
	fmt.Fprintf(&b, "lock-order inversion: %s -> %s", strings.Join(c.Locks, " -> "), c.Locks[0])
	for _, e := range c.Edges {
		fmt.Fprintf(&b, "; acquires %s at %s while holding %s (since %s)",
			e.To, frameSiteString(e.AcqStack), e.From, frameSiteString(e.HoldStack))
	}
	d := Diagnostic{Pos: c.Edges[0].acqPos, Message: b.String()}
	for _, e := range c.Edges {
		d.Related = append(d.Related, RelatedInfo{
			Pos:     e.holdPos,
			Message: fmt.Sprintf("%s acquired here, held while taking %s", e.From, e.To),
		})
	}
	return d
}

func frameSiteString(frames []EmitFrame) string {
	if len(frames) == 0 {
		return "?"
	}
	s := fmt.Sprintf("%s:%d", frames[0].File, frames[0].Line)
	if len(frames) > 1 {
		var via []string
		for _, f := range frames[1:] {
			via = append(via, shortFunc(f.Func))
		}
		s += " via " + strings.Join(via, " <- ")
	}
	return s
}

func shortFunc(fn string) string {
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		return fn[i+1:]
	}
	return fn
}

// --- function summaries ---------------------------------------------

const (
	loAcq = iota
	loRel
	loCall
)

type loBind struct {
	idx   int
	lock  symRef
	fnKey string
	fnSym types.Object
}

type loEvent struct {
	kind      int
	lock      symRef // acq/rel
	read      bool
	try       bool
	isDefer   bool
	pos       token.Pos
	calleeKey string // call (static resolution)
	calleeSym types.Object
	binds     []loBind
	isGo      bool
}

type funcSummary struct {
	key         string // pkg-path-qualified identity
	runtimeName string // what runtime.CallersFrames reports
	pkg         *Package
	params      []types.Object
	events      []loEvent
}

// funcKeyOf derives the summary key for a called *types.Func so caller
// and callee packages agree on identity without sharing objects.
func funcKeyOf(fn *types.Func) string {
	if fn.Pkg() == nil {
		return ""
	}
	return fn.Pkg().Path() + "." + funcSuffix(fn)
}

func funcSuffix(fn *types.Func) string {
	sig, _ := fn.Type().(*types.Signature)
	if sig != nil && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			if n, ok := p.Elem().(*types.Named); ok {
				return "(*" + n.Obj().Name() + ")." + fn.Name()
			}
		}
		if n, ok := t.(*types.Named); ok {
			return n.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

// summarizer builds per-function summaries for one package.
type summarizer struct {
	pkg       *Package
	summaries map[string]*funcSummary
}

func summarizePackage(pkg *Package, out map[string]*funcSummary) {
	s := &summarizer{pkg: pkg, summaries: out}
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			key := funcKeyOf(obj)
			rtName := runtimeQual(pkg) + "." + funcSuffix(obj)
			litN := 0
			s.summarize(key, rtName, fd.Type, fd.Body, &litN)
		}
	}
}

func runtimeQual(pkg *Package) string {
	if pkg.Name == "main" {
		return "main"
	}
	return pkg.PkgPath
}

// summarize walks one function body, emitting an ordered event list.
// litCounter numbers the func literals of the enclosing top-level decl
// so closure names line up with the runtime's funcN convention.
func (s *summarizer) summarize(key, rtName string, ftype *ast.FuncType, body *ast.BlockStmt, litCounter *int) *funcSummary {
	sum := &funcSummary{key: key, runtimeName: rtName, pkg: s.pkg}
	if ftype.Params != nil {
		for _, field := range ftype.Params.List {
			for _, name := range field.Names {
				sum.params = append(sum.params, s.pkg.Info.Defs[name])
			}
		}
	}
	s.summaries[key] = sum
	w := &loWalker{s: s, sum: sum, res: newLockResolver(s.pkg), lits: litCounter,
		fnAliases: map[types.Object]string{}, litKeys: map[*ast.FuncLit]string{}}
	w.stmt(body)
	return sum
}

type loWalker struct {
	s         *summarizer
	sum       *funcSummary
	res       *lockResolver
	lits      *int
	fnAliases map[types.Object]string
	litKeys   map[*ast.FuncLit]string // memo: a literal is summarized once
}

func (w *loWalker) stmt(st ast.Stmt) {
	switch x := st.(type) {
	case nil:
	case *ast.BlockStmt:
		for _, s := range x.List {
			w.stmt(s)
		}
	case *ast.ExprStmt:
		w.expr(x.X, false, false)
	case *ast.AssignStmt:
		for _, rhs := range x.Rhs {
			w.expr(rhs, false, false)
		}
		if len(x.Lhs) == len(x.Rhs) {
			for i, lhs := range x.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				obj := w.s.pkg.Info.Defs[id]
				if obj == nil {
					obj = w.s.pkg.Info.Uses[id]
				}
				w.noteAssign(obj, x.Rhs[i])
			}
		}
	case *ast.DeclStmt:
		if gd, ok := x.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					w.expr(v, false, false)
				}
				if len(vs.Names) == len(vs.Values) {
					for i, name := range vs.Names {
						w.noteAssign(w.s.pkg.Info.Defs[name], vs.Values[i])
					}
				}
			}
		}
	case *ast.GoStmt:
		// Arguments evaluate in the spawning goroutine, at the statement.
		for _, a := range x.Call.Args {
			w.expr(a, false, false)
		}
		w.call(x.Call, true, false)
	case *ast.DeferStmt:
		for _, a := range x.Call.Args {
			w.expr(a, false, false)
		}
		w.call(x.Call, false, true)
	case *ast.ReturnStmt:
		for _, r := range x.Results {
			w.expr(r, false, false)
		}
	case *ast.IfStmt:
		w.stmt(x.Init)
		w.expr(x.Cond, false, false)
		w.stmt(x.Body)
		w.stmt(x.Else)
	case *ast.ForStmt:
		w.stmt(x.Init)
		w.expr(x.Cond, false, false)
		w.stmt(x.Body)
		w.stmt(x.Post)
	case *ast.RangeStmt:
		w.expr(x.X, false, false)
		w.stmt(x.Body)
	case *ast.SwitchStmt:
		w.stmt(x.Init)
		w.expr(x.Tag, false, false)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.TypeSwitchStmt:
		w.stmt(x.Init)
		w.stmt(x.Assign)
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CaseClause); ok {
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.SelectStmt:
		for _, c := range x.Body.List {
			if cc, ok := c.(*ast.CommClause); ok {
				w.stmt(cc.Comm)
				for _, s := range cc.Body {
					w.stmt(s)
				}
			}
		}
	case *ast.LabeledStmt:
		w.stmt(x.Stmt)
	case *ast.SendStmt:
		w.expr(x.Chan, false, false)
		w.expr(x.Value, false, false)
	case *ast.IncDecStmt:
		w.expr(x.X, false, false)
	}
}

func (w *loWalker) noteAssign(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	rhs = ast.Unparen(rhs)
	if lit, ok := rhs.(*ast.FuncLit); ok {
		w.fnAliases[obj] = w.litKey(lit)
		return
	}
	if id, ok := rhs.(*ast.Ident); ok {
		if fn, ok := w.s.pkg.Info.Uses[id].(*types.Func); ok {
			w.fnAliases[obj] = funcKeyOf(fn)
			return
		}
	}
	w.res.note(obj, rhs)
}

// litKey summarizes a func literal (once) and returns its key.
func (w *loWalker) litKey(lit *ast.FuncLit) string {
	if key, ok := w.litKeys[lit]; ok {
		return key
	}
	*w.lits++
	key := fmt.Sprintf("%s.func%d", w.sum.key, *w.lits)
	rtName := fmt.Sprintf("%s.func%d", w.sum.runtimeName, *w.lits)
	w.litKeys[lit] = key
	w.s.summarize(key, rtName, lit.Type, lit.Body, w.lits)
	return key
}

// expr walks an expression, recording lock operations and calls in
// evaluation order. Func literals are summarized separately, never
// inlined into the current event stream.
func (w *loWalker) expr(e ast.Expr, isGo, isDefer bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch x := n.(type) {
		case *ast.FuncLit:
			w.litKey(x)
			return false
		case *ast.CallExpr:
			// Walk arguments first (evaluation order), then classify the
			// call itself; Inspect would also descend into Fun/Args, so cut
			// it off and recurse manually.
			for _, a := range x.Args {
				w.expr(a, false, false)
			}
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
				w.expr(sel.X, false, false)
			}
			w.call(x, isGo, isDefer)
			return false
		}
		return true
	})
}

// call classifies one call expression: lock operation, or call event.
func (w *loWalker) call(call *ast.CallExpr, isGo, isDefer bool) {
	pkg := w.s.pkg
	if method, recv, ok := classifyLockCall(pkg, call); ok {
		if isCondType(pkg.Info.Types[recv].Type) {
			// Cond.Wait releases and reacquires L; neutral for ordering.
			return
		}
		ref, resolved := w.res.resolve(recv)
		if !resolved {
			return
		}
		switch {
		case acquireBlocking[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loAcq, lock: ref, read: readMethods[method], pos: call.Pos(), isDefer: isDefer})
		case acquireTry[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loAcq, lock: ref, read: readMethods[method], try: true, pos: call.Pos(), isDefer: isDefer})
		case releaseMethods[method]:
			w.sum.events = append(w.sum.events, loEvent{
				kind: loRel, lock: ref, read: readMethods[method], pos: call.Pos(), isDefer: isDefer})
		}
		return
	}

	ev := loEvent{kind: loCall, pos: call.Pos(), isGo: isGo, isDefer: isDefer}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			ev.calleeKey = funcKeyOf(obj)
		case *types.Var:
			if key, ok := w.fnAliases[obj]; ok {
				ev.calleeKey = key
			} else {
				ev.calleeSym = obj
			}
		default:
			return // builtin, conversion
		}
	case *ast.SelectorExpr:
		if s, ok := pkg.Info.Selections[fun]; ok && s.Kind() == types.MethodVal {
			ev.calleeKey = funcKeyOf(s.Obj().(*types.Func))
		} else if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
			ev.calleeKey = funcKeyOf(fn)
		} else {
			return
		}
	case *ast.FuncLit:
		ev.calleeKey = w.litKey(fun)
	default:
		return
	}
	for i, arg := range call.Args {
		arg = ast.Unparen(arg)
		if lit, ok := arg.(*ast.FuncLit); ok {
			ev.binds = append(ev.binds, loBind{idx: i, fnKey: w.litKey(lit)})
			continue
		}
		if id, ok := arg.(*ast.Ident); ok {
			switch obj := pkg.Info.Uses[id].(type) {
			case *types.Func:
				ev.binds = append(ev.binds, loBind{idx: i, fnKey: funcKeyOf(obj)})
				continue
			case *types.Var:
				if key, ok := w.fnAliases[obj]; ok {
					ev.binds = append(ev.binds, loBind{idx: i, fnKey: key})
					continue
				}
			}
		}
		if ref, ok := w.res.resolve(arg); ok {
			ev.binds = append(ev.binds, loBind{idx: i, lock: ref})
		}
	}
	w.sum.events = append(w.sum.events, ev)
}

// --- instantiation: bounded call-graph closure -----------------------

type frameSite struct {
	fn  *funcSummary
	pos token.Pos
}

type siteChain []frameSite // innermost first

func (c siteChain) frames(fset *token.FileSet) []EmitFrame {
	out := make([]EmitFrame, len(c))
	for i, f := range c {
		p := fset.Position(f.pos)
		out[i] = EmitFrame{Func: f.fn.runtimeName, File: shortFile(p.Filename), Line: p.Line}
	}
	return out
}

type heldLock struct {
	key  lockKey
	read bool
	site siteChain
}

type occurrence struct {
	holdSite siteChain
	acqSite  siteChain
	guards   []string
	root     string // "go:<pos>", or "fn:<key>"
	fromInst string
	toInst   string
}

type loEdge struct {
	from, to lockKey
	occs     []occurrence
}

type envVal struct {
	lock *lockKey
	fn   string
}

type loState struct {
	opts      LockOrderOptions
	fset      *token.FileSet
	summaries map[string]*funcSummary
	edges     map[[2]string]*loEdge
	// The reachability graph for the sequential-only guard; edges
	// discovered both statically and through env-resolved instantiation
	// land here.
	seqEdges  map[string][]string
	goTargets map[string]bool
	hasCaller map[string]bool
}

// AnalyzeLockOrder runs the whole-program analysis and returns the
// confirmed cycles with their call chains — the cmd/dimmunix-vet -emit
// path consumes the same result the analyzer reports from.
func AnalyzeLockOrder(prog *Program, opts LockOrderOptions) *LockOrderResult {
	opts.defaults()
	st := &loState{
		opts:      opts,
		fset:      prog.Fset,
		summaries: map[string]*funcSummary{},
		edges:     map[[2]string]*loEdge{},
		seqEdges:  map[string][]string{},
		goTargets: map[string]bool{},
		hasCaller: map[string]bool{},
	}
	for _, pkg := range prog.Packages {
		summarizePackage(pkg, st.summaries)
	}
	keys := make([]string, 0, len(st.summaries))
	for k := range st.summaries {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	// Instantiate every function as a potential entry: edges inside
	// callees are discovered through every caller's bindings (the
	// parameters of helpers like nest(outer, inner) only become concrete
	// locks at call sites).
	for _, k := range keys {
		sum := st.summaries[k]
		held := []heldLock{}
		st.instantiate(sum, map[types.Object]envVal{}, &held, nil, "fn:"+k, 0, map[string]bool{k: true})
	}
	seqOnly := st.sequentialOnly()
	return st.collectCycles(seqOnly)
}

func (st *loState) instantiate(sum *funcSummary, env map[types.Object]envVal, held *[]heldLock, stack siteChain, root string, depth int, path map[string]bool) {
	var deferred []func()
	for i := range sum.events {
		ev := &sum.events[i]
		run := func(ev *loEvent) { st.event(sum, ev, env, held, stack, root, depth, path) }
		if ev.isDefer {
			ev := ev
			deferred = append(deferred, func() { run(ev) })
			continue
		}
		run(ev)
	}
	// Deferred events run at function exit, in LIFO order: unlocks
	// release what the body still holds, deferred calls see that state.
	for i := len(deferred) - 1; i >= 0; i-- {
		deferred[i]()
	}
}

func (st *loState) event(sum *funcSummary, ev *loEvent, env map[types.Object]envVal, held *[]heldLock, stack siteChain, root string, depth int, path map[string]bool) {
	switch ev.kind {
	case loAcq:
		k, ok := resolveRef(ev.lock, env)
		if !ok {
			return
		}
		site := append(siteChain{frameSite{fn: sum, pos: ev.pos}}, stack...)
		if !ev.try {
			for _, h := range *held {
				st.addEdge(h, k, ev.read, site, *held, root)
			}
		}
		*held = append(*held, heldLock{key: k, read: ev.read, site: site})
	case loRel:
		k, ok := resolveRef(ev.lock, env)
		if !ok {
			return
		}
		for i := len(*held) - 1; i >= 0; i-- {
			if (*held)[i].key.key == k.key && (*held)[i].read == ev.read {
				*held = append((*held)[:i], (*held)[i+1:]...)
				return
			}
		}
	case loCall:
		calleeKey := ev.calleeKey
		if calleeKey == "" && ev.calleeSym != nil {
			calleeKey = env[ev.calleeSym].fn
		}
		if calleeKey == "" {
			return
		}
		// Feed the reachability graph even past the depth bound: the
		// sequential-only guard needs the full picture.
		if ev.isGo {
			st.goTargets[calleeKey] = true
		} else {
			st.seqEdges[sum.key] = append(st.seqEdges[sum.key], calleeKey)
		}
		st.hasCaller[calleeKey] = true
		callee := st.summaries[calleeKey]
		if callee == nil || depth >= st.opts.MaxCallDepth || path[calleeKey] {
			return
		}
		env2 := make(map[types.Object]envVal, len(env)+len(ev.binds))
		for k, v := range env {
			env2[k] = v
		}
		for _, b := range ev.binds {
			if b.idx >= len(callee.params) || callee.params[b.idx] == nil {
				continue
			}
			switch {
			case b.fnKey != "":
				env2[callee.params[b.idx]] = envVal{fn: b.fnKey}
			case b.fnSym != nil:
				if v, ok := env[b.fnSym]; ok {
					env2[callee.params[b.idx]] = v
				}
			case b.lock.valid():
				if k, ok := resolveRef(b.lock, env); ok {
					env2[callee.params[b.idx]] = envVal{lock: &k}
				}
			}
		}
		path[calleeKey] = true
		if ev.isGo {
			// A spawned goroutine starts with an empty stack and holds
			// nothing from its spawner.
			fresh := []heldLock{}
			st.instantiate(callee, env2, &fresh, nil, "go:"+st.fset.Position(ev.pos).String(), depth+1, path)
		} else {
			st.instantiate(callee, env2, held, append(siteChain{frameSite{fn: sum, pos: ev.pos}}, stack...), root, depth+1, path)
		}
		delete(path, calleeKey)
	}
}

func resolveRef(r symRef, env map[types.Object]envVal) (lockKey, bool) {
	if r.key != nil {
		return *r.key, true
	}
	if r.obj != nil {
		if v, ok := env[r.obj]; ok && v.lock != nil {
			return *v.lock, true
		}
	}
	return lockKey{}, false
}

func (st *loState) addEdge(h heldLock, to lockKey, read bool, acqSite siteChain, held []heldLock, root string) {
	if h.read && read {
		return // reader-reader pairs cannot form a blocking cycle
	}
	if h.key.key == to.key {
		// Self-edge: only meaningful when the instances provably differ
		// (transfer(src, dst) on two Accounts); same or unknown instance
		// is re-entry, not inversion.
		if h.key.inst == "" || to.inst == "" || h.key.inst == to.inst {
			return
		}
	}
	var guards []string
	for _, g := range held {
		if g.key.key != h.key.key {
			guards = append(guards, g.key.key)
		}
	}
	id := [2]string{h.key.key, to.key}
	e := st.edges[id]
	if e == nil {
		e = &loEdge{from: h.key, to: to}
		st.edges[id] = e
	}
	if len(e.occs) >= st.opts.MaxOccs {
		return
	}
	e.occs = append(e.occs, occurrence{
		holdSite: h.site, acqSite: acqSite, guards: guards, root: root,
		fromInst: h.key.inst, toInst: to.inst,
	})
}

// sequentialOnly computes the set of functions that only ever execute
// on the main goroutine's sequential flow: reachable from main.main via
// plain calls and NOT reachable from any go statement target or
// external entry (a function nobody in the program calls — exported
// API is conservatively concurrent).
func (st *loState) sequentialOnly() map[string]bool {
	var mains, conc []string
	for k, sum := range st.summaries {
		isMain := sum.pkg.Name == "main" && sum.runtimeName == "main.main"
		isInit := strings.HasSuffix(sum.runtimeName, ".init")
		if isMain {
			mains = append(mains, k)
		} else if !st.hasCaller[k] && !isInit && !strings.Contains(k, ".func") {
			conc = append(conc, k)
		}
	}
	for k := range st.goTargets {
		conc = append(conc, k)
	}
	reach := func(seeds []string) map[string]bool {
		seen := map[string]bool{}
		var stack []string
		for _, s := range seeds {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
		for len(stack) > 0 {
			n := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, m := range st.seqEdges[n] {
				if !seen[m] {
					seen[m] = true
					stack = append(stack, m)
				}
			}
		}
		return seen
	}
	fromMain, fromConc := reach(mains), reach(conc)
	out := map[string]bool{}
	for k := range fromMain {
		if !fromConc[k] {
			out[k] = true
		}
	}
	return out
}

// --- cycle enumeration and guards ------------------------------------

func (st *loState) collectCycles(seqOnly map[string]bool) *LockOrderResult {
	res := &LockOrderResult{}
	adj := map[string][]string{}
	nodes := map[string]bool{}
	for id := range st.edges {
		adj[id[0]] = append(adj[id[0]], id[1])
		nodes[id[0]], nodes[id[1]] = true, true
	}
	for k := range adj {
		sort.Strings(adj[k])
	}
	ordered := make([]string, 0, len(nodes))
	for n := range nodes {
		ordered = append(ordered, n)
	}
	sort.Strings(ordered)

	emit := func(cycle []string) {
		res.Candidates++
		edges := make([]*loEdge, len(cycle))
		for i := range cycle {
			edges[i] = st.edges[[2]string{cycle[i], cycle[(i+1)%len(cycle)]}]
		}
		if c, why := st.confirm(cycle, edges, seqOnly); c != nil {
			res.Cycles = append(res.Cycles, *c)
		} else if why == "guard" {
			res.SuppressedGuard++
		} else {
			res.SuppressedSeq++
		}
	}

	// Elementary cycles up to MaxCycleLen, started (and thus deduplicated)
	// at their smallest node. Self-loops are handled separately below.
	for _, start := range ordered {
		var dfs func(cur string, path []string)
		dfs = func(cur string, path []string) {
			for _, next := range adj[cur] {
				if next == start && len(path) >= 2 {
					emit(append([]string{}, path...))
					continue
				}
				if next <= start || len(path) >= st.opts.MaxCycleLen {
					continue
				}
				onPath := false
				for _, p := range path {
					if p == next {
						onPath = true
						break
					}
				}
				if !onPath {
					dfs(next, append(path, next))
				}
			}
		}
		// Self-loop (two instances of one abstract lock).
		if e, ok := st.edges[[2]string{start, start}]; ok {
			res.Candidates++
			if c, why := st.confirm([]string{start}, []*loEdge{e}, seqOnly); c != nil {
				res.Cycles = append(res.Cycles, *c)
			} else if why == "guard" {
				res.SuppressedGuard++
			} else {
				res.SuppressedSeq++
			}
		}
		dfs(start, []string{start})
	}
	return res
}

// confirm searches the occurrence combinations of a candidate cycle for
// one that survives both guards; the first surviving combination (in
// deterministic order) becomes the reported witness.
func (st *loState) confirm(cycle []string, edges []*loEdge, seqOnly map[string]bool) (*ConfirmedCycle, string) {
	cycleLocks := map[string]bool{}
	for _, n := range cycle {
		cycleLocks[n] = true
	}
	sawSeq := false
	pick := make([]int, len(edges))
	var try func(i int) *ConfirmedCycle
	try = func(i int) *ConfirmedCycle {
		if i == len(edges) {
			combo := make([]occurrence, len(edges))
			for j, e := range edges {
				combo[j] = e.occs[pick[j]]
			}
			if !st.concurrent(combo, seqOnly) {
				sawSeq = true
				return nil
			}
			if commonGuard(combo, cycleLocks) {
				return nil
			}
			return st.build(cycle, edges, combo)
		}
		for p := range edges[i].occs {
			pick[i] = p
			if c := try(i + 1); c != nil {
				return c
			}
		}
		return nil
	}
	if c := try(0); c != nil {
		return c, ""
	}
	if sawSeq {
		return nil, "seq"
	}
	return nil, "guard"
}

// concurrent reports whether the combination's edges can execute on
// distinct goroutines: suppressed only when every occurrence sits on
// the provably-sequential main flow, or when a multi-edge cycle's
// occurrences all come from one identical sequential entry (one thread
// taking both orders itself, the SameThreadCanary shape).
func (st *loState) concurrent(combo []occurrence, seqOnly map[string]bool) bool {
	allSeq := true
	for _, o := range combo {
		k, isFn := strings.CutPrefix(o.root, "fn:")
		if !isFn || !seqOnly[k] {
			allSeq = false
			break
		}
	}
	if allSeq {
		return false
	}
	if len(combo) > 1 {
		// Distinct-thread guard for non-spawned roots: a cycle whose every
		// edge comes from the same non-goroutine entry is one thread's own
		// sequential re-ordering unless that entry is reachable from a
		// spawn site (then two instances may run concurrently).
		first := combo[0].root
		same := true
		for _, o := range combo[1:] {
			if o.root != first {
				same = false
				break
			}
		}
		if same {
			if k, isFn := strings.CutPrefix(first, "fn:"); isFn && seqOnly[k] {
				return false
			}
		}
	}
	return true
}

// commonGuard reports whether some lock outside the cycle is held at
// every edge of the combination — the common dominating lock that
// serializes the would-be deadlock.
func commonGuard(combo []occurrence, cycleLocks map[string]bool) bool {
	counts := map[string]int{}
	for _, o := range combo {
		seen := map[string]bool{}
		for _, g := range o.guards {
			if !cycleLocks[g] && !seen[g] {
				seen[g] = true
				counts[g]++
			}
		}
	}
	for _, n := range counts {
		if n == len(combo) {
			return true
		}
	}
	return false
}

func (st *loState) build(cycle []string, edges []*loEdge, combo []occurrence) *ConfirmedCycle {
	c := &ConfirmedCycle{}
	for i, e := range edges {
		o := combo[i]
		c.Locks = append(c.Locks, e.from.desc)
		c.Edges = append(c.Edges, CycleEdge{
			From:      e.from.desc,
			To:        e.to.desc,
			HoldStack: o.holdSite.frames(st.fset),
			AcqStack:  o.acqSite.frames(st.fset),
			holdPos:   o.holdSite[0].pos,
			acqPos:    o.acqSite[0].pos,
		})
	}
	return c
}
