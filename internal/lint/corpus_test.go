package lint

import "testing"

// TestLockOrderCorpus drives the headline analyzer over the
// simapp-derived fixtures: the two-lock inversion (package vars and
// struct fields), the three-lock cycle whose edge spans two functions,
// the guarded and same-thread sound-negative controls, and the
// directive-suppressed reproduction.
func TestLockOrderCorpus(t *testing.T) {
	for _, name := range []string{
		"lockorder_basic",
		"lockorder_fields",
		"lockorder_chain3",
		"lockorder_guarded",
		"lockorder_samethread",
		"lockorder_ignored",
	} {
		t.Run(name, func(t *testing.T) {
			RunCorpus(t, []*Analyzer{LockOrder}, ".", FixturePath(name))
		})
	}
}

func TestCopyLockCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{CopyLock}, ".", FixturePath("copylock"))
}

func TestUnlockCheckCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{UnlockCheck}, ".", FixturePath("unlockcheck"))
}

func TestCondLoopCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{CondLoop}, ".", FixturePath("condloop"))
}

// TestLockOrderSuppressionStats pins the guard machinery itself: the
// controls must be suppressed as candidates, not invisible to the graph.
func TestLockOrderSuppressionStats(t *testing.T) {
	for _, tc := range []struct {
		fixture string
		check   func(*LockOrderResult) (string, bool)
	}{
		{"lockorder_guarded", func(r *LockOrderResult) (string, bool) {
			return "SuppressedGuard", r.SuppressedGuard > 0
		}},
		{"lockorder_samethread", func(r *LockOrderResult) (string, bool) {
			return "SuppressedSeq", r.SuppressedSeq > 0
		}},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			prog, err := Load(Options{Dir: "."}, FixturePath(tc.fixture))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res := AnalyzeLockOrder(prog, LockOrderOptions{})
			if len(res.Cycles) != 0 {
				t.Fatalf("control fixture produced cycles: %+v", res.Cycles)
			}
			if res.Candidates == 0 {
				t.Fatalf("control fixture produced no candidates; the inversion was not even seen")
			}
			if field, ok := tc.check(res); !ok {
				t.Fatalf("expected %s > 0, got %+v", field, res)
			}
		})
	}
}
