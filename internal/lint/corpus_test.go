package lint

import (
	"strings"
	"testing"
)

// TestLockOrderCorpus drives the headline analyzer over the
// simapp-derived fixtures: the two-lock inversion (package vars and
// struct fields), the three-lock cycle whose edge spans two functions,
// the guarded and same-thread sound-negative controls, and the
// directive-suppressed reproduction.
func TestLockOrderCorpus(t *testing.T) {
	for _, name := range []string{
		"lockorder_basic",
		"lockorder_fields",
		"lockorder_chain3",
		"lockorder_guarded",
		"lockorder_samethread",
		"lockorder_ignored",
		"lockorder_iface",
		"lockorder_rwmutex",
		"lockorder_instsplit",
		"lockorder_chanpayload",
	} {
		t.Run(name, func(t *testing.T) {
			RunCorpus(t, []*Analyzer{LockOrder}, ".", FixturePath(name))
		})
	}
}

func TestChanCycleCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{ChanCycle}, ".", FixturePath("chancycle"))
}

func TestCopyLockCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{CopyLock}, ".", FixturePath("copylock"))
}

func TestUnlockCheckCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{UnlockCheck}, ".", FixturePath("unlockcheck"))
}

func TestUnlockCheckClosureCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{UnlockCheck}, ".", FixturePath("unlockcheck_closure"))
}

func TestCondLoopCorpus(t *testing.T) {
	RunCorpus(t, []*Analyzer{CondLoop}, ".", FixturePath("condloop"))
}

// TestLockOrderSuppressionStats pins the guard machinery itself: the
// controls must be suppressed as candidates, not invisible to the graph.
func TestLockOrderSuppressionStats(t *testing.T) {
	for _, tc := range []struct {
		fixture string
		check   func(*LockOrderResult) (string, bool)
	}{
		{"lockorder_guarded", func(r *LockOrderResult) (string, bool) {
			return "SuppressedGuard", r.SuppressedGuard > 0
		}},
		{"lockorder_samethread", func(r *LockOrderResult) (string, bool) {
			return "SuppressedSeq", r.SuppressedSeq > 0
		}},
		{"lockorder_instsplit", func(r *LockOrderResult) (string, bool) {
			return "SuppressedCtx", r.SuppressedCtx > 0
		}},
	} {
		t.Run(tc.fixture, func(t *testing.T) {
			prog, err := Load(Options{Dir: "."}, FixturePath(tc.fixture))
			if err != nil {
				t.Fatalf("load: %v", err)
			}
			res := AnalyzeLockOrder(prog, LockOrderOptions{})
			if len(res.Cycles) != 0 {
				t.Fatalf("control fixture produced cycles: %+v", res.Cycles)
			}
			if res.Candidates == 0 {
				t.Fatalf("control fixture produced no candidates; the inversion was not even seen")
			}
			if field, ok := tc.check(res); !ok {
				t.Fatalf("expected %s > 0, got %+v", field, res)
			}
		})
	}
}

// TestLockOrderRWMutexStats pins the edge-mode semantics: the
// reader-reader pair is a candidate suppressed by the rw guard while
// the writer/reader pair survives as the fixture's single report.
func TestLockOrderRWMutexStats(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_rwmutex"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := AnalyzeLockOrder(prog, LockOrderOptions{})
	if len(res.Cycles) != 1 {
		t.Fatalf("want exactly the writer/reader cycle, got %d: %+v", len(res.Cycles), res.Cycles)
	}
	if res.SuppressedRW == 0 {
		t.Fatalf("reader-reader pair was not suppressed by the rw guard: %+v", res)
	}
}

// TestLockOrderCtxWidening pins the -ctx escape hatch: without
// allocation-site contexts the instsplit fixture's helper collapses to
// a self-edge inversion (the pre-context behavior), with them it is
// silent.
func TestLockOrderCtxWidening(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_instsplit"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if res := AnalyzeLockOrder(prog, LockOrderOptions{}); len(res.Cycles) != 0 {
		t.Fatalf("ctx-refined analysis reported the disjoint instances: %+v", res.Cycles)
	}
	if res := AnalyzeLockOrder(prog, LockOrderOptions{NoCtx: true}); len(res.Cycles) == 0 {
		t.Fatalf("NoCtx analysis should widen back to the type-keyed self-edge")
	}
}

// TestLockOrderAltRoots pins report dedup: the same normalized cycle
// realized from several entries (direct caller, main's sequential
// call, the served goroutine) is ONE report carrying the alternate
// entry chains as related information.
func TestLockOrderAltRoots(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("lockorder_chanpayload"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := AnalyzeLockOrder(prog, LockOrderOptions{})
	if len(res.Cycles) != 1 {
		t.Fatalf("want the inversion deduplicated onto one report, got %d: %+v", len(res.Cycles), res.Cycles)
	}
	c := res.Cycles[0]
	if len(c.AltRoots) == 0 {
		t.Fatalf("report lost its alternate entry chains: %+v", c)
	}
	if msg := c.Diagnostic().Message; !strings.Contains(msg, "also reachable via") {
		t.Fatalf("diagnostic does not surface the alternates: %s", msg)
	}
}

// TestChanCycleStats: the fixture's free pair and self-paired flows
// must be suppressed (or never form cycles), leaving one confirmed
// mixed cycle whose lowering has a stack per lock edge.
func TestChanCycleStats(t *testing.T) {
	prog, err := Load(Options{Dir: "."}, FixturePath("chancycle"))
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := AnalyzeChanCycle(prog, LockOrderOptions{})
	if len(res.Diags) != 1 {
		t.Fatalf("want 1 mixed-cycle diagnostic, got %d: %+v", len(res.Diags), res.Diags)
	}
	if res.SuppressedRoot == 0 {
		t.Fatalf("selfPaired flow was not suppressed by the distinct-root guard: %+v", res)
	}
	if len(res.Cycles) != 1 || len(res.Cycles[0].Edges) < 2 {
		t.Fatalf("lowered cycle missing or too thin for -emit: %+v", res.Cycles)
	}
}
