package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, typechecked package.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	// Files are the parsed sources: GoFiles, plus in-package test files
	// when Options.Tests is set.
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects soft typecheck errors (the package is still
	// analyzed as far as the checker got).
	TypeErrors []error
}

// Program is a loaded set of packages sharing one FileSet.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
}

// Options configure Load.
type Options struct {
	// Dir is the working directory for `go list` (the module root, or
	// any directory inside it). Empty means the current directory.
	Dir string
	// Tests includes in-package _test.go files in each target package.
	// External (_test package) files are not loaded: their export data
	// is never produced, so they cannot be typechecked offline.
	Tests bool
}

// listPkg is the subset of `go list -json` output the loader reads.
type listPkg struct {
	ImportPath  string
	Name        string
	Dir         string
	Export      string
	GoFiles     []string
	CgoFiles    []string
	TestGoFiles []string
	Standard    bool
	DepOnly     bool
	ForTest     string
	Incomplete  bool
	Error       *struct{ Err string }
}

// Load lists patterns with the go tool, then parses and typechecks each
// matched package from source against the compiled export data of its
// dependencies. This works fully offline: `go list -export` materializes
// the dependency exports in the build cache, and go/importer's gc
// lookup mode reads them back, so no network or GOPATH download is ever
// needed.
func Load(opts Options, patterns ...string) (*Program, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := []string{"list", "-e", "-export", "-deps", "-json"}
	if opts.Tests {
		args = append(args, "-test")
	}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = opts.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}

	exports := map[string]string{} // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decode: %w", err)
		}
		if p.Export != "" {
			// Test variants ("p [p.test]") shadow the plain package with a
			// test-augmented export; prefer the plain one, fall back to the
			// variant so test-only dependencies still resolve.
			key := p.ImportPath
			if i := strings.Index(key, " ["); i >= 0 {
				key = key[:i]
			}
			if _, ok := exports[key]; !ok || p.ForTest == "" {
				exports[key] = p.Export
			}
		}
		if p.DepOnly || p.Standard || p.ForTest != "" ||
			strings.HasSuffix(p.ImportPath, ".test") || p.Name == "" {
			continue
		}
		pc := p
		targets = append(targets, &pc)
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	lookup := func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(f)
	}
	imp := importer.ForCompiler(fset, "gc", lookup)

	prog := &Program{Fset: fset}
	for _, t := range targets {
		pkg, err := typecheck(fset, imp, t, opts.Tests)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", t.ImportPath, err)
		}
		if pkg != nil {
			prog.Packages = append(prog.Packages, pkg)
		}
	}
	return prog, nil
}

func typecheck(fset *token.FileSet, imp types.Importer, t *listPkg, tests bool) (*Package, error) {
	names := append([]string{}, t.GoFiles...)
	if tests {
		names = append(names, t.TestGoFiles...)
	}
	if len(names) == 0 || len(t.CgoFiles) > 0 {
		// Nothing to analyze, or cgo (whose generated sources we cannot
		// reproduce offline) — skip rather than fail the whole load.
		return nil, nil
	}
	var files []*ast.File
	for _, name := range names {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{
		PkgPath: t.ImportPath,
		Name:    t.Name,
		Dir:     t.Dir,
		Fset:    fset,
		Files:   files,
		Info: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on (soft) errors; analyzers work
	// with whatever type information survived.
	tp, _ := conf.Check(t.ImportPath, fset, files, pkg.Info)
	pkg.Types = tp
	return pkg, nil
}

// FirstTypeError returns the first soft typecheck error across the
// program, or nil. The corpus runner uses it to fail fast on broken
// fixtures instead of chasing phantom diagnostics.
func (p *Program) FirstTypeError() error {
	for _, pkg := range p.Packages {
		if len(pkg.TypeErrors) > 0 {
			return fmt.Errorf("%s: %v", pkg.PkgPath, pkg.TypeErrors[0])
		}
	}
	return nil
}
