package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Lock-method vocabulary shared by the analyzers. The dimmunix drop-in
// surface, the core runtime API, and plain sync types all funnel into
// the same acquire/release classification.
var (
	acquireBlocking = map[string]bool{
		"Lock": true, "LockT": true, "LockCtx": true, "LockCtxT": true,
		"LockTimeout": true, "LockTimeoutT": true, "MustLock": true,
		"RLock": true, "RLockT": true, "RLockCtx": true, "RLockCtxT": true,
		"RLockTimeout": true, "RLockTimeoutT": true,
	}
	acquireTry = map[string]bool{
		"TryLock": true, "TryLockT": true, "TryRLock": true, "TryRLockT": true,
	}
	releaseMethods = map[string]bool{
		"Unlock": true, "UnlockT": true, "MustUnlock": true,
		"UnlockHandoff": true, "UnlockHandoffT": true,
		"RUnlock": true, "RUnlockT": true, "RUnlockHandoff": true, "RUnlockHandoffT": true,
	}
	readMethods = map[string]bool{
		"RLock": true, "RLockT": true, "RLockCtx": true, "RLockCtxT": true,
		"RLockTimeout": true, "RLockTimeoutT": true,
		"TryRLock": true, "TryRLockT": true,
		"RUnlock": true, "RUnlockT": true, "RUnlockHandoff": true, "RUnlockHandoffT": true,
	}
)

// lockTypeName reports whether named is one of the lock types the
// analyzers track, returning a short display name ("dimmunix.Mutex",
// "sync.RWMutex", ...).
func lockTypeName(named *types.Named) (string, bool) {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	switch pkg {
	case "sync":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "sync." + name, true
		}
	case "dimmunix":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "dimmunix." + name, true
		}
	case "dimmunix/internal/core":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "core." + name, true
		}
	}
	return "", false
}

// isLockType unwraps pointers and aliases (dimmunix.CoreMutex =
// core.Mutex materializes as a types.Alias) and reports whether t is (a
// pointer to) a tracked lock type.
func isLockType(t types.Type) (string, bool) {
	for {
		t = types.Unalias(t)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return lockTypeName(named)
	}
	return "", false
}

// isCondType reports whether t is (a pointer to) a tracked Cond.
func isCondType(t types.Type) bool {
	name, ok := isLockType(t)
	return ok && (name == "sync.Cond" || name == "dimmunix.Cond" || name == "core.Cond")
}

// isWaitGroupType reports whether t is (a pointer to) sync.WaitGroup.
func isWaitGroupType(t types.Type) bool {
	for {
		t = types.Unalias(t)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}

// isChanType reports whether t is a channel type.
func isChanType(t types.Type) bool {
	_, ok := types.Unalias(t).Underlying().(*types.Chan)
	return ok
}

// lockerInterface reports whether iface is a pure locker interface —
// every method is in the lock vocabulary (sync.Locker = {Lock, Unlock},
// read-locker variants, ...). Calls through such an interface are lock
// operations on the receiver's identity, not dynamic dispatch to be
// resolved: a sync.Locker field IS the lock.
func lockerInterface(iface *types.Interface) bool {
	if iface.NumMethods() == 0 {
		return false
	}
	for i := 0; i < iface.NumMethods(); i++ {
		name := iface.Method(i).Name()
		if !acquireBlocking[name] && !acquireTry[name] && !releaseMethods[name] {
			return false
		}
	}
	return true
}

// lockKey is the abstract identity of one lock. Struct fields are
// instance-abstracted ("every InversionLab.a is one node"), so the
// instance hint disambiguates self-edges: transfer(src, dst) holding
// src.mu while taking dst.mu is a genuine Account.mu -> Account.mu
// cycle precisely because the instances differ.
type lockKey struct {
	key  string // canonical identity (graph node)
	desc string // operator-facing name
	inst string // instance hint within the enclosing function ("" = unknown)
	pos  token.Pos
	// widened marks a type-keyed fallback identity whose base object was
	// refinable (a parameter that callers could bind to an allocation
	// site) but had no binding in this instantiation. Widened self-edges
	// are suppressed when refined contexts exist elsewhere in the graph.
	widened bool
}

func (k lockKey) withInst(inst string) lockKey { k.inst = inst; return k }

// payloadRef names the lock(s) carried over a channel: "whatever was
// sent on chanKey" (field selects one struct field of the payload).
// The concrete lock keys are bound through the program-wide payload
// table collected from the send sites.
type payloadRef struct {
	chanKey string
	field   string
}

// symRef is a lock reference in a function summary: concrete (key),
// symbolic (obj — a parameter or captured variable bound at
// instantiation time through the env), a channel payload (bound
// through the send-site table), or an allocation carrier (site — a
// local holding a known allocation, passed to callees so their field
// identities refine). key+obj together mean a refinable field: the
// type-keyed key is the widening fallback, obj the base whose env
// binding may carry an allocation-site context.
type symRef struct {
	key     *lockKey
	obj     types.Object
	payload *payloadRef
	site    string
}

func concrete(k lockKey) symRef      { return symRef{key: &k} }
func symbolic(o types.Object) symRef { return symRef{obj: o} }
func (r symRef) valid() bool {
	return r.key != nil || r.obj != nil || r.payload != nil || r.site != ""
}

// lockResolver resolves lock receiver expressions to symRefs inside one
// function walk. It consults a per-function single-assignment alias map
// so `mu := &s.mu; mu.Lock()` resolves to the field identity.
type lockResolver struct {
	pkg     *Package
	aliases map[types.Object]symRef // locals aliasing locks (single assignment)
	poison  map[types.Object]bool   // reassigned locals: unresolvable
	// ctx enables one level of allocation-site context on field
	// identities: with `a := &S{}`, a.mu becomes a distinct node from
	// another allocation's S.mu (the type-keyed identity is the
	// widening fallback when the base allocation is unknown).
	ctx        bool
	allocSites map[types.Object]string // locals holding a known allocation
	recvChans  map[types.Object]string // locals received from a channel (key = chan identity)
}

func newLockResolver(pkg *Package, ctx bool) *lockResolver {
	return &lockResolver{
		pkg:        pkg,
		aliases:    map[types.Object]symRef{},
		poison:     map[types.Object]bool{},
		ctx:        ctx,
		allocSites: map[types.Object]string{},
		recvChans:  map[types.Object]string{},
	}
}

// fresh reports whether obj can take a first (and only) binding;
// re-binding poisons the local as unresolvable.
func (lr *lockResolver) fresh(obj types.Object) bool {
	if obj == nil {
		return false
	}
	_, seenAlias := lr.aliases[obj]
	_, seenAlloc := lr.allocSites[obj]
	_, seenRecv := lr.recvChans[obj]
	if seenAlias || seenAlloc || seenRecv || lr.poison[obj] {
		lr.poison[obj] = true
		delete(lr.aliases, obj)
		delete(lr.allocSites, obj)
		delete(lr.recvChans, obj)
		return false
	}
	return true
}

// noteRecv records that obj holds a value received from the channel
// identified by chKey (`for o := range ch`, select bindings).
func (lr *lockResolver) noteRecv(obj types.Object, chKey string) {
	if lr.fresh(obj) {
		lr.recvChans[obj] = chKey
	}
}

// note records `obj := rhs` for alias resolution.
func (lr *lockResolver) note(obj types.Object, rhs ast.Expr) {
	if !lr.fresh(obj) {
		return
	}
	rhs = ast.Unparen(rhs)
	// `v := <-ch`: v is the payload of ch; its lock (fields) resolve
	// through the send-site table.
	if un, ok := rhs.(*ast.UnaryExpr); ok && un.Op == token.ARROW {
		if ref, ok := lr.resolve(un.X); ok && ref.key != nil {
			lr.recvChans[obj] = ref.key.key
		}
		return
	}
	if ref, ok := lr.resolve(rhs); ok {
		lr.aliases[obj] = ref
		return
	}
	if site, ok := lr.allocSite(rhs); ok {
		lr.allocSites[obj] = site
	}
}

// allocSite recognizes `&T{...}`, `T{...}`, and `new(T)` for struct
// types: a known allocation whose identity can refine field locks.
func (lr *lockResolver) allocSite(e ast.Expr) (string, bool) {
	if !lr.ctx {
		return "", false
	}
	e = ast.Unparen(e)
	if un, ok := e.(*ast.UnaryExpr); ok && un.Op == token.AND {
		e = ast.Unparen(un.X)
	}
	switch x := e.(type) {
	case *ast.CompositeLit:
		if _, isStruct := types.Unalias(lr.pkg.Info.Types[x].Type).Underlying().(*types.Struct); isStruct {
			p := lr.pkg.Fset.Position(x.Pos())
			return fmt.Sprintf("%s:%d:%d", shortFile(p.Filename), p.Line, p.Column), true
		}
	case *ast.CallExpr:
		if isBuiltinCall(lr.pkg, x, "new") {
			p := lr.pkg.Fset.Position(x.Pos())
			return fmt.Sprintf("%s:%d:%d", shortFile(p.Filename), p.Line, p.Column), true
		}
	}
	return "", false
}

// isBuiltinCall reports whether call invokes the named builtin.
func isBuiltinCall(pkg *Package, call *ast.CallExpr, name string) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pkg.Info.Uses[id].(*types.Builtin)
	return ok
}

// resolve maps a lock-valued expression to its abstract identity.
func (lr *lockResolver) resolve(e ast.Expr) (symRef, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lr.resolve(x.X)
		}
	case *ast.StarExpr:
		return lr.resolve(x.X)
	case *ast.Ident:
		obj := lr.pkg.Info.Uses[x]
		if obj == nil {
			obj = lr.pkg.Info.Defs[x]
		}
		if obj == nil || lr.poison[obj] {
			return symRef{}, false
		}
		if ref, ok := lr.aliases[obj]; ok {
			return ref, true
		}
		if ch, ok := lr.recvChans[obj]; ok {
			// The whole payload is the lock: `m := <-ch; m.Lock()`.
			return symRef{payload: &payloadRef{chanKey: ch}}, true
		}
		if site, ok := lr.allocSites[obj]; ok {
			// Not itself a lock: an allocation carrier. Passing it to a
			// callee binds the callee's parameter to this allocation site,
			// refining the callee's field lock identities.
			return symRef{obj: obj, site: site}, true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return symRef{}, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level lock variable: one global node.
			return concrete(lockKey{
				key:  "var " + v.Pkg().Path() + "." + v.Name(),
				desc: v.Pkg().Name() + "." + v.Name(),
				pos:  v.Pos(),
			}), true
		}
		if v.IsField() {
			return symRef{}, false
		}
		// Local or parameter: symbolic, bound through the env when this
		// function is instantiated from a call site (parameters), or a
		// storage-local lock/WaitGroup value (`var mu sync.Mutex`).
		_, isLock := isLockType(v.Type())
		if isLock || isWaitGroupType(v.Type()) {
			if _, ptr := v.Type().(*types.Pointer); !ptr {
				// The local IS the storage: a distinct lock per activation,
				// identified by its declaration.
				p := lr.pkg.Fset.Position(v.Pos())
				return concrete(lockKey{
					key:  fmt.Sprintf("local %s@%s:%d", v.Name(), p.Filename, p.Line),
					desc: v.Name(),
					inst: "local:" + v.Name(),
					pos:  v.Pos(),
				}), true
			}
		}
		return symbolic(v), true
	case *ast.SelectorExpr:
		// Field of a channel payload: `o := <-ch; o.outer.Lock()` —
		// the field identity routes through the send-site table.
		if base := baseIdentObj(lr.pkg, x.X); base != nil {
			if ch, ok := lr.recvChans[base]; ok {
				return symRef{payload: &payloadRef{chanKey: ch, field: x.Sel.Name}}, true
			}
		}
		// Field chain: identify by the declaring struct type + field name,
		// abstracting over instances. The instance hint is the textual
		// base expression, scoped to this function; when the base is a
		// known allocation and ctx is on, the allocation site joins the
		// identity itself, splitting per-instance nodes.
		if sel, ok := lr.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			f := sel.Obj().(*types.Var)
			ownerKey, ownerDesc := "?", "?"
			if named := namedOwner(sel.Recv()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil {
					ownerKey = obj.Pkg().Path() + "." + obj.Name()
					ownerDesc = obj.Pkg().Name() + "." + obj.Name()
				} else {
					ownerKey, ownerDesc = obj.Name(), obj.Name()
				}
			}
			k := lockKey{
				key:  "field " + ownerKey + "." + f.Name(),
				desc: ownerDesc + "." + f.Name(),
				inst: exprString(x.X),
				pos:  x.Sel.Pos(),
			}
			if base := baseIdentObj(lr.pkg, x.X); base != nil {
				if site, ok := lr.allocSites[base]; lr.ctx && ok {
					// Known allocation in this function: refine directly.
					k.key += "@" + site
					k.desc += "@" + site
					return concrete(k), true
				}
				if v, isVar := base.(*types.Var); isVar && !v.IsField() &&
					!(v.Pkg() != nil && v.Parent() == v.Pkg().Scope()) {
					// Base is a parameter or local a caller may bind to an
					// allocation site: refinable, with k as the type-keyed
					// widening fallback.
					return symRef{key: &k, obj: base}, true
				}
			}
			return concrete(k), true
		}
		// Package-qualified var: pkg.Mu
		if obj := lr.pkg.Info.Uses[x.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return concrete(lockKey{
					key:  "var " + v.Pkg().Path() + "." + v.Name(),
					desc: v.Pkg().Name() + "." + v.Name(),
					pos:  v.Pos(),
				}), true
			}
		}
	case *ast.IndexExpr:
		// All elements of one container are a single abstract node.
		if base, ok := lr.resolve(x.X); ok && base.key != nil {
			k := *base.key
			k.key += "[elem]"
			k.desc += "[i]"
			k.inst = exprString(x)
			return concrete(k), true
		}
	case *ast.CallExpr:
		// make(chan T, n): the channel's identity is its allocation site,
		// stable program-wide for the wait-for graph.
		if isBuiltinCall(lr.pkg, x, "make") && isChanType(lr.pkg.Info.Types[e].Type) {
			p := lr.pkg.Fset.Position(e.Pos())
			return concrete(lockKey{
				key:  fmt.Sprintf("chan@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				desc: fmt.Sprintf("chan@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				pos:  e.Pos(),
			}), true
		}
		// A call returning a lock pointer is an allocation site
		// (rt.NewMutex(), NewThing().mu chains are handled above).
		if _, ok := isLockType(lr.pkg.Info.Types[e].Type); ok {
			p := lr.pkg.Fset.Position(e.Pos())
			return concrete(lockKey{
				key:  fmt.Sprintf("alloc@%s:%d:%d", p.Filename, p.Line, p.Column),
				desc: fmt.Sprintf("lock@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				pos:  e.Pos(),
			}), true
		}
	case *ast.CompositeLit:
		if _, ok := isLockType(lr.pkg.Info.Types[e].Type); ok {
			p := lr.pkg.Fset.Position(e.Pos())
			return concrete(lockKey{
				key:  fmt.Sprintf("alloc@%s:%d:%d", p.Filename, p.Line, p.Column),
				desc: fmt.Sprintf("lock@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				pos:  e.Pos(),
			}), true
		}
	}
	return symRef{}, false
}

// baseIdentObj returns the object of the base identifier of e
// (unwrapping parens, derefs, and address-of), or nil when the base is
// not a simple identifier.
func baseIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		e = ast.Unparen(e)
		switch x := e.(type) {
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.Ident:
			if obj := pkg.Info.Uses[x]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[x]
		default:
			return nil
		}
	}
}

// namedOwner walks to the named struct type that declares a field.
func namedOwner(t types.Type) *types.Named {
	for {
		switch x := types.Unalias(t).(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// exprString renders a small expression for instance hints.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "?"
}

// classifyLockCall inspects a call expression; if it is a method call
// on a tracked lock type it returns the method name and receiver expr.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", nil, false
	}
	// Calls through a pure locker interface (sync.Locker and friends)
	// are lock operations on the receiver identity itself — the field
	// holding the Locker IS the lock node.
	if iface, isIface := types.Unalias(s.Recv()).Underlying().(*types.Interface); isIface {
		name := s.Obj().Name()
		if lockerInterface(iface) && (acquireBlocking[name] || acquireTry[name] || releaseMethods[name]) {
			return name, sel.X, true
		}
		return "", nil, false
	}
	if _, isLock := isLockType(s.Recv()); !isLock {
		return "", nil, false
	}
	return s.Obj().Name(), sel.X, true
}
