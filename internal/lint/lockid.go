package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Lock-method vocabulary shared by the analyzers. The dimmunix drop-in
// surface, the core runtime API, and plain sync types all funnel into
// the same acquire/release classification.
var (
	acquireBlocking = map[string]bool{
		"Lock": true, "LockT": true, "LockCtx": true, "LockCtxT": true,
		"LockTimeout": true, "LockTimeoutT": true, "MustLock": true,
		"RLock": true, "RLockT": true, "RLockCtx": true, "RLockCtxT": true,
		"RLockTimeout": true, "RLockTimeoutT": true,
	}
	acquireTry = map[string]bool{
		"TryLock": true, "TryLockT": true, "TryRLock": true, "TryRLockT": true,
	}
	releaseMethods = map[string]bool{
		"Unlock": true, "UnlockT": true, "MustUnlock": true,
		"UnlockHandoff": true, "UnlockHandoffT": true,
		"RUnlock": true, "RUnlockT": true, "RUnlockHandoff": true, "RUnlockHandoffT": true,
	}
	readMethods = map[string]bool{
		"RLock": true, "RLockT": true, "RLockCtx": true, "RLockCtxT": true,
		"RLockTimeout": true, "RLockTimeoutT": true,
		"TryRLock": true, "TryRLockT": true,
		"RUnlock": true, "RUnlockT": true, "RUnlockHandoff": true, "RUnlockHandoffT": true,
	}
)

// lockTypeName reports whether named is one of the lock types the
// analyzers track, returning a short display name ("dimmunix.Mutex",
// "sync.RWMutex", ...).
func lockTypeName(named *types.Named) (string, bool) {
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	pkg, name := obj.Pkg().Path(), obj.Name()
	switch pkg {
	case "sync":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "sync." + name, true
		}
	case "dimmunix":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "dimmunix." + name, true
		}
	case "dimmunix/internal/core":
		switch name {
		case "Mutex", "RWMutex", "Cond":
			return "core." + name, true
		}
	}
	return "", false
}

// isLockType unwraps pointers and aliases (dimmunix.CoreMutex =
// core.Mutex materializes as a types.Alias) and reports whether t is (a
// pointer to) a tracked lock type.
func isLockType(t types.Type) (string, bool) {
	for {
		t = types.Unalias(t)
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
			continue
		}
		break
	}
	if named, ok := t.(*types.Named); ok {
		return lockTypeName(named)
	}
	return "", false
}

// isCondType reports whether t is (a pointer to) a tracked Cond.
func isCondType(t types.Type) bool {
	name, ok := isLockType(t)
	return ok && (name == "sync.Cond" || name == "dimmunix.Cond" || name == "core.Cond")
}

// lockKey is the abstract identity of one lock. Struct fields are
// instance-abstracted ("every InversionLab.a is one node"), so the
// instance hint disambiguates self-edges: transfer(src, dst) holding
// src.mu while taking dst.mu is a genuine Account.mu -> Account.mu
// cycle precisely because the instances differ.
type lockKey struct {
	key  string // canonical identity (graph node)
	desc string // operator-facing name
	inst string // instance hint within the enclosing function ("" = unknown)
	pos  token.Pos
}

func (k lockKey) withInst(inst string) lockKey { k.inst = inst; return k }

// symRef is a lock reference in a function summary: either concrete
// (key) or symbolic (obj — a parameter or captured variable bound at
// instantiation time through the env).
type symRef struct {
	key *lockKey
	obj types.Object
}

func concrete(k lockKey) symRef      { return symRef{key: &k} }
func symbolic(o types.Object) symRef { return symRef{obj: o} }
func (r symRef) valid() bool         { return r.key != nil || r.obj != nil }

// lockResolver resolves lock receiver expressions to symRefs inside one
// function walk. It consults a per-function single-assignment alias map
// so `mu := &s.mu; mu.Lock()` resolves to the field identity.
type lockResolver struct {
	pkg     *Package
	aliases map[types.Object]symRef // locals aliasing locks (single assignment)
	poison  map[types.Object]bool   // reassigned locals: unresolvable
}

func newLockResolver(pkg *Package) *lockResolver {
	return &lockResolver{
		pkg:     pkg,
		aliases: map[types.Object]symRef{},
		poison:  map[types.Object]bool{},
	}
}

// note records `obj := rhs` for alias resolution.
func (lr *lockResolver) note(obj types.Object, rhs ast.Expr) {
	if obj == nil {
		return
	}
	if _, seen := lr.aliases[obj]; seen || lr.poison[obj] {
		lr.poison[obj] = true
		delete(lr.aliases, obj)
		return
	}
	if ref, ok := lr.resolve(rhs); ok {
		lr.aliases[obj] = ref
	}
}

// resolve maps a lock-valued expression to its abstract identity.
func (lr *lockResolver) resolve(e ast.Expr) (symRef, bool) {
	e = ast.Unparen(e)
	switch x := e.(type) {
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			return lr.resolve(x.X)
		}
	case *ast.StarExpr:
		return lr.resolve(x.X)
	case *ast.Ident:
		obj := lr.pkg.Info.Uses[x]
		if obj == nil {
			obj = lr.pkg.Info.Defs[x]
		}
		if obj == nil || lr.poison[obj] {
			return symRef{}, false
		}
		if ref, ok := lr.aliases[obj]; ok {
			return ref, true
		}
		v, ok := obj.(*types.Var)
		if !ok {
			return symRef{}, false
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			// Package-level lock variable: one global node.
			return concrete(lockKey{
				key:  "var " + v.Pkg().Path() + "." + v.Name(),
				desc: v.Pkg().Name() + "." + v.Name(),
				pos:  v.Pos(),
			}), true
		}
		if v.IsField() {
			return symRef{}, false
		}
		// Local or parameter: symbolic, bound through the env when this
		// function is instantiated from a call site (parameters), or a
		// storage-local lock value (`var mu sync.Mutex`).
		if _, isLock := isLockType(v.Type()); isLock {
			if _, ptr := v.Type().(*types.Pointer); !ptr {
				// The local IS the storage: a distinct lock per activation,
				// identified by its declaration.
				p := lr.pkg.Fset.Position(v.Pos())
				return concrete(lockKey{
					key:  fmt.Sprintf("local %s@%s:%d", v.Name(), p.Filename, p.Line),
					desc: v.Name(),
					inst: "local:" + v.Name(),
					pos:  v.Pos(),
				}), true
			}
		}
		return symbolic(v), true
	case *ast.SelectorExpr:
		// Field chain: identify by the declaring struct type + field name,
		// abstracting over instances. The instance hint is the textual
		// base expression, scoped to this function.
		if sel, ok := lr.pkg.Info.Selections[x]; ok && sel.Kind() == types.FieldVal {
			f := sel.Obj().(*types.Var)
			ownerKey, ownerDesc := "?", "?"
			if named := namedOwner(sel.Recv()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil {
					ownerKey = obj.Pkg().Path() + "." + obj.Name()
					ownerDesc = obj.Pkg().Name() + "." + obj.Name()
				} else {
					ownerKey, ownerDesc = obj.Name(), obj.Name()
				}
			}
			return concrete(lockKey{
				key:  "field " + ownerKey + "." + f.Name(),
				desc: ownerDesc + "." + f.Name(),
				inst: exprString(x.X),
				pos:  x.Sel.Pos(),
			}), true
		}
		// Package-qualified var: pkg.Mu
		if obj := lr.pkg.Info.Uses[x.Sel]; obj != nil {
			if v, ok := obj.(*types.Var); ok && v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
				return concrete(lockKey{
					key:  "var " + v.Pkg().Path() + "." + v.Name(),
					desc: v.Pkg().Name() + "." + v.Name(),
					pos:  v.Pos(),
				}), true
			}
		}
	case *ast.IndexExpr:
		// All elements of one container are a single abstract node.
		if base, ok := lr.resolve(x.X); ok && base.key != nil {
			k := *base.key
			k.key += "[elem]"
			k.desc += "[i]"
			k.inst = exprString(x)
			return concrete(k), true
		}
	case *ast.CallExpr:
		// A call returning a lock pointer is an allocation site
		// (rt.NewMutex(), NewThing().mu chains are handled above).
		if _, ok := isLockType(lr.pkg.Info.Types[e].Type); ok {
			p := lr.pkg.Fset.Position(e.Pos())
			return concrete(lockKey{
				key:  fmt.Sprintf("alloc@%s:%d:%d", p.Filename, p.Line, p.Column),
				desc: fmt.Sprintf("lock@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				pos:  e.Pos(),
			}), true
		}
	case *ast.CompositeLit:
		if _, ok := isLockType(lr.pkg.Info.Types[e].Type); ok {
			p := lr.pkg.Fset.Position(e.Pos())
			return concrete(lockKey{
				key:  fmt.Sprintf("alloc@%s:%d:%d", p.Filename, p.Line, p.Column),
				desc: fmt.Sprintf("lock@%s:%d:%d", shortFile(p.Filename), p.Line, p.Column),
				pos:  e.Pos(),
			}), true
		}
	}
	return symRef{}, false
}

// namedOwner walks to the named struct type that declares a field.
func namedOwner(t types.Type) *types.Named {
	for {
		switch x := types.Unalias(t).(type) {
		case *types.Pointer:
			t = x.Elem()
		case *types.Named:
			return x
		default:
			return nil
		}
	}
}

func shortFile(path string) string {
	for i := len(path) - 1; i >= 0; i-- {
		if path[i] == '/' {
			return path[i+1:]
		}
	}
	return path
}

// exprString renders a small expression for instance hints.
func exprString(e ast.Expr) string {
	switch x := e.(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.UnaryExpr:
		return exprString(x.X)
	case *ast.StarExpr:
		return exprString(x.X)
	case *ast.IndexExpr:
		return exprString(x.X) + "[...]"
	case *ast.CallExpr:
		return exprString(x.Fun) + "()"
	case *ast.ParenExpr:
		return exprString(x.X)
	}
	return "?"
}

// classifyLockCall inspects a call expression; if it is a method call
// on a tracked lock type it returns the method name and receiver expr.
func classifyLockCall(pkg *Package, call *ast.CallExpr) (method string, recv ast.Expr, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", nil, false
	}
	s, found := pkg.Info.Selections[sel]
	if !found || s.Kind() != types.MethodVal {
		return "", nil, false
	}
	if _, isLock := isLockType(s.Recv()); !isLock {
		return "", nil, false
	}
	return s.Obj().Name(), sel.X, true
}
