package lint

import (
	"fmt"
	"go/token"
	"regexp"
	"strings"
)

// wantRx extracts the expectation regex from a `// want `+"`rx`"+“ comment.
var wantRx = regexp.MustCompile("// want `([^`]*)`")

// TB is the subset of testing.TB the corpus runner needs (kept tiny so
// this file stays out of the test binary's dependency path).
type TB interface {
	Helper()
	Errorf(format string, args ...any)
	Fatalf(format string, args ...any)
}

// RunCorpus loads one testdata fixture package, runs the analyzers over
// it, and diffs the diagnostics against the fixture's `// want` + "`rx`"
// comments, analysistest-style: every diagnostic must match a want on
// its exact line, every want must be claimed by a diagnostic.
func RunCorpus(t TB, analyzers []*Analyzer, dir string, patterns ...string) {
	t.Helper()
	prog, err := Load(Options{Dir: dir}, patterns...)
	if err != nil {
		t.Fatalf("load %v: %v", patterns, err)
	}
	if len(prog.Packages) == 0 {
		t.Fatalf("load %v: no packages", patterns)
	}
	if err := prog.FirstTypeError(); err != nil {
		t.Fatalf("fixture does not typecheck: %v", err)
	}

	type wantKey struct {
		file string
		line int
	}
	wants := map[wantKey][]*regexp.Regexp{}
	claimed := map[wantKey][]bool{}
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRx.FindAllStringSubmatch(c.Text, -1) {
						rx, err := regexp.Compile(m[1])
						if err != nil {
							t.Fatalf("bad want regex %q: %v", m[1], err)
						}
						pos := prog.Fset.Position(c.Pos())
						k := wantKey{pos.Filename, pos.Line}
						wants[k] = append(wants[k], rx)
						claimed[k] = append(claimed[k], false)
					}
				}
			}
		}
	}

	diags, errs := RunAnalyzers(prog, analyzers)
	for _, e := range errs {
		t.Errorf("analyzer error: %v", e)
	}
	for _, d := range diags {
		pos := prog.Fset.Position(d.Pos)
		k := wantKey{pos.Filename, pos.Line}
		matched := false
		for i, rx := range wants[k] {
			if !claimed[k][i] && rx.MatchString(d.Message) {
				claimed[k][i] = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s: %s: %s", shortPos(pos), d.Analyzer, d.Message)
		}
	}
	for k, rxs := range wants {
		for i, rx := range rxs {
			if !claimed[k][i] {
				t.Errorf("no diagnostic at %s:%d matching %q", shortFile(k.file), k.line, rx)
			}
		}
	}
}

func shortPos(pos token.Position) string {
	return fmt.Sprintf("%s:%d:%d", shortFile(pos.Filename), pos.Line, pos.Column)
}

// FixturePath builds the conventional testdata pattern for a fixture
// name ("lockorder_basic" -> "./testdata/src/lockorder_basic").
func FixturePath(name string) string {
	return "./testdata/src/" + strings.TrimPrefix(name, "./")
}
