// Instance sensitivity: two allocations of one struct type, locked in
// a consistent x-before-y order through a shared helper. Without
// allocation-site contexts the two instances merge into one abstract
// box.mu node and the helper's outer/inner pair reads as a self-edge
// inversion; with -ctx the call sites bind each parameter to its
// allocation and the refined nodes form a straight (acyclic) order.
// Nothing here deadlocks, so nothing may be reported.
package main

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func pair(outer, inner *box) {
	outer.mu.Lock()
	inner.mu.Lock()
	inner.n++
	inner.mu.Unlock()
	outer.mu.Unlock()
}

func main() {
	x := &box{}
	y := &box{}
	go pair(x, y)
	go pair(x, y)
	pair(x, y)
}
