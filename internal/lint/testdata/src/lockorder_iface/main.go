// Interface-dispatch inversion: the service calls its store through an
// interface while holding service.mu; the concrete store's mutating
// path calls back into the service while holding memStore.mu. The
// cycle only exists once the dynamic dispatch svc.st.Get() resolves to
// (*memStore).Get through the class-hierarchy index.
package main

import "sync"

type store interface {
	Get() int
	Put(v int)
}

type memStore struct {
	mu  sync.Mutex
	svc *service
	v   int
}

func (s *memStore) Get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.v
}

func (s *memStore) Put(v int) {
	s.mu.Lock()
	s.svc.note() // memStore.mu held while taking service.mu
	s.v = v
	s.mu.Unlock()
}

type service struct {
	mu sync.Mutex
	st store
}

func (svc *service) note() {
	svc.mu.Lock() // want `lock-order inversion: main.memStore.mu -> main.service.mu -> main.memStore.mu`
	svc.mu.Unlock()
}

func (svc *service) refresh() int {
	svc.mu.Lock()
	v := svc.st.Get() // service.mu held across the dynamic dispatch
	svc.mu.Unlock()
	return v
}

func main() {
	svc := &service{}
	m := &memStore{svc: svc}
	svc.st = m
	go svc.refresh()
	m.Put(1)
}
