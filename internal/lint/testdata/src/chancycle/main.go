// Mixed channel/lock wait cycle: the producer holds mu while blocking
// on an unbuffered send; the only consumer must take mu before it ever
// reaches its receive. Neither side is reorderable — the lock graph
// alone sees nothing (one lock, no nesting), but the wait-for graph
// closes the loop through the pending send.
//
// Controls: the ok channel's consumer takes no lock first (no cycle),
// and selfPaired both sends and receives on its own sequential flow (a
// goroutine cannot be its own counterpart).
package main

import "sync"

var (
	mu   sync.Mutex
	ch   = make(chan int)
	okc  = make(chan int)
	mu2  sync.Mutex
	pipe = make(chan int)
)

func producer() {
	mu.Lock()
	ch <- 1 // want `channel/lock wait cycle`
	mu.Unlock()
}

func consumer() {
	mu.Lock()
	mu.Unlock()
	<-ch
}

func freeProducer() {
	mu.Lock()
	okc <- 1
	mu.Unlock()
}

func freeConsumer() {
	<-okc
}

func selfPaired() {
	mu2.Lock()
	pipe <- 1
	mu2.Unlock()
	mu2.Lock()
	mu2.Unlock()
	<-pipe
}

func main() {
	go producer()
	go consumer()
	go freeProducer()
	go freeConsumer()
	go selfPaired()
}
