// Locks smuggled through a channel: the dispatcher sends the pair in
// b-before-a order as a struct payload; the server receives it and
// nests in the payload's order while the direct path nests a-before-b.
// The inversion only appears once recv-side field acquisitions bind
// through the send-site payload table.
package main

import "sync"

type order struct {
	outer *sync.Mutex
	inner *sync.Mutex
}

var (
	a   sync.Mutex
	b   sync.Mutex
	req = make(chan order)
)

func dispatch() {
	req <- order{outer: &b, inner: &a}
}

func serve() {
	o := <-req
	o.outer.Lock()
	o.inner.Lock()
	o.inner.Unlock()
	o.outer.Unlock()
}

func direct() {
	a.Lock()
	b.Lock() // want `lock-order inversion: main.a -> main.b -> main.a`
	b.Unlock()
	a.Unlock()
}

func main() {
	go dispatch()
	go serve()
	direct()
}
