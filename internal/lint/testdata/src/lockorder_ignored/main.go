// A real inversion suppressed with a lint:ignore directive — the
// mechanism internal/simapp's deliberate reproductions use to keep
// `dimmunix-vet ./...` clean. The directive anchors at the diagnostic's
// line (the first edge's acquisition site).
package main

import "sync"

var a, b sync.Mutex

func main() {
	go left()
	go right()
}

func left() {
	a.Lock()
	//lint:ignore lockorder deliberate reproduction for the test corpus
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func right() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
