// RWMutex edge modes: the a/b pair is taken in both orders but always
// in read mode — the runtime admits all the readers at once, so the
// cycle dissolves (suppressed as rw, not reported). The c/d pair holds
// a WRITE lock on one side while acquiring the other in read mode:
// the write hold blocks the opposing reader and the inversion is real.
package main

import "sync"

var (
	a sync.RWMutex
	b sync.RWMutex
	c sync.RWMutex
	d sync.RWMutex
)

func readersAB() {
	a.RLock()
	b.RLock()
	b.RUnlock()
	a.RUnlock()
}

func readersBA() {
	b.RLock()
	a.RLock()
	a.RUnlock()
	b.RUnlock()
}

func writerCD() {
	c.Lock()
	d.RLock() // want `lock-order inversion: main.c -> main.d -> main.c`
	d.RUnlock()
	c.Unlock()
}

func writerDC() {
	d.Lock()
	c.RLock()
	c.RUnlock()
	d.Unlock()
}

func main() {
	go readersAB()
	go readersBA()
	go writerCD()
	go writerDC()
}
