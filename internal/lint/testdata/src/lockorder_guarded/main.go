// The sound-negative control from internal/simapp's GuardedCanary: the
// inversion exists textually but every acquisition pair happens under a
// common dominating lock g, so the interleavings are serialized and no
// deadlock is reachable. lockorder must stay silent.
package main

import "sync"

var g, a, b sync.Mutex

func main() {
	go left()
	go right()
}

func left() {
	g.Lock()
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
	g.Unlock()
}

func right() {
	g.Lock()
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
	g.Unlock()
}
