// Fixture for condloop: Wait outside a loop is flagged; the canonical
// `for !ready { cond.Wait() }` recheck loop is silent.
package main

import "sync"

var (
	mu    sync.Mutex
	cond  = sync.NewCond(&mu)
	ready bool
)

func badWait() {
	mu.Lock()
	cond.Wait() // want `cond.Wait outside a loop: the condition must be rechecked after waking`
	mu.Unlock()
}

func goodWait() {
	mu.Lock()
	for !ready {
		cond.Wait()
	}
	mu.Unlock()
}

func main() {
	go badWait()
	go goodWait()
	mu.Lock()
	ready = true
	cond.Broadcast()
	mu.Unlock()
}
