// A three-lock cycle whose a->b edge spans two functions (the b
// acquisition happens in a helper called while a is held) — exercises
// the call-graph closure and cycles longer than 2.
package main

import "sync"

var a, b, c sync.Mutex

func main() {
	go ab()
	go bc()
	go ca()
}

func ab() {
	a.Lock()
	lockB() // the edge lives inside the helper
	a.Unlock()
}

func lockB() {
	b.Lock() // want `lock-order inversion: main.a -> main.b -> main.c -> main.a`
	b.Unlock()
}

func bc() {
	b.Lock()
	c.Lock()
	c.Unlock()
	b.Unlock()
}

func ca() {
	c.Lock()
	a.Lock()
	a.Unlock()
	c.Unlock()
}
