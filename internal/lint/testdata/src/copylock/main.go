// Fixture for dimmunixcopylock: every way a lock value escapes by
// copy, plus the initialization patterns that must stay silent.
package main

import "sync"

type svc struct {
	mu sync.Mutex
	n  int
}

var a sync.Mutex

func byValue(mu sync.Mutex) { // want `parameter copies a sync.Mutex; use a pointer`
	mu.Lock()
	mu.Unlock()
}

func byRef(mu *sync.Mutex) {
	mu.Lock()
	mu.Unlock()
}

func (s svc) snapshot() int { // want `receiver copies a sync.Mutex \(inside the struct\); use a pointer`
	return s.n
}

func give() sync.Mutex { // want `result copies a sync.Mutex; use a pointer`
	var m sync.Mutex
	return m // want `return copies a sync.Mutex value`
}

func assigns() {
	var m sync.Mutex
	c := m // want `assignment copies a sync.Mutex value`
	c.Lock()
	c.Unlock()
	fresh := sync.Mutex{} // initialization, not a copy: silent
	fresh.Lock()
	fresh.Unlock()
}

func iterate(svcs []svc) int {
	total := 0
	for _, s := range svcs { // want `range value copies a sync.Mutex \(inside the struct\) per iteration`
		total += s.n
	}
	return total
}

func calls() {
	byValue(a) // want `call passes a sync.Mutex by value`
	byRef(&a)  // address taken: silent
}

func main() {
	assigns()
	calls()
	_ = iterate(nil)
	var s svc
	_ = s.snapshot()
}
