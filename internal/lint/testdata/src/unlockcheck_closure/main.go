// Deferred releases through closures: `defer func(){ mu.Unlock() }()`
// and `defer release()` where release is a local helper must count as
// releasing paths — no findings for wrapped, helper, or mixedHelper.
// A genuine leak (leaky's early return) is still flagged.
package main

import "sync"

var mu sync.Mutex

func wrapped(cond bool) int {
	mu.Lock()
	defer func() { mu.Unlock() }()
	if cond {
		return 1
	}
	return 0
}

func helper(cond bool) int {
	mu.Lock()
	release := func() { mu.Unlock() }
	defer release()
	if cond {
		return 1
	}
	return 0
}

func mixedHelper(cond bool) {
	mu.Lock()
	if cond {
		mu.Unlock()
		return
	}
	release := func() { mu.Unlock() }
	defer release()
}

func leaky(cond bool) {
	mu.Lock()
	if cond {
		return // want `returns while still holding main.mu`
	}
	mu.Unlock()
}

func main() {
	wrapped(bad)
	helper(bad)
	mixedHelper(bad)
	leaky(bad)
}

var bad bool
