// The internal/simapp InversionLab shape: two dimmunix.Mutex fields
// acquired in opposite orders through a shared nest helper whose lock
// parameters only become concrete at the call sites — exercises the
// interprocedural parameter binding and field-identity abstraction.
package main

import "dimmunix"

type lab struct {
	a, b dimmunix.Mutex
}

func nest(outer, inner *dimmunix.Mutex) {
	outer.Lock()
	inner.Lock() // want `lock-order inversion: main.lab.a -> main.lab.b -> main.lab.a`
	inner.Unlock()
	outer.Unlock()
}

func (l *lab) runAB() { nest(&l.a, &l.b) }
func (l *lab) runBA() { nest(&l.b, &l.a) }

func main() {
	l := &lab{}
	done := make(chan bool)
	go func() { l.runAB(); done <- true }()
	go func() { l.runBA(); done <- true }()
	<-done
	<-done
}
