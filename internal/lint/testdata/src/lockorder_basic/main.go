// Two goroutines acquire two package-level mutexes in opposite order:
// the canonical AB/BA inversion lockorder must flag.
package main

import "sync"

var a, b sync.Mutex

func main() {
	go left()
	go right()
}

func left() {
	a.Lock()
	b.Lock() // want `lock-order inversion: main.a -> main.b -> main.a`
	b.Unlock()
	a.Unlock()
}

func right() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
