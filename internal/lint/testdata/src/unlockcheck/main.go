// Fixture for unlockcheck: the early-return leak (flagged only because
// other paths in the same function DO unlock), double unlock, ignored
// try-lock results, and the balanced controls that must stay silent.
package main

import "sync"

var mu sync.Mutex

var bad bool

func leaky() bool {
	mu.Lock()
	if bad {
		return false // want `returns while still holding main.mu \(acquired at line 13; other paths unlock it\)`
	}
	mu.Unlock()
	return true
}

func double() {
	mu.Lock()
	mu.Unlock()
	mu.Unlock() // want `main.mu released twice on this path \(double unlock\)`
}

func tries() {
	if mu.TryLock() {
		mu.Unlock()
	}
	mu.TryLock() // want `result of mu.TryLock ignored: the lock state is unknown on failure`
	mu.Unlock()
}

// deferred is the good control: the deferred unlock covers every return
// path, including the early one.
func deferred() {
	mu.Lock()
	defer mu.Unlock()
	if bad {
		return
	}
	bad = true
}

// acquire deliberately returns holding the lock and never unlocks it
// itself — a lock-helper, not a leak. The inconsistency rule keeps it
// silent.
func acquire() *sync.Mutex {
	mu.Lock()
	return &mu
}

func main() {
	leaky()
	double()
	tries()
	deferred()
	acquire().Unlock()
}
