// The sound-negative control from internal/simapp's SameThreadCanary:
// one goroutine takes both orders itself, sequentially. Both edges are
// only reachable on the main goroutine's call flow, so no two threads
// can interleave into the cycle. lockorder must stay silent.
package main

import "sync"

var a, b sync.Mutex

func main() {
	fwd()
	rev()
}

func fwd() {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func rev() {
	b.Lock()
	a.Lock()
	a.Unlock()
	b.Unlock()
}
