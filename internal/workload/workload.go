// Package workload implements the synchronization-intensive
// microbenchmark of §7.2.2: Nt threads synchronize on Nl shared locks,
// holding each for δin and pausing δout between operations (both busy
// loops, simulating computation inside and outside critical sections).
// Threads descend random call chains before each lock operation, so lock
// acquisitions carry a uniformly distributed selection of call stacks —
// the raw material for both matching-depth experiments and synthetic
// history generation.
package workload

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/core"
)

// Config parametrizes one microbenchmark run.
type Config struct {
	// Threads is Nt, Locks is Nl.
	Threads int
	Locks   int
	// DIn / DOut are δin / δout (busy loops).
	DIn  time.Duration
	DOut time.Duration
	// Levels is the number of random call-chain levels descended before
	// each lock operation; the resulting stack depth is ~2·Levels+1.
	// Five levels give the paper's D=10 maximum stack depth.
	Levels int
	// Duration bounds the run (wall clock).
	Duration time.Duration
	// Seed makes the random call paths and lock choices reproducible.
	Seed int64
}

func (c *Config) fill() {
	if c.Threads <= 0 {
		c.Threads = 64
	}
	if c.Locks <= 0 {
		c.Locks = 8
	}
	if c.Levels <= 0 {
		c.Levels = 5
	}
	if c.Duration <= 0 {
		c.Duration = 500 * time.Millisecond
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
}

// Result reports one run's outcome.
type Result struct {
	Ops        uint64
	Elapsed    time.Duration
	Throughput float64 // lock operations per second
	Yields     uint64
	YieldsPerS float64
	ProbeFPs   uint64
}

// Runner executes microbenchmark runs on a runtime.
type Runner struct {
	rt    *core.Runtime
	cfg   Config
	locks []*core.Mutex
	stop  atomic.Bool
	ops   atomic.Uint64
}

// NewRunner prepares a runner: the lock set is created once so repeated
// runs (and warmups) share lock identities.
func NewRunner(rt *core.Runtime, cfg Config) *Runner {
	cfg.fill()
	r := &Runner{rt: rt, cfg: cfg}
	r.locks = make([]*core.Mutex, cfg.Locks)
	for i := range r.locks {
		r.locks[i] = rt.NewMutex()
	}
	return r
}

// Config returns the effective configuration.
func (r *Runner) Config() Config { return r.cfg }

// spin busy-waits for d (the paper's delays are busy loops).
func spin(d time.Duration) {
	if d <= 0 {
		return
	}
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
	}
}

// worker is the per-thread state.
type worker struct {
	r   *Runner
	t   *core.Thread
	rng *rand.Rand
}

// Run executes one timed run and returns its result. It may be called
// repeatedly; each call spawns cfg.Threads fresh goroutines.
func (r *Runner) Run() Result {
	r.stop.Store(false)
	r.ops.Store(0)
	statsBefore := r.rt.Stats()

	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < r.cfg.Threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			t := r.rt.RegisterThread("wl")
			defer t.Close()
			w := &worker{r: r, t: t, rng: rand.New(rand.NewSource(r.cfg.Seed + int64(i)))}
			for !r.stop.Load() {
				w.iteration()
			}
		}(i)
	}
	time.Sleep(r.cfg.Duration)
	r.stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	statsAfter := r.rt.Stats()
	res := Result{
		Ops:      r.ops.Load(),
		Elapsed:  elapsed,
		Yields:   statsAfter.Yields - statsBefore.Yields,
		ProbeFPs: statsAfter.ProbeFPs - statsBefore.ProbeFPs,
	}
	res.Throughput = float64(res.Ops) / elapsed.Seconds()
	res.YieldsPerS = float64(res.Yields) / elapsed.Seconds()
	return res
}

// iteration descends a random call chain and performs one lock operation.
func (w *worker) iteration() {
	path := w.rng.Uint64()
	w.step(w.r.cfg.Levels, path)
}

// step dispatches to one of four distinct functions per level, building
// uniformly distributed call stacks (§7.2.2: "which function is called at
// each level is chosen randomly").
//
//go:noinline
func (w *worker) step(level int, path uint64) {
	if level <= 0 {
		// Four distinct bottom-level lock statements: depth-1 matching
		// (and position-based baselines like gate locks) see four
		// distinguishable sites rather than one.
		switch path & 3 {
		case 0:
			w.lockOp0()
		case 1:
			w.lockOp1()
		case 2:
			w.lockOp2()
		default:
			w.lockOp3()
		}
		return
	}
	switch path & 3 {
	case 0:
		w.c0(level-1, path>>2)
	case 1:
		w.c1(level-1, path>>2)
	case 2:
		w.c2(level-1, path>>2)
	default:
		w.c3(level-1, path>>2)
	}
}

//go:noinline
func (w *worker) c0(level int, path uint64) { w.step(level, path) }

//go:noinline
func (w *worker) c1(level int, path uint64) { w.step(level, path) }

//go:noinline
func (w *worker) c2(level int, path uint64) { w.step(level, path) }

//go:noinline
func (w *worker) c3(level int, path uint64) { w.step(level, path) }

// Each lockOpN contains its own textual LockT call so the captured
// innermost frame differs per site (an inlined shared helper would
// collapse all four into one logical frame).

//go:noinline
func (w *worker) lockOp0() {
	m := w.pick()
	if err := m.LockT(w.t); err != nil {
		return
	}
	w.finish(m)
}

//go:noinline
func (w *worker) lockOp1() {
	m := w.pick()
	if err := m.LockT(w.t); err != nil {
		return
	}
	w.finish(m)
}

//go:noinline
func (w *worker) lockOp2() {
	m := w.pick()
	if err := m.LockT(w.t); err != nil {
		return
	}
	w.finish(m)
}

//go:noinline
func (w *worker) lockOp3() {
	m := w.pick()
	if err := m.LockT(w.t); err != nil {
		return
	}
	w.finish(m)
}

func (w *worker) pick() *core.Mutex {
	return w.r.locks[w.rng.Intn(len(w.r.locks))]
}

func (w *worker) finish(m *core.Mutex) {
	spin(w.r.cfg.DIn)
	_ = m.UnlockT(w.t)
	w.r.ops.Add(1)
	spin(w.r.cfg.DOut)
}

// Warmup runs briefly so the runtime's interner observes the workload's
// stack population (needed before synthesizing a history).
func (r *Runner) Warmup(d time.Duration) {
	saved := r.cfg.Duration
	r.cfg.Duration = d
	r.Run()
	r.cfg.Duration = saved
}
