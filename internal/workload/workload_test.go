package workload

import (
	"testing"
	"time"

	"dimmunix/internal/core"
)

func newRT(t *testing.T, cfg core.Config) *core.Runtime {
	t.Helper()
	if cfg.Tau == 0 {
		cfg.Tau = 5 * time.Millisecond
	}
	rt := core.MustNew(cfg)
	t.Cleanup(func() { rt.Stop() })
	return rt
}

func TestRunProducesOps(t *testing.T) {
	rt := newRT(t, core.Config{})
	r := NewRunner(rt, Config{
		Threads:  4,
		Locks:    4,
		Duration: 100 * time.Millisecond,
	})
	res := r.Run()
	if res.Ops == 0 {
		t.Fatal("no lock operations performed")
	}
	if res.Throughput <= 0 {
		t.Error("throughput not computed")
	}
	if res.Yields != 0 {
		t.Errorf("yields = %d with empty history (must be 0, §5.7)", res.Yields)
	}
}

func TestConfigDefaults(t *testing.T) {
	rt := newRT(t, core.Config{})
	r := NewRunner(rt, Config{})
	c := r.Config()
	if c.Threads != 64 || c.Locks != 8 || c.Levels != 5 {
		t.Errorf("defaults = %+v", c)
	}
}

func TestStackDiversity(t *testing.T) {
	rt := newRT(t, core.Config{StackDepth: 16})
	r := NewRunner(rt, Config{Threads: 4, Locks: 2, Duration: 150 * time.Millisecond})
	r.Run()
	stacks := rt.CapturedStacks()
	// 4 branch choices over 5 levels: a short run must still observe
	// many distinct stacks.
	if len(stacks) < 20 {
		t.Fatalf("only %d distinct stacks; call chains not diversifying", len(stacks))
	}
	// All lock stacks share the innermost frame (lockOp) but must
	// differ beyond it.
	seen := make(map[string]bool)
	for _, s := range stacks {
		seen[s.String()] = true
	}
	if len(seen) != len(stacks) {
		t.Error("interner returned duplicate stacks")
	}
}

func TestDeterministicPathsWithSameSeed(t *testing.T) {
	mk := func(seed int64) uint64 {
		rt := newRT(t, core.Config{})
		r := NewRunner(rt, Config{Threads: 2, Locks: 2, Duration: 50 * time.Millisecond, Seed: seed})
		res := r.Run()
		return res.Ops
	}
	// Wall-clock bounded runs are not op-identical, but must both make
	// progress; determinism is in the path/lock choices (exercised via
	// the RNG seeding), so just smoke both seeds.
	if mk(1) == 0 || mk(2) == 0 {
		t.Fatal("seeded runs made no progress")
	}
}

func TestSynthesizeHistory(t *testing.T) {
	rt := newRT(t, core.Config{})
	r := NewRunner(rt, Config{Threads: 4, Locks: 4, Duration: 0})
	r.Warmup(120 * time.Millisecond)
	pop := rt.CapturedStacks()
	if len(pop) == 0 {
		t.Fatal("no stacks captured")
	}
	hist, err := SynthesizeHistory(pop, 32, 2, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	if hist.Len() != 32 {
		t.Fatalf("history len = %d", hist.Len())
	}
	for _, sig := range hist.Snapshot() {
		if sig.Size() != 2 {
			t.Errorf("signature size = %d", sig.Size())
		}
		if sig.Depth != 4 {
			t.Errorf("depth = %d", sig.Depth)
		}
	}
}

func TestSynthesizeHistoryErrors(t *testing.T) {
	if _, err := SynthesizeHistory(nil, 4, 2, 4, 1); err == nil {
		t.Error("empty population must error")
	}
	rt := newRT(t, core.Config{})
	r := NewRunner(rt, Config{Threads: 1, Locks: 1, Duration: 0})
	r.Warmup(30 * time.Millisecond)
	pop := rt.CapturedStacks()
	// Asking for more distinct signatures than combinations exist.
	if len(pop) > 0 {
		if _, err := SynthesizeHistory(pop[:1], 10, 1, 4, 1); err == nil {
			t.Error("unsatisfiable request must error")
		}
	}
}

// TestSynthesizedHistoryInducesMatchingWork verifies the §7.2.1 claim we
// rely on: synthesized signatures exercise the avoidance path (matching
// cost), even if they rarely yield.
func TestSynthesizedHistoryInducesMatchingWork(t *testing.T) {
	rt := newRT(t, core.Config{})
	r := NewRunner(rt, Config{Threads: 4, Locks: 4, Duration: 0, Seed: 3})
	r.Warmup(120 * time.Millisecond)
	hist, err := SynthesizeHistory(rt.CapturedStacks(), 16, 2, 4, 11)
	if err != nil {
		t.Fatal(err)
	}
	rt.History().Merge(hist)
	res := r.Run()
	if res.Ops == 0 {
		t.Fatal("no ops with populated history")
	}
	// The run may or may not yield (signatures are synthetic), but must
	// never deadlock or error out; ops flowing is the check.
}
