package workload

import (
	"fmt"
	"math/rand"

	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// SynthesizeHistory builds a history of h signatures, each combining s
// randomly chosen stacks from the given population — §7.2.1's method:
// "we synthesized additional ones as random combinations of real program
// stacks with which the target system performs synchronization. From the
// point of view of avoidance overhead, synthesized signatures have the
// same effect as real ones." The population usually comes from
// Runtime.CapturedStacks after a Warmup.
func SynthesizeHistory(population []stack.Stack, h, s, depth int, seed int64) (*signature.History, error) {
	if len(population) == 0 {
		return nil, fmt.Errorf("workload: empty stack population")
	}
	if s <= 0 {
		s = 2
	}
	rng := rand.New(rand.NewSource(seed))
	hist := signature.NewHistory()
	attempts := 0
	for hist.Len() < h {
		attempts++
		if attempts > h*100+1000 {
			return nil, fmt.Errorf("workload: could not synthesize %d distinct signatures from %d stacks", h, len(population))
		}
		stacks := make([]stack.Stack, s)
		for i := range stacks {
			stacks[i] = population[rng.Intn(len(population))]
		}
		hist.Add(signature.New(signature.Deadlock, stacks, depth))
	}
	return hist, nil
}
