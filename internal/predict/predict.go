// Package predict is the offline deadlock predictor: it replays an
// acquisition trace (internal/trace) and emits Dimmunix signatures for
// lock-order cycles that could deadlock in another schedule — even
// though the recorded run never hung. Pushing the emitted history
// through the shared immunity store (PR 3/4) inoculates a whole fleet
// before any process pays the one deadlock Dimmunix normally needs to
// learn a pattern (§5 of the paper learns only from actual hangs).
//
// The predictor is sound by construction, in the sense of the dynamic
// prediction literature (Tunç et al., "Sound Dynamic Deadlock Prediction
// in Linear Time"; Kalhauge & Palsberg): a cycle of dependencies is
// reported only when no recorded evidence contradicts its feasibility:
//
//   - thread disjointness: every dependency in the cycle comes from a
//     different thread (after handoff aliasing, below) — one thread
//     cannot deadlock with itself on the patterns we emit;
//   - no common guard lock: the lock sets of the cycle's dependencies
//     are pairwise disjoint. A lock held across two of the critical
//     sections serializes them, so the cycle's interleaving cannot
//     occur.
//
// Multi-goroutine critical sections (Sulzmann, "Beyond Per-Thread Lock
// Sets") are handled where the trace shows a handoff — a lock released
// by a goroutine other than its acquirer: the goroutines are aliased
// into one logical thread for the disjointness check, and acquisitions
// the releasing goroutine performed inside the handed-off critical
// section inherit the lock into their lock sets. Both extensions only
// suppress predictions, preserving soundness.
//
// Emitted signatures carry, for each thread in the cycle, the call
// stack at which it acquired the lock it holds into the cycle — the
// same stacks the live monitor archives from a fired deadlock's
// resource-allocation-graph cycle — so History.Merge accepts them like
// any experienced signature, avoidance matches them at the configured
// depth, and the fast-path danger index epoch-bumps as usual. Source is
// stamped SourcePredicted for operator attribution.
package predict

import (
	"sort"

	"dimmunix/internal/event"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
	"dimmunix/internal/trace"
)

// DefaultMaxCycleLen bounds the dependency-cycle search depth. Real
// deadlocks wider than a handful of threads are vanishingly rare (the
// paper's Table 1 patterns are all width 2) and the search is
// exponential in this bound.
const DefaultMaxCycleLen = 8

// Options parametrizes Analyze.
type Options struct {
	// Depth is the matching depth stamped into emitted signatures
	// (<= 0 selects signature.DefaultDepth). Match it to the consuming
	// runtimes' MatchDepth.
	Depth int
	// MaxCycleLen bounds the cycle search (<= 0 selects
	// DefaultMaxCycleLen).
	MaxCycleLen int
}

// Dependency is one "thread t acquired lock l while holding H" fact, the
// unit the cycle search runs over.
type Dependency struct {
	TID int32
	LID uint64
	Seq uint64
	// Holds maps each held lock to the stack at which this thread
	// acquired it — the stack a signature carries when that hold closes
	// a cycle edge (handoff-inherited locks carry their original
	// acquirer's stack).
	Holds map[uint64]stack.Stack
	// Stack is the acquisition stack of LID itself.
	Stack stack.Stack
}

// RejectStats counts candidate cycles the soundness guards discarded —
// the would-be false positives.
type RejectStats struct {
	// SameThread counts cycles with two dependencies from one (possibly
	// handoff-aliased) thread.
	SameThread int
	// CommonLock counts cycles where two dependencies shared a held
	// guard lock.
	CommonLock int
	// NoStack counts cycles dropped because a dependency's acquisition
	// carried no call stack (nothing to match at avoidance time).
	NoStack int
}

// Result is one analysis run's outcome.
type Result struct {
	// Signatures are the predicted deadlock patterns, deduplicated by
	// signature ID, in deterministic (ID) order.
	Signatures []*signature.Signature
	// Dependencies is the number of nested-acquisition facts extracted.
	Dependencies int
	// Handoffs is the number of cross-goroutine critical sections the
	// trace showed (locks released by a non-acquirer).
	Handoffs int
	// Cycles is the number of dependency cycles found before the
	// soundness guards ran (instances, not unique patterns).
	Cycles int
	// Rejected breaks down the guarded-away candidates.
	Rejected RejectStats
}

// History packages the predicted signatures as a format-v2 history
// stamped with the trace's build fingerprint, ready for History.Merge or
// a histstore push.
func (r *Result) History(fingerprint string) *signature.History {
	h := signature.NewHistory()
	h.SetFingerprint(fingerprint)
	for _, sig := range r.Signatures {
		h.Add(sig)
	}
	return h
}

// handoff is one cross-goroutine critical section: lock lid was acquired
// by the owner (at ownerStack) at seq from, and released by releaser at
// seq to.
type handoff struct {
	lid        uint64
	releaser   int32
	from, to   uint64
	ownerStack stack.Stack
}

// Analyze replays tr and returns the predicted deadlock patterns.
func Analyze(tr *trace.Trace, opt Options) *Result {
	if opt.Depth <= 0 {
		opt.Depth = signature.DefaultDepth
	}
	if opt.MaxCycleLen <= 0 {
		opt.MaxCycleLen = DefaultMaxCycleLen
	}
	res := &Result{}

	type held struct {
		since uint64 // seq of the acquisition
		stack stack.Stack
	}
	type owner struct {
		tid   int32
		since uint64
		stack stack.Stack
	}
	heldBy := make(map[int32]map[uint64]held) // tid -> held lock set
	owners := make(map[uint64]owner)          // lid -> current owner
	alias := newUnionFind()
	var deps []*Dependency
	var handoffs []handoff

	for _, rec := range tr.Records {
		switch rec.Op {
		case event.Acquired:
			hs := heldBy[rec.TID]
			if hs == nil {
				hs = make(map[uint64]held)
				heldBy[rec.TID] = hs
			}
			if _, re := hs[rec.LID]; re {
				continue // reentrant re-acquisition: no state change
			}
			if len(hs) > 0 {
				holds := make(map[uint64]stack.Stack, len(hs))
				for l, h := range hs {
					holds[l] = h.stack
				}
				deps = append(deps, &Dependency{
					TID:   rec.TID,
					LID:   rec.LID,
					Seq:   rec.Seq,
					Holds: holds,
					Stack: rec.Stack,
				})
			}
			hs[rec.LID] = held{since: rec.Seq, stack: rec.Stack}
			owners[rec.LID] = owner{tid: rec.TID, since: rec.Seq, stack: rec.Stack}
		case event.Release:
			ow, known := owners[rec.LID]
			delete(owners, rec.LID)
			if known && ow.tid != rec.TID {
				// Handoff: the critical section of rec.LID spanned from
				// its acquirer to this releaser (channel/cond-mediated
				// ownership transfer). Alias the goroutines and note the
				// span so the releaser's nested acquisitions inside it
				// inherit the lock (second pass below).
				res.Handoffs++
				alias.union(ow.tid, rec.TID)
				handoffs = append(handoffs, handoff{
					lid: rec.LID, releaser: rec.TID,
					from: ow.since, to: rec.Seq, ownerStack: ow.stack,
				})
				delete(heldBy[ow.tid], rec.LID)
				continue
			}
			delete(heldBy[rec.TID], rec.LID)
		}
	}
	res.Dependencies = len(deps)

	// Sulzmann lock-set extension: an acquisition the releaser performed
	// inside a handed-off critical section was guarded by the handed-off
	// lock, even though its per-thread lock set never showed it.
	for _, ho := range handoffs {
		for _, d := range deps {
			if d.TID == ho.releaser && d.Seq > ho.from && d.Seq < ho.to {
				if _, own := d.Holds[ho.lid]; !own {
					d.Holds[ho.lid] = ho.ownerStack
				}
			}
		}
	}

	res.Signatures = findCycles(deps, alias, opt, res)
	sort.Slice(res.Signatures, func(i, j int) bool {
		return res.Signatures[i].ID < res.Signatures[j].ID
	})
	return res
}

// findCycles searches the dependency graph (edge D -> D' iff D's
// acquired lock is in D”s lock set) for elementary cycles up to
// opt.MaxCycleLen, applies the soundness guards, and builds signatures.
func findCycles(deps []*Dependency, alias *unionFind, opt Options, res *Result) []*signature.Signature {
	// Index dependencies by held lock for edge traversal.
	byHeld := make(map[uint64][]int)
	for i, d := range deps {
		for l := range d.Holds {
			byHeld[l] = append(byHeld[l], i)
		}
	}

	sigs := make(map[string]*signature.Signature)
	path := make([]int, 0, opt.MaxCycleLen)
	onPath := make(map[int]bool)

	var dfs func(start, cur int)
	dfs = func(start, cur int) {
		for _, next := range byHeld[deps[cur].LID] {
			if next == start {
				emitCycle(deps, path, alias, opt, res, sigs)
				continue
			}
			// Canonical form: the cycle's minimum index is its start, so
			// each cycle is found exactly once.
			if next < start || onPath[next] || len(path) >= opt.MaxCycleLen {
				continue
			}
			path = append(path, next)
			onPath[next] = true
			dfs(start, next)
			onPath[next] = false
			path = path[:len(path)-1]
		}
	}
	for i := range deps {
		path = append(path[:0], i)
		onPath[i] = true
		dfs(i, i)
		onPath[i] = false
	}

	out := make([]*signature.Signature, 0, len(sigs))
	for _, s := range sigs {
		out = append(out, s)
	}
	return out
}

// emitCycle applies the soundness guards to one candidate cycle and, if
// it survives, records its signature.
func emitCycle(deps []*Dependency, cycle []int, alias *unionFind, opt Options, res *Result, sigs map[string]*signature.Signature) {
	res.Cycles++
	// Thread disjointness, with handoff-aliased goroutines counting as
	// one logical thread.
	roots := make(map[int32]bool, len(cycle))
	for _, i := range cycle {
		r := alias.find(deps[i].TID)
		if roots[r] {
			res.Rejected.SameThread++
			return
		}
		roots[r] = true
	}
	// No common guard: the lock sets must be pairwise disjoint. The
	// cycle's own edge locks never trip this — a thread acquiring l
	// cannot simultaneously hold it (reentries were dropped earlier).
	for a := 0; a < len(cycle); a++ {
		for b := a + 1; b < len(cycle); b++ {
			for l := range deps[cycle[a]].Holds {
				if _, both := deps[cycle[b]].Holds[l]; both {
					res.Rejected.CommonLock++
					return
				}
			}
		}
	}
	// The signature carries, per cycle edge D -> D' (D's acquired lock is
	// held by D'), the stack at which D''s thread acquired that held lock
	// — the same stacks the live monitor archives from a fired cycle.
	stacks := make([]stack.Stack, 0, len(cycle))
	for k, i := range cycle {
		holder := deps[cycle[(k+1)%len(cycle)]]
		s := holder.Holds[deps[i].LID]
		if s == nil {
			res.Rejected.NoStack++
			return
		}
		stacks = append(stacks, s)
	}
	sig := signature.New(signature.Deadlock, stacks, opt.Depth)
	sig.Source = signature.SourcePredicted
	if _, dup := sigs[sig.ID]; !dup {
		sigs[sig.ID] = sig
	}
}

// unionFind aliases goroutine IDs connected by handoffs.
type unionFind struct {
	parent map[int32]int32
}

func newUnionFind() *unionFind { return &unionFind{parent: make(map[int32]int32)} }

func (u *unionFind) find(x int32) int32 {
	p, ok := u.parent[x]
	if !ok || p == x {
		return x
	}
	r := u.find(p)
	u.parent[x] = r
	return r
}

func (u *unionFind) union(a, b int32) {
	ra, rb := u.find(a), u.find(b)
	if ra != rb {
		u.parent[ra] = rb
	}
}
