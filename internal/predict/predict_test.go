package predict

import (
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
	"dimmunix/internal/trace"
)

// tb builds a synthetic trace record-by-record with monotonic seq; each
// distinct site seed maps to a distinct synthetic call stack.
type tb struct {
	seq  uint64
	recs []trace.Record
}

func (b *tb) acq(tid int32, lid uint64, site uint64) {
	b.recs = append(b.recs, trace.Record{
		Op: event.Acquired, TID: tid, LID: lid, Seq: b.seq,
		Stack: stack.Synthetic(site, 4),
	})
	b.seq++
}

func (b *tb) rel(tid int32, lid uint64) {
	b.recs = append(b.recs, trace.Record{Op: event.Release, TID: tid, LID: lid, Seq: b.seq})
	b.seq++
}

func (b *tb) trace() *trace.Trace {
	return &trace.Trace{Fingerprint: "fp-predict", Records: b.recs}
}

const (
	lockA uint64 = 1
	lockB uint64 = 2
	lockG uint64 = 3
)

// Two goroutines take A/B in opposite orders on disjoint schedules: the
// recorded run is serialized and never hangs, but the inversion is a real
// deadlock in another interleaving — it must be predicted.
func TestPredictableInversion(t *testing.T) {
	b := &tb{}
	b.acq(1, lockA, 10)
	b.acq(1, lockB, 11)
	b.rel(1, lockB)
	b.rel(1, lockA)
	b.acq(2, lockB, 20)
	b.acq(2, lockA, 21)
	b.rel(2, lockA)
	b.rel(2, lockB)

	res := Analyze(b.trace(), Options{Depth: 2})
	if res.Dependencies != 2 {
		t.Fatalf("dependencies = %d, want 2", res.Dependencies)
	}
	if len(res.Signatures) != 1 {
		t.Fatalf("signatures = %d, want 1 (cycles=%d rejected=%+v)",
			len(res.Signatures), res.Cycles, res.Rejected)
	}
	sig := res.Signatures[0]
	if sig.Source != signature.SourcePredicted {
		t.Fatalf("source = %q, want %q", sig.Source, signature.SourcePredicted)
	}
	if sig.Kind != signature.Deadlock || sig.Size() != 2 || sig.Depth != 2 {
		t.Fatalf("unexpected signature shape: %v", sig)
	}
	// The stacks must be the OUTER acquisitions' — where each goroutine
	// acquired the lock it holds into the cycle (sites 10 and 20). That
	// is what a live archive of the fired deadlock records, so avoidance
	// matching lines up.
	wantOuter := signature.New(signature.Deadlock,
		[]stack.Stack{stack.Synthetic(10, 4), stack.Synthetic(20, 4)}, 2)
	if sig.ID != wantOuter.ID {
		t.Fatalf("signature stacks are not the outer (held-lock) acquisition sites")
	}

	h := res.History("fp-predict")
	if h.Fingerprint() != "fp-predict" {
		t.Fatalf("history fingerprint = %q", h.Fingerprint())
	}
	got := h.Get(sig.ID)
	if got == nil || got.Source != signature.SourcePredicted || got.Rev == 0 {
		t.Fatalf("history entry = %+v", got)
	}
}

// Both inversions happen under a common guard lock G: the interleaving
// that deadlocks cannot occur, so predicting it would be a false
// positive. Soundness regression: must NOT be predicted.
func TestGuardedInversionNotPredicted(t *testing.T) {
	b := &tb{}
	b.acq(1, lockG, 30)
	b.acq(1, lockA, 10)
	b.acq(1, lockB, 11)
	b.rel(1, lockB)
	b.rel(1, lockA)
	b.rel(1, lockG)
	b.acq(2, lockG, 31)
	b.acq(2, lockB, 20)
	b.acq(2, lockA, 21)
	b.rel(2, lockA)
	b.rel(2, lockB)
	b.rel(2, lockG)

	res := Analyze(b.trace(), Options{})
	if len(res.Signatures) != 0 {
		t.Fatalf("guarded inversion predicted: %v", res.Signatures)
	}
	if res.Rejected.CommonLock == 0 {
		t.Fatalf("expected common-lock rejection, got %+v", res.Rejected)
	}
}

// One goroutine takes A/B in both orders sequentially: a single thread
// cannot deadlock with itself here. Soundness regression: must NOT be
// predicted.
func TestSameGoroutineInversionNotPredicted(t *testing.T) {
	b := &tb{}
	b.acq(1, lockA, 10)
	b.acq(1, lockB, 11)
	b.rel(1, lockB)
	b.rel(1, lockA)
	b.acq(1, lockB, 20)
	b.acq(1, lockA, 21)
	b.rel(1, lockA)
	b.rel(1, lockB)

	res := Analyze(b.trace(), Options{})
	if len(res.Signatures) != 0 {
		t.Fatalf("same-goroutine inversion predicted: %v", res.Signatures)
	}
	if res.Rejected.SameThread == 0 {
		t.Fatalf("expected same-thread rejection, got %+v", res.Rejected)
	}
}

// Goroutine 3 acquires G and goroutine 2 releases it (a critical section
// handed across goroutines, e.g. via a channel). Acquisitions goroutine 2
// performed inside that span are guarded by G even though its per-thread
// lock set never contained it. With the handoff-aware extension the A/B
// inversion below shares guard G and must NOT be predicted; a naive
// per-thread analysis would emit it.
func TestHandoffExtendsLockset(t *testing.T) {
	b := &tb{}
	b.acq(3, lockG, 40) // owner g3...
	b.acq(2, lockB, 20)
	b.acq(2, lockA, 21) // dep (g2, A, {B}) — inside G's handed-off span
	b.rel(2, lockA)
	b.rel(2, lockG) // ...released by g2: handoff
	b.rel(2, lockB)
	b.acq(1, lockG, 30)
	b.acq(1, lockA, 10)
	b.acq(1, lockB, 11) // dep (g1, B, {G, A})
	b.rel(1, lockB)
	b.rel(1, lockA)
	b.rel(1, lockG)

	res := Analyze(b.trace(), Options{})
	if res.Handoffs != 1 {
		t.Fatalf("handoffs = %d, want 1", res.Handoffs)
	}
	if len(res.Signatures) != 0 {
		t.Fatalf("handoff-guarded inversion predicted: %v", res.Signatures)
	}
	if res.Rejected.CommonLock == 0 {
		t.Fatalf("expected common-lock rejection via handoff extension, got %+v", res.Rejected)
	}
}

// Reentrant re-acquisition must not self-deadlock the analysis or create
// bogus dependencies.
func TestReentrantAcquisitionIgnored(t *testing.T) {
	b := &tb{}
	b.acq(1, lockA, 10)
	b.acq(1, lockA, 10) // reentrant
	b.rel(1, lockA)

	res := Analyze(b.trace(), Options{})
	if res.Dependencies != 0 || len(res.Signatures) != 0 {
		t.Fatalf("reentrant acquisition produced deps=%d sigs=%d",
			res.Dependencies, len(res.Signatures))
	}
}

// A three-way cycle (A->B, B->C, C->A across three goroutines) is still
// within the default cycle bound and must be predicted as one signature
// with three stacks.
func TestThreeWayCycle(t *testing.T) {
	b := &tb{}
	b.acq(1, lockA, 10)
	b.acq(1, lockB, 11)
	b.rel(1, lockB)
	b.rel(1, lockA)
	b.acq(2, lockB, 20)
	b.acq(2, 4, 22) // lock C
	b.rel(2, 4)
	b.rel(2, lockB)
	b.acq(3, 4, 42)
	b.acq(3, lockA, 41)
	b.rel(3, lockA)
	b.rel(3, 4)

	res := Analyze(b.trace(), Options{})
	if len(res.Signatures) != 1 {
		t.Fatalf("signatures = %d, want 1 (rejected=%+v)", len(res.Signatures), res.Rejected)
	}
	if res.Signatures[0].Size() != 3 {
		t.Fatalf("signature size = %d, want 3", res.Signatures[0].Size())
	}
}
