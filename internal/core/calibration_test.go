package core

import (
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"dimmunix/internal/monitor"
)

// TestCalibrationLadderAdvancesEndToEnd drives repeated avoided
// encounters of one pattern and checks that the §5.5 depth ladder
// advances using the retrospective FP verdicts flowing back from the
// monitor.
func TestCalibrationLadderAdvancesEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.Calibrate = true
	cfg.CalibMaxDepth = 4
	cfg.CalibNA = 2
	cfg.MaxYield = 100 * time.Millisecond
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)
	sig := rt.History().Snapshot()[0]
	if !sig.Calib.Active() {
		t.Fatal("new signature must have an armed ladder with Calibrate on")
	}

	// Drive avoided encounters: Tk holds b (the cause), Tl's lockA is
	// avoided; each encounter is one ladder observation.
	tk := rt.RegisterThread("Tk")
	defer tk.Close()
	if err := lockB(tk, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		tl := rt.RegisterThread("Tl")
		cfgDone := make(chan error, 1)
		go func() { cfgDone <- lockA(tl, a) }()
		select {
		case err := <-cfgDone:
			// The max-yield bound eventually forces GO (Tk never
			// releases b), which still counts as an avoidance.
			if err != nil && !errors.Is(err, ErrDeadlockRecovered) {
				t.Fatalf("encounter %d: %v", i, err)
			}
			if err == nil {
				_ = a.UnlockT(tl)
			}
		case <-time.After(20 * time.Second):
			t.Fatal("encounter hung")
		}
		tl.Close()
	}
	_ = b.UnlockT(tk)

	// Rung 1 matched this test's call path (innermost frame only) and
	// collected its NA=2 avoidances; the ladder then advanced to rung 2,
	// where the deeper suffix no longer matches this call site — so the
	// later encounters were not avoided. That asymmetry IS the ladder
	// doing its job: deeper rungs are more precise.
	if sig.Calib.Avoids[0] != 2 {
		t.Errorf("rung-1 avoidances = %d, want exactly NA=2", sig.Calib.Avoids[0])
	}
	if sig.Calib.Active() && sig.Calib.Rung < 2 {
		t.Errorf("ladder never advanced past rung 1: %+v", sig.Calib)
	}
	if got := rt.Stats().Yields; got < 2 {
		t.Errorf("yields = %d, want >= 2", got)
	}
}

// TestCorruptHistoryFailsNew injects a corrupted history file.
func TestCorruptHistoryFailsNew(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	writeFile(t, path, "{definitely not json")
	cfg := testConfig()
	cfg.HistoryPath = path
	if _, err := New(cfg); err == nil {
		t.Fatal("corrupt history must fail New")
	}
}

// TestSaveFailureSurfacesOnStop injects an unwritable history path.
func TestSaveFailureSurfacesOnStop(t *testing.T) {
	cfg := testConfig()
	cfg.HistoryPath = filepath.Join(t.TempDir(), "nodir-as-file", "x", "hist.json")
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	// Make the parent un-creatable: create a FILE where the directory
	// should go.
	parent := filepath.Dir(filepath.Dir(cfg.HistoryPath))
	writeFile(t, parent, "in the way")
	a, b := rt.NewMutex(), rt.NewMutex()
	forceDeadlock(rt, a, b, holdTime) // produces a signature -> Save attempts
	if err := rt.Stop(); err == nil {
		t.Fatal("Stop must surface the save failure")
	}
}

func writeFile(t *testing.T, path, content string) {
	t.Helper()
	if err := writeFileErr(path, content); err != nil {
		t.Fatal(err)
	}
}

// TestThreeThreadDeadlockEndToEnd contracts a 3-cycle and verifies the
// signature has three stacks, then immunity holds.
func TestThreeThreadDeadlockEndToEnd(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 1
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	defer rt.Stop()

	locks := []*Mutex{rt.NewMutex(), rt.NewMutex(), rt.NewMutex()}
	firsts := []func(*Thread, *Mutex) error{lockA, lockB, lockC3}

	run := func() []error {
		errs := make([]error, 3)
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				th := rt.RegisterThread("w")
				defer th.Close()
				first := locks[i]
				second := locks[(i+1)%3]
				if errs[i] = firsts[i](th, first); errs[i] != nil {
					return
				}
				time.Sleep(holdTime)
				if errs[i] = second.LockT(th); errs[i] != nil {
					_ = first.UnlockT(th)
					return
				}
				_ = second.UnlockT(th)
				_ = first.UnlockT(th)
			}(i)
		}
		wg.Wait()
		return errs
	}

	// Contract the 3-cycle.
	sawRecovery := false
	for trial := 0; trial < 8; trial++ {
		errs := run()
		for _, e := range errs {
			if errors.Is(e, ErrDeadlockRecovered) {
				sawRecovery = true
			}
		}
		if rt.History().Len() >= 1 {
			clean := true
			for _, e := range errs {
				if e != nil {
					clean = false
				}
			}
			if clean {
				break
			}
		}
	}
	if !sawRecovery {
		t.Fatal("3-thread deadlock never contracted")
	}
	found3 := false
	for _, sig := range rt.History().Snapshot() {
		if sig.Size() == 3 {
			found3 = true
		}
	}
	if !found3 {
		t.Fatalf("no three-stack signature archived; history: %d sigs", rt.History().Len())
	}
}

//go:noinline
func lockC3(t *Thread, m *Mutex) error { return m.LockT(t) }

func writeFileErr(path, content string) error {
	return os.WriteFile(path, []byte(content), 0o644)
}
