//lint:file-ignore unlockcheck deliberate non-owner/double unlocks exercising the runtime error paths
package core

import (
	"context"
	"errors"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix/internal/monitor"
	"dimmunix/internal/signature"
)

func testConfig() Config {
	return Config{
		Tau:      2 * time.Millisecond,
		MaxYield: 5 * time.Second,
	}
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// lockA and lockB are the two distinct first-lock call sites of the §4
// example program (the s1/s2 statements). Signatures captured through them
// are portable across every test that locks through them.
//
//go:noinline
func lockA(t *Thread, m *Mutex) error { return m.LockT(t) }

//go:noinline
func lockB(t *Thread, m *Mutex) error { return m.LockT(t) }

// forceDeadlock drives the §4 example with the paper's timing-loop
// methodology: each thread takes its first lock, holds it for hold, then
// crosses over. With an empty history this deadlocks deterministically;
// with the signature archived, Dimmunix yields one thread instead.
func forceDeadlock(rt *Runtime, a, b *Mutex, hold time.Duration) (error, error) {
	return forceDeadlockVia(rt, a, b, lockA, lockB, hold)
}

// forceDeadlockVia parametrizes the first-lock call sites, so signatures
// can be recorded through arbitrary acquisition paths (e.g. trylock).
func forceDeadlockVia(rt *Runtime, a, b *Mutex, first1, first2 func(*Thread, *Mutex) error, hold time.Duration) (error, error) {
	t1 := rt.RegisterThread("T1")
	t2 := rt.RegisterThread("T2")
	defer t1.Close()
	defer t2.Close()

	var wg sync.WaitGroup
	var err1, err2 error
	wg.Add(2)
	go func() {
		defer wg.Done()
		if e := first1(t1, a); e != nil {
			err1 = e
			return
		}
		time.Sleep(hold)
		if e := b.LockT(t1); e != nil {
			_ = a.UnlockT(t1)
			err1 = e
			return
		}
		_ = b.UnlockT(t1)
		_ = a.UnlockT(t1)
	}()
	go func() {
		defer wg.Done()
		if e := first2(t2, b); e != nil {
			err2 = e
			return
		}
		time.Sleep(hold)
		if e := a.LockT(t2); e != nil {
			_ = b.UnlockT(t2)
			err2 = e
			return
		}
		_ = a.UnlockT(t2)
		_ = b.UnlockT(t2)
	}()
	wg.Wait()
	return err1, err2
}

const holdTime = 60 * time.Millisecond

func TestFirstRunDeadlockDetectedAndRecovered(t *testing.T) {
	var detected atomic.Int32
	var rt *Runtime
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) {
		detected.Add(1)
		rt.AbortThreads(info.ThreadIDs...)
	}
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	err1, err2 := forceDeadlock(rt, a, b, holdTime)

	if detected.Load() == 0 {
		t.Fatal("deadlock not detected")
	}
	recovered := 0
	for _, err := range []error{err1, err2} {
		if errors.Is(err, ErrDeadlockRecovered) {
			recovered++
		}
	}
	if recovered == 0 {
		t.Fatalf("no worker saw recovery: err1=%v err2=%v", err1, err2)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("history has %d signatures, want 1", rt.History().Len())
	}
	sig := rt.History().Snapshot()[0]
	if sig.Kind != signature.Deadlock || sig.Size() != 2 {
		t.Errorf("signature = %v", sig)
	}
	if a.Holder() != 0 || b.Holder() != 0 {
		t.Errorf("locks leaked: a=%d b=%d", a.Holder(), b.Holder())
	}
}

func TestSecondRunAvoidsDeadlock(t *testing.T) {
	dir := t.TempDir()
	histPath := filepath.Join(dir, "hist.json")

	// Run 1: contract the deadlock, record the signature, "restart".
	{
		var rt *Runtime
		cfg := testConfig()
		cfg.MatchDepth = 2
		cfg.HistoryPath = histPath
		cfg.OnDeadlock = func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		}
		rt = MustNew(cfg)
		a, b := rt.NewMutex(), rt.NewMutex()
		forceDeadlock(rt, a, b, holdTime)
		if err := rt.Stop(); err != nil {
			t.Fatal(err)
		}
	}

	// Run 2: same program shape; Dimmunix must avoid the pattern.
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.HistoryPath = histPath
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) {
		t.Errorf("deadlock reoccurred despite immunity")
	}
	rt := MustNew(cfg)
	defer rt.Stop()
	if rt.History().Len() != 1 {
		t.Fatalf("history not loaded: %d sigs", rt.History().Len())
	}

	a, b := rt.NewMutex(), rt.NewMutex()
	err1, err2 := forceDeadlock(rt, a, b, holdTime)
	if err1 != nil || err2 != nil {
		t.Fatalf("immunized run failed: %v / %v", err1, err2)
	}
	if rt.Stats().Yields == 0 {
		t.Error("avoidance should have yielded at least once")
	}
}

func TestImmunityWithinSameRun(t *testing.T) {
	var rt *Runtime
	cfg := testConfig()
	cfg.MatchDepth = 2
	var deadlocks atomic.Int32
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) {
		deadlocks.Add(1)
		rt.AbortThreads(info.ThreadIDs...)
	}
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	forceDeadlock(rt, a, b, holdTime)
	if deadlocks.Load() != 1 {
		t.Fatalf("deadlocks = %d, want 1", deadlocks.Load())
	}
	for i := 0; i < 5; i++ {
		err1, err2 := forceDeadlock(rt, a, b, 5*time.Millisecond)
		if err1 != nil || err2 != nil {
			t.Fatalf("retry %d failed: %v / %v", i, err1, err2)
		}
	}
	if deadlocks.Load() != 1 {
		t.Errorf("deadlock reoccurred: %d", deadlocks.Load())
	}
}

// seedSignature contracts the lockA/lockB deadlock once (with recovery) so
// the history holds the {lockA, lockB} signature at the given depth.
func seedSignature(t *testing.T, rt *Runtime, a, b *Mutex) {
	t.Helper()
	seedSignatureVia(t, rt, a, b, lockA, lockB)
}

func seedSignatureVia(t *testing.T, rt *Runtime, a, b *Mutex, first1, first2 func(*Thread, *Mutex) error) {
	t.Helper()
	done := make(chan struct{})
	go func() {
		defer close(done)
		forceDeadlockVia(rt, a, b, first1, first2, holdTime)
	}()
	waitFor(t, "deadlock detection", func() bool { return rt.History().Len() >= 1 })
	// Abort all live threads so the workers unwind.
	rt.AbortThreads(rt.LiveThreadIDs()...)
	<-done
	waitFor(t, "locks released", func() bool { return a.Holder() == 0 && b.Holder() == 0 })
}

func TestInducedStarvationBrokenWeakImmunity(t *testing.T) {
	// Build a yield cycle: Tl yields at lockA (cause: Tk holds b via
	// lockB); Tk blocks on c held by Tl. Weak immunity must detect the
	// starvation, save its signature, and force Tl onward.
	cfg := testConfig()
	cfg.MatchDepth = 1 // portable across call sites in this test
	cfg.MaxYield = 30 * time.Second
	var starved atomic.Int32
	cfg.OnStarvation = func(info monitor.StarvationInfo) { starved.Add(1) }
	rt := MustNew(cfg)
	defer rt.Stop()

	a, b, c := rt.NewMutex(), rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	tk := rt.RegisterThread("Tk")
	tl := rt.RegisterThread("Tl")
	defer tk.Close()
	defer tl.Close()

	if err := c.LockT(tl); err != nil { // Tl holds c
		t.Fatal(err)
	}
	if err := lockB(tk, b); err != nil { // Tk holds b (signature binding)
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // Tk: block on c (held by Tl)
		defer wg.Done()
		time.Sleep(20 * time.Millisecond) // let Tl reach its yield first
		if err := c.LockT(tk); err == nil {
			_ = c.UnlockT(tk)
		}
		_ = b.UnlockT(tk)
	}()
	go func() { // Tl: request a via the signature path -> yield -> starve
		defer wg.Done()
		if err := lockA(tl, a); err != nil {
			t.Errorf("Tl lock a: %v", err)
		} else {
			_ = a.UnlockT(tl)
		}
		_ = c.UnlockT(tl)
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("starvation was not broken")
	}
	if starved.Load() == 0 {
		t.Fatal("starvation not detected")
	}
	found := false
	for _, s := range rt.History().Snapshot() {
		if s.Kind == signature.Starvation {
			found = true
		}
	}
	if !found {
		t.Error("starvation signature not archived")
	}
	if rt.MonitorCounters().StarvationsBroken.Load() == 0 {
		t.Error("weak immunity must break the starvation")
	}
}

func TestStrongImmunityInvokesRestartHook(t *testing.T) {
	var rt *Runtime
	cfg := testConfig()
	cfg.MatchDepth = 1
	cfg.Immunity = StrongImmunity
	cfg.MaxYield = 30 * time.Second
	restart := make(chan monitor.StarvationInfo, 1)
	cfg.OnStarvation = func(info monitor.StarvationInfo) {
		select {
		case restart <- info:
		default:
		}
		// Emulate the restart by aborting everyone involved.
		rt.AbortThreads(info.ThreadIDs...)
	}
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b, c := rt.NewMutex(), rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	tk := rt.RegisterThread("Tk")
	tl := rt.RegisterThread("Tl")
	defer tk.Close()
	defer tl.Close()

	if err := c.LockT(tl); err != nil {
		t.Fatal(err)
	}
	if err := lockB(tk, b); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		time.Sleep(20 * time.Millisecond)
		if err := c.LockT(tk); err == nil {
			_ = c.UnlockT(tk)
		}
		_ = b.UnlockT(tk)
	}()
	go func() {
		defer wg.Done()
		if err := lockA(tl, a); err == nil {
			_ = a.UnlockT(tl)
		}
		_ = c.UnlockT(tl)
	}()

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(15 * time.Second):
		t.Fatal("strong-immunity run hung")
	}
	select {
	case <-restart:
	default:
		t.Fatal("restart hook not invoked")
	}
	if rt.MonitorCounters().StarvationsBroken.Load() != 0 {
		t.Error("strong immunity must not break cycles itself")
	}
}

func TestMaxYieldBoundReleasesThread(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 1
	cfg.MaxYield = 10 * time.Millisecond
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	tk := rt.RegisterThread("Tk")
	tl := rt.RegisterThread("Tl")
	defer tk.Close()
	defer tl.Close()

	if err := lockB(tk, b); err != nil {
		t.Fatal(err)
	}
	// Tl requests a: matches the signature, yields, then the max-yield
	// bound releases it even though Tk never unlocks b.
	start := time.Now()
	if err := lockA(tl, a); err != nil {
		t.Fatalf("lock a: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Error("max-yield bound did not release the thread promptly")
	}
	_ = a.UnlockT(tl)
	_ = b.UnlockT(tk)
	if rt.Stats().Aborts == 0 {
		t.Error("abort not counted")
	}
}

func TestAbortThresholdDisablesSignature(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 1
	cfg.MaxYield = 5 * time.Millisecond
	cfg.AbortDisableThreshold = 2
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)
	sig := rt.History().Snapshot()[0]

	tk := rt.RegisterThread("Tk")
	tl := rt.RegisterThread("Tl")
	defer tk.Close()
	defer tl.Close()

	if err := lockB(tk, b); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := lockA(tl, a); err != nil {
			t.Fatalf("lock %d: %v", i, err)
		}
		_ = a.UnlockT(tl)
	}
	if !sig.Disabled {
		t.Error("signature should auto-disable after repeated aborts (§5.7)")
	}
	_ = b.UnlockT(tk)
}

func TestTryLockRefusedByAvoidance(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 1
	var rt *Runtime
	cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
	rt = MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	// The signature is recorded from a deadlock whose first acquisition
	// of a went through the trylock call site (trylock on a free lock
	// succeeds and produces a hold edge like any other acquisition).
	seedSignatureVia(t, rt, a, b, tryAcquireA, lockB)

	tk := rt.RegisterThread("Tk")
	tl := rt.RegisterThread("Tl")
	defer tk.Close()
	defer tl.Close()
	if err := lockB(tk, b); err != nil {
		t.Fatal(err)
	}
	// a is free, but taking it through the signature path would
	// instantiate the pattern: TryLock must refuse rather than wait.
	ok, err := tryLockA(tl, a)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("trylock must refuse a move matching a deadlock signature")
	}
	_ = b.UnlockT(tk)
}

//go:noinline
func tryLockA(t *Thread, m *Mutex) (bool, error) { return m.TryLockT(t) }

// tryAcquireA adapts tryLockA for the deadlock driver; the innermost
// frame is tryLockA's TryLockT call site either way.
func tryAcquireA(t *Thread, m *Mutex) error {
	ok, err := tryLockA(t, m)
	if err != nil {
		return err
	}
	if !ok {
		return errors.New("busy")
	}
	return nil
}

func TestRecursiveMutex(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	m := rt.NewMutexKind(Recursive)
	for i := 0; i < 3; i++ {
		if err := m.LockT(th); err != nil {
			t.Fatalf("lock %d: %v", i, err)
		}
	}
	if m.Holder() != th.ID() {
		t.Error("holder wrong")
	}
	for i := 0; i < 3; i++ {
		if err := m.UnlockT(th); err != nil {
			t.Fatalf("unlock %d: %v", i, err)
		}
	}
	if m.Holder() != 0 {
		t.Error("must be free after balanced unlocks")
	}
	if rt.Stats().Reentries != 2 {
		t.Errorf("reentries = %d, want 2", rt.Stats().Reentries)
	}
}

func TestErrorCheckMutexSelfDeadlock(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	m := rt.NewMutexKind(ErrorCheck)
	if err := m.LockT(th); err != nil {
		t.Fatal(err)
	}
	if err := m.LockT(th); !errors.Is(err, ErrSelfDeadlock) {
		t.Fatalf("relock: %v, want ErrSelfDeadlock", err)
	}
	if err := m.UnlockT(th); err != nil {
		t.Fatal(err)
	}
}

func TestUnlockNotOwner(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	t1 := rt.RegisterThread("t1")
	t2 := rt.RegisterThread("t2")
	defer t1.Close()
	defer t2.Close()
	m := rt.NewMutex()
	if err := m.UnlockT(t1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unlock free mutex: %v", err)
	}
	if err := m.LockT(t1); err != nil {
		t.Fatal(err)
	}
	if err := m.UnlockT(t2); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("unlock by non-owner: %v", err)
	}
	_ = m.UnlockT(t1)
}

func TestTryLock(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	t1 := rt.RegisterThread("t1")
	t2 := rt.RegisterThread("t2")
	defer t1.Close()
	defer t2.Close()
	m := rt.NewMutex()
	ok, err := m.TryLockT(t1)
	if !ok || err != nil {
		t.Fatalf("trylock free: %v %v", ok, err)
	}
	ok, err = m.TryLockT(t2)
	if ok || err != nil {
		t.Fatalf("trylock held: %v %v", ok, err)
	}
	_ = m.UnlockT(t1)
	if rt.Stats().Cancels == 0 {
		t.Error("failed trylock must emit cancel (§6)")
	}
}

func TestLockTimeout(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	t1 := rt.RegisterThread("t1")
	t2 := rt.RegisterThread("t2")
	defer t1.Close()
	defer t2.Close()
	m := rt.NewMutex()
	if err := m.LockT(t1); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	err := m.LockTimeoutT(t2, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("returned before the deadline")
	}
	_ = m.UnlockT(t1)
	if err := m.LockTimeoutT(t2, 100*time.Millisecond); err != nil {
		t.Fatalf("timed lock of free mutex: %v", err)
	}
	_ = m.UnlockT(t2)
	if err := m.LockTimeoutT(t2, 0); !errors.Is(err, ErrTimeout) {
		t.Error("non-positive timeout must fail immediately")
	}
}

func TestImplicitGoroutineAPI(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	if err := m.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
	if rt.CurrentThread() != rt.CurrentThread() {
		t.Error("CurrentThread not cached")
	}
	var other *Thread
	done := make(chan struct{})
	go func() { other = rt.CurrentThread(); close(done) }()
	<-done
	if other == rt.CurrentThread() {
		t.Error("distinct goroutines must get distinct threads")
	}
}

func TestModeOffIsRawMutex(t *testing.T) {
	cfg := testConfig()
	cfg.Mode = ModeOff
	rt := MustNew(cfg)
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	m := rt.NewMutex()
	for i := 0; i < 100; i++ {
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		if err := m.UnlockT(th); err != nil {
			t.Fatal(err)
		}
	}
	if rt.Stats().Requests != 0 {
		t.Error("ModeOff must not run the avoidance path")
	}
}

func TestGuardVariants(t *testing.T) {
	for _, g := range []GuardKind{GuardMutex, GuardSpin, GuardFilter} {
		cfg := testConfig()
		cfg.MatchDepth = 2
		cfg.Guard = g
		cfg.MaxThreads = 32
		var rt *Runtime
		cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
		rt = MustNew(cfg)
		a, b := rt.NewMutex(), rt.NewMutex()
		forceDeadlock(rt, a, b, holdTime)
		if rt.History().Len() != 1 {
			t.Errorf("guard %d: history len %d", g, rt.History().Len())
		}
		rt.Stop()
	}
}

func TestReloadHistoryLivePatch(t *testing.T) {
	dir := t.TempDir()
	histPath := filepath.Join(dir, "hist.json")

	{
		var rt *Runtime
		cfg := testConfig()
		cfg.MatchDepth = 2
		cfg.HistoryPath = histPath
		cfg.OnDeadlock = func(info monitor.DeadlockInfo) { rt.AbortThreads(info.ThreadIDs...) }
		rt = MustNew(cfg)
		a, b := rt.NewMutex(), rt.NewMutex()
		forceDeadlock(rt, a, b, holdTime)
		rt.Stop()
	}

	cfg := testConfig()
	cfg.HistoryPath = histPath
	rt := MustNew(cfg)
	defer rt.Stop()
	rt.History().ReplaceAll(signature.NewHistory())
	if rt.History().Len() != 0 {
		t.Fatal("precondition failed")
	}
	if err := rt.ReloadHistory(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("reload did not pick up signatures: %d", rt.History().Len())
	}
}

func TestConcurrentStressNoYieldWithEmptyHistory(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	locks := make([]*Mutex, 4)
	for i := range locks {
		locks[i] = rt.NewMutex()
	}
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := rt.RegisterThread("w")
			defer th.Close()
			for i := 0; i < 200; i++ {
				l := locks[(g+i)%len(locks)]
				if err := l.LockT(th); err != nil {
					t.Errorf("lock: %v", err)
					return
				}
				_ = l.UnlockT(th)
			}
		}(g)
	}
	wg.Wait()
	if y := rt.Stats().Yields; y != 0 {
		t.Errorf("yields = %d with empty history", y)
	}
}

func TestStopIdempotentAndSaves(t *testing.T) {
	dir := t.TempDir()
	cfg := testConfig()
	cfg.HistoryPath = filepath.Join(dir, "h.json")
	rt := MustNew(cfg)
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestThreadCloseFreesSlot(t *testing.T) {
	cfg := testConfig()
	cfg.Guard = GuardFilter
	cfg.MaxThreads = 2
	rt := MustNew(cfg)
	defer rt.Stop()
	for i := 0; i < 10; i++ {
		th := rt.RegisterThread("t")
		m := rt.NewMutex()
		if err := m.LockT(th); err != nil {
			t.Fatal(err)
		}
		_ = m.UnlockT(th)
		th.Close()
	}
	if rt.NumThreads() != 0 {
		t.Errorf("NumThreads = %d", rt.NumThreads())
	}
}
