// Store-driven runtime tests: two live runtimes over one shared store
// converge through their sync loops — new signatures enable avoidance in
// the peer (danger-index epoch bumped, fast-path markers invalidated)
// within one sync interval, and removals/disabled-flips propagate
// without resurrection.
package core

import (
	"context"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dimmunix/internal/histstore"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
	"dimmunix/internal/stack"
)

const testSyncInterval = 10 * time.Millisecond

func syncedConfig(st histstore.Store) Config {
	cfg := testConfig()
	cfg.HistoryStore = st
	cfg.SyncInterval = testSyncInterval
	cfg.RecoverAborts = true
	cfg.MatchDepth = 2
	return cfg
}

// TestTwoRuntimesConvergeOverFileStore: the full propagation cycle over
// one shared file — archive on A appears on B (epoch bump observed),
// disable on B reaches A, removal on A reaches B, and a stale push from
// B cannot resurrect it.
func TestTwoRuntimesConvergeOverFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.json")
	rtA := MustNew(syncedConfig(histstore.NewFileStore(path)))
	defer rtA.Stop()
	rtB := MustNew(syncedConfig(histstore.NewFileStore(path)))
	defer rtB.Stop()

	epoch0 := rtB.History().Danger().Epoch()

	// A pays the manifestation.
	a, b := rtA.NewMutex(), rtA.NewMutex()
	forceDeadlock(rtA, a, b, holdTime)
	waitFor(t, "A to archive", func() bool { return rtA.History().Len() == 1 })
	sigID := rtA.History().Snapshot()[0].ID

	// B converges through its own sync loop: signature present, danger
	// index republished under a fresh epoch (so any cached fast-path
	// safe-markers are stale), and the stack is indexed as dangerous.
	waitFor(t, "B to converge", func() bool { return rtB.History().Len() == 1 })
	if rtB.History().Danger().Epoch() <= epoch0 {
		t.Fatal("danger-index epoch did not bump on remote arrival")
	}
	if rtB.History().Danger().Len() == 0 {
		t.Fatal("remote signature not indexed as dangerous")
	}

	// B avoids the same pattern on first encounter.
	a2, b2 := rtB.NewMutex(), rtB.NewMutex()
	e1, e2 := forceDeadlock(rtB, a2, b2, holdTime)
	if e1 != nil || e2 != nil {
		t.Fatalf("B deadlocked despite the shared signature: %v %v", e1, e2)
	}
	if rtB.Stats().Yields == 0 {
		t.Fatal("B completed without yielding — avoidance never engaged")
	}

	// Disable on B propagates to A.
	if !rtB.History().SetDisabled(sigID, true) {
		t.Fatal("disable failed")
	}
	waitFor(t, "disable to reach A", func() bool {
		s := rtA.History().Get(sigID)
		return s != nil && s.Disabled
	})

	// Removal on A propagates to B and survives B's own pushes (no
	// resurrection).
	if !rtA.History().Remove(sigID) {
		t.Fatal("remove failed")
	}
	waitFor(t, "removal to reach B", func() bool { return rtB.History().Get(sigID) == nil })
	if err := rtB.SyncNow(context.Background()); err != nil { // B pushes its (tombstoned) state
		t.Fatal(err)
	}
	if err := rtA.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rtA.History().Get(sigID) != nil || rtB.History().Get(sigID) != nil {
		t.Fatal("removed signature resurrected through the store")
	}
}

// TestSyncAppliesPortRulesOnForeignFingerprint: a snapshot pushed under
// a different build fingerprint is run through the sigport rules before
// it joins the live history (§8 porting across code revisions).
func TestSyncAppliesPortRulesOnForeignFingerprint(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.json")

	// "Old build" publishes a signature under its own fingerprint.
	oldCfg := syncedConfig(histstore.NewFileStore(path))
	oldCfg.SyncInterval = -1 // manual sync only
	oldCfg.BuildFingerprint = "build-old"
	rtOld := MustNew(oldCfg)
	a, b := rtOld.NewMutex(), rtOld.NewMutex()
	forceDeadlock(rtOld, a, b, holdTime)
	waitFor(t, "old build to archive", func() bool { return rtOld.History().Len() == 1 })
	oldSig := rtOld.History().Snapshot()[0]
	var oldFunc string
	for _, fr := range oldSig.Stacks[0] {
		oldFunc = fr.Func
		break
	}
	if err := rtOld.Stop(); err != nil {
		t.Fatal(err)
	}

	// "New build" (different fingerprint) pulls with a rename rule, as a
	// static analysis of the upgrade would emit.
	newCfg := syncedConfig(histstore.NewFileStore(path))
	newCfg.BuildFingerprint = "build-new"
	newCfg.SyncPortRules = []sigport.Rule{{Kind: "rename", Func: oldFunc, To: oldFunc + "_v2"}}
	rtNew := MustNew(newCfg)
	defer rtNew.Stop()

	waitFor(t, "ported signature to arrive", func() bool { return rtNew.History().Len() == 1 })
	got := rtNew.History().Snapshot()[0]
	if got.ID == oldSig.ID {
		t.Fatal("signature was not ported (same ID)")
	}
	found := false
	for _, s := range got.Stacks {
		for _, fr := range s {
			if fr.Func == oldFunc+"_v2" {
				found = true
			}
			if fr.Func == oldFunc {
				t.Fatalf("unported frame %q survived the pull", oldFunc)
			}
		}
	}
	if !found {
		t.Fatal("renamed frame missing from the ported signature")
	}
	// The sync loop's own pulls port too (the file still carries the old
	// build's fingerprint until rtNew pushes).
	waitFor(t, "a ported sync pull", func() bool {
		return rtNew.MonitorCounters().SyncPorted.Load() > 0
	})
}

// TestSyncSameFingerprintSkipsPorting: rules configured but the snapshot
// comes from the same build — no porting.
func TestSyncSameFingerprintSkipsPorting(t *testing.T) {
	path := filepath.Join(t.TempDir(), "shared.json")
	mk := func() *Runtime {
		cfg := syncedConfig(histstore.NewFileStore(path))
		cfg.BuildFingerprint = "build-same"
		cfg.SyncPortRules = []sigport.Rule{{Kind: "drop", Func: "core.lockA"}}
		return MustNew(cfg)
	}
	rtA := mk()
	a, b := rtA.NewMutex(), rtA.NewMutex()
	forceDeadlock(rtA, a, b, holdTime)
	waitFor(t, "archive", func() bool { return rtA.History().Len() == 1 })
	if err := rtA.Stop(); err != nil {
		t.Fatal(err)
	}

	rtB := mk()
	defer rtB.Stop()
	waitFor(t, "signature to arrive unported", func() bool { return rtB.History().Len() == 1 })
	if rtB.MonitorCounters().SyncPorted.Load() != 0 {
		t.Fatal("same-fingerprint snapshot was ported")
	}
}

// TestRuntimeStoreResolution covers the Config precedence: explicit
// store > HistorySync spec > HistoryPath > in-memory.
func TestRuntimeStoreResolution(t *testing.T) {
	dir := t.TempDir()

	rt := MustNew(testConfig())
	if rt.HistoryStore() != nil {
		t.Error("in-memory runtime must have no store")
	}
	if err := rt.SyncNow(context.Background()); err == nil {
		t.Error("SyncNow without a store must fail")
	}
	rt.Stop()

	cfg := testConfig()
	cfg.HistoryPath = filepath.Join(dir, "p.json")
	rt = MustNew(cfg)
	if _, ok := rt.HistoryStore().(*histstore.FileStore); !ok {
		t.Errorf("HistoryPath must resolve to a FileStore, got %T", rt.HistoryStore())
	}
	rt.Stop()

	cfg = testConfig()
	cfg.HistorySync = dir + "/"
	rt = MustNew(cfg)
	if _, ok := rt.HistoryStore().(*histstore.DirStore); !ok {
		t.Errorf("HistorySync dir spec must resolve to a DirStore, got %T", rt.HistoryStore())
	}
	rt.Stop()

	explicit := histstore.NewFileStore(filepath.Join(dir, "e.json"))
	cfg = testConfig()
	cfg.HistoryStore = explicit
	cfg.HistorySync = dir + "/"
	rt = MustNew(cfg)
	if rt.HistoryStore() != explicit {
		t.Error("explicit HistoryStore must take precedence")
	}
	rt.Stop()
}

// TestUnreachableDaemonDoesNotBlockStartup: an HTTP store whose daemon
// is down must not keep the runtime from starting — it begins empty and
// the sync loop converges when the daemon returns (availability over
// freshness; file corruption stays fail-fast).
func TestUnreachableDaemonDoesNotBlockStartup(t *testing.T) {
	cfg := syncedConfig(histstore.NewHTTPStore("http://127.0.0.1:1"))
	cfg.SyncInterval = -1 // don't hammer the dead port in the background
	rt, err := New(cfg)
	if err != nil {
		t.Fatalf("unreachable daemon blocked startup: %v", err)
	}
	if rt.History().Len() != 0 {
		t.Fatal("expected an empty starting history")
	}
	if err := rt.SyncNow(context.Background()); err == nil {
		t.Fatal("SyncNow against a dead daemon should report the error")
	}
	_ = rt.Stop() // the final publish fails; Stop must still return

	// A corrupt file store, by contrast, still fails construction.
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	badCfg := testConfig()
	badCfg.HistoryPath = bad
	if _, err := New(badCfg); err == nil {
		t.Fatal("corrupt history file must fail construction")
	}
}

// TestLegacyHistoryPathSemantics: a plain HistoryPath keeps the
// single-process cadence — no sync loop, but archive-time persistence
// and Stop-time publishing still reach the file, and a v1-era workflow
// (ReloadHistory after an external edit) still works.
func TestLegacyHistoryPathSemantics(t *testing.T) {
	path := filepath.Join(t.TempDir(), "legacy.json")
	cfg := testConfig()
	cfg.HistoryPath = path
	cfg.MatchDepth = 2
	cfg.RecoverAborts = true
	rt := MustNew(cfg)
	a, b := rt.NewMutex(), rt.NewMutex()
	forceDeadlock(rt, a, b, holdTime)
	waitFor(t, "archive to persist", func() bool {
		h, err := signature.Load(path)
		return err == nil && h.Len() == 1
	})
	if rt.MonitorCounters().SyncPulls.Load() != 0 {
		t.Error("plain HistoryPath must not run the sync loop")
	}
	if err := rt.Stop(); err != nil {
		t.Fatal(err)
	}

	// An external edit (vendor patch) + ReloadHistory on a fresh runtime.
	rt2 := MustNew(cfg)
	defer rt2.Stop()
	extra := signature.NewHistory()
	extra.Add(signature.New(signature.Deadlock,
		[]stack.Stack{stack.Synthetic(1, 4), stack.Synthetic(2, 4)}, 4))
	if _, err := histstore.NewFileStore(path).Push(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	if err := rt2.ReloadHistory(context.Background()); err != nil {
		t.Fatal(err)
	}
	if rt2.History().Len() != 2 {
		t.Fatalf("ReloadHistory folded %d signatures, want 2", rt2.History().Len())
	}
}
