package core

import (
	"strings"
	"sync"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/stack"
)

// Thread is Dimmunix's handle for one application thread (goroutine).
// Obtain one explicitly with Runtime.RegisterThread (fast) or implicitly
// via Runtime.CurrentThread / the Mutex implicit-API methods (convenient).
// A Thread must only be used by one goroutine at a time.
type Thread struct {
	rt  *Runtime
	ts  *avoidance.ThreadState
	gid uint64

	abortMu sync.Mutex
	abort   chan struct{}
}

// ID returns the thread's Dimmunix ID.
func (t *Thread) ID() int32 { return t.ts.ID }

// Name returns the diagnostic name given at registration.
func (t *Thread) Name() string { return t.ts.Name }

// SetPriority sets the thread's scheduling priority for starvation-break
// victim selection (§8 extension): among starved threads, the
// highest-priority one is freed first. Default 0.
func (t *Thread) SetPriority(p int32) { t.ts.Priority.Store(p) }

// Priority returns the thread's priority.
func (t *Thread) Priority() int32 { return t.ts.Priority.Load() }

// Close deregisters the thread and prunes its state from the monitor's
// graph. The thread must not hold any Dimmunix mutex.
func (t *Thread) Close() {
	t.rt.cache.ThreadExit(t.ts)
	t.rt.unregister(t)
}

// signalAbort makes the thread's pending (and next) lock wait fail with
// ErrDeadlockRecovered.
func (t *Thread) signalAbort() {
	t.abortMu.Lock()
	select {
	case <-t.abort:
		// already signaled and not yet consumed
	default:
		close(t.abort)
	}
	t.abortMu.Unlock()
}

// abortChan returns the current abort channel.
func (t *Thread) abortChan() <-chan struct{} {
	t.abortMu.Lock()
	ch := t.abort
	t.abortMu.Unlock()
	return ch
}

// consumeAbort re-arms the abort channel after an abort was delivered.
func (t *Thread) consumeAbort() {
	t.abortMu.Lock()
	select {
	case <-t.abort:
		t.abort = make(chan struct{})
	default:
	}
	t.abortMu.Unlock()
}

// captureStack records the caller's call stack with Dimmunix's own frames
// stripped, so the innermost frame is the application's lock call site —
// the Go analog of the paper's return-address stacks.
func (t *Thread) captureStack(extraSkip int) *stack.Interned {
	raw := stack.Capture(extraSkip+1, t.rt.cfg.StackDepth+4)
	i := 0
	for i < len(raw) && isRuntimeFrame(raw[i]) {
		i++
	}
	s := raw[i:]
	if len(s) > t.rt.cfg.StackDepth {
		s = s[:t.rt.cfg.StackDepth]
	}
	if len(s) == 0 {
		s = raw
	}
	return t.rt.interner.Intern(s.Clone())
}

// isRuntimeFrame identifies Dimmunix's own lock-path frames (and only
// those: in-package callers such as this package's tests must survive, so
// the file name is checked too). Frames of the public facade package
// (top-level "dimmunix", no slash in the qualified name) are stripped as
// well, so the innermost frame of a captured stack is always the
// application's lock call site regardless of which API layer it used.
func isRuntimeFrame(f stack.Frame) bool {
	if strings.HasPrefix(f.Func, "dimmunix/internal/core.") {
		switch f.File {
		case "mutex.go", "rwmutex.go", "thread.go", "runtime.go", "config.go", "alias.go":
			return true
		}
		return false
	}
	if strings.HasPrefix(f.Func, "dimmunix.") && !strings.Contains(f.Func, "/") {
		switch f.File {
		case "mutex.go", "rwmutex.go", "default.go", "options.go", "dimmunix.go":
			return true
		}
	}
	return false
}
