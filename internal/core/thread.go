package core

import (
	"strings"
	"sync"
	"sync/atomic"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/stack"
)

// Thread is Dimmunix's handle for one application thread (goroutine).
// Obtain one explicitly with Runtime.RegisterThread (fast) or implicitly
// via Runtime.CurrentThread / the Mutex implicit-API methods (convenient).
// A Thread must only be used by one goroutine at a time.
type Thread struct {
	rt  *Runtime
	ts  *avoidance.ThreadState
	gid uint64 // nonzero marks an implicitly-registered (prunable) thread

	// Idle-pruning state (implicit threads only; see Runtime.janitor).
	pins     atomic.Int32 // operations in flight holding this handle
	lastUse  atomic.Int64 // sweep-clock value at the last implicit lookup
	retired  atomic.Bool  // set by the pruner; pinners verify after pinning
	released atomic.Bool  // registry removal happened (Close or prune)

	abortMu sync.Mutex
	abort   chan struct{}

	// latCtr drives 1-in-64 fast-tier latency sampling (see
	// Runtime.latFast). Owned by the thread's goroutine; no atomics.
	latCtr uint32

	// cls is the per-goroutine classification table: a tiny direct-mapped
	// cache from raw PC stack to (interned stack, safe/dangerous verdict),
	// validated against the danger-index epoch. A Thread is used by one
	// goroutine at a time, so the table needs no synchronization; the
	// steady-state hot path costs one depth-bounded stack capture, one
	// hash, one epoch load — and zero allocations. See captureClassified.
	cls [classSlots]classEntry
}

const (
	classSlots = 4  // direct-mapped slots per thread
	classPCs   = 16 // max raw-PC depth a slot can hold
)

// classEntry caches one call path's capture + classification.
//
// When truncated is set the key (pcs[:n]) is a depth-bounded capture: it
// covers only the innermost frames the danger index needs for a sound
// verdict (DangerIndex.ShallowDepth plus matching/strip slack), and in
// holds the full stack captured at miss time — a representative of the
// call paths sharing that shallow prefix. The classification verdict is
// identical for every such path (it depends only on frames the key
// covers), but the representative's outer frames may differ from the
// live path's, so truncated entries are never allowed to feed the
// guarded tier: a dangerous verdict escalates to a fresh full capture,
// and an epoch move discards the entry (the new index may need deeper
// frames than the key covers).
type classEntry struct {
	in        *stack.Interned // nil marks an empty slot
	epoch     uint64          // danger-index epoch the verdict was computed at
	n         uint8           // raw PC count
	truncated bool            // key is a depth-bounded capture (see above)
	dangerous bool            // verdict at epoch
	pcs       [classPCs]uintptr
}

// pin marks an operation in flight on this handle: the idle pruner never
// retires a pinned thread, so a blocked lock wait (which may leave no
// other avoidance footprint on the fast tier) cannot lose its identity
// or slot mid-operation. Every core lock/unlock/wait entry point pins for
// its duration; pinning an explicit (non-prunable) handle is harmless.
func (t *Thread) pin() { t.pins.Add(1) }

// unpin releases a pin taken by pin or Runtime.currentPinned.
func (t *Thread) unpin() { t.pins.Add(-1) }

// ID returns the thread's Dimmunix ID.
func (t *Thread) ID() int32 { return t.ts.ID }

// Name returns the diagnostic name given at registration.
func (t *Thread) Name() string { return t.ts.Name }

// SetPriority sets the thread's scheduling priority for starvation-break
// victim selection (§8 extension): among starved threads, the
// highest-priority one is freed first. Default 0.
func (t *Thread) SetPriority(p int32) { t.ts.Priority.Store(p) }

// Priority returns the thread's priority.
func (t *Thread) Priority() int32 { return t.ts.Priority.Load() }

// Close deregisters the thread and prunes its state from the monitor's
// graph. The thread must not hold any Dimmunix mutex. Closing a thread
// the idle pruner already retired is a no-op.
func (t *Thread) Close() {
	t.rt.removeThread(t, false)
}

// signalAbort makes the thread's pending (and next) lock wait fail with
// ErrDeadlockRecovered.
func (t *Thread) signalAbort() {
	t.abortMu.Lock()
	select {
	case <-t.abort:
		// already signaled and not yet consumed
	default:
		close(t.abort)
	}
	t.abortMu.Unlock()
}

// abortChan returns the current abort channel.
func (t *Thread) abortChan() <-chan struct{} {
	t.abortMu.Lock()
	ch := t.abort
	t.abortMu.Unlock()
	return ch
}

// consumeAbort re-arms the abort channel after an abort was delivered.
func (t *Thread) consumeAbort() {
	t.abortMu.Lock()
	select {
	case <-t.abort:
		t.abort = make(chan struct{})
	default:
	}
	t.abortMu.Unlock()
}

// capturePCs is the single raw-PC capture site for the core layer: both
// the full-stack path (captureStack) and the fast-tier classification
// path (captureClassified) funnel through it into stack.CapturePCs,
// which is runtime.Callers by default and the frame-pointer walker under
// -tags dimmunix.fp. extraSkip counts frames above capturePCs's caller
// (extraSkip=0 makes the caller's caller the innermost entry, matching
// the old runtime.Callers(extraSkip+2, ...) accounting).
//
// capturePCs and both its callers are noinline so the skip chain is made
// of physical frames: the frame-pointer walker skips physical frames,
// and inlining any function in the chain would make its physical count
// diverge from runtime.Callers' logical count. Frames above the chain
// (lockT, rlockT) are skipped too, but an under-skip there is harmless —
// internPCs strips Dimmunix frames after symbolization — and the fp
// build's verification phase runs through these exact chains.
//
//go:noinline
func capturePCs(extraSkip int, buf []uintptr) int {
	return stack.CapturePCs(extraSkip+2, buf)
}

// captureStack records the caller's call stack with Dimmunix's own frames
// stripped, so the innermost frame is the application's lock call site —
// the Go analog of the paper's return-address stacks.
//
// With the fast tier enabled, the symbolization/strip/intern pipeline is
// memoized by raw PC stack (Runtime.pcCache): after the first occurrence
// of a call path, a capture costs one stack walk plus one hash lookup.
// DisableFastPath keeps the full per-operation pipeline.
//
//go:noinline
func (t *Thread) captureStack(extraSkip int) *stack.Interned {
	max := t.rt.cfg.StackDepth + 4
	if max > stack.MaxCaptureDepth {
		max = stack.MaxCaptureDepth
	}
	var pcbuf [stack.MaxCaptureDepth + 2]uintptr
	n := capturePCs(extraSkip, pcbuf[:max])
	return t.internPCs(pcbuf[:n], max)
}

// internPCs maps a raw PC stack to its interned frame stack: pcCache hit,
// or the full symbolize/strip/truncate/intern pipeline (memoized into the
// pcCache when the fast tier is on).
func (t *Thread) internPCs(pcs []uintptr, max int) *stack.Interned {
	if t.rt.pcCache != nil {
		if in, ok := t.rt.pcCache.Get(pcs); ok {
			return in
		}
	}
	raw := stack.ResolvePCs(pcs, max)
	i := 0
	for i < len(raw) && isRuntimeFrame(raw[i]) {
		i++
	}
	s := raw[i:]
	if len(s) > t.rt.cfg.StackDepth {
		s = s[:t.rt.cfg.StackDepth]
	}
	if len(s) == 0 {
		s = raw
	}
	in := t.rt.interner.Intern(s.Clone())
	if t.rt.pcCache != nil {
		t.rt.pcCache.Put(pcs, in)
	}
	return in
}

// captureClassified is captureStack fused with the fast-tier gate: it
// returns the caller's interned stack and whether the stack is provably
// safe (so the caller may take the lock-free fast tier).
//
// Steady state is a depth-bounded capture: the danger index publishes
// (with its epoch) the minimum number of innermost frames that yields
// the same Dangerous verdict as a full walk (DangerIndex.ShallowDepth),
// and the hot path walks only that many PCs — plus MatchDepth (so a
// newly archived signature's matching window stays covered by the key)
// and strip slack — instead of the full StackDepth+4 frames. On a
// raw-PC hit whose cached verdict is current (danger-index epoch
// matches) and safe, no map shard, no interner, and no allocation is
// touched at all. Escalation back to the full 32-frame walk happens
// exactly when the shallow capture cannot stand on its own:
//
//   - a published ShallowDepth of 0 (calibration-live or depth<=0
//     signatures): the conservative envelope, full capture as before;
//   - a cache miss: the full stack is needed to intern for archiving
//     and event bookkeeping (the shallow key then caches it);
//   - a dangerous verdict on a truncated key: the guarded tier's §5.4
//     matching and archival need the exact deep frames, which a
//     truncated key cannot vouch for (see classEntry);
//   - an epoch move over a truncated entry: the new index may need
//     deeper frames than the key covers, so the entry is discarded and
//     the call path recaptured under the new bound.
//
// The epoch and shallow depth are read from one index load before
// classifying, so a concurrent index publish at worst leaves the entry
// stamped with the older epoch — forcing a revalidation on the next
// hit, never masking a newer index (the PR 7 staleness argument; stale
// fast holds are reconciled by the avoidance layer on the next guarded
// decision).
//
// When the fast tier is off (mode, IgnoreDecisions, DisableFastPath) the
// verdict is always "not safe" and this devolves to captureStack.
//
//go:noinline
func (t *Thread) captureClassified(extraSkip int) (*stack.Interned, bool) {
	cache := t.rt.cache
	if t.rt.pcCache == nil || !cache.FastOK() {
		return t.captureStack(extraSkip + 1), false
	}
	max := t.rt.cfg.StackDepth + 4
	if max > stack.MaxCaptureDepth {
		max = stack.MaxCaptureDepth
	}
	ep, shallow := cache.DangerView()
	bound := max
	if shallow > 0 {
		bound = shallow
		if m := t.rt.cfg.MatchDepth; m > bound {
			bound = m
		}
		bound += 4 // slack for Dimmunix frames stripped after symbolization
		if bound > max {
			bound = max
		}
	}
	var pcbuf [stack.MaxCaptureDepth + 2]uintptr
	n := capturePCs(extraSkip, pcbuf[:bound])
	pcs := pcbuf[:n]
	truncated := n == bound && bound < max
	if n > classPCs {
		// Too deep for a slot (only reachable with a full bound, so the
		// capture is exact): classify through the marker cache only.
		in := t.internPCs(pcs, max)
		return in, cache.ClassifySafe(in)
	}
	h := stack.HashPCs(pcs)
	e := &t.cls[h%classSlots]
	if e.in != nil && int(e.n) == n {
		same := true
		for i := 0; i < n; i++ {
			if e.pcs[i] != pcs[i] {
				same = false
				break
			}
		}
		if same {
			stale := e.epoch != ep
			if stale && !e.truncated {
				// Complete capture: the cached stack is exact, so the
				// verdict can revalidate in place via the marker cache.
				e.dangerous = !cache.ClassifySafe(e.in)
				e.epoch = ep
				stale = false
			}
			if !stale {
				if e.dangerous && e.truncated {
					// Guarded tier ahead: recapture the exact full stack.
					return t.captureStack(extraSkip + 1), false
				}
				return e.in, !e.dangerous
			}
			// Stale truncated entry: discard and refill below.
		}
	}
	var in *stack.Interned
	if truncated {
		// The shallow walk stopped at the bound, so the full stack must
		// be recaptured for archiving and event bookkeeping; the shallow
		// PCs stay as the cache key.
		in = t.captureStack(extraSkip + 1)
	} else {
		in = t.internPCs(pcs, max)
	}
	safe := cache.ClassifySafe(in)
	e.in = in
	e.epoch = ep
	e.n = uint8(n)
	e.truncated = truncated
	e.dangerous = !safe
	copy(e.pcs[:], pcs)
	return in, safe
}

// isRuntimeFrame identifies Dimmunix's own lock-path frames (and only
// those: in-package callers such as this package's tests must survive, so
// the file name is checked too). Frames of the public facade package
// (top-level "dimmunix", no slash in the qualified name) are stripped as
// well, so the innermost frame of a captured stack is always the
// application's lock call site regardless of which API layer it used.
func isRuntimeFrame(f stack.Frame) bool {
	if strings.HasPrefix(f.Func, "dimmunix/internal/core.") {
		switch f.File {
		case "mutex.go", "rwmutex.go", "cond.go", "thread.go", "runtime.go", "config.go", "alias.go":
			return true
		}
		return false
	}
	if strings.HasPrefix(f.Func, "dimmunix.") && !strings.Contains(f.Func, "/") {
		switch f.File {
		case "mutex.go", "rwmutex.go", "cond.go", "default.go", "options.go", "dimmunix.go":
			return true
		}
	}
	return false
}
