package core

import (
	"context"
	"errors"
	"sync"
	"time"
)

// RWMutex is Dimmunix's instrumented reader/writer mutex — a scenario
// class the original paper never covered. The writer path runs the full
// §5.4 avoidance protocol exactly like Mutex; the reader path runs the
// same request protocol and its holds enter the Allowed sets as shared
// ("reader-held") edges, so reader call sites participate in signatures
// and a writer deadlocking against readers is detected, archived, and
// avoided like any other pattern.
//
// Semantics follow sync.RWMutex with two deliberate deviations:
//
//   - acquisition is ownership-checked per Thread (RUnlockT by a thread
//     that holds no read lock returns ErrNotOwner instead of corrupting
//     state; the implicit RUnlock tolerates cross-goroutine hand-off via
//     RUnlockHandoff), and
//   - a thread that already holds a read lock is granted recursive read
//     acquisition immediately even while a writer is waiting, removing
//     sync.RWMutex's recursive-read-lock deadlock.
//
// Writers are preferred over new readers: once a writer is waiting, new
// first-acquisition readers queue behind it.
type RWMutex struct {
	rt *Runtime
	ls *lockStateRef

	mu      sync.Mutex
	gate    chan struct{}         // lazily made; closed+cleared to broadcast
	writer  *Thread               // exclusive holder, nil when not write-locked
	readers map[int32]*readerHold // reader thread ID -> hold record
	hFree   []*readerHold         // recycled hold records (alloc-free read path)
	wwait   int                   // writers blocked in acquire
	retired bool                  // superseded instance (see Retire); grants bounce
}

// Retire marks the mutex as superseded, succeeding only when it is
// observed free (no holder, no reader, no blocked writer) under rw.mu —
// which serializes retirement against every grant, so any straggler
// bounces with ErrMutexRetired and re-resolves. Used by the drop-in
// facade when rebinding after a default-runtime Shutdown.
func (rw *RWMutex) Retire() bool {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.writer != nil || len(rw.readers) != 0 || rw.wwait != 0 {
		return false
	}
	rw.retired = true
	rw.broadcastLocked()
	return true
}

// readerHold records one thread's outstanding read holds. Which of them
// came from the lock-free fast tier lives in the thread's fast-hold log
// (avoidance.Cache.NoteFastHold), not here, so epoch reconciliation can
// find every outstanding fast hold without walking mutex instances.
type readerHold struct {
	t *Thread
	n int // recursive hold count
}

// NewRWMutex creates an instrumented reader/writer mutex.
func (rt *Runtime) NewRWMutex() *RWMutex {
	return &RWMutex{
		rt:      rt,
		ls:      rt.cache.NewLock(),
		readers: make(map[int32]*readerHold),
	}
}

// ID returns the mutex's Dimmunix lock ID.
func (rw *RWMutex) ID() uint64 { return rw.ls.ID }

// Lock write-locks on behalf of the calling goroutine.
func (rw *RWMutex) Lock() error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.LockT(t)
}

// Unlock write-unlocks on behalf of the calling goroutine.
func (rw *RWMutex) Unlock() error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.UnlockT(t)
}

// RLock read-locks on behalf of the calling goroutine.
func (rw *RWMutex) RLock() error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.RLockT(t)
}

// RUnlock read-unlocks on behalf of the calling goroutine — with the
// sync.RWMutex hand-off tolerance: if this goroutine holds no read lock
// but another thread does, one of those holds is released instead (see
// RUnlockHandoff). Use RUnlockT for strict per-thread ownership.
func (rw *RWMutex) RUnlock() error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.RUnlockHandoff(t)
}

// TryLock attempts the write lock without blocking.
func (rw *RWMutex) TryLock() (bool, error) {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.TryLockT(t)
}

// TryRLock attempts a read lock without blocking.
func (rw *RWMutex) TryRLock() (bool, error) {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.TryRLockT(t)
}

// LockTimeout write-locks, failing with ErrTimeout after d.
func (rw *RWMutex) LockTimeout(d time.Duration) error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.LockTimeoutT(t, d)
}

// RLockTimeout read-locks, failing with ErrTimeout after d.
func (rw *RWMutex) RLockTimeout(d time.Duration) error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.RLockTimeoutT(t, d)
}

// LockCtx write-locks, giving up when ctx fires (error is then ctx.Err()).
func (rw *RWMutex) LockCtx(ctx context.Context) error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.LockCtxT(t, ctx)
}

// RLockCtx read-locks, giving up when ctx fires (error is then ctx.Err()).
func (rw *RWMutex) RLockCtx(ctx context.Context) error {
	t := rw.rt.currentPinned()
	defer t.unpin()
	return rw.RLockCtxT(t, ctx)
}

// LockT write-locks on behalf of t, running the full avoidance protocol.
func (rw *RWMutex) LockT(t *Thread) error {
	return rw.lockRW(t, 0, false, nil, false)
}

// RLockT read-locks on behalf of t. The request participates in the
// avoidance protocol; the resulting hold is shared.
func (rw *RWMutex) RLockT(t *Thread) error {
	return rw.lockRW(t, 0, false, nil, true)
}

// TryLockT attempts the write lock without blocking; a YIELD decision
// counts as failure, as with Mutex.TryLockT.
func (rw *RWMutex) TryLockT(t *Thread) (bool, error) {
	return tryResult(rw.lockRW(t, 0, true, nil, false))
}

// TryRLockT attempts a read lock without blocking.
func (rw *RWMutex) TryRLockT(t *Thread) (bool, error) {
	return tryResult(rw.lockRW(t, 0, true, nil, true))
}

// LockTimeoutT write-locks with a deadline.
func (rw *RWMutex) LockTimeoutT(t *Thread, d time.Duration) error {
	if d <= 0 {
		return ErrTimeout
	}
	return rw.lockRW(t, d, false, nil, false)
}

// RLockTimeoutT read-locks with a deadline.
func (rw *RWMutex) RLockTimeoutT(t *Thread, d time.Duration) error {
	if d <= 0 {
		return ErrTimeout
	}
	return rw.lockRW(t, d, false, nil, true)
}

// LockCtxT is LockCtx on behalf of an explicit thread handle.
func (rw *RWMutex) LockCtxT(t *Thread, ctx context.Context) error {
	return withCtx(ctx, func(done <-chan struct{}) error {
		return rw.lockRW(t, 0, false, done, false)
	})
}

// RLockCtxT is RLockCtx on behalf of an explicit thread handle.
func (rw *RWMutex) RLockCtxT(t *Thread, ctx context.Context) error {
	return withCtx(ctx, func(done <-chan struct{}) error {
		return rw.lockRW(t, 0, false, done, true)
	})
}

func tryResult(err error) (bool, error) {
	if err == nil {
		return true, nil
	}
	if errors.Is(err, errWouldBlock) {
		return false, nil
	}
	return false, err
}

func (rw *RWMutex) lockRW(t *Thread, timeout time.Duration, try bool, done <-chan struct{}, read bool) error {
	t.pin() // the pruner must not retire t while this operation is in flight
	defer t.unpin()
	if t.released.Load() {
		return ErrThreadPruned
	}
	if read {
		// Recursive read acquisition never blocks (the shared hold is
		// already granted to this thread), so like Mutex reentrancy it
		// needs no avoidance decision — and granting it even while a
		// writer waits removes sync.RWMutex's recursive-RLock deadlock.
		rw.mu.Lock()
		if h := rw.readers[t.ts.ID]; h != nil {
			h.n++
			rw.mu.Unlock()
			if rw.rt.cfg.Mode != ModeOff {
				in := t.captureStack(1)
				if rw.rt.cache.ReentrantAcquired(t.ts, rw.ls, in) {
					rw.noteFastHold(t, in, true)
				}
			}
			return nil
		}
		rw.mu.Unlock()
	}

	var deadline <-chan time.Time
	var deadlineTimer *time.Timer
	if timeout > 0 {
		deadlineTimer = time.NewTimer(timeout)
		deadline = deadlineTimer.C
		defer deadlineTimer.Stop()
	}

	if rw.rt.cfg.Mode == ModeOff {
		err := rw.acquire(t, try, deadline, done, read)
		if err == nil {
			t.ts.NoteHold() // pruning-only bookkeeping; no cache involved
		}
		return err
	}

	// Latency sampling mirrors Mutex.lockT: 1-in-64 on the fast tier,
	// every observation on the guarded tier.
	t.latCtr++
	var t0 time.Time
	if sampled := t.latCtr&63 == 0; sampled {
		t0 = time.Now()
	}

	in, safe := t.captureClassified(1)

	// Fast tier: a provably safe stack skips the guarded protocol (see
	// Mutex.lockT); the hold enters the thread's fast-hold log so its
	// release pairs with FastRelease and epoch reconciliation can adopt
	// it. An immediate grant costs one buffered event; a blocking one
	// publishes its Go wait edge first.
	if safe {
		switch err := rw.acquire(t, true, nil, nil, read); {
		case err == nil:
			rw.rt.cache.FastAcquiredImmediate(t.ts, rw.ls, in, read)
			rw.noteFastHold(t, in, read)
			if !t0.IsZero() {
				rw.rt.latFast.Record(time.Since(t0))
			}
			return nil
		case !errors.Is(err, errWouldBlock):
			// ErrMutexRetired: propagate so the caller re-resolves.
			return err
		}
		if try {
			rw.rt.cache.FastTryFailed()
			return errWouldBlock
		}
		rw.rt.cache.FastBlocking(t.ts, rw.ls, in)
		if err := rw.acquire(t, false, deadline, done, read); err != nil {
			rw.rt.cache.FastCancel(t.ts, rw.ls)
			return err
		}
		rw.rt.cache.FastAcquired(t.ts, rw.ls, in, read)
		rw.noteFastHold(t, in, read)
		if !t0.IsZero() {
			rw.rt.latFast.Record(time.Since(t0))
		}
		return nil
	}

	if t0.IsZero() {
		t0 = time.Now()
	}

	if err := rw.rt.requestLoop(t, rw.ls, in, try, deadline, done); err != nil {
		return err
	}

	// GO: the allow edge is committed; block on the real lock.
	if err := rw.acquire(t, try, deadline, done, read); err != nil {
		rw.rt.cache.Cancel(t.ts, rw.ls)
		return err
	}
	if read {
		rw.rt.cache.AcquiredShared(t.ts, rw.ls)
	} else {
		rw.rt.cache.Acquired(t.ts, rw.ls)
	}
	rw.rt.latGuarded.Record(time.Since(t0))
	return nil
}

// noteFastHold records a freshly granted fast-tier hold in the thread's
// fast-hold log so its release routes through FastRelease and epoch
// reconciliation can adopt it. For reads the reader-table entry is
// re-checked under rw.mu: if the hold was already handed off and fully
// released (sync.RWMutex's cross-goroutine discipline), the guarded
// Release that retired it was a tolerated no-op and logging the hold now
// would strand a phantom entry — so nothing is recorded. The write path
// is owner-only (only UnlockT/UnlockHandoff by the holder releases it),
// so the hold is provably still live and needs no re-check.
func (rw *RWMutex) noteFastHold(t *Thread, in *stackInterned, read bool) {
	if !read {
		rw.rt.cache.NoteFastHold(t.ts, rw.ls, in, false)
		return
	}
	rw.mu.Lock()
	if rw.readers[t.ts.ID] != nil {
		rw.rt.cache.NoteFastHold(t.ts, rw.ls, in, true)
	}
	rw.mu.Unlock()
}

// acquire performs the raw blocking acquisition against the gate.
func (rw *RWMutex) acquire(t *Thread, try bool, deadline <-chan time.Time, done <-chan struct{}, read bool) error {
	rw.mu.Lock()
	if rw.retired {
		rw.mu.Unlock()
		return ErrMutexRetired
	}
	if rw.grantLocked(t, read) {
		rw.mu.Unlock()
		return nil
	}
	if try {
		rw.mu.Unlock()
		return errWouldBlock
	}
	if !read {
		rw.wwait++
	}
	for {
		gate := rw.gateLocked()
		rw.mu.Unlock()
		var err error
		select {
		case <-gate:
		case <-deadline:
			err = ErrTimeout
		case <-done:
			err = errCtxDone
		case <-t.abortChan():
			t.consumeAbort()
			err = ErrDeadlockRecovered
		}
		rw.mu.Lock()
		if err == nil && rw.retired {
			err = ErrMutexRetired
		}
		if err != nil {
			if !read {
				rw.wwait--
				if rw.wwait == 0 {
					// Readers queued behind this writer may go now.
					rw.broadcastLocked()
				}
			}
			rw.mu.Unlock()
			return err
		}
		if rw.grantLocked(t, read) {
			if !read {
				rw.wwait--
			}
			rw.mu.Unlock()
			return nil
		}
	}
}

// grantLocked attempts the state transition; rw.mu held.
func (rw *RWMutex) grantLocked(t *Thread, read bool) bool {
	if read {
		if rw.writer == nil && rw.wwait == 0 {
			var h *readerHold
			if n := len(rw.hFree); n > 0 {
				h = rw.hFree[n-1]
				rw.hFree = rw.hFree[:n-1]
			} else {
				h = new(readerHold)
			}
			h.t, h.n = t, 1
			rw.readers[t.ts.ID] = h
			return true
		}
		return false
	}
	if rw.writer == nil && len(rw.readers) == 0 {
		rw.writer = t
		return true
	}
	return false
}

func (rw *RWMutex) gateLocked() chan struct{} {
	if rw.gate == nil {
		rw.gate = make(chan struct{})
	}
	return rw.gate
}

func (rw *RWMutex) broadcastLocked() {
	if rw.gate != nil {
		close(rw.gate)
		rw.gate = nil
	}
}

// UnlockT write-unlocks on behalf of t. As with Mutex, the release is
// recorded (buffered into t's event buffer, or published directly)
// strictly before the lock becomes available — both happen under rw.mu —
// and the buffer is flushed before any wait edge t later publishes, so
// the monitor can never observe t blocked while an unflushed release
// would have broken the cycle (§5.2 event order).
func (rw *RWMutex) UnlockT(t *Thread) error {
	t.pin() // keep t live until the release event is emitted
	defer t.unpin()
	rw.mu.Lock()
	if rw.writer != t {
		rw.mu.Unlock()
		return ErrNotOwner
	}
	if rw.rt.cfg.Mode != ModeOff {
		rw.rt.cache.ReleaseAny(t.ts, rw.ls)
	} else {
		t.ts.NoteRelease()
	}
	rw.writer = nil
	rw.broadcastLocked()
	rw.mu.Unlock()
	return nil
}

// RUnlockT read-unlocks on behalf of t (strict: t must hold a read
// lock).
func (rw *RWMutex) RUnlockT(t *Thread) error {
	t.pin()
	defer t.unpin()
	rw.mu.Lock()
	h := rw.readers[t.ts.ID]
	if h == nil {
		rw.mu.Unlock()
		return ErrNotOwner
	}
	rw.runlockLocked(h)
	rw.mu.Unlock()
	return nil
}

// RUnlockHandoff releases one read hold: t's own if it has one,
// otherwise an arbitrary reader's — the sync.RWMutex discipline where
// RLock and RUnlock may run on different goroutines. Under hand-off the
// released hold's thread attribution in the avoidance structures is
// approximate (some reader's hold is retired), which keeps the hold
// multiset correct; prefer RUnlockT when thread identity is known.
func (rw *RWMutex) RUnlockHandoff(t *Thread) error {
	t.pin()
	defer t.unpin()
	rw.mu.Lock()
	h := rw.readers[t.ts.ID]
	if h == nil {
		for _, v := range rw.readers {
			h = v
			break
		}
	}
	if h == nil {
		rw.mu.Unlock()
		return ErrNotOwner
	}
	rw.runlockLocked(h)
	rw.mu.Unlock()
	return nil
}

// runlockLocked retires one of h's read holds; rw.mu held. The release
// event reaches the monitor queue before the lock can become available,
// preserving the §5.2 order.
func (rw *RWMutex) runlockLocked(h *readerHold) {
	if rw.rt.cfg.Mode != ModeOff {
		rw.rt.cache.ReleaseAny(h.t.ts, rw.ls)
	} else if h.n == 1 {
		// ModeOff counts one hold per reader (reentrant reads return
		// before the counter); retire it with the final release.
		h.t.ts.NoteRelease()
	}
	if h.n > 1 {
		h.n--
		return
	}
	delete(rw.readers, h.t.ts.ID)
	if len(rw.hFree) < 64 {
		h.t = nil
		rw.hFree = append(rw.hFree, h)
	}
	if len(rw.readers) == 0 {
		rw.broadcastLocked()
	}
}

// UnlockHandoff write-unlocks on behalf of whichever thread holds the
// write lock — the sync.RWMutex discipline where Lock and Unlock may run
// on different goroutines. See Mutex.UnlockHandoff for the caveats.
func (rw *RWMutex) UnlockHandoff() error {
	rw.mu.Lock()
	t := rw.writer
	rw.mu.Unlock()
	if t == nil {
		return ErrNotOwner
	}
	return rw.UnlockT(t)
}

// Holder returns the write-holding thread's ID (0 when not write-locked).
func (rw *RWMutex) Holder() int32 {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	if rw.writer != nil {
		return rw.writer.ID()
	}
	return 0
}

// ReaderCount returns the number of distinct threads holding read locks.
func (rw *RWMutex) ReaderCount() int {
	rw.mu.Lock()
	defer rw.mu.Unlock()
	return len(rw.readers)
}
