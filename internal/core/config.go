// Package core ties Dimmunix together: the Runtime owns the history, the
// avoidance cache, the event queue, and the monitor thread; Thread and
// Mutex are the instrumented primitives applications use in place of raw
// goroutine identity and sync.Mutex (which Go does not let us interpose —
// see DESIGN.md §2 for the substitution argument).
package core

import (
	"time"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/histstore"
	"dimmunix/internal/monitor"
	"dimmunix/internal/obs"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
)

// Mode selects how much of Dimmunix runs; used for the Fig 8 overhead
// breakdown and for baseline measurements.
type Mode uint8

const (
	// ModeFull is complete Dimmunix (the zero-value default).
	ModeFull Mode = iota
	// ModeOff bypasses Dimmunix entirely: Mutex behaves like a plain
	// (abortable, optionally reentrant) mutex.
	ModeOff
	// ModeInstrument captures stacks and emits events only.
	ModeInstrument
	// ModeDataStructs adds the avoidance data-structure updates, but
	// performs no matching and never yields.
	ModeDataStructs
)

// ImmunityLevel selects weak vs strong immunity (§5.4).
type ImmunityLevel uint8

const (
	// WeakImmunity breaks induced starvation and continues (default).
	WeakImmunity ImmunityLevel = iota
	// StrongImmunity invokes the restart hook on starvation, which
	// guarantees no deadlock or starvation pattern ever reoccurs.
	StrongImmunity
)

// GuardKind selects the §5.6 guard protecting the shared avoidance
// structures.
type GuardKind uint8

const (
	// GuardMutex uses sync.Mutex (default).
	GuardMutex GuardKind = iota
	// GuardSpin uses a test-and-set spin lock.
	GuardSpin
	// GuardFilter uses the generalized Peterson filter lock, the
	// paper's lock-free construction. Requires MaxThreads slots.
	GuardFilter
)

// DefaultMaxYield bounds how long a thread may be kept yielding to avoid a
// pattern before it is forcibly released (§5.7 suggests e.g. 200 ms).
const DefaultMaxYield = 200 * time.Millisecond

// DefaultThreadTTL is how long an implicitly-registered goroutine may sit
// idle before its thread slot is pruned (Config.ThreadTTL).
const DefaultThreadTTL = time.Minute

// DefaultSyncInterval is the history-store sync cadence used when a
// store is configured (HistoryStore or HistorySync) and SyncInterval is
// left zero.
const DefaultSyncInterval = 2 * time.Second

// DefaultShutdownTimeout bounds Runtime.Stop's final history publish
// through the store. Shutdown is the one moment the store is allowed to
// cost the host process wall-clock time — one second buys durability
// from a healthy store without letting an outage stall process exit.
const DefaultShutdownTimeout = time.Second

// Config configures a Runtime. The zero value is usable: full Dimmunix,
// weak immunity, τ = 100 ms, matching depth 4, no history file.
type Config struct {
	// HistoryPath is the persistent history file ("" = in-memory only).
	// It is served by a FileStore underneath; unlike HistoryStore /
	// HistorySync it does not enable the periodic sync loop by default,
	// preserving the single-process semantics (save on archive and Stop,
	// pull on ReloadHistory).
	HistoryPath string
	// HistoryStore, when non-nil, is the shared immunity store this
	// runtime loads from, persists to, and syncs with (§8 distribution).
	// Takes precedence over HistorySync and HistoryPath.
	HistoryStore histstore.Store
	// HistorySync is a store specification string (histstore.Open form:
	// a file path, a directory, or an http:// daemon URL), the
	// DIMMUNIX_HISTORY_SYNC plumbing. Used when HistoryStore is nil.
	HistorySync string
	// SyncInterval is the pull→merge→push cadence against the store.
	// Zero selects DefaultSyncInterval when a store was configured via
	// HistoryStore/HistorySync (and disables the loop for plain
	// HistoryPath); negative disables the loop entirely.
	SyncInterval time.Duration
	// SyncRoundTimeout bounds one sync round's store I/O (probe + pull +
	// push); an overrunning round is abandoned and retried with backoff.
	// Zero selects monitor.DefaultSyncRoundTimeout, negative disables
	// the bound.
	SyncRoundTimeout time.Duration
	// ShutdownTimeout bounds the final history publish Runtime.Stop
	// performs through the store: when the store is unreachable, Stop
	// abandons the publish after this long instead of stalling process
	// exit (the local journal/file state and every earlier push keep the
	// immunity). Zero selects DefaultShutdownTimeout, negative removes
	// the bound.
	ShutdownTimeout time.Duration
	// SyncPortRules are sigport rules applied to pulled snapshots whose
	// build fingerprint differs from BuildFingerprint (§8 porting).
	SyncPortRules []sigport.Rule
	// BuildFingerprint identifies this build in pushed snapshots (""
	// selects signature.BuildFingerprint()).
	BuildFingerprint string
	// TracePath arms trace mode: every acquisition event the monitor
	// drains — including fast-tier operations, so the journal captures
	// the complete lock-order behavior — is appended to this binary
	// journal (internal/trace format) for offline deadlock prediction
	// (dimmunix-predict). Recording happens on the monitor goroutine,
	// off the lock path; "" (the default) records nothing. The
	// DIMMUNIX_TRACE env var is the no-code-change plumbing.
	TracePath string
	// TraceMaxBytes bounds the trace journal: at the bound the journal
	// rotates to TracePath+".1" and starts fresh, so a long-lived
	// process keeps a sliding window instead of filling the disk. Zero
	// selects trace.DefaultMaxBytes; negative disables the bound.
	TraceMaxBytes int64
	// Tau is the monitor wakeup period (default 100 ms).
	Tau time.Duration
	// MatchDepth is the fixed matching depth recorded in new signatures
	// (default 4, §5.5).
	MatchDepth int
	// Calibrate arms dynamic matching-depth calibration on new
	// signatures (§5.5). Off by default, as in the paper's evaluation.
	Calibrate bool
	// CalibMaxDepth, CalibNA, CalibNT override the calibration
	// parameters (defaults 10, 20, 10000).
	CalibMaxDepth int
	CalibNA       int
	CalibNT       uint64
	// DiscardObsolete removes signatures whose completed calibration
	// shows a 100% false-positive rate at the chosen depth (§8:
	// obsolete after an upgrade).
	DiscardObsolete bool
	// Immunity selects weak or strong immunity.
	Immunity ImmunityLevel
	// Mode selects the instrumentation level.
	Mode Mode
	// IgnoreDecisions computes avoidance decisions but never yields
	// (the Table 1 control configuration).
	IgnoreDecisions bool
	// ProbeDepth, when > 0, re-checks each avoidance at this depth and
	// counts failures as probe false positives (§7.3 methodology).
	ProbeDepth int
	// MaxYield bounds one yield episode; 0 selects DefaultMaxYield,
	// negative disables the bound.
	MaxYield time.Duration
	// AbortDisableThreshold auto-disables a signature after this many
	// max-yield aborts (0 = never auto-disable).
	AbortDisableThreshold uint64
	// Guard selects the avoidance guard implementation.
	Guard GuardKind
	// GuardShards splits the avoidance guard into this many independently
	// lockable shards (<= 1 keeps the single global guard). Decision
	// operations still acquire every shard; bookkeeping operations
	// (acquired/release) take only the lock's shard and the thread's home
	// shard, so they stop serializing against each other. Most workloads
	// should prefer the default: the lock-free fast path already removes
	// safe traffic from the guard entirely, and sharding only helps when
	// the residual guarded bookkeeping itself is contended (e.g. the
	// data-structs ablation, or dense dangerous-stack traffic over many
	// locks).
	GuardShards int
	// DisableFastPath forces every request through the guarded §5.4
	// protocol, disabling the epoch-validated safe-stack bypass. Used for
	// benchmark baselines and differential testing.
	DisableFastPath bool
	// MaxThreads sizes the thread slot table (default 1024; the paper
	// scales Dimmunix to 1024 threads).
	MaxThreads int
	// ThreadTTL bounds how long an idle implicitly-registered thread
	// (CurrentThread with no explicit handle) stays registered: a
	// goroutine quiescent for at least this long has its thread slot
	// pruned and reclaimed, so goroutine-per-request servers do not grow
	// the runtime maps unboundedly. Zero selects DefaultThreadTTL;
	// negative disables pruning. Explicit RegisterThread handles are
	// never pruned.
	ThreadTTL time.Duration
	// StackDepth is the number of frames captured per lock operation
	// (default 16; must be at least MatchDepth and the calibration max).
	StackDepth int
	// RecoverAborts arms the built-in recovery policy: when a deadlock is
	// detected (and its signature archived), the involved threads' lock
	// waits are aborted so their Lock calls return ErrDeadlockRecovered —
	// the in-process analog of the paper's restart-based recovery (§3).
	// OnDeadlock, if also set, still runs after the aborts are issued.
	RecoverAborts bool
	// OnDeadlock is the §3 recovery hook, called after the signature is
	// archived. Runs on the monitor goroutine.
	OnDeadlock func(monitor.DeadlockInfo)
	// OnStarvation is called when a yield cycle is handled; with strong
	// immunity this is the restart hook. Runs on the monitor goroutine.
	OnStarvation func(monitor.StarvationInfo)
	// Observers are observability callbacks registered at construction
	// (the WithObserver option): each receives every typed event the
	// runtime publishes, on the bus dispatcher goroutine. A stalled
	// observer stalls only delivery (events drop oldest-first), never
	// lock traffic, the monitor, or Stop.
	Observers []func(obs.Event)
	// EventBuffer sizes the observability ring and each subscriber
	// channel (0 selects obs.DefaultBufferSize).
	EventBuffer int
	// EventBatch is the per-thread monitor-publication batch size:
	// bookkeeping events (acquired/release) accumulate in a per-thread
	// buffer published to the monitor queue as one carrier event when
	// full, when the thread is about to block or exit, and at the start
	// of every monitor pass — so detection still sees every operation
	// within one τ. 0 selects DefaultEventBatch; values <= 1 disable
	// batching (every event publishes immediately).
	EventBatch int
}

// DefaultEventBatch is the default per-thread event batch size.
const DefaultEventBatch = 64

func (c *Config) fill() {
	if c.Tau <= 0 {
		c.Tau = monitor.DefaultTau
	}
	if c.MatchDepth <= 0 {
		c.MatchDepth = signature.DefaultDepth
	}
	if c.MaxYield == 0 {
		c.MaxYield = DefaultMaxYield
	}
	if c.ShutdownTimeout == 0 {
		c.ShutdownTimeout = DefaultShutdownTimeout
	}
	if c.MaxThreads <= 0 {
		c.MaxThreads = 1024
	}
	if c.GuardShards < 1 {
		c.GuardShards = 1
	}
	if c.ThreadTTL == 0 {
		c.ThreadTTL = DefaultThreadTTL
	}
	if c.StackDepth <= 0 {
		c.StackDepth = 16
	}
	if c.EventBatch == 0 {
		c.EventBatch = DefaultEventBatch
	}
	if c.BuildFingerprint == "" {
		c.BuildFingerprint = signature.BuildFingerprint()
	}
	if c.StackDepth < c.MatchDepth {
		c.StackDepth = c.MatchDepth
	}
	if c.Calibrate && c.CalibMaxDepth > c.StackDepth {
		c.StackDepth = c.CalibMaxDepth
	}
}

func (c *Config) avoidanceMode() avoidance.Mode {
	switch c.Mode {
	case ModeInstrument:
		return avoidance.ModeInstrument
	case ModeDataStructs:
		return avoidance.ModeDataStructs
	default:
		return avoidance.ModeFull
	}
}
