package core

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// MutexKind mirrors the pthreads mutex types (§6).
type MutexKind uint8

const (
	// Normal self-deadlocks if relocked by its owner (like
	// PTHREAD_MUTEX_NORMAL). Dimmunix does not watch for self-deadlocks.
	Normal MutexKind = iota
	// Recursive may be relocked by its owner (Java monitors,
	// PTHREAD_MUTEX_RECURSIVE).
	Recursive
	// ErrorCheck returns ErrSelfDeadlock if relocked by its owner
	// (PTHREAD_MUTEX_ERRORCHECK).
	ErrorCheck
)

// Errors returned by lock operations.
var (
	// ErrSelfDeadlock is the EDEADLK analog for ErrorCheck mutexes.
	ErrSelfDeadlock = errors.New("dimmunix: relock of owned error-checking mutex")
	// ErrTimeout reports a LockTimeout expiry.
	ErrTimeout = errors.New("dimmunix: lock timed out")
	// ErrDeadlockRecovered reports that a recovery hook aborted this
	// thread's lock wait.
	ErrDeadlockRecovered = errors.New("dimmunix: lock wait aborted by deadlock recovery")
	// ErrNotOwner reports an unlock by a non-owner.
	ErrNotOwner = errors.New("dimmunix: unlock of mutex not owned by this thread")
	// ErrThreadPruned reports a lock operation on a Thread handle the
	// idle pruner already retired (best-effort detection): re-resolve
	// via CurrentThread, or hold handles via RegisterThread, which is
	// never pruned.
	ErrThreadPruned = errors.New("dimmunix: thread handle was pruned after idling")
	// ErrMutexRetired reports an acquisition attempt on a mutex that was
	// retired by Retire (the drop-in facade supersedes a binding after a
	// default-runtime Shutdown). Callers should re-resolve the current
	// instance and retry.
	ErrMutexRetired = errors.New("dimmunix: mutex retired after runtime shutdown")
)

// Mutex is Dimmunix's instrumented mutex. Create with Runtime.NewMutex.
// The explicit-thread methods (LockT, UnlockT, ...) are the fast path;
// the implicit methods (Lock, Unlock, ...) resolve the calling goroutine
// via its goroutine ID first.
type Mutex struct {
	rt   *Runtime
	kind MutexKind
	ls   *lockStateRef

	token chan struct{}
	owner atomic.Pointer[Thread]
	rec   int32 // owner-only
	// retired marks a superseded instance (see Retire). Checked under
	// token ownership, so retire-vs-acquire is race-free.
	retired atomic.Bool
}

// lockStateRef aliases avoidance.LockState without exporting it.
type lockStateRef = avoidanceLockState

// NewMutex creates a Normal mutex.
func (rt *Runtime) NewMutex() *Mutex { return rt.NewMutexKind(Normal) }

// NewMutexKind creates a mutex of the given kind.
func (rt *Runtime) NewMutexKind(kind MutexKind) *Mutex {
	m := &Mutex{
		rt:    rt,
		kind:  kind,
		ls:    rt.cache.NewLock(),
		token: make(chan struct{}, 1),
	}
	m.token <- struct{}{}
	return m
}

// ID returns the mutex's Dimmunix lock ID.
func (m *Mutex) ID() uint64 { return m.ls.ID }

// Kind returns the mutex kind.
func (m *Mutex) Kind() MutexKind { return m.kind }

// Lock acquires the mutex on behalf of the calling goroutine.
func (m *Mutex) Lock() error {
	t := m.rt.currentPinned()
	defer t.unpin()
	return m.LockT(t)
}

// Unlock releases the mutex on behalf of the calling goroutine.
func (m *Mutex) Unlock() error {
	t := m.rt.currentPinned()
	defer t.unpin()
	return m.UnlockT(t)
}

// TryLock attempts the lock without blocking.
func (m *Mutex) TryLock() (bool, error) {
	t := m.rt.currentPinned()
	defer t.unpin()
	return m.TryLockT(t)
}

// LockTimeout acquires the mutex, failing with ErrTimeout after d.
func (m *Mutex) LockTimeout(d time.Duration) error {
	t := m.rt.currentPinned()
	defer t.unpin()
	return m.LockTimeoutT(t, d)
}

// MustLock is Lock that panics on error, for code that uses Normal or
// Recursive mutexes without recovery hooks.
func (m *Mutex) MustLock() {
	if err := m.Lock(); err != nil {
		panic(err)
	}
}

// MustUnlock is Unlock that panics on error.
func (m *Mutex) MustUnlock() {
	if err := m.Unlock(); err != nil {
		panic(err)
	}
}

// LockT acquires the mutex on behalf of t, running the full §5.4
// avoidance protocol: request -> (yield)* -> go -> block -> acquired.
func (m *Mutex) LockT(t *Thread) error {
	return m.lockT(t, 0, false, nil)
}

// TryLockT attempts the lock without blocking. A YIELD decision counts as
// failure (the thread may not enter the dangerous pattern), mirroring
// pthread_mutex_trylock + the §6 cancel event.
func (m *Mutex) TryLockT(t *Thread) (bool, error) {
	return tryResult(m.lockT(t, 0, true, nil))
}

// LockTimeoutT acquires with a deadline, like pthread_mutex_timedlock.
func (m *Mutex) LockTimeoutT(t *Thread, d time.Duration) error {
	if d <= 0 {
		return ErrTimeout
	}
	return m.lockT(t, d, false, nil)
}

// LockCtx acquires the mutex on behalf of the calling goroutine, giving
// up when ctx is canceled or its deadline passes (the error is then
// ctx.Err()). A context cancellation rolls the request back with the same
// §6 cancel event as a timeout.
func (m *Mutex) LockCtx(ctx context.Context) error {
	t := m.rt.currentPinned()
	defer t.unpin()
	return m.LockCtxT(t, ctx)
}

// LockCtxT is LockCtx on behalf of an explicit thread handle.
func (m *Mutex) LockCtxT(t *Thread, ctx context.Context) error {
	return withCtx(ctx, func(done <-chan struct{}) error {
		return m.lockT(t, 0, false, done)
	})
}

// withCtx runs acquire with ctx's done channel, translating the internal
// errCtxDone sentinel into ctx.Err(). Shared by every *CtxT entry point.
func withCtx(ctx context.Context, acquire func(done <-chan struct{}) error) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := acquire(ctx.Done())
	if errors.Is(err, errCtxDone) {
		return ctx.Err()
	}
	return err
}

// errWouldBlock is internal: TryLock could not acquire immediately.
var errWouldBlock = errors.New("dimmunix: would block")

// errCtxDone is internal: the caller's context fired mid-acquisition; the
// ctx entry points translate it to ctx.Err().
var errCtxDone = errors.New("dimmunix: context done")

func (m *Mutex) lockT(t *Thread, timeout time.Duration, try bool, done <-chan struct{}) error {
	t.pin() // the pruner must not retire t while this operation is in flight
	defer t.unpin()
	if t.released.Load() {
		return ErrThreadPruned
	}
	// Reentrancy handling first: it never blocks, so no avoidance
	// decision is needed (§5.1 multiset edges record it).
	if m.owner.Load() == t {
		switch m.kind {
		case Recursive:
			m.rec++
			if m.rt.cfg.Mode != ModeOff {
				in := t.captureStack(1)
				if m.rt.cache.ReentrantAcquired(t.ts, m.ls, in) {
					// Owner-only: the hold cannot be released before this
					// call returns, so logging after the fact is safe.
					m.rt.cache.NoteFastHold(t.ts, m.ls, in, false)
				}
			}
			return nil
		case ErrorCheck:
			return ErrSelfDeadlock
		default:
			// Normal: fall through to a genuine self-deadlock on the
			// token, exactly like PTHREAD_MUTEX_NORMAL. TryLock and
			// LockTimeout fail cleanly below.
		}
	}

	if m.rt.cfg.Mode == ModeOff {
		err := m.acquireToken(t, timeout, try, nil, done)
		if err == nil {
			t.ts.NoteHold() // pruning-only bookkeeping; no cache involved
		}
		return err
	}

	// Latency sampling: 1-in-64 fast-tier operations take two timestamps
	// (see Runtime.latFast); the other 63 pay one counter increment.
	t.latCtr++
	var t0 time.Time
	if sampled := t.latCtr&63 == 0; sampled {
		t0 = time.Now()
	}

	in, safe := t.captureClassified(1)

	// Fast tier: a stack provably safe under the live history epoch skips
	// the guarded §5.4 protocol entirely — in steady state one atomic
	// epoch load plus a per-thread table hit, then straight to the raw
	// lock. An uncontended acquisition costs one batched event record;
	// only a blocking one publishes the Go wait edge first (so a
	// brand-new deadlock through this call site is still detected).
	if safe {
		ok, err := m.tokenTry(t)
		if err != nil {
			return err
		}
		if ok {
			m.rt.cache.FastAcquiredImmediate(t.ts, m.ls, in, false)
			m.rt.cache.NoteFastHold(t.ts, m.ls, in, false)
			if !t0.IsZero() {
				m.rt.latFast.Record(time.Since(t0))
			}
			return nil
		}
		if try {
			m.rt.cache.FastTryFailed()
			return errWouldBlock
		}
		m.rt.cache.FastBlocking(t.ts, m.ls, in)
		if err := m.acquireToken(t, timeout, false, nil, done); err != nil {
			m.rt.cache.FastCancel(t.ts, m.ls)
			return err
		}
		m.rt.cache.FastAcquired(t.ts, m.ls, in, false)
		m.rt.cache.NoteFastHold(t.ts, m.ls, in, false)
		if !t0.IsZero() {
			m.rt.latFast.Record(time.Since(t0))
		}
		return nil
	}

	// Guarded tier: always record latency — the §5.4 protocol is already
	// a slow path, so two timestamps disappear in the noise.
	if t0.IsZero() {
		t0 = time.Now()
	}

	var deadline <-chan time.Time
	var deadlineTimer *time.Timer
	if timeout > 0 {
		deadlineTimer = time.NewTimer(timeout)
		deadline = deadlineTimer.C
		defer deadlineTimer.Stop()
	}

	if err := m.rt.requestLoop(t, m.ls, in, try, deadline, done); err != nil {
		return err
	}

	// GO: the allow edge is committed; block on the real lock.
	if err := m.acquireToken(t, timeout, try, deadline, done); err != nil {
		m.rt.cache.Cancel(t.ts, m.ls)
		return err
	}
	m.rt.cache.Acquired(t.ts, m.ls)
	m.rt.latGuarded.Record(time.Since(t0))
	return nil
}

// requestLoop runs the §5.4 request -> (yield)* -> go protocol for thread
// t on lock ls with call stack in, shared by Mutex and RWMutex. On a nil
// return the allow edge is committed and the caller must follow up with
// Acquired/AcquiredShared (or Cancel if the raw block fails). Every
// failure return has already rolled the request back with a Cancel.
func (rt *Runtime) requestLoop(t *Thread, ls *lockStateRef, in *stackInterned, try bool, deadline <-chan time.Time, done <-chan struct{}) error {
	// yieldStart times the yield episode (first YIELD decision until the
	// loop exits, however it exits) for Stats().Latency.Yield. Recorded
	// inline at each exit rather than via a deferred closure so the
	// no-yield guarded path stays allocation-free.
	var yieldStart time.Time
	for {
		dec := rt.cache.Request(t.ts, ls, in)
		if dec.Go {
			if !yieldStart.IsZero() {
				rt.latYield.Record(time.Since(yieldStart))
			}
			return nil
		}
		if try {
			rt.cache.Cancel(t.ts, ls)
			if !yieldStart.IsZero() {
				rt.latYield.Record(time.Since(yieldStart))
			}
			return errWouldBlock
		}
		if yieldStart.IsZero() {
			yieldStart = time.Now()
		}
		// YIELD: wait until a cause binding may have broken, bounded by
		// the max-yield duration (§5.7) and the caller's deadline.
		var maxYield <-chan time.Time
		var yieldTimer *time.Timer
		if rt.cfg.MaxYield > 0 {
			yieldTimer = time.NewTimer(rt.cfg.MaxYield)
			maxYield = yieldTimer.C
		}
		select {
		case <-t.ts.Wake:
		case <-maxYield:
			rt.cache.NoteAbort(t.ts, dec.Sig.ID, rt.cfg.AbortDisableThreshold)
		case <-deadline:
			if yieldTimer != nil {
				yieldTimer.Stop()
			}
			rt.cache.Cancel(t.ts, ls)
			if !yieldStart.IsZero() {
				rt.latYield.Record(time.Since(yieldStart))
			}
			return ErrTimeout
		case <-done:
			if yieldTimer != nil {
				yieldTimer.Stop()
			}
			rt.cache.Cancel(t.ts, ls)
			if !yieldStart.IsZero() {
				rt.latYield.Record(time.Since(yieldStart))
			}
			return errCtxDone
		case <-t.abortChan():
			if yieldTimer != nil {
				yieldTimer.Stop()
			}
			t.consumeAbort()
			rt.cache.Cancel(t.ts, ls)
			if !yieldStart.IsZero() {
				rt.latYield.Record(time.Since(yieldStart))
			}
			return ErrDeadlockRecovered
		}
		if yieldTimer != nil {
			yieldTimer.Stop()
		}
	}
}

// Retire marks the mutex as superseded, succeeding only if it can
// observe the mutex free with no acquisition in flight: taking the token
// serializes retirement against every acquirer, which re-checks the flag
// under token ownership and bounces with ErrMutexRetired. Used by the
// drop-in facade when rebinding after a default-runtime Shutdown; once
// retired, a mutex never grants again.
func (m *Mutex) Retire() bool {
	select {
	case <-m.token:
	default:
		return false
	}
	m.retired.Store(true)
	m.token <- struct{}{}
	return true
}

// tokenTry grabs the token without blocking (the uncontended path).
func (m *Mutex) tokenTry(t *Thread) (bool, error) {
	select {
	case <-m.token:
	default:
		return false, nil
	}
	if m.retired.Load() {
		m.token <- struct{}{}
		return false, ErrMutexRetired
	}
	m.owner.Store(t)
	m.rec = 1
	return true, nil
}

// acquireToken performs the raw blocking acquisition.
func (m *Mutex) acquireToken(t *Thread, timeout time.Duration, try bool, deadline <-chan time.Time, done <-chan struct{}) error {
	if try {
		ok, err := m.tokenTry(t)
		if err != nil {
			return err
		}
		if !ok {
			return errWouldBlock
		}
		return nil
	}
	if timeout > 0 && deadline == nil {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case <-m.token:
	case <-deadline:
		return ErrTimeout
	case <-done:
		return errCtxDone
	case <-t.abortChan():
		t.consumeAbort()
		return ErrDeadlockRecovered
	}
	if m.retired.Load() {
		m.token <- struct{}{}
		return ErrMutexRetired
	}
	m.owner.Store(t)
	m.rec = 1
	return nil
}

// UnlockT releases the mutex on behalf of t. The release event is
// recorded (buffered or queued) strictly before the token is returned;
// because any subsequent wait-edge event of any thread flushes its buffer
// first, the monitor still observes the §5.2 release-before-reacquire
// order wherever it matters for detection.
func (m *Mutex) UnlockT(t *Thread) error {
	if m.owner.Load() != t {
		return ErrNotOwner
	}
	t.pin() // keep t live until the release event is emitted
	defer t.unpin()
	if m.rec > 1 {
		m.rec--
		if m.rt.cfg.Mode != ModeOff {
			m.releaseOne(t)
		}
		return nil
	}
	if m.rt.cfg.Mode != ModeOff {
		m.releaseOne(t)
	} else {
		t.ts.NoteRelease()
	}
	m.rec = 0
	m.owner.Store(nil)
	m.token <- struct{}{}
	return nil
}

// releaseOne retires one recursion level's avoidance hold. ReleaseAny
// routes it through whichever tier the hold lives on now: still-logged
// fast holds retire lock-free, guarded holds — including fast holds that
// epoch reconciliation adopted into the Allowed sets — take the guarded
// release. Hold entries of one lock are interchangeable for removal, so
// pairing levels out of order is immaterial. Owner-only, called before
// the token is returned.
func (m *Mutex) releaseOne(t *Thread) {
	m.rt.cache.ReleaseAny(t.ts, m.ls)
}

// UnlockHandoff releases the mutex on behalf of whichever thread owns it,
// supporting the sync.Mutex discipline where Lock and Unlock may run on
// different goroutines (a locked Mutex handed off to another goroutine).
// It assumes that discipline: the owning goroutine must not operate on
// the mutex concurrently, and misuse detection (double unlock) is
// deterministic only when calls are serialized, exactly as with sync.
func (m *Mutex) UnlockHandoff() error {
	t := m.owner.Load()
	if t == nil {
		return ErrNotOwner
	}
	return m.UnlockT(t)
}

// Holder returns the owning thread's ID (0 when free), for diagnostics.
func (m *Mutex) Holder() int32 {
	if t := m.owner.Load(); t != nil {
		return t.ID()
	}
	return 0
}
