package core

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix/internal/histstore"
	"dimmunix/internal/obs"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// safeLock is a lock call site guaranteed to stay off every signature:
// its innermost frame appears in no archived stack, so requests through
// it classify safe and take the lock-free tier.
//
//go:noinline
func safeLock(t *Thread, m *Mutex) error { return m.LockT(t) }

// TestTierSplitInvariantUnderChurn drives mixed fast-tier and guarded
// traffic from many goroutines (run it with -race) and asserts the
// differential invariant: every non-reentrant acquisition lands in
// exactly one tier, so FastAcquired + GuardedAcquired == Acquired.
func TestTierSplitInvariantUnderChurn(t *testing.T) {
	cfg := testConfig()
	// Depth 1: the signature indexes by innermost frame, so every lockA
	// caller classifies dangerous. (At depth >= 2 the per-depth danger
	// index would keep this test's lockA traffic — a different caller
	// than the seeded stack — on the fast tier.)
	cfg.MatchDepth = 1
	rt := MustNew(cfg)
	defer rt.Stop()

	// Seed a signature so the danger index is non-empty: traffic through
	// lockA/lockB classifies dangerous (guarded tier), safeLock traffic
	// classifies safe (fast tier).
	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	const workers = 8
	const iters = 300
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			th := rt.RegisterThread("churn")
			defer th.Close()
			fast := rt.NewMutex()
			guarded := rt.NewMutex()
			for i := 0; i < iters; i++ {
				if err := safeLock(th, fast); err != nil {
					t.Errorf("fast lock: %v", err)
					return
				}
				_ = fast.UnlockT(th)
				// lockA's innermost frame is in the seeded signature, so
				// this request always takes the guarded §5.4 protocol.
				if err := lockA(th, guarded); err != nil {
					t.Errorf("guarded lock: %v", err)
					return
				}
				_ = guarded.UnlockT(th)
			}
		}(w)
	}
	wg.Wait()

	s := rt.Stats()
	if s.FastAcquired+s.GuardedAcquired != s.Acquired {
		t.Fatalf("tier split broken: fast=%d + guarded=%d != acquired=%d",
			s.FastAcquired, s.GuardedAcquired, s.Acquired)
	}
	if s.FastAcquired < workers*iters {
		t.Errorf("fast tier undercounted: %d < %d", s.FastAcquired, workers*iters)
	}
	if s.GuardedAcquired < workers*iters {
		t.Errorf("guarded tier undercounted: %d < %d", s.GuardedAcquired, workers*iters)
	}
}

// TestYieldEventsMatchCounter seeds immunity, drives repeated avoided
// reruns, and asserts the AvoidanceYield event stream agrees with the
// yield counter and its per-signature split.
func TestYieldEventsMatchCounter(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.EventBuffer = 4096 // no drops: the counts must match exactly
	rt := MustNew(cfg)
	defer rt.Stop()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	events := rt.Subscribe(ctx)
	var yieldEvents atomic.Uint64
	perSig := make(map[string]uint64)
	var mu sync.Mutex
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range events {
			if y, ok := ev.(obs.AvoidanceYield); ok {
				yieldEvents.Add(1)
				mu.Lock()
				perSig[y.SigID]++
				mu.Unlock()
			}
		}
	}()

	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)
	for i := 0; i < 5; i++ {
		err1, err2 := forceDeadlock(rt, a, b, 5*time.Millisecond)
		if err1 != nil || err2 != nil {
			t.Fatalf("immunized run %d failed: %v / %v", i, err1, err2)
		}
	}

	s := rt.Stats()
	if s.Yields == 0 {
		t.Fatal("expected yields")
	}
	waitFor(t, "yield event delivery", func() bool {
		return yieldEvents.Load() == s.Yields
	})
	var total uint64
	for id, n := range s.YieldsBySignature {
		total += n
		mu.Lock()
		got := perSig[id]
		mu.Unlock()
		if got != n {
			t.Errorf("per-sig yield mismatch for %s: events=%d counter=%d", id, got, n)
		}
	}
	if total != s.Yields {
		t.Errorf("per-signature yields sum %d != total %d", total, s.Yields)
	}
	cancel()
	<-done
}

// TestStalledObserverNeverBlocksLockers registers an observer that
// blocks forever with a tiny event ring, then drives yield-heavy
// traffic: every locker must complete (the dispatcher drops oldest
// instead of exerting backpressure) and the drop counter must grow.
func TestStalledObserverNeverBlocksLockers(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.EventBuffer = 2
	cfg.Observers = []func(obs.Event){func(obs.Event) { <-block }}
	rt := MustNew(cfg)
	defer rt.Stop()

	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	doneRuns := make(chan struct{})
	go func() {
		defer close(doneRuns)
		for i := 0; i < 20; i++ {
			err1, err2 := forceDeadlock(rt, a, b, time.Millisecond)
			if err1 != nil || err2 != nil {
				t.Errorf("run %d failed behind stalled observer: %v / %v", i, err1, err2)
				return
			}
		}
	}()
	select {
	case <-doneRuns:
	case <-time.After(30 * time.Second):
		t.Fatal("lock traffic stalled behind a blocked observer")
	}
	waitFor(t, "event drops", func() bool { return rt.Stats().EventsDropped > 0 })
	// Stop must not wait for the stalled observer either.
	start := time.Now()
	if err := rt.Stop(); err != nil {
		t.Fatalf("Stop: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("Stop took %v behind a stalled observer", elapsed)
	}
}

// TestDeadlockAndRecoveryEvents asserts the monitor-side event types:
// one detected deadlock produces SignatureArchived + DeadlockDetected +
// RecoveryAborted (abort recovery armed) + a HistoryChanged "add".
func TestDeadlockAndRecoveryEvents(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 2
	cfg.RecoverAborts = true
	rt := MustNew(cfg)
	defer rt.Stop()

	events := rt.Subscribe(context.Background())
	var archived, detected, recovered, histAdd atomic.Uint64
	go func() {
		for ev := range events {
			switch e := ev.(type) {
			case obs.SignatureArchived:
				archived.Add(1)
			case obs.DeadlockDetected:
				if e.New {
					detected.Add(1)
				}
			case obs.RecoveryAborted:
				recovered.Add(1)
			case obs.HistoryChanged:
				if e.Op == "add" {
					histAdd.Add(1)
				}
			}
		}
	}()

	a, b := rt.NewMutex(), rt.NewMutex()
	forceDeadlock(rt, a, b, holdTime)
	waitFor(t, "event cascade", func() bool {
		return archived.Load() >= 1 && detected.Load() >= 1 &&
			recovered.Load() >= 1 && histAdd.Load() >= 1
	})
	s := rt.Stats()
	if s.Recoveries == 0 {
		t.Error("Recoveries counter did not advance")
	}
	if s.DeadlocksDetected == 0 || s.SignaturesSaved == 0 {
		t.Errorf("monitor counters missing from snapshot: %+v", s)
	}
	if s.HistoryEpoch != rt.History().Danger().Epoch() {
		t.Errorf("HistoryEpoch = %d, want %d", s.HistoryEpoch, rt.History().Danger().Epoch())
	}
}

// TestSignatureDisabledEvent covers the §5.7 disable flow through the
// event stream and the disable counter.
func TestSignatureDisabledEvent(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 2
	rt := MustNew(cfg)
	defer rt.Stop()
	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)

	events := rt.Subscribe(context.Background())
	var disabledID atomic.Value
	go func() {
		for ev := range events {
			if e, ok := ev.(obs.SignatureDisabled); ok && e.Disabled {
				disabledID.Store(e.SigID)
			}
		}
	}()

	sig := rt.History().Snapshot()[0]
	if !rt.History().SetDisabled(sig.ID, true) {
		t.Fatal("SetDisabled failed")
	}
	waitFor(t, "disable event", func() bool {
		id, _ := disabledID.Load().(string)
		return id == sig.ID
	})
	if rt.Stats().SignatureDisables != 1 {
		t.Errorf("SignatureDisables = %d, want 1", rt.Stats().SignatureDisables)
	}
}

// TestSyncStatsAndRoundEvents asserts PR 4's sync counters surface
// through Stats() and that every round publishes a SyncRoundDone event.
func TestSyncStatsAndRoundEvents(t *testing.T) {
	dir := t.TempDir()
	store := histstore.NewFileStore(filepath.Join(dir, "hist.json"))
	cfg := testConfig()
	cfg.HistoryStore = store
	cfg.SyncInterval = -1 // manual rounds only: deterministic counts
	rt := MustNew(cfg)
	defer rt.Stop()

	events := rt.Subscribe(context.Background())
	var rounds atomic.Uint64
	var sawPush atomic.Bool
	go func() {
		for ev := range events {
			if e, ok := ev.(obs.SyncRoundDone); ok {
				rounds.Add(1)
				if e.Pushed {
					sawPush.Store(true)
				}
				if e.Err != "" {
					t.Errorf("unexpected round error: %s", e.Err)
				}
			}
		}
	}()

	// Mutate the history so the round has something to push.
	rt.History().Add(signature.New(signature.Deadlock, []stack.Stack{
		{{Func: "x", File: "f.go", Line: 1}, {Func: "y", File: "f.go", Line: 2}},
		{{Func: "z", File: "g.go", Line: 3}, {Func: "w", File: "g.go", Line: 4}},
	}, 2))
	if err := rt.SyncNow(context.Background()); err != nil {
		t.Fatalf("SyncNow: %v", err)
	}
	s := rt.Stats()
	if s.SyncRounds == 0 {
		t.Fatal("SyncRounds did not advance")
	}
	if s.SyncPushes == 0 {
		t.Fatal("SyncPushes did not advance")
	}
	waitFor(t, "SyncRoundDone event", func() bool {
		return rounds.Load() >= s.SyncRounds && sawPush.Load()
	})
}

// TestHistorySummaryGuardedRead exercises the admin-slot guarded
// snapshot: per-signature counters and the per-runtime yield split.
func TestHistorySummaryGuardedRead(t *testing.T) {
	cfg := testConfig()
	cfg.MatchDepth = 2
	rt := MustNew(cfg)
	defer rt.Stop()
	a, b := rt.NewMutex(), rt.NewMutex()
	seedSignature(t, rt, a, b)
	if err1, err2 := forceDeadlock(rt, a, b, 5*time.Millisecond); err1 != nil || err2 != nil {
		t.Fatalf("immunized run failed: %v / %v", err1, err2)
	}

	sum := rt.HistorySummary()
	if len(sum.Signatures) != 1 {
		t.Fatalf("summary has %d signatures, want 1", len(sum.Signatures))
	}
	ss := sum.Signatures[0]
	if ss.Kind != "deadlock" || ss.Stacks != 2 {
		t.Errorf("summary entry = %+v", ss)
	}
	if ss.Yields == 0 || ss.AvoidCount == 0 {
		t.Errorf("yield accounting missing: yields=%d avoid=%d", ss.Yields, ss.AvoidCount)
	}
	if sum.Epoch != rt.History().Danger().Epoch() {
		t.Errorf("summary epoch %d != danger epoch %d", sum.Epoch, rt.History().Danger().Epoch())
	}
}

// TestThreadPruneCounter: prunes surface in the snapshot.
func TestThreadPruneCounter(t *testing.T) {
	cfg := testConfig()
	cfg.ThreadTTL = -1 // manual pruning only
	rt := MustNew(cfg)
	defer rt.Stop()
	m := rt.NewMutex()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_ = m.Lock() // implicit registration
			_ = m.Unlock()
		}()
	}
	wg.Wait()
	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if rt.Stats().ThreadPrunes == 0 {
		t.Error("ThreadPrunes did not advance after pruning idle implicit threads")
	}
}
