package core

import "dimmunix/internal/avoidance"

// avoidanceLockState keeps the avoidance type out of the public method
// signatures while letting Mutex embed it by reference.
type avoidanceLockState = avoidance.LockState
