package core

import (
	"dimmunix/internal/avoidance"
	"dimmunix/internal/stack"
)

// avoidanceLockState keeps the avoidance type out of the public method
// signatures while letting Mutex embed it by reference.
type avoidanceLockState = avoidance.LockState

// stackInterned likewise keeps the stack type out of internal signatures.
type stackInterned = stack.Interned
