package core

import (
	"context"
	"errors"
	"sync"
	"time"
)

// Cond is a condition variable associated with a Dimmunix mutex. §6 of the
// paper instruments "locks associated with conditional variables" — the
// condition wait itself is not a lock-order hazard, but the release and
// re-acquisition of the associated mutex must flow through the avoidance
// protocol, which is exactly what Wait does here.
//
// Semantics are Mesa-style, like sync.Cond and pthread_cond_t: Wait may
// wake spuriously, so callers loop on their predicate.
type Cond struct {
	// L is the associated mutex; it must be held when calling Wait.
	L *Mutex

	mu      sync.Mutex
	waiters []chan struct{}
}

// ErrNotHeld reports a Cond.Wait without holding the associated mutex.
var ErrNotHeld = errors.New("dimmunix: cond wait without holding the mutex")

// NewCond creates a condition variable bound to l.
func (rt *Runtime) NewCond(l *Mutex) *Cond {
	return &Cond{L: l}
}

// NewCond creates a condition variable bound to l (equivalent to
// Runtime.NewCond: the runtime is implied by the mutex).
func NewCond(l *Mutex) *Cond { return &Cond{L: l} }

// WaitT atomically releases the mutex, waits for Signal/Broadcast (or an
// abort from deadlock recovery), and re-acquires the mutex through the
// full avoidance protocol before returning.
func (c *Cond) WaitT(t *Thread) error {
	return c.waitT(t, 0, nil)
}

// WaitTimeoutT is WaitT with a bound on the wait for the signal. The
// mutex re-acquisition is unbounded either way; ErrTimeout reports that
// the signal did not arrive (the mutex is still re-acquired and held when
// WaitTimeoutT returns ErrTimeout, matching pthread_cond_timedwait).
func (c *Cond) WaitTimeoutT(t *Thread, d time.Duration) error {
	return c.waitT(t, d, nil)
}

// WaitCtxT is WaitT bounded by ctx during the wait for the signal: when
// ctx fires first, the mutex is still re-acquired (so the caller's
// unlock discipline holds, like the timeout path) and ctx.Err() is
// returned. The re-acquisition itself runs the full avoidance protocol
// and is interrupted only by deadlock recovery, whose error is returned
// with the mutex NOT held.
func (c *Cond) WaitCtxT(t *Thread, ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	err := c.waitT(t, 0, ctx.Done())
	if errors.Is(err, errCtxDone) {
		return ctx.Err()
	}
	return err
}

// WaitCtx is WaitCtxT for the calling goroutine.
func (c *Cond) WaitCtx(ctx context.Context) error {
	t := c.L.rt.currentPinned()
	defer t.unpin()
	return c.WaitCtxT(t, ctx)
}

func (c *Cond) waitT(t *Thread, timeout time.Duration, done <-chan struct{}) error {
	t.pin() // the pruner must not retire t between the release and re-acquire
	defer t.unpin()
	if c.L.owner.Load() != t {
		return ErrNotHeld
	}
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.waiters = append(c.waiters, ch)
	c.mu.Unlock()

	if err := c.L.UnlockT(t); err != nil {
		c.removeWaiter(ch)
		return err
	}

	var timedOut, ctxDone bool
	var deadline <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		deadline = timer.C
	}
	select {
	case <-ch:
	case <-deadline:
		timedOut = true
		c.abandonWait(ch)
	case <-done:
		ctxDone = true
		c.abandonWait(ch)
	case <-t.abortChan():
		t.consumeAbort()
		c.abandonWait(ch)
		// Re-acquire so the caller's unlock discipline stays intact,
		// then surface the recovery.
		if err := c.L.LockT(t); err != nil {
			return err
		}
		return ErrDeadlockRecovered
	}

	if err := c.L.LockT(t); err != nil {
		return err
	}
	if timedOut {
		return ErrTimeout
	}
	if ctxDone {
		return errCtxDone
	}
	return nil
}

// Wait is WaitT for the calling goroutine.
func (c *Cond) Wait() error {
	t := c.L.rt.currentPinned()
	defer t.unpin()
	return c.WaitT(t)
}

// removeWaiter drops ch from the wait list if still present.
func (c *Cond) removeWaiter(ch chan struct{}) {
	c.mu.Lock()
	for i, w := range c.waiters {
		if w == ch {
			c.waiters = append(c.waiters[:i], c.waiters[i+1:]...)
			break
		}
	}
	c.mu.Unlock()
}

// abandonWait retires ch after a timeout, cancellation, or abort won
// the race against a wakeup. A Signal may have already popped ch from
// the wait list and delivered its token (Signal sends under c.mu, so
// after removeWaiter returns any such send has completed); consuming
// that token here would strand a sibling waiter whose queue item this
// one never processes — forward it instead.
func (c *Cond) abandonWait(ch chan struct{}) {
	c.removeWaiter(ch)
	select {
	case <-ch:
		c.Signal()
	default:
	}
}

// Signal wakes one waiter, if any. The caller usually holds the mutex but
// is not required to (as with sync.Cond).
func (c *Cond) Signal() {
	c.mu.Lock()
	if n := len(c.waiters); n > 0 {
		ch := c.waiters[0]
		c.waiters = c.waiters[1:]
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	c.mu.Unlock()
}

// Broadcast wakes every waiter.
func (c *Cond) Broadcast() {
	c.mu.Lock()
	for _, ch := range c.waiters {
		select {
		case ch <- struct{}{}:
		default:
		}
	}
	c.waiters = nil
	c.mu.Unlock()
}
