package core

import (
	"sync"
	"testing"

	"dimmunix/internal/calib"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// diffProbeA/diffProbeB are two distinct capture call sites (distinct
// innermost frames), and diffVia threads them through recursion so call
// paths of different physical depth share the same innermost frames —
// exactly the aliasing a truncated classification key must stay sound
// under. Everything in the chain is noinline so the fp build's physical
// skip accounting holds through these test paths too.
//
//go:noinline
func diffProbeA(t *Thread) (*stack.Interned, bool) { return t.captureClassified(0) }

//go:noinline
func diffProbeB(t *Thread) (*stack.Interned, bool) { return t.captureClassified(0) }

//go:noinline
func diffVia(t *Thread, depth int, probe func(*Thread) (*stack.Interned, bool)) (*stack.Interned, bool) {
	if depth <= 0 {
		return probe(t)
	}
	return diffVia(t, depth-1, probe)
}

var diffPaths = []struct {
	name  string
	probe func(*Thread) (*stack.Interned, bool)
	depth int
}{
	{"A0", diffProbeA, 0}, {"A1", diffProbeA, 1}, {"A5", diffProbeA, 5}, {"A9", diffProbeA, 9},
	{"B0", diffProbeB, 0}, {"B2", diffProbeB, 2}, {"B9", diffProbeB, 9},
}

// checkShallowAgreement runs every probe path twice (miss then cached
// entry) and asserts the depth-bounded verdict equals the authoritative
// full-stack verdict of the interned stack the call returned. The
// epoch-stable guard makes the check sound under concurrent history
// mutation: epochs are monotonic, so an unchanged epoch across the probe
// window means the index the fast tier classified against is the one we
// re-verify against.
func checkShallowAgreement(t *testing.T, rt *Runtime, th *Thread) {
	t.Helper()
	for _, p := range diffPaths {
		for round := 0; round < 2; round++ {
			ep1, _ := rt.cache.DangerView()
			in, safe := diffVia(th, p.depth, p.probe)
			idx := rt.hist.Danger()
			if ep2 := idx.Epoch(); ep1 != ep2 {
				continue // epoch moved mid-probe; verdict vintage ambiguous
			}
			if full := !idx.Dangerous(in.S); safe != full {
				t.Fatalf("path %s round %d: shallow/full divergence: fast tier said safe=%v, full classification of the returned stack says safe=%v (epoch %d, shallow %d)\nstack: %v",
					p.name, round, safe, full, ep1, idx.ShallowDepth(), in.S)
			}
		}
	}
}

// captureFor returns the interned full stack of one probe path, for
// building signatures that target real captured call sites.
func captureFor(th *Thread, depth int, probe func(*Thread) (*stack.Interned, bool)) stack.Stack {
	in, _ := diffVia(th, depth, probe)
	return in.S.Clone()
}

// TestShallowFullDifferential drives captureClassified through real call
// paths against every index shape the depth-bounded capture must stay
// sound under: empty history, archived fixed-depth signatures (including
// depth 1 and a depth that exceeds some probe stacks), a sync-pull
// merge, a predicted ReplaceAll swap, disable flips, and the two
// conservative-envelope cases (calibration-armed, depth<=0). At each
// step the fast-tier verdict must match the authoritative full-stack
// classification.
func TestShallowFullDifferential(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("diff")
	defer th.Close()

	if rt.pcCache == nil || !rt.cache.FastOK() {
		t.Fatal("fast tier not armed; the differential would test nothing")
	}

	// Round 1: empty history — everything safe, ShallowDepth 1.
	if got := rt.hist.Danger().ShallowDepth(); got != 1 {
		t.Fatalf("empty history ShallowDepth=%d, want 1", got)
	}
	checkShallowAgreement(t, rt, th)

	// Round 2: archive a default-depth signature from a real captured
	// path; its probe must flip to dangerous. Recursion depth >= 2 keeps
	// the depth-4 matching window inside the shared diffVia frames, so
	// the test-function call line (different per probe site) is outside
	// it and every deep A path aliases into the signature.
	sA := captureFor(th, 3, diffProbeA)
	rt.hist.Add(signature.New(signature.Deadlock, []stack.Stack{sA}, 4))
	checkShallowAgreement(t, rt, th)
	if in, safe := diffVia(th, 3, diffProbeA); safe {
		t.Fatalf("archived signature on path A3 but fast tier still says safe; stack %v", in.S)
	}

	// Round 3: depth-1 signature on the other call site (frames bucket).
	sB := captureFor(th, 2, diffProbeB)
	rt.hist.Add(signature.New(signature.Deadlock, []stack.Stack{sB}, 1))
	checkShallowAgreement(t, rt, th)
	if _, safe := diffVia(th, 9, diffProbeB); safe {
		t.Fatal("depth-1 signature must make every aliasing B path dangerous")
	}

	// Round 4: a deep signature pushes the published shallow bound up.
	deep := captureFor(th, 9, diffProbeA)
	rt.hist.Add(signature.New(signature.Deadlock, []stack.Stack{deep}, 8))
	if got := rt.hist.Danger().ShallowDepth(); got < 8 {
		t.Fatalf("depth-8 signature live but ShallowDepth=%d", got)
	}
	checkShallowAgreement(t, rt, th)

	// Round 5: sync-pull merge from a remote history.
	remote := signature.NewHistory()
	remote.Add(signature.New(signature.Starvation, []stack.Stack{captureFor(th, 1, diffProbeA)}, 2))
	rt.hist.Merge(remote)
	checkShallowAgreement(t, rt, th)

	// Round 6: calibration-armed signature forces the conservative
	// envelope — verdicts still agree, now via full captures.
	calSig := signature.New(signature.Deadlock, []stack.Stack{captureFor(th, 5, diffProbeB)}, 4)
	calSig.Calib = calib.NewState(10, 20, 1000)
	rt.hist.Add(calSig)
	if got := rt.hist.Danger().ShallowDepth(); got != 0 {
		t.Fatalf("calibration-armed signature live but ShallowDepth=%d, want 0", got)
	}
	checkShallowAgreement(t, rt, th)

	// Round 7: disable it — the envelope lifts, bound returns.
	rt.hist.SetDisabled(calSig.ID, true)
	if got := rt.hist.Danger().ShallowDepth(); got == 0 {
		t.Fatal("envelope persists after the calibration signature was disabled")
	}
	checkShallowAgreement(t, rt, th)

	// Round 8: depth<=0 signature (full-stack matching) is the other
	// envelope case.
	zeroSig := signature.New(signature.Deadlock, []stack.Stack{captureFor(th, 2, diffProbeA)}, 4)
	zeroSig.Depth = -1
	rt.hist.Add(zeroSig)
	if got := rt.hist.Danger().ShallowDepth(); got != 0 {
		t.Fatalf("depth<=0 signature live but ShallowDepth=%d, want 0", got)
	}
	checkShallowAgreement(t, rt, th)

	// Round 9: predicted inoculation — ReplaceAll swaps the entire
	// content and jumps the epoch; stale cls entries must revalidate or
	// recapture, never serve the old verdict.
	repl := signature.NewHistory()
	repl.Add(signature.New(signature.Deadlock, []stack.Stack{captureFor(th, 0, diffProbeB)}, 4))
	rt.hist.ReplaceAll(repl)
	checkShallowAgreement(t, rt, th)
	if _, safe := diffVia(th, 0, diffProbeA); !safe {
		t.Fatal("ReplaceAll removed the A signatures but path A0 still classifies dangerous")
	}
}

// TestShallowFullDifferentialConcurrent runs the same agreement check
// from several goroutines while another goroutine continuously mutates
// the history (add/disable/remove/replace), so -race can see the index
// publication, marker, and cls-table interplay under fire. The
// epoch-stable guard in checkShallowAgreement keeps the verdict
// comparison meaningful despite the churn.
func TestShallowFullDifferentialConcurrent(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()

	seedTh := rt.RegisterThread("seed")
	stacks := []stack.Stack{
		captureFor(seedTh, 0, diffProbeA),
		captureFor(seedTh, 3, diffProbeA),
		captureFor(seedTh, 1, diffProbeB),
		captureFor(seedTh, 9, diffProbeB),
	}
	seedTh.Close()

	stop := make(chan struct{})
	var mut sync.WaitGroup
	mut.Add(1)
	go func() {
		defer mut.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			st := stacks[i%len(stacks)]
			depth := []int{1, 2, 4, 8, -1}[i%5]
			sig := signature.New(signature.Deadlock, []stack.Stack{st}, 4)
			if depth == -1 {
				sig.Depth = -1
			} else {
				sig.Depth = depth
			}
			if i%7 == 0 {
				sig.Calib = calib.NewState(10, 20, 1000)
			}
			switch i % 4 {
			case 0, 1:
				rt.hist.Add(sig)
			case 2:
				for _, s := range rt.hist.Snapshot() {
					rt.hist.Remove(s.ID)
					break
				}
			case 3:
				repl := signature.NewHistory()
				repl.Add(sig)
				rt.hist.ReplaceAll(repl)
			}
		}
	}()

	const workers = 4
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread("diff-w")
			defer th.Close()
			for i := 0; i < 300; i++ {
				checkShallowAgreement(t, rt, th)
			}
		}()
	}
	wg.Wait()
	close(stop)
	mut.Wait()
}
