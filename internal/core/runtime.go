package core

import (
	"errors"
	"fmt"
	"sync"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/event"
	"dimmunix/internal/gid"
	"dimmunix/internal/monitor"
	"dimmunix/internal/peterson"
	"dimmunix/internal/queue"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// Runtime is one Dimmunix instance: a history, an avoidance cache, an
// event queue, and a monitor goroutine, serving any number of threads and
// mutexes. A process typically has one Runtime, but tests and benchmarks
// may run several in isolation.
type Runtime struct {
	cfg      Config
	interner *stack.Interner
	hist     *signature.History
	q        *queue.MPSC[event.Event]
	cache    *avoidance.Cache
	mon      *monitor.Monitor
	stats    *avoidance.Stats

	mu       sync.RWMutex
	byGID    map[uint64]*Thread
	byID     map[int32]*Thread
	nextTID  int32
	slotFree []int
	nextSlot int
	stopped  bool
}

// New creates and starts a Runtime (loads the history, launches the
// monitor).
func New(cfg Config) (*Runtime, error) {
	cfg.fill()
	var hist *signature.History
	if cfg.HistoryPath == "" {
		hist = signature.NewHistory()
	} else {
		var err error
		hist, err = signature.Load(cfg.HistoryPath)
		if err != nil {
			return nil, err
		}
	}

	rt := &Runtime{
		cfg:      cfg,
		interner: stack.NewInterner(),
		hist:     hist,
		q:        queue.New[event.Event](),
		stats:    &avoidance.Stats{},
		byGID:    make(map[uint64]*Thread),
		byID:     make(map[int32]*Thread),
		nextSlot: 1, // slot 0 is reserved for the monitor/admin paths
	}

	var guard peterson.Guard
	switch cfg.Guard {
	case GuardSpin:
		guard = peterson.NewSpin()
	case GuardFilter:
		guard = peterson.NewFilter(cfg.MaxThreads + 1)
	default:
		guard = peterson.NewMutex()
	}

	rt.cache = avoidance.NewCache(avoidance.Config{
		Guard:           guard,
		Mode:            cfg.avoidanceMode(),
		IgnoreDecisions: cfg.IgnoreDecisions,
		ProbeDepth:      cfg.ProbeDepth,
		MaxThreads:      cfg.MaxThreads,
		DiscardObsolete: cfg.DiscardObsolete,
	}, rt.interner, hist, rt.stats, rt.q.Push)

	onDeadlock := cfg.OnDeadlock
	if cfg.RecoverAborts {
		user := cfg.OnDeadlock
		onDeadlock = func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
			if user != nil {
				user(info)
			}
		}
	}

	rt.mon = monitor.New(monitor.Config{
		Tau:           cfg.Tau,
		Strong:        cfg.Immunity == StrongImmunity,
		MatchDepth:    cfg.MatchDepth,
		Calibrate:     cfg.Calibrate,
		CalibMaxDepth: cfg.CalibMaxDepth,
		CalibNA:       cfg.CalibNA,
		CalibNT:       cfg.CalibNT,
		OnDeadlock:    onDeadlock,
		OnStarvation:  cfg.OnStarvation,
	}, rt.q, hist, rt.cache, rt.resolveThreadState)

	if cfg.Mode != ModeOff {
		rt.mon.Start()
	}
	return rt, nil
}

// MustNew is New that panics on error (for examples and tests).
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Stop shuts the monitor down (after a final pass) and saves the history.
func (rt *Runtime) Stop() error {
	rt.mu.Lock()
	if rt.stopped {
		rt.mu.Unlock()
		return nil
	}
	rt.stopped = true
	rt.mu.Unlock()
	if rt.cfg.Mode != ModeOff {
		rt.mon.Stop()
	}
	return rt.hist.Save()
}

// History exposes the signature history.
func (rt *Runtime) History() *signature.History { return rt.hist }

// Monitor exposes the monitor (Kick for tests/tools).
func (rt *Runtime) Monitor() *monitor.Monitor { return rt.mon }

// Stats returns a snapshot of the avoidance counters.
func (rt *Runtime) Stats() avoidance.Snapshot { return rt.stats.Snapshot() }

// MonitorCounters returns the monitor-side counters.
func (rt *Runtime) MonitorCounters() *monitor.Counters { return &rt.mon.Counters }

// Config returns the runtime's effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// ReloadHistory re-reads the history file and swaps the signature set
// in-place — the §8 "patch without restarting" path. New signatures take
// effect on the next lock request.
func (rt *Runtime) ReloadHistory() error {
	if rt.cfg.HistoryPath == "" {
		return errors.New("dimmunix: runtime has no history path")
	}
	fresh, err := signature.Load(rt.cfg.HistoryPath)
	if err != nil {
		return err
	}
	rt.hist.ReplaceAll(fresh)
	return nil
}

// RegisterThread creates an explicit thread handle — the fast-path
// identity API. name is for diagnostics only and may be empty.
func (rt *Runtime) RegisterThread(name string) *Thread {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	rt.nextTID++
	id := rt.nextTID
	var slot int
	if n := len(rt.slotFree); n > 0 {
		slot = rt.slotFree[n-1]
		rt.slotFree = rt.slotFree[:n-1]
	} else {
		if rt.cfg.Guard == GuardFilter && rt.nextSlot > rt.cfg.MaxThreads {
			panic(fmt.Sprintf("dimmunix: more than MaxThreads=%d live threads with the filter guard", rt.cfg.MaxThreads))
		}
		slot = rt.nextSlot
		rt.nextSlot++
	}
	t := &Thread{
		rt:    rt,
		ts:    rt.cache.NewThread(id, slot, name),
		abort: make(chan struct{}),
	}
	rt.byID[id] = t
	return t
}

// CurrentThread returns the calling goroutine's thread handle,
// registering it on first use — the implicit identity API (costs a
// goroutine-ID extraction per call; hot paths should hold a *Thread).
func (rt *Runtime) CurrentThread() *Thread {
	g := gid.Current()
	rt.mu.RLock()
	t := rt.byGID[g]
	rt.mu.RUnlock()
	if t != nil {
		return t
	}
	t = rt.RegisterThread("")
	t.gid = g
	rt.mu.Lock()
	rt.byGID[g] = t
	rt.mu.Unlock()
	return t
}

// ThreadByID resolves a thread handle from its Dimmunix ID, or nil.
func (rt *Runtime) ThreadByID(id int32) *Thread {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.byID[id]
}

func (rt *Runtime) resolveThreadState(id int32) *avoidance.ThreadState {
	rt.mu.RLock()
	t := rt.byID[id]
	rt.mu.RUnlock()
	if t == nil {
		return nil
	}
	return t.ts
}

// AbortThreads aborts the pending or future lock waits of the given
// threads, making their Lock calls return ErrDeadlockRecovered. This is
// the building block recovery hooks use to emulate the paper's restart
// (§3: recovery is orthogonal; the hook is the extension point).
func (rt *Runtime) AbortThreads(ids ...int32) {
	for _, id := range ids {
		if t := rt.ThreadByID(id); t != nil {
			t.signalAbort()
		}
	}
}

// unregister removes a closed thread.
func (rt *Runtime) unregister(t *Thread) {
	rt.mu.Lock()
	defer rt.mu.Unlock()
	delete(rt.byID, t.ts.ID)
	if t.gid != 0 {
		delete(rt.byGID, t.gid)
	}
	rt.slotFree = append(rt.slotFree, t.ts.Slot)
}

// NumThreads reports the number of live registered threads.
func (rt *Runtime) NumThreads() int {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return len(rt.byID)
}

// LastAvoided returns the most recently avoided signature, or nil. This
// is the hook for §5.7's user flow: when an avoidance suppresses wanted
// functionality, the user can disable the responsible signature the way
// they would allow a blocked pop-up.
func (rt *Runtime) LastAvoided() *signature.Signature {
	return rt.cache.LastAvoided()
}

// DisableLastAvoided disables the most recently avoided signature and
// reports whether there was one. The signature stays in the history but
// is never avoided again (until re-enabled via the history tooling).
func (rt *Runtime) DisableLastAvoided() bool {
	sig := rt.cache.LastAvoided()
	if sig == nil {
		return false
	}
	return rt.hist.SetDisabled(sig.ID, true)
}

// CapturedStacks returns every distinct call stack observed at lock
// operations so far. The §7.2.1 methodology synthesizes histories from
// "random combinations of real program stacks with which the target
// system performs synchronization"; this is that sampling hook.
func (rt *Runtime) CapturedStacks() []stack.Stack {
	snap := rt.interner.Snapshot()
	out := make([]stack.Stack, 0, len(snap))
	for _, in := range snap {
		out = append(out, in.S.Clone())
	}
	return out
}
