package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"dimmunix/internal/avoidance"
	"dimmunix/internal/event"
	"dimmunix/internal/gid"
	"dimmunix/internal/histstore"
	"dimmunix/internal/monitor"
	"dimmunix/internal/obs"
	"dimmunix/internal/peterson"
	"dimmunix/internal/queue"
	"dimmunix/internal/signature"
	"dimmunix/internal/sigport"
	"dimmunix/internal/stack"
	"dimmunix/internal/trace"
)

// threadShards is the fixed shard count of the runtime's goroutine-ID and
// thread-ID tables. Sharding keeps implicit-identity lookups
// (CurrentThread) from serializing on one map lock at high parallelism.
const threadShards = 64

type gidShard struct {
	mu sync.RWMutex
	m  map[uint64]*Thread
}

type idShard struct {
	mu sync.RWMutex
	m  map[int32]*Thread
}

// Runtime is one Dimmunix instance: a history, an avoidance cache, an
// event queue, and a monitor goroutine, serving any number of threads and
// mutexes. A process typically has one Runtime, but tests and benchmarks
// may run several in isolation.
type Runtime struct {
	cfg      Config
	interner *stack.Interner
	pcCache  *stack.PCCache // nil when DisableFastPath (legacy capture)
	hist     *signature.History
	store    histstore.Store // nil = in-memory-only history
	ownStore bool            // the runtime opened store and closes it on Stop
	q        *queue.MPSC[event.Event]
	cache    *avoidance.Cache
	mon      *monitor.Monitor
	stats    *avoidance.Stats
	trace    *trace.Recorder // nil unless Config.TracePath armed trace mode

	// bus is the observability dispatcher (typed events, bounded,
	// non-blocking); see Subscribe and Config.Observers.
	bus *obs.Bus

	// Runtime-level observability counters (see StatsSnapshot).
	threadPrunes atomic.Uint64
	recoveries   atomic.Uint64
	disables     atomic.Uint64

	// Acquisition-latency histograms (log-scale, fixed buckets; see
	// StatsSnapshot.Latency). Guarded acquisitions and yield episodes
	// record every observation — they are already slow paths — while the
	// fast tier records a 1-in-64 per-thread sample so the steady-state
	// path never pays two timestamp reads per operation.
	latFast    obs.Histogram
	latGuarded obs.Histogram
	latYield   obs.Histogram

	// adminMu serializes admin-path users of adminSlot (the reserved
	// avoidance-guard slot for diagnostics like HistorySummary), keeping
	// the filter guard sound with at most one admin participant.
	adminMu   sync.Mutex
	adminSlot int

	gidTab   [threadShards]gidShard
	idTab    [threadShards]idShard
	nThreads atomic.Int64
	nextTID  atomic.Int32

	// sweep is the coarse idle clock: bumped once per janitor sweep (or
	// PruneIdleThreads call) and stamped into Thread.lastUse on every
	// implicit-identity lookup.
	sweep atomic.Int64

	slotMu   sync.Mutex
	slotFree []int
	slotCool []coolSlot // pruned slots cooling down (filter guard only)
	nextSlot int

	stopped     atomic.Bool
	janitorStop chan struct{}
	janitorDone chan struct{}
}

// coolSlot is a pruned thread slot parked before reuse. Under the filter
// guard a slot identifies a spin-level participant, so a slot freed by
// pruning (rather than an explicit Close) only recycles after a full TTL,
// in case a stale implicit handle still names it.
type coolSlot struct {
	slot int
	at   time.Time
}

// New creates and starts a Runtime (resolves and loads the history
// store, launches the monitor and — when a shared store is configured —
// its sync loop).
func New(cfg Config) (*Runtime, error) {
	cfg.fill()

	// Resolve the immunity store: explicit > spec (env plumbing) >
	// legacy single file > in-memory only.
	var (
		store    histstore.Store
		ownStore bool
		err      error
	)
	switch {
	case cfg.HistoryStore != nil:
		store = cfg.HistoryStore
	case cfg.HistorySync != "":
		store, err = histstore.Open(cfg.HistorySync)
		if err != nil {
			return nil, err
		}
		ownStore = true
	case cfg.HistoryPath != "":
		store = histstore.NewFileStore(cfg.HistoryPath)
		ownStore = true
	}

	hist := signature.NewHistory()
	if store != nil {
		// The startup load runs under a background context: the HTTP
		// backend applies its own fallback deadline, so even a dead
		// daemon cannot block process start beyond it.
		hist, _, err = store.Load(context.Background())
		if err != nil {
			if _, netStore := store.(*histstore.HTTPStore); netStore {
				// An unreachable sync daemon must not keep the application
				// from starting (daemon restarts are routine): begin with
				// an empty history and let the sync loop converge once the
				// daemon is back. File corruption, in contrast, stays
				// fail-fast below.
				hist = signature.NewHistory()
			} else {
				if ownStore {
					store.Close()
				}
				return nil, err
			}
		}
		if len(cfg.SyncPortRules) > 0 && cfg.BuildFingerprint != "" &&
			hist.Fingerprint() != "" && hist.Fingerprint() != cfg.BuildFingerprint {
			// The store was last written by a different build: port the
			// initial snapshot the same way sync pulls are ported (§8).
			hist, _ = sigport.Port(hist, cfg.SyncPortRules)
		}
	}
	hist.SetFingerprint(cfg.BuildFingerprint)

	// Trace mode: the recorder journals every drained acquisition event
	// for offline prediction. Opened before the monitor exists so the
	// very first pass can record; a path that cannot be opened is a
	// configuration error, fail-fast like history-file corruption.
	var rec *trace.Recorder
	if cfg.TracePath != "" {
		rec, err = trace.NewRecorder(cfg.TracePath, cfg.BuildFingerprint, cfg.TraceMaxBytes)
		if err != nil {
			if ownStore {
				store.Close()
			}
			return nil, err
		}
	}

	// The sync loop defaults on only for explicitly shared stores; a
	// plain HistoryPath keeps the single-process cadence (archive-time
	// and Stop-time pushes, manual ReloadHistory pulls).
	syncInterval := cfg.SyncInterval
	if syncInterval == 0 && (cfg.HistoryStore != nil || cfg.HistorySync != "") {
		syncInterval = DefaultSyncInterval
	}
	if syncInterval < 0 || store == nil {
		syncInterval = 0
	}

	rt := &Runtime{
		cfg:       cfg,
		interner:  stack.NewInterner(),
		hist:      hist,
		store:     store,
		ownStore:  ownStore,
		q:         queue.New[event.Event](),
		stats:     &avoidance.Stats{},
		trace:     rec,
		bus:       obs.New(cfg.EventBuffer, cfg.Observers),
		nextSlot:  1, // slot 0 is reserved for the monitor/admin paths
		adminSlot: cfg.MaxThreads + 2,
	}
	// Every history mutation — archive, disable/enable, removal, sync
	// merge, reload — feeds the observability stream (and the disable
	// counter), wired before any traffic can mutate the history. The
	// hook runs under the history lock; bus publishes never block.
	hist.SetNotify(func(ch signature.Change) {
		switch ch.Op {
		case "disable":
			rt.disables.Add(1)
			if rt.bus.Active() {
				rt.bus.Publish(obs.SignatureDisabled{SigID: ch.SigID, Disabled: true})
			}
		case "enable":
			if rt.bus.Active() {
				rt.bus.Publish(obs.SignatureDisabled{SigID: ch.SigID, Disabled: false})
			}
		}
		if rt.bus.Active() {
			rt.bus.Publish(obs.HistoryChanged{
				Op: ch.Op, SigID: ch.SigID, Epoch: ch.Epoch, Signatures: ch.Signatures,
			})
		}
	})
	if !cfg.DisableFastPath {
		// The raw-PC capture cache is part of the fast tier; the disabled
		// configuration keeps the full pre-refactor capture pipeline as a
		// benchmark baseline.
		rt.pcCache = stack.NewPCCache()
	}
	for i := range rt.gidTab {
		rt.gidTab[i].m = make(map[uint64]*Thread)
	}
	for i := range rt.idTab {
		rt.idTab[i].m = make(map[int32]*Thread)
	}

	// Slot 0 is the monitor's; MaxThreads+1 is the sync domain's (sync
	// loop / SyncNow / Stop publish, serialized among themselves by the
	// monitor's syncMu); MaxThreads+2 is the admin domain's (diagnostic
	// reads like HistorySummary, serialized by adminMu). The filter
	// guard needs a seat for each.
	syncSlot := cfg.MaxThreads + 1
	newGuard := func() peterson.Guard {
		switch cfg.Guard {
		case GuardSpin:
			return peterson.NewSpin()
		case GuardFilter:
			return peterson.NewFilter(cfg.MaxThreads + 3)
		default:
			return peterson.NewMutex()
		}
	}

	rt.cache = avoidance.NewCache(avoidance.Config{
		Guard:           newGuard(),
		NewGuard:        newGuard,
		GuardShards:     cfg.GuardShards,
		DisableFastPath: cfg.DisableFastPath,
		Mode:            cfg.avoidanceMode(),
		IgnoreDecisions: cfg.IgnoreDecisions,
		ProbeDepth:      cfg.ProbeDepth,
		MaxThreads:      cfg.MaxThreads,
		DiscardObsolete: cfg.DiscardObsolete,
		EventBatch:      cfg.EventBatch,
		Bus:             rt.bus,
	}, rt.interner, hist, rt.stats, rt.q.Push)

	onDeadlock := cfg.OnDeadlock
	if cfg.RecoverAborts {
		user := cfg.OnDeadlock
		onDeadlock = func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
			rt.recoveries.Add(1)
			if rt.bus.Active() {
				ev := obs.RecoveryAborted{ThreadIDs: info.ThreadIDs}
				if info.Sig != nil {
					ev.SigID = info.Sig.ID
				}
				rt.bus.Publish(ev)
			}
			if user != nil {
				user(info)
			}
		}
	}

	rt.mon = monitor.New(monitor.Config{
		Tau:              cfg.Tau,
		Strong:           cfg.Immunity == StrongImmunity,
		MatchDepth:       cfg.MatchDepth,
		Calibrate:        cfg.Calibrate,
		CalibMaxDepth:    cfg.CalibMaxDepth,
		CalibNA:          cfg.CalibNA,
		CalibNT:          cfg.CalibNT,
		Store:            store,
		SyncInterval:     syncInterval,
		SyncRoundTimeout: cfg.SyncRoundTimeout,
		PortRules:        cfg.SyncPortRules,
		Fingerprint:      cfg.BuildFingerprint,
		SyncSlot:         syncSlot,
		Trace:            rec,
		OnDeadlock:       onDeadlock,
		OnStarvation:     cfg.OnStarvation,
		Bus:              rt.bus,
	}, rt.q, hist, rt.cache, rt.resolveThreadState)

	if cfg.Mode != ModeOff {
		rt.mon.Start()
	}
	if cfg.ThreadTTL > 0 {
		rt.janitorStop = make(chan struct{})
		rt.janitorDone = make(chan struct{})
		// Sweeping every TTL with a one-sweep idle requirement prunes a
		// thread between TTL and 2×TTL after its last use — never sooner
		// than the documented TTL. Runs in every mode: ModeOff tracks
		// holds via ThreadState.NoteHold so quiescence stays provable.
		go rt.janitor(cfg.ThreadTTL)
	}
	return rt, nil
}

// MustNew is New that panics on error (for examples and tests).
func MustNew(cfg Config) *Runtime {
	rt, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return rt
}

// Stop shuts the monitor down (after a final pass, cancelling any sync
// round still blocked in store I/O) and publishes the history through
// the store under the shutdown budget: when the store is unreachable,
// the publish is abandoned after Config.ShutdownTimeout instead of
// stalling the host process — earlier pushes and the local store state
// keep the immunity, and Stop returns the publish error so callers can
// observe the abandoned durability.
func (rt *Runtime) Stop() error {
	if !rt.stopped.CompareAndSwap(false, true) {
		return nil
	}
	if rt.janitorStop != nil {
		close(rt.janitorStop)
		<-rt.janitorDone
	}
	if rt.cfg.Mode != ModeOff {
		rt.mon.Stop()
	}
	var err error
	// After the monitor's final pass: every drained event has been
	// recorded, so the journal is complete when it closes.
	if rt.trace != nil {
		err = rt.trace.Close()
	}
	if rt.store != nil {
		ctx := context.Background()
		if rt.cfg.ShutdownTimeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, rt.cfg.ShutdownTimeout)
			defer cancel()
		}
		if perr := rt.mon.PublishToStore(ctx); err == nil {
			err = perr
		}
		if rt.ownStore {
			if cerr := rt.store.Close(); err == nil {
				err = cerr
			}
		}
	}
	// Last: the bus delivers the shutdown-path events (final sync round,
	// stop-time archives) best-effort, then closes every subscriber
	// channel. Stop never waits on observer code.
	rt.bus.Stop()
	return err
}

// History exposes the signature history.
func (rt *Runtime) History() *signature.History { return rt.hist }

// HistoryStore exposes the resolved immunity store (nil when the history
// is in-memory only).
func (rt *Runtime) HistoryStore() histstore.Store { return rt.store }

// Monitor exposes the monitor (Kick for tests/tools).
func (rt *Runtime) Monitor() *monitor.Monitor { return rt.mon }

// MonitorCounters returns the monitor-side counters.
func (rt *Runtime) MonitorCounters() *monitor.Counters { return &rt.mon.Counters }

// Config returns the runtime's effective configuration.
func (rt *Runtime) Config() Config { return rt.cfg }

// SyncNow performs one synchronous pull→merge→push round against the
// history store — the §8 "patch without restarting" path, now a
// deterministic revision join: remote additions, removals (tombstones),
// and disabled-flips all take effect on the next lock request, and local
// changes are published back. The round runs under the caller's context:
// cancel it (or let its deadline pass) and the store I/O aborts with the
// context's error. Returns an error when the runtime has no store.
func (rt *Runtime) SyncNow(ctx context.Context) error {
	if rt.store == nil {
		return errors.New("dimmunix: runtime has no history store")
	}
	return rt.mon.SyncNow(ctx)
}

// ReloadHistory is the historical name for SyncNow: re-read the backing
// store and fold its state into the live signature set, cancellable
// through ctx like any other sync round.
//
// Semantics changed with format v2: the fold is a merge (revision join),
// not the old file-wins replacement. Deleting a signature by hand-editing
// the file leaves no tombstone, so the live entry survives the merge and
// the next push writes it back — remove signatures through
// History.Remove or `dimmunix-hist remove` instead, which record a
// tombstone that propagates.
func (rt *Runtime) ReloadHistory(ctx context.Context) error { return rt.SyncNow(ctx) }

// RegisterThread creates an explicit thread handle — the fast-path
// identity API. name is for diagnostics only and may be empty. Explicit
// handles are never pruned; release them with Thread.Close.
func (rt *Runtime) RegisterThread(name string) *Thread {
	id := rt.nextTID.Add(1)
	t := &Thread{
		rt:    rt,
		ts:    rt.cache.NewThread(id, rt.allocSlot(), name),
		abort: make(chan struct{}),
	}
	sh := &rt.idTab[uint32(id)%threadShards]
	sh.mu.Lock()
	sh.m[id] = t
	sh.mu.Unlock()
	rt.nThreads.Add(1)
	return t
}

func (rt *Runtime) allocSlot() int {
	rt.slotMu.Lock()
	defer rt.slotMu.Unlock()
	if n := len(rt.slotFree); n > 0 {
		slot := rt.slotFree[n-1]
		rt.slotFree = rt.slotFree[:n-1]
		return slot
	}
	if len(rt.slotCool) > 0 && time.Since(rt.slotCool[0].at) > rt.cfg.ThreadTTL {
		slot := rt.slotCool[0].slot
		rt.slotCool = rt.slotCool[1:]
		return slot
	}
	if rt.cfg.Guard == GuardFilter && rt.nextSlot > rt.cfg.MaxThreads {
		panic(fmt.Sprintf("dimmunix: more than MaxThreads=%d live threads with the filter guard", rt.cfg.MaxThreads))
	}
	slot := rt.nextSlot
	rt.nextSlot++
	return slot
}

func (rt *Runtime) freeSlot(slot int, pruned bool) {
	rt.slotMu.Lock()
	defer rt.slotMu.Unlock()
	if pruned && rt.cfg.Guard == GuardFilter {
		rt.slotCool = append(rt.slotCool, coolSlot{slot: slot, at: time.Now()})
		return
	}
	rt.slotFree = append(rt.slotFree, slot)
}

// CurrentThread returns the calling goroutine's thread handle,
// registering it on first use — the implicit identity API (costs a
// goroutine-ID extraction per call; hot paths should hold a *Thread).
//
// Every core lock/unlock/wait operation pins its thread for its whole
// duration (including blocked waits), and the idle pruner never touches
// a pinned thread or one holding any lock — so a handle in active use is
// safe. With pruning active (Config.ThreadTTL), do not cache a handle
// across long idle stretches while holding nothing: the pruner may
// retire it between operations. Re-resolve via CurrentThread (cheap) or
// use RegisterThread (never pruned) instead.
func (rt *Runtime) CurrentThread() *Thread {
	t := rt.currentPinned()
	t.unpin()
	return t
}

// currentPinned resolves (or registers) the calling goroutine's thread
// and returns it pinned: the pruner will not retire a pinned thread. The
// caller must unpin when its operation completes.
func (rt *Runtime) currentPinned() *Thread {
	g := gid.Current()
	sh := &rt.gidTab[g%threadShards]
	for {
		sh.mu.RLock()
		t := sh.m[g]
		sh.mu.RUnlock()
		if t == nil {
			t = rt.RegisterThread("")
			t.gid = g
			t.lastUse.Store(rt.sweep.Load())
			t.pins.Add(1)
			sh.mu.Lock()
			sh.m[g] = t
			sh.mu.Unlock()
			return t
		}
		// Dekker with the pruner: stamp use, pin, then verify the thread
		// was not concurrently retired. The pruner sets retired first and
		// re-checks pins/lastUse after, so at least one side observes the
		// other.
		t.lastUse.Store(rt.sweep.Load())
		t.pins.Add(1)
		if !t.retired.Load() {
			return t
		}
		t.pins.Add(-1)
		// The pruner won; it is removing t from the table. Retry (and
		// re-register once the removal lands).
		runtime.Gosched()
	}
}

// ThreadByID resolves a thread handle from its Dimmunix ID, or nil.
func (rt *Runtime) ThreadByID(id int32) *Thread {
	sh := &rt.idTab[uint32(id)%threadShards]
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	return sh.m[id]
}

func (rt *Runtime) resolveThreadState(id int32) *avoidance.ThreadState {
	if t := rt.ThreadByID(id); t != nil {
		return t.ts
	}
	return nil
}

// AbortThreads aborts the pending or future lock waits of the given
// threads, making their Lock calls return ErrDeadlockRecovered. This is
// the building block recovery hooks use to emulate the paper's restart
// (§3: recovery is orthogonal; the hook is the extension point).
func (rt *Runtime) AbortThreads(ids ...int32) {
	for _, id := range ids {
		if t := rt.ThreadByID(id); t != nil {
			t.signalAbort()
		}
	}
}

// removeThread detaches a thread from the registry, cleans its avoidance
// state, and recycles its slot. Idempotent: the explicit Close path and
// the pruner may race, and exactly one side wins.
func (rt *Runtime) removeThread(t *Thread, pruned bool) {
	if !t.released.CompareAndSwap(false, true) {
		return
	}
	if rt.cfg.Mode != ModeOff {
		rt.cache.ThreadExit(t.ts)
	}
	ish := &rt.idTab[uint32(t.ts.ID)%threadShards]
	ish.mu.Lock()
	delete(ish.m, t.ts.ID)
	ish.mu.Unlock()
	if t.gid != 0 {
		gsh := &rt.gidTab[t.gid%threadShards]
		gsh.mu.Lock()
		// The goroutine may have re-registered after a prune; only remove
		// the mapping if it still names this handle.
		if gsh.m[t.gid] == t {
			delete(gsh.m, t.gid)
		}
		gsh.mu.Unlock()
	}
	rt.freeSlot(t.ts.Slot, pruned)
	rt.nThreads.Add(-1)
}

// NumThreads reports the number of live registered threads.
func (rt *Runtime) NumThreads() int {
	return int(rt.nThreads.Load())
}

// LiveThreadIDs returns the IDs of every live registered thread, for
// diagnostics and abort-all recovery sweeps.
func (rt *Runtime) LiveThreadIDs() []int32 {
	var ids []int32
	for i := range rt.idTab {
		sh := &rt.idTab[i]
		sh.mu.RLock()
		for id := range sh.m {
			ids = append(ids, id)
		}
		sh.mu.RUnlock()
	}
	return ids
}

// janitor periodically retires idle implicit threads (Config.ThreadTTL).
func (rt *Runtime) janitor(interval time.Duration) {
	defer close(rt.janitorDone)
	if interval < time.Millisecond {
		interval = time.Millisecond
	}
	tick := time.NewTicker(interval)
	defer tick.Stop()
	for {
		select {
		case <-rt.janitorStop:
			return
		case <-tick.C:
			rt.PruneIdleThreads()
		}
	}
}

// PruneIdleThreads advances the idle clock one sweep and retires every
// implicitly-registered thread that is quiescent (holds nothing, waits
// for nothing) and has not been used since before the previous sweep —
// i.e. idle for at least one full sweep interval. Explicit RegisterThread
// handles are untouched. Returns the number of threads pruned.
//
// The janitor calls this every ThreadTTL (so a thread is pruned between
// one and two TTLs after its last use); tests and servers that just
// drained a goroutine flood may call it directly (twice, for brand-new
// idle threads) to reclaim slots immediately.
func (rt *Runtime) PruneIdleThreads() int {
	cutoff := rt.sweep.Add(1) - 2
	pruned := 0
	for i := range rt.gidTab {
		sh := &rt.gidTab[i]
		sh.mu.RLock()
		var cands []*Thread
		for _, t := range sh.m {
			if t.pins.Load() == 0 && t.lastUse.Load() <= cutoff && t.ts.LiveHolds() == 0 {
				cands = append(cands, t)
			}
		}
		sh.mu.RUnlock()
		for _, t := range cands {
			if rt.pruneThread(t, cutoff) {
				pruned++
			}
		}
	}
	rt.threadPrunes.Add(uint64(pruned))
	return pruned
}

// pruneThread retires one idle implicit thread using a set-then-verify
// protocol against concurrent CurrentThread lookups (which stamp lastUse
// and pin before reading the retired flag).
func (rt *Runtime) pruneThread(t *Thread, cutoff int64) bool {
	if t.gid == 0 || !t.retired.CompareAndSwap(false, true) {
		return false
	}
	if t.pins.Load() != 0 || t.lastUse.Load() > cutoff ||
		t.ts.LiveHolds() != 0 || !rt.cache.ThreadQuiescent(t.ts) {
		t.retired.Store(false)
		return false
	}
	rt.removeThread(t, true)
	return true
}

// LastAvoided returns the most recently avoided signature, or nil. This
// is the hook for §5.7's user flow: when an avoidance suppresses wanted
// functionality, the user can disable the responsible signature the way
// they would allow a blocked pop-up.
func (rt *Runtime) LastAvoided() *signature.Signature {
	return rt.cache.LastAvoided()
}

// DisableLastAvoided disables the most recently avoided signature and
// reports whether there was one. The signature stays in the history but
// is never avoided again (until re-enabled via the history tooling).
func (rt *Runtime) DisableLastAvoided() bool {
	sig := rt.cache.LastAvoided()
	if sig == nil {
		return false
	}
	return rt.hist.SetDisabled(sig.ID, true)
}

// CapturedStacks returns every distinct call stack observed at lock
// operations so far. The §7.2.1 methodology synthesizes histories from
// "random combinations of real program stacks with which the target
// system performs synchronization"; this is that sampling hook.
func (rt *Runtime) CapturedStacks() []stack.Stack {
	snap := rt.interner.Snapshot()
	out := make([]stack.Stack, 0, len(snap))
	for _, in := range snap {
		out = append(out, in.S.Clone())
	}
	return out
}
