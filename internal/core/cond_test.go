//lint:file-ignore condloop,unlockcheck these tests orchestrate signals and misuse deliberately (error-path coverage)
package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestCondWaitRequiresMutex(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	m := rt.NewMutex()
	c := rt.NewCond(m)
	if err := c.WaitT(th); !errors.Is(err, ErrNotHeld) {
		t.Fatalf("wait without lock: %v", err)
	}
}

func TestCondSignalWakesOne(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	c := rt.NewCond(m)

	var ready atomic.Int32
	var woken atomic.Int32
	const waiters = 3
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := rt.RegisterThread("w")
			defer th.Close()
			if err := m.LockT(th); err != nil {
				t.Errorf("lock: %v", err)
				return
			}
			ready.Add(1)
			if err := c.WaitT(th); err != nil {
				t.Errorf("wait: %v", err)
			}
			woken.Add(1)
			_ = m.UnlockT(th)
		}(i)
	}
	waitCond(t, func() bool { return ready.Load() == waiters })
	// All waiters are inside Wait (mutex released). Signal one at a time.
	for i := 1; i <= waiters; i++ {
		c.Signal()
		i := i
		waitCond(t, func() bool { return woken.Load() == int32(i) })
	}
	wg.Wait()
}

func TestCondBroadcast(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	c := rt.NewCond(m)
	var ready, woken atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			th := rt.RegisterThread("w")
			defer th.Close()
			_ = m.LockT(th)
			ready.Add(1)
			_ = c.WaitT(th)
			woken.Add(1)
			_ = m.UnlockT(th)
		}()
	}
	waitCond(t, func() bool { return ready.Load() == 4 })
	c.Broadcast()
	wg.Wait()
	if woken.Load() != 4 {
		t.Fatalf("woken = %d", woken.Load())
	}
}

func TestCondProducerConsumer(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	notEmpty := rt.NewCond(m)
	var queue []int
	const items = 200

	var wg sync.WaitGroup
	wg.Add(2)
	var consumed []int
	go func() { // consumer
		defer wg.Done()
		th := rt.RegisterThread("consumer")
		defer th.Close()
		for len(consumed) < items {
			_ = m.LockT(th)
			for len(queue) == 0 {
				if err := notEmpty.WaitT(th); err != nil {
					t.Errorf("wait: %v", err)
					_ = m.UnlockT(th)
					return
				}
			}
			consumed = append(consumed, queue[0])
			queue = queue[1:]
			_ = m.UnlockT(th)
		}
	}()
	go func() { // producer
		defer wg.Done()
		th := rt.RegisterThread("producer")
		defer th.Close()
		for i := 0; i < items; i++ {
			_ = m.LockT(th)
			queue = append(queue, i)
			_ = m.UnlockT(th)
			notEmpty.Signal()
		}
	}()
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("producer/consumer hung")
	}
	for i, v := range consumed {
		if v != i {
			t.Fatalf("consumed[%d] = %d (FIFO violated)", i, v)
		}
	}
}

func TestCondWaitTimeout(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	m := rt.NewMutex()
	c := rt.NewCond(m)
	_ = m.LockT(th)
	start := time.Now()
	err := c.WaitTimeoutT(th, 20*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v", err)
	}
	if time.Since(start) < 15*time.Millisecond {
		t.Error("returned early")
	}
	// Per pthread_cond_timedwait, the mutex is re-acquired on timeout.
	if m.Holder() != th.ID() {
		t.Error("mutex must be held after timeout")
	}
	_ = m.UnlockT(th)
}

func TestCondAbortDuringWait(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	c := rt.NewCond(m)
	th := rt.RegisterThread("w")
	defer th.Close()

	errCh := make(chan error, 1)
	entered := make(chan struct{})
	go func() {
		_ = m.LockT(th)
		close(entered)
		err := c.WaitT(th)
		_ = m.UnlockT(th)
		errCh <- err
	}()
	<-entered
	time.Sleep(20 * time.Millisecond) // let the waiter block
	rt.AbortThreads(th.ID())
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrDeadlockRecovered) {
			t.Fatalf("err = %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("abort did not wake the cond waiter")
	}
}

func TestCondSignalNoWaiters(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	c := rt.NewCond(rt.NewMutex())
	c.Signal()    // no-op
	c.Broadcast() // no-op
}

func waitCond(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatal("condition never became true")
}

func TestThreadPriority(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	th := rt.RegisterThread("t")
	defer th.Close()
	if th.Priority() != 0 {
		t.Error("default priority must be 0")
	}
	th.SetPriority(7)
	if th.Priority() != 7 {
		t.Error("SetPriority lost")
	}
}

// TestCondAbandonedWaitForwardsSignal is the lost-wakeup regression: a
// waiter whose timeout/cancellation raced an already-delivered Signal
// must forward the token instead of swallowing it, or a sibling waiter
// sleeps forever on work that was signaled exactly once.
func TestCondAbandonedWaitForwardsSignal(t *testing.T) {
	rt := MustNew(testConfig())
	defer rt.Stop()
	m := rt.NewMutex()
	c := rt.NewCond(m)

	// W2: a genuine waiter, parked.
	var woken atomic.Bool
	parked := make(chan struct{})
	go func() {
		th := rt.RegisterThread("w2")
		defer th.Close()
		_ = m.LockT(th)
		close(parked)
		if err := c.WaitT(th); err != nil {
			t.Errorf("w2 wait: %v", err)
		}
		woken.Store(true)
		_ = m.UnlockT(th)
	}()
	<-parked
	waitCond(t, func() bool {
		c.mu.Lock()
		defer c.mu.Unlock()
		return len(c.waiters) == 1
	})

	// Simulate W1 exactly at the race point: Signal popped its channel
	// and delivered the token, but W1's deadline/cancellation won the
	// select. Put W1's channel at the head so Signal targets it.
	ch := make(chan struct{}, 1)
	c.mu.Lock()
	c.waiters = append([]chan struct{}{ch}, c.waiters...)
	c.mu.Unlock()
	c.Signal() // pops W1, token lands in ch — W2 still parked
	c.abandonWait(ch)

	waitCond(t, func() bool { return woken.Load() })
	if !woken.Load() {
		t.Fatal("forwarded signal never woke the sibling waiter")
	}
}
