//lint:file-ignore unlockcheck deliberate non-owner/double unlocks exercising the runtime error paths
package core

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func rwTestRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt := MustNew(Config{Tau: 2 * time.Millisecond, MatchDepth: 2, MaxYield: 5 * time.Second})
	t.Cleanup(func() { rt.Stop() })
	return rt
}

func TestRWMutexWriterExclusion(t *testing.T) {
	rt := rwTestRuntime(t)
	rw := rt.NewRWMutex()
	var held atomic.Int32
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			th := rt.RegisterThread("w")
			defer th.Close()
			for i := 0; i < 50; i++ {
				if err := rw.LockT(th); err != nil {
					t.Errorf("LockT: %v", err)
					return
				}
				if held.Add(1) != 1 {
					t.Error("two writers inside")
				}
				held.Add(-1)
				if err := rw.UnlockT(th); err != nil {
					t.Errorf("UnlockT: %v", err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestRWMutexReadersShare(t *testing.T) {
	rt := rwTestRuntime(t)
	rw := rt.NewRWMutex()

	t1 := rt.RegisterThread("r1")
	t2 := rt.RegisterThread("r2")
	defer t1.Close()
	defer t2.Close()

	if err := rw.RLockT(t1); err != nil {
		t.Fatal(err)
	}
	if err := rw.RLockT(t2); err != nil {
		t.Fatal(err)
	}
	if n := rw.ReaderCount(); n != 2 {
		t.Fatalf("ReaderCount = %d, want 2", n)
	}
	// Writer is excluded while readers hold.
	ok, err := rw.TryLockT(t1)
	if ok || err != nil {
		t.Fatalf("TryLockT while read-held = (%v, %v), want (false, nil)", ok, err)
	}
	if err := rw.RUnlockT(t1); err != nil {
		t.Fatal(err)
	}
	if err := rw.RUnlockT(t2); err != nil {
		t.Fatal(err)
	}
	// Free again: writer proceeds.
	if err := rw.LockT(t1); err != nil {
		t.Fatal(err)
	}
	if rw.Holder() != t1.ID() {
		t.Fatalf("Holder = %d, want %d", rw.Holder(), t1.ID())
	}
	if err := rw.UnlockT(t1); err != nil {
		t.Fatal(err)
	}
}

func TestRWMutexWriterPreference(t *testing.T) {
	rt := rwTestRuntime(t)
	rw := rt.NewRWMutex()

	r1 := rt.RegisterThread("r1")
	r2 := rt.RegisterThread("r2")
	w := rt.RegisterThread("w")
	defer r1.Close()
	defer r2.Close()
	defer w.Close()

	if err := rw.RLockT(r1); err != nil {
		t.Fatal(err)
	}
	writerIn := make(chan error, 1)
	go func() { writerIn <- rw.LockT(w) }()

	// Wait until the writer is queued, then a *new* reader must not cut
	// the line.
	deadline := time.Now().Add(2 * time.Second)
	for {
		ok, err := rw.TryRLockT(r2)
		if err != nil {
			t.Fatal(err)
		}
		if !ok {
			break // writer pressure observed
		}
		if err := rw.RUnlockT(r2); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatal("writer never applied back-pressure to new readers")
		}
		time.Sleep(time.Millisecond)
	}

	// But the established reader may still recurse (no recursive-RLock
	// deadlock, unlike sync.RWMutex).
	if err := rw.RLockT(r1); err != nil {
		t.Fatalf("recursive RLock under writer pressure: %v", err)
	}
	if err := rw.RUnlockT(r1); err != nil {
		t.Fatal(err)
	}

	if err := rw.RUnlockT(r1); err != nil {
		t.Fatal(err)
	}
	if err := <-writerIn; err != nil {
		t.Fatalf("queued writer failed: %v", err)
	}
	if err := rw.UnlockT(w); err != nil {
		t.Fatal(err)
	}
	// With the writer gone, readers are admitted again.
	ok, err := rw.TryRLockT(r2)
	if !ok || err != nil {
		t.Fatalf("TryRLockT after writer = (%v, %v)", ok, err)
	}
	_ = rw.RUnlockT(r2)
}

func TestRWMutexOwnershipErrors(t *testing.T) {
	rt := rwTestRuntime(t)
	rw := rt.NewRWMutex()
	t1 := rt.RegisterThread("t1")
	t2 := rt.RegisterThread("t2")
	defer t1.Close()
	defer t2.Close()

	if err := rw.UnlockT(t1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Unlock of free lock = %v, want ErrNotOwner", err)
	}
	if err := rw.RUnlockT(t1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("RUnlock of free lock = %v, want ErrNotOwner", err)
	}
	if err := rw.LockT(t1); err != nil {
		t.Fatal(err)
	}
	if err := rw.UnlockT(t2); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("Unlock by non-owner = %v, want ErrNotOwner", err)
	}
	if err := rw.RUnlockT(t1); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("RUnlock while write-held = %v, want ErrNotOwner", err)
	}
	if err := rw.UnlockHandoff(); err != nil {
		t.Fatalf("UnlockHandoff: %v", err)
	}
	if err := rw.UnlockHandoff(); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("double UnlockHandoff = %v, want ErrNotOwner", err)
	}
}

func TestRWMutexTimeoutAndCtx(t *testing.T) {
	rt := rwTestRuntime(t)
	rw := rt.NewRWMutex()
	r := rt.RegisterThread("r")
	w := rt.RegisterThread("w")
	defer r.Close()
	defer w.Close()

	if err := rw.RLockT(r); err != nil {
		t.Fatal(err)
	}
	if err := rw.LockTimeoutT(w, 10*time.Millisecond); !errors.Is(err, ErrTimeout) {
		t.Fatalf("LockTimeoutT = %v, want ErrTimeout", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	if err := rw.LockCtxT(w, ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("LockCtxT = %v, want DeadlineExceeded", err)
	}
	if err := rw.RUnlockT(r); err != nil {
		t.Fatal(err)
	}

	// Timed-out writer leaves no residue: both classes acquire freely.
	if err := rw.LockT(w); err != nil {
		t.Fatal(err)
	}
	if err := rw.UnlockT(w); err != nil {
		t.Fatal(err)
	}
	if err := rw.RLockT(r); err != nil {
		t.Fatal(err)
	}
	if err := rw.RUnlockT(r); err != nil {
		t.Fatal(err)
	}
}

//go:noinline
func rwLockSiteA(t *Thread, rw *RWMutex) error { return rw.LockT(t) }

//go:noinline
func rwLockSiteB(t *Thread, rw *RWMutex) error { return rw.LockT(t) }

// TestRWMutexWriterDeadlockImmunity contracts a writer/writer cross-order
// deadlock on two RWMutexes, then verifies the pattern is avoided.
func TestRWMutexWriterDeadlockImmunity(t *testing.T) {
	var rt *Runtime
	rt = MustNew(Config{
		Tau: 2 * time.Millisecond, MatchDepth: 2, MaxYield: 5 * time.Second,
		RecoverAborts: true,
	})
	defer rt.Stop()
	a, b := rt.NewRWMutex(), rt.NewRWMutex()

	run := func() (error, error) {
		t1 := rt.RegisterThread("T1")
		t2 := rt.RegisterThread("T2")
		defer t1.Close()
		defer t2.Close()
		var wg sync.WaitGroup
		var e1, e2 error
		wg.Add(2)
		go func() {
			defer wg.Done()
			if e1 = rwLockSiteA(t1, a); e1 != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
			if e1 = b.LockT(t1); e1 != nil {
				_ = a.UnlockT(t1)
				return
			}
			_ = b.UnlockT(t1)
			_ = a.UnlockT(t1)
		}()
		go func() {
			defer wg.Done()
			if e2 = rwLockSiteB(t2, b); e2 != nil {
				return
			}
			time.Sleep(50 * time.Millisecond)
			if e2 = a.LockT(t2); e2 != nil {
				_ = b.UnlockT(t2)
				return
			}
			_ = a.UnlockT(t2)
			_ = b.UnlockT(t2)
		}()
		wg.Wait()
		return e1, e2
	}

	e1, e2 := run()
	if !errors.Is(e1, ErrDeadlockRecovered) && !errors.Is(e2, ErrDeadlockRecovered) {
		t.Fatalf("run 1: expected recovery, got %v / %v", e1, e2)
	}
	if rt.History().Len() != 1 {
		t.Fatalf("run 1: history = %d", rt.History().Len())
	}
	e1, e2 = run()
	if e1 != nil || e2 != nil {
		t.Fatalf("run 2: immunized run failed: %v / %v", e1, e2)
	}
	if rt.Stats().Yields == 0 {
		t.Error("run 2: no yields recorded")
	}
}
