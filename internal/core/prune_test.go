// Tests for idle-thread pruning: goroutine-per-request churn must not
// grow the runtime's thread registry or slot space without bound, and the
// pin/retire protocol must be safe against concurrent implicit lookups.
package core

import (
	"sync"
	"testing"
	"time"
)

func newPruneRT(t *testing.T, cfg Config) *Runtime {
	t.Helper()
	if cfg.Tau == 0 {
		cfg.Tau = 5 * time.Millisecond
	}
	if cfg.ThreadTTL == 0 {
		cfg.ThreadTTL = -1 // tests drive PruneIdleThreads deterministically
	}
	rt := MustNew(cfg)
	t.Cleanup(func() { rt.Stop() })
	return rt
}

// churn runs n goroutines that each do a few implicit lock operations and
// exit, like a goroutine-per-request server.
func churn(t *testing.T, rt *Runtime, m *Mutex, n int) {
	t.Helper()
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 3; j++ {
				if err := m.Lock(); err != nil {
					t.Error(err)
					return
				}
				if err := m.Unlock(); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestPruneIdleThreadsReclaimsImplicitRegistrations(t *testing.T) {
	rt := newPruneRT(t, Config{})
	m := rt.NewMutex()

	churn(t, rt, m, 50)
	if got := rt.NumThreads(); got < 50 {
		t.Fatalf("NumThreads = %d, want >= 50 before pruning", got)
	}

	// First call ages the threads one sweep, second call prunes them.
	rt.PruneIdleThreads()
	pruned := rt.PruneIdleThreads()
	if pruned < 50 {
		t.Fatalf("pruned = %d, want >= 50", pruned)
	}
	if got := rt.NumThreads(); got != 0 {
		t.Fatalf("NumThreads = %d after pruning, want 0", got)
	}

	// The registry still works afterwards: new implicit use re-registers.
	if err := m.Lock(); err != nil {
		t.Fatal(err)
	}
	if err := m.Unlock(); err != nil {
		t.Fatal(err)
	}
	if got := rt.NumThreads(); got != 1 {
		t.Fatalf("NumThreads = %d after re-registration, want 1", got)
	}
}

func TestPruneReusesSlots(t *testing.T) {
	rt := newPruneRT(t, Config{})
	m := rt.NewMutex()

	for round := 0; round < 20; round++ {
		churn(t, rt, m, 10)
		rt.PruneIdleThreads()
		rt.PruneIdleThreads()
	}
	rt.slotMu.Lock()
	next := rt.nextSlot
	rt.slotMu.Unlock()
	// 200 goroutines churned; without slot reuse nextSlot would exceed
	// 200. With reuse it stays near the per-round high-water mark.
	if next > 40 {
		t.Fatalf("nextSlot = %d: pruned slots are not being reused", next)
	}
}

func TestPruneSkipsHoldersAndExplicitThreads(t *testing.T) {
	rt := newPruneRT(t, Config{})
	m := rt.NewMutex()

	// An implicit thread holding a lock across operations must survive.
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := m.Lock(); err != nil {
			t.Error(err)
			return
		}
		close(held)
		<-release
		if err := m.Unlock(); err != nil {
			t.Error(err)
		}
	}()
	<-held

	// An explicit handle must survive regardless of idleness.
	th := rt.RegisterThread("explicit")
	defer th.Close()

	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if got := rt.NumThreads(); got != 2 {
		t.Fatalf("NumThreads = %d, want 2 (holder + explicit)", got)
	}

	// The holder's identity must still resolve so Unlock succeeds.
	close(release)
	<-done
	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if got := rt.NumThreads(); got != 1 {
		t.Fatalf("NumThreads = %d, want 1 (explicit only)", got)
	}
}

// TestPruneWorksInModeOff: with instrumentation off, lock holds are
// still counted (NoteHold/NoteRelease) so the goroutine-per-request leak
// is closed in every mode.
func TestPruneWorksInModeOff(t *testing.T) {
	rt := newPruneRT(t, Config{Mode: ModeOff})
	m := rt.NewMutex()

	churn(t, rt, m, 30)
	if got := rt.NumThreads(); got < 30 {
		t.Fatalf("NumThreads = %d, want >= 30", got)
	}

	// A holder must survive pruning even without the avoidance cache.
	held := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := m.Lock(); err != nil {
			t.Error(err)
			return
		}
		close(held)
		<-release
		if err := m.Unlock(); err != nil {
			t.Error(err)
		}
	}()
	<-held

	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if got := rt.NumThreads(); got != 1 {
		t.Fatalf("NumThreads = %d, want 1 (the holder)", got)
	}
	close(release)
	<-done
	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if got := rt.NumThreads(); got != 0 {
		t.Fatalf("NumThreads = %d, want 0", got)
	}
}

// TestPrunedHandleDetected: a retired explicit-use handle fails fast with
// ErrThreadPruned instead of corrupting slot state.
func TestPrunedHandleDetected(t *testing.T) {
	rt := newPruneRT(t, Config{})
	m := rt.NewMutex()

	var stale *Thread
	done := make(chan struct{})
	go func() {
		defer close(done)
		stale = rt.CurrentThread()
		if err := m.LockT(stale); err != nil {
			t.Error(err)
			return
		}
		if err := m.UnlockT(stale); err != nil {
			t.Error(err)
		}
	}()
	<-done

	rt.PruneIdleThreads()
	rt.PruneIdleThreads()
	if err := m.LockT(stale); err != ErrThreadPruned {
		t.Fatalf("LockT on pruned handle = %v, want ErrThreadPruned", err)
	}
}

// TestPruneChurnUnderJanitor races a running janitor against heavy
// implicit churn; under -race this exercises the pin/retire Dekker
// protocol end to end.
func TestPruneChurnUnderJanitor(t *testing.T) {
	rt := newPruneRT(t, Config{ThreadTTL: 4 * time.Millisecond, Tau: 2 * time.Millisecond})
	m := rt.NewMutex()

	deadline := time.After(300 * time.Millisecond)
	for {
		select {
		case <-deadline:
			// Quiesce, then the registry must drain to (near) zero.
			waitUntil := time.Now().Add(2 * time.Second)
			for rt.NumThreads() > 0 && time.Now().Before(waitUntil) {
				rt.PruneIdleThreads()
				time.Sleep(2 * time.Millisecond)
			}
			if got := rt.NumThreads(); got > 0 {
				t.Fatalf("NumThreads = %d after quiesce, want 0", got)
			}
			return
		default:
		}
		churn(t, rt, m, 8)
	}
}
