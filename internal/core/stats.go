package core

import (
	"context"

	"dimmunix/internal/obs"
)

// StatsSnapshot is a point-in-time view of every runtime counter,
// aggregated across the layers: the avoidance cache (lock-path
// counters, both tiers), the monitor (detection, false positives, store
// sync), recovery, thread pruning, the history epoch, and the
// observability bus itself. All sources are plain atomics, so taking a
// snapshot never touches the avoidance guard or the fast path; the
// fields are mutually consistent only at quiescence. JSON tags make the
// snapshot directly servable (DebugHandler, expvar, fleet artifacts).
type StatsSnapshot struct {
	// Lock-path counters (§5.4 avoidance protocol).
	Requests  uint64 `json:"requests"`
	Gos       uint64 `json:"gos"`
	Yields    uint64 `json:"yields"`
	Acquired  uint64 `json:"acquired"`
	Releases  uint64 `json:"releases"`
	Cancels   uint64 `json:"cancels"`
	ForcedGos uint64 `json:"forced_gos"`
	Aborts    uint64 `json:"aborts"`
	Ignored   uint64 `json:"ignored"`
	ProbeFPs  uint64 `json:"probe_fps"`
	Reentries uint64 `json:"reentries"`

	// SharedAcquired counts reader acquisitions (also in Acquired).
	SharedAcquired uint64 `json:"shared_acquired"`

	// Tier split: FastAcquired + GuardedAcquired == Acquired (every
	// non-reentrant acquisition lands in exactly one tier). FastGos
	// counts GO decisions served by the lock-free tier, including
	// try-failures and reentries that never became acquisitions.
	FastGos         uint64 `json:"fast_gos"`
	FastAcquired    uint64 `json:"fast_acquired"`
	GuardedAcquired uint64 `json:"guarded_acquired"`

	// EventBatches counts Batch carrier events published to the monitor
	// queue (Config.EventBatch); EventsProcessed below counts the
	// unpacked operations, so the ratio is the realized batch occupancy.
	EventBatches uint64 `json:"event_batches"`

	// YieldsBySignature maps signature ID to how many YIELD decisions
	// it caused — which archived patterns actually fire in production.
	YieldsBySignature map[string]uint64 `json:"yields_by_signature,omitempty"`

	// Monitor counters (§3, §5.2).
	MonitorPasses       uint64 `json:"monitor_passes"`
	EventsProcessed     uint64 `json:"events_processed"`
	DeadlocksDetected   uint64 `json:"deadlocks_detected"`
	StarvationsDetected uint64 `json:"starvations_detected"`
	StarvationsBroken   uint64 `json:"starvations_broken"`
	SignaturesSaved     uint64 `json:"signatures_saved"`
	EpisodesConcluded   uint64 `json:"episodes_concluded"`
	FalsePositives      uint64 `json:"false_positives"`
	TruePositives       uint64 `json:"true_positives"`

	// Recoveries counts deadlocks the built-in abort recovery unwound
	// (WithAbortRecovery); SignatureDisables counts disabled-flag flips
	// to disabled, from any source (§5.7 flows, auto-disable, merges).
	Recoveries        uint64 `json:"recoveries"`
	SignatureDisables uint64 `json:"signature_disables"`

	// History-store sync counters (§8 distribution).
	SyncRounds   uint64 `json:"sync_rounds"`
	SyncPulls    uint64 `json:"sync_pulls"`
	SyncPushes   uint64 `json:"sync_pushes"`
	SyncPorted   uint64 `json:"sync_ported"`
	SyncErrors   uint64 `json:"sync_errors"`
	SyncBackoffs uint64 `json:"sync_backoffs"`

	// Runtime housekeeping.
	ThreadPrunes uint64 `json:"thread_prunes"`
	LiveThreads  int    `json:"live_threads"`

	// HistoryEpoch is the danger-index epoch (bumped by every history
	// mutation, including remote merges — the fast path's invalidation
	// clock); HistorySignatures the live signature count.
	HistoryEpoch      uint64 `json:"history_epoch"`
	HistorySignatures int    `json:"history_signatures"`

	// EventsDropped counts observability events discarded by the
	// bounded dispatcher (ring overwrites and full subscriber
	// channels). Zero in a healthy deployment; growth means an observer
	// cannot keep up — never that the runtime slowed down.
	EventsDropped uint64 `json:"events_dropped"`
	// EventsDroppedBySubscriber attributes subscriber-channel drops to
	// the subscriber that could not keep up (construction-time observers
	// and departed subscribers included), so a lossy consumer can be
	// named instead of inferred.
	EventsDroppedBySubscriber map[string]uint64 `json:"events_dropped_by_subscriber,omitempty"`

	// TraceRecords / TraceDropped report trace mode (Config.TracePath):
	// acquisition events journaled for offline prediction, and events
	// lost to journal write errors or post-Close records. Both zero when
	// trace mode is off.
	TraceRecords uint64 `json:"trace_records,omitempty"`
	TraceDropped uint64 `json:"trace_dropped,omitempty"`

	// Latency summarizes acquisition latency per tier plus avoidance
	// yield episodes (p50/p95/p99, log-scale buckets so percentiles have
	// at most 2x resolution error). Fast-tier observations are a 1-in-64
	// per-thread sample; guarded and yield record every occurrence.
	Latency LatencyStats `json:"latency"`
}

// LatencyStats groups the runtime's latency histograms: fast-tier and
// guarded-tier acquisition times, and the duration of yield episodes
// (first YIELD decision to the GO that released the thread).
type LatencyStats struct {
	Fast    obs.HistSnapshot `json:"fast"`
	Guarded obs.HistSnapshot `json:"guarded"`
	Yield   obs.HistSnapshot `json:"yield"`
}

// Stats returns a snapshot of every runtime counter. Cheap (atomic
// loads plus one map copy for the per-signature yields) and safe at any
// time from any goroutine.
func (rt *Runtime) Stats() StatsSnapshot {
	a := rt.stats.Snapshot()
	mc := &rt.mon.Counters
	danger := rt.hist.Danger()
	return StatsSnapshot{
		Requests:  a.Requests,
		Gos:       a.Gos,
		Yields:    a.Yields,
		Acquired:  a.Acquired,
		Releases:  a.Releases,
		Cancels:   a.Cancels,
		ForcedGos: a.ForcedGos,
		Aborts:    a.Aborts,
		Ignored:   a.Ignored,
		ProbeFPs:  a.ProbeFPs,
		Reentries: a.Reentries,

		SharedAcquired: a.SharedAcquired,

		FastGos:         a.FastGos,
		FastAcquired:    a.FastAcquired,
		GuardedAcquired: a.GuardedAcquired,

		EventBatches: a.EventBatches,

		YieldsBySignature: rt.stats.YieldsBySignature(),

		MonitorPasses:       mc.Passes.Load(),
		EventsProcessed:     mc.EventsProcessed.Load(),
		DeadlocksDetected:   mc.DeadlocksDetected.Load(),
		StarvationsDetected: mc.StarvationsDetected.Load(),
		StarvationsBroken:   mc.StarvationsBroken.Load(),
		SignaturesSaved:     mc.SignaturesSaved.Load(),
		EpisodesConcluded:   mc.EpisodesConcluded.Load(),
		FalsePositives:      mc.FalsePositives.Load(),
		TruePositives:       mc.TruePositives.Load(),

		Recoveries:        rt.recoveries.Load(),
		SignatureDisables: rt.disables.Load(),

		SyncRounds:   mc.SyncRounds.Load(),
		SyncPulls:    mc.SyncPulls.Load(),
		SyncPushes:   mc.SyncPushes.Load(),
		SyncPorted:   mc.SyncPorted.Load(),
		SyncErrors:   mc.SyncErrors.Load(),
		SyncBackoffs: mc.SyncBackoffs.Load(),

		ThreadPrunes: rt.threadPrunes.Load(),
		LiveThreads:  rt.NumThreads(),

		HistoryEpoch:      danger.Epoch(),
		HistorySignatures: rt.hist.Len(),

		EventsDropped:             rt.bus.Dropped(),
		EventsDroppedBySubscriber: rt.bus.DroppedBySubscriber(),

		TraceRecords: rt.trace.Records(),
		TraceDropped: rt.trace.Dropped(),

		Latency: LatencyStats{
			Fast:    rt.latFast.Snapshot(),
			Guarded: rt.latGuarded.Snapshot(),
			Yield:   rt.latYield.Snapshot(),
		},
	}
}

// Subscribe returns a channel of observability events published after
// this call — the dynamic counterpart of the WithObserver option. The
// channel is buffered with the runtime's EventBuffer; events arriving
// while it is full are dropped for this subscriber (counted in
// Stats().EventsDropped), so a slow consumer can never stall a locker,
// the monitor, or shutdown. The subscription ends (channel closed) when
// ctx is done or the runtime stops. A nil ctx subscribes for the
// runtime's lifetime.
func (rt *Runtime) Subscribe(ctx context.Context) <-chan obs.Event {
	return rt.bus.Subscribe(ctx)
}

// SubscribeNamed is Subscribe with a name for drop attribution: events a
// too-slow subscriber misses are counted against that name in
// Stats().EventsDroppedBySubscriber (anonymous subscriptions appear as
// "sub-<id>").
func (rt *Runtime) SubscribeNamed(ctx context.Context, name string) <-chan obs.Event {
	return rt.bus.SubscribeNamed(ctx, name)
}

// SignatureSummary is one history entry's operator view, served by
// HistorySummary (and dimmunix.DebugHandler).
type SignatureSummary struct {
	ID       string `json:"id"`
	Kind     string `json:"kind"`
	Depth    int    `json:"depth"`
	Stacks   int    `json:"stacks"`
	Rev      uint64 `json:"rev"`
	Disabled bool   `json:"disabled,omitempty"`
	// Yields is the per-signature yield count from this runtime's
	// lock-free counters; AvoidCount the history's persisted total
	// (survives restarts, merged across the fleet).
	Yields      uint64 `json:"yields"`
	AvoidCount  uint64 `json:"avoid_count"`
	AbortCount  uint64 `json:"abort_count"`
	FPCount     uint64 `json:"fp_count"`
	TPCount     uint64 `json:"tp_count"`
	CreatedUnix int64  `json:"created_unix,omitempty"`
	// Source is the entry's provenance: "" for live detections,
	// "predicted" for dimmunix-predict emissions, "static" for
	// dimmunix-vet compile-time emissions (signature.Source* constants).
	Source string `json:"source,omitempty"`
}

// HistorySummary is the operator view of the live signature history.
type HistorySummary struct {
	Epoch       uint64             `json:"epoch"`
	Fingerprint string             `json:"fingerprint,omitempty"`
	Signatures  []SignatureSummary `json:"signatures"`
	Tombstones  int                `json:"tombstones"`
}

// HistorySummary snapshots the live history for diagnostics. The
// mutable per-signature fields are owned by the avoidance guard, so the
// read runs inside the full decision scope on the runtime's dedicated
// admin slot (serialized by adminMu, sound under the filter guard) —
// call it at human cadence, not per request.
func (rt *Runtime) HistorySummary() HistorySummary {
	sigYields := rt.stats.YieldsBySignature()
	out := HistorySummary{Epoch: rt.hist.Danger().Epoch(), Fingerprint: rt.hist.Fingerprint()}
	rt.adminMu.Lock()
	defer rt.adminMu.Unlock()
	rt.cache.WithGuard(rt.adminSlot, func() {
		for _, s := range rt.hist.Snapshot() {
			out.Signatures = append(out.Signatures, SignatureSummary{
				ID:          s.ID,
				Kind:        s.Kind.String(),
				Depth:       s.Depth,
				Stacks:      s.Size(),
				Rev:         s.Rev,
				Disabled:    s.Disabled,
				Yields:      sigYields[s.ID],
				AvoidCount:  s.AvoidCount,
				AbortCount:  s.AbortCount,
				FPCount:     s.FPCount,
				TPCount:     s.TPCount,
				CreatedUnix: s.CreatedUnix,
				Source:      s.Source,
			})
		}
		out.Tombstones = len(rt.hist.Tombstones())
	})
	return out
}
