// Outage-tolerance tests: a runtime whose sync daemon goes dark must
// never make the protected application worse — Stop returns within the
// shutdown budget even with a sync round blocked in store I/O, and the
// sync machinery's failures stay contained to error counters.
package core

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"dimmunix/internal/histstore"
)

// hangingDaemon serves probes and pulls normally but parks every push
// until the client gives up — the worst-case outage shape for shutdown,
// since the exit publish is a push. It reports how many pushes it
// stalled.
func hangingDaemon(t *testing.T) (*httptest.Server, *atomic.Int64) {
	t.Helper()
	var stalled atomic.Int64
	stop := make(chan struct{})
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodGet && r.URL.Path == "/v1/version":
			json.NewEncoder(w).Encode(map[string]string{"version": "1"})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/history":
			w.Header().Set("X-Dimmunix-History-Version", "1")
			w.Write([]byte(`{"format":2}`))
		default:
			// Drain the body first: net/http only detects a client
			// disconnect (and cancels r.Context()) once the request body
			// has been consumed.
			io.Copy(io.Discard, r.Body)
			stalled.Add(1)
			select {
			case <-r.Context().Done(): // the client abandoned the push
			case <-stop: // test teardown backstop
			}
		}
	}))
	t.Cleanup(ts.Close)
	t.Cleanup(func() { close(stop) }) // runs before ts.Close (LIFO)
	return ts, &stalled
}

// TestStopBoundedUnderStoreOutage is the PR 4 acceptance criterion:
// with an effectively unreachable store and a sync round in flight
// (blocked inside a push), Runtime.Stop returns within 2× the
// configured shutdown timeout — the in-flight round is cancelled and
// the exit publish is abandoned at the budget, not retried to
// completion.
func TestStopBoundedUnderStoreOutage(t *testing.T) {
	ts, stalled := hangingDaemon(t)

	const budget = 500 * time.Millisecond
	cfg := testConfig()
	cfg.HistoryStore = histstore.NewHTTPStore(ts.URL)
	cfg.SyncInterval = 10 * time.Millisecond
	cfg.ShutdownTimeout = budget
	rt := MustNew(cfg)

	// The loaded history is already "dirty" relative to the never-pushed
	// syncer state, so the very first round pushes — and hangs. Wait for
	// a round to actually be in flight inside the stalled push.
	waitFor(t, "a sync round to block in store I/O", func() bool {
		return stalled.Load() > 0
	})

	start := time.Now()
	err := rt.Stop()
	elapsed := time.Since(start)
	if elapsed > 2*budget {
		t.Fatalf("Stop took %v with the store hung; budget is 2x%v", elapsed, budget)
	}
	if err == nil {
		t.Fatal("Stop must surface the abandoned exit publish")
	}
}

// TestSyncNowHonorsCallerContext: SyncNow (and therefore ReloadHistory)
// aborts with the caller's context error when the store hangs.
func TestSyncNowHonorsCallerContext(t *testing.T) {
	ts, _ := hangingDaemon(t)

	cfg := testConfig()
	cfg.HistoryStore = histstore.NewHTTPStore(ts.URL)
	cfg.SyncInterval = -1 // manual rounds only
	rt := MustNew(cfg)
	defer rt.Stop()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	err := rt.SyncNow(ctx)
	if err == nil {
		t.Fatal("SyncNow against a hanging store must fail once its context expires")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("SyncNow took %v to honor a 100ms deadline", elapsed)
	}
}

// TestOutageKeepsImmunityLocal: with the daemon unreachable from the
// start, the runtime still detects, recovers, and archives locally —
// the availability half of the §8 argument — and its Stop stays within
// the budget.
func TestOutageKeepsImmunityLocal(t *testing.T) {
	cfg := testConfig()
	cfg.HistoryStore = histstore.NewHTTPStore("http://127.0.0.1:1") // nothing listens
	cfg.SyncInterval = 10 * time.Millisecond
	cfg.ShutdownTimeout = 500 * time.Millisecond
	cfg.SyncRoundTimeout = 200 * time.Millisecond
	cfg.MatchDepth = 2
	cfg.RecoverAborts = true
	rt := MustNew(cfg)

	a, b := rt.NewMutex(), rt.NewMutex()
	forceDeadlock(rt, a, b, holdTime)
	waitFor(t, "local archive during the outage", func() bool {
		return rt.History().Len() == 1
	})
	waitFor(t, "sync errors to be counted, not fatal", func() bool {
		return rt.MonitorCounters().SyncErrors.Load() > 0
	})

	start := time.Now()
	_ = rt.Stop() // the publish fails; the error is expected
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("Stop took %v against a dead store", elapsed)
	}
	if rt.History().Len() != 1 {
		t.Fatal("outage lost the locally archived signature")
	}
}
