// Package event defines the events exchanged between the avoidance
// instrumentation and the monitor thread (§3: request, go, yield, acquired,
// release; §6 adds cancel for pthreads trylock/timedlock rollback).
package event

import "dimmunix/internal/stack"

// Kind enumerates event types.
type Kind uint8

const (
	// Request: a thread entered the lock instrumentation and asked for a
	// decision.
	Request Kind = iota
	// Go: the avoidance code allowed the thread to block waiting for the
	// lock (the "allow" edge was committed).
	Go
	// Yield: the thread was forced to yield; Causes carries the matched
	// signature instance.
	Yield
	// Acquired: the thread finished lock() and now holds the lock.
	Acquired
	// Release: the thread is about to unlock().
	Release
	// Cancel: a previously allowed request was rolled back (trylock
	// failure, lock timeout, or deadlock-recovery abort).
	Cancel
	// ThreadExit: the thread is gone; the monitor prunes its RAG node.
	ThreadExit
)

var kindNames = [...]string{"request", "go", "yield", "acquired", "release", "cancel", "thread-exit"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cause identifies one (thread, lock, stack) binding of a matched signature
// instance — the target of a yield edge plus its label (§5.4). SigIdx is
// the index of the signature stack the binding covers, so the monitor can
// re-evaluate the match at other depths during calibration.
type Cause struct {
	TID    int32
	LID    uint64
	Stack  *stack.Interned
	SigIdx int
}

// Event is one instrumentation event. Stack is the interned call stack the
// thread had at the time (nil for Release/Cancel/ThreadExit where the
// monitor already knows the edge). SigID is set on Yield events to the
// signature that triggered avoidance, for false-positive bookkeeping.
type Event struct {
	Kind       Kind
	TID        int32
	LID        uint64
	Stack      *stack.Interned
	Causes     []Cause // Yield only
	SigID      string  // Yield only
	YielderIdx int     // Yield only: signature stack index covered by TID
	Depth      int     // Yield only: matching depth in force
}
