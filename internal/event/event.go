// Package event defines the events exchanged between the avoidance
// instrumentation and the monitor thread (§3: request, go, yield, acquired,
// release; §6 adds cancel for pthreads trylock/timedlock rollback).
//
// Per-thread events (request/go/acquired/release) may travel batched: a
// thread accumulates them as compact Records in a Buffer and publishes one
// Batch event per slab instead of one queue push per operation. Events
// whose payload doesn't fit the Record format — yield (causes), cancel,
// thread-exit — are emitted directly; the avoidance layer flushes the
// thread's buffer before emitting them, so per-thread FIFO order through
// the queue is preserved. The monitor flushes every thread's buffer at the
// top of each pass, so batching delays detection by at most one τ.
package event

import (
	"sync"

	"dimmunix/internal/stack"
)

// Kind enumerates event types.
type Kind uint8

const (
	// Request: a thread entered the lock instrumentation and asked for a
	// decision.
	Request Kind = iota
	// Go: the avoidance code allowed the thread to block waiting for the
	// lock (the "allow" edge was committed).
	Go
	// Yield: the thread was forced to yield; Causes carries the matched
	// signature instance.
	Yield
	// Acquired: the thread finished lock() and now holds the lock.
	Acquired
	// Release: the thread is about to unlock().
	Release
	// Cancel: a previously allowed request was rolled back (trylock
	// failure, lock timeout, or deadlock-recovery abort).
	Cancel
	// ThreadExit: the thread is gone; the monitor prunes its RAG node.
	ThreadExit
	// Batch: a carrier event holding buffered bookkeeping Records for one
	// thread (Recs). The monitor unpacks it in order; Batch itself never
	// reaches the RAG.
	Batch
)

var kindNames = [...]string{"request", "go", "yield", "acquired", "release", "cancel", "thread-exit", "batch"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Cause identifies one (thread, lock, stack) binding of a matched signature
// instance — the target of a yield edge plus its label (§5.4). SigIdx is
// the index of the signature stack the binding covers, so the monitor can
// re-evaluate the match at other depths during calibration.
type Cause struct {
	TID    int32
	LID    uint64
	Stack  *stack.Interned
	SigIdx int
}

// Event is one instrumentation event. Stack is the interned call stack the
// thread had at the time (nil for Release/Cancel/ThreadExit where the
// monitor already knows the edge). SigID is set on Yield events to the
// signature that triggered avoidance, for false-positive bookkeeping.
type Event struct {
	Kind       Kind
	TID        int32
	LID        uint64
	Stack      *stack.Interned
	Causes     []Cause   // Yield only
	SigID      string    // Yield only
	YielderIdx int       // Yield only: signature stack index covered by TID
	Depth      int       // Yield only: matching depth in force
	Recs       *[]Record // Batch only: pooled record slab (PutRecs when done)
}

// Record is one buffered bookkeeping operation inside a Batch event. The
// thread identity travels once on the carrier Event, not per record.
type Record struct {
	Kind  Kind
	LID   uint64
	Stack *stack.Interned
}

// recsPool recycles record slabs between producers (lock paths) and the
// consumer (monitor drain). Slabs round-trip as *[]Record so neither side
// boxes a slice header per batch.
var recsPool = sync.Pool{New: func() any {
	rs := make([]Record, 0, 64)
	return &rs
}}

// GetRecs returns an empty pooled record slab.
func GetRecs() *[]Record { return recsPool.Get().(*[]Record) }

// PutRecs clears a slab (dropping its stack pointers) and returns it to the
// pool. Call after unpacking a Batch event.
func PutRecs(rs *[]Record) {
	clear(*rs)
	*rs = (*rs)[:0]
	recsPool.Put(rs)
}

// Buffer accumulates one thread's bookkeeping records and publishes them as
// Batch events. The mutex makes Add/Flush safe against the monitor's
// steal-at-pass flush; publication happens while the mutex is held, so a
// thread's batches enter the MPSC queue in the order its records were
// added, even when the monitor flushes concurrently.
type Buffer struct {
	mu   sync.Mutex
	recs *[]Record
}

// Add appends one record and publishes a Batch event once max records have
// accumulated.
func (b *Buffer) Add(tid int32, r Record, max int, emit func(Event)) {
	b.mu.Lock()
	if b.recs == nil {
		b.recs = GetRecs()
	}
	*b.recs = append(*b.recs, r)
	if len(*b.recs) >= max {
		recs := b.recs
		b.recs = nil
		emit(Event{Kind: Batch, TID: tid, Recs: recs})
	}
	b.mu.Unlock()
}

// ElideRelease tries to cancel a pending release against its own
// acquisition: when the newest buffered record is Acquired for the same
// lock, that record is popped and true is returned — the pair never
// reaches the monitor. The caller must ensure the pair is "lonely" (the
// thread holds nothing else), so no lock-nesting evidence is destroyed:
// any intervening record breaks adjacency, and an enclosing hold fails
// the caller's loneliness check. Such pairs are invisible to deadlock
// detection by construction — both records would have been applied
// within one queue drain, before any detection pass could snapshot the
// transient edge — and a live hold's Acquired record stays stealable in
// the buffer until the release actually happens, so this elides only
// bookkeeping that could never alter monitor state.
func (b *Buffer) ElideRelease(lid uint64) bool {
	b.mu.Lock()
	if b.recs != nil {
		if rs := *b.recs; len(rs) > 0 {
			if last := rs[len(rs)-1]; last.Kind == Acquired && last.LID == lid {
				rs[len(rs)-1] = Record{} // drop the stack reference
				*b.recs = rs[:len(rs)-1]
				b.mu.Unlock()
				return true
			}
		}
	}
	b.mu.Unlock()
	return false
}

// Flush publishes any buffered records immediately. Safe to call from any
// goroutine (the monitor steals buffers this way at every pass).
func (b *Buffer) Flush(tid int32, emit func(Event)) {
	b.mu.Lock()
	if b.recs != nil && len(*b.recs) > 0 {
		recs := b.recs
		b.recs = nil
		emit(Event{Kind: Batch, TID: tid, Recs: recs})
	}
	b.mu.Unlock()
}
