package event

import "testing"

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		Request:    "request",
		Go:         "go",
		Yield:      "yield",
		Acquired:   "acquired",
		Release:    "release",
		Cancel:     "cancel",
		ThreadExit: "thread-exit",
		Kind(200):  "unknown",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}
