//go:build dimmunix.fp && (amd64 || arm64)

package stack

import (
	"runtime"
	"testing"
)

//go:noinline
func fpTestCapture(skip int, buf []uintptr) int { return CapturePCs(skip, buf) }

//go:noinline
func fpTestDescend(depth, skip int, buf []uintptr) int {
	if depth <= 0 {
		return fpTestCapture(skip, buf)
	}
	return fpTestDescend(depth-1, skip, buf)
}

// TestCapturePCsMatchesCallers is the verified-equivalence contract the
// fp build rests on: at several call depths, the frames runtime.Callers
// reports must appear, in order, among the frames the frame-pointer walk
// resolves to (fpEquivalent — the same check the verification phase
// applies on the live lock path). It runs the comparison directly, so it
// holds regardless of whether this process's walker has already armed.
func TestCapturePCsMatchesCallers(t *testing.T) {
	for _, depth := range []int{0, 1, 4, 8, 16} {
		var cbuf, fbuf [MaxCaptureDepth + 2]uintptr
		var cn, fn int
		probe := func() {
			// Both captures from the same frame: fpTestProbe below.
			cn = runtime.Callers(2, cbuf[:])
			fn = fpWalk(1, fbuf[:])
		}
		fpTestProbeAt(depth, probe)
		if fn == 0 {
			t.Fatalf("depth %d: fp walk recorded no frames", depth)
		}
		if !fpEquivalent(cbuf[:cn], fbuf[:fn], fn == len(fbuf)) {
			t.Errorf("depth %d: callers frames not a subsequence of fp frames\ncallers: %v\nfp: %v",
				depth, ResolvePCs(cbuf[:cn], MaxCaptureDepth), ResolvePCs(fbuf[:fn], MaxCaptureDepth))
		}
	}
}

//go:noinline
func fpTestProbeAt(depth int, probe func()) {
	if depth <= 0 {
		probe()
		return
	}
	fpTestProbeAt(depth-1, probe)
}

// TestCapturePCsArms drives CapturePCs through its verification phase on
// real stacks and asserts the walker earns trust (arms) rather than
// disarming — the live-path guarantee behind the fp build's speedup. A
// disarm here means runtime.Callers and the chain walk disagreed on a
// plain Go call stack, which verification must never let stand silently.
func TestCapturePCsArms(t *testing.T) {
	var buf [MaxCaptureDepth]uintptr
	for i := 0; i < 4*fpVerifyN; i++ {
		n := fpTestDescend(i%8, 0, buf[:])
		if n == 0 {
			t.Fatal("CapturePCs recorded no frames")
		}
		if fpState.Load() == fpArmed {
			break
		}
	}
	if !FPActive() {
		t.Fatal("frame-pointer walker disarmed during verification; shallow and full captures disagreed")
	}
	if fpState.Load() != fpArmed {
		t.Fatalf("walker still verifying after %d captures (want armed within %d)", 4*fpVerifyN, fpVerifyN)
	}
}
