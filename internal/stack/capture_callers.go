//go:build !dimmunix.fp || !(amd64 || arm64)

package stack

import "runtime"

// CapturePCs records up to len(buf) raw return PCs of the calling
// goroutine into buf, skipping skip frames above CapturePCs itself
// (skip=0 makes the caller of CapturePCs the innermost entry), and
// returns the number recorded. This is the one primitive every Dimmunix
// stack capture goes through; the buffer length is the capture bound, so
// a shallow classification walk and a full archival walk differ only in
// the slice they pass.
//
// This build resolves to runtime.Callers. Build with -tags dimmunix.fp
// on amd64/arm64 for the frame-pointer walker (capture_fp.go), which
// records the same PC stacks at a fraction of the cost and falls back to
// runtime.Callers the moment a verification capture disagrees.
func CapturePCs(skip int, buf []uintptr) int {
	// +2 skips runtime.Callers and CapturePCs itself.
	return runtime.Callers(skip+2, buf)
}

// FPActive reports whether the frame-pointer walker is compiled in and
// still verified-equivalent (always false without -tags dimmunix.fp).
func FPActive() bool { return false }
