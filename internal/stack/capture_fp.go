//go:build dimmunix.fp && (amd64 || arm64)

package stack

import (
	"runtime"
	"sync/atomic"
	"unsafe"
)

// This build replaces the runtime.Callers walk in CapturePCs with a
// direct frame-pointer chain walk: Go keeps frame pointers on amd64 and
// arm64 (the execution tracer unwinds the same way), so the return-PC
// stack can be read with one load per frame instead of a full unwinder
// pass. The walker is gated by verified equivalence: the first
// fpVerifyN captures run both walks and compare their symbolized frames
// (see fpEquivalent — raw PCs differ legitimately, since the unwinder
// expands inlined calls and elides wrapper frames); any real
// disagreement — a foreign frame without a frame pointer, an unexpected
// chain layout — permanently disarms the walker and every subsequent
// capture takes runtime.Callers. The trade-off once armed: captured
// stacks are physical, so compiler-generated wrapper frames (method
// values, interface dispatch, goroutine entry) appear where the default
// build elides them. Inline expansion is recovered at symbolization
// time by ResolvePCs, application frames are never lost, and stacks
// stay self-consistent within a build — but signatures recorded by an
// fp build may need an extra frame of matching depth to line up with
// ones recorded by a default build through wrapper-containing paths.

// fpGet returns the caller's frame pointer register (BP / R29).
// Implemented in fp_*.s; NOFRAME, so the register still belongs to the
// calling function's frame.
func fpGet() uintptr

const (
	fpVerifying uint32 = iota
	fpArmed
	fpDisarmed
)

const fpVerifyN = 64

var (
	fpState    atomic.Uint32 // fpVerifying -> fpArmed | fpDisarmed
	fpVerified atomic.Uint32 // successful verification captures so far
)

// fpWalk records return PCs by following the frame-pointer chain:
// *(fp+8) is the return PC of the frame fp belongs to, *fp the caller's
// frame pointer — the layout runtime's fpTracebackPCs relies on. The
// walk starts at CapturePCs's own frame (fpGet is NOFRAME), so entry 0
// before skipping is CapturePCs's caller, matching the
// runtime.Callers(skip+2, ...) convention. Chain sanity (nonzero,
// aligned, strictly growing toward the stack base) bounds the walk;
// truncation on a broken chain is caught by verification.
//
// nocheckptr: the walk dereferences frame-pointer chain addresses that
// do not point into Go-visible allocations (they are stack slots of the
// walking goroutine, which cannot move mid-walk since fpWalk makes no
// calls in the loop) — the same exemption the runtime's fpTracebackPCs
// needs. Without it, -race builds (checkptr) abort on the arithmetic.
//
//go:noinline
//go:nocheckptr
func fpWalk(skip int, buf []uintptr) int {
	fp := fpGet()
	n := 0
	for n < len(buf) {
		if fp == 0 || fp&7 != 0 {
			break
		}
		pc := *(*uintptr)(unsafe.Pointer(fp + 8))
		if pc == 0 {
			break
		}
		if skip > 0 {
			skip--
		} else {
			buf[n] = pc
			n++
		}
		next := *(*uintptr)(unsafe.Pointer(fp))
		if next <= fp {
			break
		}
		fp = next
	}
	// The chain bottoms out at goexit's frame; runtime.Callers stops at
	// the same boundary, so no trimming is needed — verification would
	// disarm us if that ever stopped holding.
	return n
}

// CapturePCs records up to len(buf) raw return PCs of the calling
// goroutine into buf, skipping skip frames above CapturePCs itself
// (skip=0 makes the caller of CapturePCs the innermost entry), and
// returns the number recorded. See capture_callers.go for the contract;
// this build walks the frame-pointer chain once verified equivalent.
//
//go:noinline
func CapturePCs(skip int, buf []uintptr) int {
	switch fpState.Load() {
	case fpArmed:
		return fpWalk(skip+1, buf)
	case fpDisarmed:
		return runtime.Callers(skip+2, buf)
	}
	// Verifying: run both, compare, and let runtime.Callers be
	// authoritative until the walker earns trust. The raw PC lists are
	// NOT expected to be identical — runtime.Callers synthesizes one PC
	// per logical (inline-expanded) frame and elides compiler-generated
	// wrappers, while the chain walk sees exactly the physical frames —
	// so equivalence is checked where it matters: after symbolization,
	// every frame runtime.Callers reports must appear, in order, in the
	// frames the chain walk resolves to. ResolvePCs re-expands inlined
	// calls from a physical PC, so a sound chain walk can only add
	// wrapper frames, never lose application frames.
	n := runtime.Callers(skip+2, buf)
	var cbuf, fbuf [MaxCaptureDepth + 2]uintptr
	cn := runtime.Callers(skip+2, cbuf[:])
	fn := fpWalk(skip+1, fbuf[:])
	if !fpEquivalent(cbuf[:cn], fbuf[:fn], fn == len(fbuf)) {
		fpState.Store(fpDisarmed)
		return n
	}
	if fpVerified.Add(1) >= fpVerifyN {
		fpState.Store(fpArmed)
	}
	return n
}

// fpEquivalent reports whether the symbolized callers stack is an
// ordered subsequence of the symbolized frame-pointer stack. fpFull
// flags that the fp walk filled its buffer, in which case callers
// frames beyond the walk's coverage are excused.
func fpEquivalent(callersPCs, fpPCs []uintptr, fpFull bool) bool {
	cs := ResolvePCs(callersPCs, MaxCaptureDepth)
	fs := ResolvePCs(fpPCs, MaxCaptureDepth)
	j := 0
	for _, cf := range cs {
		for j < len(fs) && fs[j] != cf {
			j++
		}
		if j == len(fs) {
			// Ran out of fp frames: fine only under truncation (either
			// buffer hit its cap before covering the rest).
			return fpFull || len(fs) == MaxCaptureDepth
		}
		j++
	}
	return true
}

// FPActive reports whether the frame-pointer walker is live: armed, or
// still accumulating successful verifications.
func FPActive() bool { return fpState.Load() != fpDisarmed }
