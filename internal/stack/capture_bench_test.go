package stack

import (
	"fmt"
	"runtime"
	"testing"
)

// The capture-only microbench ladder: what one raw PC walk costs at
// several call depths, for each capture strategy. This isolates the
// mandatory per-operation cost the fast tier pays before any caching —
// the BENCH_fastpath.json capture ladder is regenerated from these.
//
// "full" is the pre-shallow-capture behavior (MaxCaptureDepth buffer),
// "shallow" the depth-bounded walk the classification table now uses,
// and "pcs" whatever CapturePCs resolves to in this build (runtime.Callers
// by default; the frame-pointer walker under -tags dimmunix.fp).

var sinkN int

//go:noinline
func descend(depth int, f func() int) int {
	if depth <= 0 {
		return f()
	}
	return descend(depth-1, f)
}

func benchAtDepth(b *testing.B, depth int, f func() int) {
	b.Helper()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkN = descend(depth, f)
	}
}

func BenchmarkCaptureFullCallers(b *testing.B) {
	var buf [MaxCaptureDepth + 2]uintptr
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchAtDepth(b, depth, func() int {
				return runtime.Callers(2, buf[:MaxCaptureDepth])
			})
		})
	}
}

func BenchmarkCaptureShallowCallers(b *testing.B) {
	var buf [MaxCaptureDepth + 2]uintptr
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchAtDepth(b, depth, func() int {
				return runtime.Callers(2, buf[:8])
			})
		})
	}
}

func BenchmarkCapturePCs(b *testing.B) {
	var buf [MaxCaptureDepth + 2]uintptr
	for _, depth := range []int{4, 8, 16, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			benchAtDepth(b, depth, func() int {
				return CapturePCs(0, buf[:8])
			})
		})
	}
}
