// Package stack provides the call-stack substrate for Dimmunix.
//
// Dimmunix signatures are multisets of call stacks (§5.3 of the paper).
// Stacks must be portable across executions, so frames are normalized to
// function name plus file:line — the Go analog of the pthreads port's
// "byte offset relative to the beginning of the binary".
//
// Frame order convention: index 0 is the innermost frame (the frame that
// called lock()); higher indices are callers. The paper's "matching depth"
// is the length of the innermost suffix considered during matching, so
// depth d compares frames [0..d).
package stack

import (
	"errors"
	"fmt"
	"runtime"
	"strconv"
	"strings"
)

// Frame is one normalized call-stack frame.
type Frame struct {
	Func string // fully qualified function name
	File string // base file name (not the absolute path, for portability)
	Line int
}

// String renders the frame in the canonical "func@file:line" form used in
// persisted signatures.
func (f Frame) String() string {
	return f.Func + "@" + f.File + ":" + strconv.Itoa(f.Line)
}

// ParseFrame parses the canonical "func@file:line" form.
func ParseFrame(s string) (Frame, error) {
	at := strings.LastIndexByte(s, '@')
	if at < 0 {
		return Frame{}, fmt.Errorf("stack: frame %q missing '@'", s)
	}
	colon := strings.LastIndexByte(s, ':')
	if colon < at {
		return Frame{}, fmt.Errorf("stack: frame %q missing ':line'", s)
	}
	line, err := strconv.Atoi(s[colon+1:])
	if err != nil {
		return Frame{}, fmt.Errorf("stack: frame %q bad line: %v", s, err)
	}
	return Frame{Func: s[:at], File: s[at+1 : colon], Line: line}, nil
}

// Stack is a call stack; Stack[0] is the innermost frame.
type Stack []Frame

// MaxCaptureDepth bounds how many frames Capture records. Signatures only
// ever need the deepest configured matching depth, plus slack for
// calibration to explore deeper rungs.
const MaxCaptureDepth = 32

// Capture records the current goroutine's call stack, skipping skip frames
// on top of Capture itself (skip=0 means the caller of Capture is the
// innermost frame). At most max frames are recorded; max <= 0 means
// MaxCaptureDepth.
func Capture(skip, max int) Stack {
	if max <= 0 || max > MaxCaptureDepth {
		max = MaxCaptureDepth
	}
	var pcs [MaxCaptureDepth + 2]uintptr
	// +1: skip Capture itself (CapturePCs handles its own frames).
	n := CapturePCs(skip+1, pcs[:max])
	return ResolvePCs(pcs[:n], max)
}

// ResolvePCs expands a raw PC stack (as recorded by runtime.Callers) into
// at most max normalized frames. Resolution is deterministic: identical
// PC stacks always produce identical frames (inline expansion included),
// which is what makes PCCache sound.
func ResolvePCs(pcs []uintptr, max int) Stack {
	if len(pcs) == 0 {
		return nil
	}
	if max <= 0 || max > MaxCaptureDepth {
		max = MaxCaptureDepth
	}
	// Copy before handing to CallersFrames, which retains its argument:
	// this keeps callers' stack-allocated PC buffers from escaping (the
	// hot capture path resolves only on a PC-cache miss).
	cp := make([]uintptr, len(pcs))
	copy(cp, pcs)
	frames := runtime.CallersFrames(cp)
	s := make(Stack, 0, len(pcs))
	for {
		fr, more := frames.Next()
		if fr.Function != "" {
			s = append(s, Frame{
				Func: fr.Function,
				File: baseName(fr.File),
				Line: fr.Line,
			})
		}
		if !more || len(s) >= max {
			break
		}
	}
	return s
}

func baseName(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// Clone returns a deep copy of s.
func (s Stack) Clone() Stack {
	if s == nil {
		return nil
	}
	c := make(Stack, len(s))
	copy(c, s)
	return c
}

// Suffix returns the innermost depth frames of s (all of s if depth exceeds
// its length, s itself if depth <= 0).
func (s Stack) Suffix(depth int) Stack {
	if depth <= 0 || depth >= len(s) {
		return s
	}
	return s[:depth]
}

// Equal reports whether two stacks have identical frames.
func (s Stack) Equal(o Stack) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// MatchesAtDepth reports whether the innermost depth frames of s and o are
// identical. A depth <= 0 compares complete stacks. Following the paper's
// matching rule, if either stack is shorter than depth the comparison falls
// back to the full common prefix: both stacks must then have equal length.
func (s Stack) MatchesAtDepth(o Stack, depth int) bool {
	if depth <= 0 {
		return s.Equal(o)
	}
	if len(s) < depth || len(o) < depth {
		return s.Equal(o)
	}
	for i := 0; i < depth; i++ {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// FNV-1a constants.
const (
	fnvOffset = 14695981039346656037
	fnvPrime  = 1099511628211
)

func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= fnvPrime
	}
	return h
}

func hashFrame(h uint64, f Frame) uint64 {
	h = hashString(h, f.Func)
	h ^= '@'
	h *= fnvPrime
	h = hashString(h, f.File)
	h ^= uint64(f.Line)
	h *= fnvPrime
	return h
}

// Hash returns the FNV-1a hash of the full stack.
func (s Stack) Hash() uint64 { return s.HashAtDepth(0) }

// HashAtDepth hashes the innermost depth frames (full stack if depth <= 0
// or depth >= len(s)).
func (s Stack) HashAtDepth(depth int) uint64 {
	if depth <= 0 || depth > len(s) {
		depth = len(s)
	}
	h := uint64(fnvOffset)
	for i := 0; i < depth; i++ {
		h = hashFrame(h, s[i])
	}
	return h
}

// String renders the stack as "f0@file:1 < f1@file:2 < ...", innermost
// first, matching the persisted form.
func (s Stack) String() string {
	var b strings.Builder
	for i, f := range s {
		if i > 0 {
			b.WriteString(" < ")
		}
		b.WriteString(f.String())
	}
	return b.String()
}

// Parse parses the String form back into a Stack.
func Parse(s string) (Stack, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil, errors.New("stack: empty stack string")
	}
	parts := strings.Split(s, " < ")
	out := make(Stack, 0, len(parts))
	for _, p := range parts {
		f, err := ParseFrame(strings.TrimSpace(p))
		if err != nil {
			return nil, err
		}
		out = append(out, f)
	}
	return out, nil
}

// Synthetic builds a deterministic synthetic stack of the given depth from
// an integer seed. The workload generator (§7.2.2) uses this to simulate
// programs whose threads "call multiple functions ... chosen randomly, thus
// generating a uniformly distributed selection of call stacks" when stacks
// must be constructed rather than captured (e.g. for synthesized history
// signatures).
func Synthetic(seed uint64, depth int) Stack {
	if depth <= 0 {
		depth = 1
	}
	s := make(Stack, depth)
	x := seed*2862933555777941757 + 3037000493
	for i := 0; i < depth; i++ {
		x ^= x >> 29
		x *= 0xbf58476d1ce4e5b9
		x ^= x >> 32
		s[i] = Frame{
			Func: "synthetic.fn" + strconv.FormatUint(x%977, 10),
			File: "synthetic.go",
			Line: int(x % 4096),
		}
	}
	return s
}
