package stack

import "sync"

// PCCache memoizes the full capture pipeline — symbol resolution,
// runtime-frame stripping, interning — keyed by the raw program-counter
// stack that runtime.Callers records. Raw PC stacks are the Go analog of
// the paper's return-address stacks: after the first occurrence of a call
// path, a lock operation pays one PC walk plus one hash lookup instead of
// a CallersFrames symbolization, which dominates instrumented-lock cost.
//
// Soundness: a PC value identifies one instruction in the immutable text
// segment, and frame expansion (including inlining) is a pure function of
// the PC stack, so equal PC stacks always map to the same *Interned.
type PCCache struct {
	shards [pcShards]pcShard
}

const pcShards = 16

type pcShard struct {
	mu sync.RWMutex
	m  map[uint64][]pcEntry
}

type pcEntry struct {
	pcs []uintptr
	in  *Interned
}

// NewPCCache returns an empty cache.
func NewPCCache() *PCCache {
	c := &PCCache{}
	for i := range c.shards {
		c.shards[i].m = make(map[uint64][]pcEntry)
	}
	return c
}

// HashPCs hashes a raw PC stack (FNV-1a). Exported for the per-thread
// classification table, which indexes by the same key as this cache.
func HashPCs(pcs []uintptr) uint64 {
	h := uint64(fnvOffset)
	for _, pc := range pcs {
		h ^= uint64(pc)
		h *= fnvPrime
	}
	return h
}

func equalPCs(a, b []uintptr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Get returns the interned stack previously recorded for pcs.
func (c *PCCache) Get(pcs []uintptr) (*Interned, bool) {
	h := HashPCs(pcs)
	sh := &c.shards[h%pcShards]
	sh.mu.RLock()
	for _, e := range sh.m[h] {
		if equalPCs(e.pcs, pcs) {
			sh.mu.RUnlock()
			return e.in, true
		}
	}
	sh.mu.RUnlock()
	return nil, false
}

// Put records the resolution of pcs. The slice is copied.
func (c *PCCache) Put(pcs []uintptr, in *Interned) {
	h := HashPCs(pcs)
	sh := &c.shards[h%pcShards]
	sh.mu.Lock()
	for _, e := range sh.m[h] {
		if equalPCs(e.pcs, pcs) {
			sh.mu.Unlock()
			return
		}
	}
	cp := make([]uintptr, len(pcs))
	copy(cp, pcs)
	sh.m[h] = append(sh.m[h], pcEntry{pcs: cp, in: in})
	sh.mu.Unlock()
}

// Len returns the number of distinct PC stacks cached.
func (c *PCCache) Len() int {
	n := 0
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.RLock()
		for _, es := range sh.m {
			n += len(es)
		}
		sh.mu.RUnlock()
	}
	return n
}
