package stack

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func mkStack(names ...string) Stack {
	s := make(Stack, len(names))
	for i, n := range names {
		s[i] = Frame{Func: n, File: "f.go", Line: i + 1}
	}
	return s
}

func TestFrameStringParseRoundTrip(t *testing.T) {
	cases := []Frame{
		{Func: "main.main", File: "main.go", Line: 10},
		{Func: "pkg.(*T).Method", File: "t.go", Line: 1},
		{Func: "a@b", File: "weird.go", Line: 99}, // '@' inside func name
		{Func: "p.f", File: "dir.go", Line: 123456},
	}
	for _, f := range cases {
		got, err := ParseFrame(f.String())
		if err != nil {
			t.Fatalf("ParseFrame(%q): %v", f.String(), err)
		}
		if got != f {
			t.Errorf("round trip %q: got %+v want %+v", f.String(), got, f)
		}
	}
}

func TestParseFrameErrors(t *testing.T) {
	for _, s := range []string{"", "noat", "f@file", "f@file:xx", "f@file:"} {
		if _, err := ParseFrame(s); err == nil {
			t.Errorf("ParseFrame(%q): expected error", s)
		}
	}
}

func TestStackStringParseRoundTrip(t *testing.T) {
	s := mkStack("inner", "mid", "outer")
	got, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Errorf("round trip: got %v want %v", got, s)
	}
}

func TestParseEmpty(t *testing.T) {
	if _, err := Parse(""); err == nil {
		t.Error("Parse(\"\"): expected error")
	}
	if _, err := Parse("   "); err == nil {
		t.Error("Parse(blank): expected error")
	}
}

func TestCaptureBasic(t *testing.T) {
	s := Capture(0, 0)
	if len(s) == 0 {
		t.Fatal("Capture returned empty stack")
	}
	if !strings.Contains(s[0].Func, "TestCaptureBasic") {
		t.Errorf("innermost frame = %v, want TestCaptureBasic", s[0])
	}
	if s[0].File != "stack_test.go" {
		t.Errorf("innermost file = %q, want stack_test.go", s[0].File)
	}
}

//go:noinline
func captureHelper(depth int) Stack {
	if depth > 0 {
		return captureHelper(depth - 1)
	}
	return Capture(0, 0)
}

func TestCaptureNestedOrder(t *testing.T) {
	s := captureHelper(3)
	if len(s) < 4 {
		t.Fatalf("stack too short: %d frames", len(s))
	}
	for i := 0; i < 4; i++ {
		if !strings.Contains(s[i].Func, "captureHelper") {
			t.Errorf("frame %d = %v, want captureHelper", i, s[i])
		}
	}
	if !strings.Contains(s[4].Func, "TestCaptureNestedOrder") {
		t.Errorf("frame 4 = %v, want TestCaptureNestedOrder", s[4])
	}
}

func TestCaptureMax(t *testing.T) {
	s := captureHelper(10)
	if len(s) > MaxCaptureDepth {
		t.Errorf("len=%d exceeds MaxCaptureDepth", len(s))
	}
	s2 := Capture(0, 3)
	if len(s2) > 3 {
		t.Errorf("Capture(0,3) returned %d frames", len(s2))
	}
}

func TestCaptureSkip(t *testing.T) {
	s0 := Capture(0, 0)
	s1 := Capture(1, 0)
	if len(s1) != len(s0)-1 {
		t.Fatalf("skip=1 len=%d, skip=0 len=%d", len(s1), len(s0))
	}
	if s1[0].Func != s0[1].Func {
		t.Errorf("skip=1 innermost %v != skip=0 second %v", s1[0], s0[1])
	}
}

func TestSuffix(t *testing.T) {
	s := mkStack("a", "b", "c", "d")
	if got := s.Suffix(2); !got.Equal(mkStack("a", "b")) {
		t.Errorf("Suffix(2) = %v", got)
	}
	if got := s.Suffix(0); !got.Equal(s) {
		t.Errorf("Suffix(0) = %v", got)
	}
	if got := s.Suffix(10); !got.Equal(s) {
		t.Errorf("Suffix(10) = %v", got)
	}
}

func TestMatchesAtDepth(t *testing.T) {
	a := mkStack("lock", "update", "mainA")
	b := mkStack("lock", "update", "mainB")
	if !a.MatchesAtDepth(b, 2) {
		t.Error("expected match at depth 2")
	}
	if a.MatchesAtDepth(b, 3) {
		t.Error("expected mismatch at depth 3")
	}
	if a.MatchesAtDepth(b, 0) {
		t.Error("depth 0 means full compare; expected mismatch")
	}
	if !a.MatchesAtDepth(a, 0) {
		t.Error("full compare with self must match")
	}
}

func TestMatchesAtDepthShortStacks(t *testing.T) {
	short := mkStack("lock")
	long := mkStack("lock", "update")
	// short is shorter than depth 2: fall back to full equality.
	if short.MatchesAtDepth(long, 2) {
		t.Error("short vs long at depth 2 must not match")
	}
	if !short.MatchesAtDepth(short.Clone(), 2) {
		t.Error("identical short stacks must match at any depth")
	}
}

func TestMatchDepthMonotonic(t *testing.T) {
	// match at depth d implies match at all d' <= d.
	rng := rand.New(rand.NewSource(1))
	for iter := 0; iter < 200; iter++ {
		n := 2 + rng.Intn(6)
		a := Synthetic(rng.Uint64(), n)
		b := a.Clone()
		// mutate a random tail frame
		k := rng.Intn(n)
		b[k].Line += 1
		for d := 1; d <= n; d++ {
			m := a.MatchesAtDepth(b, d)
			want := d <= k
			if m != want {
				t.Fatalf("iter %d: depth %d match=%v want %v (mutated %d)", iter, d, m, want, k)
			}
		}
	}
}

func TestHashAtDepthConsistency(t *testing.T) {
	a := mkStack("lock", "update", "mainA")
	b := mkStack("lock", "update", "mainB")
	if a.HashAtDepth(2) != b.HashAtDepth(2) {
		t.Error("hashes at depth 2 should agree")
	}
	if a.HashAtDepth(3) == b.HashAtDepth(3) {
		t.Error("hashes at depth 3 should differ")
	}
	if a.Hash() != a.HashAtDepth(0) || a.Hash() != a.HashAtDepth(len(a)) {
		t.Error("Hash() must equal HashAtDepth(0) and full depth")
	}
}

func TestHashLineSensitivity(t *testing.T) {
	a := Stack{{Func: "f", File: "x.go", Line: 1}}
	b := Stack{{Func: "f", File: "x.go", Line: 2}}
	if a.Hash() == b.Hash() {
		t.Error("line change must change hash")
	}
	c := Stack{{Func: "g", File: "x.go", Line: 1}}
	if a.Hash() == c.Hash() {
		t.Error("func change must change hash")
	}
}

func TestHashEqualityProperty(t *testing.T) {
	// Equal stacks hash equal; independent of how they were built.
	f := func(seed uint64, depth uint8) bool {
		d := int(depth%8) + 1
		a := Synthetic(seed, d)
		b := a.Clone()
		return a.Hash() == b.Hash() && a.Equal(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSyntheticDeterministic(t *testing.T) {
	a := Synthetic(42, 5)
	b := Synthetic(42, 5)
	if !a.Equal(b) {
		t.Error("Synthetic not deterministic")
	}
	c := Synthetic(43, 5)
	if a.Equal(c) {
		t.Error("different seeds should give different stacks")
	}
	if len(Synthetic(1, 0)) != 1 {
		t.Error("depth<=0 should clamp to 1")
	}
}

func TestSyntheticRoundTrip(t *testing.T) {
	s := Synthetic(7, 6)
	got, err := Parse(s.String())
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(s) {
		t.Error("synthetic stack round trip failed")
	}
}

func TestCloneIndependence(t *testing.T) {
	a := mkStack("x", "y")
	b := a.Clone()
	b[0].Line = 999
	if a[0].Line == 999 {
		t.Error("Clone aliases underlying array")
	}
	if Stack(nil).Clone() != nil {
		t.Error("nil clone should be nil")
	}
}

func TestInternerDedup(t *testing.T) {
	in := NewInterner()
	a := in.Intern(mkStack("a", "b"))
	b := in.Intern(mkStack("a", "b"))
	c := in.Intern(mkStack("a", "c"))
	if a != b {
		t.Error("identical stacks must intern to same pointer")
	}
	if a == c {
		t.Error("distinct stacks must intern to distinct pointers")
	}
	if in.Len() != 2 {
		t.Errorf("Len = %d, want 2", in.Len())
	}
	if a.ID != 0 || c.ID != 1 {
		t.Errorf("IDs = %d,%d want 0,1", a.ID, c.ID)
	}
}

func TestInternerByID(t *testing.T) {
	in := NewInterner()
	a := in.Intern(mkStack("a"))
	if in.ByID(a.ID) != a {
		t.Error("ByID lookup failed")
	}
	if in.ByID(99) != nil {
		t.Error("ByID out of range should be nil")
	}
}

func TestInternerSnapshotRange(t *testing.T) {
	in := NewInterner()
	in.Intern(mkStack("a"))
	in.Intern(mkStack("b"))
	snap := in.Snapshot()
	if len(snap) != 2 || snap[0].ID != 0 || snap[1].ID != 1 {
		t.Errorf("Snapshot = %v", snap)
	}
	count := 0
	in.Range(func(c *Interned) bool { count++; return count < 1 })
	if count != 1 {
		t.Errorf("Range early stop: count=%d", count)
	}
}

func TestInternerConcurrent(t *testing.T) {
	in := NewInterner()
	const G, N = 8, 200
	done := make(chan map[uint64]*Interned, G)
	for g := 0; g < G; g++ {
		go func() {
			seen := make(map[uint64]*Interned)
			for i := 0; i < N; i++ {
				s := Synthetic(uint64(i%50), 3)
				seen[uint64(i%50)] = in.Intern(s)
			}
			done <- seen
		}()
	}
	ref := <-done
	for g := 1; g < G; g++ {
		m := <-done
		for k, v := range m {
			if ref[k] != v {
				t.Fatalf("interner returned different pointers for seed %d", k)
			}
		}
	}
	if in.Len() != 50 {
		t.Errorf("Len = %d, want 50", in.Len())
	}
}

func BenchmarkCapture(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Capture(0, 16)
	}
}

func BenchmarkHash(b *testing.B) {
	s := Synthetic(1, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = s.Hash()
	}
}

func BenchmarkIntern(b *testing.B) {
	in := NewInterner()
	stacks := make([]Stack, 64)
	for i := range stacks {
		stacks[i] = Synthetic(uint64(i), 8)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = in.Intern(stacks[i%64])
	}
}
