package stack

import (
	"sync"
	"sync/atomic"
)

// Interned is a canonical, immutable representative of a call stack.
// Pointer identity of *Interned implies stack equality, and ID is a dense
// index suitable for slice-backed side tables — this is the paper's §5.6
// "hash table mapping raw call stacks to our own call stack objects".
type Interned struct {
	S  Stack
	H  uint64 // full-depth hash
	ID uint32 // dense, assigned in interning order starting at 0

	// marker caches this stack's last safe/dangerous classification
	// against a history danger index: epoch<<1 | dangerousBit. Zero means
	// unclassified (index epochs start at 1). Written racily by any
	// requester; a stale overwrite only costs a reclassification because
	// readers validate the epoch before trusting the bit.
	marker atomic.Uint64
}

// Marker returns the cached classification: the epoch it was made under
// (0 = never classified) and whether the stack was dangerous then.
func (in *Interned) Marker() (epoch uint64, dangerous bool) {
	m := in.marker.Load()
	return m >> 1, m&1 != 0
}

// SetMarker caches a classification made under the given index epoch.
func (in *Interned) SetMarker(epoch uint64, dangerous bool) {
	m := epoch << 1
	if dangerous {
		m |= 1
	}
	in.marker.Store(m)
}

// Interner deduplicates stacks. It is safe for concurrent use.
type Interner struct {
	mu     sync.RWMutex
	byHash map[uint64][]*Interned
	all    []*Interned
}

// NewInterner returns an empty interner.
func NewInterner() *Interner {
	return &Interner{byHash: make(map[uint64][]*Interned)}
}

// Intern returns the canonical *Interned for s, creating it if needed.
// The returned value retains s if it is new; callers must not mutate s
// afterwards (Capture and Synthetic always return fresh slices).
func (in *Interner) Intern(s Stack) *Interned {
	h := s.Hash()
	in.mu.RLock()
	for _, c := range in.byHash[h] {
		if c.S.Equal(s) {
			in.mu.RUnlock()
			return c
		}
	}
	in.mu.RUnlock()

	in.mu.Lock()
	defer in.mu.Unlock()
	for _, c := range in.byHash[h] {
		if c.S.Equal(s) {
			return c
		}
	}
	c := &Interned{S: s, H: h, ID: uint32(len(in.all))}
	in.byHash[h] = append(in.byHash[h], c)
	in.all = append(in.all, c)
	return c
}

// Len returns the number of distinct stacks interned so far.
func (in *Interner) Len() int {
	in.mu.RLock()
	defer in.mu.RUnlock()
	return len(in.all)
}

// ByID returns the interned stack with the given dense ID, or nil.
func (in *Interner) ByID(id uint32) *Interned {
	in.mu.RLock()
	defer in.mu.RUnlock()
	if int(id) >= len(in.all) {
		return nil
	}
	return in.all[id]
}

// Snapshot returns a copy of the list of all interned stacks, in ID order.
func (in *Interner) Snapshot() []*Interned {
	in.mu.RLock()
	defer in.mu.RUnlock()
	out := make([]*Interned, len(in.all))
	copy(out, in.all)
	return out
}

// Range calls fn for every interned stack in ID order, stopping early if fn
// returns false. fn must not call back into the interner.
func (in *Interner) Range(fn func(*Interned) bool) {
	in.mu.RLock()
	defer in.mu.RUnlock()
	for _, c := range in.all {
		if !fn(c) {
			return
		}
	}
}
