//go:build dimmunix.fp

#include "textflag.h"

// func fpGet() uintptr
// NOFRAME: BP still holds the calling function's frame pointer.
TEXT ·fpGet(SB), NOSPLIT|NOFRAME, $0-8
	MOVQ BP, ret+0(FP)
	RET
