//go:build dimmunix.fp

#include "textflag.h"

// func fpGet() uintptr
// NOFRAME: R29 still holds the calling function's frame pointer.
TEXT ·fpGet(SB), NOSPLIT|NOFRAME, $0-8
	MOVD R29, ret+0(FP)
	RET
