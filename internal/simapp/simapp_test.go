package simapp

import (
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/monitor"
	"dimmunix/internal/signature"
)

func newRuntime(t *testing.T) *core.Runtime {
	t.Helper()
	var rt *core.Runtime
	rt = core.MustNew(core.Config{
		Tau:      2 * time.Millisecond,
		MaxYield: 10 * time.Second,
		OnDeadlock: func(info monitor.DeadlockInfo) {
			rt.AbortThreads(info.ThreadIDs...)
		},
	})
	return rt
}

const hold = 50 * time.Millisecond

// TestTable1AllBugs is Table 1 in miniature: every bug deadlocks when
// first exercised, its signatures accumulate, and once all reproducible
// patterns are archived the exploit runs clean with yields.
func TestTable1AllBugs(t *testing.T) {
	for _, bug := range Bugs() {
		bug := bug
		t.Run(bug.System+"#"+bug.BugID, func(t *testing.T) {
			t.Parallel()
			rt := newRuntime(t)
			defer rt.Stop()
			app := bug.New(rt)

			// Phase 1: contract deadlocks until every reproducible
			// pattern is archived (one deadlock begets one pattern).
			sawDeadlock := false
			for trial := 0; trial < bug.ReproduciblePatterns+6; trial++ {
				errs := app.Exploit(hold)
				if Deadlocked(errs) {
					sawDeadlock = true
				}
				if rt.History().Len() >= bug.ReproduciblePatterns && Clean(errs) {
					break
				}
			}
			if !sawDeadlock {
				t.Fatal("exploit never deadlocked")
			}
			if got := rt.History().Len(); got != bug.ReproduciblePatterns {
				t.Fatalf("archived %d patterns, want %d", got, bug.ReproduciblePatterns)
			}
			for _, sig := range rt.History().Snapshot() {
				if sig.Kind != signature.Deadlock {
					t.Errorf("unexpected %v signature", sig.Kind)
				}
				if sig.Size() != 2 {
					t.Errorf("signature size %d, want 2 (two-thread deadlocks)", sig.Size())
				}
			}

			// Phase 2: immunized trials run clean and yield.
			before := rt.Stats().Yields
			for trial := 0; trial < 3; trial++ {
				errs := app.Exploit(hold)
				if !Clean(errs) {
					t.Fatalf("immunized trial %d failed: %v", trial, errs)
				}
			}
			if rt.Stats().Yields == before {
				t.Error("immunized trials recorded no yields")
			}
		})
	}
}

// TestHawkNLYieldsPerTrial checks the paper's 10-yields-per-trial shape.
func TestHawkNLYieldsPerTrial(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	var bug Bug
	for _, b := range Bugs() {
		if b.System == "HawkNL 1.6b3" {
			bug = b
		}
	}
	app := bug.New(rt)
	for trial := 0; trial < 8; trial++ {
		errs := app.Exploit(hold)
		if rt.History().Len() >= 1 && Clean(errs) {
			break
		}
	}
	// One immunized trial: expect close to one yield per closing socket.
	before := rt.Stats().Yields
	errs := app.Exploit(hold)
	if !Clean(errs) {
		t.Fatalf("immunized trial failed: %v", errs)
	}
	yields := rt.Stats().Yields - before
	if yields < 5 {
		t.Errorf("yields per trial = %d, want ~10 (paper: 10/10/10)", yields)
	}
}

// TestLimewireTwoPatterns checks that the two distinct cancel paths
// produce two distinct signatures.
func TestLimewireTwoPatterns(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	var bug Bug
	for _, b := range Bugs() {
		if b.BugID == "1449" {
			bug = b
		}
	}
	app := bug.New(rt)
	for trial := 0; trial < 12; trial++ {
		errs := app.Exploit(hold)
		if rt.History().Len() >= 2 && Clean(errs) {
			break
		}
	}
	if rt.History().Len() != 2 {
		t.Fatalf("patterns = %d, want 2", rt.History().Len())
	}
}

// TestActiveMQManyYields checks the "yields >> 1" shape of the dispatch
// loop bugs.
func TestActiveMQManyYields(t *testing.T) {
	rt := newRuntime(t)
	defer rt.Stop()
	var bug Bug
	for _, b := range Bugs() {
		if b.BugID == "575" {
			bug = b
		}
	}
	app := bug.New(rt)
	for trial := 0; trial < 8; trial++ {
		errs := app.Exploit(hold)
		if rt.History().Len() >= 1 && Clean(errs) {
			break
		}
	}
	before := rt.Stats().Yields
	errs := app.Exploit(hold)
	if !Clean(errs) {
		t.Fatalf("immunized trial failed: %v", errs)
	}
	yields := rt.Stats().Yields - before
	if yields < 10 {
		t.Errorf("loop-driven bug produced %d yields; expected many", yields)
	}
}

func TestBugRegistryShape(t *testing.T) {
	bugs := Bugs()
	if len(bugs) != 10 {
		t.Fatalf("Table 1 has 10 rows, registry has %d", len(bugs))
	}
	for _, b := range bugs {
		if b.System == "" || b.Desc == "" || b.New == nil {
			t.Errorf("incomplete bug row: %+v", b)
		}
		if len(b.Depth) != b.Patterns {
			t.Errorf("%s: %d depths for %d patterns", b.System, len(b.Depth), b.Patterns)
		}
		if b.ReproduciblePatterns > b.Patterns {
			t.Errorf("%s: reproducible > total", b.System)
		}
	}
}
