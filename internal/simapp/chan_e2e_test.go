package simapp

import (
	"context"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/histstore"
	"dimmunix/internal/lint"
	"dimmunix/internal/signature"
)

// TestChannelStaticInoculation closes the loop on the channel-carried
// inversion: the static analyzer binds the ChannelLab's recv-side
// acquisitions through the send-site payload table — no execution, no
// trace — and a fresh fleet member avoids the resulting two-lock
// inversion on its very first encounter. Only the ChannelLab cycle is
// pushed, so the avoidance yield is attributable to precisely the
// signature the payload analysis produced.
func TestChannelStaticInoculation(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "chan-static.json")

	prog, err := lint.Load(lint.Options{}, "dimmunix/internal/simapp")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := lint.AnalyzeLockOrder(prog, lint.LockOrderOptions{})
	var chanCycles []lint.ConfirmedCycle
	for _, c := range res.Cycles {
		carried := true
		for _, l := range c.Locks {
			if !strings.Contains(l, "ChannelLab") {
				carried = false
				break
			}
		}
		if carried && len(c.Locks) > 0 {
			chanCycles = append(chanCycles, c)
		}
	}
	if len(chanCycles) == 0 {
		t.Fatalf("payload table did not surface the ChannelLab inversion; cycles: %+v", res.Cycles)
	}

	emitted := lint.EmitHistoryCycles(chanCycles, lint.EmitOptions{Calibrate: true})
	if emitted.Len() == 0 {
		t.Fatalf("nothing emitted from %d ChannelLab cycles", len(chanCycles))
	}
	fs := histstore.NewFileStore(storePath)
	if _, err := fs.Push(context.Background(), emitted); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	avoid := core.MustNew(core.Config{
		HistoryPath: storePath,
		MatchDepth:  2,
		Tau:         2 * time.Millisecond,
		MaxYield:    10 * time.Second,
	})
	defer avoid.Stop()
	var loadedStatic int
	for _, s := range avoid.History().Snapshot() {
		if s.Source == signature.SourceStatic {
			loadedStatic++
		}
	}
	if loadedStatic != emitted.Len() {
		t.Fatalf("runtime loaded %d static entries, store holds %d", loadedStatic, emitted.Len())
	}

	if errs := NewChannelLab(avoid).Exploit(50 * time.Millisecond); !Clean(errs) {
		t.Fatalf("inoculated exploit not clean: %v", errs)
	}
	stats := avoid.Stats()
	if stats.DeadlocksDetected != 0 {
		t.Fatalf("inoculated run detected %d deadlocks; static immunity must avoid, not recover", stats.DeadlocksDetected)
	}
	if stats.Yields == 0 {
		t.Fatal("inoculated run recorded no avoidance yields")
	}
	attributed := false
	for id, n := range stats.YieldsBySignature {
		if n == 0 {
			continue
		}
		sig := avoid.History().Get(id)
		if sig == nil {
			t.Fatalf("yield attributed to unknown signature %s", id)
		}
		if sig.Source == signature.SourceStatic {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("no yield attributed to a static signature: %v", stats.YieldsBySignature)
	}
}
