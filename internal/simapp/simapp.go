// Package simapp reproduces the locking skeletons of the real deadlock
// bugs evaluated in Table 1 of the Dimmunix paper (§7.1.1). The original
// systems (MySQL, SQLite, HawkNL, MySQL JDBC, Limewire/HsqlDB, ActiveMQ)
// are not reproducible inside this repository, so each bug is distilled to
// the thread/lock structure that made it deadlock — the same thread count,
// the same lock-order inversion, the same nesting depth — driven by the
// paper's own methodology of timing loops that turn the race into a
// deterministic "exploit". See DESIGN.md §2 for the substitution argument.
package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// Bug describes one Table 1 row.
type Bug struct {
	// System and BugID match the paper's row ("MySQL 6.0.4", "37080").
	System string
	BugID  string
	// Desc is the paper's "Deadlock Between ..." column.
	Desc string
	// Patterns is the number of distinct deadlock patterns the bug can
	// generate (the paper's "# " column); ReproduciblePatterns is how
	// many the exploit reproduces (ActiveMQ 575 reproduces 1 of 3, like
	// the authors).
	Patterns             int
	ReproduciblePatterns int
	// Depth is the paper's reported pattern depth(s).
	Depth []int
	// ExpectedYields is the paper's yields-per-trial (min, avg, max)
	// for the immunized run; large loop-driven numbers are scaled by
	// the exploit's LoopN.
	ExpectedYields [3]int
	// New builds a fresh instance of the buggy "application" on rt.
	New func(rt *core.Runtime) Instance
}

// Instance is one runnable copy of a buggy application.
type Instance interface {
	// Exploit runs the deterministic test case once. hold is the timing
	// window between first and second acquisitions. The returned errors
	// are the workers' outcomes: ErrDeadlockRecovered means the trial
	// deadlocked and was recovered; all-nil means it ran to completion.
	Exploit(hold time.Duration) []error
}

// cross runs the given lock paths concurrently and collects their errors.
func cross(rt *core.Runtime, paths ...func(*core.Thread) error) []error {
	errs := make([]error, len(paths))
	done := make(chan int, len(paths))
	for i, p := range paths {
		go func(i int, p func(*core.Thread) error) {
			th := rt.RegisterThread("w")
			defer th.Close()
			errs[i] = p(th)
			done <- i
		}(i, p)
	}
	for range paths {
		<-done
	}
	return errs
}

// pause waits for d: short windows busy-spin (sub-millisecond sleeps are
// too coarse to model in-critical-section work), long ones sleep.
func pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if d < time.Millisecond {
		deadline := time.Now().Add(d)
		for time.Now().Before(deadline) {
		}
		return
	}
	time.Sleep(d)
}

// nest acquires outer, waits hold, then acquires inner; both are released
// before returning. Errors unwind held locks, which is how recovery
// emulates the paper's restart.
func nest(t *core.Thread, outer, inner *core.Mutex, hold time.Duration, critical func()) error {
	if err := outer.LockT(t); err != nil {
		return err
	}
	pause(hold)
	//lint:ignore lockorder deliberate inversion: every simapp bug lab nests through here
	if err := inner.LockT(t); err != nil {
		_ = outer.UnlockT(t)
		return err
	}
	if critical != nil {
		critical()
	}
	_ = inner.UnlockT(t)
	_ = outer.UnlockT(t)
	return nil
}

// Deadlocked reports whether any worker error indicates a recovered
// deadlock.
func Deadlocked(errs []error) bool {
	for _, err := range errs {
		if err == core.ErrDeadlockRecovered {
			return true
		}
	}
	return false
}

// Clean reports whether every worker completed.
func Clean(errs []error) bool {
	for _, err := range errs {
		if err != nil {
			return false
		}
	}
	return true
}
