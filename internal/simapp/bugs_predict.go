package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// InversionLab is the predictive-immunity proving ground: lock-order
// inversions that are real deadlocks-in-waiting but never fire in the
// recorded (canary) schedule, plus the two classic sound-negative
// controls the offline predictor must reject.
//
// The trap the lab is built around: the canary schedule and the exploit
// schedule route through the SAME helper call sites (runAB/runBA), so a
// signature predicted from the serialized canary trace carries exactly
// the acquisition stacks the concurrent exploit presents — the avoidance
// matcher cannot tell a predicted entry from an experienced one. Each
// scenario uses its own lock set so the trace analysis of one cannot
// contaminate another.
type InversionLab struct {
	rt *core.Runtime
	// The predictable pair: AB / BA on disjoint schedules.
	a, b *core.Mutex
	// The guarded control: same inversion, both orders under guard g.
	ga, gb, g *core.Mutex
	// The same-thread control: one thread takes both orders in sequence.
	sa, sb *core.Mutex
}

// NewInversionLab builds the lab's lock sets on rt.
func NewInversionLab(rt *core.Runtime) *InversionLab {
	return &InversionLab{
		rt: rt,
		a:  rt.NewMutex(), b: rt.NewMutex(),
		ga: rt.NewMutex(), gb: rt.NewMutex(), g: rt.NewMutex(),
		sa: rt.NewMutex(), sb: rt.NewMutex(),
	}
}

// runAB / runBA are the shared call sites: every schedule — canary or
// exploit — acquires through these two lines, so call stacks line up
// across runs and across processes of the same binary.
func (l *InversionLab) runAB(t *core.Thread, hold time.Duration) error {
	return nest(t, l.a, l.b, hold, nil)
}

func (l *InversionLab) runBA(t *core.Thread, hold time.Duration) error {
	return nest(t, l.b, l.a, hold, nil)
}

// Canary runs the inversion on disjoint schedules: AB completes before
// BA starts. The run can never block — there is no lock contention at
// all — yet the trace it leaves proves the A→B / B→A inversion, which
// is exactly what the offline predictor must surface.
func (l *InversionLab) Canary(hold time.Duration) []error {
	errs := make([]error, 2)
	t1 := l.rt.RegisterThread("canary-ab")
	errs[0] = l.runAB(t1, hold)
	t1.Close()
	t2 := l.rt.RegisterThread("canary-ba")
	errs[1] = l.runBA(t2, hold)
	t2.Close()
	return errs
}

// Exploit runs the real interleaving: AB and BA concurrently, each
// holding its outer lock across the window. Without immunity this
// deadlocks; with the predicted signature loaded, one side yields.
func (l *InversionLab) Exploit(hold time.Duration) []error {
	return cross(l.rt,
		func(t *core.Thread) error { return l.runAB(t, hold) },
		func(t *core.Thread) error { return l.runBA(t, hold) },
	)
}

// GuardedCanary records the sound-negative control: the same shape of
// inversion (GA→GB then GB→GA, serialized), but both orders run under
// the common guard g, so the deadlocking interleaving cannot occur and
// the predictor must reject the cycle (common-lock guard).
func (l *InversionLab) GuardedCanary(hold time.Duration) []error {
	under := func(name string, outer, inner *core.Mutex) error {
		t := l.rt.RegisterThread(name)
		defer t.Close()
		if err := l.g.LockT(t); err != nil {
			return err
		}
		err := nest(t, outer, inner, hold, nil)
		_ = l.g.UnlockT(t)
		return err
	}
	return []error{
		under("guarded-ab", l.ga, l.gb),
		under("guarded-ba", l.gb, l.ga),
	}
}

// SameThreadCanary records the second control: one thread takes SA→SB
// and then SB→SA. A single thread cannot deadlock with itself here, so
// the predictor must reject the cycle (thread-disjointness guard).
func (l *InversionLab) SameThreadCanary(hold time.Duration) []error {
	t := l.rt.RegisterThread("same-thread")
	defer t.Close()
	return []error{
		nest(t, l.sa, l.sb, hold, nil),
		nest(t, l.sb, l.sa, hold, nil),
	}
}
