package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// --- HawkNL 1.6b3: nlShutdown vs nlClose ---------------------------------
//
// nlShutdown takes the global socket-list lock and then each socket's
// lock; nlClose takes the socket's lock and then the list lock to
// deregister. With ten sockets being closed concurrently with a shutdown,
// the immunized run yields once per socket: 10 yields per trial.

const hawkSockets = 10

type hawkNL struct {
	rt      *core.Runtime
	listMu  *core.Mutex
	sockets [hawkSockets]*core.Mutex
	nOpen   int
}

func newHawkNL(rt *core.Runtime) Instance {
	h := &hawkNL{rt: rt, listMu: rt.NewMutex(), nOpen: hawkSockets}
	for i := range h.sockets {
		h.sockets[i] = rt.NewMutex()
	}
	return h
}

//go:noinline
func (h *hawkNL) nlShutdown(t *core.Thread, hold time.Duration) error {
	if err := h.listMu.LockT(t); err != nil {
		return err
	}
	time.Sleep(hold)
	for i := 0; i < hawkSockets; i++ {
		if err := h.lockSocketForShutdown(t, i); err != nil {
			_ = h.listMu.UnlockT(t)
			return err
		}
		h.nOpen--
		_ = h.sockets[i].UnlockT(t)
	}
	_ = h.listMu.UnlockT(t)
	return nil
}

//go:noinline
func (h *hawkNL) lockSocketForShutdown(t *core.Thread, i int) error {
	//lint:ignore lockorder deliberate inversion: HawkNL shutdown deadlock reproduction
	return h.sockets[i].LockT(t)
}

//go:noinline
func (h *hawkNL) nlClose(t *core.Thread, i int, hold time.Duration) error {
	return nest(t, h.sockets[i], h.listMu, hold, nil)
}

func (h *hawkNL) Exploit(hold time.Duration) []error {
	paths := make([]func(*core.Thread) error, 0, hawkSockets+1)
	paths = append(paths, func(t *core.Thread) error { return h.nlShutdown(t, hold) })
	for i := 0; i < hawkSockets; i++ {
		i := i
		paths = append(paths, func(t *core.Thread) error {
			// Stagger closers so each manifests the pattern.
			time.Sleep(hold / 4)
			return h.nlClose(t, i, hold)
		})
	}
	return cross(h.rt, paths...)
}

// --- Limewire 4.17.9 bug #1449: HsqlDB TaskQueue cancel vs shutdown ------
//
// HsqlDB's timer TaskQueue deadlocks between task cancellation (task
// monitor -> queue monitor) and queue shutdown (queue monitor -> task
// monitor). The paper reports two deep patterns (depth 10): cancel is
// reachable via two distinct call paths (the timer and the connection
// teardown). Call chains below are artificially deep to reproduce the
// depth-10 stacks; 15 tasks yield 15 times per immunized trial.

const limeTasks = 15

type limewire struct {
	rt      *core.Runtime
	queueMu *core.Mutex
	taskMu  [limeTasks]*core.Mutex
	alive   int
}

func newLimewire(rt *core.Runtime) Instance {
	l := &limewire{rt: rt, queueMu: rt.NewMutex(), alive: limeTasks}
	for i := range l.taskMu {
		l.taskMu[i] = rt.NewMutex()
	}
	return l
}

// Deep call chains (8 frames) so captured stacks reach depth ~10.

//go:noinline
func (l *limewire) shutdown(t *core.Thread, hold time.Duration) error {
	return l.shutdown2(t, hold)
}

//go:noinline
func (l *limewire) shutdown2(t *core.Thread, hold time.Duration) error {
	return l.shutdown3(t, hold)
}

//go:noinline
func (l *limewire) shutdown3(t *core.Thread, hold time.Duration) error {
	return l.shutdown4(t, hold)
}

//go:noinline
func (l *limewire) shutdown4(t *core.Thread, hold time.Duration) error {
	if err := l.queueMu.LockT(t); err != nil {
		return err
	}
	time.Sleep(hold)
	for i := 0; i < limeTasks; i++ {
		//lint:ignore lockorder deliberate inversion: LimeWire shutdown deadlock reproduction
		if err := l.taskMu[i].LockT(t); err != nil {
			_ = l.queueMu.UnlockT(t)
			return err
		}
		l.alive--
		_ = l.taskMu[i].UnlockT(t)
	}
	_ = l.queueMu.UnlockT(t)
	return nil
}

//go:noinline
func (l *limewire) cancelViaTimer(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelViaTimer2(t, i, hold)
}

//go:noinline
func (l *limewire) cancelViaTimer2(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelViaTimer3(t, i, hold)
}

//go:noinline
func (l *limewire) cancelViaTimer3(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelCore(t, i, hold)
}

//go:noinline
func (l *limewire) cancelViaTeardown(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelViaTeardown2(t, i, hold)
}

//go:noinline
func (l *limewire) cancelViaTeardown2(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelViaTeardown3(t, i, hold)
}

//go:noinline
func (l *limewire) cancelViaTeardown3(t *core.Thread, i int, hold time.Duration) error {
	return l.cancelCore(t, i, hold)
}

//go:noinline
func (l *limewire) cancelCore(t *core.Thread, i int, hold time.Duration) error {
	return nest(t, l.taskMu[i], l.queueMu, hold, nil)
}

func (l *limewire) Exploit(hold time.Duration) []error {
	paths := make([]func(*core.Thread) error, 0, limeTasks+1)
	paths = append(paths, func(t *core.Thread) error { return l.shutdown(t, hold) })
	for i := 0; i < limeTasks; i++ {
		i := i
		if i%2 == 0 {
			paths = append(paths, func(t *core.Thread) error {
				time.Sleep(hold / 4)
				return l.cancelViaTimer(t, i, hold)
			})
		} else {
			paths = append(paths, func(t *core.Thread) error {
				time.Sleep(hold / 4)
				return l.cancelViaTeardown(t, i, hold)
			})
		}
	}
	return cross(l.rt, paths...)
}
