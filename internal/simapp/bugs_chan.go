package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// chanOrder is a lock pair traveling over a channel: whoever receives
// it nests in the carried order, so the acquisition order at the recv
// side is decided by the send site — invisible to any analysis that
// stops at the function boundary.
type chanOrder struct {
	outer, inner *core.Mutex
}

// ChannelLab is the channel-carried inversion: the dispatcher publishes
// the lab's pair in b-before-a order, the server nests in whatever
// order arrives, and the direct path nests a-before-b. The inversion is
// a plain two-lock cycle at runtime (avoidable by yielding), but
// statically the b→a edge only exists once recv-side acquisitions bind
// through the send-site payload table.
type ChannelLab struct {
	rt   *core.Runtime
	a, b *core.Mutex
	req  chan chanOrder
}

// NewChannelLab builds the lab on rt. The request channel is buffered
// so dispatch never blocks: the deadlock under study is purely between
// the two nested lock paths.
func NewChannelLab(rt *core.Runtime) *ChannelLab {
	return &ChannelLab{rt: rt, a: rt.NewMutex(), b: rt.NewMutex(), req: make(chan chanOrder, 1)}
}

// dispatch publishes the pair in the inverted order.
func (l *ChannelLab) dispatch() {
	l.req <- chanOrder{outer: l.b, inner: l.a}
}

// serve nests in the order carried by the channel.
func (l *ChannelLab) serve(t *core.Thread, hold time.Duration) error {
	o := <-l.req
	return nest(t, o.outer, o.inner, hold, nil)
}

// direct nests in the lab's natural order.
func (l *ChannelLab) direct(t *core.Thread, hold time.Duration) error {
	return nest(t, l.a, l.b, hold, nil)
}

// Exploit runs the real interleaving: the served (channel-ordered) path
// against the direct path, each holding its outer lock across the
// window. Without immunity this deadlocks; with the statically emitted
// signature loaded, one side yields.
func (l *ChannelLab) Exploit(hold time.Duration) []error {
	l.dispatch()
	return cross(l.rt,
		func(t *core.Thread) error { return l.direct(t, hold) },
		func(t *core.Thread) error { return l.serve(t, hold) },
	)
}
