package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// --- ActiveMQ 3.1 bug #336: listener creation vs message dispatch --------
//
// The session's dispatch loop locks the session monitor and then each
// consumer; creating a listener locks the consumer and then the session.
// In the paper's trial the avoided dispatch loop keeps re-entering the
// pattern, producing ~181k yields per trial; LoopN scales that down while
// preserving the "yields >> 1" shape.

type activeMQ336 struct {
	rt       *core.Runtime
	session  *core.Mutex
	consumer *core.Mutex
	// LoopN is the number of dispatch iterations per trial.
	LoopN      int
	dispatched int
}

func newActiveMQ336(rt *core.Runtime) Instance {
	return &activeMQ336{
		rt:       rt,
		session:  rt.NewMutexKind(core.Recursive),
		consumer: rt.NewMutexKind(core.Recursive),
		LoopN:    150,
	}
}

//go:noinline
func (a *activeMQ336) dispatch(t *core.Thread, hold time.Duration) error {
	return nest(t, a.session, a.consumer, hold, func() { a.dispatched++ })
}

//go:noinline
func (a *activeMQ336) createListener(t *core.Thread, hold time.Duration) error {
	return nest(t, a.consumer, a.session, hold, nil)
}

// loopWindow is the in-critical-section work window of the loop
// iterations: wide enough that the dispatch and listener loops keep
// overlapping (and hence keep re-meeting the avoided pattern), narrow
// enough to keep trials fast.
const loopWindow = 1 * time.Millisecond

func (a *activeMQ336) Exploit(hold time.Duration) []error {
	return cross(a.rt,
		func(t *core.Thread) error {
			// Active dispatching: a hot loop that keeps meeting the
			// pattern while listeners are (re)created.
			for i := 0; i < a.LoopN; i++ {
				h := loopWindow
				if i == 0 {
					h = hold // deterministic first collision
				}
				if err := a.dispatch(t, h); err != nil {
					return err
				}
			}
			return nil
		},
		func(t *core.Thread) error {
			for i := 0; i < a.LoopN; i++ {
				h := loopWindow
				if i == 0 {
					h = hold
				}
				if err := a.createListener(t, h); err != nil {
					return err
				}
			}
			return nil
		},
	)
}

// --- ActiveMQ 4.0 bug #575: Queue.dropEvent vs PrefetchSubscription.add --
//
// The queue's dropEvent locks the queue then the subscription; the
// subscription's add locks the subscription then the queue. The bug has
// three distinct patterns; like the authors, the exploit reproduces one
// (the other two require broker-internal paths the skeleton does not
// model).

type activeMQ575 struct {
	rt    *core.Runtime
	queue *core.Mutex
	sub   *core.Mutex
	LoopN int
	drops int
}

func newActiveMQ575(rt *core.Runtime) Instance {
	return &activeMQ575{
		rt:    rt,
		queue: rt.NewMutexKind(core.Recursive),
		sub:   rt.NewMutexKind(core.Recursive),
		LoopN: 150,
	}
}

//go:noinline
func (a *activeMQ575) dropEvent(t *core.Thread, hold time.Duration) error {
	return nest(t, a.queue, a.sub, hold, func() { a.drops++ })
}

//go:noinline
func (a *activeMQ575) subscriptionAdd(t *core.Thread, hold time.Duration) error {
	return nest(t, a.sub, a.queue, hold, nil)
}

func (a *activeMQ575) Exploit(hold time.Duration) []error {
	return cross(a.rt,
		func(t *core.Thread) error {
			for i := 0; i < a.LoopN; i++ {
				h := loopWindow
				if i == 0 {
					h = hold
				}
				if err := a.dropEvent(t, h); err != nil {
					return err
				}
			}
			return nil
		},
		func(t *core.Thread) error {
			for i := 0; i < a.LoopN; i++ {
				h := loopWindow
				if i == 0 {
					h = hold
				}
				if err := a.subscriptionAdd(t, h); err != nil {
					return err
				}
			}
			return nil
		},
	)
}
