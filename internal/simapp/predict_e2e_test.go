package simapp

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/histstore"
	"dimmunix/internal/obs"
	"dimmunix/internal/predict"
	"dimmunix/internal/signature"
	"dimmunix/internal/trace"
)

// TestPredictiveCanaryInoculation is the whole predictive-immunity loop
// in one process: a canary run records a trace of serialized schedules
// that never contend (plus two sound-negative controls), the offline
// predictor extracts exactly the one real inversion, the prediction is
// pushed through an immunity store, and a second runtime — which has
// never seen the deadlock — avoids the real interleaving on its first
// encounter, observably (AvoidanceYield events, per-signature yield
// stats), with zero deadlocks detected anywhere.
func TestPredictiveCanaryInoculation(t *testing.T) {
	dir := t.TempDir()
	tracePath := filepath.Join(dir, "canary.trace")
	storePath := filepath.Join(dir, "immunity.json")

	// Phase 1 — canary: trace mode on, disjoint schedules, no contention.
	canary := core.MustNew(core.Config{
		TracePath:  tracePath,
		MatchDepth: 2,
		Tau:        2 * time.Millisecond,
	})
	if errs := NewInversionLab(canary).Canary(time.Millisecond); !Clean(errs) {
		t.Fatalf("canary run not clean: %v", errs)
	}
	lab := NewInversionLab(canary) // fresh lock sets for the controls
	if errs := lab.GuardedCanary(time.Millisecond); !Clean(errs) {
		t.Fatalf("guarded control not clean: %v", errs)
	}
	if errs := lab.SameThreadCanary(time.Millisecond); !Clean(errs) {
		t.Fatalf("same-thread control not clean: %v", errs)
	}
	if n := canary.MonitorCounters().DeadlocksDetected.Load(); n != 0 {
		t.Fatalf("canary run detected %d deadlocks; schedules must be disjoint", n)
	}
	if err := canary.Stop(); err != nil {
		t.Fatalf("canary stop: %v", err)
	}
	st := canary.Stats()
	if st.TraceRecords == 0 {
		t.Fatal("trace mode recorded nothing")
	}
	if st.TraceDropped != 0 {
		t.Fatalf("trace dropped %d records", st.TraceDropped)
	}

	// Phase 2 — offline prediction. The inversion must be found; both
	// controls must be rejected by their respective soundness guards.
	tr, err := trace.ReadAll(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	res := predict.Analyze(tr, predict.Options{Depth: 2})
	if len(res.Signatures) != 1 {
		t.Fatalf("predicted %d signatures, want exactly 1 (cycles=%d rejected=%+v)",
			len(res.Signatures), res.Cycles, res.Rejected)
	}
	if res.Rejected.CommonLock == 0 {
		t.Fatalf("guarded control was not exercised/rejected: %+v", res.Rejected)
	}
	if res.Rejected.SameThread == 0 {
		t.Fatalf("same-thread control was not exercised/rejected: %+v", res.Rejected)
	}
	sig := res.Signatures[0]
	if sig.Source != signature.SourcePredicted {
		t.Fatalf("source = %q", sig.Source)
	}

	// Phase 3 — canary loop: push the prediction through the store.
	fs := histstore.NewFileStore(storePath)
	if _, err := fs.Push(context.Background(), res.History(tr.Fingerprint)); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Phase 4 — inoculated process: loads the store at startup, then runs
	// the real interleaving. First encounter must be avoided, not merely
	// recovered.
	avoid := core.MustNew(core.Config{
		HistoryPath: storePath,
		MatchDepth:  2,
		Tau:         2 * time.Millisecond,
		MaxYield:    10 * time.Second,
	})
	defer avoid.Stop()
	if got := avoid.History().Get(sig.ID); got == nil || got.Source != signature.SourcePredicted {
		t.Fatalf("inoculated runtime did not load the predicted entry: %+v", got)
	}
	events := avoid.SubscribeNamed(context.Background(), "e2e")
	if errs := NewInversionLab(avoid).Exploit(50 * time.Millisecond); !Clean(errs) {
		t.Fatalf("inoculated exploit not clean: %v", errs)
	}
	stats := avoid.Stats()
	if stats.DeadlocksDetected != 0 {
		t.Fatalf("inoculated run detected %d deadlocks", stats.DeadlocksDetected)
	}
	if stats.Yields == 0 {
		t.Fatal("inoculated run recorded no avoidance yields")
	}
	if stats.YieldsBySignature[sig.ID] == 0 {
		t.Fatalf("yields not attributed to the predicted signature: %v", stats.YieldsBySignature)
	}
	sawYield := false
	for !sawYield {
		select {
		case ev := <-events:
			if y, ok := ev.(obs.AvoidanceYield); ok && y.SigID == sig.ID {
				sawYield = true
			}
		case <-time.After(5 * time.Second):
			t.Fatal("no AvoidanceYield event for the predicted signature")
		}
	}
}

// TestPredictedPushBumpsDangerEpoch is the canary-loop differential: a
// running runtime's fast-path danger index must epoch-bump when a
// predicted snapshot lands in its store and is synced in — exactly as
// for a live archive — so cached safe-stack markers revalidate.
func TestPredictedPushBumpsDangerEpoch(t *testing.T) {
	dir := t.TempDir()
	storePath := filepath.Join(dir, "store.json")

	rt := core.MustNew(core.Config{
		HistoryStore: histstore.NewFileStore(storePath),
		SyncInterval: -1, // manual SyncNow only: the test controls timing
		MatchDepth:   2,
		Tau:          2 * time.Millisecond,
	})
	defer rt.Stop()
	before := rt.Stats()

	// A canary elsewhere records, predicts, and pushes.
	canaryDir := t.TempDir()
	tracePath := filepath.Join(canaryDir, "c.trace")
	canary := core.MustNew(core.Config{
		TracePath:  tracePath,
		MatchDepth: 2,
		Tau:        2 * time.Millisecond,
	})
	if errs := NewInversionLab(canary).Canary(time.Millisecond); !Clean(errs) {
		t.Fatalf("canary: %v", errs)
	}
	if err := canary.Stop(); err != nil {
		t.Fatal(err)
	}
	tr, err := trace.ReadAll(tracePath)
	if err != nil {
		t.Fatal(err)
	}
	res := predict.Analyze(tr, predict.Options{Depth: 2})
	if len(res.Signatures) != 1 {
		t.Fatalf("predicted %d signatures", len(res.Signatures))
	}
	push := histstore.NewFileStore(storePath)
	if _, err := push.Push(context.Background(), res.History(tr.Fingerprint)); err != nil {
		t.Fatal(err)
	}
	push.Close()

	// The running runtime syncs and must observe the epoch bump — the
	// fast path's invalidation clock — plus the new entry with its
	// provenance intact.
	if err := rt.SyncNow(context.Background()); err != nil {
		t.Fatal(err)
	}
	after := rt.Stats()
	if after.HistoryEpoch <= before.HistoryEpoch {
		t.Fatalf("danger epoch did not bump: %d -> %d", before.HistoryEpoch, after.HistoryEpoch)
	}
	if after.HistorySignatures != before.HistorySignatures+1 {
		t.Fatalf("signatures %d -> %d, want +1", before.HistorySignatures, after.HistorySignatures)
	}
	found := false
	for _, s := range rt.HistorySummary().Signatures {
		if s.ID == res.Signatures[0].ID {
			found = true
			if s.Source != signature.SourcePredicted {
				t.Fatalf("summary source = %q, want predicted", s.Source)
			}
		}
	}
	if !found {
		t.Fatal("predicted entry missing from history summary")
	}
}
