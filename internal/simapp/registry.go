package simapp

// Bugs returns the ten Table 1 rows in the paper's order.
func Bugs() []Bug {
	return []Bug{
		{
			System: "MySQL 6.0.4", BugID: "37080",
			Desc:     "INSERT and TRUNCATE in two different threads",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{4},
			ExpectedYields: [3]int{1, 1, 4},
			New:            newMySQL,
		},
		{
			System: "SQLite 3.3.0", BugID: "1672",
			Desc:     "Deadlock in the custom recursive lock implementation",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{3},
			ExpectedYields: [3]int{1, 1, 1},
			New:            newSQLite,
		},
		{
			System: "HawkNL 1.6b3", BugID: "n/a",
			Desc:     "nlShutdown() called concurrently with nlClose()",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{2},
			ExpectedYields: [3]int{10, 10, 10},
			New:            newHawkNL,
		},
		{
			System: "MySQL 5.0 JDBC", BugID: "2147",
			Desc:     "PreparedStatement.getWarnings() and Connection.close()",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{3},
			ExpectedYields: [3]int{1, 1, 1},
			New:            newJDBC2147,
		},
		{
			System: "MySQL 5.0 JDBC", BugID: "14972",
			Desc:     "Connection.prepareStatement() and Statement.close()",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{4},
			ExpectedYields: [3]int{1, 1, 1},
			New:            newJDBC14972,
		},
		{
			System: "MySQL 5.0 JDBC", BugID: "31136",
			Desc:     "PreparedStatement.executeQuery() and Connection.close()",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{3},
			ExpectedYields: [3]int{1, 1, 1},
			New:            newJDBC31136,
		},
		{
			System: "MySQL 5.0 JDBC", BugID: "17709",
			Desc:     "Statement.executeQuery() and Connection.prepareStatement()",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{3},
			ExpectedYields: [3]int{1, 1, 1},
			New:            newJDBC17709,
		},
		{
			System: "Limewire 4.17.9", BugID: "1449",
			Desc:     "HsqlDB TaskQueue cancel and shutdown()",
			Patterns: 2, ReproduciblePatterns: 2, Depth: []int{10, 10},
			ExpectedYields: [3]int{15, 15, 15},
			New:            newLimewire,
		},
		{
			System: "ActiveMQ 3.1", BugID: "336",
			Desc:     "Listener creation and active dispatching of messages to consumer",
			Patterns: 1, ReproduciblePatterns: 1, Depth: []int{2},
			ExpectedYields: [3]int{1, 181079, 221292},
			New:            newActiveMQ336,
		},
		{
			System: "ActiveMQ 4.0", BugID: "575",
			Desc:     "Queue.dropEvent() and PrefetchSubscription.add()",
			Patterns: 3, ReproduciblePatterns: 1, Depth: []int{2, 2, 2},
			ExpectedYields: [3]int{11252, 80387, 113652},
			New:            newActiveMQ575,
		},
	}
}
