// The fleet-immunity scenario (§8): two runtimes share one immunity
// store; the deadlock manifests once in runtime A and runtime B is
// immune on first encounter — for each store backend (file, directory
// journals, HTTP daemon).
package simapp

import (
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"dimmunix/internal/histstore"
)

// fleetBug picks a deterministic two-lock Table 1 exploit for the fleet
// trials (HawkNL: nlShutdown vs nlClose, loop-driven, reliably
// reproduces in one attempt).
func fleetBug(t *testing.T) Bug {
	for _, b := range Bugs() {
		if b.System == "HawkNL 1.6b3" {
			return b
		}
	}
	t.Fatal("HawkNL bug missing from registry")
	return Bug{}
}

const (
	fleetHold = 30 * time.Millisecond
	fleetWait = 5 * time.Second
)

func checkFleet(t *testing.T, res *FleetResult, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
	if !res.ADeadlocked {
		t.Error("A must deadlock once")
	}
	if !res.BConverged {
		t.Error("B must converge through the store")
	}
	if !res.BEpochBumped {
		t.Error("B's danger-index epoch must bump when remote signatures arrive")
	}
	if !res.BClean {
		t.Errorf("B must complete cleanly, errs=%v", res.BErrs)
	}
	if res.BYields == 0 {
		t.Error("B avoided without yielding — the exploit did not exercise avoidance")
	}
}

func TestFleetImmunityFileStore(t *testing.T) {
	path := filepath.Join(t.TempDir(), "fleet.json")
	res, err := RunFleetTrial(
		histstore.NewFileStore(path), histstore.NewFileStore(path),
		fleetBug(t), fleetHold, fleetWait)
	checkFleet(t, res, err)
}

func TestFleetImmunityDirStore(t *testing.T) {
	dir := t.TempDir()
	a, err := histstore.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	b, err := histstore.NewDirStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	res, rerr := RunFleetTrial(a, b, fleetBug(t), fleetHold, fleetWait)
	checkFleet(t, res, rerr)
}

func TestFleetImmunityHTTPStore(t *testing.T) {
	srv, err := histstore.NewServer(nil)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	res, rerr := RunFleetTrial(
		histstore.NewHTTPStore(ts.URL), histstore.NewHTTPStore(ts.URL),
		fleetBug(t), fleetHold, fleetWait)
	checkFleet(t, res, rerr)
}
