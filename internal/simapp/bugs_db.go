package simapp

import (
	"time"

	"dimmunix/internal/core"
)

// --- MySQL 6.0.4 bug #37080: INSERT vs TRUNCATE -------------------------
//
// The server's TRUNCATE path takes LOCK_open and then the table's share
// mutex, while a concurrent INSERT holds the share mutex and needs
// LOCK_open to re-open the table — a two-lock inversion inside one table.

type mysqlServer struct {
	rt       *core.Runtime
	lockOpen *core.Mutex // the global LOCK_open
	tableMu  *core.Mutex // table share mutex
	rows     int
}

func newMySQL(rt *core.Runtime) Instance {
	return &mysqlServer{
		rt:       rt,
		lockOpen: rt.NewMutex(),
		tableMu:  rt.NewMutex(),
	}
}

//go:noinline
func (m *mysqlServer) insert(t *core.Thread, hold time.Duration) error {
	return nest(t, m.tableMu, m.lockOpen, hold, func() { m.rows++ })
}

//go:noinline
func (m *mysqlServer) truncate(t *core.Thread, hold time.Duration) error {
	return nest(t, m.lockOpen, m.tableMu, hold, func() { m.rows = 0 })
}

func (m *mysqlServer) Exploit(hold time.Duration) []error {
	return cross(m.rt,
		func(t *core.Thread) error { return m.insert(t, hold) },
		func(t *core.Thread) error { return m.truncate(t, hold) },
	)
}

// --- SQLite 3.3.0 bug #1672: custom recursive lock ----------------------
//
// SQLite's hand-rolled recursive mutex for pre-recursive-pthreads systems
// serialized entry through a static master mutex; the enter path took
// master -> db while the busy/unwind path held db and took master.

type sqliteDB struct {
	rt     *core.Runtime
	master *core.Mutex // static master mutex of the recursive-lock impl
	db     *core.Mutex // the database handle mutex
	owner  int32
	count  int
}

func newSQLite(rt *core.Runtime) Instance {
	return &sqliteDB{rt: rt, master: rt.NewMutex(), db: rt.NewMutex()}
}

//go:noinline
func (s *sqliteDB) enterRecursive(t *core.Thread, hold time.Duration) error {
	// master -> db (the documented enter path).
	return nest(t, s.master, s.db, hold, func() {
		s.owner = t.ID()
		s.count++
	})
}

//go:noinline
func (s *sqliteDB) busyUnwind(t *core.Thread, hold time.Duration) error {
	// db -> master (the busy handler re-enters the lock machinery).
	return nest(t, s.db, s.master, hold, func() {
		s.count = 0
		s.owner = 0
	})
}

func (s *sqliteDB) Exploit(hold time.Duration) []error {
	return cross(s.rt,
		func(t *core.Thread) error { return s.enterRecursive(t, hold) },
		func(t *core.Thread) error { return s.busyUnwind(t, hold) },
	)
}

// --- MySQL 5.0 JDBC connector bugs ---------------------------------------
//
// All four Table 1 JDBC bugs share one shape: Connection methods
// synchronize on the connection monitor and then touch a statement's
// monitor, while Statement methods synchronize on the statement and then
// call back into the connection. Each bug is a distinct pair of call
// sites, hence a distinct signature.

type jdbcConn struct {
	rt   *core.Runtime
	conn *core.Mutex // connection monitor
	stmt *core.Mutex // statement monitor
	open bool
}

func newJDBC(rt *core.Runtime) *jdbcConn {
	return &jdbcConn{
		rt:   rt,
		conn: rt.NewMutexKind(core.Recursive),
		stmt: rt.NewMutexKind(core.Recursive),
		open: true,
	}
}

// Connection.close(): conn -> stmt (closing registered statements).
//
//go:noinline
func (c *jdbcConn) connClose(t *core.Thread, hold time.Duration) error {
	return nest(t, c.conn, c.stmt, hold, func() { c.open = false })
}

// PreparedStatement.getWarnings(): stmt -> conn (bug 2147).
//
//go:noinline
func (c *jdbcConn) getWarnings(t *core.Thread, hold time.Duration) error {
	return nest(t, c.stmt, c.conn, hold, nil)
}

// Connection.prepareStatement(): conn -> stmt (bugs 14972, 17709).
//
//go:noinline
func (c *jdbcConn) prepareStatement(t *core.Thread, hold time.Duration) error {
	return nest(t, c.conn, c.stmt, hold, nil)
}

// Statement.close(): stmt -> conn (bug 14972).
//
//go:noinline
func (c *jdbcConn) stmtClose(t *core.Thread, hold time.Duration) error {
	return nest(t, c.stmt, c.conn, hold, nil)
}

// PreparedStatement.executeQuery(): stmt -> conn (bugs 31136, 17709).
//
//go:noinline
func (c *jdbcConn) executeQuery(t *core.Thread, hold time.Duration) error {
	return nest(t, c.stmt, c.conn, hold, nil)
}

type jdbcBug struct {
	c    *jdbcConn
	a, b func(*core.Thread, time.Duration) error
}

func (j *jdbcBug) Exploit(hold time.Duration) []error {
	return cross(j.c.rt,
		func(t *core.Thread) error { return j.a(t, hold) },
		func(t *core.Thread) error { return j.b(t, hold) },
	)
}

func newJDBC2147(rt *core.Runtime) Instance {
	c := newJDBC(rt)
	return &jdbcBug{c: c, a: c.getWarnings, b: c.connClose}
}

func newJDBC14972(rt *core.Runtime) Instance {
	c := newJDBC(rt)
	return &jdbcBug{c: c, a: c.prepareStatement, b: c.stmtClose}
}

func newJDBC31136(rt *core.Runtime) Instance {
	c := newJDBC(rt)
	return &jdbcBug{c: c, a: c.executeQuery, b: c.connClose}
}

func newJDBC17709(rt *core.Runtime) Instance {
	c := newJDBC(rt)
	return &jdbcBug{c: c, a: c.executeQuery, b: c.prepareStatement}
}
