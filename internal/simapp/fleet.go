package simapp

import (
	"fmt"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/histstore"
)

// FleetResult reports one fleet-immunity trial (RunFleetTrial).
type FleetResult struct {
	// AErrs/BErrs are the two instances' worker outcomes.
	AErrs, BErrs []error
	// ADeadlocked reports that instance A hit (and recovered from) the
	// deadlock — the one manifestation the fleet pays.
	ADeadlocked bool
	// BConverged reports that B's runtime learned A's signatures through
	// the store before running.
	BConverged bool
	// BEpochBumped reports that B's danger index republished under a new
	// epoch when the remote signatures arrived — the PR 2 fast-path
	// invalidation observable.
	BEpochBumped bool
	// BClean reports that every worker of B completed without
	// deadlocking: immunity on first encounter.
	BClean bool
	// BYields is how many avoidance yields B spent.
	BYields uint64
}

// RunFleetTrial asserts the §8 fleet-immunity property end to end over a
// shared store: runtime A (on storeA) triggers the bug's deadlock once —
// recovered, archived, pushed — and runtime B (on storeB, a distinct
// handle over the same shared state, as a second process would hold)
// converges through its sync loop and then survives the same exploit on
// first encounter. hold is the exploit's timing window; wait bounds B's
// convergence.
func RunFleetTrial(storeA, storeB histstore.Store, bug Bug, hold, wait time.Duration) (*FleetResult, error) {
	mk := func(st histstore.Store) (*core.Runtime, error) {
		return core.New(core.Config{
			HistoryStore:  st,
			SyncInterval:  10 * time.Millisecond,
			Tau:           2 * time.Millisecond,
			MatchDepth:    2,
			MaxYield:      2 * time.Second,
			RecoverAborts: true,
		})
	}
	rtA, err := mk(storeA)
	if err != nil {
		return nil, err
	}
	defer rtA.Stop()
	rtB, err := mk(storeB)
	if err != nil {
		return nil, err
	}
	defer rtB.Stop()

	res := &FleetResult{}
	epoch0 := rtB.History().Danger().Epoch()

	// Phase 1: A pays the one manifestation. The exploits are
	// deterministic for a sufficient hold window, but allow a few
	// attempts for scheduling jitter.
	instA := bug.New(rtA)
	for attempt := 0; attempt < 5 && !res.ADeadlocked; attempt++ {
		res.AErrs = instA.Exploit(hold)
		res.ADeadlocked = Deadlocked(res.AErrs)
	}
	if !res.ADeadlocked {
		return res, fmt.Errorf("fleet: instance A never deadlocked (%v)", res.AErrs)
	}
	want := rtA.History().Len()

	// Phase 2: B converges through its own sync loop (no manual nudging
	// — the acceptance criterion is "within one sync interval" of the
	// push landing).
	deadline := time.Now().Add(wait)
	for rtB.History().Len() < want {
		if time.Now().After(deadline) {
			return res, fmt.Errorf("fleet: B converged to %d/%d signatures within %v",
				rtB.History().Len(), want, wait)
		}
		time.Sleep(time.Millisecond)
	}
	res.BConverged = true
	res.BEpochBumped = rtB.History().Danger().Epoch() > epoch0

	// Phase 3: B runs the same exploit and must not deadlock. Like
	// phase 1, allow a few attempts for scheduling jitter: under heavy
	// load the two workers' timing windows may not overlap, exercising
	// no avoidance at all (clean run, zero yields) — retry until the
	// exploit actually engages the shared signature.
	instB := bug.New(rtB)
	for attempt := 0; attempt < 5; attempt++ {
		res.BErrs = instB.Exploit(hold)
		res.BClean = Clean(res.BErrs)
		res.BYields = rtB.Stats().Yields
		if Deadlocked(res.BErrs) || !res.BClean || res.BYields > 0 {
			break
		}
	}
	if Deadlocked(res.BErrs) {
		return res, fmt.Errorf("fleet: instance B deadlocked despite the shared history")
	}
	if !res.BClean {
		return res, fmt.Errorf("fleet: instance B workers failed: %v", res.BErrs)
	}
	return res, nil
}
