package simapp

import (
	"context"
	"path/filepath"
	"testing"
	"time"

	"dimmunix/internal/core"
	"dimmunix/internal/histstore"
	"dimmunix/internal/lint"
	"dimmunix/internal/signature"
)

// TestStaticInoculation is the compile-time immunity loop in one
// process: the lockorder analyzer reads this package's own source —
// nothing is ever executed, no trace exists — lowers the confirmed
// cycles into static signatures, pushes them through the immunity
// store, and a fresh runtime avoids the real InversionLab interleaving
// on its very first encounter. The guarded control must be suppressed
// statically, so no signature in the store can fire on it.
func TestStaticInoculation(t *testing.T) {
	storePath := filepath.Join(t.TempDir(), "static.json")

	// Phase 1 — static analysis of this very package. The go toolchain
	// is invoked for export data, so this costs a build, not a run.
	prog, err := lint.Load(lint.Options{}, "dimmunix/internal/simapp")
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	res := lint.AnalyzeLockOrder(prog, lint.LockOrderOptions{})
	if len(res.Cycles) == 0 {
		t.Fatalf("no cycles confirmed (candidates=%d guard=%d seq=%d)",
			res.Candidates, res.SuppressedGuard, res.SuppressedSeq)
	}
	if res.SuppressedGuard == 0 {
		t.Fatalf("guarded lab not suppressed statically: %+v", res)
	}

	// Phase 2 — lower and push. Calibration is armed: the frames are
	// pseudo-frames, the ladder reconciles them against real stacks.
	emitted := lint.EmitHistory(res, lint.EmitOptions{Calibrate: true})
	if emitted.Len() == 0 {
		t.Fatalf("nothing emitted from %d cycles", len(res.Cycles))
	}
	fs := histstore.NewFileStore(storePath)
	if _, err := fs.Push(context.Background(), emitted); err != nil {
		t.Fatal(err)
	}
	fs.Close()

	// Phase 3 — a runtime that has never executed the bug loads the
	// store and survives the exploit interleaving by yielding, not by
	// detect-and-recover.
	avoid := core.MustNew(core.Config{
		HistoryPath: storePath,
		MatchDepth:  2,
		Tau:         2 * time.Millisecond,
		MaxYield:    10 * time.Second,
	})
	defer avoid.Stop()
	var loadedStatic int
	for _, s := range avoid.History().Snapshot() {
		if s.Source == signature.SourceStatic {
			loadedStatic++
		}
	}
	if loadedStatic != emitted.Len() {
		t.Fatalf("runtime loaded %d static entries, store holds %d", loadedStatic, emitted.Len())
	}

	if errs := NewInversionLab(avoid).Exploit(50 * time.Millisecond); !Clean(errs) {
		t.Fatalf("inoculated exploit not clean: %v", errs)
	}
	stats := avoid.Stats()
	if stats.DeadlocksDetected != 0 {
		t.Fatalf("inoculated run detected %d deadlocks; static immunity must avoid, not recover", stats.DeadlocksDetected)
	}
	if stats.Yields == 0 {
		t.Fatal("inoculated run recorded no avoidance yields")
	}
	// The yields must be attributed to a statically-derived signature.
	attributed := false
	for id, n := range stats.YieldsBySignature {
		if n == 0 {
			continue
		}
		sig := avoid.History().Get(id)
		if sig == nil {
			t.Fatalf("yield attributed to unknown signature %s", id)
		}
		if sig.Source == signature.SourceStatic {
			attributed = true
		}
	}
	if !attributed {
		t.Fatalf("no yield attributed to a static signature: %v", stats.YieldsBySignature)
	}
}
