package obs

import (
	"math/bits"
	"sync/atomic"
	"time"
)

// histBuckets spans 1ns to ~2^47ns (~39 hours) in power-of-two buckets;
// bucket i counts observations in [2^(i-1), 2^i) nanoseconds, with the
// last bucket absorbing everything larger. 48 buckets keep the whole
// histogram in six cache lines, so recording is one atomic increment
// with no allocation — cheap enough for the guarded lock path and for
// sampled fast-path observations.
const histBuckets = 48

// Histogram is a fixed-bucket log-scale duration histogram safe for
// concurrent use. The zero value is ready; it never allocates.
type Histogram struct {
	counts [histBuckets]atomic.Uint64
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) {
	ns := uint64(d)
	if d < 0 {
		ns = 0
	}
	i := bits.Len64(ns) // 0 for 0ns, else floor(log2)+1
	if i >= histBuckets {
		i = histBuckets - 1
	}
	h.counts[i].Add(1)
}

// HistSnapshot is a point-in-time summary of a Histogram.
type HistSnapshot struct {
	Count uint64 `json:"count"`
	P50   uint64 `json:"p50_ns"`
	P95   uint64 `json:"p95_ns"`
	P99   uint64 `json:"p99_ns"`
}

// Snapshot reads the histogram and derives the standard percentiles.
// Concurrent Record calls may or may not be included; each bucket is
// read once, so the snapshot is internally consistent per bucket.
func (h *Histogram) Snapshot() HistSnapshot {
	var c [histBuckets]uint64
	var total uint64
	for i := range h.counts {
		c[i] = h.counts[i].Load()
		total += c[i]
	}
	if total == 0 {
		return HistSnapshot{}
	}
	return HistSnapshot{
		Count: total,
		P50:   quantile(&c, total, 0.50),
		P95:   quantile(&c, total, 0.95),
		P99:   quantile(&c, total, 0.99),
	}
}

// quantile returns the upper bound of the bucket holding the q-quantile
// observation — a conservative (never under-reporting) estimate with at
// most 2x resolution error, which is what a log-scale histogram buys.
func quantile(c *[histBuckets]uint64, total uint64, q float64) uint64 {
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for i, n := range c {
		seen += n
		if seen > rank {
			if i == 0 {
				return 0
			}
			return uint64(1) << uint(i)
		}
	}
	return uint64(1) << (histBuckets - 1)
}
