package obs

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestInactiveBusPublishIsNoop(t *testing.T) {
	b := New(4, nil)
	if b.Active() {
		t.Fatal("bus with no observers must be inactive")
	}
	b.Publish(AvoidanceYield{SigID: "x"})
	if b.Dropped() != 0 {
		t.Fatal("inactive publish must not count drops")
	}
	var nilBus *Bus
	if nilBus.Active() || nilBus.Dropped() != 0 {
		t.Fatal("nil bus accessors must be safe")
	}
}

func TestObserverReceivesInOrder(t *testing.T) {
	var mu sync.Mutex
	var got []Event
	b := New(16, []func(Event){func(e Event) {
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}})
	defer b.Stop()
	for i := 0; i < 5; i++ {
		b.Publish(AvoidanceYield{TID: int32(i)})
	}
	waitFor(t, "delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		return len(got) == 5
	})
	mu.Lock()
	defer mu.Unlock()
	for i, e := range got {
		if e.(AvoidanceYield).TID != int32(i) {
			t.Fatalf("event %d out of order: %+v", i, e)
		}
	}
}

func TestRingDropsOldest(t *testing.T) {
	release := make(chan struct{})
	var got []Event
	var mu sync.Mutex
	b := New(2, []func(Event){func(e Event) {
		<-release
		mu.Lock()
		got = append(got, e)
		mu.Unlock()
	}})
	defer b.Stop()

	// The observer is stalled; flood past the ring bound. The first
	// event may already be in the observer's hands, the rest overwrite
	// each other pairwise.
	for i := 0; i < 10; i++ {
		b.Publish(AvoidanceYield{TID: int32(i)})
	}
	waitFor(t, "drops", func() bool { return b.Dropped() > 0 })
	close(release)
	waitFor(t, "tail delivery", func() bool {
		mu.Lock()
		defer mu.Unlock()
		if len(got) == 0 {
			return false
		}
		return got[len(got)-1].(AvoidanceYield).TID == 9
	})
	// Drop-oldest: the newest event always survives.
}

func TestStalledObserverNeverBlocksPublish(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	b := New(4, []func(Event){func(Event) { <-block }})
	defer b.Stop()
	done := make(chan struct{})
	go func() {
		for i := 0; i < 1000; i++ {
			b.Publish(HistoryChanged{Epoch: uint64(i)})
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Publish blocked behind a stalled observer")
	}
	if b.Dropped() == 0 {
		t.Fatal("flooding a stalled observer must drop")
	}
}

func TestSubscribeReceivesAndCtxCancelCloses(t *testing.T) {
	b := New(8, nil)
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	ch := b.Subscribe(ctx)
	if !b.Active() {
		t.Fatal("subscriber must activate the bus")
	}
	b.Publish(SignatureArchived{SigID: "s1"})
	select {
	case e := <-ch:
		if e.(SignatureArchived).SigID != "s1" {
			t.Fatalf("got %+v", e)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("subscriber never received")
	}
	cancel()
	waitFor(t, "channel close", func() bool {
		select {
		case _, ok := <-ch:
			return !ok
		default:
			return false
		}
	})
	waitFor(t, "deactivation", func() bool { return !b.Active() })
}

func TestStopClosesSubscribers(t *testing.T) {
	b := New(8, nil)
	ch := b.Subscribe(context.Background())
	b.Publish(SyncRoundDone{Pushed: true})
	b.Stop()
	b.Stop() // idempotent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if b.Active() {
					t.Fatal("stopped bus still active")
				}
				b.Publish(SyncRoundDone{}) // must not panic
				if ch2 := b.Subscribe(context.Background()); ch2 != nil {
					if _, ok := <-ch2; ok {
						t.Fatal("subscribe after stop must return a closed channel")
					}
				}
				return
			}
		case <-deadline:
			t.Fatal("channel never closed after Stop")
		}
	}
}

func TestSlowSubscriberDropsWithoutBlocking(t *testing.T) {
	b := New(2, nil)
	defer b.Stop()
	_ = b.Subscribe(context.Background()) // never read
	var published atomic.Int64
	done := make(chan struct{})
	go func() {
		for i := 0; i < 500; i++ {
			b.Publish(AvoidanceYield{TID: int32(i)})
			published.Add(1)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("publisher blocked after %d publishes behind a slow subscriber", published.Load())
	}
	waitFor(t, "drops", func() bool { return b.Dropped() > 0 })
}

// TestSubscribeCancelChurnNoPanic hammers subscribe/cancel concurrently
// with publishes: closes are serialized with the dispatcher's sends, so
// no send-on-closed-channel panic can escape (run with -race).
func TestSubscribeCancelChurnNoPanic(t *testing.T) {
	b := New(4, nil)
	defer b.Stop()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			b.Publish(AvoidanceYield{TID: int32(i)})
		}
	}()
	for i := 0; i < 200; i++ {
		ctx, cancel := context.WithCancel(context.Background())
		ch := b.Subscribe(ctx)
		// Consume a little, then cancel while events are in flight.
		select {
		case <-ch:
		case <-time.After(time.Millisecond):
		}
		cancel()
	}
	close(stop)
	wg.Wait()
}

// TestDroppedBySubscriberAttribution names the consumer that cannot keep
// up: a stalled named subscriber accumulates drops under its name, an
// attentive one stays clean, and a departed subscriber's count is
// retained after unsubscribe.
func TestDroppedBySubscriberAttribution(t *testing.T) {
	b := New(2, nil)
	defer b.Stop()
	ctx, cancel := context.WithCancel(context.Background())
	_ = b.SubscribeNamed(ctx, "stalled") // never read
	fast := b.SubscribeNamed(context.Background(), "fast")
	done := make(chan struct{})
	go func() {
		defer close(done)
		for range fast {
		}
	}()
	// Publish with pauses so the dispatcher drains the ring into the
	// stalled subscriber's (bounded) channel: once that fills, further
	// deliveries drop and are attributed. A tight burst would be
	// absorbed by ring overwrites instead, which are unattributable.
	publishUntil(t, b, "attributed drops", func() bool {
		return b.DroppedBySubscriber()["stalled"] > 0
	})
	byName := b.DroppedBySubscriber()
	if byName["fast"] != 0 {
		t.Fatalf("attentive subscriber blamed for %d drops", byName["fast"])
	}
	if total := b.Dropped(); total < byName["stalled"] {
		t.Fatalf("total %d < attributed %d", total, byName["stalled"])
	}

	// Departed subscribers keep their counts (deadDrops retention).
	before := byName["stalled"]
	cancel()
	waitFor(t, "unsubscribe retention", func() bool {
		return b.DroppedBySubscriber()["stalled"] >= before
	})
	b.Stop()
	<-done
	if got := b.DroppedBySubscriber()["stalled"]; got < before {
		t.Fatalf("retained count %d < %d after stop", got, before)
	}
}

// TestAnonymousSubscriberName checks the generated sub-<id> naming.
func TestAnonymousSubscriberName(t *testing.T) {
	b := New(1, nil)
	defer b.Stop()
	_ = b.Subscribe(context.Background()) // never read
	publishUntil(t, b, "anonymous drops", func() bool {
		return b.DroppedBySubscriber()["sub-1"] > 0
	})
}

// publishUntil publishes paced events until cond holds.
func publishUntil(t *testing.T, b *Bus, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; time.Now().Before(deadline); i++ {
		if cond() {
			return
		}
		b.Publish(AvoidanceYield{TID: int32(i)})
		time.Sleep(100 * time.Microsecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
