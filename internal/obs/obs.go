// Package obs is Dimmunix's observability bus: the typed event stream
// the runtime publishes for operators (deadlocks detected, signatures
// archived/disabled, avoidance yields, sync rounds, history changes).
//
// The bus is built so observers can never stall the protected
// application: publishers enqueue into a fixed-size ring under a
// micro-critical-section and return immediately; when the ring is full
// the oldest event is dropped (and counted) rather than blocking the
// publisher. A single dispatcher goroutine drains the ring and delivers
// to registered observer functions and subscriber channels — a stalled
// observer stalls only the dispatcher, never the §5.4 avoidance guard,
// the lock-free fast path, or the monitor pass. With no observer and no
// subscriber registered, Publish is a single atomic load and publish
// sites skip event construction entirely (Active gates them), so the
// zero-observer configuration has no measurable overhead.
package obs

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Event is one observability event. The concrete payload types below are
// the only implementations; switch on them to consume the stream. The
// public dimmunix package re-exports all of them.
type Event interface{ isEvent() }

// DeadlockDetected reports a deadlock cycle found by the monitor (§3).
// Recovery (if configured) has already been initiated when the event is
// published.
type DeadlockDetected struct {
	// SigID identifies the archived signature of the cycle.
	SigID string
	// New is true when this pattern was first seen now (and therefore
	// also produced a SignatureArchived event).
	New bool
	// ThreadIDs and LockIDs are the cycle's participants.
	ThreadIDs []int32
	LockIDs   []uint64
}

// SignatureArchived reports a new signature saved to the history (§5.4).
type SignatureArchived struct {
	SigID string
	// Kind is "deadlock" or "starvation".
	Kind string
	// Depth is the matching depth recorded in the signature.
	Depth int
	// Stacks is the number of call stacks (cycle width).
	Stacks int
}

// SignatureDisabled reports a signature's disabled flag flipping — the
// §5.7 pop-up-blocker flow (DisableLastAvoided, auto-disable after
// repeated max-yield aborts, the history tooling, or a flip adopted from
// a sync merge).
type SignatureDisabled struct {
	SigID string
	// Disabled is the new state (false = re-enabled).
	Disabled bool
}

// AvoidanceYield reports one YIELD decision: a thread was steered away
// from completing a known signature (§5.4).
type AvoidanceYield struct {
	SigID string
	// TID is the yielding thread, LID the lock it requested.
	TID int32
	LID uint64
	// Depth is the matching depth in force when the instance was found.
	Depth int
}

// RecoveryAborted reports that the built-in abort recovery unwound the
// lock waits of a deadlock's victims (WithAbortRecovery; the in-process
// analog of the paper's restart, §3).
type RecoveryAborted struct {
	SigID     string
	ThreadIDs []int32
}

// StarvationAverted reports a yield cycle handled by the monitor: under
// weak immunity the victim's yield was broken, under strong immunity the
// restart hook was invoked instead (§5.4).
type StarvationAverted struct {
	SigID string
	New   bool
	// ThreadIDs are the cycle's threads; VictimTID the thread whose
	// yield was broken (0 under strong immunity).
	ThreadIDs []int32
	VictimTID int32
}

// SyncRoundDone reports one completed history-store sync round
// (pull→merge→push, §8 distribution), whether it was driven by the sync
// loop, an archive-time kick, or an explicit SyncNow.
type SyncRoundDone struct {
	// Pulled is the number of local entries changed by the merged-in
	// remote snapshot (0 when the probe showed no change).
	Pulled int
	// Pushed is true when local changes were published to the store.
	Pushed bool
	// Err is the round's first error ("" on success).
	Err string
	// Duration is the round's wall-clock time.
	Duration time.Duration
	// ConsecFails is the sync loop's consecutive-failure streak at
	// publish time (reset to 0 by any successful round). A failed loop
	// round is scored just after its event publishes, so the stretched
	// streak shows from the next event on; the loop's backoff schedule
	// derives from it (see Counters.SyncBackoffs for the delays).
	ConsecFails int
}

// HistoryChanged reports any mutation of the live signature history —
// archives, disables, removals, sync merges, reloads. Epoch is the new
// danger-index epoch; a changed epoch is what re-validates the fast
// path's cached safe-stack markers.
type HistoryChanged struct {
	// Op names the mutation: "add", "disable", "enable", "remove",
	// "merge", "replace" or "load".
	Op string
	// SigID is the affected signature for single-entry ops ("" for bulk
	// ops like merge/replace).
	SigID string
	// Epoch is the history version/danger epoch after the mutation.
	Epoch uint64
	// Signatures is the live signature count after the mutation.
	Signatures int
}

func (DeadlockDetected) isEvent()  {}
func (SignatureArchived) isEvent() {}
func (SignatureDisabled) isEvent() {}
func (AvoidanceYield) isEvent()    {}
func (RecoveryAborted) isEvent()   {}
func (StarvationAverted) isEvent() {}
func (SyncRoundDone) isEvent()     {}
func (HistoryChanged) isEvent()    {}

// DefaultBufferSize is the ring (and per-subscriber channel) capacity
// when the runtime's EventBuffer is left zero.
const DefaultBufferSize = 256

// Bus is the bounded non-blocking dispatcher. Create with New; it is
// inert (no goroutine) until an observer exists or Subscribe is called.
type Bus struct {
	size int

	// active is the publishers' gate: true iff at least one observer
	// function or subscriber channel is registered. Publish sites check
	// Active before even constructing an event.
	active  atomic.Bool
	dropped atomic.Uint64

	mu        sync.Mutex
	ring      []Event
	head, n   int
	observers []func(Event)
	subs      map[uint64]*subscriber
	nextSub   uint64
	// deadDrops retains the drop counts of departed subscribers (folded
	// in on unsubscribe/Stop), so attribution survives churn.
	deadDrops map[string]uint64
	started   bool
	stopped   bool

	wake   chan struct{}
	stopCh chan struct{}
	doneCh chan struct{}
}

// New builds a bus with the given ring size (<= 0 selects
// DefaultBufferSize) and statically registered observer functions.
func New(size int, observers []func(Event)) *Bus {
	if size <= 0 {
		size = DefaultBufferSize
	}
	b := &Bus{
		size:      size,
		observers: observers,
		subs:      make(map[uint64]*subscriber),
		wake:      make(chan struct{}, 1),
		stopCh:    make(chan struct{}),
		doneCh:    make(chan struct{}),
	}
	if len(observers) > 0 {
		b.active.Store(true)
		b.mu.Lock()
		b.ensureStartedLocked()
		b.mu.Unlock()
	}
	return b
}

// Active reports whether anything listens. Safe on a nil bus. Publish
// sites use it to skip event construction entirely when no one does —
// the zero-observer overhead guarantee.
func (b *Bus) Active() bool { return b != nil && b.active.Load() }

// Dropped returns how many events were discarded: overwritten in the
// ring while the dispatcher was behind, or skipped for a subscriber
// whose channel was full.
func (b *Bus) Dropped() uint64 {
	if b == nil {
		return 0
	}
	return b.dropped.Load()
}

// subscriber is one channel consumer: its delivery channel, the name
// drop attribution reports it under, and its own drop count.
type subscriber struct {
	ch      chan Event
	name    string
	dropped atomic.Uint64
}

// DroppedBySubscriber attributes subscriber-channel drops to the
// subscriber that could not keep up, keyed by subscription name
// (SubscribeNamed; anonymous Subscribe calls appear as "sub-<id>").
// Departed subscribers' counts are retained, so totals are monotonic.
// Returns nil when no subscriber ever dropped. Ring overwrites — the
// dispatcher itself falling behind — are in Dropped() only: they cannot
// be blamed on any one consumer.
func (b *Bus) DroppedBySubscriber() map[string]uint64 {
	if b == nil {
		return nil
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var out map[string]uint64
	add := func(name string, n uint64) {
		if n == 0 {
			return
		}
		if out == nil {
			out = make(map[string]uint64)
		}
		out[name] += n
	}
	for name, n := range b.deadDrops {
		add(name, n)
	}
	for _, s := range b.subs {
		add(s.name, s.dropped.Load())
	}
	return out
}

// retireLocked folds a departing subscriber's drop count into deadDrops;
// b.mu held.
func (b *Bus) retireLocked(s *subscriber) {
	n := s.dropped.Load()
	if n == 0 {
		return
	}
	if b.deadDrops == nil {
		b.deadDrops = make(map[string]uint64)
	}
	b.deadDrops[s.name] += n
}

// Publish enqueues e for asynchronous delivery. It never blocks: when
// the ring is full the oldest undelivered event is dropped and counted.
// No-op when nothing listens or the bus is stopped.
func (b *Bus) Publish(e Event) {
	if !b.Active() {
		return
	}
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	if b.ring == nil {
		b.ring = make([]Event, b.size)
	}
	if b.n == b.size {
		// Drop-oldest: overwrite the head slot.
		b.ring[b.head] = nil
		b.head = (b.head + 1) % b.size
		b.n--
		b.dropped.Add(1)
	}
	b.ring[(b.head+b.n)%b.size] = e
	b.n++
	b.mu.Unlock()
	select {
	case b.wake <- struct{}{}:
	default:
	}
}

// Subscribe returns a channel of events published after this call. The
// channel is buffered with the ring size; events arriving while it is
// full are dropped for this subscriber (and counted in Dropped), so a
// slow consumer can never apply backpressure to the runtime. The
// subscription ends — and the channel is closed — when ctx is done or
// the bus stops. A nil ctx subscribes for the life of the bus.
func (b *Bus) Subscribe(ctx context.Context) <-chan Event {
	return b.SubscribeNamed(ctx, "")
}

// SubscribeNamed is Subscribe with a name for drop attribution
// (DroppedBySubscriber). An empty name gets the generated "sub-<id>".
func (b *Bus) SubscribeNamed(ctx context.Context, name string) <-chan Event {
	ch := make(chan Event, b.size)
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		close(ch)
		return ch
	}
	b.nextSub++
	id := b.nextSub
	if name == "" {
		name = fmt.Sprintf("sub-%d", id)
	}
	b.subs[id] = &subscriber{ch: ch, name: name}
	b.active.Store(true)
	b.ensureStartedLocked()
	b.mu.Unlock()

	if ctx != nil {
		go func() {
			select {
			case <-ctx.Done():
				b.unsubscribe(id)
			case <-b.doneCh:
				// Stop closes every subscriber channel itself.
			}
		}()
	}
	return ch
}

func (b *Bus) unsubscribe(id uint64) {
	b.mu.Lock()
	s, ok := b.subs[id]
	if ok {
		delete(b.subs, id)
		b.retireLocked(s)
		// Close under b.mu: the dispatcher's channel sends also run
		// under b.mu, so a send can never race this close (a
		// send-on-closed panic on the dispatcher would take the host
		// process down).
		close(s.ch)
	}
	if len(b.subs) == 0 && len(b.observers) == 0 {
		b.active.Store(false)
	}
	b.mu.Unlock()
}

// ensureStartedLocked launches the dispatcher once; b.mu held.
func (b *Bus) ensureStartedLocked() {
	if b.started || b.stopped {
		return
	}
	b.started = true
	go b.dispatch()
}

// Stop terminates the bus: publishes are no-ops from here on, and the
// dispatcher — after a final best-effort drain — closes every subscriber
// channel. Stop never waits on observer code (a stalled observer must
// not be able to stall Runtime.Stop): it signals and returns; the
// dispatcher finishes cleanup whenever the observer in flight returns.
func (b *Bus) Stop() {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		return
	}
	b.stopped = true
	b.active.Store(false)
	started := b.started
	b.mu.Unlock()
	if started {
		close(b.stopCh)
	} else {
		b.finish()
	}
}

// finish closes the subscriber channels and marks the bus done; called
// by the dispatcher on exit (or by Stop when no dispatcher ever ran).
// Channels close under b.mu for the same send-vs-close reason as
// unsubscribe.
func (b *Bus) finish() {
	b.mu.Lock()
	for id, s := range b.subs {
		delete(b.subs, id)
		b.retireLocked(s)
		close(s.ch)
	}
	b.mu.Unlock()
	close(b.doneCh)
}

func (b *Bus) dispatch() {
	var batch []Event
	for {
		select {
		case <-b.stopCh:
			// Final best-effort drain so Stop-time events (a last sync
			// round, a shutdown-path archive) still reach observers.
			b.deliver(b.drain(batch[:0]))
			b.finish()
			return
		case <-b.wake:
			batch = b.deliver(b.drain(batch[:0]))
		}
	}
}

// drain moves the ring's contents into batch (reused between rounds).
func (b *Bus) drain(batch []Event) []Event {
	b.mu.Lock()
	for b.n > 0 {
		batch = append(batch, b.ring[b.head])
		b.ring[b.head] = nil
		b.head = (b.head + 1) % b.size
		b.n--
	}
	b.mu.Unlock()
	return batch
}

// deliver fans a batch out to observers (synchronously, on the
// dispatcher goroutine, outside b.mu — a stalled observer only stalls
// the dispatcher) and then to subscriber channels. The channel sends
// run under b.mu in one critical section per batch: every send is
// non-blocking (full channels drop), so the section is bounded, and
// serializing sends with unsubscribe/finish closes makes
// send-on-closed-channel impossible.
func (b *Bus) deliver(batch []Event) []Event {
	for _, e := range batch {
		for _, fn := range b.observers {
			fn(e)
		}
	}
	b.mu.Lock()
	for _, e := range batch {
		for _, s := range b.subs {
			select {
			case s.ch <- e:
			default:
				b.dropped.Add(1)
				s.dropped.Add(1)
			}
		}
	}
	b.mu.Unlock()
	return batch
}
