package sigport

import (
	"strings"
	"testing"

	"dimmunix/internal/calib"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

func mkHist(t *testing.T) *signature.History {
	t.Helper()
	h := signature.NewHistory()
	s1 := stack.Stack{
		{Func: "app.lock", File: "app.go", Line: 10},
		{Func: "app.update", File: "app.go", Line: 20},
	}
	s2 := stack.Stack{
		{Func: "app.lock", File: "app.go", Line: 10},
		{Func: "app.refresh", File: "app.go", Line: 40},
	}
	sig := signature.New(signature.Deadlock, []stack.Stack{s1, s2}, 4)
	sig.AvoidCount = 7
	h.Add(sig)
	return h
}

func TestParseRules(t *testing.T) {
	in := `
# comment
rename app.update app.updateV2
shift  app.lock 5
file   app.refresh core.go
drop   app.gone
`
	rules, err := ParseRules(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 4 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].Kind != "rename" || rules[0].To != "app.updateV2" {
		t.Errorf("rule 0 = %+v", rules[0])
	}
	if rules[1].N != 5 {
		t.Errorf("shift delta = %d", rules[1].N)
	}
}

func TestParseRulesErrors(t *testing.T) {
	bad := []string{
		"rename onlyone",
		"shift app.f xx",
		"shift app.f",
		"drop",
		"explode everything",
	}
	for _, b := range bad {
		if _, err := ParseRules(strings.NewReader(b)); err == nil {
			t.Errorf("ParseRules(%q): expected error", b)
		}
	}
}

func TestPortRename(t *testing.T) {
	h := mkHist(t)
	rules := []Rule{{Kind: "rename", Func: "app.update", To: "app.updateV2"}}
	out, st := Port(h, rules)
	if st.Ported != 1 || st.Dropped != 0 || st.Frames != 1 {
		t.Fatalf("stats = %+v", st)
	}
	sig := out.Snapshot()[0]
	found := false
	for _, s := range sig.Stacks {
		for _, f := range s {
			if f.Func == "app.updateV2" {
				found = true
			}
			if f.Func == "app.update" {
				t.Error("old name survived")
			}
		}
	}
	if !found {
		t.Error("renamed frame missing")
	}
	if sig.AvoidCount != 7 {
		t.Error("statistics must be preserved")
	}
}

func TestPortShiftChangesID(t *testing.T) {
	h := mkHist(t)
	oldID := h.Snapshot()[0].ID
	out, st := Port(h, []Rule{{Kind: "shift", Func: "app.lock", N: 3}})
	if st.Frames != 2 {
		t.Fatalf("frames = %d, want 2 (app.lock appears in both stacks)", st.Frames)
	}
	newSig := out.Snapshot()[0]
	if newSig.ID == oldID {
		t.Error("port must produce the new revision's ID")
	}
	for _, s := range newSig.Stacks {
		if s[0].Line != 13 {
			t.Errorf("line = %d, want 13", s[0].Line)
		}
	}
}

func TestPortFileMove(t *testing.T) {
	h := mkHist(t)
	out, _ := Port(h, []Rule{{Kind: "file", Func: "app.refresh", To: "core.go"}})
	found := false
	for _, s := range out.Snapshot()[0].Stacks {
		for _, f := range s {
			if f.Func == "app.refresh" && f.File == "core.go" {
				found = true
			}
		}
	}
	if !found {
		t.Error("file move not applied")
	}
}

func TestPortDropRemovesSignature(t *testing.T) {
	h := mkHist(t)
	out, st := Port(h, []Rule{{Kind: "drop", Func: "app.refresh"}})
	if st.Dropped != 1 || out.Len() != 0 {
		t.Fatalf("stats = %+v, len = %d", st, out.Len())
	}
}

func TestPortRearmsCalibration(t *testing.T) {
	h := mkHist(t)
	sig := h.Snapshot()[0]
	sig.Calib = calib.NewState(10, 20, 1000)
	sig.Calib.RecordAvoidance()
	out, _ := Port(h, []Rule{{Kind: "shift", Func: "app.lock", N: 1}})
	got := out.Snapshot()[0]
	if !got.Calib.Active() || got.Calib.Avoids[0] != 0 {
		t.Errorf("calibration must be re-armed after an upgrade (§8): %+v", got.Calib)
	}
}

func TestPortRulesApplyInOrder(t *testing.T) {
	h := mkHist(t)
	rules := []Rule{
		{Kind: "rename", Func: "app.lock", To: "app.lockV2"},
		{Kind: "shift", Func: "app.lockV2", N: 100}, // matches the NEW name
	}
	out, _ := Port(h, rules)
	for _, s := range out.Snapshot()[0].Stacks {
		if s[0].Func != "app.lockV2" || s[0].Line != 110 {
			t.Errorf("ordered application failed: %+v", s[0])
		}
	}
}

func TestPortNoRulesIsIdentity(t *testing.T) {
	h := mkHist(t)
	out, st := Port(h, nil)
	if st.Ported != 1 || st.Frames != 0 {
		t.Fatalf("stats = %+v", st)
	}
	if out.Snapshot()[0].ID != h.Snapshot()[0].ID {
		t.Error("identity port must preserve IDs")
	}
}
