// Package sigport ports signature histories across code revisions (§8):
// "code locations captured in the signatures' call stacks may have shifted
// or disappeared; static analysis can be used to map from old to new code
// and port signatures from one revision to the next".
//
// The mapping is expressed as simple rules (the output such a static
// analysis would produce):
//
//	rename old.Func new.Func     # a function was renamed/moved
//	shift  some.Func 12          # lines inside a function shifted by +12
//	file   some.Func newfile.go  # the function moved to another file
//	drop   some.Func             # the function no longer exists
//
// Signatures touching a dropped function are obsolete and removed; all
// others are rewritten frame by frame. After porting, §8 prescribes
// re-arming calibration for all signatures, which Port does when the
// history had calibration enabled.
package sigport

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// Rule is one porting directive.
type Rule struct {
	Kind string // "rename", "shift", "file", "drop"
	Func string
	To   string // rename: new func; file: new file
	N    int    // shift: line delta
}

// ParseRules reads the rule format described in the package comment.
// Blank lines and #-comments are ignored.
func ParseRules(r io.Reader) ([]Rule, error) {
	var rules []Rule
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "rename", "file":
			if len(fields) != 3 {
				return nil, fmt.Errorf("sigport: line %d: %s needs 2 arguments", lineNo, fields[0])
			}
			rules = append(rules, Rule{Kind: fields[0], Func: fields[1], To: fields[2]})
		case "shift":
			if len(fields) != 3 {
				return nil, fmt.Errorf("sigport: line %d: shift needs func and delta", lineNo)
			}
			n, err := strconv.Atoi(fields[2])
			if err != nil {
				return nil, fmt.Errorf("sigport: line %d: bad delta %q", lineNo, fields[2])
			}
			rules = append(rules, Rule{Kind: "shift", Func: fields[1], N: n})
		case "drop":
			if len(fields) != 2 {
				return nil, fmt.Errorf("sigport: line %d: drop needs func", lineNo)
			}
			rules = append(rules, Rule{Kind: "drop", Func: fields[1]})
		default:
			return nil, fmt.Errorf("sigport: line %d: unknown rule %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rules, nil
}

// Stats summarizes a port.
type Stats struct {
	Ported  int // signatures rewritten (or kept as-is)
	Dropped int // signatures removed as obsolete
	Frames  int // frames rewritten
}

// Port returns a new history with every signature rewritten under the
// rules. Dropped-function signatures are omitted. Avoidance statistics are
// preserved; calibration state is re-armed (§8: recalibration after every
// upgrade).
func Port(h *signature.History, rules []Rule) (*signature.History, Stats) {
	var st Stats
	out := signature.NewHistory()
	for _, sig := range h.Snapshot() {
		newStacks := make([]stack.Stack, 0, len(sig.Stacks))
		obsolete := false
		for _, s := range sig.Stacks {
			ns := make(stack.Stack, len(s))
			copy(ns, s)
			for i := range ns {
				f, dropped, changed := applyRules(ns[i], rules)
				if dropped {
					obsolete = true
					break
				}
				if changed {
					st.Frames++
				}
				ns[i] = f
			}
			if obsolete {
				break
			}
			newStacks = append(newStacks, ns)
		}
		if obsolete {
			st.Dropped++
			continue
		}
		ported := signature.New(sig.Kind, newStacks, sig.Depth)
		ported.Disabled = sig.Disabled
		ported.Rev = sig.Rev
		ported.AvoidCount = sig.AvoidCount
		ported.AbortCount = sig.AbortCount
		ported.CreatedUnix = sig.CreatedUnix
		if sig.Calib.On {
			ported.Calib = sig.Calib
			ported.Calib.Rearm()
		}
		if out.Add(ported) {
			st.Ported++
		}
	}
	// Tombstones carry over verbatim: their IDs name old-revision entries,
	// so they keep suppressing the same entries in other un-ported
	// snapshots they may later be merged with (porting a removal's stacks
	// is impossible — the content is gone).
	for _, t := range h.Tombstones() {
		out.RestoreTombstone(t)
	}
	out.SetFingerprint(h.Fingerprint())
	return out, st
}

func applyRules(f stack.Frame, rules []Rule) (stack.Frame, bool, bool) {
	changed := false
	for _, r := range rules {
		if r.Func != f.Func {
			continue
		}
		switch r.Kind {
		case "drop":
			return f, true, false
		case "rename":
			f.Func = r.To
			changed = true
		case "shift":
			f.Line += r.N
			changed = true
		case "file":
			f.File = r.To
			changed = true
		}
	}
	return f, false, changed
}
