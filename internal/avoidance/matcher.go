package avoidance

import (
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// sigMatcher is the per-signature match index: for each signature stack,
// the set of interned stacks that match it at the signature's effective
// depth. Maintaining it at intern time keeps the request hot path at
// O(signatures that can possibly match) instead of O(H · stacks).
type sigMatcher struct {
	sig   *signature.Signature
	depth int
	// matchIDs[j] lists interned stack IDs matching sig.Stacks[j].
	matchIDs [][]uint32
	// linkedUpTo: interned IDs below this are already linked.
	linkedUpTo int
}

// matchRef is one entry of the cache-global reverse index: interned stack
// -> (signature, stack position).
type matchRef struct {
	m   *sigMatcher
	idx int
}

func newSigMatcher(sig *signature.Signature) *sigMatcher {
	return &sigMatcher{
		sig:      sig,
		depth:    sig.EffectiveDepth(),
		matchIDs: make([][]uint32, len(sig.Stacks)),
	}
}

// reset rebuilds the matcher for a changed depth. The caller must mark the
// global reverse index dirty.
func (m *sigMatcher) reset() {
	m.depth = m.sig.EffectiveDepth()
	m.matchIDs = make([][]uint32, len(m.sig.Stacks))
	m.linkedUpTo = 0
}

// link indexes interned stacks [m.linkedUpTo, n) against the signature,
// appending new matches to the cache's reverse index.
func (m *sigMatcher) link(c *Cache, n int) {
	for id := m.linkedUpTo; id < n; id++ {
		in := c.interner.ByID(uint32(id))
		if in == nil {
			continue
		}
		for j, ss := range m.sig.Stacks {
			if in.S.MatchesAtDepth(ss, m.depth) {
				m.matchIDs[j] = append(m.matchIDs[j], in.ID)
				c.byStack[in.ID] = append(c.byStack[in.ID], matchRef{m: m, idx: j})
			}
		}
	}
	m.linkedUpTo = n
}

// refreshIndex brings the match index up to date with the history version,
// per-signature effective depths, and newly interned stacks. The common
// case (nothing changed, no calibration running) is three comparisons.
// Guard held.
func (c *Cache) refreshIndex() {
	v := c.hist.Version()
	n := c.interner.Len()
	if v == c.histVersion && n == c.linkedUpTo && !c.calibrating && !c.indexDirty {
		return
	}

	if v != c.histVersion {
		c.histVersion = v
		sigs := c.hist.Snapshot()
		old := make(map[string]*sigMatcher, len(c.matchers))
		for _, m := range c.matchers {
			old[m.sig.ID] = m
		}
		c.matchers = c.matchers[:0]
		c.calibrating = false
		for _, s := range sigs {
			m, ok := old[s.ID]
			if !ok || m.sig != s {
				m = newSigMatcher(s)
			}
			c.matchers = append(c.matchers, m)
			if s.Calib.On {
				c.calibrating = true
			}
		}
		c.indexDirty = true
	}

	if c.calibrating || c.indexDirty {
		// Depth ladders may have moved; reset any matcher whose depth
		// is stale.
		for _, m := range c.matchers {
			if m.depth != m.sig.EffectiveDepth() {
				m.reset()
				c.indexDirty = true
			}
		}
	}

	if c.indexDirty {
		// Rebuild the reverse index from scratch: matchers re-link from
		// zero.
		c.byStack = make(map[uint32][]matchRef)
		for _, m := range c.matchers {
			m.linkedUpTo = 0
			m.matchIDs = make([][]uint32, len(m.sig.Stacks))
		}
		c.indexDirty = false
	}

	if n > c.linkedUpTo || anyUnlinked(c.matchers, n) {
		for _, m := range c.matchers {
			if m.linkedUpTo < n {
				m.link(c, n)
			}
		}
		c.linkedUpTo = n
	}
}

func anyUnlinked(ms []*sigMatcher, n int) bool {
	for _, m := range ms {
		if m.linkedUpTo < n {
			return true
		}
	}
	return false
}

// invalidateMatcher marks the index stale after a signature's effective
// depth changed (calibration rung advance or ladder completion). Guard
// held.
func (c *Cache) invalidateMatcher(sigID string) {
	for _, m := range c.matchers {
		if m.sig.ID == sigID && m.depth != m.sig.EffectiveDepth() {
			c.indexDirty = true
			return
		}
	}
}

// findInstance searches the history for a signature instantiated by the
// tentative binding (t, l, in) together with the current allow/hold
// entries (§5.4). Guard held.
func (c *Cache) findInstance(t *ThreadState, l *LockState, in *stack.Interned) Decision {
	refs := c.byStack[in.ID]
	if len(refs) == 0 {
		return Decision{}
	}
	for _, ref := range refs {
		if ref.m.sig.Disabled {
			continue
		}
		if bindings, ok := c.cover(ref.m, ref.idx, t, l); ok {
			return Decision{
				Sig:        ref.m.sig,
				Depth:      ref.m.depth,
				Causes:     bindings,
				YielderIdx: ref.idx,
			}
		}
	}
	return Decision{}
}

// cover attempts an exact cover of the signature stacks: the requesting
// thread covers position yIdx; every other position needs a distinct
// (thread, lock) pair from the Allowed sets.
func (c *Cache) cover(m *sigMatcher, yIdx int, t *ThreadState, l *LockState) ([]Binding, bool) {
	n := len(m.sig.Stacks)
	// Recursion scratch is per-cache: cover only runs under the full
	// decision scope, so reuse beats reallocating two maps per probe. The
	// bindings slice is still allocated fresh — on success it escapes into
	// the Decision.
	usedT, usedL := c.coverUsedT, c.coverUsedL
	clear(usedT)
	clear(usedL)
	usedT[t] = true
	usedL[l] = true
	bindings := make([]Binding, 0, n-1)

	var rec func(j int) bool
	rec = func(j int) bool {
		if j == n {
			return true
		}
		if j == yIdx {
			return rec(j + 1)
		}
		for _, sid := range m.matchIDs[j] {
			ss := c.stackStateByID(sid)
			if ss == nil {
				continue
			}
			for _, part := range ss.entries {
				for _, e := range part {
					if usedT[e.t] || usedL[e.l] {
						continue
					}
					usedT[e.t] = true
					usedL[e.l] = true
					bindings = append(bindings, Binding{T: e.t, L: e.l, St: e.st, SigIdx: j})
					if rec(j + 1) {
						return true
					}
					bindings = bindings[:len(bindings)-1]
					delete(usedT, e.t)
					delete(usedL, e.l)
				}
			}
		}
		return false
	}
	if !rec(0) {
		return nil, false
	}
	return bindings, true
}

// matchesAtDepth re-validates a found instance at a deeper matching depth
// (the §7.3 probe that classifies an avoidance as a would-be false
// positive). Guard held.
func (c *Cache) matchesAtDepth(dec Decision, t *ThreadState, l *LockState, in *stack.Interned, depth int) bool {
	sig := dec.Sig
	if dec.YielderIdx < 0 || dec.YielderIdx >= len(sig.Stacks) {
		return false
	}
	if !in.S.MatchesAtDepth(sig.Stacks[dec.YielderIdx], depth) {
		return false
	}
	for _, b := range dec.Causes {
		if b.SigIdx < 0 || b.SigIdx >= len(sig.Stacks) {
			return false
		}
		if !b.St.S.MatchesAtDepth(sig.Stacks[b.SigIdx], depth) {
			return false
		}
	}
	return true
}
