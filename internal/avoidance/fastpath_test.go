// Differential and race tests for the lock-free fast tier: the fast path
// must never bypass a stack that can match an enabled signature, under
// any effective depth, including immediately after a history mutation
// (ReloadHistory's ReplaceAll, SetDisabled, Add) observed under race.
package avoidance

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dimmunix/internal/calib"
	"dimmunix/internal/event"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// assertNeverBypasses fails if some interned stack the fast tier deems
// safe matches any enabled signature stack at a depth that signature can
// actually assume — the exact property that makes skipping the guarded
// protocol sound. A fixed-depth signature only ever matches at its
// effective depth (the per-depth danger index exploits exactly that); a
// calibration-capable signature's depth can move without a history
// mutation (rung advances, NT re-arms), so for those every depth
// 1..maxDepth must be covered.
func assertNeverBypasses(t *testing.T, c *Cache, hist *signature.History, probes []*stack.Interned, maxDepth int) {
	t.Helper()
	for _, in := range probes {
		if !c.classifySafe(in) {
			continue
		}
		for _, sig := range hist.Snapshot() {
			if sig.Disabled {
				continue
			}
			depths := []int{sig.EffectiveDepth()}
			if sig.Calib.On || sig.Calib.MaxDepth > 0 {
				for d := 1; d <= maxDepth; d++ {
					depths = append(depths, d)
				}
			}
			for j, ss := range sig.Stacks {
				for _, d := range depths {
					if in.S.MatchesAtDepth(ss, d) {
						t.Fatalf("fast tier bypassed stack %q which matches enabled sig %s position %d at depth %d (calib=%v)",
							in.S, sig.ID, j, d, sig.Calib.On)
					}
				}
			}
		}
	}
}

// TestFastPathDifferentialRandom fuzzes histories and probe stacks built
// from a small shared frame pool (to force overlaps) and asserts the
// never-bypass property, then cross-checks decisions against the full
// guarded path.
func TestFastPathDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	pool := make([]stack.Frame, 12)
	for i := range pool {
		pool[i] = stack.Frame{Func: fmt.Sprintf("fn%d", i), File: "pool.go", Line: i + 1}
	}
	randStack := func(depth int) stack.Stack {
		s := make(stack.Stack, depth)
		for i := range s {
			s[i] = pool[rng.Intn(len(pool))]
		}
		return s
	}

	for round := 0; round < 50; round++ {
		e := newEnv(Config{Mode: ModeFull})
		for i := 0; i < 1+rng.Intn(3); i++ {
			nStacks := 2 + rng.Intn(2)
			raw := make([]stack.Stack, nStacks)
			for j := range raw {
				raw[j] = randStack(1 + rng.Intn(5))
			}
			sig := signature.New(signature.Deadlock, raw, 1+rng.Intn(5))
			sig.Disabled = rng.Intn(4) == 0
			if rng.Intn(3) == 0 {
				// Calibration-capable: the danger index must fall back to
				// the depth-independent innermost-frame bucket for these.
				sig.Calib = calib.NewState(1+rng.Intn(5), 2, 4)
			}
			e.hist.Add(sig)
		}
		var probes []*stack.Interned
		for i := 0; i < 30; i++ {
			probes = append(probes, e.in.Intern(randStack(1+rng.Intn(6))))
		}
		assertNeverBypasses(t, e.c, e.hist, probes, 8)

		// Differential check: when the fast tier says GO, the guarded
		// protocol must agree (its decision for a safe stack is always
		// GO, whatever the adversarially chosen entry state is).
		th := e.c.NewThread(1, 1, "probe")
		adv := e.c.NewThread(2, 2, "adversary")
		for i, in := range probes {
			l := e.c.NewLock()
			// Adversarial entries: the adversary holds a lock at every
			// probe stack, maximizing cover opportunities for dangerous
			// requests.
			if i%3 == 0 {
				al := e.c.NewLock()
				if e.c.Request(adv, al, in).Go {
					e.c.Acquired(adv, al)
				}
			}
			fast := e.c.fastOK && e.c.classifySafe(in)
			dec := e.c.Request(th, l, in)
			if fast && !dec.Go {
				t.Fatalf("round %d: fast tier would GO but guarded path yields on %q (sig %v)", round, in.S, dec.Sig)
			}
			if dec.Go {
				e.c.Cancel(th, l)
			}
		}
	}
}

// TestFastPathYieldsAgreeOnPaperExample pins the §4 scenario: the
// dangerous request must be rejected by the fast tier (so it reaches the
// guarded path and yields), while an unrelated safe stack keeps the fast
// tier even with dangerous entries present.
func TestFastPathYieldsAgreeOnPaperExample(t *testing.T) {
	e, tl, a, s13, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Sig == nil {
		t.Fatal("guarded path must yield on the paper example")
	}
	if e.c.FastEligible(s13) {
		t.Fatal("fast tier accepted a stack that instantiates a signature")
	}
	// A stack sharing the signature's innermost frame but diverging
	// within its depth-3 matching window can never instantiate it, and
	// the per-depth danger index proves that: it keeps the fast tier.
	// (The old depth-1 over-approximation sent it to the guarded path.)
	nearMiss := e.stk("lock", "elsewhere", "main:other")
	if !e.c.FastEligible(nearMiss) {
		t.Fatal("stack diverging inside the matching window must keep the fast tier")
	}
	safe := e.stk("lockC", "elsewhere", "main:other")
	if !e.c.FastEligible(safe) {
		t.Fatal("fast tier rejected a provably safe stack")
	}
	e.c.FastBlocking(tl, a, safe)
	e.c.FastCancel(tl, a)
}

// TestFastMarkerInvalidatesOnHistoryMutation asserts the epoch protocol
// sequentially: a safe verdict cached before AddSignature / SetDisabled /
// ReplaceAll must not survive the mutation.
func TestFastMarkerInvalidatesOnHistoryMutation(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	s := e.stk("lock", "handler", "main")
	other := e.stk("lock", "other", "main")

	if !e.c.classifySafe(s) {
		t.Fatal("empty history: everything is safe")
	}

	// Add: the stack's innermost frame joins the danger set.
	sig := e.addSig(2, s, other)
	if e.c.classifySafe(s) {
		t.Fatal("classification survived AddSignature")
	}

	// Disable: the signature no longer counts.
	e.hist.SetDisabled(sig.ID, true)
	if !e.c.classifySafe(s) {
		t.Fatal("disabled signature still poisons the fast tier")
	}
	e.hist.SetDisabled(sig.ID, false)
	if e.c.classifySafe(s) {
		t.Fatal("re-enabled signature not seen by the fast tier")
	}

	// ReplaceAll (the ReloadHistory §8 path): swap in an empty set, then
	// one matching again.
	e.hist.ReplaceAll(signature.NewHistory())
	if !e.c.classifySafe(s) {
		t.Fatal("ReplaceAll(empty) did not clear the danger index")
	}
	fresh := signature.NewHistory()
	fresh.Add(signature.New(signature.Deadlock, []stack.Stack{s.S, other.S}, 3))
	e.hist.ReplaceAll(fresh)
	if e.c.classifySafe(s) {
		t.Fatal("ReplaceAll(matching) not observed by the fast tier")
	}
}

// TestFastPathReloadUnderRace hammers FastRequest from many goroutines
// while the history is concurrently reloaded, and asserts the ordering
// guarantee: once a mutation returns, the next classification — from the
// mutating goroutine or one synchronized with it — reflects it. The
// -race build additionally proves the marker/epoch protocol is clean.
func TestFastPathReloadUnderRace(t *testing.T) {
	hist := signature.NewHistory()
	interner := stack.NewInterner()
	c := NewCache(Config{Mode: ModeFull}, interner, hist, &Stats{}, func(event.Event) {})

	danger := interner.Intern(stack.Stack{
		{Func: "lock", File: "t.go", Line: 1},
		{Func: "handler", File: "t.go", Line: 2},
	})
	safe := interner.Intern(stack.Stack{
		{Func: "lock2", File: "t.go", Line: 1},
		{Func: "other", File: "t.go", Line: 2},
	})
	withSig := signature.NewHistory()
	withSig.Add(signature.New(signature.Deadlock, []stack.Stack{
		danger.S,
		{{Func: "lock3", File: "t.go", Line: 9}},
	}, 2))
	empty := signature.NewHistory()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := c.NewThread(int32(10+i), 10+i, "hammer")
			l := c.NewLock()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c.FastEligible(danger) {
					c.FastAcquiredImmediate(th, l, danger, false)
					c.FastRelease(th, l)
				}
				if c.FastEligible(safe) {
					c.FastAcquiredImmediate(th, l, safe, false)
					c.FastRelease(th, l)
				}
			}
		}(i)
	}

	syncCh := make(chan bool)
	ackCh := make(chan struct{})
	checkerDone := make(chan struct{})
	go func() {
		defer close(checkerDone)
		for enabled := range syncCh {
			// Receiving establishes happens-after the mutation below;
			// the mutator waits for the ack before mutating again.
			if got := c.classifySafe(danger); got != !enabled {
				t.Errorf("after reload(enabled=%v): classifySafe(danger) = %v", enabled, got)
				return
			}
			if !c.classifySafe(safe) {
				t.Error("safe stack misclassified after reload")
				return
			}
			ackCh <- struct{}{}
		}
	}()

	for i := 0; i < 400; i++ {
		enabled := i%2 == 0
		if enabled {
			hist.ReplaceAll(withSig)
		} else {
			hist.ReplaceAll(empty)
		}
		// Sequential guarantee on the mutating goroutine itself.
		if got := c.classifySafe(danger); got != !enabled {
			t.Fatalf("iteration %d: classification did not track ReplaceAll (enabled=%v, safe=%v)", i, enabled, got)
		}
		select {
		case syncCh <- enabled:
		case <-checkerDone:
			t.FailNow()
		}
		select {
		case <-ackCh:
		case <-checkerDone:
			t.FailNow()
		}
	}
	close(syncCh)
	<-checkerDone
	close(stop)
	wg.Wait()
}

// TestReentrantFastTierPairing checks the ReentrantAcquired contract: a
// safe reentrant stack reports fast (caller must FastRelease) and the
// hold accounting balances across mixed tiers.
func TestReentrantFastTierPairing(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	th := e.c.NewThread(1, 1, "t1")
	l := e.c.NewLock()
	outer := e.stk("lock", "outer")
	inner := e.stk("lock", "inner")

	if !e.c.FastEligible(outer) {
		t.Fatal("empty history: outer acquisition should be fast")
	}
	e.c.FastAcquiredImmediate(th, l, outer, false)
	if got := th.LiveHolds(); got != 1 {
		t.Fatalf("LiveHolds = %d, want 1", got)
	}
	if !e.c.ReentrantAcquired(th, l, inner) {
		t.Fatal("safe reentrant stack should take the fast tier")
	}
	if got := th.LiveHolds(); got != 2 {
		t.Fatalf("LiveHolds = %d, want 2", got)
	}
	e.c.FastRelease(th, l)
	e.c.FastRelease(th, l)
	if got := th.LiveHolds(); got != 0 {
		t.Fatalf("LiveHolds = %d, want 0", got)
	}

	// With a matching signature the reentrant stack must take the
	// guarded tier and leave a removable entry.
	e.addSig(2, inner, e.stk("lock", "elsewhere"))
	if e.c.ReentrantAcquired(th, l, inner) {
		t.Fatal("dangerous reentrant stack must not take the fast tier")
	}
	e.c.Release(th, l)
	if got := th.LiveHolds(); got != 0 {
		t.Fatalf("LiveHolds = %d, want 0 after guarded release", got)
	}
}

// TestFastPathDisabled checks the DisableFastPath escape hatch used by
// benchmark baselines.
func TestFastPathDisabled(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull, DisableFastPath: true})
	th := e.c.NewThread(1, 1, "t1")
	l := e.c.NewLock()
	s := e.stk("lock", "main")
	if e.c.FastEligible(s) {
		t.Fatal("DisableFastPath must force the guarded path")
	}
	if !e.c.Request(th, l, s).Go {
		t.Fatal("guarded path should GO")
	}
	e.c.Cancel(th, l)
	if e.c.Stats().FastGos.Load() != 0 {
		t.Fatal("no fast GOs expected")
	}
}

// TestGuardShardsBehavior runs the paper example and basic bookkeeping
// through a sharded guard, asserting decisions are unchanged.
func TestGuardShardsBehavior(t *testing.T) {
	for _, shards := range []int{2, 4, 7} {
		e, tl, a, s13, dec := setupPaperExample(t, Config{Mode: ModeFull, GuardShards: shards})
		if dec.Sig == nil {
			t.Fatalf("shards=%d: yield expected on the paper example", shards)
		}
		_ = tl
		_ = a
		_ = s13
		// Exercise pair-scope bookkeeping across several locks.
		th := e.c.NewThread(7, 7, "w")
		for i := 0; i < 10; i++ {
			l := e.c.NewLock()
			s := e.stk("lock", fmt.Sprintf("site%d", i))
			if !e.c.Request(th, l, s).Go {
				t.Fatalf("shards=%d: unrelated stack must GO", shards)
			}
			e.c.Acquired(th, l)
			e.c.Release(th, l)
		}
		if got := th.LiveHolds(); got != 0 {
			t.Fatalf("shards=%d: LiveHolds = %d", shards, got)
		}
	}
}

// reconcileScenario drives the soundness remainder of the fast-hold log:
// T1 takes a fast-tier hold on lock A (history empty, everything safe);
// then mutate bumps the danger-index epoch with a signature {sA, sB};
// then T2 requests lock B via sB. Reconciliation must have folded T1's
// outstanding fast hold into the Allowed sets by decision time, so the
// request yields — avoidance engages on the very next acquisition after
// the epoch bump, not after T1's release.
func reconcileScenario(t *testing.T, shared bool, mutate func(e *env, sA, sB *stack.Interned)) {
	t.Helper()
	e := newEnv(Config{Mode: ModeFull})
	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a, b := e.c.NewLock(), e.c.NewLock()
	sA := e.stk("lockA", "holder", "main")
	sB := e.stk("lockB", "requester", "main")

	if !e.c.FastEligible(sA) {
		t.Fatal("empty history: sA must be fast-eligible")
	}
	e.c.FastAcquiredImmediate(t1, a, sA, shared)
	e.c.NoteFastHold(t1, a, sA, shared)

	mutate(e, sA, sB) // epoch bump carrying {sA, sB}

	dec := e.c.Request(t2, b, sB)
	if dec.Go || dec.Sig == nil {
		t.Fatal("epoch bump must reconcile the outstanding fast hold: the very next dangerous acquisition has to yield against it")
	}

	// The hold must have moved from the fast-hold log into the guarded
	// Allowed sets, so its release routes through the guarded protocol.
	if takeFastHold(t1, a) {
		t.Fatal("adopted hold still sits in the fast-hold log")
	}
	e.c.Release(t1, a)
	if got := t1.LiveHolds(); got != 0 {
		t.Fatalf("LiveHolds after release = %d", got)
	}
}

// TestEpochBumpReconcilesOutstandingFastHolds covers every epoch source
// the runtime exercises: a local archive (Add), a fleet sync pull
// (Merge), and a predicted-signature push (ReplaceAll, the §8 hot-patch
// path), plus a shared (reader) hold through the merge path.
func TestEpochBumpReconcilesOutstandingFastHolds(t *testing.T) {
	remoteWith := func(sA, sB *stack.Interned, source string) *signature.History {
		remote := signature.NewHistory()
		sig := signature.New(signature.Deadlock, []stack.Stack{sA.S, sB.S}, 2)
		sig.Rev = 1
		sig.Source = source
		remote.Add(sig)
		return remote
	}
	t.Run("local-archive", func(t *testing.T) {
		reconcileScenario(t, false, func(e *env, sA, sB *stack.Interned) {
			e.addSig(2, sA, sB)
		})
	})
	t.Run("sync-pull-merge", func(t *testing.T) {
		reconcileScenario(t, false, func(e *env, sA, sB *stack.Interned) {
			e.hist.Merge(remoteWith(sA, sB, ""))
		})
	})
	t.Run("predicted-push-replaceall", func(t *testing.T) {
		reconcileScenario(t, false, func(e *env, sA, sB *stack.Interned) {
			e.hist.ReplaceAll(remoteWith(sA, sB, signature.SourcePredicted))
		})
	})
	t.Run("shared-hold", func(t *testing.T) {
		reconcileScenario(t, true, func(e *env, sA, sB *stack.Interned) {
			e.hist.Merge(remoteWith(sA, sB, ""))
		})
	})
}

// TestNoteFastHoldSelfAdoptsAfterEpochBump pins the classify->log race:
// a hold classified safe before an epoch bump but logged after it would
// miss the bump's adoption pass, so NoteFastHold re-classifies and adopts
// the hold itself.
func TestNoteFastHoldSelfAdoptsAfterEpochBump(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a, b := e.c.NewLock(), e.c.NewLock()
	sA := e.stk("lockA", "holder", "main")
	sB := e.stk("lockB", "requester", "main")

	// The grant happened while sA was still safe...
	if !e.c.FastEligible(sA) {
		t.Fatal("empty history: sA must be fast-eligible")
	}
	e.c.FastAcquiredImmediate(t1, a, sA, false)
	// ...but the epoch moves before the hold reaches the log.
	e.addSig(2, sA, sB)
	e.c.NoteFastHold(t1, a, sA, false)

	if takeFastHold(t1, a) {
		t.Fatal("NoteFastHold must self-adopt a hold that is dangerous under the live index")
	}
	if dec := e.c.Request(t2, b, sB); dec.Go || dec.Sig == nil {
		t.Fatal("self-adopted hold invisible to matching")
	}
	e.c.Release(t1, a)
}
