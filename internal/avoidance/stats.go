package avoidance

import (
	"sync"
	"sync/atomic"
)

// Stats counts avoidance-side activity. All fields are updated atomically
// and may be read at any time.
type Stats struct {
	Requests  atomic.Uint64 // request invocations (including yield retries)
	Gos       atomic.Uint64 // GO decisions
	Yields    atomic.Uint64 // YIELD decisions
	Acquired  atomic.Uint64 // locks acquired
	Releases  atomic.Uint64 // locks released
	Cancels   atomic.Uint64 // rolled-back requests (trylock/timeout/abort)
	ForcedGos atomic.Uint64 // starvation breaks + max-yield releases
	Aborts    atomic.Uint64 // max-yield-duration aborts
	Ignored   atomic.Uint64 // yields suppressed by ignore-decisions mode
	ProbeFPs  atomic.Uint64 // yields that fail the probe-depth re-match (§7.3)
	Reentries atomic.Uint64 // reentrant acquisitions (no decision needed)

	SharedAcquired atomic.Uint64 // shared (reader) acquisitions, also counted in Acquired

	FastGos atomic.Uint64 // GO decisions served by the lock-free fast tier

	// FastAcquired / GuardedAcquired partition Acquired by tier: every
	// non-reentrant acquisition is counted in exactly one of them, so
	// FastAcquired + GuardedAcquired == Acquired holds at any quiescent
	// point — the differential invariant the observability tests assert.
	FastAcquired    atomic.Uint64
	GuardedAcquired atomic.Uint64

	// EventBatches counts Batch carrier events published to the monitor
	// queue (each packs up to Config.EventBatch bookkeeping events).
	EventBatches atomic.Uint64

	// sigYields counts YIELD decisions per signature ID, lock-free
	// (sync.Map of *atomic.Uint64); the yield path is already off the
	// fast tier, so the map touch costs nothing where it matters.
	sigYields sync.Map
}

// noteYield counts one YIELD decision against its signature.
func (s *Stats) noteYield(sigID string) {
	s.Yields.Add(1)
	if c, ok := s.sigYields.Load(sigID); ok {
		c.(*atomic.Uint64).Add(1)
		return
	}
	c, _ := s.sigYields.LoadOrStore(sigID, new(atomic.Uint64))
	c.(*atomic.Uint64).Add(1)
}

// YieldsBySignature returns a fresh map of per-signature yield counts.
func (s *Stats) YieldsBySignature() map[string]uint64 {
	out := make(map[string]uint64)
	s.sigYields.Range(func(k, v any) bool {
		if n := v.(*atomic.Uint64).Load(); n > 0 {
			out[k.(string)] = n
		}
		return true
	})
	return out
}

// Snapshot is a plain-value copy of Stats.
type Snapshot struct {
	Requests, Gos, Yields, Acquired, Releases, Cancels uint64
	ForcedGos, Aborts, Ignored, ProbeFPs, Reentries    uint64
	SharedAcquired                                     uint64
	FastGos, FastAcquired, GuardedAcquired             uint64
	EventBatches                                       uint64
}

// Snapshot returns a consistent-enough point-in-time copy.
func (s *Stats) Snapshot() Snapshot {
	return Snapshot{
		Requests:  s.Requests.Load(),
		Gos:       s.Gos.Load(),
		Yields:    s.Yields.Load(),
		Acquired:  s.Acquired.Load(),
		Releases:  s.Releases.Load(),
		Cancels:   s.Cancels.Load(),
		ForcedGos: s.ForcedGos.Load(),
		Aborts:    s.Aborts.Load(),
		Ignored:   s.Ignored.Load(),
		ProbeFPs:  s.ProbeFPs.Load(),
		Reentries: s.Reentries.Load(),

		SharedAcquired: s.SharedAcquired.Load(),

		FastGos:         s.FastGos.Load(),
		FastAcquired:    s.FastAcquired.Load(),
		GuardedAcquired: s.GuardedAcquired.Load(),
		EventBatches:    s.EventBatches.Load(),
	}
}
