// Package avoidance implements the hot-path half of Dimmunix: the RAG
// "cache" consulted and updated by the request/acquired/release
// instrumentation (§5.4, §5.6).
//
// The cache maintains, per interned call stack S, the Allowed set: the
// threads permitted to wait for locks while having call stack S, including
// the threads that acquired and still hold those locks. A lock request is
// allowed (GO) unless, together with the current allow/hold entries, it
// would instantiate a signature from the history; then the thread yields
// and records yield-cause bindings so it can be woken when any binding
// breaks.
//
// Synchronization is two-tier. The guarded tier uses a pluggable guard
// (sync.Mutex, TAS spin lock, or the generalized Peterson filter lock of
// §5.6) — optionally split into shards (Config.GuardShards): decision
// operations acquire every shard in index order, bookkeeping operations
// only the lock's shard plus the thread's home shard — protecting every
// mutable structure here, including the mutable fields of
// *signature.Signature. The lock-free tier (FastRequest/FastAcquired/
// FastRelease/FastCancel) handles requests whose call stack is provably
// safe under the current history epoch: such stacks appear in no matcher,
// so their edges could never change any decision, and the tier touches no
// guarded state at all — one atomic marker check plus the event pushes.
//
// Event emission to the monitor is lock-free (MPSC queue). Bookkeeping
// events (acquired, release) are batched per thread (Config.EventBatch)
// and flushed either when a batch fills, when the same thread emits an
// ordering event (request/go/yield/cancel/thread-exit — those always
// flush first, so per-thread FIFO order is preserved end to end), or when
// the monitor steals all buffers at the top of each pass. The §5.2 order
// the detector needs survives batching: a thread publishes its complete
// history before every event that creates a wait edge, so every blocked
// thread — in particular every participant of a deadlock or yield cycle —
// has exact RAG state at detection time, and the monitor's
// steal-before-drain keeps detection latency within one τ. Stale state is
// confined to running threads, which have no wait edges and therefore
// cannot extend a cycle; out-of-order acquired/release between *different*
// threads is absorbed by the RAG's multi-holder bookkeeping.
package avoidance

import (
	"sync"
	"sync/atomic"

	"dimmunix/internal/event"
	"dimmunix/internal/obs"
	"dimmunix/internal/peterson"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// Mode selects how much of the avoidance path runs; the Fig 8 overhead
// breakdown toggles these.
type Mode uint8

const (
	// ModeInstrument captures stacks and emits events only.
	ModeInstrument Mode = iota
	// ModeDataStructs additionally maintains the Allowed sets and
	// holder bookkeeping, but never matches signatures.
	ModeDataStructs
	// ModeFull runs complete avoidance.
	ModeFull
)

// ThreadState is the cache's per-thread node. One exists per registered
// application thread; they are preallocated-friendly (dense slots).
type ThreadState struct {
	ID   int32
	Name string
	Slot int // guard slot for the filter lock

	// Priority influences starvation-break victim selection (§8 notes
	// priority support "can easily be added"; this is that addition).
	// Higher priority = freed first. Default 0.
	Priority atomic.Int32

	// liveHolds counts this thread's outstanding holds across both tiers
	// (guarded entries and fast-path holds, which leave no entry). The
	// runtime's idle-thread pruner reads it to prove quiescence.
	liveHolds atomic.Int32

	// Wake is signaled (buffered, capacity 1) whenever a yield cause of
	// this thread may have broken.
	Wake chan struct{}

	// buf batches this thread's bookkeeping events (see the package doc).
	buf event.Buffer

	// fhMu protects fastHolds, the log of this thread's outstanding
	// fast-tier holds. It is a leaf lock (never held while taking the
	// guard or any mutex-side lock): the release path consults it first
	// (ReleaseAny) and the epoch reconciler (adoptFastHolds, under the
	// full guard scope) adopts dangerous entries out of it, so the two
	// sides linearize on fhMu — whichever wins, the hold is accounted
	// exactly once.
	fhMu      sync.Mutex
	fastHolds []fastHold

	// entryFree recycles entry nodes for this thread. Protected by the
	// thread's home guard shard (every alloc/free site holds it).
	entryFree []*entry

	// Everything below is protected by the cache guard (the thread's home
	// shard, plus all shards for decision operations).
	forcedGo     bool
	pendingAllow *entry       // the outstanding allow edge, if any
	holds        []*entry     // hold entries in acquisition order
	yieldRegs    []*LockState // locks whose waiter sets contain this thread
	yieldSig     *signature.Signature
}

// fastHold is one outstanding fast-tier hold: thread t holds l, classified
// safe under the epoch it was acquired in, with call stack st.
type fastHold struct {
	l      *LockState
	st     *stack.Interned
	shared bool
}

// LiveHolds returns the number of locks the thread currently holds
// (counting recursive acquisitions), across both avoidance tiers.
func (t *ThreadState) LiveHolds() int { return int(t.liveHolds.Load()) }

// NoteHold / NoteRelease maintain the hold count on paths that bypass the
// cache entirely (ModeOff), so idle-thread pruning can prove quiescence
// in every mode.
func (t *ThreadState) NoteHold()    { t.liveHolds.Add(1) }
func (t *ThreadState) NoteRelease() { t.liveHolds.Add(-1) }

// LockState is the cache's per-lock node, embedded in the public Mutex.
type LockState struct {
	ID    uint64
	shard int // guard shard index, fixed at creation

	// Protected by the cache guard (the lock's shard).
	owner   *ThreadState // nil when free (ownership per cache view)
	waiters map[int32]*ThreadState
}

// entry is one allow or hold edge in the cache: thread T waits for / holds
// lock L having had call stack St.
type entry struct {
	t    *ThreadState
	l    *LockState
	st   *stack.Interned
	held bool
	// position of this entry in its stackState per-shard slice, for O(1)
	// swap-removal. The slice is selected by e.l.shard.
	ssIdx int
}

// stackState is the per-interned-stack node carrying the Allowed set.
// Entries are partitioned by their lock's guard shard so that bookkeeping
// operations holding only that shard can mutate their partition without
// racing bookkeeping on other shards; decision operations hold every
// shard and may read all partitions.
type stackState struct {
	in      *stack.Interned
	entries [][]*entry // indexed by lock shard
}

// Decision is the outcome of Request.
type Decision struct {
	// Go is true when the thread may proceed to block on the lock.
	Go bool
	// Sig is the matched signature on YIELD (also set when a yield was
	// suppressed by ignore-decisions mode).
	Sig *signature.Signature
	// Depth is the matching depth in force when the instance was found.
	Depth int
	// Causes are the (thread, lock, stack) bindings of the instance,
	// excluding the requesting thread's own tentative binding.
	Causes []Binding
	// YielderIdx is the signature stack index covered by the requesting
	// thread's own stack.
	YielderIdx int
}

// Binding is one element of a signature instance.
type Binding struct {
	T      *ThreadState
	L      *LockState
	St     *stack.Interned
	SigIdx int // index of the signature stack this binding covers
}

// Config parametrizes a Cache.
type Config struct {
	// Guard selects the mutual-exclusion primitive for the shared
	// structures; nil selects sync.Mutex.
	Guard peterson.Guard
	// NewGuard builds one guard instance per shard when GuardShards > 1
	// (Guard alone cannot be cloned). Falls back to sync.Mutex shards.
	NewGuard func() peterson.Guard
	// GuardShards splits the avoidance guard into this many independently
	// lockable shards: decision operations (Request in full mode, Cancel,
	// ThreadExit) acquire every shard in index order, while bookkeeping
	// operations (Acquired, Release, reentrant acquisitions, and Request
	// in data-structs mode) acquire only the lock's shard and the
	// thread's home shard. <= 1 keeps the single global guard.
	GuardShards int
	// DisableFastPath forces every request through the guarded protocol
	// (benchmark baselines and differential testing).
	DisableFastPath bool
	// Mode selects the instrumentation level.
	Mode Mode
	// IgnoreDecisions turns YIELD into GO (Table 1's control run).
	IgnoreDecisions bool
	// ProbeDepth, when > 0, re-checks every matched instance at this
	// deeper depth and counts failures in Stats.ProbeFPs (§7.3's
	// false-positive accounting).
	ProbeDepth int
	// DiscardObsolete removes a signature from the history when a
	// completed calibration ladder shows a 100% false-positive rate at
	// its best depth — §8: such signatures are obsolete (e.g. the bug
	// was fixed by an upgrade).
	DiscardObsolete bool
	// MaxThreads sizes the preallocated thread slot table.
	MaxThreads int
	// EventBatch is the per-thread bookkeeping-event batch size: acquired
	// and release events accumulate in a per-thread buffer published to
	// the monitor queue one Batch event per EventBatch records (ordering
	// events and the monitor's per-pass steal flush earlier). <= 1
	// publishes every event immediately.
	EventBatch int
	// Bus, when non-nil, receives AvoidanceYield observability events.
	// Publishes are gated on Bus.Active, so an unobserved runtime pays a
	// single atomic load on the (already cold) yield path and nothing
	// anywhere else.
	Bus *obs.Bus
}

// Cache is the avoidance-side state of one Dimmunix runtime.
type Cache struct {
	cfg      Config
	guards   []peterson.Guard // shard index -> guard; length >= 1
	fastOK   bool             // precomputed: requests may use the lock-free tier
	interner *stack.Interner
	hist     *signature.History
	emit     func(event.Event)
	stats    *Stats

	// stackStates is the interned-stack side table. The slice header is
	// RCU-published (copy-on-write under ssMu) so operations holding only
	// a shard pair can look stacks up without racing growth from another
	// shard; each stackState's per-shard entry partitions are protected
	// by their shard guard.
	stackStates atomic.Pointer[[]*stackState]
	ssMu        sync.Mutex

	// threads is the registry of live thread nodes, for the monitor's
	// steal-all-buffers flush and for epoch reconciliation of fast holds.
	threadsMu sync.Mutex
	threads   map[int32]*ThreadState

	// Protected by the full decision scope (all shards).
	matchers    []*sigMatcher
	byStack     map[uint32][]matchRef // reverse index: stack -> signature positions
	histVersion uint64
	linkedUpTo  int  // interned stacks below this ID are linked into matchers
	calibrating bool // some signature's depth ladder is running
	indexDirty  bool // reverse index needs a rebuild
	// reconciledEpoch is the danger-index epoch outstanding fast holds
	// were last reconciled against (adoptFastHolds).
	reconciledEpoch uint64
	// coverUsedT/coverUsedL are cover()'s recursion scratch, reused
	// across requests — cover only ever runs under the full scope.
	coverUsedT map[*ThreadState]bool
	coverUsedL map[*LockState]bool

	nextLockID atomic.Uint64

	// lastAvoided remembers the most recently avoided signature — the
	// §5.7 "disable the last avoided signature" flow (the paper's
	// pop-up-blocker analogy).
	lastAvoided atomic.Pointer[signature.Signature]
}

// NewCache builds a cache over the given history. emit must be non-nil and
// is invoked for every instrumentation event.
func NewCache(cfg Config, interner *stack.Interner, hist *signature.History, stats *Stats, emit func(event.Event)) *Cache {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1024
	}
	if cfg.GuardShards < 1 {
		cfg.GuardShards = 1
	}
	guards := make([]peterson.Guard, cfg.GuardShards)
	for i := range guards {
		switch {
		case i == 0 && cfg.Guard != nil:
			guards[i] = cfg.Guard
		case cfg.NewGuard != nil:
			guards[i] = cfg.NewGuard()
		default:
			guards[i] = peterson.NewMutex()
		}
	}
	c := &Cache{
		cfg:        cfg,
		guards:     guards,
		fastOK:     cfg.Mode == ModeFull && !cfg.IgnoreDecisions && !cfg.DisableFastPath,
		interner:   interner,
		hist:       hist,
		emit:       emit,
		stats:      stats,
		byStack:    make(map[uint32][]matchRef),
		threads:    make(map[int32]*ThreadState),
		coverUsedT: make(map[*ThreadState]bool),
		coverUsedL: make(map[*LockState]bool),
	}
	if hist != nil {
		c.reconciledEpoch = hist.Danger().Epoch()
	}
	return c
}

// tShard returns the home guard shard of a thread.
func (c *Cache) tShard(t *ThreadState) int { return t.Slot % len(c.guards) }

// lockAll acquires every guard shard in index order (decision scope).
func (c *Cache) lockAll(slot int) {
	for _, g := range c.guards {
		g.Lock(slot)
	}
}

func (c *Cache) unlockAll(slot int) {
	for i := len(c.guards) - 1; i >= 0; i-- {
		c.guards[i].Unlock(slot)
	}
}

// lockPair acquires shards a and b in index order (bookkeeping scope:
// the lock's shard plus the thread's home shard).
func (c *Cache) lockPair(a, b, slot int) {
	if a == b {
		c.guards[a].Lock(slot)
		return
	}
	if a > b {
		a, b = b, a
	}
	c.guards[a].Lock(slot)
	c.guards[b].Lock(slot)
}

func (c *Cache) unlockPair(a, b, slot int) {
	if a == b {
		c.guards[a].Unlock(slot)
		return
	}
	if a < b {
		a, b = b, a
	}
	c.guards[a].Unlock(slot)
	c.guards[b].Unlock(slot)
}

// Stats returns the cache's counters.
func (c *Cache) Stats() *Stats { return c.stats }

// NewThread creates the cache node for a registered thread.
func (c *Cache) NewThread(id int32, slot int, name string) *ThreadState {
	t := &ThreadState{
		ID:   id,
		Name: name,
		Slot: slot,
		Wake: make(chan struct{}, 1),
	}
	c.threadsMu.Lock()
	c.threads[id] = t
	c.threadsMu.Unlock()
	return t
}

// NewLock creates a lock node with a fresh ID.
func (c *Cache) NewLock() *LockState {
	id := c.nextLockID.Add(1)
	return &LockState{ID: id, shard: int(id % uint64(len(c.guards)))}
}

// Intern exposes the runtime's stack interner.
func (c *Cache) Intern(s stack.Stack) *stack.Interned { return c.interner.Intern(s) }

// stackStateByID resolves the side-table node for an interned stack ID
// (nil if the stack has no node yet). Safe under any guard scope: the
// slice header is loaded atomically and published versions are immutable.
func (c *Cache) stackStateByID(id uint32) *stackState {
	sl := c.stackStates.Load()
	if sl == nil || int(id) >= len(*sl) {
		return nil
	}
	return (*sl)[id]
}

// stackState returns the node for in, creating and publishing it (copy on
// write) if needed.
func (c *Cache) stackState(in *stack.Interned) *stackState {
	if ss := c.stackStateByID(in.ID); ss != nil {
		return ss
	}
	c.ssMu.Lock()
	defer c.ssMu.Unlock()
	var cur []*stackState
	if sl := c.stackStates.Load(); sl != nil {
		cur = *sl
	}
	if int(in.ID) < len(cur) && cur[in.ID] != nil {
		return cur[in.ID]
	}
	n := len(cur)
	if int(in.ID) >= n {
		n = int(in.ID) + 1
	}
	next := make([]*stackState, n)
	copy(next, cur)
	ss := &stackState{in: in, entries: make([][]*entry, len(c.guards))}
	next[in.ID] = ss
	c.stackStates.Store(&next)
	return ss
}

func (c *Cache) addEntry(t *ThreadState, l *LockState, in *stack.Interned, held bool) *entry {
	ss := c.stackState(in)
	sh := l.shard
	var e *entry
	if n := len(t.entryFree); n > 0 {
		e = t.entryFree[n-1]
		t.entryFree = t.entryFree[:n-1]
		*e = entry{}
	} else {
		e = &entry{}
	}
	e.t, e.l, e.st, e.held, e.ssIdx = t, l, in, held, len(ss.entries[sh])
	ss.entries[sh] = append(ss.entries[sh], e)
	return e
}

func (c *Cache) removeEntry(e *entry) {
	ss := c.stackStateByID(e.st.ID)
	part := ss.entries[e.l.shard]
	last := len(part) - 1
	part[e.ssIdx] = part[last]
	part[e.ssIdx].ssIdx = e.ssIdx
	ss.entries[e.l.shard] = part[:last]
	e.ssIdx = -1
	// Recycle through the owning thread's free list; the caller holds that
	// thread's home shard on every removal path.
	if t := e.t; len(t.entryFree) < 64 {
		t.entryFree = append(t.entryFree, e)
	}
}

// clearYieldRegs removes t from every waiter set it registered in.
func clearYieldRegs(t *ThreadState) {
	for _, l := range t.yieldRegs {
		delete(l.waiters, t.ID)
	}
	t.yieldRegs = t.yieldRegs[:0]
	t.yieldSig = nil
}

// classifySafe reports whether in is provably safe under the live danger
// index: its innermost frame cannot match any enabled signature stack at
// any depth. The verdict is cached in the interned stack's marker and
// self-invalidates when the history epoch moves (AddSignature,
// SetDisabled, Remove, ReplaceAll — including ReloadHistory's §8
// hot-patch — all publish a fresh index).
func (c *Cache) classifySafe(in *stack.Interned) bool {
	idx := c.hist.Danger()
	if ep, dangerous := in.Marker(); ep == idx.Epoch() {
		return !dangerous
	}
	dangerous := idx.Dangerous(in.S)
	in.SetMarker(idx.Epoch(), dangerous)
	return !dangerous
}

// ClassifySafe exposes the marker-cached safe/dangerous verdict, for the
// per-thread classification table kept by the core layer.
func (c *Cache) ClassifySafe(in *stack.Interned) bool { return c.classifySafe(in) }

// FastOK reports whether this cache admits the lock-free fast tier at all
// (full mode, decisions honored, fast path not disabled).
func (c *Cache) FastOK() bool { return c.fastOK }

// DangerEpoch returns the live danger-index epoch.
func (c *Cache) DangerEpoch() uint64 { return c.hist.Danger().Epoch() }

// DangerView returns the live danger-index epoch together with its
// published shallow-capture depth, from a single index load so the two
// are mutually consistent. shallow follows DangerIndex.ShallowDepth():
// the minimum number of innermost frames that yields the same Dangerous
// verdict as a full capture, or 0 when only a full capture is sound
// (calibration-live or depth<=0 signatures present).
func (c *Cache) DangerView() (epoch uint64, shallow int) {
	idx := c.hist.Danger()
	return idx.Epoch(), idx.ShallowDepth()
}

// bufEmit routes a per-thread event (request/go/acquired/release) through
// the thread's batch buffer, or straight to the queue when batching is off.
func (c *Cache) bufEmit(t *ThreadState, k event.Kind, lid uint64, in *stack.Interned) {
	if c.cfg.EventBatch <= 1 {
		c.emit(event.Event{Kind: k, TID: t.ID, LID: lid, Stack: in})
		return
	}
	t.buf.Add(t.ID, event.Record{Kind: k, LID: lid, Stack: in}, c.cfg.EventBatch, c.emitBatch)
}

// flushBuf publishes t's buffered events. Every directly-emitted event
// (yield/cancel/fast-blocking/thread-exit — the rare paths, and the ones
// whose payload doesn't fit the Record format) calls this first, so a
// thread's events still reach the queue in program order.
func (c *Cache) flushBuf(t *ThreadState) {
	if c.cfg.EventBatch > 1 {
		t.buf.Flush(t.ID, c.emitBatch)
	}
}

func (c *Cache) emitBatch(ev event.Event) {
	c.stats.EventBatches.Add(1)
	c.emit(ev)
}

// FlushBuffers publishes every thread's buffered bookkeeping events. The
// monitor calls this at the top of each pass, so batching never delays
// detection beyond one τ.
func (c *Cache) FlushBuffers() {
	if c.cfg.EventBatch <= 1 {
		return
	}
	c.threadsMu.Lock()
	for _, t := range c.threads {
		t.buf.Flush(t.ID, c.emitBatch)
	}
	c.threadsMu.Unlock()
}

// FastEligible is the gate of the lock-free first tier of the §5.4
// request protocol: it reports whether the requesting stack is provably
// safe under the current history epoch. A safe-stack request can never
// yield and its allow/hold edges could never participate in a signature
// instance (safe stacks appear in no matcher), so the caller may skip the
// guarded protocol entirely:
//
//   - uncontended raw lock  -> FastAcquiredImmediate (one Acquired event;
//     no Go event is owed because the thread never blocks, so no wait
//     edge could join a deadlock cycle),
//   - about to block        -> FastBlocking (publishes the Go wait edge
//     for first-occurrence detection), then FastAcquired or FastCancel,
//   - trylock failure       -> FastTryFailed (counters only).
//
// A pending ForceGo is not consumed on this tier: it stays armed for the
// thread's next guarded request, which is where yields happen.
func (c *Cache) FastEligible(in *stack.Interned) bool {
	return c.fastOK && c.classifySafe(in)
}

// FastAcquiredImmediate records an uncontended fast-tier acquisition: the
// raw lock was free, the thread never blocked. One Acquired event covers
// the whole request/go/acquired sequence. No Allowed-set entry is created
// (the stack is safe, so the hold could never cover a signature position)
// and the cache's per-lock owner view is not updated; the monitor's RAG
// remains exact via the event stream.
//
// A fast hold can outlive the epoch it was classified under. The caller
// records it in the thread's fast-hold log (NoteFastHold), and when the
// danger index moves — a local archive, a store sync pull, or a predicted
// push — the first guarded request under the new epoch reconciles every
// outstanding fast hold whose stack became dangerous into a real
// Allowed-set entry (adoptFastHolds), so a fresh signature takes effect on
// the very next acquisition that could instantiate it instead of waiting
// for fast holds to retire. Detection is exact throughout via the event
// stream regardless.
func (c *Cache) FastAcquiredImmediate(t *ThreadState, l *LockState, in *stack.Interned, shared bool) {
	c.stats.Requests.Add(1)
	c.stats.Gos.Add(1)
	c.stats.FastGos.Add(1)
	c.fastAcquired(t, l, in, shared)
}

// NoteFastHold appends one outstanding fast-tier hold to t's log, making
// it visible to epoch reconciliation. Callers must guarantee the hold is
// still live when they call (the mutex owner contract, or the RWMutex
// reader table checked under rw.mu), so a logged entry always denotes a
// real hold.
func (c *Cache) NoteFastHold(t *ThreadState, l *LockState, in *stack.Interned, shared bool) {
	t.fhMu.Lock()
	t.fastHolds = append(t.fastHolds, fastHold{l: l, st: in, shared: shared})
	t.fhMu.Unlock()
	if !c.classifySafe(in) {
		// The danger index moved between classification and the log
		// append, and this stack is dangerous under the new epoch — the
		// epoch's adoption pass may already have run, so reconcile this
		// hold ourselves instead of waiting for the next bump. (Hold
		// entries of one lock are fungible: if takeFastHold grabs a
		// sibling entry, the books still balance and matching only gets
		// more conservative.)
		if takeFastHold(t, l) {
			ts := c.tShard(t)
			c.lockPair(l.shard, ts, t.Slot)
			e := c.addEntry(t, l, in, true)
			t.holds = append(t.holds, e)
			if !shared {
				l.owner = t
			}
			c.unlockPair(l.shard, ts, t.Slot)
		}
	}
}

// takeFastHold removes and returns one logged fast hold of t on l (LIFO),
// reporting whether one existed. A miss means the hold is guarded — either
// it always was, or reconciliation adopted it.
func takeFastHold(t *ThreadState, l *LockState) bool {
	t.fhMu.Lock()
	for i := len(t.fastHolds) - 1; i >= 0; i-- {
		if t.fastHolds[i].l == l {
			t.fastHolds = append(t.fastHolds[:i], t.fastHolds[i+1:]...)
			t.fhMu.Unlock()
			return true
		}
	}
	t.fhMu.Unlock()
	return false
}

// ReleaseAny releases one of t's holds on l through whichever tier it
// lives on right now: fast holds (still in the log) retire lock-free via
// the release event alone; everything else — guarded holds and fast holds
// adopted by reconciliation — goes through the guarded Release. fhMu
// linearizes the race against adoptFastHolds: exactly one side consumes
// each hold.
func (c *Cache) ReleaseAny(t *ThreadState, l *LockState) {
	if c.fastOK && takeFastHold(t, l) {
		c.FastRelease(t, l)
		return
	}
	c.Release(t, l)
}

// FastRelease retires a fast-path hold. A fast hold was never an
// Allowed-set entry, so it cannot be a yield-cause binding of any yielding
// thread — no wakeups are owed and no guard is needed; only the release
// event is emitted. Callers that logged the hold via NoteFastHold must go
// through ReleaseAny instead, which consumes the log entry first.
//
// A lonely release — the thread's last hold, released while its own
// Acquired record is still the newest thing in the batch buffer — is
// elided together with that record instead of emitted: the pair carries
// no lock-nesting evidence (no other hold was live, nothing happened in
// between) and could never appear in a detection snapshot, so skipping
// it spares the monitor two RAG updates per uncontended fast-tier
// operation. Stats counters remain exact; only the monitor-facing
// bookkeeping stream is thinned.
func (c *Cache) FastRelease(t *ThreadState, l *LockState) {
	c.stats.Releases.Add(1)
	lonely := t.liveHolds.Add(-1) == 0
	if lonely && c.cfg.EventBatch > 1 && t.buf.ElideRelease(l.ID) {
		return
	}
	c.bufEmit(t, event.Release, l.ID, nil)
}

// adoptFastHolds converts every outstanding fast hold whose stack is
// dangerous under the current danger index into a guarded Allowed-set
// entry, so signature matching sees it immediately. Holds whose stacks
// remain safe stay in the log. Runs under the full decision scope; the
// per-thread fhMu closes the race against concurrent releases.
func (c *Cache) adoptFastHolds() {
	idx := c.hist.Danger()
	c.threadsMu.Lock()
	for _, t := range c.threads {
		t.fhMu.Lock()
		kept := t.fastHolds[:0]
		for _, fh := range t.fastHolds {
			if !idx.Dangerous(fh.st.S) {
				kept = append(kept, fh)
				continue
			}
			e := c.addEntry(t, fh.l, fh.st, true)
			t.holds = append(t.holds, e)
			if !fh.shared {
				fh.l.owner = t
			}
		}
		t.fastHolds = kept
		t.fhMu.Unlock()
	}
	c.threadsMu.Unlock()
}

// FastBlocking announces that a fast-tier request is about to block on
// the raw lock. The Go event (whose RAG effect subsumes Request's)
// publishes the wait edge before the caller blocks, preserving
// first-occurrence deadlock detection; follow up with FastAcquired or
// FastCancel.
func (c *Cache) FastBlocking(t *ThreadState, l *LockState, in *stack.Interned) {
	c.stats.Requests.Add(1)
	c.stats.Gos.Add(1)
	c.stats.FastGos.Add(1)
	c.flushBuf(t)
	c.emit(event.Event{Kind: event.Go, TID: t.ID, LID: l.ID, Stack: in})
}

// FastTryFailed accounts a fast-tier trylock that found the raw lock
// busy. Nothing was published, so nothing is rolled back.
func (c *Cache) FastTryFailed() {
	c.stats.Requests.Add(1)
	c.stats.Gos.Add(1)
	c.stats.FastGos.Add(1)
	c.stats.Cancels.Add(1)
}

// FastAcquired completes a FastBlocking'd acquisition.
func (c *Cache) FastAcquired(t *ThreadState, l *LockState, in *stack.Interned, shared bool) {
	c.fastAcquired(t, l, in, shared)
}

func (c *Cache) fastAcquired(t *ThreadState, l *LockState, in *stack.Interned, shared bool) {
	c.stats.Acquired.Add(1)
	c.stats.FastAcquired.Add(1)
	if shared {
		c.stats.SharedAcquired.Add(1)
	}
	t.liveHolds.Add(1)
	c.bufEmit(t, event.Acquired, l.ID, in)
}

// FastCancel rolls back a FastBlocking'd acquisition whose raw block
// failed (timeout, context, recovery abort). No shared state was touched,
// so only the event is owed.
func (c *Cache) FastCancel(t *ThreadState, l *LockState) {
	c.stats.Cancels.Add(1)
	c.flushBuf(t)
	c.emit(event.Event{Kind: event.Cancel, TID: t.ID, LID: l.ID})
}

// Request implements the §5.4 request method. It returns GO when it is
// safe (w.r.t. the history) for t to block waiting for l, or YIELD with
// the matched signature instance otherwise.
func (c *Cache) Request(t *ThreadState, l *LockState, in *stack.Interned) Decision {
	c.stats.Requests.Add(1)
	// Request rides the batch buffer like the bookkeeping events: the
	// buffer is per-thread FIFO, so program order is preserved, and the
	// monitor flushes every buffer at the top of each pass — a blocked
	// thread's wait edge is never invisible for more than one τ.
	c.bufEmit(t, event.Request, l.ID, in)

	if c.cfg.Mode == ModeInstrument {
		c.stats.Gos.Add(1)
		c.bufEmit(t, event.Go, l.ID, in)
		return Decision{Go: true}
	}

	// Full mode must read every shard's entries to match instances; the
	// data-structs ablation only touches this lock's and thread's state.
	full := c.cfg.Mode == ModeFull
	ts := c.tShard(t)
	c.lockScope(full, l.shard, ts, t.Slot)
	clearYieldRegs(t)

	var dec Decision
	if full {
		c.refreshIndex()
		if ep := c.hist.Danger().Epoch(); ep != c.reconciledEpoch {
			// The danger index moved (archive, sync pull, predicted push,
			// disable flip, …): fold outstanding fast holds that became
			// dangerous into the Allowed sets before matching, so the new
			// signature binds against them right now.
			c.adoptFastHolds()
			c.reconciledEpoch = ep
		}
		if t.forcedGo {
			t.forcedGo = false
			c.stats.ForcedGos.Add(1)
		} else {
			dec = c.findInstance(t, l, in)
		}
	}

	if dec.Sig != nil && !c.cfg.IgnoreDecisions {
		// YIELD: flip the tentative allow into a request edge and
		// register for wakeups on every cause lock.
		dec.Sig.AvoidCount++
		if dec.Sig.Calib.RecordAvoidance() {
			// Ladder completed: adopt the chosen depth.
			dec.Sig.Depth = dec.Sig.Calib.Chosen
		}
		// Rung advances and ladder completion both change the effective
		// depth; keep the match index coherent immediately.
		c.invalidateMatcher(dec.Sig.ID)
		if c.cfg.ProbeDepth > 0 && !c.matchesAtDepth(dec, t, l, in, c.cfg.ProbeDepth) {
			c.stats.ProbeFPs.Add(1)
		}
		t.yieldSig = dec.Sig
		causes := make([]event.Cause, 0, len(dec.Causes))
		for _, b := range dec.Causes {
			if b.L.waiters == nil {
				b.L.waiters = make(map[int32]*ThreadState)
			}
			b.L.waiters[t.ID] = t
			t.yieldRegs = append(t.yieldRegs, b.L)
			causes = append(causes, event.Cause{TID: b.T.ID, LID: b.L.ID, Stack: b.St, SigIdx: b.SigIdx})
		}
		c.unlockScope(full, l.shard, ts, t.Slot)
		c.lastAvoided.Store(dec.Sig)
		c.stats.noteYield(dec.Sig.ID)
		// Yield is emitted directly (it carries causes the Record format
		// doesn't); flush first so it lands after this thread's buffered
		// Request.
		c.flushBuf(t)
		c.emit(event.Event{
			Kind: event.Yield, TID: t.ID, LID: l.ID, Stack: in,
			Causes: causes, SigID: dec.Sig.ID,
			YielderIdx: dec.YielderIdx, Depth: dec.Depth,
		})
		if c.cfg.Bus.Active() {
			c.cfg.Bus.Publish(obs.AvoidanceYield{
				SigID: dec.Sig.ID, TID: t.ID, LID: l.ID, Depth: dec.Depth,
			})
		}
		return dec
	}

	if dec.Sig != nil && c.cfg.IgnoreDecisions {
		c.stats.Ignored.Add(1)
		dec = Decision{Go: true, Sig: dec.Sig, Depth: dec.Depth}
	} else {
		dec = Decision{Go: true}
	}

	// GO: commit the allow edge.
	t.pendingAllow = c.addEntry(t, l, in, false)
	c.unlockScope(full, l.shard, ts, t.Slot)
	c.stats.Gos.Add(1)
	c.bufEmit(t, event.Go, l.ID, in)
	return dec
}

// lockScope acquires the guard scope of a request: every shard in full
// mode, the lock/thread shard pair otherwise.
func (c *Cache) lockScope(full bool, lshard, tshard, slot int) {
	if full {
		c.lockAll(slot)
	} else {
		c.lockPair(lshard, tshard, slot)
	}
}

func (c *Cache) unlockScope(full bool, lshard, tshard, slot int) {
	if full {
		c.unlockAll(slot)
	} else {
		c.unlockPair(lshard, tshard, slot)
	}
}

// Acquired converts t's outstanding allow edge on l into a hold edge.
func (c *Cache) Acquired(t *ThreadState, l *LockState) {
	c.stats.Acquired.Add(1)
	c.stats.GuardedAcquired.Add(1)
	t.liveHolds.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID})
		return
	}
	ts := c.tShard(t)
	c.lockPair(l.shard, ts, t.Slot)
	e := t.pendingAllow
	var in *stack.Interned
	if e != nil && e.l == l {
		e.held = true
		t.pendingAllow = nil
		t.holds = append(t.holds, e)
		in = e.st
	}
	l.owner = t
	c.unlockPair(l.shard, ts, t.Slot)
	c.bufEmit(t, event.Acquired, l.ID, in)
}

// AcquiredShared converts t's outstanding allow edge on l into a shared
// ("reader-held") hold edge: the entry joins the Allowed sets like any
// hold — so reader call sites participate in signature instances — but
// exclusive ownership is not recorded, since any number of threads may
// hold l shared simultaneously. Used by the RWMutex reader path.
func (c *Cache) AcquiredShared(t *ThreadState, l *LockState) {
	c.stats.Acquired.Add(1)
	c.stats.GuardedAcquired.Add(1)
	c.stats.SharedAcquired.Add(1)
	t.liveHolds.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID})
		return
	}
	ts := c.tShard(t)
	c.lockPair(l.shard, ts, t.Slot)
	e := t.pendingAllow
	var in *stack.Interned
	if e != nil && e.l == l {
		e.held = true
		t.pendingAllow = nil
		t.holds = append(t.holds, e)
		in = e.st
	}
	c.unlockPair(l.shard, ts, t.Slot)
	c.bufEmit(t, event.Acquired, l.ID, in)
}

// ReentrantAcquired records a reentrant acquisition (no decision needed:
// the thread already owns the lock, so it cannot block). It reports
// whether the hold took the lock-free fast tier — a provably safe stack
// needs no Allowed-set entry — in which case the caller must log the hold
// via NoteFastHold (under whatever state proves the hold is still live)
// and release it through ReleaseAny.
func (c *Cache) ReentrantAcquired(t *ThreadState, l *LockState, in *stack.Interned) bool {
	c.stats.Reentries.Add(1)
	t.liveHolds.Add(1)
	if c.fastOK && c.classifySafe(in) {
		c.stats.FastGos.Add(1)
		c.bufEmit(t, event.Acquired, l.ID, in)
		return true
	}
	if c.cfg.Mode != ModeInstrument {
		ts := c.tShard(t)
		c.lockPair(l.shard, ts, t.Slot)
		e := c.addEntry(t, l, in, true)
		t.holds = append(t.holds, e)
		c.unlockPair(l.shard, ts, t.Slot)
	}
	c.bufEmit(t, event.Acquired, l.ID, in)
	return false
}

// Release removes t's most recent hold edge on l and wakes every thread
// yielding on a cause binding that involves l. The caller must emit the
// actual unlock strictly after Release returns (§5.2's event ordering).
func (c *Cache) Release(t *ThreadState, l *LockState) {
	c.stats.Releases.Add(1)
	t.liveHolds.Add(-1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Release, TID: t.ID, LID: l.ID})
		return
	}
	ts := c.tShard(t)
	c.lockPair(l.shard, ts, t.Slot)
	for i := len(t.holds) - 1; i >= 0; i-- {
		if t.holds[i].l == l {
			c.removeEntry(t.holds[i])
			t.holds = append(t.holds[:i], t.holds[i+1:]...)
			break
		}
	}
	stillHolds := false
	for _, h := range t.holds {
		if h.l == l {
			stillHolds = true
			break
		}
	}
	if !stillHolds && l.owner == t {
		l.owner = nil
	}
	var toWake []*ThreadState
	if len(l.waiters) > 0 {
		toWake = make([]*ThreadState, 0, len(l.waiters))
		for _, w := range l.waiters {
			toWake = append(toWake, w)
		}
	}
	c.unlockPair(l.shard, ts, t.Slot)
	c.bufEmit(t, event.Release, l.ID, nil)
	for _, w := range toWake {
		wake(w)
	}
}

// Cancel rolls back t's outstanding allow edge on l (trylock failure,
// timed-lock timeout, or recovery abort), the pthreads-port cancel event
// of §6.
func (c *Cache) Cancel(t *ThreadState, l *LockState) {
	c.stats.Cancels.Add(1)
	c.flushBuf(t)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Cancel, TID: t.ID, LID: l.ID})
		return
	}
	// Decision scope: clearYieldRegs may touch waiter sets of cause locks
	// on any shard.
	c.lockAll(t.Slot)
	clearYieldRegs(t)
	if e := t.pendingAllow; e != nil && e.l == l {
		c.removeEntry(e)
		t.pendingAllow = nil
	}
	var toWake []*ThreadState
	if len(l.waiters) > 0 {
		toWake = make([]*ThreadState, 0, len(l.waiters))
		for _, w := range l.waiters {
			toWake = append(toWake, w)
		}
	}
	c.unlockAll(t.Slot)
	c.emit(event.Event{Kind: event.Cancel, TID: t.ID, LID: l.ID})
	for _, w := range toWake {
		wake(w)
	}
}

// ThreadExit deregisters a thread.
func (c *Cache) ThreadExit(t *ThreadState) {
	if c.cfg.Mode != ModeInstrument {
		c.lockAll(t.Slot)
		clearYieldRegs(t)
		if t.pendingAllow != nil {
			c.removeEntry(t.pendingAllow)
			t.pendingAllow = nil
		}
		for _, h := range t.holds {
			c.removeEntry(h)
			if h.l.owner == t {
				h.l.owner = nil
			}
		}
		t.holds = nil
		c.unlockAll(t.Slot)
	}
	t.fhMu.Lock()
	t.fastHolds = nil
	t.fhMu.Unlock()
	c.threadsMu.Lock()
	if c.threads[t.ID] == t {
		delete(c.threads, t.ID)
	}
	c.threadsMu.Unlock()
	t.liveHolds.Store(0)
	// Flush before the exit event: the monitor prunes this thread's RAG
	// node on ThreadExit, so its bookkeeping must all land first.
	c.flushBuf(t)
	c.emit(event.Event{Kind: event.ThreadExit, TID: t.ID})
}

// ThreadQuiescent reports whether t has no avoidance-side footprint: no
// allow edge, no guarded holds, no yield registrations. Together with a
// zero LiveHolds count (which also covers fast-path holds) this is the
// runtime's proof that an idle implicit thread can be pruned.
func (c *Cache) ThreadQuiescent(t *ThreadState) bool {
	if c.cfg.Mode == ModeInstrument {
		return true
	}
	ts := c.tShard(t)
	c.guards[ts].Lock(t.Slot)
	quiet := t.pendingAllow == nil && len(t.holds) == 0 &&
		len(t.yieldRegs) == 0 && t.yieldSig == nil
	c.guards[ts].Unlock(t.Slot)
	return quiet
}

// ForceGo releases t from its yield: its next guarded Request proceeds
// without matching. Used by the monitor to break starvation (§3) and by
// the max-yield bound (§5.7). Fast-path requests leave the flag armed
// (they never yield, so consuming it there would waive nothing).
func (c *Cache) ForceGo(t *ThreadState) {
	ts := c.tShard(t)
	c.guards[ts].Lock(t.Slot)
	t.forcedGo = true
	c.guards[ts].Unlock(t.Slot)
	wake(t)
}

// WithGuard runs fn inside the full decision scope (every guard shard
// held). The mutable per-signature fields (counters, calibration state,
// disabled adoption) are owned by this guard, so history snapshots taken
// for store pushes and store merges folded into the live history must run
// under it. slot identifies the caller for the filter guard: concurrent
// callers need distinct slots (the runtime reserves one for the monitor
// and one for the sync domain).
func (c *Cache) WithGuard(slot int, fn func()) {
	c.lockAll(slot)
	defer c.unlockAll(slot)
	fn()
}

// NoteAbort records that t's yield on sig timed out (max yield duration);
// after autoDisableAfter such aborts the signature is disabled
// automatically (§5.7). A zero threshold disables auto-disabling.
func (c *Cache) NoteAbort(t *ThreadState, sigID string, autoDisableAfter uint64) {
	c.stats.Aborts.Add(1)
	// Decision scope: signature fields are shared with Request matching.
	c.lockAll(t.Slot)
	t.forcedGo = true
	if sig := c.hist.Get(sigID); sig != nil {
		sig.AbortCount++
		if autoDisableAfter > 0 && sig.AbortCount >= autoDisableAfter && !sig.Disabled {
			// Through the history so the flip carries a revision bump and
			// a version change — it must propagate to the fleet (and
			// invalidate fast-path markers) like any other disable.
			c.hist.SetDisabled(sigID, true)
		}
	}
	c.unlockAll(t.Slot)
}

// RecordOutcome applies a retrospective FP/TP verdict for an avoidance of
// sig performed at depth with the given instance (yielder stack +
// bindings). Called by the monitor when an fpdetect episode concludes.
func (c *Cache) RecordOutcome(sigID string, depth int, fp bool, yielderStack *stack.Interned, yielderIdx int, bindings []BindingRecord) {
	sig := c.hist.Get(sigID)
	if sig == nil {
		return
	}
	c.lockAll(0)
	if fp {
		sig.FPCount++
	} else {
		sig.TPCount++
	}
	wouldAvoidAt := func(d int) bool {
		if yielderStack == nil {
			return false
		}
		if yielderIdx < 0 || yielderIdx >= len(sig.Stacks) {
			return false
		}
		if !yielderStack.S.MatchesAtDepth(sig.Stacks[yielderIdx], d) {
			return false
		}
		for _, b := range bindings {
			if b.Stack == nil || b.SigIdx < 0 || b.SigIdx >= len(sig.Stacks) {
				return false
			}
			if !b.Stack.S.MatchesAtDepth(sig.Stacks[b.SigIdx], d) {
				return false
			}
		}
		return true
	}
	sig.Calib.RecordOutcome(depth, fp, wouldAvoidAt)
	// §8: after a completed (re)calibration, a signature whose best
	// depth still shows a 100% FP rate is obsolete — every avoidance it
	// triggers is spurious (e.g. the underlying bug was fixed). Discard.
	if c.cfg.DiscardObsolete && !sig.Calib.Active() && sig.Calib.Chosen > 0 {
		chosen := sig.Calib.Chosen
		if sig.Calib.Avoids[chosen-1] >= uint64(sig.Calib.NA) && sig.Calib.FPRate(chosen) >= 1 {
			c.hist.Remove(sig.ID)
		}
	}
	c.unlockAll(0)
}

// BindingRecord is the durable form of a Binding, kept by the monitor for
// episode bookkeeping after the live states may have moved on.
type BindingRecord struct {
	TID    int32
	LID    uint64
	Stack  *stack.Interned
	SigIdx int
}

// LastAvoided returns the most recently avoided signature (nil if none).
func (c *Cache) LastAvoided() *signature.Signature {
	return c.lastAvoided.Load()
}

// HolderOf returns the cache's view of l's owner thread ID (0 if free),
// for diagnostics.
func (c *Cache) HolderOf(l *LockState) int32 {
	c.guards[l.shard].Lock(0)
	defer c.guards[l.shard].Unlock(0)
	if l.owner == nil {
		return 0
	}
	return l.owner.ID
}

func wake(t *ThreadState) {
	select {
	case t.Wake <- struct{}{}:
	default:
	}
}
