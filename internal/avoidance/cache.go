// Package avoidance implements the hot-path half of Dimmunix: the RAG
// "cache" consulted and updated by the request/acquired/release
// instrumentation (§5.4, §5.6).
//
// The cache maintains, per interned call stack S, the Allowed set: the
// threads permitted to wait for locks while having call stack S, including
// the threads that acquired and still hold those locks. A lock request is
// allowed (GO) unless, together with the current allow/hold entries, it
// would instantiate a signature from the history; then the thread yields
// and records yield-cause bindings so it can be woken when any binding
// breaks.
//
// Synchronization: a single pluggable guard (sync.Mutex, TAS spin lock, or
// the generalized Peterson filter lock of §5.6) protects every mutable
// structure here, including the mutable fields of *signature.Signature.
// Event emission to the monitor is lock-free (MPSC queue) and happens
// outside or inside the guard without ordering hazards: per-producer FIFO
// plus the mutex-token happens-before edge give the §5.2 partial order.
package avoidance

import (
	"sync/atomic"

	"dimmunix/internal/event"
	"dimmunix/internal/peterson"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// Mode selects how much of the avoidance path runs; the Fig 8 overhead
// breakdown toggles these.
type Mode uint8

const (
	// ModeInstrument captures stacks and emits events only.
	ModeInstrument Mode = iota
	// ModeDataStructs additionally maintains the Allowed sets and
	// holder bookkeeping, but never matches signatures.
	ModeDataStructs
	// ModeFull runs complete avoidance.
	ModeFull
)

// ThreadState is the cache's per-thread node. One exists per registered
// application thread; they are preallocated-friendly (dense slots).
type ThreadState struct {
	ID   int32
	Name string
	Slot int // guard slot for the filter lock

	// Priority influences starvation-break victim selection (§8 notes
	// priority support "can easily be added"; this is that addition).
	// Higher priority = freed first. Default 0.
	Priority atomic.Int32

	// Wake is signaled (buffered, capacity 1) whenever a yield cause of
	// this thread may have broken.
	Wake chan struct{}

	// Everything below is protected by the cache guard.
	forcedGo     bool
	pendingAllow *entry       // the outstanding allow edge, if any
	holds        []*entry     // hold entries in acquisition order
	yieldRegs    []*LockState // locks whose waiter sets contain this thread
	yieldSig     *signature.Signature
}

// LockState is the cache's per-lock node, embedded in the public Mutex.
type LockState struct {
	ID uint64

	// Protected by the cache guard.
	owner   *ThreadState // nil when free (ownership per cache view)
	waiters map[int32]*ThreadState
}

// entry is one allow or hold edge in the cache: thread T waits for / holds
// lock L having had call stack St.
type entry struct {
	t    *ThreadState
	l    *LockState
	st   *stack.Interned
	held bool
	// position of this entry in its stackState.entries slice, for O(1)
	// swap-removal.
	ssIdx int
}

// stackState is the per-interned-stack node carrying the Allowed set.
type stackState struct {
	in      *stack.Interned
	entries []*entry
}

// Decision is the outcome of Request.
type Decision struct {
	// Go is true when the thread may proceed to block on the lock.
	Go bool
	// Sig is the matched signature on YIELD (also set when a yield was
	// suppressed by ignore-decisions mode).
	Sig *signature.Signature
	// Depth is the matching depth in force when the instance was found.
	Depth int
	// Causes are the (thread, lock, stack) bindings of the instance,
	// excluding the requesting thread's own tentative binding.
	Causes []Binding
	// YielderIdx is the signature stack index covered by the requesting
	// thread's own stack.
	YielderIdx int
}

// Binding is one element of a signature instance.
type Binding struct {
	T      *ThreadState
	L      *LockState
	St     *stack.Interned
	SigIdx int // index of the signature stack this binding covers
}

// Config parametrizes a Cache.
type Config struct {
	// Guard selects the mutual-exclusion primitive for the shared
	// structures; nil selects sync.Mutex.
	Guard peterson.Guard
	// Mode selects the instrumentation level.
	Mode Mode
	// IgnoreDecisions turns YIELD into GO (Table 1's control run).
	IgnoreDecisions bool
	// ProbeDepth, when > 0, re-checks every matched instance at this
	// deeper depth and counts failures in Stats.ProbeFPs (§7.3's
	// false-positive accounting).
	ProbeDepth int
	// DiscardObsolete removes a signature from the history when a
	// completed calibration ladder shows a 100% false-positive rate at
	// its best depth — §8: such signatures are obsolete (e.g. the bug
	// was fixed by an upgrade).
	DiscardObsolete bool
	// MaxThreads sizes the preallocated thread slot table.
	MaxThreads int
}

// Cache is the avoidance-side state of one Dimmunix runtime.
type Cache struct {
	cfg      Config
	guard    peterson.Guard
	interner *stack.Interner
	hist     *signature.History
	emit     func(event.Event)
	stats    *Stats

	// Protected by guard.
	stackStates []*stackState // indexed by interned stack ID
	matchers    []*sigMatcher
	byStack     map[uint32][]matchRef // reverse index: stack -> signature positions
	histVersion uint64
	linkedUpTo  int  // interned stacks below this ID are linked into matchers
	calibrating bool // some signature's depth ladder is running
	indexDirty  bool // reverse index needs a rebuild

	nextLockID atomic.Uint64

	// lastAvoided remembers the most recently avoided signature — the
	// §5.7 "disable the last avoided signature" flow (the paper's
	// pop-up-blocker analogy).
	lastAvoided atomic.Pointer[signature.Signature]
}

// NewCache builds a cache over the given history. emit must be non-nil and
// is invoked for every instrumentation event.
func NewCache(cfg Config, interner *stack.Interner, hist *signature.History, stats *Stats, emit func(event.Event)) *Cache {
	if cfg.MaxThreads <= 0 {
		cfg.MaxThreads = 1024
	}
	g := cfg.Guard
	if g == nil {
		g = peterson.NewMutex()
	}
	return &Cache{
		cfg:      cfg,
		guard:    g,
		interner: interner,
		hist:     hist,
		emit:     emit,
		stats:    stats,
		byStack:  make(map[uint32][]matchRef),
	}
}

// Stats returns the cache's counters.
func (c *Cache) Stats() *Stats { return c.stats }

// NewThread creates the cache node for a registered thread.
func (c *Cache) NewThread(id int32, slot int, name string) *ThreadState {
	return &ThreadState{
		ID:   id,
		Name: name,
		Slot: slot,
		Wake: make(chan struct{}, 1),
	}
}

// NewLock creates a lock node with a fresh ID.
func (c *Cache) NewLock() *LockState {
	return &LockState{ID: c.nextLockID.Add(1)}
}

// Intern exposes the runtime's stack interner.
func (c *Cache) Intern(s stack.Stack) *stack.Interned { return c.interner.Intern(s) }

func (c *Cache) stackState(in *stack.Interned) *stackState {
	for int(in.ID) >= len(c.stackStates) {
		c.stackStates = append(c.stackStates, nil)
	}
	ss := c.stackStates[in.ID]
	if ss == nil {
		ss = &stackState{in: in}
		c.stackStates[in.ID] = ss
	}
	return ss
}

func (c *Cache) addEntry(t *ThreadState, l *LockState, in *stack.Interned, held bool) *entry {
	ss := c.stackState(in)
	e := &entry{t: t, l: l, st: in, held: held, ssIdx: len(ss.entries)}
	ss.entries = append(ss.entries, e)
	return e
}

func (c *Cache) removeEntry(e *entry) {
	ss := c.stackStates[e.st.ID]
	last := len(ss.entries) - 1
	ss.entries[e.ssIdx] = ss.entries[last]
	ss.entries[e.ssIdx].ssIdx = e.ssIdx
	ss.entries = ss.entries[:last]
	e.ssIdx = -1
}

// clearYieldRegs removes t from every waiter set it registered in.
func clearYieldRegs(t *ThreadState) {
	for _, l := range t.yieldRegs {
		delete(l.waiters, t.ID)
	}
	t.yieldRegs = t.yieldRegs[:0]
	t.yieldSig = nil
}

// Request implements the §5.4 request method. It returns GO when it is
// safe (w.r.t. the history) for t to block waiting for l, or YIELD with
// the matched signature instance otherwise.
func (c *Cache) Request(t *ThreadState, l *LockState, in *stack.Interned) Decision {
	c.stats.Requests.Add(1)
	c.emit(event.Event{Kind: event.Request, TID: t.ID, LID: l.ID, Stack: in})

	if c.cfg.Mode == ModeInstrument {
		c.stats.Gos.Add(1)
		c.emit(event.Event{Kind: event.Go, TID: t.ID, LID: l.ID, Stack: in})
		return Decision{Go: true}
	}

	c.guard.Lock(t.Slot)
	clearYieldRegs(t)

	var dec Decision
	if c.cfg.Mode == ModeFull {
		c.refreshIndex()
		if t.forcedGo {
			t.forcedGo = false
			c.stats.ForcedGos.Add(1)
		} else {
			dec = c.findInstance(t, l, in)
		}
	}

	if dec.Sig != nil && !c.cfg.IgnoreDecisions {
		// YIELD: flip the tentative allow into a request edge and
		// register for wakeups on every cause lock.
		dec.Sig.AvoidCount++
		if dec.Sig.Calib.RecordAvoidance() {
			// Ladder completed: adopt the chosen depth.
			dec.Sig.Depth = dec.Sig.Calib.Chosen
		}
		// Rung advances and ladder completion both change the effective
		// depth; keep the match index coherent immediately.
		c.invalidateMatcher(dec.Sig.ID)
		if c.cfg.ProbeDepth > 0 && !c.matchesAtDepth(dec, t, l, in, c.cfg.ProbeDepth) {
			c.stats.ProbeFPs.Add(1)
		}
		t.yieldSig = dec.Sig
		causes := make([]event.Cause, 0, len(dec.Causes))
		for _, b := range dec.Causes {
			if b.L.waiters == nil {
				b.L.waiters = make(map[int32]*ThreadState)
			}
			b.L.waiters[t.ID] = t
			t.yieldRegs = append(t.yieldRegs, b.L)
			causes = append(causes, event.Cause{TID: b.T.ID, LID: b.L.ID, Stack: b.St, SigIdx: b.SigIdx})
		}
		c.guard.Unlock(t.Slot)
		c.lastAvoided.Store(dec.Sig)
		c.stats.Yields.Add(1)
		c.emit(event.Event{
			Kind: event.Yield, TID: t.ID, LID: l.ID, Stack: in,
			Causes: causes, SigID: dec.Sig.ID,
			YielderIdx: dec.YielderIdx, Depth: dec.Depth,
		})
		return dec
	}

	if dec.Sig != nil && c.cfg.IgnoreDecisions {
		c.stats.Ignored.Add(1)
		dec = Decision{Go: true, Sig: dec.Sig, Depth: dec.Depth}
	} else {
		dec = Decision{Go: true}
	}

	// GO: commit the allow edge.
	t.pendingAllow = c.addEntry(t, l, in, false)
	c.guard.Unlock(t.Slot)
	c.stats.Gos.Add(1)
	c.emit(event.Event{Kind: event.Go, TID: t.ID, LID: l.ID, Stack: in})
	return dec
}

// Acquired converts t's outstanding allow edge on l into a hold edge.
func (c *Cache) Acquired(t *ThreadState, l *LockState) {
	c.stats.Acquired.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID})
		return
	}
	c.guard.Lock(t.Slot)
	e := t.pendingAllow
	var in *stack.Interned
	if e != nil && e.l == l {
		e.held = true
		t.pendingAllow = nil
		t.holds = append(t.holds, e)
		in = e.st
	}
	l.owner = t
	c.guard.Unlock(t.Slot)
	c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID, Stack: in})
}

// AcquiredShared converts t's outstanding allow edge on l into a shared
// ("reader-held") hold edge: the entry joins the Allowed sets like any
// hold — so reader call sites participate in signature instances — but
// exclusive ownership is not recorded, since any number of threads may
// hold l shared simultaneously. Used by the RWMutex reader path.
func (c *Cache) AcquiredShared(t *ThreadState, l *LockState) {
	c.stats.Acquired.Add(1)
	c.stats.SharedAcquired.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID})
		return
	}
	c.guard.Lock(t.Slot)
	e := t.pendingAllow
	var in *stack.Interned
	if e != nil && e.l == l {
		e.held = true
		t.pendingAllow = nil
		t.holds = append(t.holds, e)
		in = e.st
	}
	c.guard.Unlock(t.Slot)
	c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID, Stack: in})
}

// ReentrantAcquired records a reentrant acquisition (no decision needed:
// the thread already owns the lock, so it cannot block).
func (c *Cache) ReentrantAcquired(t *ThreadState, l *LockState, in *stack.Interned) {
	c.stats.Reentries.Add(1)
	if c.cfg.Mode != ModeInstrument {
		c.guard.Lock(t.Slot)
		e := c.addEntry(t, l, in, true)
		t.holds = append(t.holds, e)
		c.guard.Unlock(t.Slot)
	}
	c.emit(event.Event{Kind: event.Acquired, TID: t.ID, LID: l.ID, Stack: in})
}

// Release removes t's most recent hold edge on l and wakes every thread
// yielding on a cause binding that involves l. The caller must emit the
// actual unlock strictly after Release returns (§5.2's event ordering).
func (c *Cache) Release(t *ThreadState, l *LockState) {
	c.stats.Releases.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Release, TID: t.ID, LID: l.ID})
		return
	}
	c.guard.Lock(t.Slot)
	for i := len(t.holds) - 1; i >= 0; i-- {
		if t.holds[i].l == l {
			c.removeEntry(t.holds[i])
			t.holds = append(t.holds[:i], t.holds[i+1:]...)
			break
		}
	}
	stillHolds := false
	for _, h := range t.holds {
		if h.l == l {
			stillHolds = true
			break
		}
	}
	if !stillHolds && l.owner == t {
		l.owner = nil
	}
	var toWake []*ThreadState
	if len(l.waiters) > 0 {
		toWake = make([]*ThreadState, 0, len(l.waiters))
		for _, w := range l.waiters {
			toWake = append(toWake, w)
		}
	}
	c.guard.Unlock(t.Slot)
	c.emit(event.Event{Kind: event.Release, TID: t.ID, LID: l.ID})
	for _, w := range toWake {
		wake(w)
	}
}

// Cancel rolls back t's outstanding allow edge on l (trylock failure,
// timed-lock timeout, or recovery abort), the pthreads-port cancel event
// of §6.
func (c *Cache) Cancel(t *ThreadState, l *LockState) {
	c.stats.Cancels.Add(1)
	if c.cfg.Mode == ModeInstrument {
		c.emit(event.Event{Kind: event.Cancel, TID: t.ID, LID: l.ID})
		return
	}
	c.guard.Lock(t.Slot)
	clearYieldRegs(t)
	if e := t.pendingAllow; e != nil && e.l == l {
		c.removeEntry(e)
		t.pendingAllow = nil
	}
	var toWake []*ThreadState
	if len(l.waiters) > 0 {
		toWake = make([]*ThreadState, 0, len(l.waiters))
		for _, w := range l.waiters {
			toWake = append(toWake, w)
		}
	}
	c.guard.Unlock(t.Slot)
	c.emit(event.Event{Kind: event.Cancel, TID: t.ID, LID: l.ID})
	for _, w := range toWake {
		wake(w)
	}
}

// ThreadExit deregisters a thread.
func (c *Cache) ThreadExit(t *ThreadState) {
	if c.cfg.Mode != ModeInstrument {
		c.guard.Lock(t.Slot)
		clearYieldRegs(t)
		if t.pendingAllow != nil {
			c.removeEntry(t.pendingAllow)
			t.pendingAllow = nil
		}
		for _, h := range t.holds {
			c.removeEntry(h)
			if h.l.owner == t {
				h.l.owner = nil
			}
		}
		t.holds = nil
		c.guard.Unlock(t.Slot)
	}
	c.emit(event.Event{Kind: event.ThreadExit, TID: t.ID})
}

// ForceGo releases t from its yield: its next Request proceeds without
// matching. Used by the monitor to break starvation (§3) and by the
// max-yield bound (§5.7).
func (c *Cache) ForceGo(t *ThreadState) {
	c.guard.Lock(t.Slot)
	t.forcedGo = true
	c.guard.Unlock(t.Slot)
	wake(t)
}

// NoteAbort records that t's yield on sig timed out (max yield duration);
// after autoDisableAfter such aborts the signature is disabled
// automatically (§5.7). A zero threshold disables auto-disabling.
func (c *Cache) NoteAbort(t *ThreadState, sigID string, autoDisableAfter uint64) {
	c.stats.Aborts.Add(1)
	c.guard.Lock(t.Slot)
	t.forcedGo = true
	if sig := c.hist.Get(sigID); sig != nil {
		sig.AbortCount++
		if autoDisableAfter > 0 && sig.AbortCount >= autoDisableAfter && !sig.Disabled {
			sig.Disabled = true
		}
	}
	c.guard.Unlock(t.Slot)
}

// RecordOutcome applies a retrospective FP/TP verdict for an avoidance of
// sig performed at depth with the given instance (yielder stack +
// bindings). Called by the monitor when an fpdetect episode concludes.
func (c *Cache) RecordOutcome(sigID string, depth int, fp bool, yielderStack *stack.Interned, yielderIdx int, bindings []BindingRecord) {
	sig := c.hist.Get(sigID)
	if sig == nil {
		return
	}
	c.guard.Lock(0)
	if fp {
		sig.FPCount++
	} else {
		sig.TPCount++
	}
	wouldAvoidAt := func(d int) bool {
		if yielderStack == nil {
			return false
		}
		if yielderIdx < 0 || yielderIdx >= len(sig.Stacks) {
			return false
		}
		if !yielderStack.S.MatchesAtDepth(sig.Stacks[yielderIdx], d) {
			return false
		}
		for _, b := range bindings {
			if b.Stack == nil || b.SigIdx < 0 || b.SigIdx >= len(sig.Stacks) {
				return false
			}
			if !b.Stack.S.MatchesAtDepth(sig.Stacks[b.SigIdx], d) {
				return false
			}
		}
		return true
	}
	sig.Calib.RecordOutcome(depth, fp, wouldAvoidAt)
	// §8: after a completed (re)calibration, a signature whose best
	// depth still shows a 100% FP rate is obsolete — every avoidance it
	// triggers is spurious (e.g. the underlying bug was fixed). Discard.
	if c.cfg.DiscardObsolete && !sig.Calib.Active() && sig.Calib.Chosen > 0 {
		chosen := sig.Calib.Chosen
		if sig.Calib.Avoids[chosen-1] >= uint64(sig.Calib.NA) && sig.Calib.FPRate(chosen) >= 1 {
			c.hist.Remove(sig.ID)
		}
	}
	c.guard.Unlock(0)
}

// BindingRecord is the durable form of a Binding, kept by the monitor for
// episode bookkeeping after the live states may have moved on.
type BindingRecord struct {
	TID    int32
	LID    uint64
	Stack  *stack.Interned
	SigIdx int
}

// LastAvoided returns the most recently avoided signature (nil if none).
func (c *Cache) LastAvoided() *signature.Signature {
	return c.lastAvoided.Load()
}

// HolderOf returns the cache's view of l's owner thread ID (0 if free),
// for diagnostics.
func (c *Cache) HolderOf(l *LockState) int32 {
	c.guard.Lock(0)
	defer c.guard.Unlock(0)
	if l.owner == nil {
		return 0
	}
	return l.owner.ID
}

func wake(t *ThreadState) {
	select {
	case t.Wake <- struct{}{}:
	default:
	}
}
