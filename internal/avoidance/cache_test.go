package avoidance

import (
	"math/rand"
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

type env struct {
	c      *Cache
	hist   *signature.History
	in     *stack.Interner
	events []event.Event
}

func newEnv(cfg Config) *env {
	e := &env{
		hist: signature.NewHistory(),
		in:   stack.NewInterner(),
	}
	e.c = NewCache(cfg, e.in, e.hist, &Stats{}, func(ev event.Event) {
		e.events = append(e.events, ev)
	})
	return e
}

// note: the event callback appends without locking, so tests drive the
// cache single-threadedly except where stated.

func (e *env) stk(frames ...string) *stack.Interned {
	s := make(stack.Stack, len(frames))
	for i, f := range frames {
		s[i] = stack.Frame{Func: f, File: "t.go", Line: i + 1}
	}
	return e.in.Intern(s)
}

func (e *env) addSig(depth int, stacks ...*stack.Interned) *signature.Signature {
	raw := make([]stack.Stack, len(stacks))
	for i, s := range stacks {
		raw[i] = s.S
	}
	sig := signature.New(signature.Deadlock, raw, depth)
	e.hist.Add(sig)
	return sig
}

func TestEmptyHistoryAlwaysGo(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	th := e.c.NewThread(1, 1, "t1")
	l := e.c.NewLock()
	s := e.stk("lock", "update", "main")
	for i := 0; i < 5; i++ {
		dec := e.c.Request(th, l, s)
		if !dec.Go {
			t.Fatal("empty history must always GO (§5.7)")
		}
		e.c.Acquired(th, l)
		e.c.Release(th, l)
	}
	if e.c.Stats().Yields.Load() != 0 {
		t.Error("no yields expected")
	}
}

// setupPaperExample builds the §4 example: signature {[s1,s3],[s2,s3]},
// thread Tk acquired lock B via [s2,s3]; thread Tl now requests A via
// [s1,s3]. Dimmunix must force Tl to yield.
func setupPaperExample(t *testing.T, cfg Config) (*env, *ThreadState, *LockState, *stack.Interned, Decision) {
	t.Helper()
	e := newEnv(cfg)
	s13 := e.stk("lock", "update:s3", "main:s1")
	s23 := e.stk("lock", "update:s3", "main:s2")
	e.addSig(3, s13, s23)

	tk := e.c.NewThread(1, 1, "Tk")
	tl := e.c.NewThread(2, 2, "Tl")
	lockB := e.c.NewLock()
	lockA := e.c.NewLock()

	// Tk takes B via [s2,s3].
	if dec := e.c.Request(tk, lockB, s23); !dec.Go {
		t.Fatal("Tk alone must GO")
	}
	e.c.Acquired(tk, lockB)

	// Tl requests A via [s1,s3].
	dec := e.c.Request(tl, lockA, s13)
	return e, tl, lockA, s13, dec
}

func TestPaperExampleYield(t *testing.T) {
	e, _, _, _, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("Tl must yield: signature instance present")
	}
	if dec.Sig == nil || len(dec.Causes) != 1 {
		t.Fatalf("decision = %+v", dec)
	}
	if dec.Causes[0].T.ID != 1 {
		t.Errorf("cause thread = %d, want Tk", dec.Causes[0].T.ID)
	}
	if got := e.c.Stats().Yields.Load(); got != 1 {
		t.Errorf("yields = %d", got)
	}
	// A yield event with causes must have been emitted.
	last := e.events[len(e.events)-1]
	if last.Kind != event.Yield || len(last.Causes) != 1 || last.SigID != dec.Sig.ID {
		t.Errorf("last event = %+v", last)
	}
}

func TestPaperExampleProceedsAfterRelease(t *testing.T) {
	e, tl, lockA, s13, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("precondition: yield")
	}
	// Tk releases B: Tl must be woken and its re-request must GO.
	tk := dec.Causes[0].T
	lockB := dec.Causes[0].L
	e.c.Release(tk, lockB)
	select {
	case <-tl.Wake:
	default:
		t.Fatal("release of the cause lock must wake the yielded thread")
	}
	if dec := e.c.Request(tl, lockA, s13); !dec.Go {
		t.Fatal("after the instance broke, Tl must GO")
	}
}

func TestNoYieldOnNonDeadlockPattern(t *testing.T) {
	// §4: pattern {[s1,s3],[s1,s3]} does not match signature
	// {[s1,s3],[s2,s3]} — Dimmunix must not serialize it (unlike gate
	// locks).
	e := newEnv(Config{Mode: ModeFull})
	s13 := e.stk("lock", "update:s3", "main:s1")
	s23 := e.stk("lock", "update:s3", "main:s2")
	e.addSig(3, s13, s23)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, a, s13); !dec.Go {
		t.Fatal("T1 must GO")
	}
	e.c.Acquired(t1, a)
	if dec := e.c.Request(t2, b, s13); !dec.Go {
		t.Fatal("both threads on [s1,s3]: not the deadlock pattern, must GO")
	}
}

func TestDistinctLocksRequired(t *testing.T) {
	// The signature instance needs distinct locks: a thread holding the
	// same lock the requester wants cannot bind a second tuple on it.
	e := newEnv(Config{Mode: ModeFull})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	l := e.c.NewLock()

	if dec := e.c.Request(t1, l, sb); !dec.Go {
		t.Fatal("T1 must GO")
	}
	e.c.Acquired(t1, l)
	// T2 requests the SAME lock with sa: tuples would share lock l.
	if dec := e.c.Request(t2, l, sa); !dec.Go {
		t.Fatal("same lock cannot instantiate the signature")
	}
}

func TestDistinctThreadsRequired(t *testing.T) {
	// One thread holding lock B with [sb] then requesting A with [sa]
	// cannot instantiate a two-stack signature by itself.
	e := newEnv(Config{Mode: ModeFull})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)

	t1 := e.c.NewThread(1, 1, "T1")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, b, sb); !dec.Go {
		t.Fatal("GO expected")
	}
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t1, a, sa); !dec.Go {
		t.Fatal("single thread must not match a two-thread signature")
	}
}

func TestAllowEdgeCountsTowardInstance(t *testing.T) {
	// §5.4: allow edges represent a commitment to wait and count in
	// instantiation checks, not just hold edges.
	e := newEnv(Config{Mode: ModeFull})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	// T1 is ALLOWED on b (not yet acquired).
	if dec := e.c.Request(t1, b, sb); !dec.Go {
		t.Fatal("GO expected")
	}
	// T2 requests a with sa: instance {(T1,b,sb),(T2,a,sa)} exists.
	if dec := e.c.Request(t2, a, sa); dec.Go {
		t.Fatal("allow edge must count toward instantiation")
	}
}

func TestMatchingDepthControlsGenerality(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	// Signature recorded from stacks whose outer frames differ from the
	// runtime stacks below.
	sigA := e.stk("lock", "update", "callerX")
	sigB := e.stk("lock", "update2", "callerY")
	e.addSig(2, sigA, sigB) // depth 2: only innermost two frames matter

	runA := e.stk("lock", "update", "callerZ")
	runB := e.stk("lock", "update2", "callerW")

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, b, runB); !dec.Go {
		t.Fatal("GO expected")
	}
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t2, a, runA); dec.Go {
		t.Fatal("depth-2 match must trigger despite differing callers")
	}
}

func TestDeeperDepthRejectsDifferingCallers(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	sigA := e.stk("lock", "update", "callerX")
	sigB := e.stk("lock", "update2", "callerY")
	e.addSig(3, sigA, sigB) // full-depth matching

	runA := e.stk("lock", "update", "callerZ") // differs at frame 3
	runB := e.stk("lock", "update2", "callerY")

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, b, runB); !dec.Go {
		t.Fatal("GO expected")
	}
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t2, a, runA); !dec.Go {
		t.Fatal("depth-3 mismatch must not trigger avoidance")
	}
}

func TestDisabledSignatureIgnored(t *testing.T) {
	e, tl, lockA, s13, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("precondition: yield")
	}
	e.hist.SetDisabled(dec.Sig.ID, true)
	if dec := e.c.Request(tl, lockA, s13); !dec.Go {
		t.Fatal("disabled signature must never be avoided (§5.7)")
	}
}

func TestIgnoreDecisionsMode(t *testing.T) {
	e, _, _, _, dec := setupPaperExample(t, Config{Mode: ModeFull, IgnoreDecisions: true})
	if !dec.Go {
		t.Fatal("ignore-decisions must turn YIELD into GO")
	}
	if dec.Sig == nil {
		t.Fatal("suppressed decision must still report the signature")
	}
	if e.c.Stats().Ignored.Load() != 1 {
		t.Error("ignored counter not bumped")
	}
}

func TestForcedGoBypassesMatching(t *testing.T) {
	e, tl, lockA, s13, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("precondition: yield")
	}
	e.c.ForceGo(tl)
	select {
	case <-tl.Wake:
	default:
		t.Fatal("ForceGo must wake the thread")
	}
	if dec := e.c.Request(tl, lockA, s13); !dec.Go {
		t.Fatal("forced thread must GO")
	}
	// The bypass is one-shot.
	e.c.Cancel(tl, lockA)
	if dec := e.c.Request(tl, lockA, s13); dec.Go {
		t.Fatal("forcedGo must be one-shot")
	}
}

func TestNoteAbortAutoDisables(t *testing.T) {
	e, tl, _, _, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("precondition: yield")
	}
	e.c.NoteAbort(tl, dec.Sig.ID, 2)
	if dec.Sig.Disabled {
		t.Fatal("one abort below threshold must not disable")
	}
	e.c.NoteAbort(tl, dec.Sig.ID, 2)
	if !dec.Sig.Disabled {
		t.Fatal("threshold aborts must auto-disable the signature (§5.7)")
	}
	if e.c.Stats().Aborts.Load() != 2 {
		t.Error("abort counter wrong")
	}
}

func TestCancelRollsBackAllow(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, b, sb); !dec.Go {
		t.Fatal("GO expected")
	}
	e.c.Cancel(t1, b) // trylock failed: allow rolled back
	if dec := e.c.Request(t2, a, sa); !dec.Go {
		t.Fatal("canceled allow must not count toward instantiation")
	}
}

func TestReleaseOfReentrantHoldKeepsOwnership(t *testing.T) {
	// DisableFastPath: this test exercises the guarded tier's reentrant
	// entry bookkeeping, which a safe stack would otherwise bypass.
	e := newEnv(Config{Mode: ModeFull, DisableFastPath: true})
	t1 := e.c.NewThread(1, 1, "T1")
	l := e.c.NewLock()
	s1 := e.stk("lock", "outer")
	s2 := e.stk("lock", "inner")

	e.c.Request(t1, l, s1)
	e.c.Acquired(t1, l)
	e.c.ReentrantAcquired(t1, l, s2)
	e.c.Release(t1, l) // inner release
	if got := e.c.HolderOf(l); got != 1 {
		t.Fatalf("owner = %d, want 1 after inner release", got)
	}
	e.c.Release(t1, l)
	if got := e.c.HolderOf(l); got != 0 {
		t.Fatalf("owner = %d, want free", got)
	}
}

func TestThreadExitCleansEntries(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	e.c.Request(t1, b, sb)
	e.c.Acquired(t1, b)
	e.c.ThreadExit(t1)
	if dec := e.c.Request(t2, a, sa); !dec.Go {
		t.Fatal("exited thread's entries must not instantiate signatures")
	}
}

func TestInstrumentModeNoBookkeeping(t *testing.T) {
	e := newEnv(Config{Mode: ModeInstrument})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)
	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()
	e.c.Request(t1, b, sb)
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t2, a, sa); !dec.Go {
		t.Fatal("instrument-only mode must never yield")
	}
	// Events still flow.
	if len(e.events) == 0 {
		t.Fatal("instrument mode must emit events")
	}
}

func TestDataStructsModeNoMatching(t *testing.T) {
	e := newEnv(Config{Mode: ModeDataStructs})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	e.addSig(2, sa, sb)
	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()
	e.c.Request(t1, b, sb)
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t2, a, sa); !dec.Go {
		t.Fatal("data-structures mode must never yield")
	}
	if got := e.c.HolderOf(b); got != 1 {
		t.Error("data-structures mode must still track holders")
	}
}

func TestThreeThreadSignatureInstance(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	s1 := e.stk("lock", "f1")
	s2 := e.stk("lock", "f2")
	s3 := e.stk("lock", "f3")
	e.addSig(2, s1, s2, s3)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	t3 := e.c.NewThread(3, 3, "T3")
	a := e.c.NewLock()
	b := e.c.NewLock()
	cL := e.c.NewLock()

	e.c.Request(t1, a, s1)
	e.c.Acquired(t1, a)
	e.c.Request(t2, b, s2)
	e.c.Acquired(t2, b)
	// Two of three present: requesting with s3 completes the instance.
	dec := e.c.Request(t3, cL, s3)
	if dec.Go {
		t.Fatal("three-stack signature must be instantiated")
	}
	if len(dec.Causes) != 2 {
		t.Errorf("causes = %d, want 2", len(dec.Causes))
	}
}

func TestMultisetSignatureNeedsTwoThreadsSameStack(t *testing.T) {
	// Signature {S, S}: two threads with the SAME stack (§5.3's reason
	// for multisets).
	e := newEnv(Config{Mode: ModeFull})
	s := e.stk("lock", "shared")
	e.addSig(2, s, s)

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	if dec := e.c.Request(t1, a, s); !dec.Go {
		t.Fatal("first thread must GO (instance needs two)")
	}
	e.c.Acquired(t1, a)
	if dec := e.c.Request(t2, b, s); dec.Go {
		t.Fatal("second thread with same stack must yield")
	}
}

func TestNewSignatureAppliesWithoutRestart(t *testing.T) {
	// §8: histories can be reloaded at runtime; the match index must
	// pick up new signatures.
	e := newEnv(Config{Mode: ModeFull})
	s13 := e.stk("lock", "update:s3", "main:s1")
	s23 := e.stk("lock", "update:s3", "main:s2")

	tk := e.c.NewThread(1, 1, "Tk")
	tl := e.c.NewThread(2, 2, "Tl")
	a := e.c.NewLock()
	b := e.c.NewLock()

	e.c.Request(tk, b, s23)
	e.c.Acquired(tk, b)
	if dec := e.c.Request(tl, a, s13); !dec.Go {
		t.Fatal("no signature yet: GO")
	}
	e.c.Cancel(tl, a)

	e.addSig(3, s13, s23) // "patch" arrives
	if dec := e.c.Request(tl, a, s13); dec.Go {
		t.Fatal("new signature must take effect immediately")
	}
}

func TestProbeDepthCountsFalsePositives(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull, ProbeDepth: 3})
	// Signature at depth 2, built from stacks that differ at frame 3
	// from the runtime stacks: every depth-2 match is a probe FP.
	sigA := e.stk("lock", "update", "callerX")
	sigB := e.stk("lock", "update2", "callerY")
	e.addSig(2, sigA, sigB)

	runA := e.stk("lock", "update", "callerZ")
	runB := e.stk("lock", "update2", "callerW")

	t1 := e.c.NewThread(1, 1, "T1")
	t2 := e.c.NewThread(2, 2, "T2")
	a := e.c.NewLock()
	b := e.c.NewLock()

	e.c.Request(t1, b, runB)
	e.c.Acquired(t1, b)
	if dec := e.c.Request(t2, a, runA); dec.Go {
		t.Fatal("expected yield")
	}
	if e.c.Stats().ProbeFPs.Load() != 1 {
		t.Errorf("ProbeFPs = %d, want 1", e.c.Stats().ProbeFPs.Load())
	}
}

func TestRecordOutcomeUpdatesCounters(t *testing.T) {
	e, _, _, s13, dec := setupPaperExample(t, Config{Mode: ModeFull})
	if dec.Go {
		t.Fatal("precondition: yield")
	}
	recs := []BindingRecord{{TID: 1, LID: dec.Causes[0].L.ID, Stack: dec.Causes[0].St, SigIdx: dec.Causes[0].SigIdx}}
	e.c.RecordOutcome(dec.Sig.ID, dec.Depth, true, s13, dec.YielderIdx, recs)
	if dec.Sig.FPCount != 1 {
		t.Errorf("FPCount = %d", dec.Sig.FPCount)
	}
	e.c.RecordOutcome(dec.Sig.ID, dec.Depth, false, s13, dec.YielderIdx, recs)
	if dec.Sig.TPCount != 1 {
		t.Errorf("TPCount = %d", dec.Sig.TPCount)
	}
	e.c.RecordOutcome("missing", 1, true, nil, 0, nil) // must not panic
}

// TestCoverAgainstBruteForce cross-checks the backtracking exact-cover
// matcher against exhaustive enumeration on random instances.
func TestCoverAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 300; iter++ {
		e := newEnv(Config{Mode: ModeFull})
		// Random signature of 2..3 stacks drawn from a pool of 4.
		pool := []*stack.Interned{
			e.stk("lock", "p0"), e.stk("lock", "p1"),
			e.stk("lock", "p2"), e.stk("lock", "p3"),
		}
		n := 2 + rng.Intn(2)
		sigStacks := make([]*stack.Interned, n)
		for i := range sigStacks {
			sigStacks[i] = pool[rng.Intn(len(pool))]
		}
		e.addSig(2, sigStacks...)

		// Random population of holders.
		const T, L = 4, 4
		threads := make([]*ThreadState, T)
		locks := make([]*LockState, L)
		for i := range threads {
			threads[i] = e.c.NewThread(int32(i+1), i+1, "t")
		}
		for i := range locks {
			locks[i] = e.c.NewLock()
		}
		var pop []holding
		lockTaken := map[int]bool{}
		threadBusy := map[int]bool{}
		for k := 0; k < 3; k++ {
			ti, li := rng.Intn(T), rng.Intn(L)
			if lockTaken[li] || threadBusy[ti] {
				continue
			}
			lockTaken[li], threadBusy[ti] = true, true
			st := pool[rng.Intn(len(pool))]
			pop = append(pop, holding{ti, li, st})
			if dec := e.c.Request(threads[ti], locks[li], st); dec.Go {
				e.c.Acquired(threads[ti], locks[li])
			} else {
				// Population itself triggered a yield: roll back.
				lockTaken[li], threadBusy[ti] = false, false
				pop = pop[:len(pop)-1]
			}
		}

		// The requester: a fresh thread + fresh lock.
		reqT := e.c.NewThread(99, T+1, "req")
		reqL := e.c.NewLock()
		reqS := pool[rng.Intn(len(pool))]
		dec := e.c.Request(reqT, reqL, reqS)

		want := bruteForceCover(sigStacks, reqS, pop, pool)
		if dec.Go == want {
			t.Fatalf("iter %d: matcher says go=%v, brute force instance=%v\nsig=%v pop=%v req=%v",
				iter, dec.Go, want, names(sigStacks), pop, reqS.S[1].Func)
		}
	}
}

func names(ss []*stack.Interned) []string {
	out := make([]string, len(ss))
	for i, s := range ss {
		out[i] = s.S[1].Func
	}
	return out
}

type holding struct {
	t  int
	l  int
	st *stack.Interned
}

// bruteForceCover enumerates all assignments of the requester + holders to
// signature positions.
func bruteForceCover(sig []*stack.Interned, reqS *stack.Interned, pop []holding, pool []*stack.Interned) bool {
	n := len(sig)
	// The requester must take some position matching reqS; remaining
	// positions filled by distinct pop entries (distinct threads/locks
	// guaranteed by construction).
	var rec func(pos int, usedPop map[int]bool, reqUsed bool) bool
	rec = func(pos int, usedPop map[int]bool, reqUsed bool) bool {
		if pos == n {
			return reqUsed
		}
		// Option 1: requester covers pos.
		if !reqUsed && reqS.S.MatchesAtDepth(sig[pos].S, 2) {
			if rec(pos+1, usedPop, true) {
				return true
			}
		}
		// Option 2: some unused pop entry covers pos.
		for i, p := range pop {
			if usedPop[i] {
				continue
			}
			if p.st.S.MatchesAtDepth(sig[pos].S, 2) {
				usedPop[i] = true
				if rec(pos+1, usedPop, reqUsed) {
					return true
				}
				delete(usedPop, i)
			}
		}
		return false
	}
	return rec(0, map[int]bool{}, false)
}
