// Differential tests for the fast tier under store-sync traffic: remote
// mutations arrive through History.Merge (the sync loop's pull path)
// rather than ReplaceAll, and the epoch protocol must give the same
// guarantee — once a merge returns, no stack matching an enabled merged
// signature takes the fast tier — including across the v2 tombstone
// transitions (remove, stale re-merge, resurrecting re-archive).
package avoidance

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"dimmunix/internal/event"
	"dimmunix/internal/signature"
	"dimmunix/internal/stack"
)

// remoteWith builds the "remote snapshot" a sync pull would deliver: a
// fresh history holding one signature over the given stacks at the given
// revision.
func remoteWith(rev uint64, stacks ...stack.Stack) (*signature.History, *signature.Signature) {
	h := signature.NewHistory()
	sig := signature.New(signature.Deadlock, stacks, 2)
	sig.Rev = rev
	h.Add(sig)
	return h, sig
}

// TestFastPathMergeUnderRace hammers the fast tier from several
// goroutines while remote snapshots are concurrently merged in and the
// signature is removed again, asserting the sequential guarantee after
// every transition (same protocol as TestFastPathReloadUnderRace, but
// through the sync loop's Merge path and with tombstone semantics: a
// stale remote must NOT re-poison after a removal, a higher-revision
// remote must).
func TestFastPathMergeUnderRace(t *testing.T) {
	hist := signature.NewHistory()
	interner := stack.NewInterner()
	c := NewCache(Config{Mode: ModeFull}, interner, hist, &Stats{}, func(event.Event) {})

	danger := interner.Intern(stack.Stack{
		{Func: "lock", File: "t.go", Line: 1},
		{Func: "handler", File: "t.go", Line: 2},
	})
	safe := interner.Intern(stack.Stack{
		{Func: "lock2", File: "t.go", Line: 1},
		{Func: "other", File: "t.go", Line: 2},
	})
	peer := stack.Stack{{Func: "lock3", File: "t.go", Line: 9}}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			th := c.NewThread(int32(10+i), 10+i, "hammer")
			l := c.NewLock()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if c.FastEligible(danger) {
					c.FastAcquiredImmediate(th, l, danger, false)
					c.FastRelease(th, l)
				}
				if c.FastEligible(safe) {
					c.FastAcquiredImmediate(th, l, safe, false)
					c.FastRelease(th, l)
				}
			}
		}(i)
	}

	var sigID string
	rev := uint64(1)
	for i := 0; i < 200; i++ {
		// Remote snapshot arrives (rev grows like a disable/enable churn
		// would make it): the dangerous stack must leave the fast tier
		// the moment Merge returns.
		remote, sig := remoteWith(rev, danger.S, peer)
		sigID = sig.ID
		if hist.Merge(remote) == 0 {
			t.Fatalf("iteration %d: merge applied nothing", i)
		}
		if c.classifySafe(danger) {
			t.Fatalf("iteration %d: fast tier kept a stack matching a freshly merged signature", i)
		}
		if !c.classifySafe(safe) {
			t.Fatalf("iteration %d: unrelated stack lost the fast tier", i)
		}

		// Local removal (tombstone): the stack is safe again…
		if !hist.Remove(sigID) {
			t.Fatalf("iteration %d: remove failed", i)
		}
		if !c.classifySafe(danger) {
			t.Fatalf("iteration %d: removal not observed by the fast tier", i)
		}

		// …and a STALE remote (revision not above the tombstone's) must
		// not re-poison it — the resurrection bug the tombstones fix.
		staleRemote, _ := remoteWith(rev, danger.S, peer)
		hist.Merge(staleRemote)
		if !c.classifySafe(danger) {
			t.Fatalf("iteration %d: stale remote resurrected a removed signature", i)
		}

		// Next round's remote carries a higher revision than the
		// tombstone, so it re-poisons (a legitimate re-archive).
		rev += 2
	}
	close(stop)
	wg.Wait()
}

// TestFastPathMergeRandomizedNeverBypasses fuzzes sequences of merge /
// remove / disable transitions over a shared frame pool and checks the
// never-bypass invariant against the whole enabled history after each
// step — the differential property for the sync-driven mutation surface.
func TestFastPathMergeRandomizedNeverBypasses(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	pool := make([]stack.Frame, 10)
	for i := range pool {
		pool[i] = stack.Frame{Func: fmt.Sprintf("fn%d", i), File: "pool.go", Line: i + 1}
	}
	randStack := func(depth int) stack.Stack {
		s := make(stack.Stack, depth)
		for i := range s {
			s[i] = pool[rng.Intn(len(pool))]
		}
		return s
	}

	for round := 0; round < 30; round++ {
		e := newEnv(Config{Mode: ModeFull})
		var probes []*stack.Interned
		for i := 0; i < 20; i++ {
			probes = append(probes, e.in.Intern(randStack(1+rng.Intn(5))))
		}
		var ids []string
		for step := 0; step < 40; step++ {
			switch rng.Intn(4) {
			case 0, 1: // a sync pull merges a remote snapshot in
				remote := signature.NewHistory()
				for i := 0; i < 1+rng.Intn(2); i++ {
					sig := signature.New(signature.Deadlock,
						[]stack.Stack{randStack(1 + rng.Intn(4)), randStack(1 + rng.Intn(4))},
						1+rng.Intn(4))
					sig.Rev = uint64(1 + rng.Intn(6))
					sig.Disabled = rng.Intn(5) == 0
					remote.Add(sig)
					ids = append(ids, sig.ID)
				}
				e.hist.Merge(remote)
			case 2: // a removal (local or propagated)
				if len(ids) > 0 {
					e.hist.Remove(ids[rng.Intn(len(ids))])
				}
			case 3: // a disabled-flip
				if len(ids) > 0 {
					e.hist.SetDisabled(ids[rng.Intn(len(ids))], rng.Intn(2) == 0)
				}
			}
			assertNeverBypasses(t, e.c, e.hist, probes, 6)
		}
	}
}
