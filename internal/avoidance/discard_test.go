package avoidance

import (
	"testing"

	"dimmunix/internal/calib"
)

// TestDiscardObsoleteSignature exercises the §8 auto-discard: a signature
// whose completed calibration ladder shows a 100% FP rate at its chosen
// depth is removed from the history.
func TestDiscardObsoleteSignature(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull, DiscardObsolete: true})
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	sig := e.addSig(2, sa, sb)
	sig.Calib = calib.NewState(2, 1, 1000) // tiny ladder: 2 rungs, NA=1

	holder := e.c.NewThread(1, 1, "holder")
	requester := e.c.NewThread(2, 2, "req")
	lb := e.c.NewLock()
	la := e.c.NewLock()

	if dec := e.c.Request(holder, lb, sb); !dec.Go {
		t.Fatal("holder must GO")
	}
	e.c.Acquired(holder, lb)

	// Two avoidances complete the ladder (NA=1 per rung).
	var lastDec Decision
	for i := 0; i < 2; i++ {
		dec := e.c.Request(requester, la, sa)
		if dec.Go {
			t.Fatalf("avoidance %d did not yield", i)
		}
		lastDec = dec
		e.c.Cancel(requester, la) // roll back; we only need the avoidance
	}
	if sig.Calib.Active() {
		t.Fatal("ladder should have completed")
	}
	if sig.Calib.Chosen != 1 {
		t.Fatalf("chosen depth = %d, want 1 (no FP data yet => smallest)", sig.Calib.Chosen)
	}

	// A 100%-FP verdict at the chosen depth triggers the discard.
	recs := []BindingRecord{{TID: 1, LID: lastDec.Causes[0].L.ID, Stack: lastDec.Causes[0].St, SigIdx: lastDec.Causes[0].SigIdx}}
	e.c.RecordOutcome(sig.ID, 1, true, sa, lastDec.YielderIdx, recs)

	if e.hist.Get(sig.ID) != nil {
		t.Fatal("obsolete signature must be discarded from the history (§8)")
	}
	// And the pattern is no longer avoided.
	if dec := e.c.Request(requester, la, sa); !dec.Go {
		t.Fatal("discarded signature must not be avoided")
	}
}

// TestNoDiscardWhenDisabled checks the flag gates the behavior.
func TestNoDiscardWhenDisabled(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull}) // DiscardObsolete off
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	sig := e.addSig(2, sa, sb)
	sig.Calib = calib.NewState(2, 1, 1000)

	holder := e.c.NewThread(1, 1, "holder")
	requester := e.c.NewThread(2, 2, "req")
	lb := e.c.NewLock()
	la := e.c.NewLock()
	e.c.Request(holder, lb, sb)
	e.c.Acquired(holder, lb)
	var lastDec Decision
	for i := 0; i < 2; i++ {
		lastDec = e.c.Request(requester, la, sa)
		e.c.Cancel(requester, la)
	}
	recs := []BindingRecord{{TID: 1, LID: lb.ID, Stack: sb, SigIdx: lastDec.Causes[0].SigIdx}}
	e.c.RecordOutcome(sig.ID, 1, true, sa, lastDec.YielderIdx, recs)
	if e.hist.Get(sig.ID) == nil {
		t.Fatal("signature must be kept when DiscardObsolete is off")
	}
}

func TestLastAvoidedTracking(t *testing.T) {
	e := newEnv(Config{Mode: ModeFull})
	if e.c.LastAvoided() != nil {
		t.Fatal("LastAvoided must start nil")
	}
	sa := e.stk("lock", "fa")
	sb := e.stk("lock", "fb")
	sig := e.addSig(2, sa, sb)
	holder := e.c.NewThread(1, 1, "holder")
	requester := e.c.NewThread(2, 2, "req")
	lb := e.c.NewLock()
	la := e.c.NewLock()
	e.c.Request(holder, lb, sb)
	e.c.Acquired(holder, lb)
	if dec := e.c.Request(requester, la, sa); dec.Go {
		t.Fatal("expected yield")
	}
	if e.c.LastAvoided() != sig {
		t.Fatal("LastAvoided not recorded")
	}
}
