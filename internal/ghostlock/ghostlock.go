// Package ghostlock implements the ghost-lock deadlock-prevention baseline
// of Zeng and Martin ("Ghost locks: Deadlock prevention for Java") —
// reference [23] of the Dimmunix paper.
//
// Instead of serializing code blocks (gate locks) or steering schedules
// with call-stack context (Dimmunix), ghost locks serialize access to LOCK
// SETS: for each set of locks observed to participate in a deadlock, a
// ghost lock is created that a thread must acquire before locking any
// member of the set, and may release only after it has released all
// members it holds. §4 of the Dimmunix paper: "[23] would add a ghost lock
// for A and B, that would have to be acquired prior to locking either A or
// B".
package ghostlock

import (
	"sort"
	"strconv"
	"strings"
	"sync"
)

// ghost is one ghost lock over a set of application lock IDs.
type ghost struct {
	key string
	mu  sync.Mutex

	stateMu   sync.Mutex
	holder    int64 // thread holding the ghost (0 = none)
	depth     int   // member locks currently held by the holder
	contended uint64
	acquires  uint64
}

// Manager owns the ghost locks.
type Manager struct {
	mu     sync.Mutex
	ghosts map[string]*ghost
	byLock map[uint64][]*ghost
}

// NewManager returns an empty manager.
func NewManager() *Manager {
	return &Manager{
		ghosts: make(map[string]*ghost),
		byLock: make(map[uint64][]*ghost),
	}
}

// AddDeadlock registers a deadlock over the given lock IDs, creating the
// ghost lock for that lock set (idempotent per set).
func (m *Manager) AddDeadlock(lockIDs []uint64) bool {
	ids := append([]uint64(nil), lockIDs...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = strconv.FormatUint(id, 10)
	}
	key := strings.Join(parts, "|")

	m.mu.Lock()
	defer m.mu.Unlock()
	if _, ok := m.ghosts[key]; ok {
		return false
	}
	g := &ghost{key: key}
	m.ghosts[key] = g
	seen := make(map[uint64]bool)
	for _, id := range ids {
		if seen[id] {
			continue
		}
		seen[id] = true
		m.byLock[id] = append(m.byLock[id], g)
	}
	return true
}

// NumGhosts returns the number of ghost locks.
func (m *Manager) NumGhosts() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.ghosts)
}

// BeforeLock must be called by thread tid before acquiring lock id. It
// acquires (or re-enters) every ghost covering the lock.
func (m *Manager) BeforeLock(tid int64, id uint64) {
	m.mu.Lock()
	gs := m.byLock[id]
	m.mu.Unlock()
	if len(gs) == 0 {
		return
	}
	ordered := make([]*ghost, len(gs))
	copy(ordered, gs)
	sort.Slice(ordered, func(i, j int) bool { return ordered[i].key < ordered[j].key })
	for _, g := range ordered {
		g.stateMu.Lock()
		if g.holder == tid {
			g.depth++
			g.stateMu.Unlock()
			continue
		}
		g.stateMu.Unlock()
		if !g.mu.TryLock() {
			g.stateMu.Lock()
			g.contended++
			g.stateMu.Unlock()
			g.mu.Lock()
		}
		g.stateMu.Lock()
		g.holder = tid
		g.depth = 1
		g.acquires++
		g.stateMu.Unlock()
	}
}

// AfterUnlock must be called by thread tid after releasing lock id. When
// the thread has released every member lock it held of a ghost's set, the
// ghost is released.
func (m *Manager) AfterUnlock(tid int64, id uint64) {
	m.mu.Lock()
	gs := m.byLock[id]
	m.mu.Unlock()
	for _, g := range gs {
		g.stateMu.Lock()
		if g.holder != tid {
			g.stateMu.Unlock()
			continue
		}
		g.depth--
		release := g.depth == 0
		if release {
			g.holder = 0
		}
		g.stateMu.Unlock()
		if release {
			g.mu.Unlock()
		}
	}
}

// Stats aggregates ghost counters.
type Stats struct {
	Ghosts    int
	Acquires  uint64
	Contended uint64
}

// Stats returns the aggregate counters.
func (m *Manager) Stats() Stats {
	m.mu.Lock()
	defer m.mu.Unlock()
	st := Stats{Ghosts: len(m.ghosts)}
	for _, g := range m.ghosts {
		g.stateMu.Lock()
		st.Acquires += g.acquires
		st.Contended += g.contended
		g.stateMu.Unlock()
	}
	return st
}
