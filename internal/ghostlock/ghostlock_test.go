package ghostlock

import (
	"sync"
	"testing"
	"time"
)

func TestAddDeadlockDedup(t *testing.T) {
	m := NewManager()
	if !m.AddDeadlock([]uint64{1, 2}) {
		t.Fatal("first add must create a ghost")
	}
	if m.AddDeadlock([]uint64{2, 1}) {
		t.Fatal("same set must be deduped")
	}
	if !m.AddDeadlock([]uint64{2, 3}) {
		t.Fatal("new set must create a ghost")
	}
	if m.NumGhosts() != 2 {
		t.Errorf("ghosts = %d", m.NumGhosts())
	}
}

func TestUncoveredLockIsFree(t *testing.T) {
	m := NewManager()
	m.BeforeLock(1, 99)
	m.AfterUnlock(1, 99) // no-ops, no panic
}

func TestGhostPreventsInversionDeadlock(t *testing.T) {
	// Two threads locking {A, B} in opposite orders, with a ghost over
	// {A, B}: the ghost serializes the whole critical region, so this
	// must terminate.
	m := NewManager()
	m.AddDeadlock([]uint64{1, 2})
	var a, b sync.Mutex

	lockPair := func(tid int64, first, second *sync.Mutex, fid, sid uint64) {
		m.BeforeLock(tid, fid)
		first.Lock()
		m.BeforeLock(tid, sid)
		second.Lock()
		second.Unlock()
		m.AfterUnlock(tid, sid)
		first.Unlock()
		m.AfterUnlock(tid, fid)
	}

	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tid := int64(i + 1)
			for j := 0; j < 500; j++ {
				if i%2 == 0 {
					lockPair(tid, &a, &b, 1, 2)
				} else {
					lockPair(tid, &b, &a, 2, 1)
				}
			}
		}(i)
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("ghost-protected inversion deadlocked")
	}
	st := m.Stats()
	if st.Acquires == 0 {
		t.Error("ghost never acquired")
	}
}

func TestGhostReentrancyWithinSet(t *testing.T) {
	// A thread locking both members must acquire the ghost once and
	// release it only after releasing both.
	m := NewManager()
	m.AddDeadlock([]uint64{1, 2})
	m.BeforeLock(7, 1)
	m.BeforeLock(7, 2) // re-enter, no self-deadlock
	m.AfterUnlock(7, 2)
	// Ghost still held: another thread must block; verify via TryLock
	// semantics exposed through contention counting.
	released := make(chan struct{})
	go func() {
		m.BeforeLock(8, 1) // blocks until thread 7 releases lock 1
		m.AfterUnlock(8, 1)
		close(released)
	}()
	time.Sleep(20 * time.Millisecond)
	select {
	case <-released:
		t.Fatal("ghost released too early")
	default:
	}
	m.AfterUnlock(7, 1)
	<-released
}

func TestStats(t *testing.T) {
	m := NewManager()
	m.AddDeadlock([]uint64{1, 2})
	m.BeforeLock(1, 1)
	m.AfterUnlock(1, 1)
	st := m.Stats()
	if st.Ghosts != 1 || st.Acquires != 1 {
		t.Errorf("stats = %+v", st)
	}
}
