package calib

import "testing"

func TestZeroValueInactive(t *testing.T) {
	var s State
	if s.Active() {
		t.Error("zero State must be inactive")
	}
	if s.CurrentDepth() != 0 {
		t.Errorf("CurrentDepth = %d", s.CurrentDepth())
	}
	if s.RecordAvoidance() {
		t.Error("inactive state must not complete a ladder")
	}
	s.RecordOutcome(1, true, nil) // must not panic
}

func TestDefaults(t *testing.T) {
	s := NewState(0, 0, 0)
	if s.MaxDepth != DefaultMaxDepth || s.NA != DefaultNA || s.NT != DefaultNT {
		t.Errorf("defaults not applied: %+v", s)
	}
	if !s.Active() || s.CurrentDepth() != 1 {
		t.Error("new ladder must start active at depth 1")
	}
}

func TestLadderAdvances(t *testing.T) {
	s := NewState(3, 2, 100)
	if s.CurrentDepth() != 1 {
		t.Fatalf("depth = %d", s.CurrentDepth())
	}
	s.RecordAvoidance()
	if s.CurrentDepth() != 1 {
		t.Fatalf("after 1 avoidance depth = %d, want 1", s.CurrentDepth())
	}
	s.RecordAvoidance()
	if s.CurrentDepth() != 2 {
		t.Fatalf("after NA avoidances depth = %d, want 2", s.CurrentDepth())
	}
	s.RecordAvoidance()
	s.RecordAvoidance()
	if s.CurrentDepth() != 3 {
		t.Fatalf("depth = %d, want 3", s.CurrentDepth())
	}
	s.RecordAvoidance()
	done := s.RecordAvoidance()
	if !done {
		t.Fatal("ladder should complete after NA at max depth")
	}
	if s.Active() {
		t.Error("ladder must stop after completion")
	}
}

func TestChoosesSmallestDepthWithMinFPRate(t *testing.T) {
	s := NewState(3, 2, 100)
	// depth 1: both avoidances FP.
	s.RecordAvoidance()
	s.RecordOutcome(1, true, nil)
	s.RecordAvoidance()
	s.RecordOutcome(1, true, nil)
	// depth 2: no FPs.
	s.RecordAvoidance()
	s.RecordOutcome(2, false, nil)
	s.RecordAvoidance()
	s.RecordOutcome(2, false, nil)
	// depth 3: no FPs.
	s.RecordAvoidance()
	s.RecordAvoidance()
	if s.Chosen != 2 {
		t.Errorf("Chosen = %d, want 2 (smallest with FPmin=0)", s.Chosen)
	}
}

func TestNonZeroFPMinTiesGoShallow(t *testing.T) {
	// §5.5: FPmin can be non-zero; ties at FPmin choose the smallest
	// depth (most general pattern).
	s := NewState(2, 2, 100)
	s.RecordAvoidance()
	s.RecordOutcome(1, true, nil)
	s.RecordAvoidance()
	s.RecordOutcome(1, false, nil)
	s.RecordAvoidance()
	s.RecordOutcome(2, true, nil)
	s.RecordAvoidance()
	s.RecordOutcome(2, false, nil)
	if s.Chosen != 1 {
		t.Errorf("Chosen = %d, want 1 on tie", s.Chosen)
	}
}

func TestPromotionFillsDeeperRungs(t *testing.T) {
	s := NewState(3, 2, 100)
	// FP at depth 1 that would also avoid at depth 2 but not 3.
	s.RecordAvoidance()
	s.RecordOutcome(1, true, func(d int) bool { return d == 2 })
	if s.FPs[1] != 1 || s.Avoids[1] != 1 {
		t.Errorf("promotion missing: FPs=%v Avoids=%v", s.FPs, s.Avoids)
	}
	if s.FPs[2] != 0 {
		t.Errorf("depth 3 should not be promoted: %v", s.FPs)
	}
	// Fill rung 1; rung 2 already has 1 promoted avoidance, so it needs
	// only one more before skipping to rung 3.
	s.RecordAvoidance()
	if s.CurrentDepth() != 2 {
		t.Fatalf("depth = %d, want 2", s.CurrentDepth())
	}
	s.RecordAvoidance()
	if s.CurrentDepth() != 3 {
		t.Fatalf("depth = %d, want 3 (rung 2 finished early)", s.CurrentDepth())
	}
}

func TestPromotionCanSkipRungsEntirely(t *testing.T) {
	s := NewState(3, 1, 100)
	s.RecordAvoidance() // fills rung 1 (NA=1)... but outcome first:
	// rung already advanced to 2 after the first avoidance since NA=1.
	if s.CurrentDepth() != 2 {
		t.Fatalf("depth = %d, want 2", s.CurrentDepth())
	}
	// Late FP verdict for the depth-1 avoidance, promoted to all deeper
	// depths: fills rungs 2 and 3.
	s.RecordOutcome(1, true, func(d int) bool { return true })
	done := s.RecordAvoidance() // fills rung 2 -> rung 3 already full -> done
	if !done {
		t.Fatal("ladder should have completed by skipping rung 3")
	}
}

func TestRearmAfterNT(t *testing.T) {
	s := NewState(2, 1, 3)
	s.RecordAvoidance()
	s.RecordAvoidance() // ladder done (NA=1 per rung)
	if s.Active() {
		t.Fatal("ladder should be done")
	}
	s.RecordAvoidance()
	s.RecordAvoidance()
	if s.Active() {
		t.Fatal("not yet NT")
	}
	s.RecordAvoidance() // third post-choice avoidance = NT
	if !s.Active() || s.CurrentDepth() != 1 {
		t.Errorf("ladder should have re-armed: %+v", s)
	}
	if s.Avoids[0] != 0 || s.FPs[0] != 0 {
		t.Error("counters must reset on re-arm")
	}
}

func TestRearmZeroState(t *testing.T) {
	var s State
	s.Rearm()
	if !s.Active() || s.MaxDepth != DefaultMaxDepth {
		t.Errorf("Rearm on zero state: %+v", s)
	}
}

func TestFPRate(t *testing.T) {
	s := NewState(2, 10, 100)
	if s.FPRate(1) != 0 {
		t.Error("no data should be rate 0")
	}
	s.RecordAvoidance()
	s.RecordOutcome(1, true, nil)
	s.RecordAvoidance()
	s.RecordOutcome(1, false, nil)
	if got := s.FPRate(1); got != 0.5 {
		t.Errorf("FPRate = %v, want 0.5", got)
	}
	if s.FPRate(0) != 0 || s.FPRate(99) != 0 {
		t.Error("out-of-range depths must be 0")
	}
}

func TestOutcomeOutOfRangeIgnored(t *testing.T) {
	s := NewState(2, 10, 100)
	s.RecordOutcome(0, true, nil)
	s.RecordOutcome(5, true, nil)
	if s.FPs[0] != 0 || s.FPs[1] != 0 {
		t.Error("out-of-range outcomes must be ignored")
	}
}
