// Package calib implements the dynamic calibration of signature matching
// precision (§5.5).
//
// For each signature, calibration walks a depth ladder: matching depth
// starts at 1 and stays there for the first NA avoidances, then moves to 2
// for the next NA avoidances, and so on up to MaxDepth. A retrospective
// false-positive heuristic (internal/fpdetect) labels each avoidance FP or
// TP; on an FP at depth k the caller also reports which deeper depths
// would still have avoided, and their FP and avoidance counts are promoted
// so deeper rungs can finish early. When the ladder completes, the
// smallest depth with the minimal FP rate is chosen (ties at FPmin go to
// the most general pattern). After NT further avoidances the ladder is
// re-armed, in case program conditions changed; §8 also re-arms it after
// an upgrade.
//
// State carries no locking: the caller (the avoidance cache, under its
// guard) owns synchronization.
package calib

// Defaults from §5.5.
const (
	DefaultNA       = 20
	DefaultNT       = 10000
	DefaultMaxDepth = 10
)

// State is the per-signature calibration state. The zero value is an
// inactive calibrator (fixed-depth matching).
type State struct {
	// On enables calibration for this signature.
	On bool
	// Rung is the current ladder depth being evaluated, 1-based;
	// 0 means the ladder is not running.
	Rung int
	// MaxDepth is the deepest rung.
	MaxDepth int
	// NA is the number of avoidances evaluated per rung.
	NA int
	// NT is the number of post-calibration avoidances before the ladder
	// re-arms.
	NT uint64
	// Avoids[d-1] and FPs[d-1] count avoidances and false positives
	// attributed to depth d (including promotions).
	Avoids []uint64
	FPs    []uint64
	// Chosen is the depth selected by the last completed ladder
	// (0 = none yet).
	Chosen int
	// SinceChosen counts avoidances since the ladder completed.
	SinceChosen uint64
}

// NewState returns an active ladder starting at depth 1. Non-positive
// parameters select the §5.5 defaults.
func NewState(maxDepth, na int, nt uint64) State {
	if maxDepth <= 0 {
		maxDepth = DefaultMaxDepth
	}
	if na <= 0 {
		na = DefaultNA
	}
	if nt == 0 {
		nt = DefaultNT
	}
	return State{
		On:       true,
		Rung:     1,
		MaxDepth: maxDepth,
		NA:       na,
		NT:       nt,
		Avoids:   make([]uint64, maxDepth),
		FPs:      make([]uint64, maxDepth),
	}
}

// Clone returns a deep copy (the counter slices are duplicated), for
// snapshots serialized outside the guard that owns the live state.
func (s State) Clone() State {
	c := s
	c.Avoids = append([]uint64(nil), s.Avoids...)
	c.FPs = append([]uint64(nil), s.FPs...)
	return c
}

// Active reports whether the ladder is currently running (matching should
// use CurrentDepth rather than the signature's fixed depth).
func (s *State) Active() bool { return s.On && s.Rung >= 1 }

// CurrentDepth returns the ladder's current rung.
func (s *State) CurrentDepth() int {
	if !s.Active() {
		return s.Chosen
	}
	return s.Rung
}

// RecordAvoidance notes one avoidance. While the ladder runs it counts
// toward the current rung and advances the rung after NA avoidances
// (skipping rungs already filled by promotion); when the ladder has
// completed it counts toward NT-based re-arming. It returns true when this
// call completed the ladder.
func (s *State) RecordAvoidance() bool {
	if !s.On {
		return false
	}
	if s.Rung < 1 {
		s.SinceChosen++
		if s.SinceChosen >= s.NT {
			s.Rearm()
		}
		return false
	}
	s.Avoids[s.Rung-1]++
	completed := false
	for s.Rung >= 1 && s.Rung <= s.MaxDepth && s.Avoids[s.Rung-1] >= uint64(s.NA) {
		s.Rung++
	}
	if s.Rung > s.MaxDepth {
		s.choose()
		completed = true
	}
	return completed
}

// RecordOutcome reports the retrospective verdict for an avoidance
// performed at the given depth. For a false positive, wouldAvoidAt tells
// whether matching at a deeper depth would still have triggered avoidance;
// those depths receive promoted FP and avoidance counts (§5.5's
// calibration speedup). wouldAvoidAt may be nil, in which case no
// promotion happens.
func (s *State) RecordOutcome(depth int, fp bool, wouldAvoidAt func(depth int) bool) {
	if !s.On || depth < 1 || depth > s.MaxDepth {
		return
	}
	if !fp {
		return
	}
	s.FPs[depth-1]++
	if wouldAvoidAt == nil {
		return
	}
	for d := depth + 1; d <= s.MaxDepth; d++ {
		if wouldAvoidAt(d) {
			s.FPs[d-1]++
			s.Avoids[d-1]++
		}
	}
}

// choose selects the smallest depth exhibiting the lowest FP rate.
func (s *State) choose() {
	best := 1
	bestRate := rate(s.FPs[0], s.Avoids[0])
	for d := 2; d <= s.MaxDepth; d++ {
		r := rate(s.FPs[d-1], s.Avoids[d-1])
		if r < bestRate {
			bestRate = r
			best = d
		}
	}
	s.Chosen = best
	s.Rung = 0
	s.SinceChosen = 0
}

func rate(fp, avoid uint64) float64 {
	if avoid == 0 {
		return 0
	}
	return float64(fp) / float64(avoid)
}

// FPRate returns the observed FP rate at the given depth (0 if no data).
func (s *State) FPRate(depth int) float64 {
	if depth < 1 || depth > len(s.Avoids) {
		return 0
	}
	return rate(s.FPs[depth-1], s.Avoids[depth-1])
}

// Rearm restarts the ladder (after NT avoidances or an upgrade, §8).
func (s *State) Rearm() {
	if s.MaxDepth <= 0 {
		*s = NewState(0, 0, 0)
		return
	}
	s.Rung = 1
	s.SinceChosen = 0
	for i := range s.Avoids {
		s.Avoids[i] = 0
		s.FPs[i] = 0
	}
}
