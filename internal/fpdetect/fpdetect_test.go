package fpdetect

import "testing"

func acq(t int32, l uint64) Op { return Op{TID: t, LID: l, Acquire: true} }
func rel(t int32, l uint64) Op { return Op{TID: t, LID: l, Acquire: false} }

func TestNoInversionEmptyLog(t *testing.T) {
	if HasInversion(nil) {
		t.Error("empty log must have no inversion")
	}
}

func TestNoInversionSameOrder(t *testing.T) {
	ops := []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
		acq(2, 10), acq(2, 20), rel(2, 20), rel(2, 10),
	}
	if HasInversion(ops) {
		t.Error("same nesting order must not be an inversion")
	}
}

func TestClassicInversion(t *testing.T) {
	ops := []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
		acq(2, 20), acq(2, 10), rel(2, 10), rel(2, 20),
	}
	if !HasInversion(ops) {
		t.Error("classic AB/BA inversion must be detected")
	}
}

func TestInversionRequiresDistinctThreads(t *testing.T) {
	// One thread acquiring in both orders at different times cannot
	// itself deadlock; the heuristic requires two threads.
	ops := []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
		acq(1, 20), acq(1, 10), rel(1, 10), rel(1, 20),
	}
	if HasInversion(ops) {
		t.Error("single-thread both-orders must not count")
	}
}

func TestReentrantAcquireIgnored(t *testing.T) {
	ops := []Op{
		acq(1, 10), acq(1, 10), rel(1, 10), rel(1, 10),
		acq(2, 10), rel(2, 10),
	}
	if HasInversion(ops) {
		t.Error("reentrancy must not produce inversions")
	}
}

func TestInversionThroughThirdLock(t *testing.T) {
	// T1: holds A, takes B. T2: holds B, takes C. No inversion.
	ops := []Op{
		acq(1, 1), acq(1, 2), rel(1, 2), rel(1, 1),
		acq(2, 2), acq(2, 3), rel(2, 3), rel(2, 2),
	}
	if HasInversion(ops) {
		t.Error("chain without reversal must not be an inversion")
	}
	// Add T3 closing the reversal on (1,2).
	ops = append(ops, acq(3, 2), acq(3, 1), rel(3, 1), rel(3, 2))
	if !HasInversion(ops) {
		t.Error("reversal by third thread must be detected")
	}
}

func TestInversionInterleavedWithReleases(t *testing.T) {
	// Order pairs survive releases: inversion detection is about order,
	// not simultaneity.
	ops := []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
	}
	if HasInversion(ops) {
		t.Fatal("no inversion yet")
	}
	ops = append(ops, acq(2, 20), acq(2, 10))
	if !HasInversion(ops) {
		t.Error("late reversal must be detected")
	}
}

func TestEpisodeWatchFiltering(t *testing.T) {
	e := NewEpisode("sig1", 3, 1, []int32{2}, 10)
	if done := e.Record(acq(99, 5)); done {
		t.Error("unwatched op must not complete episode")
	}
	if len(e.Ops()) != 0 {
		t.Error("unwatched ops must not be logged")
	}
	e.Record(acq(1, 5))
	e.Record(acq(2, 6))
	if len(e.Ops()) != 2 {
		t.Errorf("ops = %d, want 2", len(e.Ops()))
	}
}

func TestEpisodeCompletesAtLimit(t *testing.T) {
	e := NewEpisode("sig1", 1, 1, nil, 3)
	for i := 0; i < 2; i++ {
		if e.Record(acq(1, uint64(i))) {
			t.Fatalf("complete too early at %d", i)
		}
	}
	if !e.Record(acq(1, 99)) {
		t.Error("episode must complete at limit")
	}
	if !e.Record(acq(1, 100)) {
		t.Error("already-complete episode stays complete")
	}
	if len(e.Ops()) != 3 {
		t.Errorf("ops = %d, want limit 3", len(e.Ops()))
	}
}

func TestEpisodeDefaultLimit(t *testing.T) {
	e := NewEpisode("s", 1, 1, nil, 0)
	if e.Limit != DefaultOpLimit {
		t.Errorf("Limit = %d, want %d", e.Limit, DefaultOpLimit)
	}
}

func TestEpisodeVerdictFalsePositive(t *testing.T) {
	// Yielded thread resumed, took locks in a consistent order with the
	// other thread: no inversion => false positive.
	e := NewEpisode("s", 2, 1, []int32{2}, 20)
	for _, op := range []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
		acq(2, 10), acq(2, 20), rel(2, 20), rel(2, 10),
	} {
		e.Record(op)
	}
	if !e.Verdict() {
		t.Error("expected FP verdict (no inversion)")
	}
}

func TestEpisodeVerdictTruePositive(t *testing.T) {
	e := NewEpisode("s", 2, 1, []int32{2}, 20)
	for _, op := range []Op{
		acq(1, 10), acq(1, 20), rel(1, 20), rel(1, 10),
		acq(2, 20), acq(2, 10), rel(2, 10), rel(2, 20),
	} {
		e.Record(op)
	}
	if e.Verdict() {
		t.Error("expected TP verdict (inversion present)")
	}
}

func BenchmarkHasInversion(b *testing.B) {
	var ops []Op
	for i := 0; i < 32; i++ {
		t := int32(i % 4)
		ops = append(ops, acq(t, uint64(i%8)), rel(t, uint64(i%8)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		HasInversion(ops)
	}
}
