// Package fpdetect implements the retrospective false-positive heuristic
// of §5.5: after Dimmunix avoids a signature X, the lock operations
// performed by the threads involved in the potential deadlock — plus those
// performed by the blocked thread after it is released from its yield —
// are logged; the monitor then looks for lock inversions in the log. If no
// inversion is found, the avoidance was likely a false positive: absent
// avoidance, there would likely not have been a deadlock.
package fpdetect

// Op is one logged lock operation.
type Op struct {
	TID     int32
	LID     uint64
	Acquire bool // true = acquired, false = released
}

// Episode tracks the aftermath of a single avoidance decision.
type Episode struct {
	// SigID and Depth identify the avoided signature and the matching
	// depth in force when the avoidance happened (calibration needs the
	// depth to attribute the verdict to the right ladder rung).
	SigID string
	Depth int
	// YieldedTID is the thread that was forced to yield.
	YieldedTID int32
	// Watch is the set of threads whose operations are logged: the
	// threads involved in the potential deadlock plus the yielded one.
	Watch map[int32]bool
	// Limit bounds the log length; once reached the episode concludes.
	Limit int

	ops []Op
}

// DefaultOpLimit is how many operations an episode observes before
// concluding. Deadlock patterns are short (almost always two threads and
// two nested locks, §5.6), so a modest window suffices.
const DefaultOpLimit = 64

// NewEpisode starts an episode for an avoidance of sig at depth, watching
// the given threads. limit <= 0 selects DefaultOpLimit.
func NewEpisode(sigID string, depth int, yielded int32, involved []int32, limit int) *Episode {
	if limit <= 0 {
		limit = DefaultOpLimit
	}
	w := make(map[int32]bool, len(involved)+1)
	w[yielded] = true
	for _, t := range involved {
		w[t] = true
	}
	return &Episode{
		SigID:      sigID,
		Depth:      depth,
		YieldedTID: yielded,
		Watch:      w,
		Limit:      limit,
	}
}

// Record appends op if it belongs to a watched thread and reports whether
// the episode is complete (log limit reached).
func (e *Episode) Record(op Op) bool {
	if !e.Watch[op.TID] {
		return len(e.ops) >= e.Limit
	}
	if len(e.ops) < e.Limit {
		e.ops = append(e.ops, op)
	}
	return len(e.ops) >= e.Limit
}

// Ops returns the logged operations.
func (e *Episode) Ops() []Op { return e.ops }

// Verdict concludes the episode: it returns true if the avoidance looks
// like a FALSE positive (no lock inversion found in the log).
func (e *Episode) Verdict() bool {
	return !HasInversion(e.ops)
}

// HasInversion reports whether the operation log contains a lock
// inversion: some thread acquired lock B while holding lock A, and some
// other thread acquired A while holding B. That pattern is the necessary
// ingredient of a two-thread deadlock; its presence means the avoided
// situation could genuinely have deadlocked (a true positive).
func HasInversion(ops []Op) bool {
	type pair struct{ a, b uint64 }
	held := make(map[int32][]uint64)
	// pairThreads[p] = set of threads that exhibited order p.
	pairThreads := make(map[pair]map[int32]bool)

	record := func(tid int32, a, b uint64) bool {
		p := pair{a, b}
		set := pairThreads[p]
		if set == nil {
			set = make(map[int32]bool)
			pairThreads[p] = set
		}
		set[tid] = true
		// Check the reverse order by any *other* thread.
		if rev, ok := pairThreads[pair{b, a}]; ok {
			for other := range rev {
				if other != tid {
					return true
				}
			}
		}
		return false
	}

	for _, op := range ops {
		if op.Acquire {
			for _, a := range held[op.TID] {
				if a == op.LID {
					continue // reentrant
				}
				if record(op.TID, a, op.LID) {
					return true
				}
			}
			held[op.TID] = append(held[op.TID], op.LID)
			continue
		}
		hs := held[op.TID]
		for i := len(hs) - 1; i >= 0; i-- {
			if hs[i] == op.LID {
				held[op.TID] = append(hs[:i], hs[i+1:]...)
				break
			}
		}
	}
	return false
}
