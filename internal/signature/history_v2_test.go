// Tests for the tombstoned format v2: the revision-join merge (removals
// and disabled-flips propagate, stale snapshots cannot resurrect), the
// v1 migration path, and the tombstone compaction bound.
package signature

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"dimmunix/internal/stack"
)

// TestMergeDoesNotResurrectRemoved is the regression for the pre-v2 bug:
// History.Merge re-added locally-removed signatures because nothing
// recorded the removal.
func TestMergeDoesNotResurrectRemoved(t *testing.T) {
	local := NewHistory()
	sig := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	local.Add(sig)

	// An older snapshot (e.g. a stale vendor file or a lagging process's
	// push) that still carries the signature.
	older := NewHistory()
	older.Add(New(Deadlock, []Stack{syn(1), syn(2)}, 4))

	if !local.Remove(sig.ID) {
		t.Fatal("Remove failed")
	}
	if n := local.Merge(older); n != 0 {
		t.Errorf("merging an older snapshot changed %d entries, want 0", n)
	}
	if local.Get(sig.ID) != nil {
		t.Fatal("removed signature was resurrected by Merge")
	}
	if len(local.Tombstones()) != 1 {
		t.Fatalf("tombstones = %d, want 1", len(local.Tombstones()))
	}
}

// Stack aliases stack.Stack for test brevity.
type Stack = stack.Stack

// TestMergeTombstonePropagates: merging a snapshot that removed a
// signature removes it locally too (the fleet-removal path).
func TestMergeTombstonePropagates(t *testing.T) {
	a := NewHistory()
	b := NewHistory()
	sig := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	a.Add(sig)
	b.Merge(a)
	if b.Get(sig.ID) == nil {
		t.Fatal("precondition: merge should add")
	}
	a.Remove(sig.ID)
	if n := b.Merge(a); n != 1 {
		t.Errorf("Merge(removal) = %d changes, want 1", n)
	}
	if b.Get(sig.ID) != nil {
		t.Fatal("removal did not propagate")
	}
	// And the removal keeps propagating transitively.
	c := NewHistory()
	c.Add(New(Deadlock, []Stack{syn(1), syn(2)}, 4))
	c.Merge(b)
	if c.Get(sig.ID) != nil {
		t.Fatal("removal did not propagate transitively through b")
	}
}

// TestMergeReArchiveWinsOverTombstone: a deadlock that manifests again
// after a removal is deliberately resurrected, and the resurrection wins
// onward merges.
func TestMergeReArchiveWinsOverTombstone(t *testing.T) {
	a := NewHistory()
	sig := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	a.Add(sig)
	a.Remove(sig.ID)
	tombRev := a.Tombstones()[0].Rev

	re := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	if !a.Add(re) {
		t.Fatal("re-archive after removal must succeed")
	}
	if re.Rev <= tombRev {
		t.Fatalf("resurrected rev %d must exceed tombstone rev %d", re.Rev, tombRev)
	}
	if len(a.Tombstones()) != 0 {
		t.Fatal("tombstone must clear on resurrection")
	}

	// A peer that still holds the tombstone must accept the resurrection.
	b := NewHistory()
	b.Add(New(Deadlock, []Stack{syn(1), syn(2)}, 4))
	b.RestoreTombstone(Tombstone{ID: sig.ID, Rev: tombRev})
	if b.Get(sig.ID) != nil {
		t.Fatal("precondition: tombstone should remove")
	}
	b.Merge(a)
	if b.Get(sig.ID) == nil {
		t.Fatal("resurrection did not win over the tombstone")
	}
}

// TestMergeDisabledConflict: the higher revision's disabled state wins;
// a tie is resolved deterministically toward disabled.
func TestMergeDisabledConflict(t *testing.T) {
	a := NewHistory()
	b := NewHistory()
	sig := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	a.Add(sig)
	b.Merge(a)

	// Disable on a (rev bump) → propagates to b.
	a.SetDisabled(sig.ID, true)
	b.Merge(a)
	if got := b.Get(sig.ID); got == nil || !got.Disabled {
		t.Fatal("disable did not propagate")
	}
	// Merging b's (now equal) state back into a changes nothing.
	if n := a.Merge(b); n != 0 {
		t.Errorf("idempotent merge changed %d", n)
	}
	// Re-enable on b (higher rev) → propagates back to a.
	b.SetDisabled(sig.ID, false)
	a.Merge(b)
	if got := a.Get(sig.ID); got == nil || got.Disabled {
		t.Fatal("re-enable did not propagate")
	}

	// Tie-break: same revision, one side disabled → disabled wins.
	x, y := NewHistory(), NewHistory()
	sx := New(Deadlock, []Stack{syn(3), syn(4)}, 4)
	sy := New(Deadlock, []Stack{syn(3), syn(4)}, 4)
	sy.Disabled = true
	sy.Rev = 1
	sx.Rev = 1
	x.Add(sx)
	y.Add(sy)
	x.Merge(y)
	if got := x.Get(sx.ID); got == nil || !got.Disabled {
		t.Fatal("tie must resolve toward disabled")
	}
}

// TestMergeCommutes: joining two divergent histories in either order
// yields the same signature set, disabled states, and tombstones.
func TestMergeCommutes(t *testing.T) {
	build := func() (*History, *History) {
		a, b := NewHistory(), NewHistory()
		s1 := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
		s2 := New(Deadlock, []Stack{syn(3), syn(4)}, 4)
		s3 := New(Starvation, []Stack{syn(5), syn(6)}, 4)
		a.Add(s1)
		a.Add(s2)
		a.Remove(s2.ID)
		b.Add(New(Deadlock, []Stack{syn(3), syn(4)}, 4)) // s2's twin, rev 1
		b.Add(s3)
		b.SetDisabled(s3.ID, true)
		return a, b
	}
	a1, b1 := build()
	a1.Merge(b1)
	a2, b2 := build()
	b2.Merge(a2)

	if got, want := idsOf(a1), idsOf(b2); got != want {
		t.Fatalf("merge not commutative: %q vs %q", got, want)
	}
	for _, s := range a1.Snapshot() {
		o := b2.Get(s.ID)
		if o == nil || o.Disabled != s.Disabled {
			t.Fatalf("state differs for %s", s.ID)
		}
	}
	if len(a1.Tombstones()) != len(b2.Tombstones()) {
		t.Fatalf("tombstones differ: %d vs %d", len(a1.Tombstones()), len(b2.Tombstones()))
	}
}

func idsOf(h *History) string {
	out := ""
	for _, id := range h.SortedIDs() {
		out += id + ","
	}
	return out
}

// TestV1MigrationRoundTrip: a v1 file (no revs, no tombstones) loads
// with every entry at revision 1, saves back as v2, and reloads equal.
func TestV1MigrationRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")

	// Build a v1 file the way PR-2-era code would have written it.
	sig := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	sig.Disabled = true
	v1 := map[string]any{
		"format": 1,
		"signatures": []map[string]any{{
			"id":       sig.ID,
			"kind":     "deadlock",
			"stacks":   []string{sig.Stacks[0].String(), sig.Stacks[1].String()},
			"depth":    4,
			"disabled": true,
		}},
	}
	data, _ := json.Marshal(v1)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	h, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got := h.Get(sig.ID)
	if got == nil || !got.Disabled {
		t.Fatal("v1 load lost the signature or its disabled state")
	}
	if got.Rev != 1 {
		t.Fatalf("v1 entries must migrate at rev 1, got %d", got.Rev)
	}

	if err := h.Save(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	var p struct {
		Format int `json:"format"`
	}
	if err := json.Unmarshal(raw, &p); err != nil || p.Format != FormatVersion {
		t.Fatalf("saved format = %d (err %v), want %d", p.Format, err, FormatVersion)
	}

	h2, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	got2 := h2.Get(sig.ID)
	if got2 == nil || !got2.Disabled || got2.Rev != 1 || h2.Len() != 1 {
		t.Fatal("v2 reload does not round-trip the migrated v1 content")
	}
}

// TestV2RoundTripTombstonesAndFingerprint: revisions, tombstones, and
// the build fingerprint survive a marshal/unmarshal cycle (both indented
// and compact forms).
func TestV2RoundTripTombstonesAndFingerprint(t *testing.T) {
	h := NewHistory()
	h.SetFingerprint("build-A")
	keep := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
	gone := New(Deadlock, []Stack{syn(3), syn(4)}, 4)
	h.Add(keep)
	h.Add(gone)
	h.SetDisabled(keep.ID, true) // rev 2
	h.Remove(gone.ID)            // tombstone rev 2

	for _, marshal := range []func() ([]byte, error){h.MarshalJSON, h.MarshalJSONCompact} {
		data, err := marshal()
		if err != nil {
			t.Fatal(err)
		}
		h2 := NewHistory()
		if err := h2.UnmarshalJSON(data); err != nil {
			t.Fatal(err)
		}
		if h2.Fingerprint() != "build-A" {
			t.Errorf("fingerprint = %q", h2.Fingerprint())
		}
		got := h2.Get(keep.ID)
		if got == nil || !got.Disabled || got.Rev != 2 {
			t.Fatal("live entry state lost")
		}
		tombs := h2.Tombstones()
		if len(tombs) != 1 || tombs[0].ID != gone.ID || tombs[0].Rev != 2 {
			t.Fatalf("tombstones lost: %+v", tombs)
		}
	}
}

// TestUnmarshalRejectsNewerFormat guards forward compatibility: a file
// from a future build must not be silently misread.
func TestUnmarshalRejectsNewerFormat(t *testing.T) {
	h := NewHistory()
	err := h.UnmarshalJSON([]byte(`{"format": 99, "signatures": []}`))
	if err == nil {
		t.Fatal("format 99 must be rejected")
	}
}

// TestTombstoneCompactionBound: the tombstone set stays within its
// limit, dropping the oldest removals first. The age floor is disabled
// here to test the count bound in isolation — retention of over-bound
// young tombstones is TestStaleResurrectionPastTombstoneBound's subject.
func TestTombstoneCompactionBound(t *testing.T) {
	h := NewHistory()
	h.SetTombstoneLimit(4)
	h.SetTombstoneMinAge(-1)
	var ids []string
	for i := 0; i < 10; i++ {
		s := New(Deadlock, []Stack{syn(uint64(100 + i)), syn(uint64(200 + i))}, 4)
		h.Add(s)
		ids = append(ids, s.ID)
	}
	for i, id := range ids {
		// Distinct deletion "times" via distinct revisions: bump the rev
		// before removing so newer removals outrank older ones even
		// within one wall-clock second.
		for j := 0; j < i; j++ {
			h.SetDisabled(id, true)
			h.SetDisabled(id, false)
		}
		h.Remove(id)
	}
	tombs := h.Tombstones()
	if len(tombs) != 4 {
		t.Fatalf("tombstones = %d, want the limit 4", len(tombs))
	}
	// Survivors must be the newest removals (highest revisions).
	minRev := tombs[0].Rev
	for _, tb := range tombs {
		if tb.Rev < minRev {
			minRev = tb.Rev
		}
	}
	if minRev < 2*6+1 { // ids[6..9] have revs 13,15,17,19
		t.Fatalf("compaction kept an old tombstone (min rev %d)", minRev)
	}

	// Serialization respects the bound too.
	data, err := h.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	h2 := NewHistory()
	if err := h2.UnmarshalJSON(data); err != nil {
		t.Fatal(err)
	}
	if got := len(h2.Tombstones()); got != 4 {
		t.Fatalf("persisted tombstones = %d, want 4", got)
	}
}

// removalBurst archives and immediately removes n unrelated signatures,
// bumping each entry's revision first so the burst's tombstones outrank
// rev-2 tombstones in the compaction order even within one wall-clock
// second (DeletedUnix ties break by revision).
func removalBurst(h *History, n int) {
	for i := 0; i < n; i++ {
		s := New(Deadlock, []Stack{syn(uint64(1000 + i)), syn(uint64(2000 + i))}, 4)
		h.Add(s)
		h.SetDisabled(s.ID, true)
		h.SetDisabled(s.ID, false) // rev 3: the removal tombstone lands at rev 4
		h.Remove(s.ID)
	}
}

// TestStaleResurrectionPastTombstoneBound is the PR 4 regression for
// purely count-based tombstone compaction: a burst of removals evicted
// the oldest tombstone even when it was seconds old, so a very stale
// peer still carrying the removed signature resurrected it on merge.
// The age floor (eviction requires over-bound AND older than the min
// age) closes the window.
func TestStaleResurrectionPastTombstoneBound(t *testing.T) {
	setup := func() (local, stale *History, victimID string) {
		local = NewHistory()
		local.SetTombstoneLimit(2)
		victim := New(Deadlock, []Stack{syn(1), syn(2)}, 4)
		local.Add(victim)
		// The stale peer snapshotted while the victim was still live.
		stale = NewHistory()
		stale.Merge(local)
		local.Remove(victim.ID) // tombstone at rev 2 — the oldest candidate
		return local, stale, victim.ID
	}

	// Legacy behavior (age floor disabled) reproduces the bug: the burst
	// evicts the victim's fresh tombstone and the stale merge resurrects
	// the long-removed signature.
	local, stale, victimID := setup()
	local.SetTombstoneMinAge(-1)
	removalBurst(local, 4)
	local.Merge(stale)
	if local.Get(victimID) == nil {
		t.Fatal("count-only compaction no longer reproduces the resurrection; update this regression")
	}

	// With the age floor (the default), the fresh tombstone survives the
	// burst — transiently exceeding the count bound — and the stale peer
	// cannot resurrect the removal.
	local, stale, victimID = setup()
	removalBurst(local, 4)
	if got := len(local.Tombstones()); got <= 2 {
		t.Fatalf("expected a transient over-bound tombstone set, got %d", got)
	}
	if n := local.Merge(stale); n != 0 {
		t.Errorf("stale merge changed %d entries, want 0", n)
	}
	if local.Get(victimID) != nil {
		t.Fatal("stale peer resurrected a removal past the tombstone bound")
	}
}

// TestTombstoneAgedCompaction: tombstones older than the min age do
// drain once the count bound is exceeded — the age floor defers
// compaction, it does not defeat it.
func TestTombstoneAgedCompaction(t *testing.T) {
	h := NewHistory()
	h.SetTombstoneLimit(2)
	old := time.Now().Add(-30 * 24 * time.Hour).Unix()
	for i := 0; i < 6; i++ {
		h.RestoreTombstone(Tombstone{
			ID:          New(Deadlock, []Stack{syn(uint64(50 + i)), syn(uint64(60 + i))}, 4).ID,
			Rev:         uint64(i + 2),
			DeletedUnix: old,
		})
	}
	if got := len(h.Tombstones()); got != 2 {
		t.Fatalf("aged tombstones = %d, want compaction down to the limit 2", got)
	}
}

// TestTombstoneHardCap: the age floor may stretch the tombstone set past
// the count limit, but never past tombHardCapFactor times it — a removal
// storm cannot grow snapshots without bound.
func TestTombstoneHardCap(t *testing.T) {
	h := NewHistory()
	h.SetTombstoneLimit(2)
	for i := 0; i < 12; i++ {
		s := New(Deadlock, []Stack{syn(uint64(300 + i)), syn(uint64(400 + i))}, 4)
		h.Add(s)
		h.Remove(s.ID)
	}
	if got, cap := len(h.Tombstones()), 2*tombHardCapFactor; got != cap {
		t.Fatalf("young tombstones = %d, want hard cap %d", got, cap)
	}
}

// TestMergeNotifiesAdoptedDisableFlips: a disabled-flag flip adopted
// from a sync merge must fire the same per-entry notify as a local
// SetDisabled — the observability stream's cross-process §5.7 case.
func TestMergeNotifiesAdoptedDisableFlips(t *testing.T) {
	local := NewHistory()
	sig := New(Deadlock, []stack.Stack{
		{{Func: "a", File: "x.go", Line: 1}},
		{{Func: "b", File: "y.go", Line: 2}},
	}, 2)
	local.Add(sig)

	remote := NewHistory()
	rsig := *sig
	rsig.Disabled = true
	rsig.Rev = sig.Rev + 1
	remote.Add(&rsig)

	var ops []string
	var ids []string
	local.SetNotify(func(ch Change) {
		ops = append(ops, ch.Op)
		ids = append(ids, ch.SigID)
	})
	if n := local.Merge(remote); n != 1 {
		t.Fatalf("merge changed %d entries, want 1", n)
	}
	foundDisable := false
	for i, op := range ops {
		if op == "disable" && ids[i] == sig.ID {
			foundDisable = true
		}
	}
	if !foundDisable {
		t.Fatalf("merge-adopted disable did not notify: ops=%v ids=%v", ops, ids)
	}
	if ops[len(ops)-1] != "merge" {
		t.Fatalf("bulk merge notify missing: %v", ops)
	}

	// And the flip back (higher-rev enable) notifies as enable.
	remote2 := NewHistory()
	esig := rsig
	esig.Disabled = false
	esig.Rev = rsig.Rev + 1
	remote2.Add(&esig)
	ops = nil
	ids = nil
	if n := local.Merge(remote2); n != 1 {
		t.Fatalf("enable merge changed %d, want 1", n)
	}
	foundEnable := false
	for i, op := range ops {
		if op == "enable" && ids[i] == sig.ID {
			foundEnable = true
		}
	}
	if !foundEnable {
		t.Fatalf("merge-adopted enable did not notify: ops=%v", ops)
	}
}
