package signature

import (
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"dimmunix/internal/calib"
	"dimmunix/internal/stack"
)

func syn(seed uint64) stack.Stack { return stack.Synthetic(seed, 4) }

func TestNewCanonicalOrderIndependence(t *testing.T) {
	a, b := syn(1), syn(2)
	s1 := New(Deadlock, []stack.Stack{a, b}, 4)
	s2 := New(Deadlock, []stack.Stack{b, a}, 4)
	if s1.ID != s2.ID {
		t.Error("signature ID must be order-independent")
	}
	if !s1.Equal(s2) {
		t.Error("Equal must hold for same multiset")
	}
}

func TestNewMultisetDistinctFromSet(t *testing.T) {
	a, b := syn(1), syn(2)
	s1 := New(Deadlock, []stack.Stack{a, a}, 4)
	s2 := New(Deadlock, []stack.Stack{a, b}, 4)
	if s1.ID == s2.ID {
		t.Error("{a,a} and {a,b} must differ")
	}
	s3 := New(Deadlock, []stack.Stack{a}, 4)
	if s1.ID == s3.ID {
		t.Error("{a,a} and {a} must differ (multiset, §5.3)")
	}
}

func TestNewClonesInput(t *testing.T) {
	a := syn(1)
	s := New(Deadlock, []stack.Stack{a}, 4)
	a[0].Line = 424242
	if s.Stacks[0][0].Line == 424242 {
		t.Error("New must clone stacks")
	}
}

func TestDefaultDepth(t *testing.T) {
	s := New(Deadlock, []stack.Stack{syn(1)}, 0)
	if s.Depth != DefaultDepth {
		t.Errorf("Depth = %d, want %d", s.Depth, DefaultDepth)
	}
	if DefaultDepth != 4 {
		t.Errorf("paper default is 4, got %d", DefaultDepth)
	}
}

func TestKindString(t *testing.T) {
	if Deadlock.String() != "deadlock" || Starvation.String() != "starvation" {
		t.Error("Kind.String mismatch")
	}
	s := New(Starvation, []stack.Stack{syn(1)}, 4)
	if s.String() == "" {
		t.Error("empty String")
	}
}

func TestEffectiveDepth(t *testing.T) {
	s := New(Deadlock, []stack.Stack{syn(1)}, 6)
	if s.EffectiveDepth() != 6 {
		t.Errorf("fixed depth: %d", s.EffectiveDepth())
	}
	s.Calib = calib.NewState(10, 20, 1000)
	if s.EffectiveDepth() != 1 {
		t.Errorf("calibrating depth: %d, want ladder rung 1", s.EffectiveDepth())
	}
}

func TestIDOrderIndependenceProperty(t *testing.T) {
	f := func(seedA, seedB, seedC uint64) bool {
		stacks := []stack.Stack{syn(seedA), syn(seedB), syn(seedC)}
		s1 := New(Deadlock, stacks, 4)
		perm := []stack.Stack{stacks[2], stacks[0], stacks[1]}
		s2 := New(Deadlock, perm, 4)
		return s1.ID == s2.ID
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHistoryAddDedup(t *testing.T) {
	h := NewHistory()
	s1 := New(Deadlock, []stack.Stack{syn(1), syn(2)}, 4)
	s2 := New(Deadlock, []stack.Stack{syn(2), syn(1)}, 4)
	if !h.Add(s1) {
		t.Fatal("first Add must succeed")
	}
	if h.Add(s2) {
		t.Fatal("duplicate multiset must be rejected")
	}
	if h.Len() != 1 {
		t.Errorf("Len = %d", h.Len())
	}
	if h.Get(s1.ID) != s1 {
		t.Error("Get must return the stored signature")
	}
	if h.Get("nope") != nil {
		t.Error("Get unknown must be nil")
	}
}

func TestHistoryVersionBumps(t *testing.T) {
	h := NewHistory()
	v0 := h.Version()
	h.Add(New(Deadlock, []stack.Stack{syn(1)}, 4))
	if h.Version() == v0 {
		t.Error("Add must bump version")
	}
	v1 := h.Version()
	h.SetDisabled(h.Snapshot()[0].ID, true)
	if h.Version() == v1 {
		t.Error("SetDisabled must bump version")
	}
}

func TestHistoryDisableRemove(t *testing.T) {
	h := NewHistory()
	s := New(Deadlock, []stack.Stack{syn(1)}, 4)
	h.Add(s)
	if !h.SetDisabled(s.ID, true) || !s.Disabled {
		t.Error("SetDisabled failed")
	}
	if h.SetDisabled("nope", true) {
		t.Error("SetDisabled unknown should fail")
	}
	if !h.Remove(s.ID) || h.Len() != 0 {
		t.Error("Remove failed")
	}
	if h.Remove(s.ID) {
		t.Error("second Remove should fail")
	}
}

func TestHistoryMerge(t *testing.T) {
	h1, h2 := NewHistory(), NewHistory()
	shared := New(Deadlock, []stack.Stack{syn(1)}, 4)
	h1.Add(shared)
	h2.Add(New(Deadlock, []stack.Stack{syn(1)}, 4)) // same multiset
	h2.Add(New(Deadlock, []stack.Stack{syn(2)}, 4))
	if n := h1.Merge(h2); n != 1 {
		t.Errorf("Merge added %d, want 1", n)
	}
	if h1.Len() != 2 {
		t.Errorf("Len = %d", h1.Len())
	}
}

func TestHistoryReplaceAll(t *testing.T) {
	h, other := NewHistory(), NewHistory()
	h.Add(New(Deadlock, []stack.Stack{syn(1)}, 4))
	other.Add(New(Starvation, []stack.Stack{syn(2)}, 4))
	other.Add(New(Deadlock, []stack.Stack{syn(3)}, 4))
	h.ReplaceAll(other)
	if h.Len() != 2 {
		t.Errorf("Len = %d, want 2", h.Len())
	}
	if h.Get(New(Deadlock, []stack.Stack{syn(1)}, 4).ID) != nil {
		t.Error("old signature should be gone")
	}
}

func TestHistorySaveLoadRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "hist.json")
	h := NewHistory()
	h.SetPath(path)
	s1 := New(Deadlock, []stack.Stack{syn(1), syn(2)}, 4)
	s1.AvoidCount = 42
	s1.FPCount = 3
	s1.Disabled = true
	s1.Calib = calib.NewState(10, 20, 1000)
	s2 := New(Starvation, []stack.Stack{syn(3)}, 7)
	h.Add(s1)
	h.Add(s2)
	if err := h.Save(); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 2 {
		t.Fatalf("loaded %d signatures", got.Len())
	}
	g1 := got.Get(s1.ID)
	if g1 == nil {
		t.Fatal("s1 missing after load")
	}
	if g1.AvoidCount != 42 || g1.FPCount != 3 || !g1.Disabled || g1.Kind != Deadlock {
		t.Errorf("fields lost: %+v", g1)
	}
	if !g1.Calib.Active() || g1.Calib.MaxDepth != 10 {
		t.Errorf("calibration state lost: %+v", g1.Calib)
	}
	g2 := got.Get(s2.ID)
	if g2 == nil || g2.Kind != Starvation || g2.Depth != 7 {
		t.Errorf("s2 wrong: %+v", g2)
	}
	if len(g1.Stacks) != 2 || !g1.Stacks[0].Equal(s1.Stacks[0]) {
		t.Error("stacks corrupted in round trip")
	}
}

func TestLoadMissingFileIsEmpty(t *testing.T) {
	h, err := Load(filepath.Join(t.TempDir(), "absent.json"))
	if err != nil {
		t.Fatal(err)
	}
	if h.Len() != 0 {
		t.Errorf("Len = %d", h.Len())
	}
}

func TestLoadCorruptFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bad.json")
	os.WriteFile(path, []byte("{not json"), 0o644)
	if _, err := Load(path); err == nil {
		t.Error("corrupt file must error")
	}
}

func TestSaveWithoutPathIsNoop(t *testing.T) {
	h := NewHistory()
	h.Add(New(Deadlock, []stack.Stack{syn(1)}, 4))
	if err := h.Save(); err != nil {
		t.Errorf("unbacked Save: %v", err)
	}
}

func TestSizeOnDiskEstimate(t *testing.T) {
	h := NewHistory()
	h.Add(New(Deadlock, []stack.Stack{syn(1), syn(2)}, 4))
	n := h.SizeOnDiskEstimate()
	// §7.4: "on the order of 200-1000 bytes per signature".
	if n < 100 || n > 5000 {
		t.Errorf("per-signature size %d outside plausible range", n)
	}
}

func TestSortedIDs(t *testing.T) {
	h := NewHistory()
	for i := uint64(0); i < 5; i++ {
		h.Add(New(Deadlock, []stack.Stack{syn(i)}, 4))
	}
	ids := h.SortedIDs()
	if len(ids) != 5 {
		t.Fatalf("ids = %d", len(ids))
	}
	for i := 1; i < len(ids); i++ {
		if ids[i-1] >= ids[i] {
			t.Fatal("ids not sorted")
		}
	}
}

func TestPersistenceRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	dir := t.TempDir()
	for iter := 0; iter < 20; iter++ {
		h := NewHistory()
		n := 1 + rng.Intn(8)
		for i := 0; i < n; i++ {
			k := Deadlock
			if rng.Intn(2) == 1 {
				k = Starvation
			}
			m := 1 + rng.Intn(3)
			var ss []stack.Stack
			for j := 0; j < m; j++ {
				ss = append(ss, stack.Synthetic(rng.Uint64()%100, 1+rng.Intn(6)))
			}
			h.Add(New(k, ss, 1+rng.Intn(10)))
		}
		path := filepath.Join(dir, "h.json")
		if err := h.SaveTo(path); err != nil {
			t.Fatal(err)
		}
		got, err := Load(path)
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != h.Len() {
			t.Fatalf("iter %d: %d vs %d sigs", iter, got.Len(), h.Len())
		}
		for _, s := range h.Snapshot() {
			g := got.Get(s.ID)
			if g == nil {
				t.Fatalf("iter %d: signature %s lost", iter, s.ID)
			}
			if g.Depth != s.Depth || g.Kind != s.Kind || len(g.Stacks) != len(s.Stacks) {
				t.Fatalf("iter %d: signature %s corrupted", iter, s.ID)
			}
		}
	}
}

func TestHistoryConcurrentReaders(t *testing.T) {
	h := NewHistory()
	for i := uint64(0); i < 16; i++ {
		h.Add(New(Deadlock, []stack.Stack{syn(i)}, 4))
	}
	done := make(chan struct{})
	for g := 0; g < 8; g++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for i := 0; i < 1000; i++ {
				_ = h.Snapshot()
				_ = h.Len()
				_ = h.Version()
			}
		}()
	}
	for i := uint64(16); i < 48; i++ {
		h.Add(New(Deadlock, []stack.Stack{syn(i)}, 4))
	}
	for g := 0; g < 8; g++ {
		<-done
	}
}
