package signature

import (
	"runtime/debug"
	"strings"
)

// BuildFingerprint derives an identity for the running build from the
// embedded module and VCS metadata. Two processes built from the same
// source produce the same fingerprint; a history snapshot stamped with a
// different fingerprint comes from another code revision, which is the
// §8 porting trigger — call-stack locations may have shifted, so sigport
// rules must be applied before merging it.
//
// The fingerprint is informative, not cryptographic: "" means the build
// carries no metadata (and porting is then never triggered).
func BuildFingerprint() string {
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return ""
	}
	parts := []string{bi.Main.Path + "@" + bi.Main.Version}
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision", "vcs.time", "vcs.modified":
			parts = append(parts, s.Key+"="+s.Value)
		}
	}
	return strings.Join(parts, " ")
}
