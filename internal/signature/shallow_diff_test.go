package signature

import (
	"math/rand"
	"testing"

	"dimmunix/internal/calib"
	"dimmunix/internal/stack"
)

// randHistory builds a random history whose shape is drawn from rng:
// 1-6 signatures, each with 1-3 stacks of depth 1-12 and a fixed
// matching depth in 1..8. Depending on envelope, some signatures are
// additionally forced into the conservative full-capture cases the
// danger index cannot depth-bound: a calibration-armed ladder, or an
// explicit depth<=0 (full-stack matching). Returns the history plus
// every signature stack for probe derivation.
func randHistory(rng *rand.Rand, envelope bool) (*History, []stack.Stack) {
	h := NewHistory()
	var all []stack.Stack
	n := 1 + rng.Intn(6)
	for i := 0; i < n; i++ {
		var stacks []stack.Stack
		for j := 0; j < 1+rng.Intn(3); j++ {
			st := stack.Synthetic(rng.Uint64(), 1+rng.Intn(12))
			stacks = append(stacks, st)
			all = append(all, st)
		}
		sig := New(Deadlock, stacks, 1+rng.Intn(8))
		if envelope {
			switch rng.Intn(3) {
			case 0:
				// Calibration-armed: effective depth moves between
				// epochs without the index seeing it.
				sig.Calib = calib.NewState(10, 20, 1000)
			case 1:
				// Depth<=0: full-stack hash bucket.
				sig.Depth = -1
			}
			// case 2: leave fixed-depth; the envelope then depends on
			// whether an earlier signature forced it.
		}
		if rng.Intn(8) == 0 {
			sig.Disabled = true
		}
		h.Add(sig)
	}
	return h, all
}

// probes derives classification probes from the signature stacks: exact
// copies, prefix-matching stacks with divergent tails (must still be
// Dangerous at the signature's depth), mutated-innermost stacks (usually
// safe), and fully random ones.
func probes(rng *rand.Rand, sigStacks []stack.Stack) []stack.Stack {
	var out []stack.Stack
	for _, st := range sigStacks {
		out = append(out, st.Clone())
		// Same innermost frames, different tail beyond the matching
		// depth: dangerous iff the prefix reaches the indexed depth.
		ext := st.Clone()
		ext = append(ext, stack.Synthetic(rng.Uint64(), 1+rng.Intn(4))...)
		out = append(out, ext)
		// Mutate the innermost frame: almost always safe.
		mut := st.Clone()
		mut[0].Line += 1 + rng.Intn(100)
		out = append(out, mut)
		if len(st) > 1 {
			out = append(out, st[:1+rng.Intn(len(st))].Clone())
		}
	}
	for i := 0; i < 8; i++ {
		out = append(out, stack.Synthetic(rng.Uint64(), 1+rng.Intn(16)))
	}
	return out
}

// maxFrames returns the innermost bound frames of s — the depth-bounded
// capture the fast tier would have produced.
func truncate(s stack.Stack, bound int) stack.Stack {
	if len(s) <= bound {
		return s
	}
	return s[:bound]
}

// checkShallowContract asserts the published ShallowDepth's soundness
// contract against idx: for every probe, a capture truncated to any
// bound >= ShallowDepth (when it is > 0) classifies identically to the
// full stack.
func checkShallowContract(t *testing.T, idx *DangerIndex, ps []stack.Stack) {
	t.Helper()
	shallow := idx.ShallowDepth()
	if shallow <= 0 {
		return // conservative envelope: no truncation equivalence claimed
	}
	for _, s := range ps {
		full := idx.Dangerous(s)
		for _, bound := range []int{shallow, shallow + 1, shallow + 4} {
			if got := idx.Dangerous(truncate(s, bound)); got != full {
				t.Fatalf("shallow/full divergence: shallow=%d bound=%d full=%v truncated=%v stack=%v",
					shallow, bound, full, got, s)
			}
		}
	}
}

// envelopeForced reports whether any enabled signature in h demands the
// full-capture envelope (ShallowDepth 0): calibration-capable or
// effective depth <= 0.
func envelopeForced(h *History) bool {
	for _, s := range h.Snapshot() {
		if s.Disabled {
			continue
		}
		if s.Calib.On || s.Calib.MaxDepth > 0 || s.EffectiveDepth() <= 0 {
			return true
		}
	}
	return false
}

// FuzzShallowVsFullDanger is the index-level half of the depth-bounded
// capture proof: across randomly generated histories — including
// calibration-armed and depth<=0 signatures, and across mutations that
// bump the epoch (Add, Remove, SetDisabled, Merge, ReplaceAll) — a stack
// truncated to ShallowDepth or deeper must classify identically to the
// full stack whenever ShallowDepth > 0, and the envelope cases must
// publish exactly 0.
func FuzzShallowVsFullDanger(f *testing.F) {
	for seed := int64(1); seed <= 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		envelope := seed%2 == 0
		h, sigStacks := randHistory(rng, envelope)
		ps := probes(rng, sigStacks)

		check := func() {
			idx := h.Danger()
			if envelopeForced(h) {
				if idx.ShallowDepth() != 0 {
					t.Fatalf("calibration-armed or depth<=0 signature live but ShallowDepth=%d, want 0 (conservative envelope)", idx.ShallowDepth())
				}
			} else if h.Len() > 0 && idx.ShallowDepth() < 1 {
				t.Fatalf("fixed-depth-only history published ShallowDepth=%d, want >= 1", idx.ShallowDepth())
			}
			checkShallowContract(t, idx, ps)
		}
		check()

		// Archive-path mutation: add a new fixed-depth signature.
		extra := stack.Synthetic(rng.Uint64(), 4+rng.Intn(8))
		h.Add(New(Deadlock, []stack.Stack{extra}, 1+rng.Intn(8)))
		ps = append(ps, extra, truncate(extra, 2))
		check()

		// Disable flip (epoch bump, index shrinks).
		if snap := h.Snapshot(); len(snap) > 0 {
			h.SetDisabled(snap[rng.Intn(len(snap))].ID, true)
			check()
		}

		// Sync-pull merge: a remote history with its own signatures.
		remote, remoteStacks := randHistory(rng, !envelope)
		h.Merge(remote)
		ps = append(ps, probes(rng, remoteStacks)...)
		check()

		// Predicted-inoculation path: ReplaceAll swaps the entire
		// content (dimmunix-predict push), epoch jumps.
		repl, replStacks := randHistory(rng, envelope)
		h.ReplaceAll(repl)
		ps = append(ps, probes(rng, replStacks)...)
		check()

		// Removal down to empty: the empty index classifies empty stacks
		// dangerous and everything else safe, at ShallowDepth 1.
		for _, s := range h.Snapshot() {
			h.Remove(s.ID)
		}
		if idx := h.Danger(); idx.ShallowDepth() != 1 {
			t.Fatalf("empty history ShallowDepth=%d, want 1", idx.ShallowDepth())
		}
		check()
	})
}
