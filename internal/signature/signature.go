// Package signature defines deadlock/starvation signatures and the
// persistent history that gives programs immunity across restarts (§5.3).
//
// A signature is a multiset of call stacks — one per thread blocked in the
// detected deadlock or starvation — plus a matching depth. Signatures
// contain no thread or lock identities, which makes them portable from one
// execution to the next.
package signature

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sort"
	"time"

	"dimmunix/internal/calib"
	"dimmunix/internal/stack"
)

// Kind distinguishes deadlock signatures from induced-starvation
// signatures. Both are avoided with the same logic (§5.2).
type Kind uint8

const (
	// Deadlock marks a signature captured from a deadlock cycle.
	Deadlock Kind = iota
	// Starvation marks a signature captured from a yield cycle.
	Starvation
)

func (k Kind) String() string {
	if k == Starvation {
		return "starvation"
	}
	return "deadlock"
}

// DefaultDepth is the fixed call-stack matching depth used when dynamic
// calibration is off (§5.5: "4 by default").
const DefaultDepth = 4

// Signature.Source values. Provenance is informational metadata —
// matching, merging, and identity ignore it — but operators (and the
// fleet drills) use it to tell how an entry was learned.
const (
	// SourceLive marks signatures archived from a deadlock that actually
	// fired; persisted as the empty string for v2 compatibility.
	SourceLive = ""
	// SourcePredicted marks signatures emitted by the offline trace
	// analyzer (dimmunix-predict) before the deadlock ever fired.
	SourcePredicted = "predicted"
	// SourceStatic marks signatures emitted by the compile-time
	// lock-order analysis (dimmunix-vet -emit): no process ever executed
	// the acquisitions, let alone the deadlock.
	SourceStatic = "static"
)

// Signature is one archived deadlock or starvation pattern.
type Signature struct {
	// ID is the canonical content hash of the stack multiset; two
	// signatures with the same stacks (in any order) get the same ID.
	ID string
	// Kind records what produced the signature.
	Kind Kind
	// Stacks is the multiset of call stacks, in canonical (sorted) order.
	Stacks []stack.Stack
	// Depth is the matching depth: how long an (innermost) suffix of
	// each stack is considered during matching.
	Depth int
	// Disabled signatures are kept in the history but never avoided
	// (§5.7: users may disable signatures whose avoidance suppresses
	// functionality).
	Disabled bool
	// Rev is the entry's monotonic revision, bumped on every persisted
	// state transition (disable/enable flips, resurrection after a
	// removal). Merging histories is a deterministic join on revisions:
	// the higher revision wins, so removals and disabled-flips propagate
	// between processes instead of being resurrected by stale snapshots.
	// A zero Rev means "fresh"; History.Add normalizes it to at least 1.
	Rev uint64
	// CreatedUnix is the archive time (seconds since epoch).
	CreatedUnix int64
	// Source records where the entry came from: "" for signatures
	// archived from a live detection, SourcePredicted for entries the
	// offline trace analyzer emitted (dimmunix-predict) before the
	// deadlock ever fired. Informational metadata — matching, merging,
	// and identity ignore it — persisted in format v2 so operators can
	// tell predicted from experienced entries. When a predicted pattern
	// later manifests for real, the live archive is a duplicate ID and
	// the entry keeps its predicted provenance.
	Source string

	// AvoidCount counts avoidance actions (yields) attributed to this
	// signature; the avoidance action log of §5.7.
	AvoidCount uint64
	// AbortCount counts yields aborted by the max-yield-duration bound.
	AbortCount uint64
	// FPCount / TPCount accumulate retrospective false/true positive
	// verdicts (§5.5).
	FPCount uint64
	TPCount uint64

	// Calib is the dynamic matching-depth calibration state.
	Calib calib.State
}

// New builds a canonical signature from a stack multiset. Stacks are
// cloned and sorted; depth <= 0 selects DefaultDepth.
func New(kind Kind, stacks []stack.Stack, depth int) *Signature {
	if depth <= 0 {
		depth = DefaultDepth
	}
	canon := make([]stack.Stack, len(stacks))
	for i, s := range stacks {
		canon[i] = s.Clone()
	}
	sortStacks(canon)
	return &Signature{
		ID:          idOf(canon),
		Kind:        kind,
		Stacks:      canon,
		Depth:       depth,
		CreatedUnix: time.Now().Unix(),
	}
}

func sortStacks(ss []stack.Stack) {
	sort.Slice(ss, func(i, j int) bool {
		hi, hj := ss[i].Hash(), ss[j].Hash()
		if hi != hj {
			return hi < hj
		}
		return ss[i].String() < ss[j].String()
	})
}

func idOf(canon []stack.Stack) string {
	h := sha256.New()
	for _, s := range canon {
		h.Write([]byte(s.String()))
		h.Write([]byte{0})
	}
	return hex.EncodeToString(h.Sum(nil))[:16]
}

// Size returns the number of stacks (threads) in the signature.
func (s *Signature) Size() int { return len(s.Stacks) }

// String renders a short human-readable description.
func (s *Signature) String() string {
	return fmt.Sprintf("%s sig %s: %d stacks, depth %d", s.Kind, s.ID, len(s.Stacks), s.Depth)
}

// Equal reports whether two signatures denote the same stack multiset.
func (s *Signature) Equal(o *Signature) bool { return s.ID == o.ID }

// EffectiveDepth returns the depth matching should use right now: the
// calibration ladder's current rung while calibrating, the chosen depth
// otherwise.
func (s *Signature) EffectiveDepth() int {
	if s.Calib.Active() {
		return s.Calib.CurrentDepth()
	}
	return s.Depth
}
