package signature

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"dimmunix/internal/calib"
	"dimmunix/internal/stack"
)

// History is the persistent set of deadlock and starvation signatures
// (§5.4: loaded from disk at startup, shared read-mostly among all
// threads; the monitor is the only mutator of the on-disk file).
//
// Locking discipline: History's own mutex protects the signature *set*
// (membership, lookup). The mutable per-signature fields (Depth, counters,
// calibration state) are owned by the avoidance cache's guard; History
// only reads them during Save, which callers must invoke from the monitor.
type History struct {
	mu      sync.RWMutex
	path    string
	sigs    []*Signature
	byID    map[string]*Signature
	version atomic.Uint64

	// danger is the epoch-versioned dangerous-stack index consulted by
	// the avoidance fast path. It is republished (immutable snapshot)
	// inside every mutation's critical section; see DangerIndex.
	danger atomic.Pointer[DangerIndex]
}

// DangerIndex is an immutable over-approximation of the call stacks that
// can participate in any enabled signature, keyed by innermost frame.
// Matching at depth d >= 1 implies the innermost frames agree (and the
// depth <= 0 / short-stack fallbacks compare full stacks, which also
// implies it), so a stack whose innermost frame is absent from the index
// can never match an enabled signature stack at any effective depth —
// including every rung a calibration ladder may move through. That is the
// soundness argument for the lock-free fast path: "safe" verdicts stay
// valid until the signature set itself changes, at which point a new index
// with a fresh epoch is published and all cached markers self-invalidate.
type DangerIndex struct {
	epoch  uint64
	frames map[stack.Frame]struct{}
}

// Epoch returns the history version this index was built from. Epochs
// start at 1 so the zero marker on an interned stack never validates.
func (d *DangerIndex) Epoch() uint64 { return d.epoch }

// Dangerous reports whether s could match any enabled signature stack at
// any matching depth (an over-approximation; false is authoritative).
func (d *DangerIndex) Dangerous(s stack.Stack) bool {
	if len(d.frames) == 0 {
		return len(s) == 0 // empty stacks never get the fast path
	}
	if len(s) == 0 {
		return true
	}
	_, hit := d.frames[s[0]]
	return hit
}

// Len returns the number of distinct dangerous innermost frames.
func (d *DangerIndex) Len() int { return len(d.frames) }

// NewHistory returns an empty, unbacked history (nothing persists until
// SetPath/SaveTo).
func NewHistory() *History {
	h := &History{byID: make(map[string]*Signature)}
	h.version.Store(1)
	h.danger.Store(&DangerIndex{epoch: 1})
	return h
}

// Danger returns the current dangerous-stack index. The returned snapshot
// is immutable; its epoch equals Version() at the time it was published.
func (h *History) Danger() *DangerIndex { return h.danger.Load() }

// rebuildDangerLocked republishes the danger index; h.mu must be held by
// a writer, after version has been bumped for the mutation.
func (h *History) rebuildDangerLocked() {
	idx := &DangerIndex{epoch: h.version.Load()}
	for _, s := range h.sigs {
		if s.Disabled {
			continue
		}
		for _, st := range s.Stacks {
			if len(st) == 0 {
				continue
			}
			if idx.frames == nil {
				idx.frames = make(map[stack.Frame]struct{})
			}
			idx.frames[st[0]] = struct{}{}
		}
	}
	h.danger.Store(idx)
}

// Load reads a history file. A missing file yields an empty history bound
// to path (the common first-run case).
func Load(path string) (*History, error) {
	h := NewHistory()
	h.path = path
	data, err := os.ReadFile(path)
	if errors.Is(err, fs.ErrNotExist) {
		return h, nil
	}
	if err != nil {
		return nil, fmt.Errorf("history: %w", err)
	}
	if err := h.UnmarshalJSON(data); err != nil {
		return nil, err
	}
	return h, nil
}

// Path returns the backing file path ("" if unbacked).
func (h *History) Path() string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.path
}

// SetPath rebinds the backing file.
func (h *History) SetPath(path string) {
	h.mu.Lock()
	h.path = path
	h.mu.Unlock()
}

// Version increments on every membership or persisted-state change; the
// avoidance cache uses it to invalidate its signature match index.
func (h *History) Version() uint64 { return h.version.Load() }

// Add inserts sig if no signature with the same stack multiset exists.
// It reports whether the signature was new. Duplicate signatures are
// disallowed, which bounds history growth (§5.3).
func (h *History) Add(sig *Signature) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, dup := h.byID[sig.ID]; dup {
		return false
	}
	h.sigs = append(h.sigs, sig)
	h.byID[sig.ID] = sig
	h.version.Add(1)
	h.rebuildDangerLocked()
	return true
}

// Get returns the signature with the given ID, or nil.
func (h *History) Get(id string) *Signature {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return h.byID[id]
}

// Len returns the number of signatures.
func (h *History) Len() int {
	h.mu.RLock()
	defer h.mu.RUnlock()
	return len(h.sigs)
}

// Snapshot returns the signatures in insertion order. The slice is fresh;
// the *Signature values are shared (see locking discipline above).
func (h *History) Snapshot() []*Signature {
	h.mu.RLock()
	defer h.mu.RUnlock()
	out := make([]*Signature, len(h.sigs))
	copy(out, h.sigs)
	return out
}

// SetDisabled flips a signature's disabled flag (§5.7's "disable the last
// avoided signature"). It reports whether the signature exists.
func (h *History) SetDisabled(id string, disabled bool) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := h.byID[id]
	if s == nil {
		return false
	}
	s.Disabled = disabled
	h.version.Add(1)
	h.rebuildDangerLocked()
	return true
}

// Remove deletes a signature (obsolete after an upgrade, §8). It reports
// whether the signature existed.
func (h *History) Remove(id string) bool {
	h.mu.Lock()
	defer h.mu.Unlock()
	if _, ok := h.byID[id]; !ok {
		return false
	}
	delete(h.byID, id)
	for i, s := range h.sigs {
		if s.ID == id {
			h.sigs = append(h.sigs[:i], h.sigs[i+1:]...)
			break
		}
	}
	h.version.Add(1)
	h.rebuildDangerLocked()
	return true
}

// Merge adds every signature from other that is not already present and
// returns how many were new — the §8 "proactive distribution" path
// (vendors shipping signatures to users).
func (h *History) Merge(other *History) int {
	added := 0
	for _, s := range other.Snapshot() {
		if h.Add(s) {
			added++
		}
	}
	return added
}

// ReplaceAll atomically swaps the signature set with the one from other —
// the §8 "reload the history without restarting" path.
func (h *History) ReplaceAll(other *History) {
	snap := other.Snapshot()
	h.mu.Lock()
	h.sigs = make([]*Signature, len(snap))
	copy(h.sigs, snap)
	h.byID = make(map[string]*Signature, len(snap))
	for _, s := range h.sigs {
		h.byID[s.ID] = s
	}
	h.version.Add(1)
	h.rebuildDangerLocked()
	h.mu.Unlock()
}

// persisted mirrors Signature for JSON with stacks in string form.
type persistedSig struct {
	ID          string      `json:"id"`
	Kind        string      `json:"kind"`
	Stacks      []string    `json:"stacks"`
	Depth       int         `json:"depth"`
	Disabled    bool        `json:"disabled,omitempty"`
	CreatedUnix int64       `json:"created_unix,omitempty"`
	AvoidCount  uint64      `json:"avoid_count,omitempty"`
	AbortCount  uint64      `json:"abort_count,omitempty"`
	FPCount     uint64      `json:"fp_count,omitempty"`
	TPCount     uint64      `json:"tp_count,omitempty"`
	Calib       calib.State `json:"calib,omitempty"`
}

type persistedHistory struct {
	Format     int            `json:"format"`
	Signatures []persistedSig `json:"signatures"`
}

// MarshalJSON serializes the history.
func (h *History) MarshalJSON() ([]byte, error) {
	h.mu.RLock()
	defer h.mu.RUnlock()
	p := persistedHistory{Format: 1}
	for _, s := range h.sigs {
		ps := persistedSig{
			ID:          s.ID,
			Kind:        s.Kind.String(),
			Depth:       s.Depth,
			Disabled:    s.Disabled,
			CreatedUnix: s.CreatedUnix,
			AvoidCount:  s.AvoidCount,
			AbortCount:  s.AbortCount,
			FPCount:     s.FPCount,
			TPCount:     s.TPCount,
			Calib:       s.Calib,
		}
		for _, st := range s.Stacks {
			ps.Stacks = append(ps.Stacks, st.String())
		}
		p.Signatures = append(p.Signatures, ps)
	}
	return json.MarshalIndent(p, "", "  ")
}

// UnmarshalJSON replaces the in-memory set with the serialized one.
func (h *History) UnmarshalJSON(data []byte) error {
	var p persistedHistory
	if err := json.Unmarshal(data, &p); err != nil {
		return fmt.Errorf("history: parse: %w", err)
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.sigs = nil
	h.byID = make(map[string]*Signature)
	for _, ps := range p.Signatures {
		kind := Deadlock
		if ps.Kind == "starvation" {
			kind = Starvation
		}
		stacks := make([]stack.Stack, 0, len(ps.Stacks))
		for _, raw := range ps.Stacks {
			st, err := stack.Parse(raw)
			if err != nil {
				return fmt.Errorf("history: signature %s: %w", ps.ID, err)
			}
			stacks = append(stacks, st)
		}
		s := New(kind, stacks, ps.Depth)
		s.Disabled = ps.Disabled
		if ps.CreatedUnix != 0 {
			s.CreatedUnix = ps.CreatedUnix
		}
		s.AvoidCount = ps.AvoidCount
		s.AbortCount = ps.AbortCount
		s.FPCount = ps.FPCount
		s.TPCount = ps.TPCount
		s.Calib = ps.Calib
		if _, dup := h.byID[s.ID]; dup {
			continue
		}
		h.sigs = append(h.sigs, s)
		h.byID[s.ID] = s
	}
	h.version.Add(1)
	h.rebuildDangerLocked()
	return nil
}

// Save writes the history to its backing path atomically (write to a
// temporary file in the same directory, then rename). A history without a
// path saves nowhere and returns nil.
func (h *History) Save() error {
	path := h.Path()
	if path == "" {
		return nil
	}
	return h.SaveTo(path)
}

// SaveTo writes the history to path atomically.
func (h *History) SaveTo(path string) error {
	data, err := h.MarshalJSON()
	if err != nil {
		return err
	}
	dir := filepath.Dir(path)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmp, err := os.CreateTemp(dir, ".dimmunix-hist-*")
	if err != nil {
		return fmt.Errorf("history: %w", err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("history: %w", err)
	}
	return nil
}

// SizeOnDiskEstimate returns the serialized size in bytes (for the §7.4
// resource-utilization report).
func (h *History) SizeOnDiskEstimate() int {
	data, err := h.MarshalJSON()
	if err != nil {
		return 0
	}
	return len(data)
}

// SortedIDs returns the signature IDs in lexical order (stable tooling
// output).
func (h *History) SortedIDs() []string {
	h.mu.RLock()
	defer h.mu.RUnlock()
	ids := make([]string, 0, len(h.sigs))
	for id := range h.byID {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
